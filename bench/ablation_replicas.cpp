// Ablation: replica-ensemble averaging (Sec. 3.3 / Fig. 6). The paper's
// motivation for WPOD is that N_A concurrent replicas cost N_A times the
// resources for only a sqrt(N_A) accuracy gain. This bench runs the *real*
// machinery: an xmp run whose atomistic L3 is split into N_A replica groups
// (coupling::ReplicaEnsemble); each replica integrates an independent DPD
// realisation (different random forcing), the master replica's root gathers
// and averages the velocity profiles, and we report the error vs a
// high-statistics reference — expect error ~ 1/sqrt(N_A).

#include <cmath>
#include <cstdio>
#include <vector>

#include "coupling/replica.hpp"
#include "dpd/geometry.hpp"
#include "dpd/sampling.hpp"
#include "dpd/system.hpp"
#include "telemetry/bench_report.hpp"
#include "xmp/comm.hpp"

namespace {

std::vector<double> dpd_profile(unsigned seed, int sample_steps) {
  dpd::DpdParams prm;
  prm.box = {8.0, 5.0, 8.0};
  prm.periodic = {true, true, false};
  prm.dt = 0.01;
  dpd::DpdSystem sys(prm, std::make_shared<dpd::ChannelZ>(8.0));
  sys.fill(3.0, dpd::kSolvent, seed, 0.1);
  sys.set_body_force([](const dpd::Vec3&, dpd::Species) { return dpd::Vec3{0.06, 0, 0}; });
  for (int s = 0; s < 400; ++s) sys.step();
  dpd::SamplerParams sp;
  sp.nx = 1;
  sp.ny = 1;
  sp.nz = 16;
  dpd::FieldSampler sampler(sys, sp);
  for (int s = 0; s < sample_steps; ++s) {
    sys.step();
    sampler.accumulate(sys);
  }
  auto snap = sampler.snapshot();
  return {snap.begin(), snap.end()};
}

double rms_diff(const std::vector<double>& a, const std::vector<double>& b) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += (a[i] - b[i]) * (a[i] - b[i]);
  return std::sqrt(s / static_cast<double>(a.size()));
}

}  // namespace

int main() {
  std::printf("=== Ablation: replica-ensemble averaging error ~ 1/sqrt(N_A) ===\n\n");

  // Reference: the same sampling protocol averaged over many independent
  // seeds. Matching the protocol makes the (deterministic) startup
  // transient cancel, so the error measured below is pure statistical
  // variance — the quantity the sqrt(N_A) law governs.
  std::vector<double> reference;
  const int kRefRuns = 16;
  for (int r = 0; r < kRefRuns; ++r) {
    auto p = dpd_profile(500 + static_cast<unsigned>(13 * r), 150);
    if (reference.empty()) reference.assign(p.size(), 0.0);
    for (std::size_t i = 0; i < p.size(); ++i) reference[i] += p[i] / kRefRuns;
  }

  telemetry::BenchReport rep("ablation_replicas");
  rep.meta("reference_runs", static_cast<double>(kRefRuns));
  std::printf("%-6s %-14s %-22s\n", "N_A", "rms error", "error * sqrt(N_A) (should be ~flat)");
  for (int n_replicas : {1, 2, 4, 8}) {
    // average the error over a few ensemble draws to tame the noise of the
    // measurement itself
    double err = 0.0;
    const int kTrials = 3;
    for (int trial = 0; trial < kTrials; ++trial) {
      std::vector<double> avg;
      // one xmp rank per replica: the real master/slave gather-average path
      xmp::run(n_replicas, [&](xmp::Comm& world) {
        coupling::ReplicaEnsemble ens(world, n_replicas);
        const auto mine = dpd_profile(
            100 + static_cast<unsigned>(37 * ens.replica_id() + 1000 * trial), 150);
        auto ens_avg = ens.gather_average(mine);
        if (ens.is_ensemble_root()) avg = ens_avg;
      });
      err += rms_diff(avg, reference);
    }
    err /= kTrials;
    const double scaled = err * std::sqrt(static_cast<double>(n_replicas));
    std::printf("%-6d %-14.4f %-22.4f\n", n_replicas, err, scaled);
    rep.row();
    rep.set("replicas", static_cast<double>(n_replicas));
    rep.set("rms_error", err);
    rep.set("error_times_sqrt_na", scaled);
  }
  rep.write();
  std::printf("\n(doubling the replicas costs 2x the resources for a sqrt(2) gain —\n"
              " the paper's argument for WPOD co-processing instead)\n");
  return 0;
}
