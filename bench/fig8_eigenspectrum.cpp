// Fig. 8 reproduction: DPD simulation of a 3D pipe flow driven by a
// time-periodic force; POD eigenspectra of the streamwise (x) and
// transverse (y) velocity components, with Nts = 50 steps per snapshot and
// Npod = 160 snapshots, exactly as in the paper. Expected shape: the
// low-order modes of the driven (x) component stand far above the flat
// thermal plateau and converge fast; the undriven (y) component's spectrum
// is plateau-dominated. The streamwise profile reconstructed from the first
// two POD modes matches the windowed average.

#include <cstdio>
#include <vector>

#include "dpd/geometry.hpp"
#include "dpd/sampling.hpp"
#include "dpd/system.hpp"
#include "telemetry/bench_report.hpp"
#include "wpod/wpod.hpp"

int main() {
  std::printf("=== Fig. 8: POD eigenspectra, periodically driven pipe flow ===\n");
  std::printf("(Nts = 50, Npod = 160, as in the paper)\n\n");

  dpd::DpdParams prm;
  prm.box = {10.0, 9.0, 9.0};
  prm.periodic = {true, false, false};
  prm.dt = 0.01;
  dpd::DpdSystem sys(prm, std::make_shared<dpd::PipeX>(4.0, 4.5, 4.5));
  sys.fill(3.0, dpd::kSolvent, 23, 0.1);
  sys.set_body_force([&sys](const dpd::Vec3&, dpd::Species) {
    return dpd::Vec3{0.12 + 0.18 * std::sin(0.4 * sys.time()), 0.0, 0.0};
  });
  for (int s = 0; s < 500; ++s) sys.step();

  dpd::SamplerParams spx;
  // > Npod informative bins so the snapshot-correlation spectrum resolves
  // the thermal plateau (pipe cross-section fills ~pi/4 of the y-z box)
  spx.nx = 2;
  spx.ny = 12;
  spx.nz = 12;
  spx.component = 0;
  dpd::FieldSampler sx(sys, spx);
  auto spy = spx;
  spy.component = 1;
  dpd::FieldSampler sy(sys, spy);

  std::vector<la::Vector> snaps_x, snaps_y;
  const int kNts = 50, kNpod = 160;
  for (int w = 0; w < kNpod; ++w) {
    for (int s = 0; s < kNts; ++s) {
      sys.step();
      sx.accumulate(sys);
      sy.accumulate(sys);
    }
    snaps_x.push_back(sx.snapshot());
    snaps_y.push_back(sy.snapshot());
  }

  auto wx = wpod::analyze(snaps_x);
  auto wy = wpod::analyze(snaps_y);

  telemetry::BenchReport rep("fig8_eigenspectrum");
  rep.meta("nts", static_cast<double>(kNts));
  rep.meta("npod", static_cast<double>(kNpod));
  std::printf("%-6s %-16s %-16s\n", "k", "lambda_k (u_x)", "lambda_k (u_y)");
  for (std::size_t k = 0; k < 16; ++k) {
    std::printf("%-6zu %-16.6g %-16.6g\n", k, wx.eigenvalues[k], wy.eigenvalues[k]);
    rep.row();
    rep.set("k", static_cast<double>(k));
    rep.set("lambda_ux", wx.eigenvalues[k]);
    rep.set("lambda_uy", wy.eigenvalues[k]);
  }
  std::printf("...    (noise floors: u_x %.3g, u_y %.3g)\n\n", wx.noise_floor, wy.noise_floor);
  std::printf("adaptive split: k_mean(u_x) = %zu, k_mean(u_y) = %zu\n", wx.k_mean, wy.k_mean);
  std::printf("spectral contrast lambda_1/floor: u_x %.1f, u_y %.1f\n\n",
              wx.eigenvalues[0] / wx.noise_floor, wy.eigenvalues[0] / wy.noise_floor);

  // temporal modes: report the oscillation of the leading coefficients
  std::printf("first 3 temporal modes of u_x (RMS amplitude): %.3g  %.3g  %.3g\n",
              [&] {
                double s = 0;
                for (int t = 0; t < kNpod; ++t) s += wx.temporal(t, 0) * wx.temporal(t, 0);
                return std::sqrt(s / kNpod);
              }(),
              [&] {
                double s = 0;
                for (int t = 0; t < kNpod; ++t) s += wx.temporal(t, 1) * wx.temporal(t, 1);
                return std::sqrt(s / kNpod);
              }(),
              [&] {
                double s = 0;
                for (int t = 0; t < kNpod; ++t) s += wx.temporal(t, 2) * wx.temporal(t, 2);
                return std::sqrt(s / kNpod);
              }());

  // 2-mode reconstruction of the streamwise profile (paper: right top panel:
  // "velocity profile reconstructed with the first two POD modes")
  double sum_all = 0.0;
  for (std::size_t k = 0; k < wx.eigenvalues.size(); ++k)
    sum_all += std::max(wx.eigenvalues[k], 0.0);
  const double captured = (wx.eigenvalues[0] + wx.eigenvalues[1]) / sum_all;

  wpod::WpodOptions cap;
  cap.max_mean_modes = 2;
  auto w2 = wpod::analyze(snaps_x, cap);
  double err2 = 0.0, ref = 0.0;
  for (std::size_t t = 0; t < snaps_x.size(); ++t) {
    const auto rec = w2.mean_at(t);
    for (std::size_t b = 0; b < rec.size(); ++b) {
      err2 += (rec[b] - snaps_x[t][b]) * (rec[b] - snaps_x[t][b]);
      ref += snaps_x[t][b] * snaps_x[t][b];
    }
  }
  const double resid2 = std::sqrt(err2 / (ref + 1e-30));
  std::printf("\nenergy captured by first 2 u_x modes: %.1f%%\n", 100.0 * captured);
  std::printf("2-mode reconstruction residual (relative L2 vs snapshots): %.2f\n", resid2);
  std::printf("(the residual is the thermal-fluctuation content the 2 smooth modes\n"
              " deliberately exclude; the coherent flow itself is captured)\n");
  rep.meta("noise_floor_ux", wx.noise_floor);
  rep.meta("noise_floor_uy", wy.noise_floor);
  rep.meta("k_mean_ux", static_cast<double>(wx.k_mean));
  rep.meta("k_mean_uy", static_cast<double>(wy.k_mean));
  rep.meta("energy_captured_2modes", captured);
  rep.meta("recon_residual_2modes", resid2);
  rep.write();
  return 0;
}
