// Table 5 reproduction: strong scaling of NektarG in *coupled* flow
// simulations (platelet aggregation in the Fig. 1 domain): the DPD solver
// holds 823,079,981 particles; the continuum side keeps a fixed allocation
// (4,096 BG/P cores / 4,116 XT5 cores). CPU-time is for 4000 DPD steps
// (= 200 NS steps). The paper's headline: DPD strong scaling is
// super-linear (BG/P 107% / 102%; XT5 144%) because halving the per-core
// working set moves it into cache.

// With --ranks=N (plus --sched=fibers etc., see comm_skeleton.hpp) the bench
// additionally executes the communication skeleton at N real ranks through
// the xmp runtime and writes BENCH_scaling_table5_coupled.json.

#include <cstdio>

#include "comm_skeleton.hpp"
#include "scaling_model.hpp"
#include "telemetry/bench_report.hpp"

namespace {

void run(const scaling::MachineConfig& mc, const std::vector<int>& cores_list,
         telemetry::BenchReport& rep) {
  scaling::DpdConfig dc;
  std::printf("%s (%d cores/node), N_DPD = %.0f particles:\n", mc.name, mc.cores_per_node,
              dc.particles);
  std::printf("  %-10s %-16s %s\n", "Ncore", "s/4000 steps", "efficiency vs previous row");
  double prev_t = 0.0;
  int prev_c = 0;
  for (int cores : cores_list) {
    const double t = 4000.0 * scaling::dpd_step_time(mc, dc, cores);
    double eff_pct = 0.0;
    if (prev_c == 0) {
      std::printf("  %-10d %-16.2f --\n", cores, t);
    } else {
      eff_pct = 100.0 * (prev_t / t) / (static_cast<double>(cores) / prev_c);
      std::printf("  %-10d %-16.2f %.0f%%\n", cores, t, eff_pct);
    }
    rep.row();
    rep.set("machine", std::string(mc.name));
    rep.set("cores", static_cast<double>(cores));
    rep.set("s_per_4000_steps", t);
    rep.set("efficiency_vs_prev_pct", eff_pct);
    prev_t = t;
    prev_c = cores;
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  scaling::ScalingCli cli;
  if (!scaling::parse_scaling_cli(argc, argv, cli)) return 2;
  std::printf("=== Table 5: coupled continuum-DPD strong scaling ===\n");
  std::printf("(paper BG/P: 3205.58 / 1399.12 (107%%) / 665.79 (102%%);\n");
  std::printf(" paper XT5:  2193.66 / 762.99 (144%%))\n\n");
  telemetry::BenchReport rep("table5_coupled_scaling");
  rep.meta("dpd_steps", 4000.0);
  run(scaling::bgp(), {28672, 61440, 126976}, rep);
  run(scaling::xt5(), {17280, 34560, 93312}, rep);
  rep.write();
  std::printf("The super-linearity is the cache effect: per-core particle state crosses\n");
  std::printf("the cache-capacity boundary as cores double (see machine::compute_time).\n");

  if (cli.ranks > 0) {
    scaling::DpdConfig dc;
    const double modeled = scaling::dpd_step_time(scaling::bgp(), dc, cli.ranks);
    telemetry::BenchReport mrep("scaling_table5_coupled");
    mrep.meta("bench", std::string("table5_coupled_scaling"));
    scaling::run_measured_scaling(cli, modeled, mrep);
    mrep.write();
  }
  return 0;
}
