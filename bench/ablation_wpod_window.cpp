// Ablation: WPOD window length (Nts, the steps averaged into one snapshot).
// Short windows give more snapshots with more per-snapshot noise; long
// windows the reverse. The paper uses Nts = 50-500. Fixed total step budget;
// reports the time-resolved accuracy gain over standard windowed averaging
// for each Nts.

#include <cmath>
#include <cstdio>
#include <vector>

#include "dpd/geometry.hpp"
#include "dpd/sampling.hpp"
#include "dpd/system.hpp"
#include "telemetry/bench_report.hpp"
#include "wpod/wpod.hpp"

namespace {

double l2(const la::Vector& a, const la::Vector& b) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += (a[i] - b[i]) * (a[i] - b[i]);
  return std::sqrt(s / static_cast<double>(a.size()));
}

}  // namespace

int main() {
  std::printf("=== Ablation: WPOD window length Nts (fixed 1600-step budget) ===\n\n");
  telemetry::BenchReport rep("ablation_wpod_window");
  rep.meta("step_budget", 1600.0);
  std::printf("%-8s %-10s %-14s %-14s %-8s\n", "Nts", "windows", "std err", "WPOD err",
              "gain");

  for (int nts : {10, 20, 40, 80, 160}) {
    dpd::DpdParams prm;
    prm.box = {12.0, 6.0, 8.0};
    prm.periodic = {true, true, false};
    prm.dt = 0.01;
    dpd::DpdSystem sys(prm, std::make_shared<dpd::ChannelZ>(8.0));
    sys.fill(3.0, dpd::kSolvent, 3, 0.1);
    sys.set_body_force([](const dpd::Vec3&, dpd::Species) { return dpd::Vec3{0.06, 0, 0}; });
    for (int s = 0; s < 600; ++s) sys.step();

    dpd::SamplerParams sp;
    sp.nx = 6;
    sp.ny = 1;
    sp.nz = 16;
    dpd::FieldSampler sampler(sys, sp);
    const int windows = 1600 / nts;
    std::vector<la::Vector> snaps;
    for (int w = 0; w < windows; ++w) {
      for (int s = 0; s < nts; ++s) {
        sys.step();
        sampler.accumulate(sys);
      }
      snaps.push_back(sampler.snapshot());
    }

    wpod::WpodOptions opt;
    opt.max_mean_modes = 1;  // steady flow
    auto wp = wpod::analyze(snaps, opt);
    const auto reference = wpod::standard_average(snaps);
    double err_std = 0.0, err_wpod = 0.0;
    for (std::size_t t = 0; t < snaps.size(); ++t) {
      err_std += l2(snaps[t], reference);
      err_wpod += l2(wp.mean_at(t), reference);
    }
    err_std /= static_cast<double>(snaps.size());
    err_wpod /= static_cast<double>(snaps.size());
    std::printf("%-8d %-10d %-14.4f %-14.4f %-8.1f\n", nts, windows, err_std, err_wpod,
                err_std / err_wpod);
    rep.row();
    rep.set("nts", static_cast<double>(nts));
    rep.set("windows", static_cast<double>(windows));
    rep.set("err_standard", err_std);
    rep.set("err_wpod", err_wpod);
    rep.set("gain", err_std / err_wpod);
  }
  rep.write();
  std::printf("\n(the WPOD gain is largest for short windows — it pools statistics across\n"
              " the whole history, while the standard estimate only has Nts samples)\n");
  return 0;
}
