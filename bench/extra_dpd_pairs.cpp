// DPD pair-iteration throughput: Verlet neighbor list vs the legacy
// per-call cell walk (which also pays a std::function indirect call per
// pair, replicating the pre-fast-path dispatch). Prints pairs/sec for both
// and DPD_PAIRS_SPEEDUP for CI to grep, then measures rebuilds/step across
// skin radii on a live (stepped) system. Writes BENCH_dpd_pairs.json.
// Exits non-zero when the speedup falls below the gate (override with
// NEKTARG_DPD_PAIRS_MIN_SPEEDUP; timing smoke, default is a loose 1.0).

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>

#include "dpd/system.hpp"
#include "telemetry/bench_report.hpp"

namespace {

constexpr double kBoxLen = 12.0;
constexpr double kDensity = 3.0;
constexpr int kWarmupSteps = 50;
constexpr int kTraversals = 25;
constexpr int kRepeats = 5;
constexpr int kLiveSteps = 200;

dpd::DpdSystem make_system(double skin) {
  dpd::DpdParams prm;
  prm.box = {kBoxLen, kBoxLen, kBoxLen};
  prm.periodic = {true, true, true};
  prm.skin = skin;
  dpd::DpdSystem sys(prm, std::make_shared<dpd::NoWalls>());
  sys.fill(kDensity, dpd::kSolvent);
  for (int s = 0; s < kWarmupSteps; ++s) sys.step();
  return sys;
}

struct Throughput {
  double pairs_per_sec = 0.0;
  double best_ms = 0.0;
  std::size_t pairs = 0;
};

/// Best-of-kRepeats time for kTraversals pair sweeps with `sweep()`.
template <class Sweep>
Throughput time_sweeps(Sweep&& sweep) {
  Throughput out;
  double checksum = 0.0;
  for (int r = 0; r < kRepeats; ++r) {
    std::size_t pairs = 0;
    double acc = 0.0;
    const auto t0 = std::chrono::steady_clock::now();
    for (int t = 0; t < kTraversals; ++t) sweep(pairs, acc);
    const auto t1 = std::chrono::steady_clock::now();
    const double ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (r == 0 || ms < out.best_ms) out.best_ms = ms;
    out.pairs = pairs / kTraversals;
    checksum += acc;
  }
  if (!(checksum == checksum)) std::abort();  // keep the work observable
  out.pairs_per_sec =
      static_cast<double>(out.pairs) * kTraversals / (out.best_ms * 1e-3);
  return out;
}

}  // namespace

int main() {
  std::printf("=== DPD pair iteration: Verlet list vs legacy cell walk ===\n");

  auto sys = make_system(0.3);
  const std::size_t n = sys.size();
  std::printf("n=%zu box=%.0f^3 rc=%.1f density=%.1f\n", n, kBoxLen, sys.params().rc, kDensity);

  // Legacy baseline: rebuild the rc-sized cell grid every sweep and pay an
  // indirect call per pair, as the pre-Verlet for_each_pair did.
  const auto legacy = time_sweeps([&](std::size_t& pairs, double& acc) {
    std::function<void(std::size_t, std::size_t, const dpd::Vec3&, double)> visit =
        [&](std::size_t, std::size_t, const dpd::Vec3&, double r) {
          ++pairs;
          acc += r;
        };
    sys.for_each_pair_cellwalk(visit);
  });

  // Fast path: Verlet list (reused while the skin holds) + inlined kernel.
  const auto verlet = time_sweeps([&](std::size_t& pairs, double& acc) {
    sys.for_each_pair([&](std::size_t, std::size_t, const dpd::Vec3&, double r) {
      ++pairs;
      acc += r;
    });
  });

  const double speedup = verlet.pairs_per_sec / legacy.pairs_per_sec;
  std::printf("cellwalk: %10.3e pairs/s  (%.2f ms / %d sweeps, %zu pairs)\n",
              legacy.pairs_per_sec, legacy.best_ms, kTraversals, legacy.pairs);
  std::printf("verlet:   %10.3e pairs/s  (%.2f ms / %d sweeps, %zu pairs)\n",
              verlet.pairs_per_sec, verlet.best_ms, kTraversals, verlet.pairs);
  std::printf("DPD_PAIRS_SPEEDUP=%.2f\n", speedup);

  telemetry::BenchReport rep("dpd_pairs");
  rep.meta("n", static_cast<double>(n));
  rep.meta("box", kBoxLen);
  rep.meta("rc", sys.params().rc);
  rep.meta("density", kDensity);
  rep.meta("traversals", static_cast<double>(kTraversals));
  rep.row();
  rep.set("variant", std::string("cellwalk"));
  rep.set("pairs_per_sec", legacy.pairs_per_sec);
  rep.set("best_ms", legacy.best_ms);
  rep.row();
  rep.set("variant", std::string("verlet"));
  rep.set("pairs_per_sec", verlet.pairs_per_sec);
  rep.set("best_ms", verlet.best_ms);
  rep.set("speedup", speedup);

  // Rebuild frequency on a live run: fresh system per skin, kLiveSteps of
  // real dynamics, rebuilds/reuses read off the neighbor-list counters.
  std::printf("\nskin   rebuilds/step  reuse-frac  pairs-in-list\n");
  for (double skin : {0.15, 0.3, 0.6}) {
    auto live = make_system(skin);
    const auto& nl = live.neighbor_list();
    const std::size_t rb0 = nl.rebuilds(), ru0 = nl.reuses();
    for (int s = 0; s < kLiveSteps; ++s) live.step();
    const double rebuilds = static_cast<double>(nl.rebuilds() - rb0);
    const double reuses = static_cast<double>(nl.reuses() - ru0);
    const double per_step = rebuilds / kLiveSteps;
    const double reuse_frac = reuses / (rebuilds + reuses);
    std::printf("%.2f   %12.3f  %10.3f  %13zu\n", skin, per_step, reuse_frac, nl.pair_count());
    rep.row();
    rep.set("variant", std::string("live"));
    rep.set("skin", skin);
    rep.set("steps", static_cast<double>(kLiveSteps));
    rep.set("rebuilds_per_step", per_step);
    rep.set("reuse_frac", reuse_frac);
    rep.set("list_pairs", static_cast<double>(nl.pair_count()));
  }
  rep.write();

  double min_speedup = 1.0;
  if (const char* v = std::getenv("NEKTARG_DPD_PAIRS_MIN_SPEEDUP")) min_speedup = std::atof(v);
  std::printf("\nDPD_PAIRS_MIN_SPEEDUP=%.2f\n", min_speedup);
  if (speedup < min_speedup) {
    std::printf("FAIL: Verlet speedup below threshold\n");
    return 1;
  }
  std::printf("OK\n");
  return 0;
}
