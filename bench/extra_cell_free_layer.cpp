// Extra validation (paper Sec. 2, citing Fedosov et al. 2010 "Blood flow
// and cell-free layer in microvessels"): suspended RBCs in a channel flow
// migrate away from the walls, leaving a cell-free layer (CFL) next to
// them — the mechanism behind the Fahraeus-Lindqvist viscosity reduction
// the paper's blood-physiology section describes. This bench measures the
// RBC-bead concentration profile across the channel and reports the CFL
// thickness.

#include <cstdio>
#include <vector>

#include "dpd/bonds.hpp"
#include "dpd/geometry.hpp"
#include "dpd/system.hpp"
#include "telemetry/bench_report.hpp"

int main() {
  std::printf("=== Cell-free layer in a DPD RBC suspension ===\n\n");

  dpd::DpdParams prm;
  prm.box = {20.0, 6.0, 10.0};
  prm.periodic = {true, true, false};
  prm.dt = 0.005;
  const double H = 10.0;
  dpd::DpdSystem sys(prm, std::make_shared<dpd::ChannelZ>(H));
  sys.fill(3.0, dpd::kSolvent, 3, 0.1);

  auto bonds = std::make_shared<dpd::BondSet>();
  sys.add_module(bonds);
  int n_cells = 0;
  for (double cx : {2.5, 7.5, 12.5, 17.5})
    for (double cz : {3.3, 6.7}) {
      dpd::RbcRingParams rp;
      rp.center = {cx, 3.0, cz};
      rp.radius = 1.3;
      rp.beads = 14;
      rp.k_spring = 80.0;
      rp.k_bend = 20.0;
      dpd::make_rbc_ring(sys, *bonds, rp);
      ++n_cells;
    }
  std::printf("%d RBC rings suspended among %zu particles\n", n_cells, sys.size());

  sys.set_body_force([](const dpd::Vec3&, dpd::Species) { return dpd::Vec3{0.08, 0, 0}; });
  for (int s = 0; s < 3000; ++s) sys.step();  // let cells migrate

  // RBC bead concentration vs z, accumulated over a window
  constexpr int kBins = 20;
  std::vector<double> rbc(kBins, 0.0), all(kBins, 0.0);
  for (int s = 0; s < 2000; ++s) {
    sys.step();
    for (std::size_t i = 0; i < sys.size(); ++i) {
      const int b = std::clamp(static_cast<int>(sys.positions()[i].z / H * kBins), 0,
                               kBins - 1);
      all[static_cast<std::size_t>(b)] += 1.0;
      if (sys.species()[i] == dpd::kRbcBead) rbc[static_cast<std::size_t>(b)] += 1.0;
    }
  }

  double core = 0.0;
  for (int b = kBins / 2 - 2; b < kBins / 2 + 2; ++b) core += rbc[static_cast<std::size_t>(b)];
  core /= 4.0;

  telemetry::BenchReport rep("extra_cell_free_layer");
  rep.meta("rbc_rings", static_cast<double>(n_cells));
  rep.meta("channel_height", H);
  std::printf("\n%-10s %-14s %-12s\n", "z", "RBC fraction", "profile");
  for (int b = 0; b < kBins; ++b) {
    const double frac = all[static_cast<std::size_t>(b)] > 0
                            ? rbc[static_cast<std::size_t>(b)] / all[static_cast<std::size_t>(b)]
                            : 0.0;
    std::printf("%-10.2f %-14.4f ", (b + 0.5) * H / kBins, frac);
    const int bars = static_cast<int>(frac * 120);
    for (int q = 0; q < bars && q < 40; ++q) std::printf("#");
    std::printf("\n");
    rep.row();
    rep.set("z", (b + 0.5) * H / kBins);
    rep.set("rbc_fraction", frac);
  }

  // CFL thickness: distance from the wall to the first bin with >= 50% of
  // the core RBC concentration
  auto cfl = [&](bool top) {
    for (int k = 0; k < kBins / 2; ++k) {
      const int b = top ? kBins - 1 - k : k;
      if (rbc[static_cast<std::size_t>(b)] >= 0.5 * core)
        return (static_cast<double>(k) + 0.5) * H / kBins;
    }
    return 0.5 * H;
  };
  const double cfl_bot = cfl(false), cfl_top = cfl(true);
  std::printf("\ncell-free layer thickness: bottom %.2f rc, top %.2f rc (channel H = %.0f)\n",
              cfl_bot, cfl_top, H);
  std::printf("(expected: CFL > 0 on both walls — cells migrate to the core, as in the\n"
              " microvessel experiments/simulations the paper builds on)\n");
  rep.meta("cfl_bottom", cfl_bot);
  rep.meta("cfl_top", cfl_top);
  rep.write();
  return (cfl_bot > 0.0 && cfl_top > 0.0) ? 0 : 1;
}
