// Fig. 5 reproduction: the coupled time-progression schedule. The paper
// sets dt_NS = 20 dt_DPD and exchanges boundary conditions every
// tau = 10 dt_NS = 200 dt_DPD (~0.0344 s). This bench drives the *real*
// coupled solver (SEM Navier-Stokes + DPD) through three coupling intervals
// and prints the realised ledger: when each solver stepped and when the
// exchanges fired.

#include <cstdio>

#include "coupling/cdc.hpp"
#include "coupling/scales.hpp"
#include "dpd/geometry.hpp"
#include "dpd/inflow.hpp"
#include "dpd/system.hpp"
#include "mesh/quadmesh.hpp"
#include "sem/ns2d.hpp"
#include "telemetry/bench_report.hpp"

int main() {
  std::printf("=== Fig. 5: time progression in the coupled solver ===\n");
  std::printf("(paper: dt_NS = 20 dt_DPD, exchange every tau = 10 dt_NS = 200 dt_DPD)\n\n");

  auto m = mesh::QuadMesh::channel(4.0, 1.0, 8, 2);
  sem::Discretization d(m, 4);
  sem::NavierStokes2D::Params nsp;
  nsp.nu = 0.05;
  nsp.dt = 2e-3;
  sem::NavierStokes2D ns(d, nsp);
  ns.set_velocity_bc(mesh::kInlet,
                     [](double, double y, double) { return 4.0 * y * (1.0 - y); },
                     [](double, double, double) { return 0.0; });
  ns.set_natural_bc(mesh::kOutlet);

  dpd::DpdParams dp;
  dp.box = {12.0, 5.0, 8.0};
  dp.periodic = {false, true, false};
  dp.dt = 0.01;
  dpd::DpdSystem sys(dp, std::make_shared<dpd::ChannelZ>(8.0));
  sys.fill(3.0, dpd::kSolvent, 4, 0.1);
  dpd::FlowBcParams fp;
  fp.axis = 0;
  dpd::FlowBc bc(fp);

  coupling::ScaleMap scales;
  scales.L_ns = 1.0;
  scales.L_dpd = 8.0;
  scales.nu_ns = 0.05;
  scales.nu_dpd = 1.0;
  coupling::TimeProgression tp;  // paper defaults: 10 NS steps, 20 DPD per NS
  tp.dt_ns = nsp.dt;
  coupling::ContinuumDpdCoupler cdc(ns, sys, bc, {1.5, 2.5, 0.0, 1.0}, scales, tp);

  std::printf("schedule: tau = %d NS steps = %d DPD steps; tau_NS = %.4f (NS time units)\n\n",
              tp.exchange_every_ns, tp.dpd_steps_per_exchange(), tp.tau_ns());
  telemetry::BenchReport rep("fig5_time_progression");
  rep.meta("exchange_every_ns", static_cast<double>(tp.exchange_every_ns));
  rep.meta("dpd_per_ns", static_cast<double>(tp.dpd_per_ns));
  rep.meta("tau_ns", tp.tau_ns());
  std::printf("%-10s %-14s %-14s %-12s\n", "interval", "NS steps done", "DPD steps done",
              "exchanges");
  for (int interval = 1; interval <= 3; ++interval) {
    cdc.advance_interval();
    const double ns_steps = ns.time() / nsp.dt;
    const auto dpd_steps = static_cast<double>(sys.step_count());
    std::printf("%-10d %-14.0f %-14.0f %-12zu\n", interval, ns_steps, dpd_steps,
                cdc.exchanges());
    rep.row();
    rep.set("interval", static_cast<double>(interval));
    rep.set("ns_steps", ns_steps);
    rep.set("dpd_steps", dpd_steps);
    rep.set("exchanges", static_cast<double>(cdc.exchanges()));
  }
  const bool ok = sys.step_count() == 3ull * tp.dpd_steps_per_exchange() &&
                  cdc.exchanges() == 3;
  const double realised_ratio =
      static_cast<double>(sys.step_count()) / (ns.time() / nsp.dt);
  std::printf("\nrealised ratio: %llu DPD steps / %.0f NS steps = %.1f (target %d)  [%s]\n",
              static_cast<unsigned long long>(sys.step_count()), ns.time() / nsp.dt,
              realised_ratio, tp.dpd_per_ns, ok ? "OK" : "MISMATCH");
  rep.meta("realised_ratio", realised_ratio);
  rep.meta("ok", std::string(ok ? "true" : "false"));
  rep.write();
  return ok ? 0 : 1;
}
