// Ablation: the CG "good initial state" prediction (Fischer-style
// successive-solution projection), one of the solver accelerations the
// paper credits for NEKTAR's convergence. Sweeps the projection depth on a
// time series of Helmholtz solves with a smoothly evolving right-hand side
// (what the unsteady splitting scheme produces every step) and reports the
// average CG iteration count.

#include <cmath>
#include <cstdio>

#include "mesh/quadmesh.hpp"
#include "sem/discretization.hpp"
#include "sem/helmholtz.hpp"
#include "sem/operators.hpp"
#include "telemetry/bench_report.hpp"

int main() {
  std::printf("=== Ablation: initial-guess projection depth vs CG iterations ===\n\n");

  auto m = mesh::QuadMesh::lid_cavity(4);
  sem::Discretization d(m, 6);
  sem::Operators ops(d);

  telemetry::BenchReport rep("ablation_initial_guess");
  rep.meta("order", 6.0);
  rep.meta("steps", 24.0);
  std::printf("%-8s %-18s %-18s\n", "depth", "iters (steps 1-4)", "iters (steps 5-24)");
  for (std::size_t depth : {0u, 1u, 2u, 4u, 8u, 16u}) {
    sem::HelmholtzSolver hs(ops, 50.0, 1.0, {mesh::kWall, mesh::kInlet});
    hs.set_projection_depth(depth);
    la::Vector u;
    std::size_t warmup = 0, steady = 0;
    for (int step = 0; step < 24; ++step) {
      la::Vector f(d.num_nodes());
      const double t = 0.04 * step;
      for (std::size_t g = 0; g < d.num_nodes(); ++g)
        f[g] = std::sin(M_PI * d.node_x(g) + t) * std::sin(M_PI * d.node_y(g) - 0.5 * t);
      auto res = hs.solve(f, [](double, double) { return 0.0; }, u);
      (step < 4 ? warmup : steady) += res.iterations;
    }
    std::printf("%-8zu %-18.1f %-18.1f\n", depth, warmup / 4.0, steady / 20.0);
    rep.row();
    rep.set("depth", static_cast<double>(depth));
    rep.set("iters_warmup_avg", warmup / 4.0);
    rep.set("iters_steady_avg", steady / 20.0);
  }
  rep.write();
  std::printf("\n(depth 0 = no prediction; the paper's accelerated solver corresponds to\n"
              " a nonzero depth — expect several-fold iteration reduction once the\n"
              " basis covers the RHS's temporal variation)\n");
  return 0;
}
