// Fig. 7 reproduction: WPOD as a co-processing tool on DPD simulations of
// healthy vs diseased RBCs.
//   * ensemble-average velocity: a per-window standard average (the only
//     time-resolved estimate plain averaging can give) vs the WPOD mean,
//     both judged against the full-history average; the paper quotes ~1
//     order of magnitude accuracy gain, equivalent to ~25 concurrent
//     realizations,
//   * the PDF of the streamwise velocity fluctuations u' (particle velocity
//     minus the WPOD ensemble mean) is gaussian — paper: sigma = 1.03.
// Healthy cells are flexible bead-spring rings; diseased (malaria-stiffened)
// cells are an order of magnitude stiffer.

#include <cmath>
#include <cstdio>
#include <vector>

#include "dpd/bonds.hpp"
#include "dpd/geometry.hpp"
#include "dpd/sampling.hpp"
#include "dpd/system.hpp"
#include "la/stats.hpp"
#include "telemetry/bench_report.hpp"
#include "wpod/wpod.hpp"

namespace {

constexpr int kWindows = 80;
constexpr int kNts = 10;  // short windows: time-resolved estimates

struct RunResult {
  std::vector<la::Vector> snapshots;
  std::vector<double> raw_fluct;  ///< particle-level u' samples
  double mean_flow = 0.0;
};

RunResult run_rbc_channel(double k_spring, unsigned seed) {
  dpd::DpdParams prm;
  prm.box = {16.0, 6.0, 8.0};
  prm.periodic = {true, true, false};
  prm.dt = 0.01;
  dpd::DpdSystem sys(prm, std::make_shared<dpd::ChannelZ>(8.0));
  sys.fill(3.0, dpd::kSolvent, seed, 0.1);
  auto bonds = std::make_shared<dpd::BondSet>();
  sys.add_module(bonds);
  for (double cx : {4.0, 9.0, 14.0}) {
    dpd::RbcRingParams rp;
    rp.center = {cx, 3.0, 4.0};
    rp.radius = 1.4;
    rp.beads = 14;
    rp.k_spring = k_spring;
    rp.k_bend = 0.25 * k_spring;
    dpd::make_rbc_ring(sys, *bonds, rp);
  }
  sys.set_body_force([](const dpd::Vec3&, dpd::Species) { return dpd::Vec3{0.05, 0, 0}; });
  for (int s = 0; s < 800; ++s) sys.step();  // develop the flow

  dpd::SamplerParams sp;
  sp.nx = 8;
  sp.ny = 1;
  sp.nz = 16;  // 128 bins of ~rc size, as in Sec. 3.4
  dpd::FieldSampler sampler(sys, sp);

  RunResult out;
  double flow = 0.0;
  std::size_t flow_n = 0;
  for (int w = 0; w < kWindows; ++w) {
    for (int s = 0; s < kNts; ++s) {
      sys.step();
      sampler.accumulate(sys);
      // raw particle fluctuations around the local bulk (collected sparsely)
      if (s == kNts / 2) {
        for (std::size_t i = 0; i < sys.size(); i += 7) {
          if (sys.species()[i] != dpd::kSolvent) continue;
          out.raw_fluct.push_back(sys.velocities()[i].x);
        }
      }
    }
    auto snap = sampler.snapshot();
    for (std::size_t b = 0; b < snap.size(); ++b) {
      flow += snap[b];
      ++flow_n;
    }
    out.snapshots.push_back(std::move(snap));
  }
  out.mean_flow = flow / static_cast<double>(flow_n);
  return out;
}

double l2(const la::Vector& a, const la::Vector& b) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += (a[i] - b[i]) * (a[i] - b[i]);
  return std::sqrt(s / static_cast<double>(a.size()));
}

}  // namespace

int main() {
  std::printf("=== Fig. 7: WPOD vs standard averaging, healthy vs diseased RBCs ===\n");
  std::printf("(%d windows of Nts = %d steps; steady tube flow with suspended cells)\n\n",
              kWindows, kNts);

  telemetry::BenchReport rep("fig7_wpod_averaging");
  rep.meta("windows", static_cast<double>(kWindows));
  rep.meta("nts", static_cast<double>(kNts));
  for (const auto& [label, k] : {std::pair{"healthy (flexible)", 60.0},
                                 std::pair{"diseased (stiff)", 600.0}}) {
    auto run = run_rbc_channel(k, 17);
    // steady flow: the ensemble mean is the single dominant mode; the
    // adaptive split may also keep weak cell-motion modes, which a
    // time-averaged reference would misclassify as noise, so cap at 1
    // for this comparison (the uncapped split is reported alongside).
    auto wp_adaptive = wpod::analyze(run.snapshots);
    wpod::WpodOptions opt;
    opt.max_mean_modes = 1;
    auto wp = wpod::analyze(run.snapshots, opt);
    const auto reference = wpod::standard_average(run.snapshots);  // full history

    // time-resolved estimates vs the full-history reference
    double err_std = 0.0, err_wpod = 0.0;
    for (std::size_t t = 0; t < run.snapshots.size(); ++t) {
      err_std += l2(run.snapshots[t], reference);   // one-window standard avg
      err_wpod += l2(wp.mean_at(t), reference);     // WPOD ensemble mean
    }
    err_std /= static_cast<double>(run.snapshots.size());
    err_wpod /= static_cast<double>(run.snapshots.size());

    // particle-level fluctuations around the WPOD mean flow
    std::vector<double> fluct = run.raw_fluct;
    const double bulk = run.mean_flow;
    for (double& v : fluct) v -= bulk;  // remove mean flow; profile variation << sigma
    auto mom = la::stats::moments(fluct);
    auto hist = la::stats::histogram(fluct, -5 * mom.stddev, 5 * mom.stddev, 50);
    const double l1 = la::stats::gaussian_l1_distance(hist, mom.mean, mom.stddev);

    std::printf("%s: mean flow %.3f, adaptive split kept %zu mean mode(s) of %d\n",
                label, run.mean_flow, wp_adaptive.k_mean, kWindows);
    std::printf("  time-resolved mean error vs reference: standard %.4f | WPOD %.4f\n",
                err_std, err_wpod);
    std::printf("  accuracy gain: %.1fx; equivalent concurrent realisations: %.0f\n",
                err_std / err_wpod, std::pow(err_std / err_wpod, 2.0));
    std::printf("  fluctuation PDF: sigma = %.3f (paper: 1.03), skew = %.2f, "
                "L1-to-gaussian = %.3f\n\n",
                mom.stddev, mom.skewness, l1);
    rep.row();
    rep.set("case", std::string(label));
    rep.set("k_spring", k);
    rep.set("mean_flow", run.mean_flow);
    rep.set("err_standard", err_std);
    rep.set("err_wpod", err_wpod);
    rep.set("accuracy_gain", err_std / err_wpod);
    rep.set("sigma", mom.stddev);
    rep.set("skewness", mom.skewness);
    rep.set("l1_to_gaussian", l1);
  }
  rep.write();
  std::printf("(paper: WPOD ~1 order of magnitude more accurate than standard averaging,\n"
              " equal to ~25 concurrent realisations; fluctuation PDF gaussian, sigma=1.03)\n");
  return 0;
}
