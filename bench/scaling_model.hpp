#pragma once
// Shared machine/solver model behind the Table 3-5 scaling benches.
//
// What is real: the element-graph partitions (computed by the repo's
// partitioner), the halo/interface communication schedules they imply, and
// the torus cost replay. What is modeled (and why): per-element flop counts,
// CG iteration growth with partition count (the paper itself notes that
// preconditioners "are typically not scalable on more than a thousand
// processors"), and the per-core cache effect that produces Table 5's
// superlinear DPD scaling. Constants are calibrated once against the
// paper's absolute numbers and then held fixed across every row, so the
// *shape* of each table is a genuine model output.

#include <algorithm>
#include <cmath>
#include <vector>

#include "machine/cost.hpp"
#include "machine/torus.hpp"
#include "mesh/graph.hpp"
#include "mesh/partition.hpp"

namespace scaling {

struct MachineConfig {
  const char* name = "BG/P";
  int cores_per_node = 4;
  double flops_per_core = 3.4e9;
  double link_bandwidth = 425e6;
  /// effective per-core share of the cache hierarchy (BG/P: 8 MB L3 / 4
  /// cores, discounted for sharing)
  double cache_bytes = 1.0 * (1u << 20);
  double out_of_cache_slowdown = 1.2;
};

inline MachineConfig bgp() { return {}; }

inline MachineConfig xt5() {
  MachineConfig m;
  m.name = "Cray XT5";
  m.cores_per_node = 12;
  m.flops_per_core = 10.4e9;        // 2.6 GHz Istanbul, 4 flops/cycle
  m.link_bandwidth = 3.2e9;         // SeaStar2+ per-link
  m.cache_bytes = 2.2 * (1u << 20); // effective per-core share incl. L2
  m.out_of_cache_slowdown = 2.14;   // steeper memory penalty than BG/P
  return m;
}

inline machine::Torus torus_for(const MachineConfig& m, int cores) {
  machine::TorusSpec spec;
  spec.cores_per_node = m.cores_per_node;
  spec.link_bandwidth = m.link_bandwidth;
  const int nodes = std::max(1, cores / m.cores_per_node);
  int nx = 1;
  while (nx * nx * nx < nodes) ++nx;
  spec.nx = nx;
  spec.ny = std::max(1, nodes / (nx * nx));
  spec.nz = std::max(1, nodes / (nx * spec.ny));
  while (spec.nx * spec.ny * spec.nz < nodes) ++spec.nz;
  return machine::Torus(spec);
}

// ---------------------------------------------------------------------------
// SEM patch model (Tables 3-4)
// ---------------------------------------------------------------------------

struct SemPatchConfig {
  std::size_t elements = 17474;  ///< per patch (paper Sec. 4.1)
  int P = 10;                    ///< polynomial order
  std::size_t interface_elements = 1114;
  double flops_per_element_per_iter = 6.5e5;  ///< tensor kernels at P = 10
  int base_iterations = 215;     ///< CG iterations (all solves) per step
  /// CG iteration growth per doubling of partitions beyond 1024 (models the
  /// preconditioner degradation the paper describes).
  double iter_growth_per_doubling = 0.15;
  /// Iteration penalty per doubling of patch count beyond 3 (interface
  /// conditions lag by one step, slowing convergence slightly).
  double patch_lag_per_doubling = 0.035;
};

struct SemTime {
  double per_step = 0.0;
  double compute = 0.0;
  double halo = 0.0;
  double interface = 0.0;
};

/// Per-step modeled time for Np patches with `cores_per_patch` cores each.
inline SemTime sem_step_time(const MachineConfig& mc, const SemPatchConfig& pc, int patches,
                             int cores_per_patch) {
  const int total_cores = patches * cores_per_patch;
  const machine::Torus torus = torus_for(mc, total_cores);
  // Each patch's halo traffic stays inside its own L2 (rack) sub-box of the
  // machine -- the whole point of the topology-aware MCI split -- so the
  // intra-patch replay uses a torus sized for one patch.
  const machine::Torus patch_torus = torus_for(mc, cores_per_patch);
  machine::ComputeSpec cs;
  cs.flops_per_sec = mc.flops_per_core;
  cs.cache_bytes = mc.cache_bytes;
  cs.out_of_cache_slowdown = mc.out_of_cache_slowdown;

  // --- iteration count model ---
  double iters = pc.base_iterations;
  if (cores_per_patch > 1024)
    iters *= 1.0 + pc.iter_growth_per_doubling * std::log2(cores_per_patch / 1024.0);
  if (patches > 3) iters *= 1.0 + pc.patch_lag_per_doubling * std::log2(patches / 3.0);

  // --- intra-patch: real partition of the element graph, replayed ---
  const auto side = static_cast<std::size_t>(std::lround(std::cbrt(double(pc.elements))));
  auto graph = mesh::hex_grid_graph(side, side, side, pc.P,
                                    mesh::AdjacencyPolicy::FullDofWeighted);
  auto part = mesh::partition_graph(graph, cores_per_patch);
  auto quality = mesh::evaluate_partition(graph, part);

  const double max_elems = quality.max_part_load;  // unit vertex weights
  const double compute_per_iter =
      machine::compute_time(cs, max_elems * pc.flops_per_element_per_iter,
                            max_elems * 5.0e4 /* bytes per element working set */);

  // halo exchange per iteration: the partition's comm volumes on patch 0's
  // rank range (all patches behave identically; contention within a patch)
  // one field is exchanged per CG iteration: 8 bytes per shared dof
  std::vector<machine::Message> halo;
  for (const auto& pv : mesh::comm_volumes(graph, part)) {
    halo.push_back({pv.a, pv.b, pv.weight * 8.0});
    halo.push_back({pv.b, pv.a, pv.weight * 8.0});
  }
  const double halo_per_iter =
      machine::phase_cost(patch_torus, halo, machine::Routing::Adaptive).total();

  // --- inter-patch interface exchange: once per step (Sec. 3.2) ---
  // chain of patches; L4 root of patch k exchanges the full interface
  // payload with patch k+1's root: gather + p2p + scatter, serialised at
  // the roots.
  const double iface_bytes = static_cast<double>(pc.interface_elements) * (pc.P + 1.0) *
                             (pc.P + 1.0) * 3.0 * 8.0;
  std::vector<machine::Message> roots;
  for (int k = 0; k + 1 < patches; ++k) {
    const int root_a = k * cores_per_patch;
    const int root_b = (k + 1) * cores_per_patch;
    roots.push_back({root_a, root_b, iface_bytes});
    roots.push_back({root_b, root_a, iface_bytes});
  }
  const double p2p = machine::phase_cost(torus, roots, machine::Routing::Adaptive).total();
  // gather+scatter at each root: the payload crosses the root's node links
  const double gather_scatter = 2.0 * iface_bytes / mc.link_bandwidth;
  const double iface = patches > 1 ? p2p + gather_scatter : 0.0;

  SemTime t;
  t.compute = iters * compute_per_iter;
  t.halo = iters * halo_per_iter;
  t.interface = iface;
  t.per_step = t.compute + t.halo + t.interface;
  return t;
}

// ---------------------------------------------------------------------------
// DPD model (Table 5)
// ---------------------------------------------------------------------------

struct DpdConfig {
  double particles = 823'079'981.0;  ///< paper Table 5
  double flops_per_particle_per_step = 8.0e4;  ///< pairs + lists + bonded terms
  double bytes_per_particle = 105.0;           ///< hot per-step particle state
  int ns_cores = 4096;                         ///< fixed continuum allocation
  double ns_step_time = 0.45;                  ///< per NS step (overlapped)
};

/// Per-DPD-step modeled time on `cores` cores.
inline double dpd_step_time(const MachineConfig& mc, const DpdConfig& dc, int cores) {
  const machine::Torus torus = torus_for(mc, cores);
  machine::ComputeSpec cs;
  cs.flops_per_sec = mc.flops_per_core;
  cs.cache_bytes = mc.cache_bytes;
  cs.out_of_cache_slowdown = mc.out_of_cache_slowdown;

  const double per_core = dc.particles / cores;
  const double compute = machine::compute_time(cs, per_core * dc.flops_per_particle_per_step,
                                               per_core * dc.bytes_per_particle);

  // halo: particles within rc of the subdomain surface ~ (V^(2/3) scaling);
  // ghost exchange with 6 face neighbours per step
  const double side = std::cbrt(per_core / 3.0);  // number density ~3
  const double ghost_particles = 6.0 * side * side * 3.0;
  const double ghost_bytes = ghost_particles * 48.0;  // pos+vel
  std::vector<machine::Message> halo;
  // representative node: rank 0 exchanging with 6 neighbours
  for (int d = 0; d < 6; ++d) {
    const int nb = (d + 1) * mc.cores_per_node;
    if (nb < cores) {
      halo.push_back({0, nb, ghost_bytes});
      halo.push_back({nb, 0, ghost_bytes});
    }
  }
  const double comm = machine::phase_cost(torus, halo, machine::Routing::Adaptive).total();
  return compute + comm;
}

}  // namespace scaling
