// Payoff of the two distributed-DPD optimisations layered on the exchange
// protocol (src/dpd/exchange/): (1) overlapped halo refresh — nonblocking
// lanes posted by HaloExchanger::begin_update fly while the engine computes
// interior neighbor-list rows (DistOptions::overlap); (2) particle-count
// load balancing — Decomposition::rebalance shifts cut planes toward equal
// owned counts on a skewed population (DistOptions::rebalance_every). Both
// are bitwise trajectory-neutral (tests/dpd_exchange_test.cpp), so this
// bench measures pure wall-time ratios on 4 threads-mode ranks. Prints
// DPD_OVERLAP_SPEEDUP and DPD_REBALANCE_SPEEDUP for CI to grep and writes
// BENCH_dpd_overlap.json. Exits non-zero when a ratio falls below
// NEKTARG_DPD_OVERLAP_MIN_SPEEDUP / NEKTARG_DPD_REBALANCE_MIN_SPEEDUP —
// unset, the gates are a loose 0.0: threads-mode overlap only pays with
// real cores (CI pins 1.10 and 1.30 on its 4-core runners).

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "dpd/exchange/distributed.hpp"
#include "dpd/system.hpp"
#include "telemetry/bench_report.hpp"
#include "xmp/comm.hpp"

namespace {

constexpr double kDensity = 3.0;
constexpr int kRanks = 4;
constexpr int kWarmupSteps = 10;
constexpr int kSteps = 30;
constexpr int kRepeats = 3;

dpd::DpdParams params() {
  dpd::DpdParams prm;
  prm.box = {16.0, 8.0, 8.0};
  prm.periodic = {true, true, false};
  return prm;
}

std::shared_ptr<dpd::DpdSystem> make_system(bool skewed) {
  const auto prm = params();
  auto sys = std::make_shared<dpd::DpdSystem>(prm, std::make_shared<dpd::ChannelZ>(prm.box.z));
  sys->fill(kDensity, dpd::kSolvent, 42);
  if (skewed) {
    // Crowd everything into x < box.x/2 — a uniform x-split leaves half the
    // ranks idle, the worst case the rebalancer is built for.
    std::vector<std::size_t> drop;
    for (std::size_t i = 0; i < sys->size(); ++i)
      if (sys->positions()[i].x > prm.box.x / 2.0) drop.push_back(i);
    sys->remove_particles(std::move(drop));
  }
  sys->set_body_force([](const dpd::Vec3&, dpd::Species) { return dpd::Vec3{0.05, 0.0, 0.0}; });
  return sys;
}

/// Best-of-kRepeats wall time for kSteps on kRanks ranks split along x.
double time_steps(bool skewed, bool overlap, int rebalance_every) {
  double best_ms = 0.0;
  for (int r = 0; r < kRepeats; ++r) {
    double ms = 0.0;
    xmp::run(kRanks, [&](xmp::Comm& world) {
      auto sys = make_system(skewed);
      dpd::exchange::DistOptions opt;
      opt.dims = {kRanks, 1, 1};
      opt.overlap = overlap;
      opt.rebalance_every = rebalance_every;
      dpd::exchange::DistributedDpd drv(world, *sys, opt);
      drv.distribute();
      for (int s = 0; s < kWarmupSteps; ++s) sys->step();
      const auto t0 = std::chrono::steady_clock::now();
      for (int s = 0; s < kSteps; ++s) sys->step();
      const auto t1 = std::chrono::steady_clock::now();
      if (world.rank() == 0) ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
    });
    if (r == 0 || ms < best_ms) best_ms = ms;
  }
  return best_ms;
}

}  // namespace

/// Global pair count at rc after warmup (plain engine), for the pairs/sec
/// normalisation.
std::size_t probe_pairs(bool skewed) {
  auto sys = make_system(skewed);
  for (int s = 0; s < kWarmupSteps; ++s) sys->step();
  std::size_t pairs = 0;
  sys->for_each_pair([&](std::size_t, std::size_t, const dpd::Vec3&, double) { ++pairs; });
  return pairs;
}

int main() {
  std::printf("=== Distributed DPD overlap + rebalancing (%d threads-mode ranks) ===\n", kRanks);

  const std::size_t pairs_balanced = probe_pairs(false);
  const std::size_t pairs_skewed = probe_pairs(true);
  std::printf("global pairs: balanced=%zu skewed=%zu steps=%d\n", pairs_balanced, pairs_skewed,
              kSteps);
  std::printf("case                        time/step    pairs/sec\n");

  telemetry::BenchReport rep("dpd_overlap");
  rep.meta("ranks", static_cast<double>(kRanks));
  rep.meta("steps", static_cast<double>(kSteps));
  rep.meta("pairs_balanced", static_cast<double>(pairs_balanced));
  rep.meta("pairs_skewed", static_cast<double>(pairs_skewed));

  struct Case {
    const char* name;
    bool skewed, overlap;
    int rebalance_every;
  };
  const Case cases[] = {
      {"balanced blocking halo", false, false, 0},
      {"balanced overlapped halo", false, true, 0},
      {"skewed  no rebalance", true, false, 0},
      {"skewed  rebalance every 5", true, false, 5},
  };
  double ms[4] = {};
  for (int c = 0; c < 4; ++c) {
    ms[c] = time_steps(cases[c].skewed, cases[c].overlap, cases[c].rebalance_every);
    // 2 force evaluations per step (modified velocity-Verlet predictor pass
    // at step start plus the post-drift pass)
    const auto pairs = cases[c].skewed ? pairs_skewed : pairs_balanced;
    const double pps = 2.0 * static_cast<double>(pairs) * kSteps / (ms[c] * 1e-3);
    std::printf("%-26s %7.2f ms  %10.3e\n", cases[c].name, ms[c] / kSteps, pps);
    rep.row();
    rep.set("case", cases[c].name);
    rep.set("best_ms", ms[c]);
    rep.set("pairs_per_sec", pps);
  }

  const double overlap_speedup = ms[0] / ms[1];
  const double rebalance_speedup = ms[2] / ms[3];
  std::printf("DPD_OVERLAP_SPEEDUP=%.2f\n", overlap_speedup);
  std::printf("DPD_REBALANCE_SPEEDUP=%.2f\n", rebalance_speedup);
  rep.meta("overlap_speedup", overlap_speedup);
  rep.meta("rebalance_speedup", rebalance_speedup);
  rep.write();

  int rc = 0;
  const auto gate = [&rc](const char* env, const char* what, double got) {
    double min = 0.0;
    if (const char* v = std::getenv(env)) min = std::atof(v);
    if (got < min) {
      std::fprintf(stderr, "FAIL: %s %.2f below gate %.2f\n", what, got, min);
      rc = 1;
    }
  };
  gate("NEKTARG_DPD_OVERLAP_MIN_SPEEDUP", "overlap speedup", overlap_speedup);
  gate("NEKTARG_DPD_REBALANCE_MIN_SPEEDUP", "rebalance speedup", rebalance_speedup);
  return rc;
}
