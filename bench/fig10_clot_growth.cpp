// Fig. 10 reproduction: platelet aggregation on the aneurysm wall in the
// coupled continuum-atomistic simulation. A DPD channel-with-cavity domain
// (the aneurysm sac) is driven by the continuum channel flow; platelets that
// linger near the damaged cavity wall trigger, activate after the delay
// time, and arrest — yellow (active) and red (inactive) spheres in the
// paper's rendering. The output is the thrombus growth curve: bound
// platelets vs time, for two activation delays (the Pivkin et al. knob the
// model inherits).

#include <cstdio>

#include "coupling/cdc.hpp"
#include "dpd/geometry.hpp"
#include "dpd/inflow.hpp"
#include "dpd/platelets.hpp"
#include "dpd/system.hpp"
#include "mesh/quadmesh.hpp"
#include "sem/ns2d.hpp"
#include "telemetry/bench_report.hpp"

namespace {

void run_clot(double activation_delay, telemetry::BenchReport& rep) {
  // continuum: channel with an aneurysm-like cavity (Re ~ a few hundred,
  // scaled down; flow over the cavity mouth leaves the sac slow - the clot
  // nucleation condition)
  auto m = mesh::QuadMesh::channel_with_cavity(8.0, 1.0, 3.0, 5.0, 1.0, 16, 2);
  sem::Discretization d(m, 4);
  sem::NavierStokes2D::Params nsp;
  nsp.nu = 0.02;
  nsp.dt = 2e-3;
  sem::NavierStokes2D ns(d, nsp);
  ns.set_velocity_bc(mesh::kInlet,
                     [](double, double y, double) { return 4.0 * y * (1.0 - y); },
                     [](double, double, double) { return 0.0; });
  ns.set_natural_bc(mesh::kOutlet);
  for (int s = 0; s < 150; ++s) ns.step();

  // atomistic: the cavity region, DPD units (cavity = upper half of the box)
  dpd::DpdParams dp;
  dp.box = {20.0, 5.0, 10.0};
  dp.periodic = {false, true, false};
  dp.dt = 0.01;
  auto geom = std::make_shared<dpd::ChannelWithCavityZ>(5.0, 6.0, 14.0, 5.0);
  dpd::DpdSystem sys(dp, geom);
  sys.fill(3.0, dpd::kSolvent, 41, 0.1);

  dpd::PlateletParams pp;
  // damaged endothelium: the cavity walls (above the channel roof level)
  pp.adhesive_region = [](const dpd::Vec3& p) { return p.z > 5.0; };
  pp.trigger_distance = 1.2;
  pp.activation_delay = activation_delay;
  pp.bind_distance = 0.8;
  pp.bind_speed = 1.2;
  auto platelets = std::make_shared<dpd::PlateletModel>(pp);
  sys.add_module(platelets);
  platelets->seed_platelets(sys, 60, 5);

  dpd::FlowBcParams fp;
  fp.axis = 0;
  fp.buffer_len = 2.0;
  fp.density = 3.0;
  fp.relax = 0.3;
  dpd::FlowBc bc(fp);

  // DPD box spans NS x in [2,6] (cavity mouth 3..5), z -> full height incl sac
  coupling::ScaleMap scales;
  scales.L_ns = 1.0;
  scales.L_dpd = 5.0;  // channel height
  scales.nu_ns = 0.02;
  scales.nu_dpd = 0.4;
  coupling::TimeProgression tp;
  tp.dt_ns = nsp.dt;
  tp.exchange_every_ns = 5;
  tp.dpd_per_ns = 10;
  coupling::ContinuumDpdCoupler cdc(ns, sys, bc, {2.0, 6.0, 0.0, 2.0}, scales, tp);

  std::printf("activation delay = %.1f (DPD time units):\n", activation_delay);
  std::printf("  %-10s %-9s %-10s %-8s %-7s\n", "DPD time", "passive", "triggered",
              "active", "bound");
  for (int block = 0; block < 8; ++block) {
    for (int interval = 0; interval < 4; ++interval)
      cdc.advance_interval([&] { platelets->update(sys); });
    const std::size_t passive = platelets->count(dpd::PlateletState::Passive);
    const std::size_t triggered = platelets->count(dpd::PlateletState::Triggered);
    const std::size_t active = platelets->count(dpd::PlateletState::Active);
    const std::size_t bound = platelets->count(dpd::PlateletState::Bound);
    std::printf("  %-10.1f %-9zu %-10zu %-8zu %-7zu\n", sys.time(), passive, triggered, active,
                bound);
    rep.row();
    rep.set("activation_delay", activation_delay);
    rep.set("dpd_time", sys.time());
    rep.set("passive", static_cast<double>(passive));
    rep.set("triggered", static_cast<double>(triggered));
    rep.set("active", static_cast<double>(active));
    rep.set("bound", static_cast<double>(bound));
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("=== Fig. 10: platelet aggregation on the aneurysm wall ===\n");
  std::printf("(expected: bound count grows as platelets entering the sac activate and\n");
  std::printf(" arrest, then saturates; longer activation delay slows the growth)\n\n");
  telemetry::BenchReport rep("fig10_clot_growth");
  rep.meta("platelets", 60.0);
  run_clot(1.0, rep);
  run_clot(6.0, rep);
  rep.write();
  return 0;
}
