// Table 3 reproduction: weak scaling of the multi-patch SEM flow solver on
// BlueGene/P and Cray XT5 — Np = 3, 8, 16 patches at a fixed 2048 cores per
// patch (6,144 / 16,384 / 32,768 cores; 0.384 / 1.038 / 2.085 B DOF).
// Paper efficiencies: BG/P 100 / 95 / 92 %, XT5 100 / 96.9 / 91.5 %.
// Also reprints the Sec. 4.1 large-run claims: 92.3% at 49,152 -> 122,880
// cores (16 -> 40 patches, 3072 cores/patch).

// With --ranks=N (plus --sched=fibers etc., see comm_skeleton.hpp) the bench
// additionally executes the communication skeleton at N real ranks through
// the xmp runtime and writes BENCH_scaling_table3_weak.json.

#include <cstdio>

#include "comm_skeleton.hpp"
#include "scaling_model.hpp"
#include "telemetry/bench_report.hpp"

namespace {

void run(const scaling::MachineConfig& mc, telemetry::BenchReport& rep) {
  scaling::SemPatchConfig pc;
  const int cores_per_patch = 2048;
  std::printf("%s (%d cores/node):\n", mc.name, mc.cores_per_node);
  std::printf("  %-4s %-10s %-12s %-14s %s\n", "Np", "DOF", "cores", "s/1000 steps",
              "weak scaling");
  double t_ref = 0.0;
  for (int np : {3, 8, 16}) {
    const auto t = scaling::sem_step_time(mc, pc, np, cores_per_patch);
    const double t1000 = 1000.0 * t.per_step;
    if (np == 3) t_ref = t1000;
    const double dof = np * pc.elements * std::pow(pc.P + 1.0, 2) * 3.0 / 1e9 * 4.0;
    const double eff_pct = 100.0 * t_ref / t1000;
    if (np == 3)
      std::printf("  %-4d %.3fB %10d %14.2f   reference\n", np, dof, np * cores_per_patch,
                  t1000);
    else
      std::printf("  %-4d %.3fB %10d %14.2f   %.0f%%\n", np, dof, np * cores_per_patch, t1000,
                  eff_pct);
    rep.row();
    rep.set("machine", std::string(mc.name));
    rep.set("patches", static_cast<double>(np));
    rep.set("dof_billions", dof);
    rep.set("cores", static_cast<double>(np * cores_per_patch));
    rep.set("s_per_1000_steps", t1000);
    rep.set("weak_efficiency_pct", eff_pct);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  scaling::ScalingCli cli;
  if (!scaling::parse_scaling_cli(argc, argv, cli)) return 2;
  std::printf("=== Table 3: weak scaling, multi-patch flow simulation ===\n");
  std::printf("(paper: BG/P 650.67/685.23/703.4 s -> 100/95/92%%;\n");
  std::printf("        XT5  462.3/477.2/505.1 s -> 100/96.9/91.5%%)\n\n");
  telemetry::BenchReport rep("table3_weak_scaling");
  rep.meta("cores_per_patch", 2048.0);
  run(scaling::bgp(), rep);
  run(scaling::xt5(), rep);

  // the 122,880-core run quoted in the text (P = 6, 3072 cores/patch)
  scaling::SemPatchConfig pc6;
  pc6.P = 6;
  pc6.flops_per_element_per_iter = 1.1e5;
  const auto t16 = scaling::sem_step_time(scaling::bgp(), pc6, 16, 3072);
  const auto t40 = scaling::sem_step_time(scaling::bgp(), pc6, 40, 3072);
  const double large_eff_pct = 100.0 * t16.per_step / t40.per_step;
  std::printf("Large-run check (P=6, 3072 cores/patch): 16 patches (49,152 cores) -> 40\n");
  std::printf("patches (122,880 cores): weak efficiency %.1f%% (paper: 92.3%%)\n", large_eff_pct);
  rep.meta("large_run_weak_efficiency_pct", large_eff_pct);
  rep.write();

  if (cli.ranks > 0) {
    scaling::SemPatchConfig pc;
    const int cpp = std::max(1, cli.ranks / cli.patches);
    const auto modeled = scaling::sem_step_time(scaling::bgp(), pc, cli.patches, cpp);
    telemetry::BenchReport mrep("scaling_table3_weak");
    mrep.meta("bench", std::string("table3_weak_scaling"));
    scaling::run_measured_scaling(cli, modeled.per_step, mrep);
    mrep.write();
  }
  return 0;
}
