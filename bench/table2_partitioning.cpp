// Table 2 reproduction: CPU-time for 1000 time steps of a turbulent
// carotid-artery-like simulation under two partitioning strategies:
//   (a) the partitioner sees only face-sharing neighbour elements,
//   (b) the full vertex/edge/face adjacency with dof-scaled link weights
//       (the paper's approach; rows "a" vs "b", b faster by ~1-5%).
// Also reproduces the Sec. 3.5 claim that the topology-aware multi-direction
// injection schedule ("at least 6 outstanding messages") cuts 3-5% vs a
// naive one-outstanding-message schedule.
//
// The partitions are computed by the real partitioner on a real element
// graph; the resulting halo-exchange schedule is replayed on the modeled
// BG/P torus (see DESIGN.md: absolute seconds are calibrated, the a-vs-b
// *shape* is the reproduction target).

// --topology=torus|fattree|dragonfly replays the same partitions on a
// different modeled network (default torus, the paper's machine); the a-vs-b
// and injection-schedule comparisons are topology-generic.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "machine/cost.hpp"
#include "machine/dragonfly.hpp"
#include "machine/fattree.hpp"
#include "machine/torus.hpp"
#include "mesh/graph.hpp"
#include "mesh/partition.hpp"
#include "telemetry/bench_report.hpp"

namespace {

// carotid-artery stand-in: tube mesh, 9216 elements, P = 6
constexpr int kP = 6;
constexpr std::size_t kAxial = 96, kCirc = 24, kRadial = 8;
constexpr double kFlopsPerElemStep = 1.0e8;  // ~300 CG iters x tensor kernels per element
constexpr double kBytesPerDof = 8.0 * 3.0;   // 3 fields, doubles
constexpr int kExchangesPerStep = 40;       // halo exchanges per step (CG iterations)
constexpr int kSteps = 1000;

machine::Torus torus_for(int cores) {
  machine::TorusSpec spec;
  spec.cores_per_node = 4;
  const int nodes = cores / spec.cores_per_node;
  // pick a near-cubic factorisation
  int nx = 1;
  while (nx * nx * nx < nodes) nx *= 2;
  spec.nx = nx;
  spec.ny = nx;
  spec.nz = nodes / (nx * nx);
  if (spec.nz == 0) spec.nz = 1;
  while (spec.nx * spec.ny * spec.nz < nodes) spec.nz *= 2;
  return machine::Torus(spec);
}

/// Build the requested network sized for `cores` (4 cores/node throughout).
std::unique_ptr<machine::Topology> topology_for(const char* kind, int cores) {
  if (std::strcmp(kind, "torus") == 0)
    return std::make_unique<machine::Torus>(torus_for(cores).spec());
  const int nodes = std::max(1, cores / 4);
  if (std::strcmp(kind, "fattree") == 0) {
    machine::FatTreeSpec spec;
    spec.cores_per_node = 4;
    spec.hosts_per_leaf = 16;
    spec.leaves = std::max(1, (nodes + spec.hosts_per_leaf - 1) / spec.hosts_per_leaf);
    spec.uplinks = 4;
    return std::make_unique<machine::FatTree>(spec);
  }
  if (std::strcmp(kind, "dragonfly") == 0) {
    machine::DragonflySpec spec;
    spec.cores_per_node = 4;
    spec.routers_per_group = 4;
    spec.hosts_per_router = 4;
    const int per_group = spec.routers_per_group * spec.hosts_per_router;
    spec.groups = std::max(1, (nodes + per_group - 1) / per_group);
    spec.global_links = 2;
    return std::make_unique<machine::Dragonfly>(spec);
  }
  return nullptr;
}

double modeled_time(const machine::Topology& topo, const mesh::ElementGraph& truth,
                    const mesh::Partition& part, int cores, machine::InjectionSchedule sched) {
  machine::ComputeSpec cspec;

  // per-core compute: elements are spread as evenly as the partition did
  std::vector<double> load(static_cast<std::size_t>(cores), 0.0);
  for (std::size_t v = 0; v < truth.size(); ++v)
    load[static_cast<std::size_t>(part.part[v])] += 1.0;

  machine::StepSchedule sched_step;
  sched_step.flops.resize(static_cast<std::size_t>(cores));
  sched_step.working_set.resize(static_cast<std::size_t>(cores));
  for (int c = 0; c < cores; ++c) {
    sched_step.flops[static_cast<std::size_t>(c)] =
        load[static_cast<std::size_t>(c)] * kFlopsPerElemStep;
    sched_step.working_set[static_cast<std::size_t>(c)] =
        load[static_cast<std::size_t>(c)] * 1.2e5;  // ~120 KB per element
  }

  // halo exchange: one phase, replayed kExchangesPerStep times per step.
  // The *true* communication volume is evaluated against the full
  // dof-weighted adjacency regardless of what the partitioner saw.
  std::vector<machine::Message> halo;
  for (const auto& pv : mesh::comm_volumes(truth, part)) {
    halo.push_back({pv.a, pv.b, pv.weight * kBytesPerDof});
    halo.push_back({pv.b, pv.a, pv.weight * kBytesPerDof});
  }
  sched_step.phases.push_back(halo);

  const auto r = machine::replay_step(topo, cspec, sched_step,
                                      machine::Routing::Adaptive, sched);
  return kSteps * (r.compute_time + kExchangesPerStep * r.comm_time /
                                        static_cast<double>(sched_step.phases.size()));
}

}  // namespace

int main(int argc, char** argv) {
  const char* topology = "torus";
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--topology=", 11) == 0) {
      topology = arg + 11;
    } else if (std::strcmp(arg, "--topology") == 0 && i + 1 < argc) {
      topology = argv[++i];
    } else {
      std::fprintf(stderr, "unknown flag '%s'\nusage: %s [--topology=torus|fattree|dragonfly]\n",
                   arg, argv[0]);
      return 2;
    }
  }
  if (!topology_for(topology, 512)) {
    std::fprintf(stderr, "unknown --topology '%s' (torus|fattree|dragonfly)\n", topology);
    return 2;
  }

  std::printf("=== Table 2: partitioning strategies, CPU-time (s) per %d steps ===\n", kSteps);
  std::printf("(paper BG/P: a) 1181/655/382/238  b) 1172/638/362/220 for 512-4096 cores)\n");
  std::printf("(modeled network: %s)\n\n", topology);
  std::printf("%-10s %14s %14s %9s | %16s\n", "N cores", "a) face-only", "b) full-adj",
              "gain", "naive-injection");

  // radial faces carry 1.6x the dofs (boundary-layer refinement): the
  // face-only partitioner cannot see this heterogeneity
  constexpr double kRadialFactor = 1.6;
  auto g_face = mesh::tube_graph(kAxial, kCirc, kRadial, kP, mesh::AdjacencyPolicy::FaceOnly,
                                 kRadialFactor);
  auto g_full = mesh::tube_graph(kAxial, kCirc, kRadial, kP,
                                 mesh::AdjacencyPolicy::FullDofWeighted, kRadialFactor);

  telemetry::BenchReport rep("table2_partitioning");
  rep.meta("steps", static_cast<double>(kSteps));
  rep.meta("elements", static_cast<double>(kAxial * kCirc * kRadial));
  rep.meta("order", static_cast<double>(kP));
  rep.meta("topology", std::string(topology));

  for (int cores : {512, 1024, 2048, 4096}) {
    const auto topo = topology_for(topology, cores);
    // average over partitioner seeds: on a structured tube both policies
    // produce near-identical partitions, so single-seed gaps are noisy
    double ta = 0.0, tb = 0.0, tb_naive = 0.0;
    constexpr int kSeeds = 4;
    for (unsigned seed = 0; seed < kSeeds; ++seed) {
      mesh::PartitionOptions opt;
      opt.seed = 42 + seed;
      auto p_face = mesh::partition_graph(g_face, cores, opt);
      auto p_full = mesh::partition_graph(g_full, cores, opt);
      ta += modeled_time(*topo, g_full, p_face, cores, machine::InjectionSchedule::MultiDirection);
      tb += modeled_time(*topo, g_full, p_full, cores, machine::InjectionSchedule::MultiDirection);
      tb_naive += modeled_time(*topo, g_full, p_full, cores, machine::InjectionSchedule::Naive);
    }
    ta /= kSeeds;
    tb /= kSeeds;
    tb_naive /= kSeeds;
    const double gain_pct = 100.0 * (ta - tb) / ta;
    const double naive_penalty_pct = 100.0 * (tb_naive - tb) / tb;
    std::printf("%-10d %14.2f %14.2f %8.1f%% | %14.2f (%.1f%% slower)\n", cores, ta, tb,
                gain_pct, tb_naive, naive_penalty_pct);
    rep.row();
    rep.set("cores", static_cast<double>(cores));
    rep.set("face_only_s", ta);
    rep.set("full_adj_s", tb);
    rep.set("gain_pct", gain_pct);
    rep.set("naive_injection_s", tb_naive);
    rep.set("naive_penalty_pct", naive_penalty_pct);
  }
  rep.write();
  std::printf("\nColumns a/b replay the same machine model; only the partitioner's view of\n"
              "the adjacency differs. The last column re-times row b with the naive\n"
              "injection schedule (topology-aware scheduling ablation, Sec. 3.5).\n");
  return 0;
}
