// Checked-mode overhead smoke: the acceptance bar for the xmp verifier is
// <10% slowdown on a communication-heavy workload when switched on at run
// time (and zero when off — the hooks are branches on a null checker).
// Drives 4 ranks through a mix of allreduces, barriers, ring p2p and
// gathervs, best-of-N wall time with checking off vs on, and prints
// CHECKED_OVERHEAD_PCT for CI to grep. Exits non-zero above the threshold
// (override with NEKTARG_CHECKED_OVERHEAD_MAX_PCT; timing smoke, so CI may
// want a looser bar than a quiet laptop).

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "xmp/comm.hpp"

namespace {

constexpr int kRanks = 4;
constexpr int kIters = 2000;
constexpr int kRepeats = 5;

void workload(const xmp::CheckOptions& opts) {
  xmp::run(
      kRanks,
      [](xmp::Comm& world) {
        const int next = (world.rank() + 1) % world.size();
        const int prev = (world.rank() + world.size() - 1) % world.size();
        std::vector<double> payload(64, 1.0);
        double acc = 0.0;
        for (int i = 0; i < kIters; ++i) {
          acc += world.allreduce(static_cast<double>(world.rank()), xmp::Op::Sum);
          world.barrier();
          world.send(next, 1, payload);
          acc += world.recv<double>(prev, 1)[0];
          auto all = world.gatherv(std::span<const double>(payload), 0);
          if (world.rank() == 0) acc += all[0];
        }
        if (acc < 0.0) std::abort();  // keep the work observable
      },
      nullptr, opts);
}

double best_of(const xmp::CheckOptions& opts) {
  double best = 1e300;
  for (int r = 0; r < kRepeats; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    workload(opts);
    const auto t1 = std::chrono::steady_clock::now();
    const double s = std::chrono::duration<double>(t1 - t0).count();
    if (s < best) best = s;
  }
  return best;
}

}  // namespace

int main() {
  std::printf("=== xmp checked-mode overhead smoke ===\n");
  if (!xmp::checked_available()) {
    std::printf("built without XMP_CHECKED; nothing to measure\n");
    return 0;
  }

  xmp::CheckOptions off;  // enabled defaults to false

  xmp::CheckOptions on;
  on.enabled = true;
  on.stall_timeout = std::chrono::minutes(10);  // never fires here

  const double t_off = best_of(off);
  const double t_on = best_of(on);
  const double pct = 100.0 * (t_on - t_off) / t_off;

  double max_pct = 10.0;
  if (const char* v = std::getenv("NEKTARG_CHECKED_OVERHEAD_MAX_PCT")) max_pct = std::atof(v);

  std::printf("ranks=%d iters=%d repeats=%d (best-of)\n", kRanks, kIters, kRepeats);
  std::printf("unchecked: %.4f s   checked: %.4f s\n", t_off, t_on);
  std::printf("CHECKED_OVERHEAD_PCT=%.2f (max allowed %.1f)\n", pct, max_pct);
  if (pct > max_pct) {
    std::printf("FAIL: checked-mode overhead above threshold\n");
    return 1;
  }
  std::printf("OK\n");
  return 0;
}
