// Distributed-DPD strong scaling: pairs/sec for the same global system
// stepped on 1, 2 and 4 threads-mode xmp ranks through the exchange layer
// (src/dpd/exchange/). The single-rank baseline is the plain engine with no
// decomposition driver, so the speedup includes every halo/migration
// overhead the distributed path pays. Prints DPD_SCALING_SPEEDUP (4 ranks
// vs 1) for CI to grep and writes BENCH_dpd_scaling.json. Exits non-zero
// when the speedup falls below NEKTARG_DPD_SCALING_MIN_SPEEDUP — unset, the
// gate is a loose 0.0: threads-mode ranks only scale with real cores, and
// dev boxes may have one (CI pins 2.0 on its 4-core runners).

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "dpd/exchange/distributed.hpp"
#include "dpd/system.hpp"
#include "telemetry/bench_report.hpp"
#include "xmp/comm.hpp"

namespace {

constexpr double kDensity = 3.0;
constexpr int kWarmupSteps = 10;
constexpr int kSteps = 30;
constexpr int kRepeats = 3;

dpd::DpdParams params() {
  dpd::DpdParams prm;
  prm.box = {16.0, 8.0, 8.0};
  prm.periodic = {true, true, false};
  return prm;
}

std::shared_ptr<dpd::DpdSystem> make_system() {
  const auto prm = params();
  auto sys = std::make_shared<dpd::DpdSystem>(prm, std::make_shared<dpd::ChannelZ>(prm.box.z));
  sys->fill(kDensity, dpd::kSolvent, 42);
  sys->set_body_force([](const dpd::Vec3&, dpd::Species) { return dpd::Vec3{0.05, 0.0, 0.0}; });
  return sys;
}

/// Best-of-kRepeats wall time for kSteps on `nranks` ranks (1 = plain
/// engine, no driver).
double time_steps(int nranks) {
  double best_ms = 0.0;
  for (int r = 0; r < kRepeats; ++r) {
    double ms = 0.0;
    if (nranks == 1) {
      auto sys = make_system();
      for (int s = 0; s < kWarmupSteps; ++s) sys->step();
      const auto t0 = std::chrono::steady_clock::now();
      for (int s = 0; s < kSteps; ++s) sys->step();
      const auto t1 = std::chrono::steady_clock::now();
      ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
    } else {
      xmp::run(nranks, [&](xmp::Comm& world) {
        auto sys = make_system();
        dpd::exchange::DistributedDpd drv(world, *sys);
        drv.distribute();
        for (int s = 0; s < kWarmupSteps; ++s) sys->step();
        const auto t0 = std::chrono::steady_clock::now();
        for (int s = 0; s < kSteps; ++s) sys->step();
        const auto t1 = std::chrono::steady_clock::now();
        if (world.rank() == 0)
          ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
      });
    }
    if (r == 0 || ms < best_ms) best_ms = ms;
  }
  return best_ms;
}

}  // namespace

int main() {
  std::printf("=== Distributed DPD strong scaling (threads-mode ranks) ===\n");

  // global pair count at rc, for the pairs/sec normalisation
  auto probe = make_system();
  for (int s = 0; s < kWarmupSteps; ++s) probe->step();
  std::size_t pairs = 0;
  probe->for_each_pair([&](std::size_t, std::size_t, const dpd::Vec3&, double) { ++pairs; });
  std::printf("n=%zu global pairs=%zu steps=%d\n", probe->size(), pairs, kSteps);

  telemetry::BenchReport rep("dpd_scaling");
  rep.meta("n", static_cast<double>(probe->size()));
  rep.meta("pairs", static_cast<double>(pairs));
  rep.meta("steps", static_cast<double>(kSteps));

  // 2 force evaluations per step (modified velocity-Verlet predictor pass
  // at step start plus the post-drift pass)
  const double pair_evals = 2.0 * static_cast<double>(pairs) * kSteps;
  double t1 = 0.0, t4 = 0.0;
  std::printf("ranks    time/step    pairs/sec    speedup\n");
  for (int nranks : {1, 2, 4}) {
    const double ms = time_steps(nranks);
    const double pps = pair_evals / (ms * 1e-3);
    if (nranks == 1) t1 = ms;
    if (nranks == 4) t4 = ms;
    std::printf("%5d   %7.2f ms  %10.3e    %6.2f\n", nranks, ms / kSteps, pps, t1 / ms);
    rep.row();
    rep.set("ranks", static_cast<double>(nranks));
    rep.set("best_ms", ms);
    rep.set("pairs_per_sec", pps);
    rep.set("speedup", t1 / ms);
  }

  const double speedup = t1 / t4;
  std::printf("DPD_SCALING_SPEEDUP=%.2f\n", speedup);
  rep.meta("speedup_4r", speedup);
  rep.write();

  double min_speedup = 0.0;
  if (const char* env = std::getenv("NEKTARG_DPD_SCALING_MIN_SPEEDUP"))
    min_speedup = std::atof(env);
  if (speedup < min_speedup) {
    std::fprintf(stderr, "FAIL: speedup %.2f below gate %.2f\n", speedup, min_speedup);
    return 1;
  }
  return 0;
}
