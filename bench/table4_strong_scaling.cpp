// Table 4 reproduction: strong scaling of the multi-patch SEM solver on
// BlueGene/P — for each patch count (3 / 8 / 16), doubling cores per patch
// from 1024 to 2048 yields ~75% parallel efficiency in the paper
// (996.98 -> 650.67 s, 1025.33 -> 685.23 s, 1048.75 -> 703.4 s).
//
// With --ranks=N (plus --sched=fibers etc., see comm_skeleton.hpp) the bench
// additionally *executes* the communication skeleton at N real ranks through
// the xmp runtime and writes BENCH_scaling_table4_strong.json with measured
// wall-clock next to the modeled per-step time.

#include <cstdio>

#include "comm_skeleton.hpp"
#include "scaling_model.hpp"
#include "telemetry/bench_report.hpp"

int main(int argc, char** argv) {
  scaling::ScalingCli cli;
  if (!scaling::parse_scaling_cli(argc, argv, cli)) return 2;
  std::printf("=== Table 4: strong scaling (BG/P, 4 cores/node) ===\n");
  std::printf("(paper: Np=3 996.98->650.67 (76.6%%), Np=8 1025.33->685.23 (74.8%%),\n");
  std::printf("        Np=16 1048.75->703.4 (74.5%%))\n\n");
  std::printf("%-4s %-10s %-10s %-14s %s\n", "Np", "DOF", "cores", "s/1000 steps",
              "strong scaling");

  const auto mc = scaling::bgp();
  scaling::SemPatchConfig pc;
  telemetry::BenchReport rep("table4_strong_scaling");
  rep.meta("machine", std::string(mc.name));
  rep.meta("cores_per_node", static_cast<double>(mc.cores_per_node));
  for (int np : {3, 8, 16}) {
    const double dof = np * pc.elements * (pc.P + 1.0) * (pc.P + 1.0) * 3.0 * 4.0 / 1e9;
    double t_ref = 0.0;
    for (int cpp : {1024, 2048}) {
      const auto t = scaling::sem_step_time(mc, pc, np, cpp);
      const double t1000 = 1000.0 * t.per_step;
      double eff_pct = 100.0;
      if (cpp == 1024) {
        t_ref = t1000;
        std::printf("%-4d %.3fB %10d %14.2f   reference\n", np, dof, np * cpp, t1000);
      } else {
        eff_pct = 100.0 * t_ref / (2.0 * t1000);
        std::printf("%-4d %.3fB %10d %14.2f   %.1f%%\n", np, dof, np * cpp, t1000, eff_pct);
      }
      rep.row();
      rep.set("patches", static_cast<double>(np));
      rep.set("dof_billions", dof);
      rep.set("cores", static_cast<double>(np * cpp));
      rep.set("cores_per_patch", static_cast<double>(cpp));
      rep.set("s_per_1000_steps", t1000);
      rep.set("strong_efficiency_pct", eff_pct);
    }
    std::printf("\n");
  }
  rep.write();

  if (cli.ranks > 0) {
    // modeled reference for the same shape: cli.patches patches of
    // ranks/patches cores each
    const int cpp = std::max(1, cli.ranks / cli.patches);
    const auto modeled = scaling::sem_step_time(mc, pc, cli.patches, cpp);
    telemetry::BenchReport mrep("scaling_table4_strong");
    mrep.meta("bench", std::string("table4_strong_scaling"));
    scaling::run_measured_scaling(cli, modeled.per_step, mrep);
    mrep.write();
  }
  return 0;
}
