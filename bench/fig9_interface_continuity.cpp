// Fig. 9 reproduction: continuity of the flow field across the coupled
// solvers' interfaces in the brain-vasculature simulation (Re = 394,
// Ws = 3.75). Two measurements, both on live solvers:
//   1. continuum-continuum: a pulsatile channel split into 3 overlapping
//      SEM patches; velocity and (gauge-aligned) pressure jumps across the
//      two artificial interfaces,
//   2. continuum-atomistic: a DPD subdomain embedded in the continuum patch;
//      mismatch between the DPD mean field and the imposed continuum field.

#include <cstdio>

#include "coupling/cdc.hpp"
#include "coupling/multipatch.hpp"
#include "dpd/geometry.hpp"
#include "dpd/inflow.hpp"
#include "dpd/sampling.hpp"
#include "dpd/system.hpp"
#include "telemetry/bench_report.hpp"

int main() {
  std::printf("=== Fig. 9: interface continuity in the coupled simulation ===\n\n");

  // --- continuum-continuum (multi-patch) ---
  coupling::MultiPatchParams mp;
  mp.L = 6.0;
  mp.H = 1.0;
  mp.nx = 12;
  mp.ny = 2;
  mp.order = 5;
  mp.patches = 3;
  mp.overlap = 1;
  mp.ns.nu = 0.02;
  mp.ns.dt = 2e-3;
  // pulsatile inlet: Womersley-like waveform (Ws ~ 3.7 regime)
  const double Umax = 1.0, T = 0.8;
  coupling::MultiPatchChannel chan(mp, [&](double y, double t) {
    return 4.0 * Umax * y * (1.0 - y) * (1.0 + 0.4 * std::sin(2.0 * M_PI * t / T));
  });
  telemetry::BenchReport rep("fig9_interface_continuity");
  rep.meta("patches", static_cast<double>(mp.patches));
  rep.meta("overlap", static_cast<double>(mp.overlap));
  std::printf("continuum-continuum: 3 overlapping SEM patches, pulsatile channel\n");
  std::printf("%-10s %-14s %-14s %-14s\n", "time", "max|u| jump", "max|p| jump",
              "centerline u");
  for (int block = 0; block < 5; ++block) {
    for (int s = 0; s < 100; ++s) chan.step();
    const double ujump = chan.interface_jump();
    const double pjump = chan.pressure_jump();
    const double ucl = chan.evaluate_u(3.0, 0.5);
    std::printf("%-10.3f %-14.5f %-14.5f %-14.4f\n", chan.time(), ujump, pjump, ucl);
    rep.row();
    rep.set("section", std::string("continuum_continuum"));
    rep.set("time", chan.time());
    rep.set("u_jump", ujump);
    rep.set("p_jump", pjump);
    rep.set("centerline_u", ucl);
  }

  // --- continuum-atomistic ---
  std::printf("\ncontinuum-atomistic: DPD box embedded mid-channel\n");
  auto m = mesh::QuadMesh::channel(4.0, 1.0, 8, 2);
  sem::Discretization d(m, 4);
  sem::NavierStokes2D::Params nsp;
  nsp.nu = 0.05;
  nsp.dt = 2e-3;
  sem::NavierStokes2D ns(d, nsp);
  ns.set_velocity_bc(mesh::kInlet,
                     [](double, double y, double t) {
                       return 4.0 * y * (1.0 - y) * (1.0 + 0.3 * std::sin(2.0 * M_PI * t / 0.8));
                     },
                     [](double, double, double) { return 0.0; });
  ns.set_natural_bc(mesh::kOutlet);
  for (int s = 0; s < 200; ++s) ns.step();

  dpd::DpdParams dp;
  dp.box = {16.0, 6.0, 10.0};
  dp.periodic = {false, true, false};
  dp.dt = 0.01;
  dpd::DpdSystem sys(dp, std::make_shared<dpd::ChannelZ>(10.0));
  sys.fill(3.0, dpd::kSolvent, 13, 0.1);
  dpd::FlowBcParams fp;
  fp.axis = 0;
  fp.buffer_len = 2.0;
  fp.density = 3.0;
  fp.relax = 0.3;
  dpd::FlowBc bc(fp);
  coupling::ScaleMap scales;
  scales.L_ns = 1.0;
  scales.L_dpd = 10.0;
  scales.nu_ns = 0.05;
  scales.nu_dpd = 2.5;
  coupling::TimeProgression tp;
  tp.exchange_every_ns = 2;
  tp.dpd_per_ns = 10;
  coupling::ContinuumDpdCoupler cdc(ns, sys, bc, {1.5, 2.5, 0.0, 1.0}, scales, tp);

  dpd::SamplerParams sp;
  sp.nx = 4;
  sp.ny = 1;
  sp.nz = 5;
  dpd::FieldSampler sampler(sys, sp);
  std::printf("%-10s %-18s %-18s\n", "interval", "mean |u_DPD-u_NS|", "relative to u_max");
  const double umax_dpd = scales.velocity_ns_to_dpd(4.0 * 0.25 * 1.3);
  for (int block = 0; block < 4; ++block) {
    for (int interval = 0; interval < 8; ++interval)
      cdc.advance_interval([&] {
        if (block > 0) sampler.accumulate(sys);
      });
    if (block == 0) continue;  // warm-up
    const double mism = cdc.interface_mismatch(sampler);
    std::printf("%-10d %-18.4f %-18.3f\n", 8 * (block + 1), mism, mism / umax_dpd);
    rep.row();
    rep.set("section", std::string("continuum_atomistic"));
    rep.set("interval", static_cast<double>(8 * (block + 1)));
    rep.set("mismatch", mism);
    rep.set("mismatch_rel", mism / umax_dpd);
  }
  // --- continuum-continuum through the aneurysm sac (the paper's actual
  //     Fig. 9 geometry: interfaces cut the vasculature wherever the patch
  //     decomposition put them) ---
  std::printf("\ncontinuum-continuum through the aneurysm cavity:\n");
  coupling::MultiPatchParams mc;
  mc.L = 8.0;
  mc.H = 1.0;
  mc.nx = 16;
  mc.ny = 2;
  mc.order = 4;
  mc.patches = 2;
  mc.overlap = 1;
  mc.with_cavity = true;
  mc.cav_x0 = 3.0;
  mc.cav_x1 = 5.0;
  mc.cav_depth = 1.0;
  mc.ns.nu = 0.02;
  mc.ns.dt = 2e-3;
  coupling::MultiPatchChannel sac(mc, [&](double y, double t) {
    return 4.0 * y * (1.0 - y) * (1.0 + 0.3 * std::sin(2.0 * M_PI * t / T));
  });
  for (int s = 0; s < 400; ++s) sac.step();
  const double xm = 0.5 * (sac.patch_extent(1).first + sac.patch_extent(0).second);
  double cav_jump = 0.0;
  for (double y : {1.2, 1.5, 1.8})
    cav_jump = std::max(cav_jump, std::fabs(sac.disc(0).evaluate(sac.patch(0).u(), xm, y) -
                                            sac.disc(1).evaluate(sac.patch(1).u(), xm, y)));
  const double sac_iface_jump = sac.interface_jump();
  const double sac_u = sac.evaluate_u(4.0, 1.6);
  const double chan_u = sac.evaluate_u(4.0, 0.5);
  std::printf("  channel-interface jump %.5f; in-sac jump %.5f; sac u %.4f vs channel u %.4f\n",
              sac_iface_jump, cav_jump, sac_u, chan_u);
  rep.row();
  rep.set("section", std::string("aneurysm_cavity"));
  rep.set("u_jump", sac_iface_jump);
  rep.set("in_sac_jump", cav_jump);
  rep.set("sac_u", sac_u);
  rep.set("channel_u", chan_u);

  std::printf("\n(paper shows visually continuous velocity/pressure contours across both\n"
              " interface types; here the jump norms quantify the same statement)\n");
  rep.write();
  return 0;
}
