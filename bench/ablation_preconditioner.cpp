// Ablation: the Helmholtz preconditioner. The paper's solver uses a
// "scalable low-energy preconditioner"; our stand-in is an overlapping
// element-block additive Schwarz (both damp the high-energy intra-element
// modes a diagonal cannot see). Sweep the polynomial order and compare CG
// iteration counts: Jacobi degrades with P, the block preconditioner stays
// nearly flat — the reason NEKTAR needs more than diagonal scaling at
// P = 10-12.

#include <cmath>
#include <cstdio>

#include "mesh/quadmesh.hpp"
#include "sem/discretization.hpp"
#include "sem/helmholtz.hpp"
#include "sem/operators.hpp"
#include "telemetry/bench_report.hpp"

namespace {

std::size_t iterations(int P, sem::PreconditionerKind kind) {
  auto m = mesh::QuadMesh::lid_cavity(3);
  sem::Discretization d(m, P);
  sem::Operators ops(d);
  sem::HelmholtzSolver hs(ops, 1.0, 1.0, {mesh::kWall, mesh::kInlet}, kind);
  hs.set_projection_depth(0);  // isolate the preconditioner's effect
  hs.options().rtol = 1e-10;
  la::Vector f(d.num_nodes());
  for (std::size_t g = 0; g < d.num_nodes(); ++g)
    f[g] = std::sin(M_PI * d.node_x(g)) * std::sin(2.0 * M_PI * d.node_y(g));
  la::Vector u;
  return hs.solve(f, [](double, double) { return 0.0; }, u).iterations;
}

}  // namespace

int main() {
  std::printf("=== Ablation: Helmholtz preconditioner vs polynomial order ===\n\n");
  telemetry::BenchReport rep("ablation_preconditioner");
  std::printf("%-6s %-14s %-16s %-8s\n", "P", "Jacobi iters", "BlockSchwarz", "ratio");
  for (int P : {3, 5, 7, 9, 11, 13}) {
    const auto ij = iterations(P, sem::PreconditionerKind::Jacobi);
    const auto ib = iterations(P, sem::PreconditionerKind::BlockSchwarz);
    const double ratio = static_cast<double>(ij) / static_cast<double>(ib);
    std::printf("%-6d %-14zu %-16zu %-8.2f\n", P, ij, ib, ratio);
    rep.row();
    rep.set("order", static_cast<double>(P));
    rep.set("jacobi_iters", static_cast<double>(ij));
    rep.set("block_schwarz_iters", static_cast<double>(ib));
    rep.set("ratio", ratio);
  }
  rep.write();
  std::printf("\n(the block preconditioner's advantage grows with P — the paper's\n"
              " motivation for a low-energy preconditioner at P = 10-12)\n");
  return 0;
}
