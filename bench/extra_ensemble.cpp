// Ensemble throughput: run an inlet-velocity sweep of the quickstart
// scenario cold (every variant develops its flow from rest) and warm
// (WarmMode::State — each variant seeds its continuum from the nearest
// completed parameter point and its tolerance-terminated develop phase
// collapses). Prints per-variant CG-iteration counts, scenarios/hour and
// ENSEMBLE_WARMSTART_SAVING for CI to grep, and writes BENCH_ensemble.json.
// Exits non-zero when the warm-start saving falls below the gate (override
// with NEKTARG_ENSEMBLE_MIN_WARMSTART_SAVING; default is a loose 0.0 —
// CI runs with 0.20).
//
// Flags: --variants N (default 8)   sweep size (umax = 1.0, 1.02, ...)
//        --pool N     (default 0)   xmp rank pool; 0 = serial in-process

#include <cstdio>
#include <cstdlib>
#include <string>

#include "scenario/ensemble.hpp"
#include "scenario/flags.hpp"
#include "scenario/presets.hpp"
#include "telemetry/bench_report.hpp"

namespace {

scenario::Json base_doc() {
  scenario::Scenario sc = scenario::quickstart_preset();
  sc.name = "ensemble-bench";
  sc.time.intervals = 2;
  sc.time.sample_from = 0;
  // Tolerance-terminated develop phase: this is what a warm start collapses.
  // The per-step delta floors near 2e-10 (CG noise), so 3e-8 is safely
  // reachable (~1500 steps from rest on the quickstart mesh).
  sc.time.develop_steps = 3000;
  sc.time.develop_tol = 3e-8;
  return scenario::Json::parse(scenario::scenario_to_json(sc));
}

scenario::SweepSpec umax_sweep(int n) {
  scenario::SweepAxis axis;
  axis.path = "sem.inlet_umax";
  for (int i = 0; i < n; ++i) axis.values.push_back(scenario::Json(1.0 + 0.02 * i));
  scenario::SweepSpec sweep;
  sweep.axes.push_back(axis);
  return sweep;
}

scenario::EnsembleReport run(const scenario::Json& base, const scenario::SweepSpec& sweep,
                             int pool, scenario::WarmMode warm) {
  scenario::EnsembleOptions opts;
  opts.pool = pool;
  opts.warm = warm;
  return scenario::EnsembleEngine(base, sweep, opts).run();
}

}  // namespace

int main(int argc, char** argv) {
  int variants = 8;
  int pool = 0;
  scenario::Flags flags("extra_ensemble");
  flags.add_int("--variants", &variants, "sweep size (inlet umax values)");
  flags.add_int("--pool", &pool, "xmp rank pool (0 = serial)");
  if (!flags.parse(argc, argv)) return 2;

  std::printf("=== Ensemble warm starts: %d-variant inlet-velocity sweep (pool=%d) ===\n\n",
              variants, pool);

  const scenario::Json base = base_doc();
  const scenario::SweepSpec sweep = umax_sweep(variants);
  const auto cold = run(base, sweep, pool, scenario::WarmMode::Off);
  const auto warm = run(base, sweep, pool, scenario::WarmMode::State);

  std::printf("%-28s %12s %12s %12s %12s %6s\n", "variant", "cold CG", "warm CG",
              "cold dev", "warm dev", "donor");
  telemetry::BenchReport rep("ensemble");
  rep.meta("variants", static_cast<double>(variants));
  rep.meta("pool", static_cast<double>(pool));
  rep.meta("warm_mode", "state");
  for (int i = 0; i < variants; ++i) {
    const auto& c = cold.variants[static_cast<std::size_t>(i)];
    const auto& w = warm.variants[static_cast<std::size_t>(i)];
    if (!c.ok || !w.ok) {
      std::fprintf(stderr, "variant %d failed: %s\n", i, (c.ok ? w.error : c.error).c_str());
      return 1;
    }
    char label[32];
    std::snprintf(label, sizeof label, "umax=%.2f", 1.0 + 0.02 * i);
    std::printf("%-28s %12llu %12llu %12llu %12llu %6lld\n", label,
                static_cast<unsigned long long>(c.cg_iters),
                static_cast<unsigned long long>(w.cg_iters),
                static_cast<unsigned long long>(c.develop_steps),
                static_cast<unsigned long long>(w.develop_steps),
                static_cast<long long>(w.warm_source));
    rep.row();
    rep.set("variant", static_cast<double>(i));
    rep.set("cold_cg", static_cast<double>(c.cg_iters));
    rep.set("warm_cg", static_cast<double>(w.cg_iters));
    rep.set("cold_develop_steps", static_cast<double>(c.develop_steps));
    rep.set("warm_develop_steps", static_cast<double>(w.develop_steps));
    rep.set("warm_source", static_cast<double>(w.warm_source));
  }

  const double saving =
      1.0 - static_cast<double>(warm.cg_total) / static_cast<double>(cold.cg_total);
  const double cold_sph = 3600.0 * static_cast<double>(variants) / cold.wall_seconds;
  const double warm_sph = 3600.0 * static_cast<double>(variants) / warm.wall_seconds;
  std::printf("\ncold: %llu CG iters, %.1f s (%.0f scenarios/hour)\n",
              static_cast<unsigned long long>(cold.cg_total), cold.wall_seconds, cold_sph);
  std::printf("warm: %llu CG iters, %.1f s (%.0f scenarios/hour), "
              "%zu/%zu shared-table hits\n",
              static_cast<unsigned long long>(warm.cg_total), warm.wall_seconds, warm_sph,
              warm.shared_hits, warm.shared_hits + warm.shared_misses);
  std::printf("ENSEMBLE_SCENARIOS_PER_HOUR=%.1f\n", warm_sph);
  std::printf("ENSEMBLE_WARMSTART_SAVING=%.3f\n", saving);

  rep.meta("cold_cg_total", static_cast<double>(cold.cg_total));
  rep.meta("warm_cg_total", static_cast<double>(warm.cg_total));
  rep.meta("cold_wall_seconds", cold.wall_seconds);
  rep.meta("warm_wall_seconds", warm.wall_seconds);
  rep.meta("scenarios_per_hour", warm_sph);
  rep.meta("warmstart_saving", saving);
  rep.meta("shared_hits", static_cast<double>(warm.shared_hits));
  rep.meta("shared_misses", static_cast<double>(warm.shared_misses));
  rep.write();

  double min_saving = 0.0;  // loose by default; CI gates at 0.20
  if (const char* v = std::getenv("NEKTARG_ENSEMBLE_MIN_WARMSTART_SAVING"))
    min_saving = std::atof(v);
  std::printf("ENSEMBLE_MIN_WARMSTART_SAVING=%.2f\n", min_saving);
  if (saving < min_saving) {
    std::fprintf(stderr, "FAIL: warm-start saving %.3f below gate %.2f\n", saving, min_saving);
    return 1;
  }
  return 0;
}
