// Real measured microbenchmark of the 3D sum-factorised stiffness kernel —
// the compute core whose SIMDization Sec. 3.5 discusses. Verifies that the
// per-element cost scales as O((P+1)^4) (sum factorisation), not the naive
// O((P+1)^6), and measures the fast path (batched la::simd line kernels,
// precomputed gather/scatter tables, hoisted scratch) against the retained
// reference implementation. CI gates the speedup at P >= 5 through
// NEKTARG_SEM_MIN_SPEEDUP (defaults to a loose 1.0 so local runs on busy or
// non-AVX2 machines don't fail spuriously).

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "sem/hex3d.hpp"
#include "telemetry/bench_report.hpp"

namespace {

using clock_type = std::chrono::steady_clock;

template <typename Apply>
double time_apply(const la::Vector& u, la::Vector& y, Apply&& apply) {
  apply(u, y);  // warm
  int reps = 10;
  for (;;) {
    const auto t0 = clock_type::now();
    for (int r = 0; r < reps; ++r) apply(u, y);
    const auto t1 = clock_type::now();
    const double dt = std::chrono::duration<double>(t1 - t0).count();
    if (dt > 0.05 || reps >= 1000) return dt / reps;
    reps *= 4;
  }
}

}  // namespace

int main() {
  std::printf("=== 3D stiffness kernel: fast path vs reference ===\n\n");
  telemetry::BenchReport rep("sem3d_kernel");
  std::printf("%-6s %-16s %-16s %-10s %-14s %-20s\n", "P", "fast (us/elem)", "ref (us/elem)",
              "speedup", "GF/s (fast)", "scaling vs (P+1)^4");
  double t_ref_scaling = 0.0;
  int P_ref = 0;
  double gated_min_speedup = 1e30;
  for (int P : {3, 5, 7, 9, 11}) {
    // fixed total DOF budget: fewer elements at higher order
    const std::size_t ne = std::max<std::size_t>(
        2, static_cast<std::size_t>(std::cbrt(20000.0 / std::pow(P + 1, 3))));
    sem::Discretization3D d(1.0, 1.0, 1.0, ne, ne, ne, P);
    sem::Operators3D ops(d);
    la::Vector u(d.num_nodes()), y(d.num_nodes());
    for (std::size_t g = 0; g < d.num_nodes(); ++g) u[g] = std::sin(0.1 * g);
    const double nelem = static_cast<double>(d.num_elements());

    const double t_fast =
        time_apply(u, y, [&](const la::Vector& in, la::Vector& out) {
          ops.apply_stiffness(in, out);
        }) / nelem;
    const double t_slow =
        time_apply(u, y, [&](const la::Vector& in, la::Vector& out) {
          ops.apply_stiffness_reference(in, out);
        }) / nelem;
    const double speedup = t_slow / t_fast;
    if (P >= 5) gated_min_speedup = std::min(gated_min_speedup, speedup);

    const double n1 = P + 1.0;
    const double per_elem = 6.0 * n1 * n1 * n1 * n1;  // 3 directions x 2 flops x n1^4
    const double gf = per_elem / t_fast / 1e9;

    const double tf_us = t_fast * 1e6;
    double measured_x = 1.0, expect_x = 1.0;
    char scaling[64];
    if (P_ref == 0) {
      t_ref_scaling = tf_us;
      P_ref = P;
      std::snprintf(scaling, sizeof scaling, "reference");
    } else {
      measured_x = tf_us / t_ref_scaling;
      expect_x = std::pow((P + 1.0) / (P_ref + 1.0), 4);
      std::snprintf(scaling, sizeof scaling, "%.1fx / O(P^4) %.1fx", measured_x, expect_x);
    }
    std::printf("%-6d %-16.2f %-16.2f %-10.2f %-14.2f %-20s\n", P, tf_us, t_slow * 1e6,
                speedup, gf, scaling);

    rep.row();
    rep.set("order", static_cast<double>(P));
    rep.set("us_per_element_fast", tf_us);
    rep.set("us_per_element_ref", t_slow * 1e6);
    rep.set("speedup", speedup);
    rep.set("gflops_fast", gf);
    rep.set("measured_scaling", measured_x);
    rep.set("predicted_scaling", expect_x);
  }
  rep.write();

  std::printf("\nSEM3D_KERNEL_SPEEDUP=%.2f  (min over P >= 5)\n", gated_min_speedup);
  std::printf("(cost per element tracks the O((P+1)^4) sum-factorised bound; a naive\n"
              " dense elemental operator would scale as (P+1)^6)\n");

  double min_speedup = 1.0;  // loose default: only CI pins a real threshold
  if (const char* env = std::getenv("NEKTARG_SEM_MIN_SPEEDUP")) min_speedup = std::atof(env);
  if (gated_min_speedup < min_speedup) {
    std::printf("FAIL: speedup %.2f below NEKTARG_SEM_MIN_SPEEDUP=%.2f\n", gated_min_speedup,
                min_speedup);
    return 1;
  }
  return 0;
}
