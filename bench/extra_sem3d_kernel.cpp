// Real measured microbenchmark of the 3D sum-factorised stiffness kernel —
// the compute core whose SIMDization Sec. 3.5 discusses. Verifies that the
// per-element cost scales as O((P+1)^4) (sum factorisation), not the naive
// O((P+1)^6), and reports achieved flop rates.

#include <chrono>
#include <cmath>
#include <cstdio>

#include "sem/hex3d.hpp"
#include "telemetry/bench_report.hpp"

namespace {

double time_apply(int P, double* gflops) {
  // fixed total DOF budget: fewer elements at higher order
  const std::size_t ne = std::max<std::size_t>(2, static_cast<std::size_t>(
                                                      std::cbrt(20000.0 / std::pow(P + 1, 3))));
  sem::Discretization3D d(1.0, 1.0, 1.0, ne, ne, ne, P);
  sem::Operators3D ops(d);
  la::Vector u(d.num_nodes()), y(d.num_nodes());
  for (std::size_t g = 0; g < d.num_nodes(); ++g) u[g] = std::sin(0.1 * g);

  using clock = std::chrono::steady_clock;
  // warm + time
  ops.apply_stiffness(u, y);
  const int reps = 10;
  const auto t0 = clock::now();
  for (int r = 0; r < reps; ++r) ops.apply_stiffness(u, y);
  const auto t1 = clock::now();
  const double dt = std::chrono::duration<double>(t1 - t0).count() / reps;

  const double n1 = P + 1.0;
  const double per_elem = 6.0 * n1 * n1 * n1 * n1;  // 3 directions x 2 flops x n1^4
  *gflops = per_elem * static_cast<double>(d.num_elements()) / dt / 1e9;
  return dt / static_cast<double>(d.num_elements());
}

}  // namespace

int main() {
  std::printf("=== 3D stiffness kernel: sum-factorisation scaling ===\n\n");
  telemetry::BenchReport rep("extra_sem3d_kernel");
  std::printf("%-6s %-18s %-14s %-20s\n", "P", "time/elem (us)", "GF/s", "scaling vs (P+1)^4");
  double t_ref = 0.0;
  int P_ref = 0;
  for (int P : {3, 5, 7, 9, 11}) {
    double gf = 0.0;
    const double t = time_apply(P, &gf) * 1e6;
    double measured_x = 1.0, expect_x = 1.0;
    if (P_ref == 0) {
      t_ref = t;
      P_ref = P;
      std::printf("%-6d %-18.2f %-14.2f %-20s\n", P, t, gf, "reference");
    } else {
      measured_x = t / t_ref;
      expect_x = std::pow((P + 1.0) / (P_ref + 1.0), 4);
      std::printf("%-6d %-18.2f %-14.2f measured %5.1fx / O(P^4) predicts %5.1fx\n", P, t,
                  gf, measured_x, expect_x);
    }
    rep.row();
    rep.set("order", static_cast<double>(P));
    rep.set("us_per_element", t);
    rep.set("gflops", gf);
    rep.set("measured_scaling", measured_x);
    rep.set("predicted_scaling", expect_x);
  }
  rep.write();
  std::printf("\n(cost per element tracks the O((P+1)^4) sum-factorised bound; a naive\n"
              " dense elemental operator would scale as (P+1)^6)\n");
  return 0;
}
