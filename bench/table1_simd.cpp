// Table 1 reproduction: SIMD performance-tuning speed-up factors for the
// three kernels the paper vectorises (Sec. 3.5):
//     z[i] = x[i] * y[i]
//     a    = sum x[i] y[i] z[i]
//     a    = sum x[i] y[i] y[i]
// The paper reports 1.5-4x on Cray XT5 (SSE) and BG/P (Double Hummer); here
// the comparison is hand-vectorised AVX2+FMA vs pinned-scalar code on the
// host CPU. Data is sized to stay in cache, where the paper notes the SIMD
// benefit is most pronounced.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <random>

#include "la/simd.hpp"
#include "la/vector.hpp"
#include "telemetry/bench_report.hpp"

namespace {

constexpr std::size_t kN = 4096;  // 32 KiB/vector: L1-resident

la::Vector make_vec(unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> d(0.5, 1.5);
  la::Vector v(kN);
  for (auto& x : v) x = d(rng);
  return v;
}

void BM_vmul_scalar(benchmark::State& state) {
  auto x = make_vec(1), y = make_vec(2);
  la::Vector z(kN);
  for (auto _ : state) {
    la::simd::vmul_scalar(z.data(), x.data(), y.data(), kN);
    benchmark::DoNotOptimize(z.data());
  }
}
void BM_vmul_simd(benchmark::State& state) {
  auto x = make_vec(1), y = make_vec(2);
  la::Vector z(kN);
  for (auto _ : state) {
    la::simd::vmul(z.data(), x.data(), y.data(), kN);
    benchmark::DoNotOptimize(z.data());
  }
}
void BM_dot_xyz_scalar(benchmark::State& state) {
  auto x = make_vec(1), y = make_vec(2), z = make_vec(3);
  for (auto _ : state) {
    double a = la::simd::dot_xyz_scalar(x.data(), y.data(), z.data(), kN);
    benchmark::DoNotOptimize(a);
  }
}
void BM_dot_xyz_simd(benchmark::State& state) {
  auto x = make_vec(1), y = make_vec(2), z = make_vec(3);
  for (auto _ : state) {
    double a = la::simd::dot_xyz(x.data(), y.data(), z.data(), kN);
    benchmark::DoNotOptimize(a);
  }
}
void BM_scale_scalar(benchmark::State& state) {
  auto x = make_vec(1);
  for (auto _ : state) {
    la::simd::scale_scalar(1.0000001, x.data(), kN);
    benchmark::DoNotOptimize(x.data());
  }
}
void BM_scale_simd(benchmark::State& state) {
  auto x = make_vec(1);
  for (auto _ : state) {
    la::simd::scale(1.0000001, x.data(), kN);
    benchmark::DoNotOptimize(x.data());
  }
}
void BM_dot_xyy_scalar(benchmark::State& state) {
  auto x = make_vec(1), y = make_vec(2);
  for (auto _ : state) {
    double a = la::simd::dot_xyy_scalar(x.data(), y.data(), kN);
    benchmark::DoNotOptimize(a);
  }
}
void BM_dot_xyy_simd(benchmark::State& state) {
  auto x = make_vec(1), y = make_vec(2);
  for (auto _ : state) {
    double a = la::simd::dot_xyy(x.data(), y.data(), kN);
    benchmark::DoNotOptimize(a);
  }
}

BENCHMARK(BM_vmul_scalar);
BENCHMARK(BM_vmul_simd);
BENCHMARK(BM_dot_xyz_scalar);
BENCHMARK(BM_dot_xyz_simd);
BENCHMARK(BM_scale_scalar);
BENCHMARK(BM_scale_simd);
BENCHMARK(BM_dot_xyy_scalar);
BENCHMARK(BM_dot_xyy_simd);

/// Median-of-reps timing used for the printed speed-up table.
template <class F>
double time_of(F&& f) {
  using clock = std::chrono::steady_clock;
  double best = 1e300;
  for (int rep = 0; rep < 7; ++rep) {
    const auto t0 = clock::now();
    for (int it = 0; it < 2000; ++it) f();
    const auto t1 = clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

void print_table1() {
  auto x = make_vec(1), y = make_vec(2), z = make_vec(3);
  la::Vector out(kN);
  volatile double sink = 0.0;

  const double t_vmul_s =
      time_of([&] { la::simd::vmul_scalar(out.data(), x.data(), y.data(), kN); });
  const double t_vmul_v = time_of([&] { la::simd::vmul(out.data(), x.data(), y.data(), kN); });
  const double t_xyz_s =
      time_of([&] { sink = la::simd::dot_xyz_scalar(x.data(), y.data(), z.data(), kN); });
  const double t_xyz_v =
      time_of([&] { sink = la::simd::dot_xyz(x.data(), y.data(), z.data(), kN); });
  const double t_xyy_s =
      time_of([&] { sink = la::simd::dot_xyy_scalar(x.data(), y.data(), kN); });
  const double t_xyy_v = time_of([&] { sink = la::simd::dot_xyy(x.data(), y.data(), kN); });
  const double t_scale_s = time_of([&] { la::simd::scale_scalar(1.0000001, out.data(), kN); });
  const double t_scale_v = time_of([&] { la::simd::scale(1.0000001, out.data(), kN); });
  (void)sink;

  const char* isa = la::simd::detect() == la::simd::Isa::Avx2 ? "AVX2+FMA" : "scalar fallback";
  const double su_vmul = t_vmul_s / t_vmul_v;
  const double su_xyz = t_xyz_s / t_xyz_v;
  const double su_xyy = t_xyy_s / t_xyy_v;
  const double su_scale = t_scale_s / t_scale_v;

  std::printf("\n=== Table 1: SIMD performance tuning speed-up factor ===\n");
  std::printf("(paper: Cray XT5 2.00/2.53/4.00, BG/P 3.40/1.60/2.25; here: host AVX2 vs scalar)\n");
  std::printf("%-28s %12s\n", "function  i=[0,N-1]", "speed-up");
  std::printf("%-28s %12.2f\n", "z[i] = x[i]*y[i]", su_vmul);
  std::printf("%-28s %12.2f\n", "a = sum x[i]*y[i]*z[i]", su_xyz);
  std::printf("%-28s %12.2f\n", "a = sum x[i]*y[i]*y[i]", su_xyy);
  std::printf("%-28s %12.2f\n", "x[i] = s*x[i]", su_scale);
  std::printf("ISA dispatched: %s\n\n", isa);

  telemetry::BenchReport rep("table1_simd");
  rep.meta("isa", std::string(isa));
  rep.meta("n", static_cast<double>(kN));
  const struct {
    const char* kernel;
    double scalar_s, simd_s, speedup;
  } rows[] = {{"vmul", t_vmul_s, t_vmul_v, su_vmul},
              {"dot_xyz", t_xyz_s, t_xyz_v, su_xyz},
              {"dot_xyy", t_xyy_s, t_xyy_v, su_xyy},
              {"scale", t_scale_s, t_scale_v, su_scale}};
  for (const auto& r : rows) {
    rep.row();
    rep.set("kernel", std::string(r.kernel));
    rep.set("scalar_s", r.scalar_s);
    rep.set("simd_s", r.simd_s);
    rep.set("speedup", r.speedup);
  }
  rep.write();
}

}  // namespace

int main(int argc, char** argv) {
  print_table1();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
