#pragma once
// Real-execution communication skeleton behind the --ranks mode of the
// Table 3-5 scaling benches.
//
// The modeled tables replay schedules through the machine:: cost model; this
// skeleton actually *executes* the same communication shape through the xmp
// runtime — hierarchical split into patches (MCI L2/L3), a per-iteration
// ring halo exchange plus CG-style allreduce inside each patch, and a
// per-step interface exchange between adjacent patch roots (Sec. 3.2's
// 3-step pattern, collapsed to the root p2p leg). With the fiber backend
// (SchedMode::Fibers) this runs at the paper's real rank counts — 4k-64k
// ranks in one process — so the benches can report measured wall-clock next
// to the modeled numbers.
//
// Absolute measured times are in-process memcpy speeds, not BG/P link
// speeds; the point of the measured column is that the runtime genuinely
// executes the schedule at scale (rank counts, message counts, collective
// structure), not that the two columns agree in seconds.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "telemetry/bench_report.hpp"
#include "xmp/comm.hpp"

namespace scaling {

struct SkeletonConfig {
  int ranks = 0;
  int patches = 4;           ///< hierarchical split arms (MCI task groups)
  int steps = 3;             ///< outer time steps
  int iters_per_step = 5;    ///< CG iterations (halo + allreduce) per step
  std::size_t halo_doubles = 256;    ///< per-neighbour halo payload
  std::size_t iface_doubles = 4096;  ///< patch-root interface payload
  xmp::SchedOptions sched;
};

struct SkeletonResult {
  double seconds = 0.0;   ///< wall-clock for the whole xmp::run
  double checksum = 0.0;  ///< world allreduce result (keeps work honest)
};

/// Execute the skeleton; every rank runs the full step loop.
inline SkeletonResult run_comm_skeleton(const SkeletonConfig& cfg) {
  const int patches = std::max(1, std::min(cfg.patches, cfg.ranks));
  const int per_patch = std::max(1, cfg.ranks / patches);
  SkeletonResult res;
  const auto t0 = std::chrono::steady_clock::now();
  xmp::run(
      cfg.ranks,
      [&](xmp::Comm& world) {
        const int w = world.rank();
        const int patch = std::min(w / per_patch, patches - 1);
        // L2/L3 split: one communicator per patch, rank order preserved.
        xmp::Comm pc = world.split(patch, w);
        const int pr = pc.rank(), pn = pc.size();
        std::vector<double> halo(cfg.halo_doubles, 1.0 + 1e-3 * w);
        double local = 1.0 + 1e-6 * w;
        for (int step = 0; step < cfg.steps; ++step) {
          for (int it = 0; it < cfg.iters_per_step; ++it) {
            if (pn > 1) {
              // ring halo: both faces posted, then both received (sends are
              // buffered, so this cannot deadlock)
              const int right = (pr + 1) % pn, left = (pr + pn - 1) % pn;
              pc.send(right, /*tag=*/it, halo);
              pc.send(left, /*tag=*/it, halo);
              auto a = pc.recv<double>(left, it);
              auto b = pc.recv<double>(right, it);
              local += a[0] + b[0];
            }
            local = pc.allreduce(local, xmp::Op::Sum) / pn;  // CG dot product
          }
          // interface exchange between adjacent patch roots on the world comm
          if (pr == 0 && patches > 1) {
            std::vector<double> iface(cfg.iface_doubles, local);
            const int next_root = (patch + 1) % patches * per_patch;
            const int prev_root = (patch + patches - 1) % patches * per_patch;
            world.send(next_root, /*tag=*/1000 + step, iface);
            world.send(prev_root, /*tag=*/2000 + step, iface);
            auto from_prev = world.recv<double>(prev_root, 1000 + step);
            auto from_next = world.recv<double>(next_root, 2000 + step);
            local += from_prev[0] + from_next[0];
          }
          world.barrier();
        }
        const double sum = world.allreduce(local, xmp::Op::Sum);
        if (w == 0) res.checksum = sum;
      },
      /*trace=*/nullptr, xmp::CheckOptions{}, cfg.sched);
  res.seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return res;
}

// ---------------------------------------------------------------------------
// Shared CLI for the scaling benches
// ---------------------------------------------------------------------------

/// Flags accepted by table3/4/5: --ranks=N turns on the measured execution,
/// --sched=threads|fibers / --workers=N / --no-guard-pages configure the
/// executor, --patches/--steps/--iters size the skeleton. Unknown flags fail
/// loudly so CI typos don't silently run the wrong config.
struct ScalingCli {
  int ranks = 0;  ///< 0: modeled tables only (default)
  int patches = 4;
  int steps = 3;
  int iters = 5;
  xmp::SchedOptions sched;
};

inline bool parse_scaling_cli(int argc, char** argv, ScalingCli& cli) {
  auto value_of = [&](const std::string& arg, const char* name, int& i,
                      std::string& out) -> bool {
    const std::string flag = std::string("--") + name;
    if (arg == flag) {
      if (i + 1 >= argc) return false;
      out = argv[++i];
      return true;
    }
    if (arg.rfind(flag + "=", 0) == 0) {
      out = arg.substr(flag.size() + 1);
      return true;
    }
    return false;
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string v;
    if (value_of(arg, "ranks", i, v)) {
      cli.ranks = std::atoi(v.c_str());
    } else if (value_of(arg, "patches", i, v)) {
      cli.patches = std::atoi(v.c_str());
    } else if (value_of(arg, "steps", i, v)) {
      cli.steps = std::atoi(v.c_str());
    } else if (value_of(arg, "iters", i, v)) {
      cli.iters = std::atoi(v.c_str());
    } else if (value_of(arg, "workers", i, v)) {
      cli.sched.workers = std::atoi(v.c_str());
    } else if (value_of(arg, "stack-kb", i, v)) {
      cli.sched.stack_kb = std::atoi(v.c_str());
    } else if (arg == "--no-guard-pages") {
      cli.sched.guard_pages = false;
    } else if (value_of(arg, "sched", i, v)) {
      if (v == "threads")
        cli.sched.mode = xmp::SchedMode::Threads;
      else if (v == "fibers")
        cli.sched.mode = xmp::SchedMode::Fibers;
      else {
        std::fprintf(stderr, "unknown --sched value '%s' (threads|fibers)\n", v.c_str());
        return false;
      }
    } else {
      std::fprintf(stderr,
                   "unknown flag '%s'\nusage: %s [--ranks=N] [--sched=threads|fibers] "
                   "[--workers=N] [--stack-kb=N] [--no-guard-pages] [--patches=N] "
                   "[--steps=N] [--iters=N]\n",
                   arg.c_str(), argv[0]);
      return false;
    }
  }
  if (cli.ranks < 0 || cli.patches < 1 || cli.steps < 1 || cli.iters < 1) {
    std::fprintf(stderr, "invalid scaling flags (ranks>=0, patches/steps/iters>=1)\n");
    return false;
  }
  return true;
}

/// Run the measured execution for one bench and print/report it next to the
/// modeled per-step time. The caller's report name must start with
/// "scaling_" — CI uploads BENCH_scaling_*.json from the scale-smoke job.
inline void run_measured_scaling(const ScalingCli& cli, double modeled_s_per_step,
                                 telemetry::BenchReport& rep) {
  SkeletonConfig cfg;
  cfg.ranks = cli.ranks;
  cfg.patches = cli.patches;
  cfg.steps = cli.steps;
  cfg.iters_per_step = cli.iters;
  cfg.sched = cli.sched;
  std::printf("--- measured execution: %d ranks, %s backend ---\n", cfg.ranks,
              xmp::to_string(cfg.sched.mode));
  const auto r = run_comm_skeleton(cfg);
  const double per_step = r.seconds / cfg.steps;
  std::printf("%d ranks x %d patches, %d steps x %d iters: %.3f s wall "
              "(%.4f s/step; modeled machine %.4f s/step)\n",
              cfg.ranks, cfg.patches, cfg.steps, cfg.iters_per_step, r.seconds, per_step,
              modeled_s_per_step);
  rep.row();
  rep.set("ranks", static_cast<double>(cfg.ranks));
  rep.set("patches", static_cast<double>(cfg.patches));
  rep.set("steps", static_cast<double>(cfg.steps));
  rep.set("iters_per_step", static_cast<double>(cfg.iters_per_step));
  rep.set("sched", std::string(xmp::to_string(cfg.sched.mode)));
  rep.set("workers", static_cast<double>(cfg.sched.workers));
  rep.set("measured_s", r.seconds);
  rep.set("measured_s_per_step", per_step);
  rep.set("modeled_s_per_step", modeled_s_per_step);
  rep.set("checksum", r.checksum);
}

}  // namespace scaling
