// Tests for element graphs, the partitioner, and the masked quad mesh.

#include <gtest/gtest.h>

#include <set>

#include "mesh/graph.hpp"
#include "mesh/partition.hpp"
#include "mesh/quadmesh.hpp"

namespace {

// ---------------- graphs ----------------

TEST(Graph, QuadGridFaceOnlyCounts) {
  auto g = mesh::quad_grid_graph(4, 3, 6, mesh::AdjacencyPolicy::FaceOnly);
  EXPECT_EQ(g.size(), 12u);
  // edges: 3*3 horizontal + 4*2 vertical = 17
  EXPECT_EQ(g.num_edges(), 17u);
}

TEST(Graph, QuadGridFullAddsCorners) {
  auto face = mesh::quad_grid_graph(4, 3, 6, mesh::AdjacencyPolicy::FaceOnly);
  auto full = mesh::quad_grid_graph(4, 3, 6, mesh::AdjacencyPolicy::FullDofWeighted);
  // corners: 2 * 3 * 2 = 12 diagonal links
  EXPECT_EQ(full.num_edges(), face.num_edges() + 12u);
  // face links carry (P+1) weight in full mode
  bool found_heavy = false, found_light = false;
  for (const auto& e : full.neighbors(0)) {
    if (e.weight == 7.0) found_heavy = true;
    if (e.weight == 1.0) found_light = true;
  }
  EXPECT_TRUE(found_heavy);
  EXPECT_TRUE(found_light);
}

TEST(Graph, HexGridNeighborhoodSizes) {
  auto face = mesh::hex_grid_graph(3, 3, 3, 4, mesh::AdjacencyPolicy::FaceOnly);
  auto full = mesh::hex_grid_graph(3, 3, 3, 4, mesh::AdjacencyPolicy::FullDofWeighted);
  // center cell of a 3x3x3 grid: 6 face neighbours vs full 26
  const std::size_t center = (1 * 3 + 1) * 3 + 1;
  EXPECT_EQ(face.neighbors(center).size(), 6u);
  EXPECT_EQ(full.neighbors(center).size(), 26u);
}

TEST(Graph, TubeIsPeriodicCircumferentially) {
  // 8 circumferential x 4 axial x 2 radial; each cell must have a
  // circumferential neighbour both ways even at the seam.
  auto g = mesh::tube_graph(4, 8, 2, 4, mesh::AdjacencyPolicy::FaceOnly);
  EXPECT_EQ(g.size(), 64u);
  // cell i=0 (on the seam), j=1, k=0: neighbours i=1 and i=7 both exist.
  // id = (k*ny + j)*nx + i with nx=8 (circ), ny=4 (axial)
  const std::size_t seam = (0 * 4 + 1) * 8 + 0;
  std::set<std::size_t> nb;
  for (const auto& e : g.neighbors(seam)) nb.insert(e.to);
  EXPECT_TRUE(nb.count((0 * 4 + 1) * 8 + 1));
  EXPECT_TRUE(nb.count((0 * 4 + 1) * 8 + 7));
}

TEST(Graph, DuplicateEdgeAccumulates) {
  mesh::ElementGraph g(2);
  g.add_edge(0, 1, 1.0);
  g.add_edge(0, 1, 2.5);
  ASSERT_EQ(g.neighbors(0).size(), 1u);
  EXPECT_DOUBLE_EQ(g.neighbors(0)[0].weight, 3.5);
  EXPECT_DOUBLE_EQ(g.neighbors(1)[0].weight, 3.5);
}

TEST(Graph, RejectsSelfLoopAndOutOfRange) {
  mesh::ElementGraph g(2);
  EXPECT_THROW(g.add_edge(0, 0), std::invalid_argument);
  EXPECT_THROW(g.add_edge(0, 5), std::out_of_range);
}

// ---------------- partitioner ----------------

class PartitionSweep : public ::testing::TestWithParam<int> {};

TEST_P(PartitionSweep, BalancedAndCoversAllParts) {
  const int k = GetParam();
  auto g = mesh::quad_grid_graph(24, 24, 6, mesh::AdjacencyPolicy::FullDofWeighted);
  auto p = mesh::partition_graph(g, k);
  ASSERT_EQ(p.part.size(), g.size());
  std::set<int> used(p.part.begin(), p.part.end());
  EXPECT_EQ(used.size(), static_cast<std::size_t>(k));
  for (int v : p.part) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, k);
  }
  auto q = mesh::evaluate_partition(g, p);
  EXPECT_LE(q.imbalance, 1.15) << "k=" << k;
}

INSTANTIATE_TEST_SUITE_P(Parts, PartitionSweep, ::testing::Values(2, 3, 4, 7, 8, 16));

TEST(Partition, EdgeCutBeatsRandomAssignment) {
  auto g = mesh::quad_grid_graph(32, 32, 6, mesh::AdjacencyPolicy::FullDofWeighted);
  auto p = mesh::partition_graph(g, 8);
  auto q = mesh::evaluate_partition(g, p);

  mesh::Partition rnd;
  rnd.nparts = 8;
  rnd.part.resize(g.size());
  for (std::size_t v = 0; v < g.size(); ++v) rnd.part[v] = static_cast<int>(v % 8);
  auto qr = mesh::evaluate_partition(g, rnd);
  EXPECT_LT(q.edge_cut, qr.edge_cut / 4.0);
}

TEST(Partition, SinglePartTrivial) {
  auto g = mesh::quad_grid_graph(4, 4, 2, mesh::AdjacencyPolicy::FaceOnly);
  auto p = mesh::partition_graph(g, 1);
  auto q = mesh::evaluate_partition(g, p);
  EXPECT_DOUBLE_EQ(q.edge_cut, 0.0);
  EXPECT_DOUBLE_EQ(q.total_comm_volume, 0.0);
}

TEST(Partition, FullAdjacencyReducesCommVolume) {
  // The Table 2 phenomenon at partition level: dof-weighted full adjacency
  // partitioning should yield no more shared-dof traffic than partitioning
  // that only sees faces. Evaluate both partitions against the *full* graph
  // (the true communication cost).
  auto g_face = mesh::tube_graph(24, 12, 3, 6, mesh::AdjacencyPolicy::FaceOnly);
  auto g_full = mesh::tube_graph(24, 12, 3, 6, mesh::AdjacencyPolicy::FullDofWeighted);
  auto p_face = mesh::partition_graph(g_face, 8);
  auto p_full = mesh::partition_graph(g_full, 8);
  auto q_face = mesh::evaluate_partition(g_full, p_face);
  auto q_full = mesh::evaluate_partition(g_full, p_full);
  EXPECT_LE(q_full.edge_cut, q_face.edge_cut * 1.05);
}

TEST(Partition, CommVolumesSymmetricPairsSumToEdgeCut) {
  auto g = mesh::quad_grid_graph(16, 16, 4, mesh::AdjacencyPolicy::FullDofWeighted);
  auto p = mesh::partition_graph(g, 4);
  auto q = mesh::evaluate_partition(g, p);
  auto vols = mesh::comm_volumes(g, p);
  double sum = 0.0;
  for (const auto& v : vols) {
    EXPECT_LT(v.a, v.b);
    sum += v.weight;
  }
  EXPECT_NEAR(sum, q.edge_cut, 1e-9);
}

TEST(Partition, RejectsBadPartCount) {
  auto g = mesh::quad_grid_graph(4, 4, 2, mesh::AdjacencyPolicy::FaceOnly);
  EXPECT_THROW(mesh::partition_graph(g, 0), std::invalid_argument);
}

// ---------------- quad mesh ----------------

TEST(QuadMesh, ChannelTagsInletOutlet) {
  auto m = mesh::QuadMesh::channel(4.0, 1.0, 8, 2);
  EXPECT_EQ(m.num_cells(), 16u);
  int inlets = 0, outlets = 0, walls = 0;
  for (const auto& f : m.boundary_faces()) {
    if (f.tag == mesh::kInlet) ++inlets;
    if (f.tag == mesh::kOutlet) ++outlets;
    if (f.tag == mesh::kWall) ++walls;
  }
  EXPECT_EQ(inlets, 2);
  EXPECT_EQ(outlets, 2);
  EXPECT_EQ(walls, 16);
}

TEST(QuadMesh, NeighborsAcrossSides) {
  auto m = mesh::QuadMesh::channel(4.0, 1.0, 4, 2);
  const std::size_t c = m.cell_index(1, 0);
  EXPECT_EQ(m.neighbor(c, mesh::Side::East), static_cast<long>(m.cell_index(2, 0)));
  EXPECT_EQ(m.neighbor(c, mesh::Side::West), static_cast<long>(m.cell_index(0, 0)));
  EXPECT_EQ(m.neighbor(c, mesh::Side::North), static_cast<long>(m.cell_index(1, 1)));
  EXPECT_EQ(m.neighbor(c, mesh::Side::South), -1);
}

TEST(QuadMesh, CavityMaskRemovesCells) {
  auto m = mesh::QuadMesh::channel_with_cavity(10.0, 1.0, 4.0, 6.0, 1.0, 20, 2);
  // channel: 20x2 cells; cavity: cells with center x in (4,6) -> 4 columns x 2 rows
  EXPECT_EQ(m.num_cells(), 40u + 8u);
  // inactive corner above the inlet
  EXPECT_FALSE(m.is_active(0, 2));
  EXPECT_TRUE(m.is_active(9, 2));
  // inlet/outlet only on the channel part
  for (const auto& f : m.boundary_faces()) {
    if (f.tag == mesh::kInlet) {
      EXPECT_LT(f.mid_y, 1.0);
    }
    if (f.tag == mesh::kOutlet) {
      EXPECT_LT(f.mid_y, 1.0);
    }
  }
}

TEST(QuadMesh, CavityWallsExposedAroundMask) {
  auto m = mesh::QuadMesh::channel_with_cavity(10.0, 1.0, 4.0, 6.0, 1.0, 10, 2);
  // Cavity columns sit at i=4,5 in row j=2 (centers 4.5, 5.5). The cavity
  // cell i=4 must expose a West wall (bordering the inactive i=3,j=2), and
  // i=5 an East wall; both tagged kWall.
  const std::size_t cav_l = m.cell_index(4, 2);
  const std::size_t cav_r = m.cell_index(5, 2);
  EXPECT_EQ(m.neighbor(cav_l, mesh::Side::West), -1);
  EXPECT_EQ(m.neighbor(cav_r, mesh::Side::East), -1);
  bool saw_left_wall = false;
  for (const auto& f : m.boundary_faces()) {
    if (f.cell == cav_l && f.side == mesh::Side::West) {
      saw_left_wall = true;
      EXPECT_EQ(f.tag, mesh::kWall);
      EXPECT_DOUBLE_EQ(f.mid_x, 4.0);
      EXPECT_DOUBLE_EQ(f.mid_y, 1.25);
    }
  }
  EXPECT_TRUE(saw_left_wall);
}

TEST(QuadMesh, LidCavityTagsNorthAsInlet) {
  auto m = mesh::QuadMesh::lid_cavity(4);
  int lid = 0;
  for (const auto& f : m.boundary_faces())
    if (f.tag == mesh::kInlet) {
      ++lid;
      EXPECT_EQ(f.side, mesh::Side::North);
    }
  EXPECT_EQ(lid, 4);
}

TEST(QuadMesh, CellOriginGeometry) {
  auto m = mesh::QuadMesh::channel(4.0, 2.0, 4, 2);
  const auto [ox, oy] = m.cell_origin(m.cell_index(2, 1));
  EXPECT_DOUBLE_EQ(ox, 2.0);
  EXPECT_DOUBLE_EQ(oy, 1.0);
}

TEST(QuadMesh, InactiveCellIndexThrows) {
  auto m = mesh::QuadMesh::channel_with_cavity(10.0, 1.0, 4.0, 6.0, 1.0, 10, 2);
  EXPECT_THROW(m.cell_index(0, 2), std::out_of_range);
}

}  // namespace
