// Verlet neighbor-list equivalence suite: the fast pair paths (CSR list,
// legacy cell walk, grid point queries) must agree exactly with direct
// O(N^2) enumeration across periodicities, skins, degenerate boxes, and
// particle insertion/deletion — and checkpoint/restart must stay bitwise
// identical even though a restart rebuilds a list the uninterrupted run was
// still reusing (docs/PERF.md explains why that is non-trivial).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <memory>
#include <random>
#include <utility>
#include <vector>

#include "dpd/inflow.hpp"
#include "dpd/neighbor.hpp"
#include "dpd/system.hpp"
#include "resilience/blob.hpp"

namespace {

using Pair = std::pair<std::size_t, std::size_t>;

dpd::SoA3 random_positions(std::size_t n, const dpd::Vec3& box, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> ux(0.0, box.x), uy(0.0, box.y), uz(0.0, box.z);
  dpd::SoA3 pos;
  for (std::size_t i = 0; i < n; ++i) pos.push_back({ux(rng), uy(rng), uz(rng)});
  return pos;
}

/// All pairs with r < rc at `pos` by direct O(N^2) enumeration, sorted.
std::vector<Pair> brute_pairs(const dpd::NeighborList& nl, const dpd::SoA3& pos) {
  const double rc2 = nl.params().rc * nl.params().rc;
  std::vector<Pair> out;
  for (std::size_t i = 0; i < pos.size(); ++i)
    for (std::size_t j = i + 1; j < pos.size(); ++j)
      if (nl.min_image(pos[i], pos[j]).norm2() < rc2) out.emplace_back(i, j);
  return out;
}

std::vector<Pair> list_pairs(const dpd::NeighborList& nl, const dpd::SoA3& pos) {
  std::vector<Pair> out;
  nl.for_each(pos, [&](std::size_t i, std::size_t j, const dpd::Vec3&, double) {
    out.emplace_back(std::min(i, j), std::max(i, j));
  });
  std::sort(out.begin(), out.end());
  return out;
}

/// Bitwise fingerprint of the full particle state.
std::vector<std::uint8_t> state_of(const dpd::DpdSystem& sys) {
  resilience::BlobWriter w;
  sys.save_state(w);
  return w.take();
}

}  // namespace

// ---------------- pair enumeration vs brute force ----------------

TEST(NeighborList, PairsMatchBruteForcePeriodic) {
  dpd::NeighborParams prm;
  prm.box = {8.0, 6.0, 5.0};
  prm.periodic = {true, true, true};
  prm.rc = 1.0;
  prm.skin = 0.3;
  dpd::NeighborList nl(prm);
  const auto pos = random_positions(500, prm.box, 21);
  EXPECT_TRUE(nl.ensure(pos));  // first ensure is always a rebuild
  EXPECT_FALSE(nl.degenerate());
  EXPECT_EQ(list_pairs(nl, pos), brute_pairs(nl, pos));
}

TEST(NeighborList, PairsMatchBruteForceMixedPeriodicity) {
  dpd::NeighborParams prm;
  prm.box = {8.0, 6.0, 5.0};
  prm.periodic = {true, false, false};
  prm.rc = 1.0;
  prm.skin = 0.25;
  dpd::NeighborList nl(prm);
  const auto pos = random_positions(400, prm.box, 22);
  nl.ensure(pos);
  EXPECT_EQ(list_pairs(nl, pos), brute_pairs(nl, pos));
}

TEST(NeighborList, CsrRunsAreCanonical) {
  // each pair once, under its lower index, runs sorted ascending — the
  // ordering the bitwise-restart argument rests on
  dpd::NeighborParams prm;
  prm.box = {6.0, 6.0, 6.0};
  dpd::NeighborList nl(prm);
  const auto pos = random_positions(300, prm.box, 23);
  nl.ensure(pos);
  const auto& offs = nl.offsets();
  const auto& nbr = nl.neighbors();
  ASSERT_EQ(offs.size(), pos.size() + 1);
  for (std::size_t i = 0; i + 1 < offs.size(); ++i)
    for (std::size_t k = offs[i]; k < offs[i + 1]; ++k) {
      EXPECT_GT(nbr[k], i);
      if (k > offs[i]) {
        EXPECT_GT(nbr[k], nbr[k - 1]);
      }
    }
}

TEST(NeighborList, ReuseUntilSkinExceeded) {
  dpd::NeighborParams prm;
  prm.box = {7.0, 7.0, 7.0};
  prm.skin = 0.4;
  dpd::NeighborList nl(prm);
  auto pos = random_positions(400, prm.box, 24);
  EXPECT_TRUE(nl.ensure(pos));

  // displace every particle by less than skin/2: the stale list must be
  // reused and still enumerate exactly the in-range pairs at the *new*
  // positions
  std::mt19937 rng(77);
  std::uniform_real_distribution<double> d(-0.5, 0.5);
  const double amp = 0.9 * 0.5 * prm.skin / std::sqrt(3.0);
  for (std::size_t i = 0; i < pos.size(); ++i)
    pos[i] += dpd::Vec3{d(rng), d(rng), d(rng)} * amp;
  EXPECT_FALSE(nl.ensure(pos));
  EXPECT_EQ(nl.reuses(), 1u);
  EXPECT_EQ(list_pairs(nl, pos), brute_pairs(nl, pos));

  // one particle crossing skin/2 forces a rebuild
  pos[7].x += 0.6 * prm.skin;
  EXPECT_TRUE(nl.ensure(pos));
  EXPECT_EQ(nl.rebuilds(), 2u);
  EXPECT_EQ(list_pairs(nl, pos), brute_pairs(nl, pos));
}

TEST(NeighborList, ZeroSkinRebuildsEveryTime) {
  dpd::NeighborParams prm;
  prm.box = {5.0, 5.0, 5.0};
  prm.skin = 0.0;
  dpd::NeighborList nl(prm);
  const auto pos = random_positions(100, prm.box, 25);
  EXPECT_TRUE(nl.ensure(pos));
  EXPECT_TRUE(nl.ensure(pos));  // even unchanged positions: no reuse
  EXPECT_EQ(nl.reuses(), 0u);
  EXPECT_EQ(list_pairs(nl, pos), brute_pairs(nl, pos));
}

TEST(NeighborList, DegenerateTinyBoxFallsBack) {
  // 2.5^3 periodic box with rc + skin = 1.3 leaves < 3 cells per dimension:
  // the half-stencil would double-count, so the build must fall back to
  // direct enumeration — and still produce the exact pair set
  dpd::NeighborParams prm;
  prm.box = {2.5, 2.5, 2.5};
  prm.periodic = {true, true, true};
  prm.rc = 1.0;
  prm.skin = 0.3;
  dpd::NeighborList nl(prm);
  const auto pos = random_positions(60, prm.box, 26);
  nl.ensure(pos);
  EXPECT_TRUE(nl.degenerate());
  EXPECT_EQ(list_pairs(nl, pos), brute_pairs(nl, pos));
}

TEST(NeighborList, QueryMatchesBruteForce) {
  dpd::NeighborParams prm;
  prm.box = {8.0, 5.0, 6.0};
  prm.periodic = {true, true, false};
  prm.skin = 0.4;
  dpd::NeighborList nl(prm);
  auto pos = random_positions(500, prm.box, 27);
  nl.ensure(pos);

  auto check_queries = [&](unsigned seed) {
    std::mt19937 rng(seed);
    std::uniform_real_distribution<double> ux(0.0, prm.box.x), uy(0.0, prm.box.y),
        uz(-1.0, prm.box.z + 1.0);
    for (int q = 0; q < 50; ++q) {
      const dpd::Vec3 p{ux(rng), uy(rng), uz(rng)};
      const double cutoff = 0.5 + 0.02 * q;
      std::vector<std::size_t> got, want;
      nl.query(pos, p, cutoff,
               [&](std::size_t j, const dpd::Vec3&, double) { got.push_back(j); });
      for (std::size_t j = 0; j < pos.size(); ++j)
        if (nl.min_image(p, pos[j]).norm2() <= cutoff * cutoff) want.push_back(j);
      std::sort(got.begin(), got.end());
      EXPECT_EQ(got, want) << "query " << q;
    }
  };
  check_queries(31);

  // after sub-skin/2 drift the grid is stale but padded: queries must still
  // be exact against the *current* positions
  std::mt19937 rng(78);
  std::uniform_real_distribution<double> d(-0.5, 0.5);
  const double amp = 0.9 * 0.5 * prm.skin / std::sqrt(3.0);
  for (std::size_t i = 0; i < pos.size(); ++i)
    pos[i] += dpd::Vec3{d(rng), d(rng), d(rng)} * amp;
  EXPECT_FALSE(nl.ensure(pos));
  check_queries(32);
}

// ---------------- DpdSystem integration ----------------

namespace {

dpd::DpdParams small_box_params(double skin) {
  dpd::DpdParams prm;
  prm.box = {6.0, 6.0, 6.0};
  prm.periodic = {true, true, true};
  prm.skin = skin;
  return prm;
}

}  // namespace

TEST(DpdNeighbor, ForcesMatchDirectReference) {
  // engine forces (Verlet gather + SIMD kernel) vs the Groot-Warren formula
  // evaluated pair-by-pair over direct enumeration
  auto prm = small_box_params(0.3);
  dpd::DpdSystem sys(prm, std::make_shared<dpd::NoWalls>());
  sys.fill(3.0, dpd::kSolvent);
  sys.compute_forces();

  const auto& vel = sys.velocities();
  const auto& spc = sys.species();
  std::vector<dpd::Vec3> ref(sys.size());
  const double inv_sqrt_dt = 1.0 / std::sqrt(prm.dt);
  sys.for_each_pair_direct([&](std::size_t i, std::size_t j, const dpd::Vec3& dr, double r) {
    const auto si = static_cast<std::size_t>(spc[i]), sj = static_cast<std::size_t>(spc[j]);
    const double a = prm.a[si][sj];
    const double g = prm.gamma[si][sj];
    const double sig = std::sqrt(2.0 * g * prm.kBT);
    const double w = 1.0 - r / prm.rc;
    const double rv = dr.dot(vel[j] - vel[i]) / r;
    const double zeta = dpd::pair_gaussian_like(sys.step_count(), static_cast<std::uint32_t>(i),
                                                static_cast<std::uint32_t>(j));
    const double fmag = a * w - g * w * w * rv + sig * w * zeta * inv_sqrt_dt;
    const dpd::Vec3 f = dr * (fmag / r);
    ref[i] -= f;
    ref[j] += f;
  });

  const auto& frc = sys.forces();
  for (std::size_t i = 0; i < sys.size(); ++i) {
    const double tol = 1e-9 * std::max(1.0, ref[i].norm());
    EXPECT_NEAR(frc[i].x, ref[i].x, tol) << "particle " << i;
    EXPECT_NEAR(frc[i].y, ref[i].y, tol);
    EXPECT_NEAR(frc[i].z, ref[i].z, tol);
  }
}

TEST(DpdNeighbor, TrajectoryIndependentOfSkin) {
  // skin 0 rebuilds the list every force pass; skin 0.6 reuses a stale (but
  // valid) one for many steps. The canonical pair order plus the batch-
  // position-invariant kernel make the trajectories bitwise identical.
  dpd::DpdSystem a(small_box_params(0.0), std::make_shared<dpd::NoWalls>());
  dpd::DpdSystem b(small_box_params(0.6), std::make_shared<dpd::NoWalls>());
  a.fill(3.0, dpd::kSolvent);
  b.fill(3.0, dpd::kSolvent);
  for (int s = 0; s < 25; ++s) {
    a.step();
    b.step();
  }
  EXPECT_GT(b.neighbor_list().reuses(), 0u);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(state_of(a), state_of(b));
}

TEST(DpdNeighbor, CheckpointRestartIsBitwise) {
  // a restart rebuilds the neighbor list mid-reuse-window; the trajectory
  // must not notice (the repo's CI digest smoke enforces the same property
  // end-to-end)
  auto prm = small_box_params(0.6);
  dpd::DpdSystem sys(prm, std::make_shared<dpd::NoWalls>());
  sys.fill(3.0, dpd::kSolvent);
  for (int s = 0; s < 7; ++s) sys.step();

  resilience::BlobWriter w;
  sys.save_state(w);
  const auto snapshot = w.take();

  dpd::DpdSystem restarted(prm, std::make_shared<dpd::NoWalls>());
  resilience::BlobReader r(snapshot.data(), snapshot.size());
  restarted.load_state(r);

  for (int s = 0; s < 9; ++s) {
    sys.step();
    restarted.step();
  }
  EXPECT_EQ(state_of(sys), state_of(restarted));
}

TEST(DpdNeighbor, ListSurvivesRemovalAndInsertion) {
  auto prm = small_box_params(0.4);
  dpd::DpdSystem sys(prm, std::make_shared<dpd::NoWalls>());
  sys.fill(3.0, dpd::kSolvent);
  sys.compute_forces();  // builds the list

  auto expect_pairs_exact = [&] {
    std::vector<Pair> fast, ref;
    sys.for_each_pair([&](std::size_t i, std::size_t j, const dpd::Vec3&, double) {
      fast.emplace_back(std::min(i, j), std::max(i, j));
    });
    sys.for_each_pair_direct([&](std::size_t i, std::size_t j, const dpd::Vec3&, double) {
      ref.emplace_back(i, j);
    });
    std::sort(fast.begin(), fast.end());
    std::sort(ref.begin(), ref.end());
    EXPECT_EQ(fast, ref);
  };

  sys.remove_particles({0, 5, 17, sys.size() - 1});
  expect_pairs_exact();

  sys.add_particle({3.0, 3.0, 3.0}, {0.1, 0.0, 0.0}, dpd::kSolvent);
  expect_pairs_exact();
}

TEST(DpdNeighbor, InflowOutflowKeepsListCorrect) {
  // FlowBc inserts and deletes particles every step; the list must be
  // invalidated/remapped through both paths
  dpd::DpdParams prm;
  prm.box = {10.0, 5.0, 5.0};
  prm.periodic = {false, true, true};
  prm.skin = 0.4;
  dpd::DpdSystem sys(prm, std::make_shared<dpd::NoWalls>());
  sys.fill(3.0, dpd::kSolvent);

  dpd::FlowBcParams bp;
  bp.axis = 0;
  bp.density = 3.0;
  bp.target_velocity = [](const dpd::Vec3&) { return dpd::Vec3{1.0, 0.0, 0.0}; };
  dpd::FlowBc bc(bp);

  for (int s = 0; s < 10; ++s) {
    sys.step();
    bc.apply(sys);
  }
  EXPECT_GT(bc.inserted_total() + bc.deleted_total(), 0u);

  std::vector<Pair> fast, ref;
  sys.for_each_pair([&](std::size_t i, std::size_t j, const dpd::Vec3&, double) {
    fast.emplace_back(std::min(i, j), std::max(i, j));
  });
  sys.for_each_pair_direct(
      [&](std::size_t i, std::size_t j, const dpd::Vec3&, double) { ref.emplace_back(i, j); });
  std::sort(fast.begin(), fast.end());
  std::sort(ref.begin(), ref.end());
  EXPECT_EQ(fast, ref);
}

TEST(DpdNeighbor, HeavyChurnKeepsPairSetsExact) {
  // 100 steps of add/remove churn interleaved with stepping: every
  // on_remap/invalidate path must leave the reused list enumerating exactly
  // the O(N^2) reference pair set at the current positions
  auto prm = small_box_params(0.4);
  dpd::DpdSystem sys(prm, std::make_shared<dpd::NoWalls>());
  sys.fill(3.0, dpd::kSolvent, 41);
  std::mt19937 rng(91);
  std::uniform_real_distribution<double> u(0.0, prm.box.x);
  std::size_t removed_total = 0, added_total = 0;
  for (int s = 0; s < 100; ++s) {
    sys.step();
    if (s % 3 == 0 && sys.size() > 50) {
      std::uniform_int_distribution<std::size_t> pick(0, sys.size() - 1);
      sys.remove_particles({pick(rng), pick(rng), pick(rng)});
      removed_total += 3;  // upper bound; duplicates collapse
    }
    if (s % 4 == 0) {
      sys.add_particle({u(rng), u(rng), u(rng)}, {0.0, 0.0, 0.0}, dpd::kSolvent);
      ++added_total;
    }
    std::vector<Pair> fast, ref;
    sys.for_each_pair([&](std::size_t i, std::size_t j, const dpd::Vec3&, double) {
      fast.emplace_back(std::min(i, j), std::max(i, j));
    });
    sys.for_each_pair_direct(
        [&](std::size_t i, std::size_t j, const dpd::Vec3&, double) { ref.emplace_back(i, j); });
    std::sort(fast.begin(), fast.end());
    std::sort(ref.begin(), ref.end());
    ASSERT_EQ(fast, ref) << "churn step " << s;
  }
  EXPECT_GT(removed_total, 0u);
  EXPECT_GT(added_total, 0u);
  EXPECT_GT(sys.neighbor_list().reuses(), 0u);  // churn must not kill reuse entirely
}

TEST(DpdNeighbor, CellwalkBaselineMatchesDirect) {
  auto prm = small_box_params(0.3);
  dpd::DpdSystem sys(prm, std::make_shared<dpd::NoWalls>());
  sys.fill(3.0, dpd::kSolvent);
  std::vector<Pair> walk, ref;
  sys.for_each_pair_cellwalk([&](std::size_t i, std::size_t j, const dpd::Vec3&, double) {
    walk.emplace_back(std::min(i, j), std::max(i, j));
  });
  sys.for_each_pair_direct(
      [&](std::size_t i, std::size_t j, const dpd::Vec3&, double) { ref.emplace_back(i, j); });
  std::sort(walk.begin(), walk.end());
  std::sort(ref.begin(), ref.end());
  EXPECT_EQ(walk, ref);
}
