// Tests for the multiscale VTK writers: structural validity of the output
// (counts, section headers, data sizes) for all three descriptions.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "io/json_escape.hpp"
#include "io/vtk.hpp"
#include "mesh/quadmesh.hpp"

namespace {

std::string slurp(const std::string& path) {
  std::ifstream f(path);
  std::stringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

std::size_t count_lines_after(const std::string& text, const std::string& marker) {
  const auto pos = text.find(marker);
  if (pos == std::string::npos) return 0;
  // value follows the marker on the same line
  std::istringstream is(text.substr(pos + marker.size()));
  std::size_t n = 0;
  is >> n;
  return n;
}

struct TempFile {
  std::string path;
  explicit TempFile(const std::string& name) : path("/tmp/nektarg_io_" + name) {}
  ~TempFile() { std::remove(path.c_str()); }
};

TEST(IoVtk, SemFieldFileStructure) {
  auto m = mesh::QuadMesh::channel(2.0, 1.0, 4, 2);
  sem::Discretization d(m, 3);
  la::Vector u(d.num_nodes());
  for (std::size_t g = 0; g < d.num_nodes(); ++g) u[g] = d.node_x(g);
  TempFile tf("sem.vtk");
  io::write_sem_vtk(tf.path, d, {{"u", &u}});
  const auto text = slurp(tf.path);
  EXPECT_NE(text.find("DATASET UNSTRUCTURED_GRID"), std::string::npos);
  EXPECT_EQ(count_lines_after(text, "POINTS "), d.num_nodes());
  // 8 elements x 3x3 sub-quads
  EXPECT_EQ(count_lines_after(text, "CELLS "), 8u * 9u);
  EXPECT_NE(text.find("SCALARS u double 1"), std::string::npos);
}

TEST(IoVtk, SemFieldSizeMismatchThrows) {
  auto m = mesh::QuadMesh::channel(2.0, 1.0, 2, 1);
  sem::Discretization d(m, 2);
  la::Vector bad(3);
  TempFile tf("bad.vtk");
  EXPECT_THROW(io::write_sem_vtk(tf.path, d, {{"u", &bad}}), std::invalid_argument);
}

TEST(IoVtk, DpdParticleFile) {
  dpd::DpdParams prm;
  prm.box = {4, 4, 4};
  dpd::DpdSystem sys(prm, std::make_shared<dpd::NoWalls>());
  sys.add_particle({1, 2, 3}, {0.5, 0, 0}, dpd::kSolvent);
  sys.add_particle({2, 2, 2}, {}, dpd::kPlatelet);
  dpd::PlateletModel model({});
  model.add_platelet(1);
  TempFile tf("dpd.vtk");
  io::write_dpd_vtk(tf.path, sys, &model);
  const auto text = slurp(tf.path);
  EXPECT_EQ(count_lines_after(text, "POINTS "), 2u);
  EXPECT_NE(text.find("VECTORS velocity double"), std::string::npos);
  EXPECT_NE(text.find("SCALARS platelet_state int 1"), std::string::npos);
  // non-platelet carries -1, platelet carries Passive = 0
  const auto pos = text.find("SCALARS platelet_state");
  std::istringstream tail(text.substr(text.find("default\n", pos) + 8));
  int s0 = 9, s1 = 9;
  tail >> s0 >> s1;
  EXPECT_EQ(s0, -1);
  EXPECT_EQ(s1, 0);
}

TEST(IoVtk, NetworkPolylines) {
  nektar1d::ArterialNetwork net;
  nektar1d::VesselParams p;
  p.elements = 2;
  p.order = 3;
  const int v0 = net.add_vessel(p);
  const int v1 = net.add_vessel(p);
  (void)v0;
  (void)v1;
  TempFile tf("net.vtk");
  io::write_network_vtk(tf.path, net);
  const auto text = slurp(tf.path);
  // 2 vessels x 2 elements x 4 nodes
  EXPECT_EQ(count_lines_after(text, "POINTS "), 16u);
  EXPECT_EQ(count_lines_after(text, "LINES "), 2u);
  EXPECT_NE(text.find("SCALARS area double 1"), std::string::npos);
  EXPECT_NE(text.find("SCALARS pressure double 1"), std::string::npos);
}

// The shared JSON escaping helper (used by telemetry's JsonWriter and the
// scenario serializer; the round-trip through the scenario parser is pinned
// in tests/scenario_test.cpp).
TEST(IoJsonEscape, MandatoryAndControlEscapes) {
  EXPECT_EQ(io::json_string_literal("plain"), "\"plain\"");
  EXPECT_EQ(io::json_string_literal("a\"b\\c"), "\"a\\\"b\\\\c\"");
  EXPECT_EQ(io::json_string_literal("\n\t\r\b\f"), "\"\\n\\t\\r\\b\\f\"");
  EXPECT_EQ(io::json_string_literal(std::string("\x01\x1f", 2)), "\"\\u0001\\u001f\"");
  // NUL inside the string must not truncate it.
  EXPECT_EQ(io::json_string_literal(std::string("a\0b", 3)), "\"a\\u0000b\"");
}

TEST(IoJsonEscape, Utf8BytesPassThrough) {
  const std::string utf8 = "\xce\xbc \xe8\xa1\x80 \xf0\x9f\xa9\xb8";  // mu, blood, drop
  EXPECT_EQ(io::json_string_literal(utf8), "\"" + utf8 + "\"");
}

}  // namespace
