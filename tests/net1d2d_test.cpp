// Tests for 1D-network <-> 2D-patch coupling (the paper's "3D domains to a
// number of 1D domains" capability).

#include <gtest/gtest.h>

#include <cmath>

#include "coupling/net1d2d.hpp"

namespace {

nektar1d::VesselParams vessel() {
  nektar1d::VesselParams p;
  p.length = 10.0;
  p.A0 = 0.5;
  p.beta = 1.0e5;
  p.elements = 8;
  p.order = 4;
  return p;
}

TEST(FluxProfile, IntegratesToFlux) {
  coupling::FluxProfile fp;
  fp.H = 2.0;
  const double q = 3.7;
  // midpoint quadrature of the parabola recovers q
  double integral = 0.0;
  const int n = 200;
  for (int k = 0; k < n; ++k) {
    const double y = fp.H * (k + 0.5) / n;
    integral += fp.u_at(q, y) * fp.H / n;
  }
  EXPECT_NEAR(integral, q, 1e-4 * q);
  // no-slip at the walls
  EXPECT_DOUBLE_EQ(fp.u_at(q, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(fp.u_at(q, fp.H), 0.0);
}

TEST(Net1dToPatch, VesselFlowDrivesPatchInlet) {
  // 1D vessel with prescribed ramp inflow and resistance outlet feeds a 2D
  // channel: the patch's inlet flux must track the vessel's outlet flow.
  nektar1d::ArterialNetwork net;
  const int v = net.add_vessel(vessel());
  const double Q0 = 1.2, R = 2.0e3;
  net.set_inlet_flow(v, [=](double t) { return Q0 * std::min(1.0, t / 0.05); });
  net.set_outlet_resistance(v, R);

  auto m = mesh::QuadMesh::channel(2.0, 1.0, 4, 2);
  sem::Discretization d(m, 4);
  sem::NavierStokes2D::Params nsp;
  nsp.nu = 0.05;
  nsp.dt = 2e-3;
  sem::NavierStokes2D ns(d, nsp);
  ns.set_natural_bc(mesh::kOutlet);

  coupling::Network1DToPatch link(net, v, nektar1d::End::Right, ns, /*q_scale=*/1.0);
  for (int s = 0; s < 400; ++s) link.step(nsp.dt);

  // 1D side is (near) steady at Q0; patch inlet profile carries that flux
  EXPECT_NEAR(link.last_q2d(), Q0, 0.15 * Q0);
  // and the inlet centerline velocity matches the parabola 6Q/H^3 y(H-y)
  EXPECT_NEAR(d.evaluate(ns.u(), 1e-9, 0.5), 6.0 * link.last_q2d() * 0.25, 0.05);
}

TEST(PatchToNet1d, PatchOutletFeedsPeripheralBed) {
  // Steady Poiseuille patch drains into a 1D vessel with a resistance
  // outlet: the peripheral pressure must approach Q * R_total.
  auto m = mesh::QuadMesh::channel(2.0, 1.0, 4, 2);
  sem::Discretization d(m, 4);
  sem::NavierStokes2D::Params nsp;
  nsp.nu = 0.05;
  nsp.dt = 2e-3;
  sem::NavierStokes2D ns(d, nsp);
  const double Umax = 1.0;
  ns.set_velocity_bc(mesh::kInlet,
                     [Umax](double, double y, double) { return 4.0 * Umax * y * (1.0 - y); },
                     [](double, double, double) { return 0.0; });
  ns.set_natural_bc(mesh::kOutlet);

  nektar1d::ArterialNetwork net;
  const int root = net.add_vessel(vessel());
  const double R = 1.5e3;
  net.set_outlet_resistance(root, R);

  const double q_scale = 2.0;  // 2D slice flux -> volumetric flow
  coupling::PatchToNetwork1D link(ns, net, root, q_scale);
  for (int s = 0; s < 900; ++s) link.step(nsp.dt);

  // patch outlet flux for the parabola: 2/3 Umax H = 0.667
  EXPECT_NEAR(link.last_outlet_flux(), 2.0 / 3.0 * Umax, 0.05);
  const double q3d = q_scale * link.last_outlet_flux();
  EXPECT_NEAR(link.peripheral_pressure(), q3d * R, 0.15 * q3d * R);
}

TEST(Net1dToPatch, PulsatileWaveformTransmits) {
  // a pulsatile 1D inflow should appear as a pulsatile patch inlet flux
  nektar1d::ArterialNetwork net;
  const int v = net.add_vessel(vessel());
  const double T = 0.25;
  net.set_inlet_flow(v, [=](double t) {
    return (1.0 + 0.5 * std::sin(2 * M_PI * t / T)) * std::min(1.0, t / 0.05);
  });
  net.set_outlet_resistance(v, 1.0e3);

  auto m = mesh::QuadMesh::channel(2.0, 1.0, 4, 2);
  sem::Discretization d(m, 4);
  sem::NavierStokes2D::Params nsp;
  nsp.nu = 0.05;
  nsp.dt = 1e-3;
  sem::NavierStokes2D ns(d, nsp);
  ns.set_natural_bc(mesh::kOutlet);
  coupling::Network1DToPatch link(net, v, nektar1d::End::Right, ns);

  double qmin = 1e30, qmax = -1e30;
  for (int s = 0; s < 600; ++s) {
    link.step(nsp.dt);
    if (net.time() > 0.3) {  // past the ramp
      qmin = std::min(qmin, link.last_q2d());
      qmax = std::max(qmax, link.last_q2d());
    }
  }
  // oscillation survives the coupling (amplitude not annihilated)
  EXPECT_GT(qmax - qmin, 0.3);
  EXPECT_GT(qmin, 0.0);
}

}  // namespace
