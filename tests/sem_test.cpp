// Tests for the spectral-element core: GLL machinery, discretization,
// operators, Helmholtz/Poisson solves, and Navier-Stokes validation against
// analytic flows (Poiseuille, Taylor-Green, Womersley).

#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "sem/discretization.hpp"
#include "sem/gll.hpp"
#include "sem/helmholtz.hpp"
#include "sem/ns2d.hpp"
#include "sem/operators.hpp"

namespace {

// ---------------- GLL ----------------

TEST(Gll, LegendreKnownValues) {
  EXPECT_DOUBLE_EQ(sem::legendre(0, 0.3), 1.0);
  EXPECT_DOUBLE_EQ(sem::legendre(1, 0.3), 0.3);
  EXPECT_NEAR(sem::legendre(2, 0.5), 0.5 * (3 * 0.25 - 1), 1e-15);
  EXPECT_NEAR(sem::legendre(5, 1.0), 1.0, 1e-15);
  EXPECT_NEAR(sem::legendre(5, -1.0), -1.0, 1e-15);
}

TEST(Gll, DerivEndpoints) {
  // P'_n(1) = n(n+1)/2; P'_n(-1) = (-1)^{n-1} n(n+1)/2
  EXPECT_NEAR(sem::legendre_deriv(4, 1.0), 10.0, 1e-12);
  EXPECT_NEAR(sem::legendre_deriv(4, -1.0), -10.0, 1e-12);
  EXPECT_NEAR(sem::legendre_deriv(5, -1.0), 15.0, 1e-12);
}

class GllOrders : public ::testing::TestWithParam<int> {};

TEST_P(GllOrders, WeightsSumToTwo) {
  auto r = sem::gll_rule(GetParam());
  double s = 0.0;
  for (double w : r.weights) s += w;
  EXPECT_NEAR(s, 2.0, 1e-13);
}

TEST_P(GllOrders, NodesSymmetricAndSorted) {
  auto r = sem::gll_rule(GetParam());
  const std::size_t n = r.nodes.size();
  EXPECT_DOUBLE_EQ(r.nodes[0], -1.0);
  EXPECT_DOUBLE_EQ(r.nodes[n - 1], 1.0);
  for (std::size_t i = 1; i < n; ++i) EXPECT_LT(r.nodes[i - 1], r.nodes[i]);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(r.nodes[i], -r.nodes[n - 1 - i], 1e-13);
}

TEST_P(GllOrders, QuadratureExactForPolynomials) {
  // GLL with P+1 points integrates degree <= 2P-1 exactly.
  const int P = GetParam();
  auto r = sem::gll_rule(P);
  for (int deg = 0; deg <= 2 * P - 1; ++deg) {
    double s = 0.0;
    for (std::size_t i = 0; i < r.nodes.size(); ++i)
      s += r.weights[i] * std::pow(r.nodes[i], deg);
    const double exact = deg % 2 == 1 ? 0.0 : 2.0 / (deg + 1);
    EXPECT_NEAR(s, exact, 1e-12) << "P=" << P << " deg=" << deg;
  }
}

TEST_P(GllOrders, DiffMatrixExactOnPolynomials) {
  const int P = GetParam();
  auto r = sem::gll_rule(P);
  auto D = sem::gll_diff_matrix(r);
  // d/dx of x^P sampled at nodes
  la::Vector f(r.nodes.size());
  for (std::size_t i = 0; i < f.size(); ++i) f[i] = std::pow(r.nodes[i], P);
  auto df = D.matvec(f);
  for (std::size_t i = 0; i < f.size(); ++i)
    EXPECT_NEAR(df[i], P * std::pow(r.nodes[i], P - 1), 1e-10);
}

TEST_P(GllOrders, DiffMatrixKillsConstants) {
  auto r = sem::gll_rule(GetParam());
  auto D = sem::gll_diff_matrix(r);
  la::Vector ones(r.nodes.size(), 1.0);
  auto d = D.matvec(ones);
  for (std::size_t i = 0; i < d.size(); ++i) EXPECT_NEAR(d[i], 0.0, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Orders, GllOrders, ::testing::Values(1, 2, 3, 5, 8, 12));

TEST(Gll, LagrangeInterpolationReproducesPolynomial) {
  auto r = sem::gll_rule(6);
  la::Vector f(r.nodes.size());
  auto poly = [](double x) { return 1.0 + x - 2.0 * x * x + 0.5 * x * x * x; };
  for (std::size_t i = 0; i < f.size(); ++i) f[i] = poly(r.nodes[i]);
  for (double x : {-0.93, -0.2, 0.0, 0.41, 0.99}) {
    auto basis = sem::lagrange_basis_at(r, x);
    double s = 0.0;
    for (std::size_t k = 0; k < basis.size(); ++k) s += basis[k] * f[k];
    EXPECT_NEAR(s, poly(x), 1e-12);
  }
}

TEST(Gll, LagrangeBasisAtNodeIsDelta) {
  auto r = sem::gll_rule(4);
  auto b = sem::lagrange_basis_at(r, r.nodes[2]);
  for (std::size_t k = 0; k < b.size(); ++k) EXPECT_DOUBLE_EQ(b[k], k == 2 ? 1.0 : 0.0);
}

// ---------------- Discretization ----------------

TEST(Disc, NodeCountContinuity) {
  auto m = mesh::QuadMesh::channel(2.0, 1.0, 4, 2);
  sem::Discretization d(m, 5);
  // (4*5+1) * (2*5+1) lattice points
  EXPECT_EQ(d.num_nodes(), 21u * 11u);
}

TEST(Disc, SharedEdgeNodesIdentical) {
  auto m = mesh::QuadMesh::channel(2.0, 1.0, 2, 1);
  sem::Discretization d(m, 4);
  const std::size_t e0 = m.cell_index(0, 0), e1 = m.cell_index(1, 0);
  for (int b = 0; b <= 4; ++b)
    EXPECT_EQ(d.global_node(e0, 4, b), d.global_node(e1, 0, b));
}

TEST(Disc, MultiplicityCorners) {
  auto m = mesh::QuadMesh::channel(2.0, 2.0, 2, 2);
  sem::Discretization d(m, 3);
  // the center point is shared by 4 elements
  const std::size_t center = d.global_node(m.cell_index(0, 0), 3, 3);
  EXPECT_DOUBLE_EQ(d.node_multiplicity(center), 4.0);
  const std::size_t corner = d.global_node(m.cell_index(0, 0), 0, 0);
  EXPECT_DOUBLE_EQ(d.node_multiplicity(corner), 1.0);
}

TEST(Disc, BoundaryNodeSetsCoverTags) {
  auto m = mesh::QuadMesh::channel(2.0, 1.0, 4, 2);
  sem::Discretization d(m, 4);
  // inlet: x = 0 line has 2*4+1 nodes
  EXPECT_EQ(d.boundary_nodes(mesh::kInlet).size(), 9u);
  EXPECT_EQ(d.boundary_nodes(mesh::kOutlet).size(), 9u);
  for (std::size_t g : d.boundary_nodes(mesh::kInlet)) EXPECT_DOUBLE_EQ(d.node_x(g), 0.0);
}

TEST(Disc, EvaluateReproducesField) {
  auto m = mesh::QuadMesh::channel(2.0, 1.0, 4, 2);
  sem::Discretization d(m, 6);
  la::Vector f(d.num_nodes());
  auto fn = [](double x, double y) { return std::sin(x) * std::cos(2 * y); };
  for (std::size_t g = 0; g < d.num_nodes(); ++g) f[g] = fn(d.node_x(g), d.node_y(g));
  for (double x : {0.1, 0.77, 1.5, 1.99})
    for (double y : {0.05, 0.51, 0.93})
      EXPECT_NEAR(d.evaluate(f, x, y), fn(x, y), 2e-6);
}

TEST(Disc, EvaluateOutsideThrows) {
  auto m = mesh::QuadMesh::channel(2.0, 1.0, 4, 2);
  sem::Discretization d(m, 3);
  la::Vector f(d.num_nodes(), 1.0);
  EXPECT_THROW(d.evaluate(f, -0.5, 0.5), std::out_of_range);
  EXPECT_THROW(d.evaluate(f, 2.5, 0.5), std::out_of_range);
}

TEST(Disc, LocateRespectsMask) {
  auto m = mesh::QuadMesh::channel_with_cavity(10.0, 1.0, 4.0, 6.0, 1.0, 10, 2);
  sem::Discretization d(m, 3);
  EXPECT_GE(d.locate(5.0, 1.5), 0);   // inside cavity
  EXPECT_EQ(d.locate(1.0, 1.5), -1);  // above channel, outside cavity
}

// ---------------- Operators ----------------

TEST(Ops, MassDiagSumsToArea) {
  auto m = mesh::QuadMesh::channel(3.0, 2.0, 6, 4);
  sem::Discretization d(m, 5);
  sem::Operators ops(d);
  double area = 0.0;
  for (std::size_t g = 0; g < d.num_nodes(); ++g) area += ops.mass_diag()[g];
  EXPECT_NEAR(area, 6.0, 1e-12);
}

TEST(Ops, StiffnessAnnihilatesConstants) {
  auto m = mesh::QuadMesh::channel(2.0, 1.0, 3, 2);
  sem::Discretization d(m, 4);
  sem::Operators ops(d);
  la::Vector ones(d.num_nodes(), 1.0), y;
  ops.apply_stiffness(ones, y);
  for (std::size_t g = 0; g < y.size(); ++g) EXPECT_NEAR(y[g], 0.0, 1e-11);
}

TEST(Ops, StiffnessSymmetricPositive) {
  auto m = mesh::QuadMesh::channel(1.0, 1.0, 2, 2);
  sem::Discretization d(m, 3);
  sem::Operators ops(d);
  const std::size_t n = d.num_nodes();
  // check symmetry on random vectors: x^T K y == y^T K x, and x^T K x >= 0
  la::Vector x(n), y(n), Kx, Ky;
  for (std::size_t g = 0; g < n; ++g) {
    x[g] = std::sin(3.0 * g);
    y[g] = std::cos(5.0 * g);
  }
  ops.apply_stiffness(x, Kx);
  ops.apply_stiffness(y, Ky);
  double xKy = 0.0, yKx = 0.0, xKx = 0.0;
  for (std::size_t g = 0; g < n; ++g) {
    xKy += x[g] * Ky[g];
    yKx += y[g] * Kx[g];
    xKx += x[g] * Kx[g];
  }
  EXPECT_NEAR(xKy, yKx, 1e-9 * (1.0 + std::fabs(xKy)));
  EXPECT_GT(xKx, 0.0);
}

TEST(Ops, GradientOfLinearFieldExact) {
  auto m = mesh::QuadMesh::channel(2.0, 1.0, 4, 2);
  sem::Discretization d(m, 4);
  sem::Operators ops(d);
  la::Vector f(d.num_nodes());
  for (std::size_t g = 0; g < d.num_nodes(); ++g)
    f[g] = 3.0 * d.node_x(g) - 2.0 * d.node_y(g) + 1.0;
  la::Vector fx, fy;
  ops.gradient(f, fx, fy);
  for (std::size_t g = 0; g < d.num_nodes(); ++g) {
    EXPECT_NEAR(fx[g], 3.0, 1e-10);
    EXPECT_NEAR(fy[g], -2.0, 1e-10);
  }
}

TEST(Ops, GradientSpectralAccuracy) {
  auto m = mesh::QuadMesh::channel(2.0, 1.0, 4, 2);
  sem::Discretization d(m, 8);
  sem::Operators ops(d);
  la::Vector f(d.num_nodes());
  for (std::size_t g = 0; g < d.num_nodes(); ++g)
    f[g] = std::sin(d.node_x(g)) * std::exp(d.node_y(g));
  la::Vector fx, fy;
  ops.gradient(f, fx, fy);
  double max_err = 0.0;
  for (std::size_t g = 0; g < d.num_nodes(); ++g) {
    max_err = std::max(max_err,
                       std::fabs(fx[g] - std::cos(d.node_x(g)) * std::exp(d.node_y(g))));
  }
  EXPECT_LT(max_err, 1e-7);
}

TEST(Ops, DivergenceOfRotationalFieldZero) {
  auto m = mesh::QuadMesh::channel(2.0, 2.0, 4, 4);
  sem::Discretization d(m, 6);
  sem::Operators ops(d);
  la::Vector u(d.num_nodes()), v(d.num_nodes()), div;
  // u = y, v = -x is divergence-free
  for (std::size_t g = 0; g < d.num_nodes(); ++g) {
    u[g] = d.node_y(g);
    v[g] = -d.node_x(g);
  }
  ops.divergence(u, v, div);
  for (std::size_t g = 0; g < d.num_nodes(); ++g) EXPECT_NEAR(div[g], 0.0, 1e-10);
}

TEST(Ops, IntegralOfOneIsArea) {
  auto m = mesh::QuadMesh::channel_with_cavity(10.0, 1.0, 4.0, 6.0, 1.0, 20, 2);
  sem::Discretization d(m, 4);
  sem::Operators ops(d);
  la::Vector ones(d.num_nodes(), 1.0);
  // channel 10x1 plus cavity 2x1
  EXPECT_NEAR(ops.integral(ones), 12.0, 1e-10);
}

// ---------------- Helmholtz / Poisson ----------------

TEST(Helmholtz, ManufacturedDirichletSolution) {
  // -nu lap u + lambda u = f with u* = sin(pi x) sin(pi y) on [0,1]^2
  auto m = mesh::QuadMesh::lid_cavity(3);
  sem::Discretization d(m, 7);
  sem::Operators ops(d);
  const double lambda = 2.0, nu = 0.5;
  sem::HelmholtzSolver hs(ops, lambda, nu, {mesh::kWall, mesh::kInlet});
  hs.options().rtol = 1e-12;

  la::Vector f(d.num_nodes());
  auto exact = [](double x, double y) { return std::sin(M_PI * x) * std::sin(M_PI * y); };
  for (std::size_t g = 0; g < d.num_nodes(); ++g) {
    const double x = d.node_x(g), y = d.node_y(g);
    f[g] = (lambda + 2.0 * nu * M_PI * M_PI) * exact(x, y);
  }
  la::Vector u;
  auto res = hs.solve(f, [&](double x, double y) { return exact(x, y); }, u);
  EXPECT_TRUE(res.converged);
  double max_err = 0.0;
  for (std::size_t g = 0; g < d.num_nodes(); ++g)
    max_err = std::max(max_err, std::fabs(u[g] - exact(d.node_x(g), d.node_y(g))));
  EXPECT_LT(max_err, 1e-6);
}

TEST(Helmholtz, InhomogeneousDirichletLifting) {
  // lap u = 0 with u = x on the boundary has solution u = x.
  auto m = mesh::QuadMesh::lid_cavity(2);
  sem::Discretization d(m, 5);
  sem::Operators ops(d);
  sem::HelmholtzSolver hs(ops, 0.0, 1.0, {mesh::kWall, mesh::kInlet});
  hs.options().rtol = 1e-12;
  la::Vector f(d.num_nodes(), 0.0), u;
  auto res = hs.solve(f, [](double x, double) { return x; }, u);
  EXPECT_TRUE(res.converged);
  for (std::size_t g = 0; g < d.num_nodes(); ++g)
    EXPECT_NEAR(u[g], d.node_x(g), 1e-8);
}

TEST(Helmholtz, PureNeumannPoissonZeroMean) {
  // -lap u = f with f = cos(pi x) on [0,1]^2 (compatible: zero mean);
  // solution u = cos(pi x)/pi^2 + const; solver pins zero mean.
  auto m = mesh::QuadMesh::lid_cavity(3);
  sem::Discretization d(m, 7);
  sem::Operators ops(d);
  sem::HelmholtzSolver hs(ops, 0.0, 1.0, {});
  hs.options().rtol = 1e-12;
  la::Vector f(d.num_nodes());
  for (std::size_t g = 0; g < d.num_nodes(); ++g)
    f[g] = std::cos(M_PI * d.node_x(g));
  la::Vector u;
  auto res = hs.solve(f, [](double, double) { return 0.0; }, u);
  EXPECT_TRUE(res.converged);
  double max_err = 0.0;
  for (std::size_t g = 0; g < d.num_nodes(); ++g) {
    const double exact = std::cos(M_PI * d.node_x(g)) / (M_PI * M_PI);
    max_err = std::max(max_err, std::fabs(u[g] - exact));
  }
  EXPECT_LT(max_err, 1e-6);
  EXPECT_NEAR(ops.integral(u), 0.0, 1e-9);
}

TEST(Helmholtz, ProjectorAcceleratesTimeSeries) {
  auto m = mesh::QuadMesh::lid_cavity(3);
  sem::Discretization d(m, 6);
  sem::Operators ops(d);
  sem::HelmholtzSolver hs(ops, 10.0, 1.0, {mesh::kWall, mesh::kInlet});
  la::Vector u;
  std::size_t first = 0, late = 0;
  for (int step = 0; step < 8; ++step) {
    la::Vector f(d.num_nodes());
    for (std::size_t g = 0; g < d.num_nodes(); ++g)
      f[g] = std::sin(M_PI * d.node_x(g) + 0.1 * step) * std::sin(M_PI * d.node_y(g));
    auto res = hs.solve(f, [](double, double) { return 0.0; }, u);
    if (step == 0) first = res.iterations;
    if (step == 7) late = res.iterations;
  }
  EXPECT_LT(late, first / 2);
}

// ---------------- Navier-Stokes ----------------

TEST(Ns2d, PoiseuilleSteadyState) {
  // Channel flow with parabolic inlet; the steady solution is the same
  // parabola everywhere and dp/dx = -2 nu Umax / h^2 * ... (h = half height).
  const double H = 1.0, L = 2.0, numean = 0.05, Umax = 1.0;
  auto m = mesh::QuadMesh::channel(L, H, 6, 3);
  sem::Discretization d(m, 5);
  sem::NavierStokes2D::Params prm;
  prm.nu = numean;
  prm.dt = 2e-3;
  sem::NavierStokes2D ns(d, prm);
  auto poiseuille = [&](double, double y, double) { return 4.0 * Umax * y * (H - y) / (H * H); };
  ns.set_velocity_bc(mesh::kInlet, poiseuille,
                     [](double, double, double) { return 0.0; });
  ns.set_natural_bc(mesh::kOutlet);
  // start from rest, march to steady state
  for (int s = 0; s < 600; ++s) ns.step();
  // centerline velocity approaches Umax through the whole channel
  for (double x : {0.3, 1.0, 1.7}) {
    EXPECT_NEAR(d.evaluate(ns.u(), x, 0.5), Umax, 0.03) << "x=" << x;
    EXPECT_NEAR(d.evaluate(ns.v(), x, 0.5), 0.0, 0.02);
  }
  // no-slip at the wall
  EXPECT_NEAR(d.evaluate(ns.u(), 1.0, 0.0), 0.0, 1e-10);
}

TEST(Ns2d, TaylorGreenDecay) {
  // Exact NS solution on [0,1]^2: u = sin(pi x) cos(pi y) F(t),
  // v = -cos(pi x) sin(pi y) F(t), F = exp(-2 pi^2 nu t).
  const double nu = 0.02;
  auto m = mesh::QuadMesh::lid_cavity(4);
  sem::Discretization d(m, 6);
  sem::NavierStokes2D::Params prm;
  prm.nu = nu;
  prm.dt = 1e-3;
  prm.pressure_dirichlet_tags = {};  // enclosed flow: pure-Neumann pressure
  sem::NavierStokes2D ns(d, prm);
  auto F = [nu](double t) { return std::exp(-2.0 * M_PI * M_PI * nu * t); };
  auto ue = [&](double x, double y, double t) {
    return std::sin(M_PI * x) * std::cos(M_PI * y) * F(t);
  };
  auto ve = [&](double x, double y, double t) {
    return -std::cos(M_PI * x) * std::sin(M_PI * y) * F(t);
  };
  ns.set_velocity_bc(mesh::kWall, ue, ve);
  ns.set_velocity_bc(mesh::kInlet, ue, ve);  // lid tag doubles as wall here
  ns.set_initial(ue, ve);
  const int steps = 100;
  for (int s = 0; s < steps; ++s) ns.step();
  const double T = ns.time();
  double max_err = 0.0;
  for (std::size_t g = 0; g < d.num_nodes(); ++g)
    max_err = std::max(max_err, std::fabs(ns.u()[g] - ue(d.node_x(g), d.node_y(g), T)));
  // first-order splitting: expect O(dt) accuracy
  EXPECT_LT(max_err, 0.02);
  // amplitude decays
  EXPECT_LT(ns.max_speed(), 1.0);
}

TEST(Ns2d, WomersleyOscillatoryChannel) {
  // Channel driven by body force A cos(w t); the exact periodic solution is
  // the Womersley profile. Validate the centerline amplitude after several
  // periods against the analytic complex solution.
  const double H = 1.0, L = 1.0, nu = 0.05, A = 1.0, w = 2.0 * M_PI;
  auto m = mesh::QuadMesh::channel(L, H, 2, 6);
  sem::Discretization d(m, 6);
  sem::NavierStokes2D::Params prm;
  prm.nu = nu;
  prm.dt = 2.5e-3;
  prm.pressure_dirichlet_tags = {mesh::kInlet, mesh::kOutlet};
  sem::NavierStokes2D ns(d, prm);
  ns.set_natural_bc(mesh::kInlet);
  ns.set_natural_bc(mesh::kOutlet);
  ns.set_body_force([&](double, double, double t) { return A * std::cos(w * t); },
                    [](double, double, double) { return 0.0; });

  // exact: u(y,t) = Re[ (A / (i w)) (1 - cosh(k(y-h/2)) / cosh(k h/2)) e^{iwt} ],
  // k = sqrt(i w / nu)
  auto exact_u = [&](double y, double t) {
    const std::complex<double> iw(0.0, w);
    const std::complex<double> k = std::sqrt(iw / nu);
    const std::complex<double> num = std::cosh(k * (y - H / 2));
    const std::complex<double> den = std::cosh(k * (H / 2));
    const std::complex<double> prof = (A / iw) * (1.0 - num / den);
    return (prof * std::exp(std::complex<double>(0.0, w * t))).real();
  };

  // integrate 3 periods to wash out the initial transient
  const int steps_per_period = static_cast<int>(std::lround(1.0 / (prm.dt)));
  for (int s = 0; s < 3 * steps_per_period; ++s) ns.step();
  // compare over the following half period at the centerline
  double max_err = 0.0, max_amp = 0.0;
  for (int s = 0; s < steps_per_period / 2; ++s) {
    ns.step();
    const double uc = d.evaluate(ns.u(), 0.5, 0.5);
    const double ex = exact_u(0.5, ns.time());
    max_err = std::max(max_err, std::fabs(uc - ex));
    max_amp = std::max(max_amp, std::fabs(ex));
  }
  EXPECT_GT(max_amp, 0.05);  // sanity: the flow actually oscillates
  EXPECT_LT(max_err / max_amp, 0.08);
}

TEST(Ns2d, CavityFlowConservesMassAtWalls) {
  auto m = mesh::QuadMesh::lid_cavity(4);
  sem::Discretization d(m, 5);
  sem::NavierStokes2D::Params prm;
  prm.nu = 0.05;
  prm.dt = 2e-3;
  prm.pressure_dirichlet_tags = {};
  sem::NavierStokes2D ns(d, prm);
  ns.set_velocity_bc(mesh::kInlet, [](double, double, double) { return 1.0; },
                     [](double, double, double) { return 0.0; });
  for (int s = 0; s < 100; ++s) ns.step();
  // interior divergence should be small relative to the lid speed scale
  la::Vector div(d.num_nodes());
  sem::Operators ops(d);
  la::Vector u = ns.u(), v = ns.v();
  ops.divergence(u, v, div);
  double interior_rms = 0.0;
  std::size_t cnt = 0;
  for (std::size_t g = 0; g < d.num_nodes(); ++g) {
    const double x = d.node_x(g), y = d.node_y(g);
    if (x < 0.2 || x > 0.8 || y < 0.2 || y > 0.8) continue;
    interior_rms += div[g] * div[g];
    ++cnt;
  }
  interior_rms = std::sqrt(interior_rms / cnt);
  EXPECT_LT(interior_rms, 0.2);
  // lid drives a recirculation: u below lid positive, deeper negative
  EXPECT_GT(d.evaluate(ns.u(), 0.5, 0.95), 0.1);
  EXPECT_LT(d.evaluate(ns.u(), 0.5, 0.3), 0.05);
}

TEST(Ns2d, ExplicitBcValuesOverrideFunctions) {
  auto m = mesh::QuadMesh::channel(1.0, 1.0, 2, 2);
  sem::Discretization d(m, 3);
  sem::NavierStokes2D::Params prm;
  prm.dt = 1e-3;
  sem::NavierStokes2D ns(d, prm);
  const auto& inlet = d.boundary_nodes(mesh::kInlet);
  std::vector<double> uvals(inlet.size(), 0.7), vvals(inlet.size(), 0.0);
  ns.set_velocity_bc_values(mesh::kInlet, uvals, vvals);
  ns.set_natural_bc(mesh::kOutlet);
  ns.step();
  for (std::size_t g : inlet) {
    if (d.node_y(g) == 0.0 || d.node_y(g) == 1.0) continue;  // wall corners
    EXPECT_NEAR(ns.u()[g], 0.7, 1e-9);
  }
}

TEST(Ns2d, StepCountsIterations) {
  auto m = mesh::QuadMesh::channel(1.0, 1.0, 2, 2);
  sem::Discretization d(m, 4);
  sem::NavierStokes2D ns(d, {});
  ns.set_velocity_bc(mesh::kInlet, [](double, double, double) { return 1.0; },
                     [](double, double, double) { return 0.0; });
  ns.set_natural_bc(mesh::kOutlet);
  EXPECT_GT(ns.step(), 0u);
  EXPECT_DOUBLE_EQ(ns.time(), ns.dt());
}

}  // namespace

namespace {

double taylor_green_error(int time_order, double dt, int steps) {
  const double nu = 0.02;
  auto m = mesh::QuadMesh::lid_cavity(4);
  sem::Discretization d(m, 7);
  sem::NavierStokes2D::Params prm;
  prm.nu = nu;
  prm.dt = dt;
  prm.time_order = time_order;
  prm.pressure_dirichlet_tags = {};
  sem::NavierStokes2D ns(d, prm);
  auto F = [nu](double t) { return std::exp(-2.0 * M_PI * M_PI * nu * t); };
  auto ue = [&](double x, double y, double t) {
    return std::sin(M_PI * x) * std::cos(M_PI * y) * F(t);
  };
  auto ve = [&](double x, double y, double t) {
    return -std::cos(M_PI * x) * std::sin(M_PI * y) * F(t);
  };
  ns.set_velocity_bc(mesh::kWall, ue, ve);
  ns.set_velocity_bc(mesh::kInlet, ue, ve);
  ns.set_initial(ue, ve);
  for (int s = 0; s < steps; ++s) ns.step();
  const double T = ns.time();
  double max_err = 0.0;
  for (std::size_t g = 0; g < d.num_nodes(); ++g)
    max_err = std::max(max_err, std::fabs(ns.u()[g] - ue(d.node_x(g), d.node_y(g), T)));
  return max_err;
}

TEST(Ns2d, SecondOrderBeatsFirstOrder) {
  const double e1 = taylor_green_error(1, 2e-3, 100);
  const double e2 = taylor_green_error(2, 2e-3, 100);
  EXPECT_LT(e2, 0.2 * e1);
}

TEST(Ns2d, SecondOrderTemporalConvergence) {
  // The order-2 scheme's asymptotic rate is limited by the pressure-Neumann
  // boundary layer of the (non-rotational) incremental projection, but it
  // must (a) keep converging under dt-refinement and (b) sit an order of
  // magnitude below the order-1 error at equal dt.
  const double e2a = taylor_green_error(2, 4e-3, 50);
  const double e2b = taylor_green_error(2, 2e-3, 100);
  EXPECT_GT(e2a / e2b, 1.5);
  const double e1b = taylor_green_error(1, 2e-3, 100);
  EXPECT_LT(e2b, 0.2 * e1b);
  const double e1a = taylor_green_error(1, 4e-3, 50);
  EXPECT_GT(e1a / e1b, 1.5);
  EXPECT_LT(e1a / e1b, 3.0);
}

TEST(Ns2d, SecondOrderStableOnChannel) {
  auto m = mesh::QuadMesh::channel(2.0, 1.0, 4, 2);
  sem::Discretization d(m, 4);
  sem::NavierStokes2D::Params prm;
  prm.nu = 0.05;
  prm.dt = 2e-3;
  prm.time_order = 2;
  sem::NavierStokes2D ns(d, prm);
  ns.set_velocity_bc(mesh::kInlet, [](double, double y, double) { return 4.0 * y * (1.0 - y); },
                     [](double, double, double) { return 0.0; });
  ns.set_natural_bc(mesh::kOutlet);
  for (int s = 0; s < 300; ++s) ns.step();
  EXPECT_NEAR(d.evaluate(ns.u(), 1.0, 0.5), 1.0, 0.05);
  EXPECT_LT(ns.max_speed(), 2.0);
}

}  // namespace

namespace {

TEST(Ops, WallShearStressPoiseuille) {
  // u = 4 Umax y (H - y) / H^2: tau at the bottom wall = nu du/dy|_{y=0}
  // = 4 nu Umax / H, at the top wall the same magnitude (inward normal).
  const double H = 1.0, Umax = 1.0, nu = 0.05;
  auto m = mesh::QuadMesh::channel(2.0, H, 4, 2);
  sem::Discretization d(m, 5);
  sem::Operators ops(d);
  la::Vector u(d.num_nodes()), v(d.num_nodes(), 0.0);
  for (std::size_t g = 0; g < d.num_nodes(); ++g) {
    const double y = d.node_y(g);
    u[g] = 4.0 * Umax * y * (H - y) / (H * H);
  }
  auto tau = ops.wall_shear_stress(u, v, nu, mesh::kWall);
  const auto& nodes = d.boundary_nodes(mesh::kWall);
  ASSERT_EQ(tau.size(), nodes.size());
  const double expected = 4.0 * nu * Umax / H;
  for (std::size_t k = 0; k < nodes.size(); ++k) {
    const double y = d.node_y(nodes[k]);
    if (y != 0.0 && y != H) continue;  // only the horizontal walls
    const double x = d.node_x(nodes[k]);
    if (x == 0.0 || x == 2.0) continue;  // corners shared with inlet/outlet
    EXPECT_NEAR(tau[k], expected, 1e-8) << "y=" << y;
  }
}

TEST(Ops, WallShearStressZeroForUniformFlow) {
  auto m = mesh::QuadMesh::channel(2.0, 1.0, 4, 2);
  sem::Discretization d(m, 4);
  sem::Operators ops(d);
  la::Vector u(d.num_nodes(), 1.0), v(d.num_nodes(), 0.0);
  auto tau = ops.wall_shear_stress(u, v, 0.1, mesh::kWall);
  for (double t : tau) EXPECT_NEAR(t, 0.0, 1e-12);
}

}  // namespace

namespace {

TEST(Helmholtz, BlockSchwarzSolvesCorrectly) {
  auto m = mesh::QuadMesh::lid_cavity(3);
  sem::Discretization d(m, 6);
  sem::Operators ops(d);
  const double lambda = 2.0, nu = 0.5;
  sem::HelmholtzSolver hs(ops, lambda, nu, {mesh::kWall, mesh::kInlet},
                          sem::PreconditionerKind::BlockSchwarz);
  hs.options().rtol = 1e-12;
  auto exact = [](double x, double y) { return std::sin(M_PI * x) * std::sin(M_PI * y); };
  la::Vector f(d.num_nodes());
  for (std::size_t g = 0; g < d.num_nodes(); ++g)
    f[g] = (lambda + 2.0 * nu * M_PI * M_PI) * exact(d.node_x(g), d.node_y(g));
  la::Vector u;
  auto res = hs.solve(f, [&](double x, double y) { return exact(x, y); }, u);
  EXPECT_TRUE(res.converged);
  double err = 0.0;
  for (std::size_t g = 0; g < d.num_nodes(); ++g)
    err = std::max(err, std::fabs(u[g] - exact(d.node_x(g), d.node_y(g))));
  EXPECT_LT(err, 1e-6);
}

TEST(Helmholtz, BlockSchwarzBeatsJacobiAtHighOrder) {
  // The low-energy-style preconditioner's job: kill the high-energy
  // intra-element modes that blow up the diagonal-preconditioned condition
  // number as P grows.
  auto m = mesh::QuadMesh::lid_cavity(3);
  sem::Discretization d(m, 9);
  sem::Operators ops(d);
  la::Vector f(d.num_nodes());
  for (std::size_t g = 0; g < d.num_nodes(); ++g)
    f[g] = std::sin(M_PI * d.node_x(g)) * std::sin(2.0 * M_PI * d.node_y(g));
  la::Vector u;

  sem::HelmholtzSolver jac(ops, 1.0, 1.0, {mesh::kWall, mesh::kInlet},
                           sem::PreconditionerKind::Jacobi);
  jac.set_projection_depth(0);
  jac.options().rtol = 1e-10;
  auto rj = jac.solve(f, [](double, double) { return 0.0; }, u);

  sem::HelmholtzSolver bs(ops, 1.0, 1.0, {mesh::kWall, mesh::kInlet},
                          sem::PreconditionerKind::BlockSchwarz);
  bs.set_projection_depth(0);
  bs.options().rtol = 1e-10;
  auto rb = bs.solve(f, [](double, double) { return 0.0; }, u);

  EXPECT_TRUE(rj.converged);
  EXPECT_TRUE(rb.converged);
  EXPECT_LT(rb.iterations, rj.iterations) << "jacobi=" << rj.iterations
                                          << " schwarz=" << rb.iterations;
}

// ---- fast path vs retained reference kernels --------------------------

la::Vector wavy2d(const sem::Discretization& d, double kx, double ky) {
  la::Vector f(d.num_nodes());
  for (std::size_t g = 0; g < d.num_nodes(); ++g)
    f[g] = std::sin(kx * d.node_x(g) + 0.2) * std::cos(ky * d.node_y(g) + 0.1);
  return f;
}

class OpsEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(OpsEquivalence, StiffnessAndHelmholtzMatchReference) {
  const int P = GetParam();
  auto m = mesh::QuadMesh::channel(2.0, 1.0, 3, 2);
  sem::Discretization d(m, P);
  sem::Operators ops(d);
  const auto u = wavy2d(d, 2.0, 3.0);
  la::Vector yf, yr;
  ops.apply_stiffness(u, yf);
  ops.apply_stiffness_reference(u, yr);
  double scale = 0.0;
  for (std::size_t g = 0; g < yr.size(); ++g) scale = std::max(scale, std::fabs(yr[g]));
  for (std::size_t g = 0; g < yr.size(); ++g)
    EXPECT_NEAR(yf[g], yr[g], 1e-12 * (1.0 + scale)) << "P=" << P;

  ops.apply_helmholtz(3.1, 0.45, u, yf);
  ops.apply_helmholtz_reference(3.1, 0.45, u, yr);
  scale = 0.0;
  for (std::size_t g = 0; g < yr.size(); ++g) scale = std::max(scale, std::fabs(yr[g]));
  for (std::size_t g = 0; g < yr.size(); ++g)
    EXPECT_NEAR(yf[g], yr[g], 1e-12 * (1.0 + scale)) << "P=" << P;
}

TEST_P(OpsEquivalence, MaskedMeshMatchesReference) {
  // a masked (non-rectangular) mesh exercises the irregular gather/scatter
  // table; the Dirichlet-masked operator mirrors the solver's CG lambda
  const int P = GetParam();
  auto m = mesh::QuadMesh::channel_with_cavity(10.0, 1.0, 4.0, 6.0, 1.0, 10, 2);
  sem::Discretization d(m, P);
  sem::Operators ops(d);
  std::vector<char> mask(d.num_nodes(), 0);
  for (std::size_t g : d.boundary_nodes(mesh::kWall)) mask[g] = 1;
  const auto u = wavy2d(d, 1.3, 2.1);
  auto masked_apply = [&](const la::Vector& in, la::Vector& out, bool ref) {
    la::Vector t = in;
    for (std::size_t g = 0; g < t.size(); ++g)
      if (mask[g]) t[g] = 0.0;
    if (ref)
      ops.apply_helmholtz_reference(1.5, 0.7, t, out);
    else
      ops.apply_helmholtz(1.5, 0.7, t, out);
    for (std::size_t g = 0; g < t.size(); ++g)
      if (mask[g]) out[g] = in[g];
  };
  la::Vector yf, yr;
  masked_apply(u, yf, false);
  masked_apply(u, yr, true);
  double scale = 0.0;
  for (std::size_t g = 0; g < yr.size(); ++g) scale = std::max(scale, std::fabs(yr[g]));
  for (std::size_t g = 0; g < yr.size(); ++g)
    EXPECT_NEAR(yf[g], yr[g], 1e-12 * (1.0 + scale)) << "P=" << P;
}

TEST_P(OpsEquivalence, GradientMatchesReference) {
  const int P = GetParam();
  auto m = mesh::QuadMesh::channel(2.0, 1.0, 4, 2);
  sem::Discretization d(m, P);
  sem::Operators ops(d);
  const auto u = wavy2d(d, 1.9, 1.2);
  la::Vector fx, fy, rx, ry;
  ops.gradient(u, fx, fy);
  ops.gradient_reference(u, rx, ry);
  for (std::size_t g = 0; g < rx.size(); ++g) {
    EXPECT_NEAR(fx[g], rx[g], 1e-10 * (1.0 + std::fabs(rx[g]))) << "P=" << P;
    EXPECT_NEAR(fy[g], ry[g], 1e-10 * (1.0 + std::fabs(ry[g])));
  }
}

INSTANTIATE_TEST_SUITE_P(Orders, OpsEquivalence, ::testing::Values(3, 4, 5, 7, 9, 11));

}  // namespace
