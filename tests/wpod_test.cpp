// Tests for window POD: exact reconstruction, mode orthonormality,
// eigenspectrum structure on signal+noise data, adaptive mean/fluctuation
// split, and the accuracy gain over standard averaging (the Fig. 7 claim).

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "la/stats.hpp"
#include "wpod/wpod.hpp"

namespace {

std::mt19937 rng(77);

/// Synthetic "atomistic" snapshots: a smooth, slowly evolving profile plus
/// iid thermal noise of scale sigma.
std::vector<la::Vector> make_snapshots(std::size_t nt, std::size_t nx, double sigma,
                                       double drift = 0.3) {
  std::normal_distribution<double> noise(0.0, sigma);
  std::vector<la::Vector> snaps;
  for (std::size_t t = 0; t < nt; ++t) {
    la::Vector u(nx);
    const double amp = 1.0 + drift * std::sin(2.0 * M_PI * t / nt);
    for (std::size_t i = 0; i < nx; ++i) {
      const double x = static_cast<double>(i) / (nx - 1);
      u[i] = amp * 4.0 * x * (1.0 - x) + noise(rng);
    }
    snaps.push_back(std::move(u));
  }
  return snaps;
}

la::Vector truth_at(std::size_t t, std::size_t nt, std::size_t nx, double drift = 0.3) {
  la::Vector u(nx);
  const double amp = 1.0 + drift * std::sin(2.0 * M_PI * t / nt);
  for (std::size_t i = 0; i < nx; ++i) {
    const double x = static_cast<double>(i) / (nx - 1);
    u[i] = amp * 4.0 * x * (1.0 - x);
  }
  return u;
}

double linf(const la::Vector& a, const la::Vector& b) {
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) m = std::max(m, std::fabs(a[i] - b[i]));
  return m;
}

TEST(Wpod, FullModeReconstructionIsExact) {
  auto snaps = make_snapshots(12, 40, 0.05);
  auto r = wpod::analyze(snaps);
  // reconstruct each snapshot with ALL modes
  for (std::size_t t = 0; t < snaps.size(); ++t) {
    la::Vector rec(40, 0.0);
    for (std::size_t k = 0; k < r.spatial_modes.size(); ++k)
      for (std::size_t i = 0; i < 40; ++i) rec[i] += r.temporal(t, k) * r.spatial_modes[k][i];
    EXPECT_LT(linf(rec, snaps[t]), 1e-8);
  }
}

TEST(Wpod, SpatialModesOrthonormal) {
  auto snaps = make_snapshots(10, 64, 0.2);
  auto r = wpod::analyze(snaps);
  for (std::size_t a = 0; a < r.spatial_modes.size(); ++a)
    for (std::size_t b = a; b < r.spatial_modes.size(); ++b) {
      if (r.eigenvalues[a] < 1e-12 || r.eigenvalues[b] < 1e-12) continue;
      double dot = 0.0;
      for (std::size_t i = 0; i < 64; ++i) dot += r.spatial_modes[a][i] * r.spatial_modes[b][i];
      EXPECT_NEAR(dot, a == b ? 1.0 : 0.0, 1e-8);
    }
}

TEST(Wpod, EigenvaluesDescendAndSignalDominates) {
  auto snaps = make_snapshots(20, 128, 0.1);
  auto r = wpod::analyze(snaps);
  for (std::size_t k = 1; k < r.eigenvalues.size(); ++k)
    EXPECT_LE(r.eigenvalues[k], r.eigenvalues[k - 1] + 1e-12);
  // signal modes tower over the thermal plateau
  EXPECT_GT(r.eigenvalues[0], 100.0 * r.noise_floor);
  // the adaptive split finds a small number of mean modes (profile + drift)
  EXPECT_GE(r.k_mean, 1u);
  EXPECT_LE(r.k_mean, 4u);
}

TEST(Wpod, MeanBeatsStandardAverageOnDriftingSignal) {
  // With a drifting mean, the plain window average smears the drift while
  // the WPOD mean tracks it: WPOD error must be substantially lower.
  const std::size_t nt = 32, nx = 96;
  const double sigma = 0.25;
  auto snaps = make_snapshots(nt, nx, sigma);
  auto r = wpod::analyze(snaps);
  const auto avg = wpod::standard_average(snaps);

  double err_wpod = 0.0, err_avg = 0.0;
  for (std::size_t t = 0; t < nt; ++t) {
    const auto truth = truth_at(t, nt, nx);
    err_wpod += linf(r.mean_at(t), truth);
    err_avg += linf(avg, truth);
  }
  EXPECT_LT(err_wpod, 0.6 * err_avg);
}

TEST(Wpod, FluctuationsLookGaussianWithInjectedSigma) {
  const std::size_t nt = 32, nx = 256;
  const double sigma = 1.03;  // the Fig. 7 value
  auto snaps = make_snapshots(nt, nx, sigma, 0.2);
  auto r = wpod::analyze(snaps);
  std::vector<double> fluct;
  for (std::size_t t = 0; t < nt; ++t) {
    auto f = r.fluctuation_at(t, snaps[t]);
    fluct.insert(fluct.end(), f.begin(), f.end());
  }
  auto m = la::stats::moments(fluct);
  EXPECT_NEAR(m.mean, 0.0, 0.05);
  EXPECT_NEAR(m.stddev, sigma, 0.08);
  auto h = la::stats::histogram(fluct, -5.0 * sigma, 5.0 * sigma, 60);
  EXPECT_LT(la::stats::gaussian_l1_distance(h, m.mean, m.stddev), 0.08);
}

TEST(Wpod, MaxMeanModesCapRespected) {
  auto snaps = make_snapshots(16, 64, 0.01);  // nearly clean: many "signal" modes
  wpod::WpodOptions opt;
  opt.max_mean_modes = 2;
  auto r = wpod::analyze(snaps, opt);
  EXPECT_LE(r.k_mean, 2u);
}

TEST(Wpod, RejectsDegenerateInput) {
  EXPECT_THROW(wpod::analyze({}), std::invalid_argument);
  EXPECT_THROW(wpod::analyze({la::Vector(4, 1.0)}), std::invalid_argument);
  std::vector<la::Vector> ragged;
  ragged.push_back(la::Vector(4, 1.0));
  ragged.push_back(la::Vector(5, 1.0));
  EXPECT_THROW(wpod::analyze(ragged), std::invalid_argument);
}

TEST(Wpod, StandardAverageIsPerBinMean) {
  std::vector<la::Vector> snaps;
  snaps.push_back(la::Vector(3, 1.0));
  snaps.push_back(la::Vector(3, 3.0));
  auto avg = wpod::standard_average(snaps);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_DOUBLE_EQ(avg[i], 2.0);
}

}  // namespace

namespace {

TEST(StreamingWpod, EmitsOnStrideAndWindowFill) {
  wpod::StreamingWpod::Options opt;
  opt.initial_window = 8;
  opt.min_window = 4;
  opt.max_window = 16;
  opt.stride = 4;
  wpod::StreamingWpod sw(opt);
  std::mt19937 gen(5);
  std::normal_distribution<double> nd(0.0, 0.1);
  int emitted = 0;
  for (int t = 0; t < 32; ++t) {
    la::Vector snap(16);
    for (auto& v : snap) v = 1.0 + nd(gen);
    if (sw.push(std::move(snap))) ++emitted;
  }
  // first emission once 8 snapshots are in AND stride satisfied, then every 4
  EXPECT_GE(emitted, 5);
  EXPECT_EQ(sw.analyses_done(), static_cast<std::size_t>(emitted));
}

TEST(StreamingWpod, GrowsWindowOnStationaryData) {
  wpod::StreamingWpod::Options opt;
  opt.initial_window = 8;
  opt.min_window = 8;
  opt.max_window = 32;
  opt.stride = 4;
  opt.wpod.max_mean_modes = 0;
  wpod::StreamingWpod sw(opt);
  std::mt19937 gen(7);
  std::normal_distribution<double> nd(0.0, 0.05);
  for (int t = 0; t < 80; ++t) {
    la::Vector snap(64);
    for (std::size_t i = 0; i < 64; ++i)
      snap[i] = 3.0 * std::sin(0.1 * static_cast<double>(i)) + nd(gen);
    sw.push(std::move(snap));
  }
  // stationary signal: one dominant mode -> the analyzer should have grown
  EXPECT_GT(sw.window(), 8u);
}

TEST(StreamingWpod, ShrinksWindowOnNonStationaryData) {
  wpod::StreamingWpod::Options opt;
  opt.initial_window = 32;
  opt.min_window = 8;
  opt.max_window = 32;
  opt.stride = 8;
  wpod::StreamingWpod sw(opt);
  std::mt19937 gen(9);
  std::normal_distribution<double> nd(0.0, 0.02);
  for (int t = 0; t < 80; ++t) {
    la::Vector snap(64);
    // rapidly changing structure: every snapshot has a different dominant
    // spatial pattern -> many correlated modes per window
    for (std::size_t i = 0; i < 64; ++i)
      snap[i] = std::sin(0.3 * static_cast<double>(i) * (1.0 + 0.15 * t)) + nd(gen);
    sw.push(std::move(snap));
  }
  EXPECT_LT(sw.window(), 32u);
}

TEST(StreamingWpod, RejectsBadOptions) {
  wpod::StreamingWpod::Options opt;
  opt.stride = 0;
  EXPECT_THROW(wpod::StreamingWpod{opt}, std::invalid_argument);
}

}  // namespace
