// Tests for the modeled torus machine and its communication/compute cost
// model.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "machine/cost.hpp"
#include "machine/dragonfly.hpp"
#include "machine/fattree.hpp"
#include "machine/torus.hpp"

namespace {

machine::TorusSpec small_spec() {
  machine::TorusSpec s;
  s.nx = 4;
  s.ny = 4;
  s.nz = 4;
  s.cores_per_node = 4;
  return s;
}

TEST(Torus, CoordRoundTrip) {
  machine::Torus t(small_spec());
  for (int n = 0; n < t.spec().total_nodes(); ++n) {
    EXPECT_EQ(t.node_at(t.coords(n)), n);
  }
}

TEST(Torus, RankToNodeBlocked) {
  machine::Torus t(small_spec());
  EXPECT_EQ(t.node_of_rank(0), 0);
  EXPECT_EQ(t.node_of_rank(3), 0);
  EXPECT_EQ(t.node_of_rank(4), 1);
}

TEST(Torus, HopsUsesWraparound) {
  machine::Torus t(small_spec());
  const int a = t.node_at({0, 0, 0});
  const int b = t.node_at({3, 0, 0});
  EXPECT_EQ(t.hops(a, b), 1);  // wrap: 0 -> 3 is one hop backwards
  const int c = t.node_at({2, 2, 2});
  EXPECT_EQ(t.hops(a, c), 6);
}

TEST(Torus, RouteLengthEqualsHops) {
  machine::Torus t(small_spec());
  const int a = t.node_at({0, 1, 2});
  const int b = t.node_at({3, 3, 0});
  auto r = t.route(a, b, {0, 1, 2});
  EXPECT_EQ(static_cast<int>(r.size()), t.hops(a, b));
  // route starts at a
  EXPECT_EQ(r.front().node, a);
}

TEST(Torus, XyzRouteOrdersDimensions) {
  machine::Torus t(small_spec());
  const int a = t.node_at({0, 0, 0});
  const int b = t.node_at({1, 1, 0});
  auto r = t.route(a, b, {0, 1, 2});
  ASSERT_EQ(r.size(), 2u);
  EXPECT_EQ(r[0].dim, 0);
  EXPECT_EQ(r[1].dim, 1);
}

TEST(Torus, RackGrouping) {
  machine::Torus t(small_spec());
  // 2x1x1 racks: x<2 -> rack 0, else rack 1
  EXPECT_EQ(machine::rack_of_node(t, t.node_at({0, 3, 3}), 2, 1, 1), 0);
  EXPECT_EQ(machine::rack_of_node(t, t.node_at({2, 0, 0}), 2, 1, 1), 1);
  EXPECT_THROW(machine::rack_of_node(t, 0, 3, 1, 1), std::invalid_argument);
}

TEST(Cost, EmptyPhaseFree) {
  machine::Torus t(small_spec());
  auto c = machine::phase_cost(t, {});
  EXPECT_DOUBLE_EQ(c.total(), 0.0);
}

TEST(Cost, IntraNodeMessagesFree) {
  machine::Torus t(small_spec());
  // ranks 0 and 1 share node 0
  auto c = machine::phase_cost(t, {{0, 1, 1e6}});
  EXPECT_DOUBLE_EQ(c.total(), 0.0);
}

TEST(Cost, LongerRouteCostsMoreLatency) {
  machine::Torus t(small_spec());
  const int near_rank = 1 * t.spec().cores_per_node;      // node 1: 1 hop
  const int far_rank = t.node_at({2, 2, 2}) * t.spec().cores_per_node;
  auto near_c = machine::phase_cost(t, {{0, near_rank, 8.0}});
  auto far_c = machine::phase_cost(t, {{0, far_rank, 8.0}});
  EXPECT_GT(far_c.latency_time, near_c.latency_time);
}

TEST(Cost, ContentionGrowsLinkTime) {
  machine::Torus t(small_spec());
  // many senders all cross the same link 0 -> +x by construction:
  // node (0,0,0) sends to (1,0,0) k times from different ranks on node 0
  std::vector<machine::Message> one = {{0, 4, 1e6}};
  std::vector<machine::Message> four;
  for (int i = 0; i < 4; ++i) four.push_back({i, 4 + i % 4, 1e6});
  auto c1 = machine::phase_cost(t, one);
  auto c4 = machine::phase_cost(t, four);
  EXPECT_NEAR(c4.link_time, 4.0 * c1.link_time, 1e-12);
}

TEST(Cost, AdaptiveRoutingRelievesHotLink) {
  machine::Torus t(small_spec());
  // Two messages whose XYZ routes collide on the +x link out of node 0, but
  // whose minimal routes diverge under other dimension orders.
  const int cpn = t.spec().cores_per_node;
  std::vector<machine::Message> msgs = {
      {0, t.node_at({1, 1, 0}) * cpn, 1e6},
      {1, t.node_at({1, 0, 1}) * cpn, 1e6},
  };
  auto det = machine::phase_cost(t, msgs, machine::Routing::DeterministicXYZ);
  auto ada = machine::phase_cost(t, msgs, machine::Routing::Adaptive);
  EXPECT_LT(ada.link_time, det.link_time);
}

TEST(Cost, MultiDirectionInjectionBeatsNaive) {
  machine::Torus t(small_spec());
  const int cpn = t.spec().cores_per_node;
  // Node 0 sends to all six neighbours simultaneously.
  std::vector<machine::Message> msgs = {
      {0, t.node_at({1, 0, 0}) * cpn, 1e6}, {0, t.node_at({3, 0, 0}) * cpn, 1e6},
      {1, t.node_at({0, 1, 0}) * cpn, 1e6}, {1, t.node_at({0, 3, 0}) * cpn, 1e6},
      {2, t.node_at({0, 0, 1}) * cpn, 1e6}, {2, t.node_at({0, 0, 3}) * cpn, 1e6},
  };
  auto multi = machine::phase_cost(t, msgs, machine::Routing::DeterministicXYZ,
                                   machine::InjectionSchedule::MultiDirection);
  auto naive = machine::phase_cost(t, msgs, machine::Routing::DeterministicXYZ,
                                   machine::InjectionSchedule::Naive);
  EXPECT_NEAR(naive.injection_time, 6.0 * multi.injection_time, 1e-9);
}

TEST(Cost, ComputeTimeScalesWithFlops) {
  machine::ComputeSpec cs;
  EXPECT_DOUBLE_EQ(machine::compute_time(cs, 0.0, 0.0), 0.0);
  const double t1 = machine::compute_time(cs, 1e9, 1e6);
  const double t2 = machine::compute_time(cs, 2e9, 1e6);
  EXPECT_NEAR(t2, 2.0 * t1, 1e-15);
}

TEST(Cost, CacheEffectGivesSuperlinearStrongScaling) {
  // Halving the per-core working set below the cache threshold must more
  // than halve per-core time when the original set spilled out of cache —
  // the Table 5 superlinearity mechanism.
  machine::ComputeSpec cs;
  cs.cache_bytes = 1e6;
  cs.out_of_cache_slowdown = 3.0;
  const double big = machine::compute_time(cs, 1e9, 4e6);    // mostly uncached
  const double half = machine::compute_time(cs, 0.5e9, 2e6); // less uncached
  EXPECT_GT(big / half, 2.0);
}

TEST(Cost, ReplayStepCombinesPhases) {
  machine::Torus t(small_spec());
  machine::ComputeSpec cs;
  machine::StepSchedule s;
  s.flops = {1e9, 2e9};
  s.working_set = {1e5, 1e5};
  s.phases.push_back({{0, 4, 1e6}});
  s.phases.push_back({{4, 0, 1e6}});
  auto r = machine::replay_step(t, cs, s);
  EXPECT_GT(r.compute_time, 0.0);
  EXPECT_GT(r.comm_time, 0.0);
  // compute time is the max over ranks
  EXPECT_NEAR(r.compute_time, machine::compute_time(cs, 2e9, 1e5), 1e-15);
  EXPECT_DOUBLE_EQ(r.total(), r.compute_time + r.comm_time);
}

}  // namespace

namespace {

TEST(Cost, CollectiveGrowsLogarithmically) {
  machine::TorusSpec spec;
  spec.nx = 8;
  spec.ny = 8;
  spec.nz = 8;
  machine::Torus t(spec);
  auto ranks_of = [&](int n) {
    std::vector<int> r(n);
    for (int i = 0; i < n; ++i) r[i] = i * t.spec().cores_per_node;
    return r;
  };
  const double c8 = machine::collective_cost(t, ranks_of(8), 64.0,
                                             machine::CollectiveKind::Allreduce);
  const double c64 = machine::collective_cost(t, ranks_of(64), 64.0,
                                              machine::CollectiveKind::Allreduce);
  const double c512 = machine::collective_cost(t, ranks_of(512), 64.0,
                                               machine::CollectiveKind::Allreduce);
  EXPECT_GT(c64, c8);
  EXPECT_GT(c512, c64);
  // tree: doubling participants adds one level, far from linear growth
  EXPECT_LT(c512, 4.0 * c8);
}

TEST(Cost, BcastHalfOfAllreduce) {
  machine::TorusSpec spec;
  machine::Torus t(spec);
  std::vector<int> ranks = {0, 4, 8, 12, 16, 20, 24, 28};
  const double ar = machine::collective_cost(t, ranks, 1e3, machine::CollectiveKind::Allreduce);
  const double bc = machine::collective_cost(t, ranks, 1e3, machine::CollectiveKind::Bcast);
  EXPECT_NEAR(ar, 2.0 * bc, 1e-12);
}

TEST(Cost, CollectiveTrivialCases) {
  machine::Torus t(machine::TorusSpec{});
  EXPECT_DOUBLE_EQ(machine::collective_cost(t, {}, 8.0, machine::CollectiveKind::Bcast), 0.0);
  EXPECT_DOUBLE_EQ(machine::collective_cost(t, {3}, 8.0, machine::CollectiveKind::Bcast), 0.0);
}

// --- pluggable topologies ----------------------------------------------------

machine::FatTreeSpec tiny_fattree() {
  machine::FatTreeSpec s;
  s.leaves = 2;
  s.hosts_per_leaf = 2;
  s.uplinks = 2;
  s.cores_per_node = 1;  // ranks == nodes
  return s;
}

TEST(FatTree, HandComputedHops) {
  machine::FatTree ft(tiny_fattree());
  // nodes 0,1 on leaf 0; 2,3 on leaf 1
  EXPECT_EQ(ft.hops(0, 0), 0);
  EXPECT_EQ(ft.hops(0, 1), 2);  // host-leaf-host
  EXPECT_EQ(ft.hops(0, 2), 4);  // host-leaf-spine-leaf-host
  EXPECT_EQ(ft.total_nodes(), 4);
  EXPECT_EQ(std::string(ft.kind()), "fattree");
}

TEST(FatTree, StaticEcmpCollisionVsAdaptiveSpread) {
  machine::FatTree ft(tiny_fattree());
  // Flows 0->2 and 1->3 both hash to spine (0+1)%2 = 1 under deterministic
  // routing: the shared trunk carries 2x the message size. Adaptive splits
  // each flow over both spines, so no link exceeds one message size.
  const double bytes = 1e6;
  std::vector<machine::Message> msgs = {{0, 2, bytes}, {1, 3, bytes}};
  const auto det = machine::phase_cost(ft, msgs, machine::Routing::DeterministicXYZ);
  const auto ada = machine::phase_cost(ft, msgs, machine::Routing::Adaptive);
  EXPECT_NEAR(det.link_time, 2.0 * bytes / ft.link_bandwidth(), 1e-15);
  EXPECT_NEAR(ada.link_time, bytes / ft.link_bandwidth(), 1e-15);
}

TEST(FatTree, SingleNicMakesInjectionScheduleIrrelevant) {
  machine::FatTree ft(tiny_fattree());
  // node 0 sends to two different destinations: with one NIC both loads
  // share the host uplink, so the multi-direction schedule buys nothing
  std::vector<machine::Message> msgs = {{0, 2, 1e6}, {0, 3, 1e6}};
  const auto multi = machine::phase_cost(ft, msgs, machine::Routing::DeterministicXYZ,
                                         machine::InjectionSchedule::MultiDirection);
  const auto naive = machine::phase_cost(ft, msgs, machine::Routing::DeterministicXYZ,
                                         machine::InjectionSchedule::Naive);
  EXPECT_DOUBLE_EQ(multi.injection_time, naive.injection_time);
  EXPECT_NEAR(multi.injection_time, 2e6 / ft.link_bandwidth(), 1e-15);
}

machine::DragonflySpec tiny_dragonfly() {
  machine::DragonflySpec s;
  s.groups = 2;
  s.routers_per_group = 2;
  s.hosts_per_router = 1;
  s.global_links = 2;
  s.cores_per_node = 1;
  return s;
}

TEST(Dragonfly, HandComputedHops) {
  machine::Dragonfly df(tiny_dragonfly());
  // node -> (group, local router): 0->(0,0) 1->(0,1) 2->(1,0) 3->(1,1)
  EXPECT_EQ(df.hops(0, 0), 0);
  EXPECT_EQ(df.hops(0, 1), 3);  // same group: host, local, host
  // cross group via global link 0, which attaches at local router 1 in group
  // 0 and local router 0 in group 1:
  EXPECT_EQ(df.hops(0, 2), 4);  // extra local hop at the source side
  EXPECT_EQ(df.hops(0, 3), 5);  // extra local hop at both sides
  EXPECT_EQ(df.hops(1, 2), 3);  // both endpoints are attachment routers
}

TEST(Dragonfly, DeterministicGlobalLinkContentionVsAdaptive) {
  machine::Dragonfly df(tiny_dragonfly());
  // Both cross-group flows funnel onto global link (0,1,idx=0) under
  // deterministic routing; adaptive spreads each over the 2 parallel links.
  const double bytes = 1e6;
  std::vector<machine::Message> msgs = {{0, 2, bytes}, {1, 3, bytes}};
  const auto det = machine::phase_cost(df, msgs, machine::Routing::DeterministicXYZ);
  const auto ada = machine::phase_cost(df, msgs, machine::Routing::Adaptive);
  EXPECT_NEAR(det.link_time, 2.0 * bytes / df.link_bandwidth(), 1e-15);
  EXPECT_NEAR(ada.link_time, bytes / df.link_bandwidth(), 1e-15);
}

TEST(Dragonfly, RouteLengthMatchesHops) {
  machine::Dragonfly df(tiny_dragonfly());
  std::vector<std::int64_t> keys;
  for (int a = 0; a < df.total_nodes(); ++a)
    for (int b = 0; b < df.total_nodes(); ++b) {
      if (a == b) continue;
      keys.clear();
      df.append_route(a, b, machine::Routing::DeterministicXYZ, 0, keys);
      EXPECT_EQ(static_cast<int>(keys.size()), df.hops(a, b)) << a << "->" << b;
    }
}

TEST(Topology, CostModelIsTopologyGeneric) {
  // The same schedule replays through the Topology interface on all three
  // networks; collectives and replay_step accept any of them.
  std::vector<std::unique_ptr<machine::Topology>> topos;
  topos.push_back(std::make_unique<machine::Torus>(small_spec()));
  topos.push_back(std::make_unique<machine::FatTree>(tiny_fattree()));
  topos.push_back(std::make_unique<machine::Dragonfly>(tiny_dragonfly()));
  for (const auto& topo : topos) {
    const int cpn = topo->cores_per_node();  // one participant per node
    const double c = machine::collective_cost(*topo, {0, cpn, 2 * cpn, 3 * cpn}, 1e3,
                                              machine::CollectiveKind::Allreduce);
    EXPECT_GT(c, 0.0) << topo->kind();
    machine::StepSchedule s;
    s.flops = {1e6, 1e6};
    s.working_set = {1e4, 1e4};
    s.phases.push_back({{0, topo->cores_per_node(), 1e4}});
    const auto r = machine::replay_step(*topo, machine::ComputeSpec{}, s);
    EXPECT_GT(r.compute_time, 0.0) << topo->kind();
    EXPECT_GT(r.comm_time, 0.0) << topo->kind();
  }
}

}  // namespace
