// Tests for the modeled torus machine and its communication/compute cost
// model.

#include <gtest/gtest.h>

#include "machine/cost.hpp"
#include "machine/torus.hpp"

namespace {

machine::TorusSpec small_spec() {
  machine::TorusSpec s;
  s.nx = 4;
  s.ny = 4;
  s.nz = 4;
  s.cores_per_node = 4;
  return s;
}

TEST(Torus, CoordRoundTrip) {
  machine::Torus t(small_spec());
  for (int n = 0; n < t.spec().total_nodes(); ++n) {
    EXPECT_EQ(t.node_at(t.coords(n)), n);
  }
}

TEST(Torus, RankToNodeBlocked) {
  machine::Torus t(small_spec());
  EXPECT_EQ(t.node_of_rank(0), 0);
  EXPECT_EQ(t.node_of_rank(3), 0);
  EXPECT_EQ(t.node_of_rank(4), 1);
}

TEST(Torus, HopsUsesWraparound) {
  machine::Torus t(small_spec());
  const int a = t.node_at({0, 0, 0});
  const int b = t.node_at({3, 0, 0});
  EXPECT_EQ(t.hops(a, b), 1);  // wrap: 0 -> 3 is one hop backwards
  const int c = t.node_at({2, 2, 2});
  EXPECT_EQ(t.hops(a, c), 6);
}

TEST(Torus, RouteLengthEqualsHops) {
  machine::Torus t(small_spec());
  const int a = t.node_at({0, 1, 2});
  const int b = t.node_at({3, 3, 0});
  auto r = t.route(a, b, {0, 1, 2});
  EXPECT_EQ(static_cast<int>(r.size()), t.hops(a, b));
  // route starts at a
  EXPECT_EQ(r.front().node, a);
}

TEST(Torus, XyzRouteOrdersDimensions) {
  machine::Torus t(small_spec());
  const int a = t.node_at({0, 0, 0});
  const int b = t.node_at({1, 1, 0});
  auto r = t.route(a, b, {0, 1, 2});
  ASSERT_EQ(r.size(), 2u);
  EXPECT_EQ(r[0].dim, 0);
  EXPECT_EQ(r[1].dim, 1);
}

TEST(Torus, RackGrouping) {
  machine::Torus t(small_spec());
  // 2x1x1 racks: x<2 -> rack 0, else rack 1
  EXPECT_EQ(machine::rack_of_node(t, t.node_at({0, 3, 3}), 2, 1, 1), 0);
  EXPECT_EQ(machine::rack_of_node(t, t.node_at({2, 0, 0}), 2, 1, 1), 1);
  EXPECT_THROW(machine::rack_of_node(t, 0, 3, 1, 1), std::invalid_argument);
}

TEST(Cost, EmptyPhaseFree) {
  machine::Torus t(small_spec());
  auto c = machine::phase_cost(t, {});
  EXPECT_DOUBLE_EQ(c.total(), 0.0);
}

TEST(Cost, IntraNodeMessagesFree) {
  machine::Torus t(small_spec());
  // ranks 0 and 1 share node 0
  auto c = machine::phase_cost(t, {{0, 1, 1e6}});
  EXPECT_DOUBLE_EQ(c.total(), 0.0);
}

TEST(Cost, LongerRouteCostsMoreLatency) {
  machine::Torus t(small_spec());
  const int near_rank = 1 * t.spec().cores_per_node;      // node 1: 1 hop
  const int far_rank = t.node_at({2, 2, 2}) * t.spec().cores_per_node;
  auto near_c = machine::phase_cost(t, {{0, near_rank, 8.0}});
  auto far_c = machine::phase_cost(t, {{0, far_rank, 8.0}});
  EXPECT_GT(far_c.latency_time, near_c.latency_time);
}

TEST(Cost, ContentionGrowsLinkTime) {
  machine::Torus t(small_spec());
  // many senders all cross the same link 0 -> +x by construction:
  // node (0,0,0) sends to (1,0,0) k times from different ranks on node 0
  std::vector<machine::Message> one = {{0, 4, 1e6}};
  std::vector<machine::Message> four;
  for (int i = 0; i < 4; ++i) four.push_back({i, 4 + i % 4, 1e6});
  auto c1 = machine::phase_cost(t, one);
  auto c4 = machine::phase_cost(t, four);
  EXPECT_NEAR(c4.link_time, 4.0 * c1.link_time, 1e-12);
}

TEST(Cost, AdaptiveRoutingRelievesHotLink) {
  machine::Torus t(small_spec());
  // Two messages whose XYZ routes collide on the +x link out of node 0, but
  // whose minimal routes diverge under other dimension orders.
  const int cpn = t.spec().cores_per_node;
  std::vector<machine::Message> msgs = {
      {0, t.node_at({1, 1, 0}) * cpn, 1e6},
      {1, t.node_at({1, 0, 1}) * cpn, 1e6},
  };
  auto det = machine::phase_cost(t, msgs, machine::Routing::DeterministicXYZ);
  auto ada = machine::phase_cost(t, msgs, machine::Routing::Adaptive);
  EXPECT_LT(ada.link_time, det.link_time);
}

TEST(Cost, MultiDirectionInjectionBeatsNaive) {
  machine::Torus t(small_spec());
  const int cpn = t.spec().cores_per_node;
  // Node 0 sends to all six neighbours simultaneously.
  std::vector<machine::Message> msgs = {
      {0, t.node_at({1, 0, 0}) * cpn, 1e6}, {0, t.node_at({3, 0, 0}) * cpn, 1e6},
      {1, t.node_at({0, 1, 0}) * cpn, 1e6}, {1, t.node_at({0, 3, 0}) * cpn, 1e6},
      {2, t.node_at({0, 0, 1}) * cpn, 1e6}, {2, t.node_at({0, 0, 3}) * cpn, 1e6},
  };
  auto multi = machine::phase_cost(t, msgs, machine::Routing::DeterministicXYZ,
                                   machine::InjectionSchedule::MultiDirection);
  auto naive = machine::phase_cost(t, msgs, machine::Routing::DeterministicXYZ,
                                   machine::InjectionSchedule::Naive);
  EXPECT_NEAR(naive.injection_time, 6.0 * multi.injection_time, 1e-9);
}

TEST(Cost, ComputeTimeScalesWithFlops) {
  machine::ComputeSpec cs;
  EXPECT_DOUBLE_EQ(machine::compute_time(cs, 0.0, 0.0), 0.0);
  const double t1 = machine::compute_time(cs, 1e9, 1e6);
  const double t2 = machine::compute_time(cs, 2e9, 1e6);
  EXPECT_NEAR(t2, 2.0 * t1, 1e-15);
}

TEST(Cost, CacheEffectGivesSuperlinearStrongScaling) {
  // Halving the per-core working set below the cache threshold must more
  // than halve per-core time when the original set spilled out of cache —
  // the Table 5 superlinearity mechanism.
  machine::ComputeSpec cs;
  cs.cache_bytes = 1e6;
  cs.out_of_cache_slowdown = 3.0;
  const double big = machine::compute_time(cs, 1e9, 4e6);    // mostly uncached
  const double half = machine::compute_time(cs, 0.5e9, 2e6); // less uncached
  EXPECT_GT(big / half, 2.0);
}

TEST(Cost, ReplayStepCombinesPhases) {
  machine::Torus t(small_spec());
  machine::ComputeSpec cs;
  machine::StepSchedule s;
  s.flops = {1e9, 2e9};
  s.working_set = {1e5, 1e5};
  s.phases.push_back({{0, 4, 1e6}});
  s.phases.push_back({{4, 0, 1e6}});
  auto r = machine::replay_step(t, cs, s);
  EXPECT_GT(r.compute_time, 0.0);
  EXPECT_GT(r.comm_time, 0.0);
  // compute time is the max over ranks
  EXPECT_NEAR(r.compute_time, machine::compute_time(cs, 2e9, 1e5), 1e-15);
  EXPECT_DOUBLE_EQ(r.total(), r.compute_time + r.comm_time);
}

}  // namespace

namespace {

TEST(Cost, CollectiveGrowsLogarithmically) {
  machine::TorusSpec spec;
  spec.nx = 8;
  spec.ny = 8;
  spec.nz = 8;
  machine::Torus t(spec);
  auto ranks_of = [&](int n) {
    std::vector<int> r(n);
    for (int i = 0; i < n; ++i) r[i] = i * t.spec().cores_per_node;
    return r;
  };
  const double c8 = machine::collective_cost(t, ranks_of(8), 64.0,
                                             machine::CollectiveKind::Allreduce);
  const double c64 = machine::collective_cost(t, ranks_of(64), 64.0,
                                              machine::CollectiveKind::Allreduce);
  const double c512 = machine::collective_cost(t, ranks_of(512), 64.0,
                                               machine::CollectiveKind::Allreduce);
  EXPECT_GT(c64, c8);
  EXPECT_GT(c512, c64);
  // tree: doubling participants adds one level, far from linear growth
  EXPECT_LT(c512, 4.0 * c8);
}

TEST(Cost, BcastHalfOfAllreduce) {
  machine::TorusSpec spec;
  machine::Torus t(spec);
  std::vector<int> ranks = {0, 4, 8, 12, 16, 20, 24, 28};
  const double ar = machine::collective_cost(t, ranks, 1e3, machine::CollectiveKind::Allreduce);
  const double bc = machine::collective_cost(t, ranks, 1e3, machine::CollectiveKind::Bcast);
  EXPECT_NEAR(ar, 2.0 * bc, 1e-12);
}

TEST(Cost, CollectiveTrivialCases) {
  machine::Torus t(machine::TorusSpec{});
  EXPECT_DOUBLE_EQ(machine::collective_cost(t, {}, 8.0, machine::CollectiveKind::Bcast), 0.0);
  EXPECT_DOUBLE_EQ(machine::collective_cost(t, {3}, 8.0, machine::CollectiveKind::Bcast), 0.0);
}

}  // namespace
