// Tests for the fiber scheduling backend (src/xmp/sched/): the full xmp
// surface — p2p, collectives, hierarchical splits, abort propagation and
// checked mode — must behave identically when ranks are cooperatively
// scheduled fibers multiplexed over a small worker pool, including when
// thousands of ranks share two workers and when a fiber migrates between
// workers across yield points. Also covers SchedOptions env parsing and
// bitwise scheduler determinism with a single worker.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <functional>
#include <mutex>
#include <numeric>
#include <set>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "xmp/comm.hpp"

namespace {

xmp::SchedOptions fibers(int workers = 2, int stack_kb = 256) {
  xmp::SchedOptions o;
  o.mode = xmp::SchedMode::Fibers;
  o.workers = workers;
  o.stack_kb = stack_kb;
  return o;
}

void run_fibers(int nranks, const std::function<void(xmp::Comm&)>& fn,
                const xmp::SchedOptions& opts = fibers()) {
  xmp::run(nranks, fn, nullptr, xmp::CheckOptions{}, opts);
}

xmp::CheckOptions checked(int stall_ms = 120000) {
  xmp::CheckOptions o;
  o.enabled = true;
  o.poll_interval = std::chrono::milliseconds(5);
  o.stall_timeout = std::chrono::milliseconds(stall_ms);
  return o;
}

#define SKIP_UNLESS_CHECKED() \
  if (!xmp::checked_available()) GTEST_SKIP() << "built without XMP_CHECKED"

TEST(XmpSched, RankContextMatchesCommRank) {
  EXPECT_EQ(xmp::sched::current_rank(), -1);  // test main thread is no rank
  run_fibers(8, [](xmp::Comm& world) {
    EXPECT_EQ(xmp::sched::current_rank(), world.rank());
    world.barrier();
    EXPECT_EQ(xmp::sched::current_rank(), world.rank());  // survives a yield
  });
  EXPECT_EQ(xmp::sched::current_rank(), -1);
}

TEST(XmpSched, PingPongAndAnySource) {
  run_fibers(5, [](xmp::Comm& world) {
    if (world.rank() == 0) {
      std::set<int> seen;
      for (int i = 0; i < 4; ++i) {
        int src = -1;
        auto v = world.recv<int>(xmp::kAnySource, 3, &src);
        EXPECT_EQ(v[0], src * 10);
        seen.insert(src);
      }
      EXPECT_EQ(seen.size(), 4u);
      for (int r = 1; r < 5; ++r) world.send(r, 4, std::vector<int>{r});
    } else {
      world.send(0, 3, std::vector<int>{world.rank() * 10});
      auto v = world.recv<int>(0, 4);
      EXPECT_EQ(v[0], world.rank());
    }
  });
}

TEST(XmpSched, CollectiveSuiteMatchesExpectedValues) {
  const int n = 16;
  run_fibers(n, [&](xmp::Comm& world) {
    // allreduce
    EXPECT_DOUBLE_EQ(world.allreduce(double(world.rank()), xmp::Op::Sum), n * (n - 1) / 2.0);
    EXPECT_EQ(world.allreduce(std::int64_t(world.rank()), xmp::Op::Max), n - 1);
    // bcast
    std::vector<int> data;
    if (world.rank() == 3) data = {7, 8, 9};
    world.bcast(data, 3);
    ASSERT_EQ(data.size(), 3u);
    EXPECT_EQ(data[2], 9);
    // gatherv of rank-dependent lengths
    std::vector<int> mine(static_cast<std::size_t>(world.rank() % 3 + 1), world.rank());
    std::vector<std::size_t> counts;
    auto gathered = world.gatherv(std::span<const int>(mine), 0, &counts);
    if (world.rank() == 0) {
      ASSERT_EQ(counts.size(), static_cast<std::size_t>(n));
      std::size_t total = 0;
      for (int r = 0; r < n; ++r) total += static_cast<std::size_t>(r % 3 + 1);
      EXPECT_EQ(gathered.size(), total);
    } else {
      EXPECT_TRUE(gathered.empty());
    }
    // allgatherv
    auto all = world.allgatherv(std::span<const int>(mine));
    std::size_t total = 0;
    for (int r = 0; r < n; ++r) total += static_cast<std::size_t>(r % 3 + 1);
    EXPECT_EQ(all.size(), total);
    // scatterv
    std::vector<std::vector<int>> parts;
    if (world.rank() == 1) {
      parts.resize(static_cast<std::size_t>(n));
      for (int r = 0; r < n; ++r) parts[static_cast<std::size_t>(r)] = {r * 2};
    }
    auto part = world.scatterv(parts, 1);
    ASSERT_EQ(part.size(), 1u);
    EXPECT_EQ(part[0], world.rank() * 2);
    world.barrier();
  });
}

TEST(XmpSched, HierarchicalSplit) {
  run_fibers(12, [](xmp::Comm& world) {
    // L2: three groups of four; L3: evens/odds inside each group.
    xmp::Comm l2 = world.split(world.rank() / 4, world.rank());
    ASSERT_TRUE(l2.valid());
    EXPECT_EQ(l2.size(), 4);
    EXPECT_EQ(l2.rank(), world.rank() % 4);
    xmp::Comm l3 = l2.split(l2.rank() % 2, l2.rank());
    EXPECT_EQ(l3.size(), 2);
    const double s = l3.allreduce(double(world.rank()), xmp::Op::Sum);
    // partner in l3 is +/-2 world ranks away inside the same group of 4
    const int partner = world.rank() % 4 < 2 ? world.rank() + 2 : world.rank() - 2;
    EXPECT_DOUBLE_EQ(s, double(world.rank() + partner));
  });
}

TEST(XmpSched, ManyRanksFewWorkersBlockAndResume) {
  // 64 ranks on one worker: every blocking point must yield, or this hangs.
  run_fibers(
      64,
      [](xmp::Comm& world) {
        for (int i = 0; i < 5; ++i) {
          const int next = (world.rank() + 1) % world.size();
          const int prev = (world.rank() + world.size() - 1) % world.size();
          world.send(next, i, std::vector<int>{world.rank()});
          auto v = world.recv<int>(prev, i);
          EXPECT_EQ(v[0], prev);
          world.barrier();
        }
      },
      fibers(/*workers=*/1, /*stack_kb=*/128));
}

TEST(XmpSched, AbortPropagatesAcrossFibers) {
  EXPECT_THROW(run_fibers(8,
                          [](xmp::Comm& world) {
                            if (world.rank() == 3) throw std::logic_error("rank 3 failed");
                            // everyone else blocks on a message that never comes
                            (void)world.recv<int>(3, 1);
                          }),
               std::logic_error);
}

TEST(XmpSched, FourThousandRankAllreduceAndSplitSmoke) {
  const int n = 4096;
  std::atomic<int> ran{0};
  run_fibers(
      n,
      [&](xmp::Comm& world) {
        const double sum = world.allreduce(1.0, xmp::Op::Sum);
        EXPECT_DOUBLE_EQ(sum, double(n));
        xmp::Comm sub = world.split(world.rank() % 8, world.rank());
        EXPECT_EQ(sub.size(), n / 8);
        const std::int64_t c = sub.allreduce(std::int64_t{1}, xmp::Op::Sum);
        EXPECT_EQ(c, n / 8);
        world.barrier();
        ran.fetch_add(1, std::memory_order_relaxed);
      },
      fibers(/*workers=*/2, /*stack_kb=*/128));
  EXPECT_EQ(ran.load(), n);
}

// One worker => a single FIFO dispatch order => two identical runs must
// produce identical traffic, event for event (the property docs/SCHED.md
// promises for debugging runs).
TEST(XmpSched, SingleWorkerSchedulingIsDeterministic) {
  using Event = std::tuple<int, int, std::size_t, int, int>;
  auto collect = [] {
    std::vector<Event> events;
    std::mutex mu;
    xmp::TraceSink sink = [&](const xmp::TraceEvent& e) {
      std::lock_guard<std::mutex> g(mu);
      events.emplace_back(e.src_world, e.dst_world, e.bytes, e.tag, int(e.kind));
    };
    xmp::run(
        16,
        [](xmp::Comm& world) {
          // any-source recv makes nondeterministic schedules visible
          if (world.rank() == 0) {
            for (int i = 0; i < 15; ++i) (void)world.recv<int>(xmp::kAnySource, 1);
          } else {
            world.send(0, 1, std::vector<int>{world.rank()});
          }
          world.allreduce(1.0, xmp::Op::Sum);
          xmp::Comm sub = world.split(world.rank() % 2, world.rank());
          sub.allreduce(std::int64_t{1}, xmp::Op::Sum);
        },
        sink, xmp::CheckOptions{}, fibers(/*workers=*/1));
    return events;
  };
  const auto a = collect();
  const auto b = collect();
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

TEST(XmpSched, FromEnvParsesModeWorkersAndStack) {
  setenv("XMP_SCHED", "fibers", 1);
  setenv("XMP_SCHED_WORKERS", "3", 1);
  setenv("XMP_SCHED_STACK_KB", "512", 1);
  setenv("XMP_SCHED_GUARD", "0", 1);
  auto o = xmp::SchedOptions::from_env();
  EXPECT_EQ(o.mode, xmp::SchedMode::Fibers);
  EXPECT_EQ(o.workers, 3);
  EXPECT_EQ(o.stack_kb, 512);
  EXPECT_FALSE(o.guard_pages);

  setenv("XMP_SCHED", "threads", 1);
  unsetenv("XMP_SCHED_WORKERS");
  unsetenv("XMP_SCHED_STACK_KB");
  unsetenv("XMP_SCHED_GUARD");
  o = xmp::SchedOptions::from_env();
  EXPECT_EQ(o.mode, xmp::SchedMode::Threads);
  EXPECT_EQ(o.workers, 0);
  EXPECT_TRUE(o.guard_pages);

  setenv("XMP_SCHED", "bogus", 1);
  EXPECT_THROW(xmp::SchedOptions::from_env(), std::invalid_argument);
  unsetenv("XMP_SCHED");
}

// --- checked mode under the fiber backend -----------------------------------

TEST(XmpSched, CheckedFiberMigrationDoesNotTripAffinity) {
  SKIP_UNLESS_CHECKED();
  // Many barriers over two workers: fibers park and resume on whichever
  // worker is free, so a rank's OS thread changes constantly. The affinity
  // checker must key on the scheduler's rank context, not the thread.
  xmp::run(
      8,
      [](xmp::Comm& world) {
        xmp::Comm sub = world.split(world.rank() % 2, world.rank());
        for (int i = 0; i < 50; ++i) {
          world.barrier();
          sub.allreduce(1.0, xmp::Op::Sum);
        }
      },
      nullptr, checked(), fibers(/*workers=*/2));
}

TEST(XmpSched, CheckedMismatchCaughtUnderFibers) {
  SKIP_UNLESS_CHECKED();
  try {
    xmp::run(
        2,
        [](xmp::Comm& world) {
          if (world.rank() == 0)
            world.barrier();
          else
            world.allreduce(1.0, xmp::Op::Sum);
        },
        nullptr, checked(), fibers());
    FAIL() << "expected xmp::CheckError";
  } catch (const xmp::CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("collective mismatch"), std::string::npos) << e.what();
  }
}

TEST(XmpSched, CheckedDeadlockCaughtUnderFibers) {
  SKIP_UNLESS_CHECKED();
  try {
    xmp::run(
        2,
        [](xmp::Comm& world) {
          const int peer = 1 - world.rank();
          (void)world.recv<double>(peer, 7 + world.rank());
        },
        nullptr, checked(), fibers());
    FAIL() << "expected xmp::CheckError";
  } catch (const xmp::CheckError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("deadlock detected"), std::string::npos) << msg;
    EXPECT_NE(msg.find("wait-for cycle"), std::string::npos) << msg;
  }
}

TEST(XmpSched, CheckedHelperThreadStillCaughtUnderFibers) {
  SKIP_UNLESS_CHECKED();
  // A raw std::thread spawned inside a fiber rank has no rank context and
  // must still be rejected as an affinity violation.
  std::atomic<int> violations{0};
  xmp::run(
      2,
      [&](xmp::Comm& world) {
        if (world.rank() == 0) {
          std::thread helper([&] {
            try {
              world.send(1, 1, std::vector<int>{7});
            } catch (const xmp::CheckError& e) {
              if (std::string(e.what()).find("thread-affinity violation") != std::string::npos)
                violations.fetch_add(1);
            }
          });
          helper.join();
          world.send(1, 1, std::vector<int>{42});
        } else {
          auto v = world.recv<int>(0, 1);
          EXPECT_EQ(v[0], 42);
        }
      },
      nullptr, checked(), fibers());
  EXPECT_EQ(violations.load(), 1);
}

}  // namespace
