// Scenario subsystem tests: JSON parse/dump fixed point, strict schema
// diagnostics (unknown keys / type mismatches with a "$." path), bitwise
// re-emit of the checked-in scenario files, Runner-vs-handwritten STATE_DIGEST
// equivalence for the quickstart and coupled3d stacks, ensemble sweep
// expansion, warm-start-vs-cold physical equivalence, and one-variant-killed
// fault isolation.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "coupling/cdc.hpp"
#include "coupling/cdc3d.hpp"
#include "dpd/geometry.hpp"
#include "dpd/inflow.hpp"
#include "dpd/sampling.hpp"
#include "dpd/system.hpp"
#include "io/json_escape.hpp"
#include "mesh/quadmesh.hpp"
#include "resilience/fault.hpp"
#include "resilience/snapshot.hpp"
#include "scenario/ensemble.hpp"
#include "scenario/json.hpp"
#include "scenario/presets.hpp"
#include "scenario/runner.hpp"
#include "scenario/schema.hpp"
#include "sem/ns2d.hpp"
#include "sem/ns3d.hpp"

namespace {

using scenario::Json;
using scenario::JsonError;
using scenario::Runner;
using scenario::RunnerOptions;
using scenario::Scenario;
using scenario::WarmMode;

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// --- JSON value type -------------------------------------------------------

TEST(JsonTest, ParseDumpFixedPoint) {
  const char* text = R"({
    "name": "x",
    "flag": true,
    "nothing": null,
    "nums": [1, 2.5, -3e-2, 1e15],
    "nested": {"a": [], "b": {}}
  })";
  const Json doc = Json::parse(text);
  const std::string once = doc.dump();
  EXPECT_EQ(Json::parse(once).dump(), once);  // fixed point, bitwise
  EXPECT_EQ(Json::parse(once), doc);
}

TEST(JsonTest, StrictParseErrors) {
  EXPECT_THROW(Json::parse("{\"a\": 1,}"), JsonError);       // trailing comma
  EXPECT_THROW(Json::parse("{\"a\": 1} x"), JsonError);      // trailing garbage
  EXPECT_THROW(Json::parse("{\"a\": 1, \"a\": 2}"), JsonError);  // dup key
  try {
    Json::parse("{\n  \"a\": @\n}");
    FAIL() << "expected JsonError";
  } catch (const JsonError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos) << e.what();
  }
}

TEST(JsonTest, EscapingRoundTrip) {
  // Control characters, the mandatory escapes and raw UTF-8 multibyte
  // sequences must all survive dump -> parse byte-for-byte.
  const std::string nasty =
      std::string("quote\" back\\slash\nnew\ttab\rret\x01\x1f ") + "\xce\xbc-velocity \xe8\xa1\x80";
  Json doc = Json::object();
  doc.set("s", Json(nasty));
  const std::string text = doc.dump();
  EXPECT_NE(text.find("\\u0001"), std::string::npos);
  EXPECT_NE(text.find("\\u001f"), std::string::npos);
  EXPECT_NE(text.find("\xce\xbc"), std::string::npos);  // UTF-8 passes through
  const Json back = Json::parse(text);
  EXPECT_EQ(back.find("s")->as_string(), nasty);
  EXPECT_EQ(Json::parse(back.dump()).dump(), back.dump());
}

TEST(JsonTest, SharedEscapeHelperMatchesDump) {
  // The scenario serializer and telemetry share io::json_string_literal; the
  // DOM dump of a bare string must be exactly that literal.
  const std::string s = "a\"b\\c\nd\x02 \xc3\xa9";
  EXPECT_EQ(Json(s).dump(), io::json_string_literal(s) + "\n");
}

TEST(JsonTest, PathHelpers) {
  Json doc = Json::parse(R"({"a": {"b": {"c": 3}}})");
  ASSERT_NE(scenario::find_path(doc, "a.b.c"), nullptr);
  EXPECT_EQ(scenario::find_path(doc, "a.b.c")->as_number(), 3.0);
  EXPECT_EQ(scenario::find_path(doc, "a.x.c"), nullptr);
  scenario::require_path(doc, "a.b.c") = Json(4.0);
  EXPECT_EQ(scenario::find_path(doc, "a.b.c")->as_number(), 4.0);
  EXPECT_THROW(scenario::require_path(doc, "a.b.zzz"), JsonError);
}

// --- schema: diagnostics ---------------------------------------------------

TEST(SchemaTest, UnknownKeyCarriesJsonPath) {
  Json doc = Json::parse(scenario::scenario_to_json(scenario::quickstart_preset()));
  doc.find("sem")->set("nux", Json(1.0));
  try {
    scenario::parse_scenario(doc);
    FAIL() << "expected JsonError";
  } catch (const JsonError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("$.sem.nux"), std::string::npos) << msg;
    EXPECT_NE(msg.find("unknown key"), std::string::npos) << msg;
    EXPECT_NE(msg.find("known keys"), std::string::npos) << msg;
  }
}

TEST(SchemaTest, TypeMismatchCarriesJsonPath) {
  Json doc = Json::parse(scenario::scenario_to_json(scenario::quickstart_preset()));
  *doc.find("sem")->find("nu") = Json("thick");
  try {
    scenario::parse_scenario(doc);
    FAIL() << "expected JsonError";
  } catch (const JsonError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("$.sem.nu"), std::string::npos) << msg;
    EXPECT_NE(msg.find("expected number, got string"), std::string::npos) << msg;
  }
}

TEST(SchemaTest, SemanticValidation) {
  Scenario sc = scenario::quickstart_preset();
  sc.sem.time_order = 3;
  EXPECT_THROW(scenario::validate_scenario(sc), JsonError);
  sc = scenario::quickstart_preset();
  sc.mesh.nx = 0;
  EXPECT_THROW(scenario::validate_scenario(sc), JsonError);
  sc = scenario::quickstart_preset();
  sc.coupling.region = {2.5, 1.5, 0.0, 1.0};  // max < min
  EXPECT_THROW(scenario::validate_scenario(sc), JsonError);
}

TEST(SchemaTest, VersionAndKindAreChecked) {
  Json doc = Json::parse(scenario::scenario_to_json(scenario::quickstart_preset()));
  *doc.find("version") = Json(static_cast<std::int64_t>(99));
  EXPECT_THROW(scenario::parse_scenario(doc), JsonError);

  doc = Json::parse(R"({"version": 1, "kind": "mci"})");
  try {
    scenario::parse_scenario(doc);
    FAIL() << "expected JsonError";
  } catch (const JsonError& e) {
    EXPECT_NE(std::string(e.what()).find("reserved"), std::string::npos) << e.what();
  }

  doc = Json::parse(R"({"version": 1, "kind": "warp"})");
  EXPECT_THROW(scenario::parse_scenario(doc), JsonError);
}

TEST(SchemaTest, LoadScenarioFilePrefixesPath) {
  try {
    scenario::load_scenario_file("/nonexistent/sc.json");
    FAIL() << "expected JsonError";
  } catch (const JsonError& e) {
    EXPECT_NE(std::string(e.what()).find("/nonexistent/sc.json"), std::string::npos);
  }
}

// --- schema: bitwise re-emit ----------------------------------------------

Scenario tiny_net1d() {
  Scenario sc;
  sc.name = "bifurcation";
  sc.kind = "net1d";
  scenario::VesselSpec parent;
  parent.length = 2.0;
  parent.elements = 4;
  parent.order = 3;
  scenario::VesselSpec child = parent;
  child.length = 1.5;
  child.A0 = 0.3;
  sc.network.vessels = {parent, child, child};
  sc.network.junctions = {{{0, "right"}, {1, "left"}, {2, "left"}}};
  sc.network.inlets = {{0, 5.0, 1.0, 2.0}};
  sc.network.outlets = {{1, 100.0, 1000.0, 1e-4}, {2, 100.0, 1000.0, 1e-4}};
  sc.network.steps_per_interval = 5;
  sc.time.intervals = 3;
  return sc;
}

TEST(SchemaTest, BitwiseReEmit) {
  for (const Scenario& sc :
       {scenario::quickstart_preset(), scenario::coupled3d_preset(), tiny_net1d()}) {
    const std::string text = scenario::scenario_to_json(sc);
    const Scenario back = scenario::parse_scenario_text(text);
    EXPECT_EQ(scenario::scenario_to_json(back), text) << sc.name;
  }
}

TEST(SchemaTest, CheckedInFilesMatchPresets) {
  const std::string root = NEKTARG_SOURCE_DIR;
  EXPECT_EQ(slurp(root + "/examples/scenarios/quickstart.json"),
            scenario::scenario_to_json(scenario::quickstart_preset()));
  EXPECT_EQ(slurp(root + "/examples/scenarios/coupled3d.json"),
            scenario::scenario_to_json(scenario::coupled3d_preset()));
}

// --- Runner vs the handwritten examples -----------------------------------
//
// These replicate the pre-scenario examples/quickstart.cpp and coupled3d.cpp
// main loops verbatim (reduced interval/develop counts) and demand bitwise
// STATE_DIGEST equality with a Runner built from the matching preset.

std::uint32_t handwritten_quickstart_digest(int intervals, int develop) {
  auto mesh = mesh::QuadMesh::channel(4.0, 1.0, 8, 2);
  sem::Discretization disc(mesh, 4);
  sem::NavierStokes2D::Params nsp;
  nsp.nu = 0.05;
  nsp.dt = 2e-3;
  sem::NavierStokes2D ns(disc, nsp);
  ns.set_velocity_bc(mesh::kInlet,
                     [](double, double y, double) { return 4.0 * y * (1.0 - y); },
                     [](double, double, double) { return 0.0; });
  ns.set_natural_bc(mesh::kOutlet);
  for (int s = 0; s < develop; ++s) ns.step();

  dpd::DpdParams dp;
  dp.box = {16.0, 6.0, 10.0};
  dp.periodic = {false, true, false};
  dp.dt = 0.01;
  dpd::DpdSystem sys(dp, std::make_shared<dpd::ChannelZ>(10.0));
  sys.fill(3.0, dpd::kSolvent, 7, 0.1);
  dpd::FlowBcParams fp;
  fp.axis = 0;
  fp.buffer_len = 2.0;
  fp.density = 3.0;
  fp.relax = 0.3;
  dpd::FlowBc bc(fp);

  coupling::ScaleMap scales;
  scales.L_ns = 1.0;
  scales.L_dpd = 10.0;
  scales.nu_ns = nsp.nu;
  scales.nu_dpd = 2.5;
  coupling::TimeProgression tp;
  tp.dt_ns = nsp.dt;
  tp.exchange_every_ns = 2;
  tp.dpd_per_ns = 10;
  coupling::ContinuumDpdCoupler cdc(ns, sys, bc, {1.5, 2.5, 0.0, 1.0}, scales, tp);
  dpd::SamplerParams sp;
  sp.nx = 1;
  sp.ny = 1;
  sp.nz = 10;
  dpd::FieldSampler sampler(sys, sp);

  for (int interval = 0; interval < intervals; ++interval)
    cdc.advance_interval([&] {
      if (interval >= 12) sampler.accumulate(sys);
    });

  resilience::BlobWriter w;
  ns.save_state(w);
  sys.save_state(w);
  bc.save_state(w);
  cdc.save_state(w);
  sampler.save_state(w);
  return resilience::crc32(w.data());
}

std::uint32_t handwritten_coupled3d_digest(int intervals, int develop) {
  const double H = 1.0, Umax = 1.0, nu = 0.05;
  sem::Discretization3D d(4.0, 1.0, H, 4, 1, 2, 4);
  sem::NavierStokes3D::Params prm;
  prm.nu = nu;
  prm.dt = 2e-3;
  prm.time_order = 2;
  prm.pressure_dirichlet_faces = {sem::HexFace::X1};
  sem::NavierStokes3D ns(d, prm);
  auto prof = [&](double, double, double z, double) {
    return 4.0 * Umax * z * (H - z) / (H * H);
  };
  auto zero = [](double, double, double, double) { return 0.0; };
  ns.set_velocity_bc(sem::HexFace::X0, prof, zero, zero);
  ns.set_velocity_bc(sem::HexFace::Y0, prof, zero, zero);
  ns.set_velocity_bc(sem::HexFace::Y1, prof, zero, zero);
  ns.set_natural_bc(sem::HexFace::X1);
  for (int s = 0; s < develop; ++s) ns.step();

  dpd::DpdParams dp;
  dp.box = {16.0, 6.0, 10.0};
  dp.periodic = {false, true, false};
  dp.dt = 0.01;
  dpd::DpdSystem sys(dp, std::make_shared<dpd::ChannelZ>(10.0));
  sys.fill(3.0, dpd::kSolvent, 7, 0.1);
  dpd::FlowBcParams fp;
  fp.axis = 0;
  fp.relax = 0.3;
  dpd::FlowBc bc(fp);

  coupling::ScaleMap scales;
  scales.L_ns = H;
  scales.L_dpd = 10.0;
  scales.nu_ns = nu;
  scales.nu_dpd = 2.5;
  coupling::TimeProgression tp;
  tp.dt_ns = prm.dt;
  tp.exchange_every_ns = 2;
  tp.dpd_per_ns = 10;
  coupling::EmbeddedBox box{1.5, 2.5, 0.25, 0.75, 0.0, 1.0};
  coupling::ContinuumDpdCoupler3D cdc(ns, sys, bc, box, scales, tp);
  dpd::SamplerParams sp;
  sp.nx = 1;
  sp.ny = 1;
  sp.nz = 10;
  dpd::FieldSampler sampler(sys, sp);

  for (int interval = 0; interval < intervals; ++interval)
    cdc.advance_interval([&] {
      if (interval >= 15) sampler.accumulate(sys);
    });

  resilience::BlobWriter w;
  ns.save_state(w);
  sys.save_state(w);
  bc.save_state(w);
  cdc.save_state(w);
  sampler.save_state(w);
  return resilience::crc32(w.data());
}

TEST(RunnerTest, QuickstartDigestMatchesHandwritten) {
  Scenario sc = scenario::quickstart_preset();
  sc.time.develop_steps = 80;
  sc.time.intervals = 4;
  const auto res = Runner(sc).run();
  EXPECT_EQ(res.digest, handwritten_quickstart_digest(4, 80));
  EXPECT_EQ(res.intervals_run, 4u);
  EXPECT_EQ(res.develop_steps, 80u);
  EXPECT_GT(res.cg_iters, 0u);
}

TEST(RunnerTest, Coupled3dDigestMatchesHandwritten) {
  Scenario sc = scenario::coupled3d_preset();
  sc.time.develop_steps = 40;
  sc.time.intervals = 3;
  const auto res = Runner(sc).run();
  EXPECT_EQ(res.digest, handwritten_coupled3d_digest(3, 40));
}

TEST(RunnerTest, Net1dDeterministicDigest) {
  const Scenario sc = tiny_net1d();
  const auto a = Runner(sc).run();
  const auto b = Runner(sc).run();
  EXPECT_NE(a.digest, 0u);
  EXPECT_EQ(a.digest, b.digest);
}

TEST(RunnerTest, SharedTablesReuseDiscretization) {
  scenario::SharedTables tables;
  Scenario sc = scenario::quickstart_preset();
  sc.time.develop_steps = 2;
  sc.time.intervals = 0;
  const auto a = Runner(sc, {}, &tables).run();
  const auto b = Runner(sc, {}, &tables).run();
  EXPECT_EQ(a.digest, b.digest);  // sharing tables must not change results
  EXPECT_EQ(tables.misses(), 1u);
  EXPECT_EQ(tables.hits(), 1u);
}

// --- warm starts -----------------------------------------------------------

TEST(RunnerTest, MismatchedWarmBlobIsIgnored) {
  Scenario donor_sc = scenario::quickstart_preset();
  donor_sc.time.develop_steps = 5;
  donor_sc.time.intervals = 0;
  Runner donor(donor_sc);
  donor.run();
  const auto blob = donor.warm_state();

  Scenario other = donor_sc;
  other.sem.nu = 0.06;  // different signature: donor state must not transfer
  Runner r(other);
  r.set_warm_start(WarmMode::State, blob);
  r.run();
  EXPECT_FALSE(r.warm_applied());

  Runner same(donor_sc);
  same.set_warm_start(WarmMode::State, blob);
  same.run();
  EXPECT_TRUE(same.warm_applied());
}

TEST(RunnerTest, WarmVsColdEquivalentAtSolverTolerance) {
  // A tolerance-terminated develop phase must land on the same developed flow
  // whether it starts from rest (cold) or from a donor parameter point
  // (warm), only faster. The continuum is one-way coupled, so its profile is
  // a deterministic function of the developed state.
  Scenario base = scenario::quickstart_preset();
  base.time.intervals = 2;
  base.time.develop_steps = 3000;
  // The per-step delta floors near 2e-10 (CG tolerance noise); 3e-8 is
  // reachable in ~1500 steps from rest.
  base.time.develop_tol = 3e-8;
  base.time.sample_from = 0;

  Runner donor(base);
  donor.run();
  const auto blob = donor.warm_state();

  Scenario target = base;
  target.sem.inlet_umax = 1.05;
  Runner cold(target);
  const auto rc = cold.run();
  Runner warm(target);
  warm.set_warm_start(WarmMode::State, blob);
  const auto rw = warm.run();

  EXPECT_TRUE(warm.warm_applied());
  EXPECT_LT(rw.develop_steps, rc.develop_steps);  // the whole point
  EXPECT_LT(rw.cg_iters, rc.cg_iters);
  for (double y : {0.1, 0.25, 0.5, 0.75, 0.9})
    EXPECT_NEAR(warm.eval_u(2.0, y), cold.eval_u(2.0, y), 5e-5) << "y = " << y;
}

// --- ensemble --------------------------------------------------------------

Json ensemble_base_doc() {
  Scenario sc = scenario::quickstart_preset();
  sc.time.intervals = 2;
  sc.time.develop_steps = 30;
  sc.time.sample_from = 0;
  return Json::parse(scenario::scenario_to_json(sc));
}

scenario::SweepSpec umax_sweep(std::initializer_list<double> values) {
  scenario::SweepSpec sweep;
  scenario::SweepAxis axis;
  axis.path = "sem.inlet_umax";
  for (double v : values) axis.values.push_back(Json(v));
  sweep.axes.push_back(axis);
  return sweep;
}

TEST(EnsembleTest, SweepSpecParseIsStrict) {
  const auto spec = scenario::SweepSpec::parse(Json::parse(
      R"({"mode": "zip", "axes": [{"path": "sem.nu", "values": [0.05, 0.06]}]})"));
  EXPECT_EQ(spec.mode, "zip");
  ASSERT_EQ(spec.axes.size(), 1u);
  EXPECT_EQ(spec.axes[0].path, "sem.nu");

  EXPECT_THROW(scenario::SweepSpec::parse(Json::parse(R"({"mode": "diagonal", "axes": []})")),
               JsonError);
  EXPECT_THROW(scenario::SweepSpec::parse(Json::parse(
                   R"({"axes": [{"path": "sem.nu", "values": [1], "wat": 2}]})")),
               JsonError);
  EXPECT_THROW(scenario::SweepSpec::parse(Json::parse(R"({"axes": [{"path": "sem.nu",
                   "values": []}]})")),
               JsonError);
}

TEST(EnsembleTest, SweepDiagnosticsCarryJsonPaths) {
  // a bad sweep must name the offending element, not just the rule
  try {
    scenario::SweepSpec::parse(Json::parse(
        R"({"axes": [{"path": "sem.nu", "values": [1]}, {"path": "dpd.seed", "values": 3}]})"));
    FAIL() << "expected JsonError";
  } catch (const JsonError& e) {
    EXPECT_NE(std::string(e.what()).find("$.axes[1].values"), std::string::npos) << e.what();
  }
  try {
    scenario::SweepSpec::parse(Json::parse(R"({"axes": [{"values": [1]}]})"));
    FAIL() << "expected JsonError";
  } catch (const JsonError& e) {
    EXPECT_NE(std::string(e.what()).find("$.axes[0]"), std::string::npos) << e.what();
  }
}

TEST(EnsembleTest, LoadSweepFileCarriesFilePathInDiagnostics) {
  const std::string root = NEKTARG_SOURCE_DIR;
  const auto spec =
      scenario::load_sweep_file(root + "/examples/scenarios/sweeps/quickstart_inlet.json");
  ASSERT_EQ(spec.axes.size(), 2u);
  EXPECT_EQ(spec.axes[0].path, "sem.inlet_umax");
  // the checked-in sweep must expand cleanly against the preset it targets
  const auto variants = scenario::EnsembleEngine::expand(
      Json::parse(scenario::scenario_to_json(scenario::quickstart_preset())), spec);
  EXPECT_EQ(variants.size(), 6u);

  try {
    scenario::load_sweep_file(root + "/examples/scenarios/sweeps/nope.json");
    FAIL() << "expected JsonError";
  } catch (const JsonError& e) {
    EXPECT_NE(std::string(e.what()).find("nope.json"), std::string::npos) << e.what();
  }
}

TEST(EnsembleTest, CrossExpansionLastAxisFastest) {
  Json base = ensemble_base_doc();
  scenario::SweepSpec sweep;
  sweep.axes.push_back({"sem.inlet_umax", {Json(0.9), Json(1.1)}});
  sweep.axes.push_back({"dpd.seed", {Json(1), Json(2), Json(3)}});
  const auto variants = scenario::EnsembleEngine::expand(base, sweep);
  ASSERT_EQ(variants.size(), 6u);
  EXPECT_EQ(scenario::find_path(variants[0].doc, "sem.inlet_umax")->as_number(), 0.9);
  EXPECT_EQ(scenario::find_path(variants[0].doc, "dpd.seed")->as_number(), 1.0);
  EXPECT_EQ(scenario::find_path(variants[1].doc, "dpd.seed")->as_number(), 2.0);  // last fastest
  EXPECT_EQ(scenario::find_path(variants[3].doc, "sem.inlet_umax")->as_number(), 1.1);
  EXPECT_NE(variants[4].name.find("inlet_umax"), std::string::npos);
  ASSERT_EQ(variants[5].coords.size(), 2u);
  EXPECT_EQ(variants[5].coords[0], 1.0);  // normalized to [0, 1]
  EXPECT_EQ(variants[5].coords[1], 1.0);

  scenario::SweepSpec zip = sweep;
  zip.mode = "zip";
  EXPECT_THROW(scenario::EnsembleEngine::expand(base, zip), JsonError);  // unequal lengths

  scenario::SweepSpec bad_path;
  bad_path.axes.push_back({"sem.does_not_exist", {Json(1.0)}});
  EXPECT_THROW(scenario::EnsembleEngine::expand(base, bad_path), JsonError);

  scenario::SweepSpec bad_value;
  bad_value.axes.push_back({"sem.nu", {Json(-1.0)}});  // fails validation up front
  EXPECT_THROW(scenario::EnsembleEngine::expand(base, bad_value), JsonError);
}

TEST(EnsembleTest, PoolMatchesSerial) {
  const Json base = ensemble_base_doc();
  const auto sweep = umax_sweep({0.9, 1.0, 1.1});

  scenario::EnsembleOptions serial_opts;
  const auto serial = scenario::EnsembleEngine(base, sweep, serial_opts).run();
  ASSERT_EQ(serial.variants.size(), 3u);
  EXPECT_EQ(serial.completed, 3u);
  EXPECT_EQ(serial.failed, 0u);
  // Identical meshes: the per-rank discretization cache hits after the first.
  EXPECT_EQ(serial.shared_misses, 1u);
  EXPECT_EQ(serial.shared_hits, 2u);

  scenario::EnsembleOptions pool_opts;
  pool_opts.pool = 3;  // 1 dispatcher + 2 workers stealing 3 variants
  const auto pool = scenario::EnsembleEngine(base, sweep, pool_opts).run();
  ASSERT_EQ(pool.variants.size(), 3u);
  EXPECT_EQ(pool.completed, 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(pool.variants[i].ok);
    EXPECT_EQ(pool.variants[i].digest, serial.variants[i].digest) << "variant " << i;
    EXPECT_GE(pool.variants[i].rank, 1);  // rank 0 is the dispatcher
  }
}

TEST(EnsembleTest, WarmStartsReduceWork) {
  Json base = ensemble_base_doc();
  scenario::require_path(base, "time.develop_steps") = Json(3000);
  scenario::require_path(base, "time.develop_tol") = Json(3e-8);
  const auto sweep = umax_sweep({1.0, 1.02, 1.04, 1.06});

  scenario::EnsembleOptions cold_opts;
  const auto cold = scenario::EnsembleEngine(base, sweep, cold_opts).run();
  scenario::EnsembleOptions warm_opts;
  warm_opts.warm = WarmMode::State;
  const auto warm = scenario::EnsembleEngine(base, sweep, warm_opts).run();

  EXPECT_EQ(cold.completed, 4u);
  EXPECT_EQ(warm.completed, 4u);
  // First variant is necessarily cold; every later one has a donor.
  EXPECT_EQ(warm.variants[0].warm_source, -1);
  for (std::size_t i = 1; i < 4; ++i)
    EXPECT_GE(warm.variants[i].warm_source, 0) << "variant " << i;
  EXPECT_LT(warm.develop_total, cold.develop_total);
  EXPECT_LT(warm.cg_total, cold.cg_total);
}

TEST(EnsembleTest, FaultIsolationKeepsSurvivorsBitwise) {
  const Json base = ensemble_base_doc();
  const auto sweep = umax_sweep({0.9, 1.0, 1.1});

  const auto healthy = scenario::EnsembleEngine(base, sweep, {}).run();
  ASSERT_EQ(healthy.failed, 0u);

  resilience::FaultPlan plan;
  plan.kill_rank(/*fault_id=*/1, /*interval=*/1);  // kill variant 1 mid-run
  scenario::EnsembleOptions opts;
  opts.fault_plan = &plan;
  const auto faulty = scenario::EnsembleEngine(base, sweep, opts).run();

  EXPECT_EQ(faulty.failed, 1u);
  EXPECT_EQ(faulty.completed, 2u);
  EXPECT_FALSE(faulty.variants[1].ok);
  EXPECT_NE(faulty.variants[1].error.find("injected fault"), std::string::npos)
      << faulty.variants[1].error;
  // The killed variant is isolated: its siblings' results are bitwise
  // identical to the healthy ensemble's.
  EXPECT_TRUE(faulty.variants[0].ok);
  EXPECT_TRUE(faulty.variants[2].ok);
  EXPECT_EQ(faulty.variants[0].digest, healthy.variants[0].digest);
  EXPECT_EQ(faulty.variants[2].digest, healthy.variants[2].digest);
}

}  // namespace
