// Tests for the xmp in-process message-passing runtime: p2p semantics,
// collectives, hierarchical splits (the substrate MCI builds on), tracing,
// and abort propagation.

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <numeric>
#include <set>
#include <thread>

#include "xmp/comm.hpp"

namespace {

TEST(Xmp, WorldRankAndSize) {
  xmp::run(4, [](xmp::Comm& world) {
    EXPECT_EQ(world.size(), 4);
    EXPECT_GE(world.rank(), 0);
    EXPECT_LT(world.rank(), 4);
    EXPECT_EQ(world.world_rank(), world.rank());
  });
}

TEST(Xmp, PingPong) {
  xmp::run(2, [](xmp::Comm& world) {
    if (world.rank() == 0) {
      std::vector<double> msg = {1.0, 2.0, 3.0};
      world.send(1, 7, msg);
      auto back = world.recv<double>(1, 8);
      ASSERT_EQ(back.size(), 3u);
      EXPECT_DOUBLE_EQ(back[2], 6.0);
    } else {
      auto m = world.recv<double>(0, 7);
      for (auto& v : m) v *= 2.0;
      world.send(0, 8, m);
    }
  });
}

TEST(Xmp, TagMatchingOutOfOrder) {
  // A message with a later tag must not be consumed by an earlier recv.
  xmp::run(2, [](xmp::Comm& world) {
    if (world.rank() == 0) {
      world.send(1, 20, std::vector<int>{20});
      world.send(1, 10, std::vector<int>{10});
    } else {
      auto a = world.recv<int>(0, 10);
      auto b = world.recv<int>(0, 20);
      EXPECT_EQ(a[0], 10);
      EXPECT_EQ(b[0], 20);
    }
  });
}

// ------------------------------------------------------- nonblocking p2p

TEST(XmpPending, IsendIrecvRoundTrip) {
  xmp::run(2, [](xmp::Comm& world) {
    if (world.rank() == 0) {
      const std::vector<double> msg = {1.0, 2.0, 3.0};
      xmp::Pending s = world.isend_bytes(1, 7, msg.data(), msg.size() * sizeof(double));
      s.wait();  // eager transport: born complete, wait() only retires
    } else {
      xmp::Pending p = world.irecv_bytes(0, 7);
      int src = -1, tag = -1;
      const auto raw = p.wait(&src, &tag);
      EXPECT_EQ(src, 0);
      EXPECT_EQ(tag, 7);
      ASSERT_EQ(raw.size(), 3 * sizeof(double));
      double back[3];
      std::memcpy(back, raw.data(), sizeof back);
      EXPECT_DOUBLE_EQ(back[2], 3.0);
    }
  });
}

TEST(XmpPending, TestPollsWithoutBlockingAndReservesPayload) {
  xmp::run(2, [](xmp::Comm& world) {
    if (world.rank() == 0) {
      xmp::Pending p = world.irecv_bytes(1, 5);
      // rank 1 only sends after our go message, so this poll is
      // deterministically premature
      EXPECT_FALSE(p.test());
      world.send(1, 1, std::vector<int>{1});
      while (!p.test()) std::this_thread::yield();
      EXPECT_TRUE(p.test());  // a true result is stable
      const auto raw = p.wait();  // payload was reserved by the claiming test()
      ASSERT_EQ(raw.size(), sizeof(int));
      int v = 0;
      std::memcpy(&v, raw.data(), sizeof v);
      EXPECT_EQ(v, 42);
    } else {
      (void)world.recv<int>(0, 1);
      const int v = 42;
      world.isend_bytes(0, 5, &v, sizeof v).wait();
    }
  });
}

TEST(XmpPending, CompletesOutOfPostingOrder) {
  xmp::run(2, [](xmp::Comm& world) {
    if (world.rank() == 0) {
      xmp::Pending a = world.irecv_bytes(1, 10);
      xmp::Pending b = world.irecv_bytes(1, 20);
      const auto rb = b.wait();  // posted second, completed first: tags match
      const auto ra = a.wait();
      ASSERT_EQ(rb.size(), 1u);
      ASSERT_EQ(ra.size(), 1u);
      EXPECT_EQ(rb[0], 20);
      EXPECT_EQ(ra[0], 10);
    } else {
      world.send(0, 20, std::vector<std::uint8_t>{20});
      world.send(0, 10, std::vector<std::uint8_t>{10});
    }
  });
}

TEST(XmpErrors, PendingReuseAfterWaitThrows) {
  xmp::run(2, [](xmp::Comm& world) {
    if (world.rank() == 0) {
      const int v = 1;
      xmp::Pending p = world.isend_bytes(1, 2, &v, sizeof v);
      p.wait();
      EXPECT_THROW(p.wait(), std::logic_error);
      EXPECT_THROW(p.test(), std::logic_error);
      EXPECT_THROW(xmp::Pending{}.wait(), std::logic_error);
    } else {
      (void)world.recv<int>(0, 2);
    }
  });
}

TEST(XmpErrors, IrecvSrcOutOfRangeNamesCommSizeAndTag) {
  xmp::run(1, [](xmp::Comm& world) {
    try {
      (void)world.irecv_bytes(3, 9);
      ADD_FAILURE() << "expected std::out_of_range";
    } catch (const std::out_of_range& e) {
      const std::string msg = e.what();
      EXPECT_NE(msg.find("irecv src 3"), std::string::npos) << msg;
      EXPECT_NE(msg.find("tag 9"), std::string::npos) << msg;
    }
  });
}

TEST(Xmp, AnySourceReceivesFromAll) {
  xmp::run(5, [](xmp::Comm& world) {
    if (world.rank() == 0) {
      std::set<int> seen;
      for (int i = 0; i < 4; ++i) {
        int src = -1;
        auto v = world.recv<int>(xmp::kAnySource, 3, &src);
        EXPECT_EQ(v[0], src);
        seen.insert(src);
      }
      EXPECT_EQ(seen.size(), 4u);
    } else {
      world.send(0, 3, std::vector<int>{world.rank()});
    }
  });
}

TEST(Xmp, FifoPerSenderAndTag) {
  xmp::run(2, [](xmp::Comm& world) {
    if (world.rank() == 0) {
      for (int i = 0; i < 50; ++i) world.send(1, 1, std::vector<int>{i});
    } else {
      for (int i = 0; i < 50; ++i) {
        auto v = world.recv<int>(0, 1);
        EXPECT_EQ(v[0], i);
      }
    }
  });
}

TEST(Xmp, Barrier) {
  std::atomic<int> phase{0};
  xmp::run(4, [&](xmp::Comm& world) {
    phase.fetch_add(1);
    world.barrier();
    EXPECT_EQ(phase.load(), 4);  // nobody passes until all arrived
    world.barrier();
  });
}

TEST(Xmp, Bcast) {
  xmp::run(4, [](xmp::Comm& world) {
    std::vector<double> data;
    if (world.rank() == 2) data = {3.14, 2.71};
    world.bcast(data, 2);
    ASSERT_EQ(data.size(), 2u);
    EXPECT_DOUBLE_EQ(data[0], 3.14);
  });
}

TEST(Xmp, GathervConcatenatesInRankOrder) {
  xmp::run(4, [](xmp::Comm& world) {
    std::vector<int> mine(static_cast<std::size_t>(world.rank()) + 1, world.rank());
    std::vector<std::size_t> counts;
    auto all = world.gatherv(std::span<const int>(mine), 0, &counts);
    if (world.rank() == 0) {
      ASSERT_EQ(counts.size(), 4u);
      EXPECT_EQ(all.size(), 1u + 2u + 3u + 4u);
      EXPECT_EQ(all[0], 0);
      EXPECT_EQ(all[1], 1);
      EXPECT_EQ(all.back(), 3);
    } else {
      EXPECT_TRUE(all.empty());
    }
  });
}

TEST(Xmp, AllgathervSameEverywhere) {
  xmp::run(3, [](xmp::Comm& world) {
    std::vector<int> mine = {world.rank() * 10};
    auto all = world.allgatherv(std::span<const int>(mine));
    ASSERT_EQ(all.size(), 3u);
    EXPECT_EQ(all[0], 0);
    EXPECT_EQ(all[1], 10);
    EXPECT_EQ(all[2], 20);
  });
}

TEST(Xmp, Scatterv) {
  xmp::run(3, [](xmp::Comm& world) {
    std::vector<std::vector<int>> parts;
    if (world.rank() == 1) parts = {{1}, {2, 2}, {3, 3, 3}};
    auto mine = world.scatterv(parts, 1);
    EXPECT_EQ(mine.size(), static_cast<std::size_t>(world.rank()) + 1);
    for (int v : mine) EXPECT_EQ(v, world.rank() + 1);
  });
}

TEST(Xmp, AllreduceScalarOps) {
  xmp::run(4, [](xmp::Comm& world) {
    const double r = world.rank();
    EXPECT_DOUBLE_EQ(world.allreduce(r, xmp::Op::Sum), 6.0);
    EXPECT_DOUBLE_EQ(world.allreduce(r, xmp::Op::Min), 0.0);
    EXPECT_DOUBLE_EQ(world.allreduce(r, xmp::Op::Max), 3.0);
    EXPECT_EQ(world.allreduce(static_cast<std::int64_t>(world.rank() + 1), xmp::Op::Sum), 10);
  });
}

TEST(Xmp, AllreduceVector) {
  xmp::run(3, [](xmp::Comm& world) {
    std::vector<double> v = {1.0 * world.rank(), 1.0};
    auto s = world.allreduce(std::span<const double>(v), xmp::Op::Sum);
    EXPECT_DOUBLE_EQ(s[0], 3.0);
    EXPECT_DOUBLE_EQ(s[1], 3.0);
  });
}

TEST(Xmp, SplitByParity) {
  xmp::run(6, [](xmp::Comm& world) {
    xmp::Comm sub = world.split(world.rank() % 2, world.rank());
    ASSERT_TRUE(sub.valid());
    EXPECT_EQ(sub.size(), 3);
    EXPECT_EQ(sub.rank(), world.rank() / 2);
    // Collectives inside the subcommunicator stay inside it.
    const double sum = sub.allreduce(static_cast<double>(world.rank()), xmp::Op::Sum);
    EXPECT_DOUBLE_EQ(sum, world.rank() % 2 == 0 ? 0.0 + 2.0 + 4.0 : 1.0 + 3.0 + 5.0);
  });
}

TEST(Xmp, SplitUndefinedYieldsInvalid) {
  xmp::run(4, [](xmp::Comm& world) {
    xmp::Comm sub = world.split(world.rank() == 0 ? xmp::kUndefined : 0, 0);
    if (world.rank() == 0) {
      EXPECT_FALSE(sub.valid());
    } else {
      ASSERT_TRUE(sub.valid());
      EXPECT_EQ(sub.size(), 3);
    }
  });
}

TEST(Xmp, SplitKeyOrdersRanks) {
  xmp::run(4, [](xmp::Comm& world) {
    // reverse ordering by key
    xmp::Comm sub = world.split(0, -world.rank());
    EXPECT_EQ(sub.rank(), 3 - world.rank());
  });
}

TEST(Xmp, HierarchicalSplitL2L3L4) {
  // The MCI pattern: world -> 2 "racks" (L2) -> 2 task groups each (L3) ->
  // root-only interface group (L4-ish). 8 ranks.
  xmp::run(8, [](xmp::Comm& world) {
    const int rack = world.rank() / 4;
    xmp::Comm l2 = world.split(rack, world.rank());
    EXPECT_EQ(l2.size(), 4);
    const int task = l2.rank() / 2;
    xmp::Comm l3 = l2.split(task, l2.rank());
    EXPECT_EQ(l3.size(), 2);
    // L4: only rank 0 of each L3
    xmp::Comm l4 = l3.split(l3.rank() == 0 ? 0 : xmp::kUndefined, 0);
    if (l3.rank() == 0) {
      ASSERT_TRUE(l4.valid());
      EXPECT_EQ(l4.size(), 1);
    } else {
      EXPECT_FALSE(l4.valid());
    }
    // world ranks survive the nesting
    EXPECT_EQ(world.world_rank(), world.rank());
  });
}

TEST(Xmp, SubCommP2pIsolatedFromWorldTags) {
  xmp::run(4, [](xmp::Comm& world) {
    xmp::Comm sub = world.split(world.rank() % 2, world.rank());
    // Same (peer, tag) in different communicators must not cross.
    if (sub.rank() == 0) {
      sub.send(1, 5, std::vector<int>{100 + world.rank()});
    } else {
      auto v = sub.recv<int>(0, 5);
      EXPECT_EQ(v[0], 100 + (world.rank() % 2));
    }
  });
}

TEST(Xmp, TraceObservesMessages) {
  // set_trace is collective over world: every rank calls it, and the
  // installation happens while all ranks are parked inside the call.
  std::mutex mu;
  std::vector<xmp::TraceEvent> events;
  xmp::run(3, [&](xmp::Comm& world) {
    world.set_trace([&](const xmp::TraceEvent& e) {
      std::lock_guard lk(mu);
      events.push_back(e);
    });
    if (world.rank() == 1) world.send(2, 9, std::vector<double>(8, 1.0));
    if (world.rank() == 2) world.recv<double>(1, 9);
    world.barrier();
    world.set_trace(nullptr);
  });
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].src_world, 1);
  EXPECT_EQ(events[0].dst_world, 2);
  EXPECT_EQ(events[0].bytes, 64u);
  EXPECT_EQ(events[0].tag, 9);
  EXPECT_EQ(events[0].kind, xmp::TraceKind::P2P);
}

TEST(Xmp, TraceSinkViaRunSeesCollectivePattern) {
  // The run()-parameter install path observes traffic from the very first
  // message, including the logical fan-in a gatherv models.
  std::mutex mu;
  std::vector<xmp::TraceEvent> events;
  xmp::run(
      3,
      [](xmp::Comm& world) {
        std::vector<int> mine = {world.rank()};
        world.gatherv<int>(mine, 0);
      },
      [&](const xmp::TraceEvent& e) {
        std::lock_guard lk(mu);
        events.push_back(e);
      });
  // gatherv models one message per non-root rank into the root
  std::size_t fan_in = 0;
  for (const auto& e : events)
    if (e.kind == xmp::TraceKind::Gather && e.dst_world == 0) ++fan_in;
  EXPECT_EQ(fan_in, 2u);
  for (const auto& e : events) EXPECT_EQ(e.tag, xmp::kCollectiveTag);
}

TEST(Xmp, SetTraceOnSubCommThrows) {
  xmp::run(4, [](xmp::Comm& world) {
    xmp::Comm sub = world.split(world.rank() % 2, world.rank());
    EXPECT_THROW(sub.set_trace(nullptr), std::logic_error);
    world.barrier();
  });
}

TEST(Xmp, AbortPropagatesFailure) {
  EXPECT_THROW(
      xmp::run(3,
               [](xmp::Comm& world) {
                 if (world.rank() == 1) throw std::runtime_error("rank 1 died");
                 // Others block forever; abort must wake them.
                 world.recv<double>(1, 0);
               }),
      std::runtime_error);
}

TEST(Xmp, RunRejectsNonPositiveRanks) {
  EXPECT_THROW(xmp::run(0, [](xmp::Comm&) {}), std::invalid_argument);
}

TEST(Xmp, LargePayloadIntegrity) {
  xmp::run(2, [](xmp::Comm& world) {
    const std::size_t n = 1 << 18;
    if (world.rank() == 0) {
      std::vector<double> big(n);
      std::iota(big.begin(), big.end(), 0.0);
      world.send(1, 0, big);
    } else {
      auto big = world.recv<double>(0, 0);
      ASSERT_EQ(big.size(), n);
      EXPECT_DOUBLE_EQ(big[n - 1], static_cast<double>(n - 1));
    }
  });
}

// ---- failure paths ----------------------------------------------------------
//
// When one rank throws, every rank parked inside a collective must wake with
// AbortedError (not hang, not return garbage) and xmp::run must rethrow the
// original failure. Exercise that for every collective entry point.

void expect_abort_wakes_collective(const std::function<void(xmp::Comm&)>& blocked_op) {
  constexpr int n = 4;
  std::atomic<int> aborted_count{0};
  EXPECT_THROW(
      xmp::run(n,
               [&](xmp::Comm& world) {
                 if (world.rank() == n - 1) throw std::runtime_error("boom");
                 try {
                   blocked_op(world);
                 } catch (const xmp::AbortedError&) {
                   aborted_count.fetch_add(1);
                   throw;
                 }
               }),
      std::runtime_error);
  EXPECT_EQ(aborted_count.load(), n - 1);
}

TEST(XmpAbort, WakesBarrier) {
  expect_abort_wakes_collective([](xmp::Comm& w) { w.barrier(); });
}

TEST(XmpAbort, WakesBcast) {
  expect_abort_wakes_collective([](xmp::Comm& w) {
    std::vector<double> d(3, 1.0);
    w.bcast(d, 0);
  });
}

TEST(XmpAbort, WakesGatherv) {
  expect_abort_wakes_collective([](xmp::Comm& w) {
    std::vector<int> mine{w.rank()};
    (void)w.gatherv(std::span<const int>(mine), 0);
  });
}

TEST(XmpAbort, WakesAllgatherv) {
  expect_abort_wakes_collective([](xmp::Comm& w) {
    std::vector<int> mine{w.rank()};
    (void)w.allgatherv(std::span<const int>(mine));
  });
}

TEST(XmpAbort, WakesScatterv) {
  expect_abort_wakes_collective([](xmp::Comm& w) {
    std::vector<std::vector<int>> parts;
    if (w.rank() == 0) parts.assign(static_cast<std::size_t>(w.size()), {1, 2});
    (void)w.scatterv(parts, 0);
  });
}

TEST(XmpAbort, WakesAllreduceScalar) {
  expect_abort_wakes_collective([](xmp::Comm& w) { (void)w.allreduce(1.0, xmp::Op::Sum); });
}

TEST(XmpAbort, WakesAllreduceVector) {
  expect_abort_wakes_collective([](xmp::Comm& w) {
    std::vector<double> v(2, 1.0);
    (void)w.allreduce(std::span<const double>(v), xmp::Op::Max);
  });
}

TEST(XmpAbort, WakesSplit) {
  expect_abort_wakes_collective([](xmp::Comm& w) { (void)w.split(0, w.rank()); });
}

TEST(XmpAbort, WakesRecv) {
  expect_abort_wakes_collective([](xmp::Comm& w) { (void)w.recv<double>(w.rank(), 0); });
}

// ---- error diagnostics ------------------------------------------------------

TEST(XmpErrors, RecvSizeMismatchNamesSrcTagAndBytes) {
  xmp::run(2, [](xmp::Comm& world) {
    if (world.rank() == 0) {
      world.send(1, 5, std::vector<std::uint8_t>(10, 0));  // 10 bytes, not /8
    } else {
      try {
        (void)world.recv<double>(0, 5);
        ADD_FAILURE() << "expected size-mismatch throw";
      } catch (const std::runtime_error& e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("src 0"), std::string::npos) << msg;
        EXPECT_NE(msg.find("tag 5"), std::string::npos) << msg;
        EXPECT_NE(msg.find("10 bytes"), std::string::npos) << msg;
        EXPECT_NE(msg.find("element size 8"), std::string::npos) << msg;
      }
    }
  });
}

TEST(XmpErrors, SendDstOutOfRangeNamesCommSize) {
  xmp::run(2, [](xmp::Comm& world) {
    try {
      world.send(5, 0, std::vector<int>{1});
      ADD_FAILURE() << "expected out_of_range";
    } catch (const std::out_of_range& e) {
      const std::string msg = e.what();
      EXPECT_NE(msg.find("dst 5"), std::string::npos) << msg;
      EXPECT_NE(msg.find("comm of size 2"), std::string::npos) << msg;
    }
    world.barrier();
  });
}

TEST(XmpErrors, RecvSrcOutOfRangeNamesCommSizeAndTag) {
  xmp::run(2, [](xmp::Comm& world) {
    try {
      (void)world.recv<int>(7, 3);
      ADD_FAILURE() << "expected out_of_range";
    } catch (const std::out_of_range& e) {
      const std::string msg = e.what();
      EXPECT_NE(msg.find("src 7"), std::string::npos) << msg;
      EXPECT_NE(msg.find("comm of size 2"), std::string::npos) << msg;
      EXPECT_NE(msg.find("tag 3"), std::string::npos) << msg;
    }
    world.barrier();
  });
}

TEST(XmpErrors, BcastRootOutOfRangeThrows) {
  xmp::run(2, [](xmp::Comm& world) {
    std::vector<double> d{1.0};
    EXPECT_THROW(world.bcast(d, 2), std::invalid_argument);
    EXPECT_THROW(world.bcast(d, -1), std::invalid_argument);
    world.barrier();
  });
}

TEST(XmpErrors, GathervRootOutOfRangeThrows) {
  xmp::run(2, [](xmp::Comm& world) {
    std::vector<int> mine{1};
    EXPECT_THROW((void)world.gatherv(std::span<const int>(mine), 9), std::invalid_argument);
    world.barrier();
  });
}

TEST(XmpErrors, ScattervRootOutOfRangeThrows) {
  xmp::run(2, [](xmp::Comm& world) {
    std::vector<std::vector<int>> parts(2);
    EXPECT_THROW((void)world.scatterv(parts, 2), std::invalid_argument);
    world.barrier();
  });
}

TEST(XmpErrors, ScattervPartsCountMismatchThrows) {
  xmp::run(2, [](xmp::Comm& world) {
    if (world.rank() == 0) {
      std::vector<std::vector<int>> parts(3);  // comm has 2 ranks
      EXPECT_THROW((void)world.scatterv(parts, 0), std::invalid_argument);
    }
    world.barrier();
  });
}

TEST(XmpErrors, GathervNonMultipleContributionThrows) {
  // A 4-byte int contribution cannot be reinterpreted as doubles on the
  // root: gatherv must throw (not silently truncate) and name the rank.
  EXPECT_THROW(
      xmp::run(2,
               [](xmp::Comm& world) {
                 if (world.rank() == 0) {
                   std::vector<double> mine{1.0};
                   (void)world.gatherv(std::span<const double>(mine), 0);
                 } else {
                   // Same collective slot, different element type: rank 1's
                   // 4-byte blob is not divisible by sizeof(double).
                   std::vector<float> mine{1.0f};
                   (void)world.gatherv(std::span<const float>(mine), 0);
                 }
               }),
      std::runtime_error);
}

TEST(XmpErrors, AllgathervNonMultipleContributionThrows) {
  EXPECT_THROW(
      xmp::run(2,
               [](xmp::Comm& world) {
                 if (world.rank() == 0) {
                   std::vector<double> mine{1.0};
                   (void)world.allgatherv(std::span<const double>(mine));
                 } else {
                   std::vector<float> mine{1.0f, 2.0f, 3.0f};
                   (void)world.allgatherv(std::span<const float>(mine));
                 }
               }),
      std::runtime_error);
}

TEST(XmpErrors, ScattervCorruptHeaderCaughtByBoundsCheck) {
  // Root scatters float parts while a peer decodes doubles: the peer's
  // payload-size validation must fire instead of reading out of bounds.
  EXPECT_THROW(
      xmp::run(2,
               [](xmp::Comm& world) {
                 if (world.rank() == 0) {
                   std::vector<std::vector<float>> parts{{1.0f}, {2.0f}};
                   (void)world.scatterv(parts, 0);
                 } else {
                   std::vector<std::vector<double>> parts;
                   (void)world.scatterv(parts, 0);
                 }
               }),
      std::runtime_error);
}

}  // namespace
