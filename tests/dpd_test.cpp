// Tests for the DPD engine: pair search, force symmetry/momentum
// conservation, thermostat equilibrium, Poiseuille flow against continuum
// theory, wall no-penetration, inflow/outflow bookkeeping, bonded RBC rings,
// and platelet aggregation dynamics.

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>

#include "dpd/bonds.hpp"
#include "dpd/buffers.hpp"
#include "dpd/geometry.hpp"
#include "dpd/inflow.hpp"
#include "dpd/platelets.hpp"
#include "dpd/sampling.hpp"
#include "dpd/system.hpp"
#include "dpd/viscometry.hpp"

namespace {

dpd::DpdParams periodic_box(double L = 8.0) {
  dpd::DpdParams p;
  p.box = {L, L, L};
  p.periodic = {true, true, true};
  return p;
}

TEST(Geometry, ChannelSdf) {
  dpd::ChannelZ ch(10.0);
  EXPECT_DOUBLE_EQ(ch.sdf({0, 0, 5.0}), 5.0);
  EXPECT_DOUBLE_EQ(ch.sdf({0, 0, 1.0}), 1.0);
  EXPECT_DOUBLE_EQ(ch.sdf({0, 0, -1.0}), -1.0);
  EXPECT_DOUBLE_EQ(ch.normal({0, 0, 1.0}).z, 1.0);
  EXPECT_DOUBLE_EQ(ch.normal({0, 0, 9.0}).z, -1.0);
}

TEST(Geometry, PipeSdf) {
  dpd::PipeX pipe(3.0, 5.0, 5.0);
  EXPECT_DOUBLE_EQ(pipe.sdf({0, 5, 5}), 3.0);
  EXPECT_DOUBLE_EQ(pipe.sdf({0, 8, 5}), 0.0);
  EXPECT_LT(pipe.sdf({0, 9, 5}), 0.0);
  const auto n = pipe.normal({0, 7, 5});
  EXPECT_NEAR(n.y, -1.0, 1e-9);
}

TEST(Geometry, CavitySdfUnion) {
  dpd::ChannelWithCavityZ g(4.0, 10.0, 14.0, 3.0);
  EXPECT_GT(g.sdf({5.0, 0.0, 2.0}), 0.0);    // channel interior
  EXPECT_GT(g.sdf({12.0, 0.0, 5.0}), 0.0);   // cavity interior
  EXPECT_LT(g.sdf({5.0, 0.0, 5.0}), 0.0);    // above channel, outside cavity
  EXPECT_LT(g.sdf({12.0, 0.0, 7.5}), 0.0);   // above cavity roof
}

TEST(Dpd, PairSearchMatchesBruteForce) {
  auto prm = periodic_box(6.0);
  dpd::DpdSystem sys(prm, std::make_shared<dpd::NoWalls>());
  sys.fill(3.0, dpd::kSolvent, 5);
  std::set<std::pair<std::size_t, std::size_t>> cell_pairs;
  sys.for_each_pair([&](std::size_t i, std::size_t j, const dpd::Vec3&, double) {
    cell_pairs.insert({std::min(i, j), std::max(i, j)});
  });
  // brute force
  std::set<std::pair<std::size_t, std::size_t>> bf_pairs;
  const auto& pos = sys.positions();
  for (std::size_t i = 0; i < sys.size(); ++i)
    for (std::size_t j = i + 1; j < sys.size(); ++j)
      if (sys.min_image(pos[i], pos[j]).norm2() < 1.0) bf_pairs.insert({i, j});
  EXPECT_EQ(cell_pairs, bf_pairs);
}

TEST(Dpd, ForcesConserveMomentum) {
  auto prm = periodic_box();
  dpd::DpdSystem sys(prm, std::make_shared<dpd::NoWalls>());
  sys.fill(3.0, dpd::kSolvent, 21);
  sys.compute_forces();
  dpd::Vec3 f{};
  for (const auto& fi : sys.forces()) f += fi;
  EXPECT_NEAR(f.x, 0.0, 1e-9);
  EXPECT_NEAR(f.y, 0.0, 1e-9);
  EXPECT_NEAR(f.z, 0.0, 1e-9);
}

TEST(Dpd, MomentumConservedOverTime) {
  auto prm = periodic_box();
  dpd::DpdSystem sys(prm, std::make_shared<dpd::NoWalls>());
  sys.fill(3.0, dpd::kSolvent, 33);
  const dpd::Vec3 p0 = sys.total_momentum();
  for (int s = 0; s < 50; ++s) sys.step();
  const dpd::Vec3 p1 = sys.total_momentum();
  EXPECT_NEAR(p1.x - p0.x, 0.0, 1e-8);
  EXPECT_NEAR(p1.y - p0.y, 0.0, 1e-8);
  EXPECT_NEAR(p1.z - p0.z, 0.0, 1e-8);
}

TEST(Dpd, ThermostatHoldsTemperature) {
  auto prm = periodic_box();
  prm.kBT = 1.0;
  prm.dt = 0.01;
  dpd::DpdSystem sys(prm, std::make_shared<dpd::NoWalls>());
  sys.fill(3.0, dpd::kSolvent, 17);
  // equilibrate, then average T over a window
  for (int s = 0; s < 200; ++s) sys.step();
  double T = 0.0;
  const int win = 200;
  for (int s = 0; s < win; ++s) {
    sys.step();
    T += sys.kinetic_temperature();
  }
  T /= win;
  // Groot-Warren report a few % offset at dt = 0.01-0.05
  EXPECT_NEAR(T, prm.kBT, 0.06);
}

TEST(Dpd, DeterministicPairNoise) {
  // same (step, i, j) must give the same variate; symmetric in i, j
  const double z1 = dpd::pair_gaussian_like(42, 3, 17);
  const double z2 = dpd::pair_gaussian_like(42, 17, 3);
  const double z3 = dpd::pair_gaussian_like(43, 3, 17);
  EXPECT_DOUBLE_EQ(z1, z2);
  EXPECT_NE(z1, z3);
  // zero mean, unit variance over many draws
  double m = 0.0, v = 0.0;
  const int n = 20000;
  for (int k = 0; k < n; ++k) {
    const double z = dpd::pair_gaussian_like(k, 1, 2);
    m += z;
    v += z * z;
  }
  m /= n;
  v = v / n - m * m;
  EXPECT_NEAR(m, 0.0, 0.02);
  EXPECT_NEAR(v, 1.0, 0.03);
}

TEST(Dpd, WallsKeepParticlesInside) {
  dpd::DpdParams prm;
  prm.box = {8.0, 8.0, 6.0};
  prm.periodic = {true, true, false};
  dpd::DpdSystem sys(prm, std::make_shared<dpd::ChannelZ>(6.0));
  sys.fill(3.0, dpd::kSolvent, 9, 0.1);
  for (int s = 0; s < 200; ++s) sys.step();
  for (const auto& p : sys.positions()) {
    EXPECT_GE(p.z, 0.0);
    EXPECT_LE(p.z, 6.0);
  }
}

TEST(Dpd, PoiseuilleProfileParabolic) {
  // Body-force-driven flow between plates: steady profile is parabolic with
  // centerline speed g H^2 / (8 nu_kinematic). We check shape (parabola fit)
  // and symmetry rather than the absolute viscosity.
  dpd::DpdParams prm;
  prm.box = {10.0, 6.0, 8.0};
  prm.periodic = {true, true, false};
  prm.dt = 0.01;
  dpd::DpdSystem sys(prm, std::make_shared<dpd::ChannelZ>(8.0));
  sys.fill(3.0, dpd::kSolvent, 3, 0.1);
  const double g = 0.06;
  sys.set_body_force([g](const dpd::Vec3&, dpd::Species) { return dpd::Vec3{g, 0, 0}; });

  for (int s = 0; s < 800; ++s) sys.step();  // develop the flow
  dpd::SamplerParams sp;
  sp.nx = 1;
  sp.ny = 1;
  sp.nz = 16;
  dpd::FieldSampler sampler(sys, sp);
  for (int s = 0; s < 1200; ++s) {
    sys.step();
    sampler.accumulate(sys);
  }
  auto prof = sampler.snapshot();
  // centerline > near-wall; symmetric within sampling noise
  const double center = 0.5 * (prof[7] + prof[8]);
  EXPECT_GT(center, 2.0 * prof[0]);
  EXPECT_GT(center, 0.1);
  EXPECT_NEAR(prof[3], prof[12], 0.25 * center);
  // parabola through (z0, u0) and center should predict quarter points
  const double H = 8.0;
  auto z_of = [H](int b) { return (b + 0.5) * H / 16.0; };
  auto parab = [&](double z) { return center * (1.0 - std::pow((z - H / 2) / (H / 2), 2)); };
  EXPECT_NEAR(prof[4], parab(z_of(4)), 0.25 * center);
  EXPECT_NEAR(prof[11], parab(z_of(11)), 0.25 * center);
}

TEST(Dpd, FrozenParticlesDoNotMove) {
  auto prm = periodic_box();
  dpd::DpdSystem sys(prm, std::make_shared<dpd::NoWalls>());
  sys.fill(3.0, dpd::kSolvent, 13);
  const std::size_t i = sys.add_particle({4.0, 4.0, 4.0}, {}, dpd::kPlatelet);
  sys.frozen()[i] = 1;
  for (int s = 0; s < 50; ++s) sys.step();
  EXPECT_DOUBLE_EQ(sys.positions()[i].x, 4.0);
  EXPECT_DOUBLE_EQ(sys.positions()[i].y, 4.0);
  EXPECT_DOUBLE_EQ(sys.positions()[i].z, 4.0);
}

TEST(Dpd, RemoveParticlesRemapsModules) {
  auto prm = periodic_box();
  dpd::DpdSystem sys(prm, std::make_shared<dpd::NoWalls>());
  auto bonds = std::make_shared<dpd::BondSet>();
  sys.add_module(bonds);
  const auto a = sys.add_particle({1, 1, 1}, {}, dpd::kSolvent);
  const auto b = sys.add_particle({1.4, 1, 1}, {}, dpd::kSolvent);
  const auto c = sys.add_particle({2, 2, 2}, {}, dpd::kSolvent);
  bonds->add_bond(a, b, 0.4, 10.0);
  bonds->add_bond(b, c, 1.0, 10.0);
  sys.remove_particles({c});
  EXPECT_EQ(bonds->size(), 1u);  // bond to removed particle dropped
  EXPECT_EQ(sys.size(), 2u);
  sys.remove_particles({a});
  EXPECT_EQ(bonds->size(), 0u);
}

TEST(FlowBc, InsertsAndDeletes) {
  dpd::DpdParams prm;
  prm.box = {12.0, 5.0, 5.0};
  prm.periodic = {false, true, true};
  dpd::DpdSystem sys(prm, std::make_shared<dpd::NoWalls>());
  sys.fill(3.0, dpd::kSolvent, 5);
  dpd::FlowBcParams fp;
  fp.axis = 0;
  fp.buffer_len = 2.0;
  fp.density = 3.0;
  fp.target_velocity = [](const dpd::Vec3&) { return dpd::Vec3{1.5, 0, 0}; };
  dpd::FlowBc bc(fp);
  const std::size_t n0 = sys.size();
  for (int s = 0; s < 400; ++s) {
    sys.step();
    bc.apply(sys);
  }
  EXPECT_GT(bc.inserted_total(), 0u);
  EXPECT_GT(bc.deleted_total(), 0u);
  // density roughly maintained (within 25%)
  EXPECT_NEAR(static_cast<double>(sys.size()), static_cast<double>(n0), 0.25 * n0);
  // all particles inside the domain along x
  for (const auto& p : sys.positions()) {
    EXPECT_GE(p.x, 0.0);
    EXPECT_LE(p.x, 12.0);
  }
  // mean velocity in the bulk should be dragged towards the inflow speed
  double um = 0.0;
  std::size_t cnt = 0;
  for (std::size_t i = 0; i < sys.size(); ++i) {
    if (sys.positions()[i].x < 4.0 || sys.positions()[i].x > 8.0) continue;
    um += sys.velocities()[i].x;
    ++cnt;
  }
  ASSERT_GT(cnt, 0u);
  EXPECT_GT(um / cnt, 0.5);
}

TEST(Bonds, HarmonicRestoringForce) {
  auto prm = periodic_box();
  dpd::DpdSystem sys(prm, std::make_shared<dpd::NoWalls>());
  auto bonds = std::make_shared<dpd::BondSet>();
  sys.add_module(bonds);
  const auto a = sys.add_particle({1.0, 1, 1}, {}, dpd::kRbcBead);
  const auto b = sys.add_particle({2.0, 1, 1}, {}, dpd::kRbcBead);
  bonds->add_bond(a, b, 0.5, 10.0);  // stretched by 0.5
  sys.compute_forces();
  // a pulled towards +x, b towards -x, magnitude ~ k dr (plus DPD pair force)
  EXPECT_GT(sys.forces()[a].x, 0.0);
  EXPECT_LT(sys.forces()[b].x, 0.0);
  EXPECT_NEAR(sys.forces()[a].x + sys.forces()[b].x, 0.0, 1e-12);
}

TEST(Bonds, RbcRingHoldsTogetherInFlow) {
  dpd::DpdParams prm;
  prm.box = {12.0, 6.0, 8.0};
  prm.periodic = {true, true, false};
  prm.dt = 0.005;
  dpd::DpdSystem sys(prm, std::make_shared<dpd::ChannelZ>(8.0));
  sys.fill(3.0, dpd::kSolvent, 3, 0.1);
  auto bonds = std::make_shared<dpd::BondSet>();
  sys.add_module(bonds);
  dpd::RbcRingParams rp;
  rp.center = {6.0, 3.0, 4.0};
  rp.radius = 1.5;
  rp.beads = 16;
  auto beads = dpd::make_rbc_ring(sys, *bonds, rp);
  EXPECT_EQ(beads.size(), 16u);
  EXPECT_EQ(bonds->size(), 32u);  // neighbour + bending springs
  sys.set_body_force([](const dpd::Vec3&, dpd::Species) { return dpd::Vec3{0.05, 0, 0}; });
  for (int s = 0; s < 500; ++s) sys.step();
  // ring integrity: no bond stretched beyond 80%
  EXPECT_LT(bonds->max_strain(sys), 0.8);
  // the cell was advected downstream (possibly wrapped)
  double cx = 0.0;
  for (auto i : beads) cx += sys.positions()[i].x;
  cx /= beads.size();
  EXPECT_NE(cx, 6.0);
}

TEST(Platelets, ActivationStateMachine) {
  dpd::DpdParams prm;
  prm.box = {8.0, 4.0, 6.0};
  prm.periodic = {true, true, false};
  prm.dt = 0.01;
  dpd::DpdSystem sys(prm, std::make_shared<dpd::ChannelZ>(6.0));
  dpd::PlateletParams pp;
  pp.adhesive_region = [](const dpd::Vec3& p) { return p.z < 3.0; };  // bottom wall
  pp.trigger_distance = 1.2;
  pp.activation_delay = 0.5;
  pp.bind_distance = 1.0;
  pp.bind_speed = 5.0;  // permissive so binding happens quickly in test
  auto model = std::make_shared<dpd::PlateletModel>(pp);
  sys.add_module(model);
  // a platelet gently drifting toward the bottom wall
  model->add_platelet(sys.add_particle({4.0, 2.0, 1.0}, {0, 0, -0.5}, dpd::kPlatelet));
  ASSERT_EQ(model->count(dpd::PlateletState::Passive), 1u);
  for (int s = 0; s < 300; ++s) {
    sys.step();
    model->update(sys);
  }
  EXPECT_EQ(model->count(dpd::PlateletState::Bound), 1u);
}

TEST(Platelets, NoActivationAwayFromAdhesiveRegion) {
  dpd::DpdParams prm;
  prm.box = {8.0, 4.0, 6.0};
  prm.periodic = {true, true, false};
  dpd::DpdSystem sys(prm, std::make_shared<dpd::ChannelZ>(6.0));
  dpd::PlateletParams pp;
  pp.adhesive_region = [](const dpd::Vec3&) { return false; };
  auto model = std::make_shared<dpd::PlateletModel>(pp);
  sys.add_module(model);
  model->add_platelet(sys.add_particle({4.0, 2.0, 0.5}, {}, dpd::kPlatelet));
  for (int s = 0; s < 200; ++s) {
    sys.step();
    model->update(sys);
  }
  EXPECT_EQ(model->count(dpd::PlateletState::Passive), 1u);
}

TEST(Platelets, AggregateGrowsOnBoundSeed) {
  dpd::DpdParams prm;
  prm.box = {6.0, 6.0, 6.0};
  prm.periodic = {true, true, false};
  prm.dt = 0.01;
  dpd::DpdSystem sys(prm, std::make_shared<dpd::ChannelZ>(6.0));
  dpd::PlateletParams pp;
  pp.adhesive_region = [](const dpd::Vec3& p) { return p.z < 2.0; };
  pp.activation_delay = 0.1;
  pp.bind_speed = 5.0;
  auto model = std::make_shared<dpd::PlateletModel>(pp);
  sys.add_module(model);
  sys.fill(3.0, dpd::kSolvent, 31, 0.1);  // solvent provides realistic drag
  // bound seed at the wall + a nearby platelet drifting towards it
  const auto seed = sys.add_particle({3.0, 3.0, 0.7}, {}, dpd::kPlatelet);
  model->add_platelet(seed);
  model->add_platelet(sys.add_particle({3.0, 3.0, 1.3}, {0, 0, -0.3}, dpd::kPlatelet));
  for (int s = 0; s < 1500 && model->count(dpd::PlateletState::Bound) < 2; ++s) {
    sys.step();
    model->update(sys);
  }
  EXPECT_EQ(model->count(dpd::PlateletState::Bound), 2u);
}

TEST(Sampler, BinsAndCenters) {
  auto prm = periodic_box(8.0);
  dpd::DpdSystem sys(prm, std::make_shared<dpd::NoWalls>());
  sys.add_particle({1.0, 1.0, 1.0}, {2.0, 0, 0}, dpd::kSolvent);
  sys.add_particle({7.0, 7.0, 7.0}, {4.0, 0, 0}, dpd::kSolvent);
  dpd::SamplerParams sp;
  sp.nx = 2;
  sp.ny = 2;
  sp.nz = 2;
  dpd::FieldSampler sampler(sys, sp);
  sampler.accumulate(sys);
  auto snap = sampler.snapshot();
  EXPECT_DOUBLE_EQ(snap[0], 2.0);
  EXPECT_DOUBLE_EQ(snap[7], 4.0);
  EXPECT_DOUBLE_EQ(snap[1], 0.0);
  const auto c0 = sampler.bin_center(0);
  EXPECT_DOUBLE_EQ(c0.x, 2.0);
  // snapshot resets the window
  auto snap2 = sampler.snapshot();
  EXPECT_DOUBLE_EQ(snap2[0], 0.0);
}

}  // namespace

namespace {

TEST(Viscometry, PoiseuilleFitIsClean) {
  dpd::ViscometryParams p;
  auto r = dpd::measure_viscosity(p);
  EXPECT_GT(r.dynamic_viscosity, 0.0);
  EXPECT_GT(r.u_max, 0.0);
  // parabola fits the interior profile well and the thermostat held
  EXPECT_LT(r.fit_residual, 0.15);
  EXPECT_NEAR(r.measured_temperature, 1.0, 0.08);
  // Groot-Warren fluids at rho=3, a=25, gamma=4.5 have nu ~ O(0.3-1.5)
  EXPECT_GT(r.kinematic_viscosity, 0.1);
  EXPECT_LT(r.kinematic_viscosity, 5.0);
}

TEST(Viscometry, ViscosityGrowsWithGamma) {
  dpd::ViscometryParams lo, hi;
  for (auto& row : hi.dpd.gamma) row.fill(13.5);  // 3x the dissipation
  auto rlo = dpd::measure_viscosity(lo);
  auto rhi = dpd::measure_viscosity(hi);
  // DPD viscosity grows sub-linearly in gamma (the kinetic contribution
  // shrinks as the dissipative one grows); expect a clear but modest rise
  EXPECT_GT(rhi.dynamic_viscosity, 1.1 * rlo.dynamic_viscosity);
}

TEST(Viscometry, IndependentOfDrivingForce) {
  // mu is a fluid property: halving the body force should give (nearly)
  // the same fit
  dpd::ViscometryParams a, b;
  b.body_force = 0.5 * a.body_force;
  b.seed = 11;
  auto ra = dpd::measure_viscosity(a);
  auto rb = dpd::measure_viscosity(b);
  EXPECT_NEAR(rb.dynamic_viscosity / ra.dynamic_viscosity, 1.0, 0.2);
}

}  // namespace

namespace {

TEST(Buffers, WindowsSteerLocalVelocities) {
  dpd::DpdParams prm;
  prm.box = {12.0, 6.0, 6.0};
  prm.periodic = {true, true, true};
  prm.dt = 0.01;
  dpd::DpdSystem sys(prm, std::make_shared<dpd::NoWalls>());
  sys.fill(3.0, dpd::kSolvent, 19);

  dpd::BufferZones zones;
  dpd::BufferWindow w1;
  w1.name = "Gamma_I1";
  w1.lo = {0.0, 0.0, 0.0};
  w1.hi = {2.0, 6.0, 6.0};
  w1.relax = 0.4;
  dpd::BufferWindow w2 = w1;
  w2.name = "Gamma_I2";
  w2.lo = {10.0, 0.0, 0.0};
  w2.hi = {12.0, 6.0, 6.0};
  zones.add_window(w1);
  zones.add_window(w2);
  // shared field with a spatial profile: u = 1 + z/6 (periodic x keeps the
  // windows populated)
  zones.set_shared_target([](const dpd::Vec3& p) {
    return dpd::Vec3{1.0 + p.z / 6.0, 0.0, 0.0};
  });

  for (int s = 0; s < 200; ++s) {
    sys.step();
    zones.apply(sys);
  }
  EXPECT_GT(zones.count_inside(sys, 0), 20u);
  EXPECT_GT(zones.count_inside(sys, 1), 20u);
  // each window's particles track the local target (thermal noise ~1)
  EXPECT_LT(zones.mismatch(sys, 0), 1.6);
  EXPECT_LT(zones.mismatch(sys, 1), 1.6);
  // windowed mean streamwise velocity near the imposed mean (~1.5)
  double u1 = 0.0, u2 = 0.0;
  std::size_t c1 = 0, c2 = 0;
  for (std::size_t i = 0; i < sys.size(); ++i) {
    const auto& p = sys.positions()[i];
    if (p.x < 2.0) { u1 += sys.velocities()[i].x; ++c1; }
    if (p.x > 10.0) { u2 += sys.velocities()[i].x; ++c2; }
  }
  EXPECT_NEAR(u1 / static_cast<double>(c1), 1.5, 0.5);
  EXPECT_NEAR(u2 / static_cast<double>(c2), 1.5, 0.5);
}

TEST(Buffers, FrozenParticlesExempt) {
  dpd::DpdParams prm;
  prm.box = {4.0, 4.0, 4.0};
  dpd::DpdSystem sys(prm, std::make_shared<dpd::NoWalls>());
  const auto i = sys.add_particle({1.0, 1.0, 1.0}, {}, dpd::kPlatelet);
  sys.frozen()[i] = 1;
  dpd::BufferZones zones;
  dpd::BufferWindow w;
  w.lo = {0, 0, 0};
  w.hi = {4, 4, 4};
  w.relax = 1.0;
  w.target = [](const dpd::Vec3&) { return dpd::Vec3{9.0, 0, 0}; };
  zones.add_window(w);
  zones.apply(sys);
  EXPECT_DOUBLE_EQ(sys.velocities()[i].x, 0.0);
}

}  // namespace

namespace {

TEST(Bonds, RingStretchesUnderOpposingLoad) {
  // Optical-tweezers-style RBC validation (Fedosov et al.): pull the two
  // ends of a ring apart; the axial diameter grows, the transverse shrinks,
  // and stiffer rings deform less.
  auto stretch = [](double k_spring) {
    dpd::DpdParams prm;
    prm.box = {16.0, 8.0, 8.0};
    prm.periodic = {true, true, true};
    prm.dt = 0.005;
    dpd::DpdSystem sys(prm, std::make_shared<dpd::NoWalls>());
    auto bonds = std::make_shared<dpd::BondSet>();
    sys.add_module(bonds);
    dpd::RbcRingParams rp;
    rp.center = {8.0, 4.0, 4.0};
    rp.radius = 2.0;
    rp.beads = 16;
    rp.k_spring = k_spring;
    rp.k_bend = 0.25 * k_spring;
    auto beads = dpd::make_rbc_ring(sys, *bonds, rp);
    // constant pulling load on the two x-extreme beads, applied as a
    // per-step velocity impulse F dt (equivalent to a constant force)
    const std::size_t right = beads[0], left = beads[8];
    for (int s = 0; s < 1500; ++s) {
      sys.velocities()[right] += dpd::Vec3{6.0 * prm.dt, 0, 0};
      sys.velocities()[left] -= dpd::Vec3{6.0 * prm.dt, 0, 0};
      sys.step();
    }
    const double dx = sys.min_image(sys.positions()[left], sys.positions()[right]).norm();
    return dx;
  };
  const double soft = stretch(40.0);
  const double stiff = stretch(400.0);
  // both stretch beyond the rest diameter (4.0); the soft ring stretches more
  EXPECT_GT(soft, 4.2);
  EXPECT_GT(soft, stiff);
}

}  // namespace

namespace {

TEST(Dpd, TinyPeriodicBoxCountsPairsOnce) {
  // 2 cells per periodic dimension: a configuration where a naive
  // half-stencil cell list would double-count every cross-cell pair.
  dpd::DpdParams prm;
  prm.box = {2.5, 2.5, 2.5};
  prm.periodic = {true, true, true};
  dpd::DpdSystem sys(prm, std::make_shared<dpd::NoWalls>());
  sys.fill(3.0, dpd::kSolvent, 77);
  std::map<std::pair<std::size_t, std::size_t>, int> visits;
  sys.for_each_pair([&](std::size_t i, std::size_t j, const dpd::Vec3&, double) {
    visits[{std::min(i, j), std::max(i, j)}]++;
  });
  ASSERT_FALSE(visits.empty());
  for (const auto& [pair, count] : visits) EXPECT_EQ(count, 1);
  // and against brute force
  std::size_t bf = 0;
  const auto& pos = sys.positions();
  for (std::size_t i = 0; i < sys.size(); ++i)
    for (std::size_t j = i + 1; j < sys.size(); ++j)
      if (sys.min_image(pos[i], pos[j]).norm2() < 1.0) ++bf;
  EXPECT_EQ(visits.size(), bf);
  // momentum conservation must survive in the tiny box too
  const auto p0 = sys.total_momentum();
  for (int s = 0; s < 20; ++s) sys.step();
  const auto p1 = sys.total_momentum();
  EXPECT_NEAR(p1.x, p0.x, 1e-9);
}

}  // namespace
