// Tests for the 1D arterial solver: characteristics algebra, single-vessel
// physics (wave speed, steady resistance), junction conservation laws,
// windkessel dynamics, and the network generators.

#include <gtest/gtest.h>

#include <cmath>

#include "nektar1d/artery.hpp"
#include "nektar1d/network.hpp"
#include "nektar1d/tree.hpp"

namespace {

nektar1d::VesselParams default_vessel() {
  nektar1d::VesselParams p;
  p.length = 10.0;
  p.A0 = 0.5;
  p.beta = 1.0e5;
  p.elements = 8;
  p.order = 4;
  return p;
}

TEST(Artery, CharacteristicsRoundTrip) {
  nektar1d::Artery a(default_vessel());
  const double A = 0.47, U = 12.0;
  const double w1 = a.W1(A, U), w2 = a.W2(A, U);
  double A2, U2;
  a.from_characteristics(w1, w2, A2, U2);
  EXPECT_NEAR(A2, A, 1e-12);
  EXPECT_NEAR(U2, U, 1e-12);
}

TEST(Artery, PressureTubeLaw) {
  nektar1d::Artery a(default_vessel());
  EXPECT_DOUBLE_EQ(a.pressure(a.params().A0), 0.0);
  EXPECT_GT(a.pressure(1.2 * a.params().A0), 0.0);
  EXPECT_LT(a.pressure(0.8 * a.params().A0), 0.0);
}

TEST(Artery, RestStateStaysAtRest) {
  nektar1d::Artery a(default_vessel());
  for (int s = 0; s < 100; ++s) a.step(1e-4);
  for (std::size_t i = 0; i < a.num_nodes(); ++i) {
    EXPECT_NEAR(a.A()[i], a.params().A0, 1e-12);
    EXPECT_NEAR(a.U()[i], 0.0, 1e-12);
  }
}

TEST(Artery, UnstableStepThrows) {
  nektar1d::Artery a(default_vessel());
  a.set_left_ghost(1.5 * a.params().A0, 50.0);  // strong forcing
  // dt far above the CFL limit blows the state up; step() must detect the
  // invalid state instead of silently returning garbage.
  EXPECT_THROW(
      {
        for (int s = 0; s < 2000; ++s) a.step(5e-3);
      },
      std::runtime_error);
}

TEST(Network, SmallPulseTravelsAtWaveSpeed) {
  nektar1d::ArterialNetwork net;
  auto p = default_vessel();
  p.length = 40.0;
  p.elements = 32;
  p.Kr = 0.0;  // inviscid for a clean wave-speed measurement
  const int v = net.add_vessel(p);
  // tiny gaussian flow pulse at the inlet
  const double t0 = 0.01, sig = 2.5e-3, Qamp = 0.5;
  net.set_inlet_flow(v, [=](double t) {
    return Qamp * std::exp(-0.5 * std::pow((t - t0) / sig, 2));
  });
  // near-matched resistance outlet to minimise reflection
  const double c0 = net.vessel(v).c0();
  net.set_outlet_resistance(v, p.rho * c0 / p.A0);

  // track arrival (max |U|) at x = 30 cm
  const double dt = net.suggested_dt(0.25);
  double t_arrive = -1.0, umax = 0.0;
  while (net.time() < 0.2) {
    net.step(dt);
    // mid-node of the element containing x = 30
    const auto& a = net.vessel(v);
    for (std::size_t i = 0; i < a.num_nodes(); ++i) {
      if (std::fabs(a.x_of(i) - 30.0) > 0.7) continue;
      if (std::fabs(a.U()[i]) > umax) {
        umax = std::fabs(a.U()[i]);
        t_arrive = net.time();
      }
    }
  }
  ASSERT_GT(umax, 0.0);
  const double expected = t0 + 30.0 / c0;
  EXPECT_NEAR(t_arrive, expected, 0.15 * expected);
}

TEST(Network, SteadyResistanceOutletMatchesOhm) {
  nektar1d::ArterialNetwork net;
  auto p = default_vessel();
  const int v = net.add_vessel(p);
  const double Q0 = 2.0, R = 2.0e3;
  net.set_inlet_flow(v, [=](double t) { return Q0 * std::min(1.0, t / 0.02); });
  net.set_outlet_resistance(v, R);
  const double dt = net.suggested_dt(0.25);
  while (net.time() < 2.5) net.step(dt);
  EXPECT_NEAR(net.flow_at(v, nektar1d::End::Right), Q0, 0.02 * Q0);
  EXPECT_NEAR(net.flow_at(v, nektar1d::End::Left), Q0, 0.02 * Q0);
  EXPECT_NEAR(net.pressure_at(v, nektar1d::End::Right), Q0 * R, 0.03 * Q0 * R);
}

TEST(Network, BifurcationConservesMassAndTotalPressure) {
  nektar1d::ArterialNetwork net;
  auto pp = default_vessel();
  const int parent = net.add_vessel(pp);
  auto pc = default_vessel();
  pc.A0 = 0.3;
  const int c1 = net.add_vessel(pc);
  const int c2 = net.add_vessel(pc);
  net.add_junction({{parent, nektar1d::End::Right},
                    {c1, nektar1d::End::Left},
                    {c2, nektar1d::End::Left}});
  net.set_inlet_flow(parent, [](double t) { return 3.0 * std::min(1.0, t / 0.02); });
  net.set_outlet_resistance(c1, 1.5e3);
  net.set_outlet_resistance(c2, 1.5e3);
  const double dt = net.suggested_dt(0.25);
  while (net.time() < 2.0) net.step(dt);

  const double Qp = net.flow_at(parent, nektar1d::End::Right);
  const double Q1 = net.flow_at(c1, nektar1d::End::Left);
  const double Q2 = net.flow_at(c2, nektar1d::End::Left);
  EXPECT_NEAR(Qp, Q1 + Q2, 0.02 * Qp);
  EXPECT_NEAR(Q1, Q2, 0.02 * Qp);  // symmetric daughters

  const auto& ap = net.vessel(parent);
  const auto& a1 = net.vessel(c1);
  const double ptp =
      ap.pressure(ap.A_right()) + 0.5 * pp.rho * ap.U_right() * ap.U_right();
  const double pt1 = a1.pressure(a1.A_left()) + 0.5 * pc.rho * a1.U_left() * a1.U_left();
  EXPECT_NEAR(ptp, pt1, 0.02 * std::fabs(ptp) + 10.0);
}

TEST(Network, MergeJunctionCombinesFlows) {
  // two vessels merging into one (vertebrals -> basilar pattern)
  nektar1d::ArterialNetwork net;
  auto p = default_vessel();
  p.A0 = 0.25;
  const int in1 = net.add_vessel(p);
  const int in2 = net.add_vessel(p);
  auto pb = default_vessel();
  pb.A0 = 0.4;
  const int out = net.add_vessel(pb);
  net.add_junction({{in1, nektar1d::End::Right},
                    {in2, nektar1d::End::Right},
                    {out, nektar1d::End::Left}});
  net.set_inlet_flow(in1, [](double t) { return 1.0 * std::min(1.0, t / 0.02); });
  net.set_inlet_flow(in2, [](double t) { return 0.5 * std::min(1.0, t / 0.02); });
  net.set_outlet_resistance(out, 2.0e3);
  const double dt = net.suggested_dt(0.25);
  while (net.time() < 5.0) net.step(dt);
  EXPECT_NEAR(net.flow_at(out, nektar1d::End::Right), 1.5, 0.05);
}

TEST(Network, WindkesselRelaxationTimescale) {
  nektar1d::ArterialNetwork net;
  auto p = default_vessel();
  const int v = net.add_vessel(p);
  const double Q0 = 1.0, Rp = 500.0, Rd = 4.0e3, C = 5.0e-5;
  net.set_inlet_flow(v, [=](double t) { return Q0 * std::min(1.0, t / 0.01); });
  net.set_outlet_rcr(v, Rp, Rd, C);
  const double dt = net.suggested_dt(0.25);
  // after >> Rd*C = 0.2 s (plus vessel-compliance relaxation) the outlet
  // pressure approaches Q (Rp + Rd)
  while (net.time() < 3.0) net.step(dt);
  EXPECT_NEAR(net.pressure_at(v, nektar1d::End::Right), Q0 * (Rp + Rd),
              0.05 * Q0 * (Rp + Rd));
}

TEST(Tree, FractalTreeShape) {
  nektar1d::FractalTreeParams p;
  p.generations = 3;
  auto t = nektar1d::fractal_tree(p);
  // binary tree: 1 + 2 + 4 + 8 = 15 vessels, 8 leaves
  EXPECT_EQ(t.net.num_vessels(), 15u);
  EXPECT_EQ(t.leaves.size(), 8u);
  // radii shrink with generation: leaf area < root area
  const double Aroot = t.net.vessel(t.root).params().A0;
  for (int leaf : t.leaves) EXPECT_LT(t.net.vessel(leaf).params().A0, Aroot);
}

TEST(Tree, MurrayLawHolds) {
  nektar1d::FractalTreeParams p;
  p.generations = 1;
  p.murray_gamma = 3.0;
  p.asymmetry = 0.8;
  auto t = nektar1d::fractal_tree(p);
  ASSERT_EQ(t.net.num_vessels(), 3u);
  auto radius = [&](int v) {
    return std::sqrt(t.net.vessel(v).params().A0 / M_PI);
  };
  const double rp = radius(0), r1 = radius(1), r2 = radius(2);
  EXPECT_NEAR(std::pow(rp, 3.0), std::pow(r1, 3.0) + std::pow(r2, 3.0), 1e-10);
  EXPECT_NEAR(r1 / r2, 0.8, 1e-10);
}

TEST(Tree, FractalTreeRunsStably) {
  nektar1d::FractalTreeParams p;
  p.generations = 2;
  auto t = nektar1d::fractal_tree(p);
  t.net.set_inlet_flow(t.root, [](double tt) { return 2.0 * std::min(1.0, tt / 0.02); });
  const double dt = t.net.suggested_dt(0.2);
  while (t.net.time() < 0.1) t.net.step(dt);
  // all leaves carry forward flow
  for (int leaf : t.leaves)
    EXPECT_GT(t.net.flow_at(leaf, nektar1d::End::Right), 0.0);
}

TEST(Cow, NetworkTopology) {
  auto c = nektar1d::cow_network();
  EXPECT_EQ(c.net.num_vessels(), 13u);
  EXPECT_EQ(c.efferents.size(), 6u);
}

TEST(Cow, PulsatileFlowDistributes) {
  auto c = nektar1d::cow_network();
  // physiological-ish pulsatile inflows (cm^3/s)
  auto carotid_q = [](double t) {
    const double base = 4.0, amp = 2.0, T = 0.9;
    return (base + amp * std::sin(2 * M_PI * t / T)) * std::min(1.0, t / 0.05);
  };
  auto vertebral_q = [](double t) {
    const double base = 1.5, amp = 0.7, T = 0.9;
    return (base + amp * std::sin(2 * M_PI * t / T)) * std::min(1.0, t / 0.05);
  };
  c.net.set_inlet_flow(c.left_carotid, carotid_q);
  c.net.set_inlet_flow(c.right_carotid, carotid_q);
  c.net.set_inlet_flow(c.left_vertebral, vertebral_q);
  c.net.set_inlet_flow(c.right_vertebral, vertebral_q);

  double dt = c.net.suggested_dt(0.2);
  while (c.net.time() < 0.4) {
    c.net.step(dt);
    dt = c.net.suggested_dt(0.2);
  }
  // every efferent receives forward flow; totals are plausible
  double q_out = 0.0;
  for (int v : c.efferents) {
    const double q = c.net.flow_at(v, nektar1d::End::Right);
    EXPECT_GT(q, 0.0);
    q_out += q;
  }
  const double q_in = c.net.flow_at(c.left_carotid, nektar1d::End::Left) +
                      c.net.flow_at(c.right_carotid, nektar1d::End::Left) +
                      c.net.flow_at(c.left_vertebral, nektar1d::End::Left) +
                      c.net.flow_at(c.right_vertebral, nektar1d::End::Left);
  // compliance stores/releases some volume over the cycle; allow 40%
  EXPECT_NEAR(q_out, q_in, 0.4 * q_in);
}

}  // namespace

namespace {

TEST(Artery, DgResolutionConvergence) {
  // steady flow through a single vessel: refining the DG mesh must reduce
  // the deviation of the interior flow from the (constant) steady state
  auto run = [](std::size_t elements, int order) {
    nektar1d::ArterialNetwork net;
    nektar1d::VesselParams p;
    p.length = 10.0;
    p.A0 = 0.5;
    p.beta = 1.0e5;
    p.elements = elements;
    p.order = order;
    const int v = net.add_vessel(p);
    net.set_inlet_flow(v, [](double t) { return 2.0 * std::min(1.0, t / 0.02); });
    net.set_outlet_resistance(v, 2.0e3);
    const double dt = net.suggested_dt(0.25);
    while (net.time() < 2.5) net.step(dt);
    // steady state: Q constant along the vessel; measure max deviation
    const auto& a = net.vessel(v);
    double qmin = 1e300, qmax = -1e300;
    for (std::size_t i = 0; i < a.num_nodes(); ++i) {
      const double q = a.A()[i] * a.U()[i];
      qmin = std::min(qmin, q);
      qmax = std::max(qmax, q);
    }
    return qmax - qmin;
  };
  const double coarse = run(4, 2);
  const double fine = run(12, 4);
  EXPECT_LT(fine, coarse + 1e-12);
  EXPECT_LT(fine, 0.02);  // fine solution is flat to 1% of Q
}

}  // namespace
