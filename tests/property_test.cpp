// Cross-module property sweeps (parameterised gtest): invariants that must
// hold across whole parameter ranges, not just single configurations.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <random>
#include <set>

#include "coupling/scales.hpp"
#include "dpd/geometry.hpp"
#include "dpd/system.hpp"
#include "la/cg.hpp"
#include "la/csr.hpp"
#include "machine/cost.hpp"
#include "machine/torus.hpp"
#include "mesh/graph.hpp"
#include "mesh/partition.hpp"
#include "nektar1d/artery.hpp"
#include "sem/discretization.hpp"
#include "sem/helmholtz.hpp"
#include "sem/operators.hpp"
#include "xmp/comm.hpp"

namespace {

// ---------------------------------------------------------------------------
// SEM: spectral convergence of the Helmholtz solver in the order P
// ---------------------------------------------------------------------------

class SemOrderSweep : public ::testing::TestWithParam<int> {};

double helmholtz_error(int P) {
  auto m = mesh::QuadMesh::lid_cavity(2);
  sem::Discretization d(m, P);
  sem::Operators ops(d);
  const double lambda = 1.0, nu = 1.0;
  sem::HelmholtzSolver hs(ops, lambda, nu, {mesh::kWall, mesh::kInlet});
  hs.options().rtol = 1e-13;
  auto exact = [](double x, double y) { return std::sin(M_PI * x) * std::sin(M_PI * y); };
  la::Vector f(d.num_nodes());
  for (std::size_t g = 0; g < d.num_nodes(); ++g)
    f[g] = (lambda + 2.0 * nu * M_PI * M_PI) * exact(d.node_x(g), d.node_y(g));
  la::Vector u;
  hs.solve(f, [&](double x, double y) { return exact(x, y); }, u);
  double e = 0.0;
  for (std::size_t g = 0; g < d.num_nodes(); ++g)
    e = std::max(e, std::fabs(u[g] - exact(d.node_x(g), d.node_y(g))));
  return e;
}

TEST_P(SemOrderSweep, HelmholtzErrorDecaysSpectrally) {
  const int P = GetParam();
  const double eP = helmholtz_error(P);
  const double eP2 = helmholtz_error(P + 2);
  // spectral convergence: two extra orders shrink the error by >= 5x until
  // hitting the solver tolerance floor
  if (eP > 1e-10) {
    EXPECT_LT(eP2, 0.2 * eP) << "P=" << P;
  }
}

INSTANTIATE_TEST_SUITE_P(Orders, SemOrderSweep, ::testing::Values(2, 3, 4, 5));

// ---------------------------------------------------------------------------
// SEM: operator identities for every order
// ---------------------------------------------------------------------------

class SemIdentitySweep : public ::testing::TestWithParam<int> {};

TEST_P(SemIdentitySweep, MassAndStiffnessIdentities) {
  const int P = GetParam();
  auto m = mesh::QuadMesh::channel(2.0, 1.0, 3, 2);
  sem::Discretization d(m, P);
  sem::Operators ops(d);
  // total mass = area
  double area = 0.0;
  for (std::size_t g = 0; g < d.num_nodes(); ++g) area += ops.mass_diag()[g];
  EXPECT_NEAR(area, 2.0, 1e-11);
  // K 1 = 0
  la::Vector ones(d.num_nodes(), 1.0), y;
  ops.apply_stiffness(ones, y);
  for (std::size_t g = 0; g < y.size(); ++g) EXPECT_NEAR(y[g], 0.0, 1e-10);
  // gradient of x is (1, 0) exactly for every P >= 1
  la::Vector fx(d.num_nodes());
  for (std::size_t g = 0; g < d.num_nodes(); ++g) fx[g] = d.node_x(g);
  la::Vector gx, gy;
  ops.gradient(fx, gx, gy);
  for (std::size_t g = 0; g < d.num_nodes(); ++g) {
    EXPECT_NEAR(gx[g], 1.0, 1e-10);
    EXPECT_NEAR(gy[g], 0.0, 1e-10);
  }
}

INSTANTIATE_TEST_SUITE_P(Orders, SemIdentitySweep, ::testing::Values(1, 2, 3, 5, 7, 9));

// ---------------------------------------------------------------------------
// DPD: thermostat equilibrium across time steps and densities
// ---------------------------------------------------------------------------

struct DpdCase {
  double dt;
  double density;
};

class DpdThermostatSweep : public ::testing::TestWithParam<DpdCase> {};

TEST_P(DpdThermostatSweep, TemperatureWithinGrootWarrenBand) {
  const auto c = GetParam();
  dpd::DpdParams prm;
  prm.box = {7.0, 7.0, 7.0};
  prm.periodic = {true, true, true};
  prm.dt = c.dt;
  dpd::DpdSystem sys(prm, std::make_shared<dpd::NoWalls>());
  sys.fill(c.density, dpd::kSolvent, 29);
  // warm up for fixed *physical* time: the random fill stores potential
  // energy that takes ~2-3 time units to thermalise away
  const int warmup = std::max(200, static_cast<int>(4.0 / c.dt));
  for (int s = 0; s < warmup; ++s) sys.step();
  double T = 0.0;
  const int win = 150;
  for (int s = 0; s < win; ++s) {
    sys.step();
    T += sys.kinetic_temperature();
  }
  T /= win;
  // Groot-Warren report growing offsets with dt; allow a dt-dependent band
  EXPECT_NEAR(T, 1.0, 0.03 + 6.0 * c.dt) << "dt=" << c.dt << " rho=" << c.density;
}

INSTANTIATE_TEST_SUITE_P(Cases, DpdThermostatSweep,
                         ::testing::Values(DpdCase{0.005, 3.0}, DpdCase{0.01, 3.0},
                                           DpdCase{0.02, 3.0}, DpdCase{0.01, 4.0},
                                           DpdCase{0.01, 5.0}));

// ---------------------------------------------------------------------------
// DPD: momentum conservation holds for any geometry-free configuration
// ---------------------------------------------------------------------------

class DpdMomentumSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(DpdMomentumSweep, DriftFreeUnderSeedVariation) {
  dpd::DpdParams prm;
  prm.box = {6.0, 6.0, 6.0};
  prm.periodic = {true, true, true};
  dpd::DpdSystem sys(prm, std::make_shared<dpd::NoWalls>());
  sys.fill(3.0, dpd::kSolvent, GetParam());
  const auto p0 = sys.total_momentum();
  for (int s = 0; s < 30; ++s) sys.step();
  const auto p1 = sys.total_momentum();
  EXPECT_NEAR(p1.x, p0.x, 1e-8);
  EXPECT_NEAR(p1.y, p0.y, 1e-8);
  EXPECT_NEAR(p1.z, p0.z, 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DpdMomentumSweep, ::testing::Values(1u, 2u, 3u, 4u, 5u));

// ---------------------------------------------------------------------------
// Partitioner: balance and coverage across graph families and part counts
// ---------------------------------------------------------------------------

struct PartCase {
  int kind;  // 0 = quad grid, 1 = hex grid, 2 = tube
  int parts;
};

class PartitionPropertySweep : public ::testing::TestWithParam<PartCase> {};

TEST_P(PartitionPropertySweep, BalancedCompleteAndCutConsistent) {
  const auto c = GetParam();
  mesh::ElementGraph g =
      c.kind == 0   ? mesh::quad_grid_graph(20, 20, 5, mesh::AdjacencyPolicy::FullDofWeighted)
      : c.kind == 1 ? mesh::hex_grid_graph(8, 8, 8, 4, mesh::AdjacencyPolicy::FullDofWeighted)
                    : mesh::tube_graph(16, 12, 3, 5, mesh::AdjacencyPolicy::FullDofWeighted);
  auto p = mesh::partition_graph(g, c.parts);
  // every vertex assigned, every part used
  std::set<int> used(p.part.begin(), p.part.end());
  EXPECT_EQ(used.size(), static_cast<std::size_t>(c.parts));
  auto q = mesh::evaluate_partition(g, p);
  EXPECT_LE(q.imbalance, 1.35);
  // pairwise volumes sum to the cut
  double pair_sum = 0.0;
  for (const auto& v : mesh::comm_volumes(g, p)) pair_sum += v.weight;
  EXPECT_NEAR(pair_sum, q.edge_cut, 1e-9);
  // max part comm <= total
  EXPECT_LE(q.max_part_comm, q.total_comm_volume + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Cases, PartitionPropertySweep,
                         ::testing::Values(PartCase{0, 2}, PartCase{0, 6}, PartCase{0, 16},
                                           PartCase{1, 4}, PartCase{1, 12}, PartCase{2, 8},
                                           PartCase{2, 24}));

// ---------------------------------------------------------------------------
// xmp: collective identities for every communicator size
// ---------------------------------------------------------------------------

class XmpSizeSweep : public ::testing::TestWithParam<int> {};

TEST_P(XmpSizeSweep, CollectiveIdentities) {
  const int n = GetParam();
  xmp::run(n, [n](xmp::Comm& world) {
    // allreduce sum of ranks = n(n-1)/2
    const double s = world.allreduce(static_cast<double>(world.rank()), xmp::Op::Sum);
    EXPECT_DOUBLE_EQ(s, n * (n - 1) / 2.0);
    // allgather then local reduce agrees with allreduce
    std::vector<double> mine = {static_cast<double>(world.rank())};
    auto all = world.allgatherv(std::span<const double>(mine));
    EXPECT_DOUBLE_EQ(std::accumulate(all.begin(), all.end(), 0.0), s);
    // split into singletons: every rank becomes rank 0 of a size-1 comm
    auto solo = world.split(world.rank(), 0);
    EXPECT_EQ(solo.size(), 1);
    EXPECT_EQ(solo.rank(), 0);
  });
}

INSTANTIATE_TEST_SUITE_P(Sizes, XmpSizeSweep, ::testing::Values(1, 2, 3, 5, 8));

// ---------------------------------------------------------------------------
// machine: torus route properties for assorted shapes
// ---------------------------------------------------------------------------

struct TorusCase {
  int nx, ny, nz;
};

class TorusSweep : public ::testing::TestWithParam<TorusCase> {};

TEST_P(TorusSweep, RoutesAreMinimalAndSymmetric) {
  const auto c = GetParam();
  machine::TorusSpec spec;
  spec.nx = c.nx;
  spec.ny = c.ny;
  spec.nz = c.nz;
  machine::Torus t(spec);
  std::mt19937 gen(4);
  std::uniform_int_distribution<int> pick(0, spec.total_nodes() - 1);
  for (int trial = 0; trial < 40; ++trial) {
    const int a = pick(gen), b = pick(gen);
    EXPECT_EQ(t.hops(a, b), t.hops(b, a));
    EXPECT_EQ(static_cast<int>(t.route(a, b, {0, 1, 2}).size()), t.hops(a, b));
    EXPECT_EQ(static_cast<int>(t.route(a, b, {2, 0, 1}).size()), t.hops(a, b));
    EXPECT_LE(t.hops(a, b), spec.nx / 2 + spec.ny / 2 + spec.nz / 2 + 3);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, TorusSweep,
                         ::testing::Values(TorusCase{4, 4, 4}, TorusCase{8, 4, 2},
                                           TorusCase{16, 8, 8}, TorusCase{5, 3, 2}));

// ---------------------------------------------------------------------------
// 1D arteries: characteristics invertibility over the physiological range
// ---------------------------------------------------------------------------

struct ArteryCase {
  double beta;
  double A_factor;
  double U;
};

class ArteryCharSweep : public ::testing::TestWithParam<ArteryCase> {};

TEST_P(ArteryCharSweep, CharacteristicsBijective) {
  const auto c = GetParam();
  nektar1d::VesselParams p;
  p.beta = c.beta;
  nektar1d::Artery a(p);
  const double A = c.A_factor * p.A0;
  const double w1 = a.W1(A, c.U), w2 = a.W2(A, c.U);
  double A2, U2;
  a.from_characteristics(w1, w2, A2, U2);
  EXPECT_NEAR(A2, A, 1e-10 * A);
  EXPECT_NEAR(U2, c.U, 1e-10 * (1.0 + std::fabs(c.U)));
  // subcritical check: |U| < c for physiological states
  EXPECT_LT(std::fabs(c.U), a.wave_speed(A));
}

INSTANTIATE_TEST_SUITE_P(States, ArteryCharSweep,
                         ::testing::Values(ArteryCase{1e5, 0.8, -20.0},
                                           ArteryCase{1e5, 1.0, 0.0},
                                           ArteryCase{1e5, 1.3, 60.0},
                                           ArteryCase{4e5, 0.9, 30.0},
                                           ArteryCase{4e4, 1.1, 10.0}));

// ---------------------------------------------------------------------------
// scales: Eq. (1) invariants over random scale maps
// ---------------------------------------------------------------------------

class ScaleSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(ScaleSweep, ReynoldsInvariantUnderRandomMaps) {
  std::mt19937 gen(GetParam());
  std::uniform_real_distribution<double> d(0.1, 10.0);
  coupling::ScaleMap s;
  s.L_ns = d(gen);
  s.L_dpd = 100.0 * d(gen);
  s.nu_ns = d(gen);
  s.nu_dpd = d(gen);
  const double v = d(gen);
  EXPECT_NEAR(s.reynolds_ns(v), s.reynolds_dpd(v), 1e-10 * (1.0 + s.reynolds_ns(v)));
  EXPECT_NEAR(s.velocity_dpd_to_ns(s.velocity_ns_to_dpd(v)), v, 1e-12 * v);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScaleSweep, ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

// ---------------------------------------------------------------------------
// CG: solves random SPD systems across sizes
// ---------------------------------------------------------------------------

class CgSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CgSizeSweep, RandomSpdSystems) {
  const std::size_t n = GetParam();
  std::mt19937 gen(static_cast<unsigned>(n));
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  // SPD: tridiagonal dominant + random symmetric perturbation
  std::vector<std::size_t> is, js;
  std::vector<double> vs;
  for (std::size_t i = 0; i < n; ++i) {
    is.push_back(i); js.push_back(i); vs.push_back(4.0 + std::fabs(dist(gen)));
    if (i + 1 < n) {
      const double o = dist(gen);
      is.push_back(i); js.push_back(i + 1); vs.push_back(o);
      is.push_back(i + 1); js.push_back(i); vs.push_back(o);
    }
  }
  auto A = la::CsrMatrix::from_triplets(n, n, is, js, vs);
  la::LinearOperator op = [&](const double* x, double* y) { A.matvec(x, y); };
  la::Vector xref(n);
  for (auto& v : xref) v = dist(gen);
  auto b = A.matvec(xref);
  la::Vector x(n, 0.0);
  auto res = la::cg_solve(op, b, x, la::jacobi_preconditioner(A.diagonal()), {.rtol = 1e-12});
  EXPECT_TRUE(res.converged);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], xref[i], 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CgSizeSweep, ::testing::Values(1u, 2u, 7u, 33u, 150u, 640u));

}  // namespace
