// Unit tests for the la substrate: SIMD kernels, dense/sparse algebra,
// CG + solution projection, symmetric eigensolver, statistics.

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "la/cg.hpp"
#include "la/csr.hpp"
#include "la/dense.hpp"
#include "la/eig.hpp"
#include "la/simd.hpp"
#include "la/stats.hpp"
#include "la/vector.hpp"

namespace {

std::mt19937 rng(12345);

la::Vector random_vector(std::size_t n, double lo = -1.0, double hi = 1.0) {
  std::uniform_real_distribution<double> d(lo, hi);
  la::Vector v(n);
  for (auto& x : v) x = d(rng);
  return v;
}

// ---------------- Vector ----------------

TEST(Vector, AlignmentAndValueSemantics) {
  la::Vector v(17, 3.0);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.data()) % la::kAlignment, 0u);
  la::Vector w = v;
  w[0] = -1.0;
  EXPECT_DOUBLE_EQ(v[0], 3.0);
  la::Vector m = std::move(w);
  EXPECT_DOUBLE_EQ(m[0], -1.0);
  EXPECT_TRUE(w.empty());
}

TEST(Vector, ResizeRefills) {
  la::Vector v(4, 1.0);
  v.resize(8, 2.0);
  EXPECT_EQ(v.size(), 8u);
  for (double x : v) EXPECT_DOUBLE_EQ(x, 2.0);
}

// ---------------- SIMD kernels (Table 1 correctness) ----------------

class SimdKernels : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SimdKernels, VmulMatchesScalar) {
  const std::size_t n = GetParam();
  auto x = random_vector(n), y = random_vector(n);
  la::Vector z1(n), z2(n);
  la::simd::vmul_scalar(z1.data(), x.data(), y.data(), n);
  la::simd::vmul(z2.data(), x.data(), y.data(), n);
  for (std::size_t i = 0; i < n; ++i) EXPECT_DOUBLE_EQ(z1[i], z2[i]);
}

TEST_P(SimdKernels, DotXyzMatchesScalar) {
  const std::size_t n = GetParam();
  auto x = random_vector(n), y = random_vector(n), z = random_vector(n);
  const double a = la::simd::dot_xyz_scalar(x.data(), y.data(), z.data(), n);
  const double b = la::simd::dot_xyz(x.data(), y.data(), z.data(), n);
  EXPECT_NEAR(a, b, 1e-12 * (1.0 + std::fabs(a)));
}

TEST_P(SimdKernels, DotXyyMatchesScalar) {
  const std::size_t n = GetParam();
  auto x = random_vector(n), y = random_vector(n);
  const double a = la::simd::dot_xyy_scalar(x.data(), y.data(), n);
  const double b = la::simd::dot_xyy(x.data(), y.data(), n);
  EXPECT_NEAR(a, b, 1e-12 * (1.0 + std::fabs(a)));
}

TEST_P(SimdKernels, AxpyXpayScale) {
  const std::size_t n = GetParam();
  auto x = random_vector(n);
  auto y0 = random_vector(n);
  la::Vector y = y0;
  la::simd::axpy(2.5, x.data(), y.data(), n);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(y[i], y0[i] + 2.5 * x[i], 1e-14);

  y = y0;
  la::simd::xpay(x.data(), -0.5, y.data(), n);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(y[i], x[i] - 0.5 * y0[i], 1e-14);

  y = y0;
  la::simd::scale(3.0, y.data(), n);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(y[i], 3.0 * y0[i], 1e-14);
}

TEST_P(SimdKernels, ScaleMatchesScalar) {
  const std::size_t n = GetParam();
  auto x = random_vector(n);
  la::Vector y = x;
  la::simd::scale_scalar(1.25, x.data(), n);
  la::simd::scale(1.25, y.data(), n);
  for (std::size_t i = 0; i < n; ++i) EXPECT_DOUBLE_EQ(x[i], y[i]);
}

TEST_P(SimdKernels, DpdPairForcesMatchScalar) {
  const std::size_t n = GetParam();
  auto dx = random_vector(n), dy = random_vector(n), dz = random_vector(n);
  auto dvx = random_vector(n), dvy = random_vector(n), dvz = random_vector(n);
  auto zeta = random_vector(n), a = random_vector(n), g = random_vector(n),
       sig = random_vector(n);
  la::Vector r2(n);
  for (std::size_t i = 0; i < n; ++i)
    r2[i] = dx[i] * dx[i] + dy[i] * dy[i] + dz[i] * dz[i];
  la::Vector fx1(n), fy1(n), fz1(n), fx2(n), fy2(n), fz2(n);
  la::simd::dpd_pair_forces_scalar(n, 1.0, 10.0, dx.data(), dy.data(), dz.data(), r2.data(),
                                   dvx.data(), dvy.data(), dvz.data(), zeta.data(), a.data(),
                                   g.data(), sig.data(), fx1.data(), fy1.data(), fz1.data());
  la::simd::dpd_pair_forces(n, 1.0, 10.0, dx.data(), dy.data(), dz.data(), r2.data(),
                            dvx.data(), dvy.data(), dvz.data(), zeta.data(), a.data(),
                            g.data(), sig.data(), fx2.data(), fy2.data(), fz2.data());
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(fx1[i], fx2[i], 1e-12 * (1.0 + std::fabs(fx1[i])));
    EXPECT_NEAR(fy1[i], fy2[i], 1e-12 * (1.0 + std::fabs(fy1[i])));
    EXPECT_NEAR(fz1[i], fz2[i], 1e-12 * (1.0 + std::fabs(fz1[i])));
  }
}

TEST(SimdDpdKernel, LaneValueIndependentOfBatchPosition) {
  // re-batching the same pairs (different n, different offsets) must give
  // bitwise-identical forces — the property the bitwise-restart argument in
  // docs/PERF.md relies on (the AVX2 tail is padded through the full-width
  // body, so a pair near the end of a short batch is computed exactly as in
  // the middle of a long one)
  const std::size_t n = 11;
  auto dx = random_vector(n), dy = random_vector(n), dz = random_vector(n);
  auto dvx = random_vector(n), dvy = random_vector(n), dvz = random_vector(n);
  auto zeta = random_vector(n), a = random_vector(n), g = random_vector(n),
       sig = random_vector(n);
  la::Vector r2(n);
  for (std::size_t i = 0; i < n; ++i)
    r2[i] = dx[i] * dx[i] + dy[i] * dy[i] + dz[i] * dz[i];
  la::Vector fx(n), fy(n), fz(n);
  la::simd::dpd_pair_forces(n, 1.0, 10.0, dx.data(), dy.data(), dz.data(), r2.data(),
                            dvx.data(), dvy.data(), dvz.data(), zeta.data(), a.data(),
                            g.data(), sig.data(), fx.data(), fy.data(), fz.data());
  for (std::size_t off = 1; off < n; ++off) {
    const std::size_t m = n - off;
    la::Vector gx(m), gy(m), gz(m);
    la::simd::dpd_pair_forces(m, 1.0, 10.0, dx.data() + off, dy.data() + off,
                              dz.data() + off, r2.data() + off, dvx.data() + off,
                              dvy.data() + off, dvz.data() + off, zeta.data() + off,
                              a.data() + off, g.data() + off, sig.data() + off, gx.data(),
                              gy.data(), gz.data());
    for (std::size_t i = 0; i < m; ++i) {
      EXPECT_EQ(fx[off + i], gx[i]) << "off=" << off << " i=" << i;
      EXPECT_EQ(fy[off + i], gy[i]);
      EXPECT_EQ(fz[off + i], gz[i]);
    }
  }
}

TEST_P(SimdKernels, AxpyNorm2MatchesSeparatePasses) {
  const std::size_t n = GetParam();
  const double a = 0.37;
  auto x = random_vector(n);
  auto y = random_vector(n);
  la::Vector yref = y, ysc = y;
  la::simd::axpy(a, x.data(), yref.data(), n);
  const double nref = la::simd::dot(yref.data(), yref.data(), n);

  const double nsc = la::simd::axpy_norm2_scalar(a, x.data(), ysc.data(), n);
  const double nd = la::simd::axpy_norm2(a, x.data(), y.data(), n);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(y[i], yref[i], 1e-14 * (1.0 + std::fabs(yref[i])));
    EXPECT_NEAR(ysc[i], yref[i], 1e-14 * (1.0 + std::fabs(yref[i])));
  }
  EXPECT_NEAR(nd, nref, 1e-12 * (1.0 + nref));
  EXPECT_NEAR(nsc, nref, 1e-12 * (1.0 + nref));
}

TEST_P(SimdKernels, AxpyDotMatchesSeparatePasses) {
  const std::size_t n = GetParam();
  const double a = -0.81;
  auto x = random_vector(n);
  auto y = random_vector(n);
  auto u = random_vector(n);
  auto v = random_vector(n);
  la::Vector yref = y, ysc = y;
  la::simd::axpy(a, x.data(), yref.data(), n);
  const double dref = la::simd::dot(u.data(), v.data(), n);

  const double dsc = la::simd::axpy_dot_scalar(a, x.data(), ysc.data(), u.data(), v.data(), n);
  const double dd = la::simd::axpy_dot(a, x.data(), y.data(), u.data(), v.data(), n);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(y[i], yref[i], 1e-14 * (1.0 + std::fabs(yref[i])));
    EXPECT_NEAR(ysc[i], yref[i], 1e-14 * (1.0 + std::fabs(yref[i])));
  }
  EXPECT_NEAR(dd, dref, 1e-12 * (1.0 + std::fabs(dref)));
  EXPECT_NEAR(dsc, dref, 1e-12 * (1.0 + std::fabs(dref)));
}

INSTANTIATE_TEST_SUITE_P(Sizes, SimdKernels,
                         ::testing::Values(0, 1, 3, 4, 7, 8, 15, 64, 1000, 4097));

// ---------------- batched SEM line kernels ----------------

namespace {

// straight-line reference: y[b*nvec+v] += coef*cs[v]*sum_m M[b*n1+m]*u[m*nvec+v]
void naive_lines_apply(const double* M, std::size_t n1, std::size_t nvec, const double* u,
                       double* y, const double* cs, double coef) {
  for (std::size_t b = 0; b < n1; ++b)
    for (std::size_t v = 0; v < nvec; ++v) {
      double s = 0.0;
      for (std::size_t m = 0; m < n1; ++m) s += M[b * n1 + m] * u[m * nvec + v];
      y[b * nvec + v] += coef * (cs ? cs[v] : 1.0) * s;
    }
}

// reference for lines_apply_t: y[l*n1+a] += coef*rs[l]*sum_m u[l*n1+m]*MT[m*n1+a]
void naive_lines_apply_t(const double* MT, std::size_t n1, std::size_t nlines, const double* u,
                         double* y, const double* rs, double coef) {
  for (std::size_t l = 0; l < nlines; ++l)
    for (std::size_t a = 0; a < n1; ++a) {
      double s = 0.0;
      for (std::size_t m = 0; m < n1; ++m) s += u[l * n1 + m] * MT[m * n1 + a];
      y[l * n1 + a] += coef * (rs ? rs[l] : 1.0) * s;
    }
}

}  // namespace

TEST(SimdLineKernels, LinesApplyMatchesNaive) {
  for (std::size_t n1 : {2u, 4u, 5u, 8u, 9u, 12u}) {
    for (std::size_t nvec : {1u, 3u, 4u, 5u, 16u, 25u}) {
      auto M = random_vector(n1 * n1);
      auto u = random_vector(n1 * nvec);
      auto cs = random_vector(nvec);
      la::Vector yref(n1 * nvec, 0.5), ysc(n1 * nvec, 0.5), yd(n1 * nvec, 0.5);
      naive_lines_apply(M.data(), n1, nvec, u.data(), yref.data(), cs.data(), 1.7);
      la::simd::lines_apply_scalar(M.data(), n1, nvec, u.data(), ysc.data(), cs.data(), 1.7);
      la::simd::lines_apply(M.data(), n1, nvec, u.data(), yd.data(), cs.data(), 1.7);
      for (std::size_t k = 0; k < n1 * nvec; ++k) {
        EXPECT_NEAR(ysc[k], yref[k], 1e-12 * (1.0 + std::fabs(yref[k])))
            << "n1=" << n1 << " nvec=" << nvec << " k=" << k;
        EXPECT_NEAR(yd[k], yref[k], 1e-12 * (1.0 + std::fabs(yref[k])));
      }
    }
  }
}

TEST(SimdLineKernels, LinesApplyTMatchesNaive) {
  for (std::size_t n1 : {2u, 4u, 5u, 8u, 9u, 12u}) {
    for (std::size_t nlines : {1u, 3u, 4u, 5u, 16u, 25u}) {
      auto MT = random_vector(n1 * n1);
      auto u = random_vector(n1 * nlines);
      auto rs = random_vector(nlines);
      la::Vector yref(n1 * nlines, -0.25), ysc(n1 * nlines, -0.25), yd(n1 * nlines, -0.25);
      naive_lines_apply_t(MT.data(), n1, nlines, u.data(), yref.data(), rs.data(), 0.9);
      la::simd::lines_apply_t_scalar(MT.data(), n1, nlines, u.data(), ysc.data(), rs.data(),
                                     0.9);
      la::simd::lines_apply_t(MT.data(), n1, nlines, u.data(), yd.data(), rs.data(), 0.9);
      for (std::size_t k = 0; k < n1 * nlines; ++k) {
        EXPECT_NEAR(ysc[k], yref[k], 1e-12 * (1.0 + std::fabs(yref[k])))
            << "n1=" << n1 << " nlines=" << nlines << " k=" << k;
        EXPECT_NEAR(yd[k], yref[k], 1e-12 * (1.0 + std::fabs(yref[k])));
      }
    }
  }
}

TEST(SimdLineKernels, NullScaleIsBitwiseIdenticalToOnes) {
  const std::size_t n1 = 7, nvec = 11;
  auto M = random_vector(n1 * n1);
  auto u = random_vector(n1 * nvec);
  la::Vector ones(nvec, 1.0), lones(n1, 1.0);
  la::Vector y1(n1 * nvec, 0.0), y2(n1 * nvec, 0.0);
  la::simd::lines_apply(M.data(), n1, nvec, u.data(), y1.data(), nullptr, 2.5);
  la::simd::lines_apply(M.data(), n1, nvec, u.data(), y2.data(), ones.data(), 2.5);
  for (std::size_t k = 0; k < n1 * nvec; ++k) EXPECT_EQ(y1[k], y2[k]);

  la::Vector t1(n1 * n1, 0.0), t2(n1 * n1, 0.0);
  la::simd::lines_apply_t(M.data(), n1, n1, u.data(), t1.data(), nullptr, 2.5);
  la::simd::lines_apply_t(M.data(), n1, n1, u.data(), t2.data(), lones.data(), 2.5);
  for (std::size_t k = 0; k < n1 * n1; ++k) EXPECT_EQ(t1[k], t2[k]);
}

TEST(SimdLineKernels, ColumnValueIndependentOfBatchPosition) {
  // re-batching a subset of columns into a narrower call must reproduce the
  // same outputs bitwise (the AVX2 tail is padded through the full 4-wide
  // body — the lane rule docs/PERF.md relies on)
  const std::size_t n1 = 6, nvec = 13;
  auto M = random_vector(n1 * n1);
  auto u = random_vector(n1 * nvec);
  auto cs = random_vector(nvec);
  la::Vector y(n1 * nvec, 0.0);
  la::simd::lines_apply(M.data(), n1, nvec, u.data(), y.data(), cs.data(), 1.3);

  for (std::size_t v0 : {0u, 2u, 5u, 9u}) {
    const std::size_t m = nvec - v0;
    la::Vector usub(n1 * m), cssub(m), ysub(n1 * m, 0.0);
    for (std::size_t r = 0; r < n1; ++r)
      for (std::size_t v = 0; v < m; ++v) usub[r * m + v] = u[r * nvec + v0 + v];
    for (std::size_t v = 0; v < m; ++v) cssub[v] = cs[v0 + v];
    la::simd::lines_apply(M.data(), n1, m, usub.data(), ysub.data(), cssub.data(), 1.3);
    for (std::size_t b = 0; b < n1; ++b)
      for (std::size_t v = 0; v < m; ++v)
        EXPECT_EQ(y[b * nvec + v0 + v], ysub[b * m + v]) << "v0=" << v0;
  }
}

TEST(SimdLineKernels, LineValueIndependentOfBatchPosition) {
  const std::size_t n1 = 5, nlines = 14;
  auto MT = random_vector(n1 * n1);
  auto u = random_vector(n1 * nlines);
  auto rs = random_vector(nlines);
  la::Vector y(n1 * nlines, 0.0);
  la::simd::lines_apply_t(MT.data(), n1, nlines, u.data(), y.data(), rs.data(), -0.6);

  for (std::size_t l0 : {1u, 4u, 10u, 13u}) {
    const std::size_t m = nlines - l0;
    la::Vector ysub(n1 * m, 0.0);
    la::simd::lines_apply_t(MT.data(), n1, m, u.data() + l0 * n1, ysub.data(),
                            rs.data() + l0, -0.6);
    for (std::size_t k = 0; k < n1 * m; ++k)
      EXPECT_EQ(y[l0 * n1 + k], ysub[k]) << "l0=" << l0;
  }
}

// ---------------- Dense ----------------

TEST(Dense, MatmulAgainstHandComputed) {
  la::DenseMatrix A(2, 3), B(3, 2);
  int v = 1;
  for (std::size_t i = 0; i < 2; ++i)
    for (std::size_t j = 0; j < 3; ++j) A(i, j) = v++;
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 2; ++j) B(i, j) = v++;
  auto C = la::DenseMatrix::matmul(A, B);
  // A = [1 2 3; 4 5 6], B = [7 8; 9 10; 11 12]
  EXPECT_DOUBLE_EQ(C(0, 0), 58.0);
  EXPECT_DOUBLE_EQ(C(0, 1), 64.0);
  EXPECT_DOUBLE_EQ(C(1, 0), 139.0);
  EXPECT_DOUBLE_EQ(C(1, 1), 154.0);
}

TEST(Dense, TransposeIdentityMatvec) {
  auto I = la::DenseMatrix::identity(5);
  auto x = random_vector(5);
  auto y = I.matvec(x);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_DOUBLE_EQ(y[i], x[i]);
  auto T = I.transposed();
  EXPECT_DOUBLE_EQ(T.frobenius(), I.frobenius());
}

TEST(Dense, LuSolveRecoversSolution) {
  const std::size_t n = 12;
  la::DenseMatrix A(n, n);
  std::uniform_real_distribution<double> d(-1.0, 1.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) A(i, j) = d(rng);
    A(i, i) += 4.0;  // diagonally dominant
  }
  auto xref = random_vector(n);
  auto b = A.matvec(xref);
  la::Vector x;
  ASSERT_TRUE(la::lu_solve(A, b, x));
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], xref[i], 1e-10);
}

TEST(Dense, LuSolveDetectsSingular) {
  la::DenseMatrix A(3, 3);  // all zero
  la::Vector b(3, 1.0), x;
  EXPECT_FALSE(la::lu_solve(A, b, x));
}

TEST(Dense, CholeskySolve) {
  const std::size_t n = 10;
  // SPD matrix: A = B^T B + I
  la::DenseMatrix B(n, n);
  std::uniform_real_distribution<double> d(-1.0, 1.0);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) B(i, j) = d(rng);
  auto A = la::DenseMatrix::matmul(B.transposed(), B);
  for (std::size_t i = 0; i < n; ++i) A(i, i) += 1.0;

  auto xref = random_vector(n);
  auto b = A.matvec(xref);
  la::DenseMatrix L = A;
  ASSERT_TRUE(la::cholesky(L));
  la::Vector x;
  la::cholesky_solve(L, b, x);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], xref[i], 1e-9);
}

TEST(Dense, CholeskyRejectsIndefinite) {
  la::DenseMatrix A(2, 2);
  A(0, 0) = 1.0;
  A(1, 1) = -1.0;
  EXPECT_FALSE(la::cholesky(A));
}

// ---------------- CSR ----------------

TEST(Csr, FromTripletsMergesDuplicates) {
  auto m = la::CsrMatrix::from_triplets(3, 3, {0, 0, 1, 2, 2}, {0, 0, 1, 2, 0},
                                        {1.0, 2.0, 5.0, 7.0, -1.0});
  EXPECT_EQ(m.nnz(), 4u);
  la::Vector x(3, 1.0);
  auto y = m.matvec(x);
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], 5.0);
  EXPECT_DOUBLE_EQ(y[2], 6.0);
}

TEST(Csr, MatvecMatchesDense) {
  const std::size_t n = 40;
  la::DenseMatrix D(n, n);
  std::vector<std::size_t> is, js;
  std::vector<double> vs;
  std::uniform_real_distribution<double> d(-1.0, 1.0);
  std::uniform_int_distribution<std::size_t> idx(0, n - 1);
  for (int k = 0; k < 300; ++k) {
    std::size_t i = idx(rng), j = idx(rng);
    double v = d(rng);
    D(i, j) += v;
    is.push_back(i);
    js.push_back(j);
    vs.push_back(v);
  }
  auto S = la::CsrMatrix::from_triplets(n, n, is, js, vs);
  auto x = random_vector(n);
  auto yd = D.matvec(x);
  auto ys = S.matvec(x);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(yd[i], ys[i], 1e-12);
}

TEST(Csr, Diagonal) {
  auto m = la::CsrMatrix::from_triplets(3, 3, {0, 1, 2, 0}, {0, 1, 2, 1},
                                        {2.0, 3.0, 4.0, 9.0});
  auto dvec = m.diagonal();
  EXPECT_DOUBLE_EQ(dvec[0], 2.0);
  EXPECT_DOUBLE_EQ(dvec[1], 3.0);
  EXPECT_DOUBLE_EQ(dvec[2], 4.0);
}

TEST(BlockCsr, MatvecMatchesDenseAssembly) {
  const std::size_t nb = 4, b = 3;
  la::BlockCsr B(nb, nb, b);
  la::DenseMatrix D(nb * b, nb * b);
  std::uniform_real_distribution<double> d(-1.0, 1.0);
  for (std::size_t i = 0; i < nb; ++i) {
    for (std::size_t j = 0; j < nb; ++j) {
      if ((i + j) % 2 == 1 && i != j) continue;  // sparse pattern
      la::DenseMatrix blk(b, b);
      for (std::size_t r = 0; r < b; ++r)
        for (std::size_t c = 0; c < b; ++c) {
          blk(r, c) = d(rng);
          D(i * b + r, j * b + c) = blk(r, c);
        }
      B.append_block(i, j, blk);
    }
    B.finish_row(i);
  }
  auto x = random_vector(nb * b);
  la::Vector y(nb * b);
  B.matvec(x.data(), y.data());
  auto yd = D.matvec(x);
  for (std::size_t i = 0; i < nb * b; ++i) EXPECT_NEAR(y[i], yd[i], 1e-12);
}

// ---------------- CG ----------------

la::CsrMatrix laplacian_1d(std::size_t n) {
  std::vector<std::size_t> is, js;
  std::vector<double> vs;
  for (std::size_t i = 0; i < n; ++i) {
    is.push_back(i); js.push_back(i); vs.push_back(2.0);
    if (i > 0) { is.push_back(i); js.push_back(i - 1); vs.push_back(-1.0); }
    if (i + 1 < n) { is.push_back(i); js.push_back(i + 1); vs.push_back(-1.0); }
  }
  return la::CsrMatrix::from_triplets(n, n, is, js, vs);
}

TEST(Cg, SolvesLaplacian) {
  const std::size_t n = 200;
  auto A = laplacian_1d(n);
  la::LinearOperator op = [&](const double* x, double* y) { A.matvec(x, y); };
  auto xref = random_vector(n);
  auto b = A.matvec(xref);
  la::Vector x(n, 0.0);
  auto res = la::cg_solve(op, b, x, la::identity_preconditioner(), {.rtol = 1e-12});
  EXPECT_TRUE(res.converged);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], xref[i], 1e-6);
}

TEST(Cg, JacobiPreconditionerReducesIterations) {
  const std::size_t n = 300;
  // badly scaled diagonal
  std::vector<std::size_t> is, js;
  std::vector<double> vs;
  for (std::size_t i = 0; i < n; ++i) {
    double s = 1.0 + 999.0 * static_cast<double>(i) / static_cast<double>(n - 1);
    is.push_back(i); js.push_back(i); vs.push_back(2.0 * s);
    if (i > 0) { is.push_back(i); js.push_back(i - 1); vs.push_back(-0.5); }
    if (i + 1 < n) { is.push_back(i); js.push_back(i + 1); vs.push_back(-0.5); }
  }
  auto A = la::CsrMatrix::from_triplets(n, n, is, js, vs);
  la::LinearOperator op = [&](const double* x, double* y) { A.matvec(x, y); };
  auto b = random_vector(n);
  auto diag = A.diagonal();

  la::Vector x1(n, 0.0), x2(n, 0.0);
  auto r1 = la::cg_solve(op, b, x1, la::identity_preconditioner(), {.rtol = 1e-10});
  auto r2 = la::cg_solve(op, b, x2, la::jacobi_preconditioner(diag), {.rtol = 1e-10});
  EXPECT_TRUE(r1.converged);
  EXPECT_TRUE(r2.converged);
  EXPECT_LT(r2.iterations, r1.iterations);
}

TEST(Cg, ZeroRhsImmediateConvergence) {
  auto A = laplacian_1d(10);
  la::LinearOperator op = [&](const double* x, double* y) { A.matvec(x, y); };
  la::Vector b(10, 0.0), x(10, 0.0);
  auto res = la::cg_solve(op, b, x, la::identity_preconditioner());
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.iterations, 0u);
}

TEST(Cg, SolutionProjectorCutsIterations) {
  // Unsteady-like sequence of solves with a smoothly varying RHS: the
  // projected initial guess must reduce iteration counts vs a zero guess
  // (the paper's "predicting a good initial state").
  const std::size_t n = 400;
  auto A = laplacian_1d(n);
  la::LinearOperator op = [&](const double* x, double* y) { A.matvec(x, y); };

  la::SolutionProjector proj(6);
  std::size_t iters_cold = 0, iters_warm = 0;
  for (int step = 0; step < 12; ++step) {
    la::Vector b(n);
    const double t = 0.05 * step;
    for (std::size_t i = 0; i < n; ++i) {
      const double s = static_cast<double>(i) / static_cast<double>(n);
      b[i] = std::sin(2 * M_PI * s + t) + 0.3 * std::cos(4 * M_PI * s - 0.5 * t);
    }
    la::Vector x_cold(n, 0.0);
    auto rc = la::cg_solve(op, b, x_cold, la::identity_preconditioner(), {.rtol = 1e-10});

    la::Vector x_warm;
    proj.predict(op, b, x_warm);
    auto rw = la::cg_solve(op, b, x_warm, la::identity_preconditioner(), {.rtol = 1e-10});
    proj.record(op, x_warm);

    if (step >= 4) {  // after warmup the basis should pay off
      iters_cold += rc.iterations;
      iters_warm += rw.iterations;
    }
    EXPECT_TRUE(rc.converged);
    EXPECT_TRUE(rw.converged);
  }
  EXPECT_LT(iters_warm, iters_cold / 2);
}

// ---------------- Eig ----------------

TEST(Eig, DiagonalMatrix) {
  la::DenseMatrix A(3, 3);
  A(0, 0) = 1.0;
  A(1, 1) = 5.0;
  A(2, 2) = 3.0;
  auto e = la::eig_symmetric(A);
  ASSERT_TRUE(e.converged);
  EXPECT_NEAR(e.values[0], 5.0, 1e-12);
  EXPECT_NEAR(e.values[1], 3.0, 1e-12);
  EXPECT_NEAR(e.values[2], 1.0, 1e-12);
}

TEST(Eig, ReconstructsMatrix) {
  const std::size_t n = 20;
  la::DenseMatrix A(n, n);
  std::uniform_real_distribution<double> d(-1.0, 1.0);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j <= i; ++j) {
      A(i, j) = d(rng);
      A(j, i) = A(i, j);
    }
  auto e = la::eig_symmetric(A);
  ASSERT_TRUE(e.converged);
  // A == V diag(l) V^T
  la::DenseMatrix R(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      double s = 0.0;
      for (std::size_t k = 0; k < n; ++k) s += e.vecs(i, k) * e.values[k] * e.vecs(j, k);
      R(i, j) = s;
    }
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) EXPECT_NEAR(R(i, j), A(i, j), 1e-9);
}

TEST(Eig, OrthonormalEigenvectors) {
  const std::size_t n = 15;
  la::DenseMatrix A(n, n);
  std::uniform_real_distribution<double> d(-1.0, 1.0);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j <= i; ++j) A(i, j) = A(j, i) = d(rng);
  auto e = la::eig_symmetric(A);
  for (std::size_t a = 0; a < n; ++a)
    for (std::size_t b = 0; b < n; ++b) {
      double s = 0.0;
      for (std::size_t k = 0; k < n; ++k) s += e.vecs(k, a) * e.vecs(k, b);
      EXPECT_NEAR(s, a == b ? 1.0 : 0.0, 1e-10);
    }
}

// ---------------- Stats ----------------

TEST(Stats, MomentsOfKnownSample) {
  std::vector<double> x = {1.0, 2.0, 3.0, 4.0, 5.0};
  auto m = la::stats::moments(x);
  EXPECT_DOUBLE_EQ(m.mean, 3.0);
  EXPECT_DOUBLE_EQ(m.variance, 2.5);
  EXPECT_NEAR(m.skewness, 0.0, 1e-12);
}

TEST(Stats, GaussianSampleLooksGaussian) {
  std::normal_distribution<double> nd(0.0, 1.03);
  std::vector<double> x(200000);
  for (auto& v : x) v = nd(rng);
  auto m = la::stats::moments(x);
  EXPECT_NEAR(m.mean, 0.0, 0.02);
  EXPECT_NEAR(m.stddev, 1.03, 0.02);
  auto h = la::stats::histogram(x, -5.0, 5.0, 100);
  EXPECT_LT(la::stats::gaussian_l1_distance(h, m.mean, m.stddev), 0.05);
}

TEST(Stats, HistogramMassNormalised) {
  auto x = std::vector<double>{0.1, 0.2, 0.3, 0.9, 1.5, -2.0};
  auto h = la::stats::histogram(x, -1.0, 1.0, 10);
  double mass = 0.0;
  for (double dgt : h.density) mass += dgt * h.bin_width;
  EXPECT_NEAR(mass, 1.0, 1e-12);
}

}  // namespace
