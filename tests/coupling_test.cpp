// Tests for the NektarG coupling core: unit scaling (Eq. 1), the MCI
// communicator hierarchy and 3-step interface exchange, geometric L4
// discovery, replica ensembles, multi-patch continuum coupling, and the
// continuum-DPD coupled driver.

#include <gtest/gtest.h>

#include <cmath>

#include "coupling/cdc.hpp"
#include "coupling/mci.hpp"
#include "coupling/multipatch.hpp"
#include "coupling/replica.hpp"
#include "coupling/scales.hpp"

namespace {

// ---------------- scales ----------------

TEST(Scales, Equation1RoundTrip) {
  coupling::ScaleMap s;
  s.L_ns = 1.0;    // 1 mm
  s.L_dpd = 0.005; // 5 um in mm
  s.nu_ns = 3.0;
  s.nu_dpd = 0.6;
  const double v = 2.7;
  EXPECT_NEAR(s.velocity_dpd_to_ns(s.velocity_ns_to_dpd(v)), v, 1e-12);
  // Eq. (1) literally
  EXPECT_DOUBLE_EQ(s.velocity_ns_to_dpd(v), v * (1.0 / 0.005) * (0.6 / 3.0));
}

TEST(Scales, ReynoldsConsistency) {
  coupling::ScaleMap s;
  s.L_ns = 0.5;   // 0.5 mm vessel in NS units (1 unit = 1 mm)
  s.L_dpd = 100;  // the same vessel in DPD units (1 unit = 5 um)
  s.nu_ns = 1.5;
  s.nu_dpd = 0.3;
  EXPECT_NEAR(s.reynolds_ns(3.0), s.reynolds_dpd(3.0), 1e-12);
}

TEST(Scales, TimeRatioMatchesDiffusiveScaling) {
  coupling::ScaleMap s;
  s.L_ns = 1.0;
  s.L_dpd = 0.1;
  s.nu_ns = 1.0;
  s.nu_dpd = 0.5;
  EXPECT_DOUBLE_EQ(s.time_ratio(), (0.1 * 0.1 / 0.5) / (1.0 / 1.0));
}

TEST(Scales, ValidateRejectsNonPositive) {
  coupling::ScaleMap s;
  s.nu_dpd = -1.0;
  EXPECT_THROW(s.validate(), std::invalid_argument);
}

TEST(Scales, TimeProgressionSchedule) {
  coupling::TimeProgression tp;
  tp.dt_ns = 1e-3;
  tp.dpd_per_ns = 20;
  tp.exchange_every_ns = 10;
  // the paper's numbers: tau = 10 dt_NS = 200 dt_DPD
  EXPECT_EQ(tp.dpd_steps_per_exchange(), 200);
  EXPECT_DOUBLE_EQ(tp.tau_ns(), 0.01);
}

// ---------------- MCI ----------------

TEST(Mci, HierarchyRanksAndSizes) {
  xmp::run(8, [](xmp::Comm& world) {
    coupling::MciConfig cfg;
    // 2 racks of 4; 4 tasks of 2 (tasks nest in racks)
    cfg.rack_of = {0, 0, 0, 0, 1, 1, 1, 1};
    cfg.task_of = {0, 0, 1, 1, 2, 2, 3, 3};
    auto mci = coupling::build_mci(world, cfg);
    EXPECT_EQ(mci.l2.size(), 4);
    EXPECT_EQ(mci.l3.size(), 2);
    EXPECT_EQ(mci.rack, world.rank() / 4);
    EXPECT_EQ(mci.task, world.rank() / 2);
  });
}

TEST(Mci, DeriveL4SelectsMembers) {
  xmp::run(4, [](xmp::Comm& world) {
    coupling::MciConfig cfg;
    cfg.rack_of = {0, 0, 0, 0};
    cfg.task_of = {0, 0, 0, 0};
    auto mci = coupling::build_mci(world, cfg);
    // only even l3 ranks touch the interface
    xmp::Comm l4 = coupling::derive_l4(mci.l3, mci.l3.rank() % 2 == 0);
    if (mci.l3.rank() % 2 == 0) {
      ASSERT_TRUE(l4.valid());
      EXPECT_EQ(l4.size(), 2);
    } else {
      EXPECT_FALSE(l4.valid());
    }
  });
}

TEST(Mci, InterfaceChannelThreeStepExchange) {
  // Two tasks of 3 ranks; interface of 6 samples; each task's L4 = all its
  // ranks; rank r of a task owns samples {r, r+3}. Task 0 sends values
  // 100+idx; task 1 sends 200+idx; both receive intact.
  xmp::run(6, [](xmp::Comm& world) {
    coupling::MciConfig cfg;
    cfg.rack_of = {0, 0, 0, 0, 0, 0};
    cfg.task_of = {0, 0, 0, 1, 1, 1};
    auto mci = coupling::build_mci(world, cfg);
    xmp::Comm l4 = coupling::derive_l4(mci.l3, true);
    // L4 roots: world rank 0 (task 0) and 3 (task 1)
    const int peer_root = mci.task == 0 ? 3 : 0;
    std::vector<std::size_t> my_samples = {static_cast<std::size_t>(l4.rank()),
                                           static_cast<std::size_t>(l4.rank() + 3)};
    coupling::InterfaceChannel ch(world, l4, peer_root, 6, my_samples, 42);

    const double base = mci.task == 0 ? 100.0 : 200.0;
    std::vector<double> vals;
    for (std::size_t s : my_samples) vals.push_back(base + static_cast<double>(s));
    ch.send(vals);
    auto got = ch.recv();
    const double peer_base = mci.task == 0 ? 200.0 : 100.0;
    ASSERT_EQ(got.size(), 2u);
    EXPECT_DOUBLE_EQ(got[0], peer_base + static_cast<double>(my_samples[0]));
    EXPECT_DOUBLE_EQ(got[1], peer_base + static_cast<double>(my_samples[1]));
  });
}

TEST(Mci, InterfaceChannelMessageCountIsRootToRoot) {
  // The whole exchange must cross the World communicator exactly twice
  // (one payload per direction) regardless of L4 sizes: the 3-step pattern
  // keeps high-volume traffic inside the groups.
  std::mutex mu;
  std::vector<xmp::TraceEvent> events;
  xmp::run(6, [&](xmp::Comm& world) {
    coupling::MciConfig cfg;
    cfg.rack_of = {0, 0, 0, 0, 0, 0};
    cfg.task_of = {0, 0, 0, 1, 1, 1};
    auto mci = coupling::build_mci(world, cfg);
    xmp::Comm l4 = coupling::derive_l4(mci.l3, true);
    const int peer_root = mci.task == 0 ? 3 : 0;
    std::vector<std::size_t> my_samples = {static_cast<std::size_t>(l4.rank()),
                                           static_cast<std::size_t>(l4.rank() + 3)};
    coupling::InterfaceChannel ch(world, l4, peer_root, 6, my_samples, 42);
    // Collective install: all ranks call set_trace; the sink goes live while
    // every rank is parked inside the call, so no prior traffic can leak in.
    world.set_trace([&](const xmp::TraceEvent& e) {
      if (e.tag == 42) {
        std::lock_guard lk(mu);
        events.push_back(e);
      }
    });
    std::vector<double> vals(2, 1.0);
    ch.send(vals);
    ch.recv();
    world.set_trace(nullptr);
  });
  ASSERT_EQ(events.size(), 2u);
  for (const auto& e : events) {
    EXPECT_TRUE((e.src_world == 0 && e.dst_world == 3) ||
                (e.src_world == 3 && e.dst_world == 0));
    EXPECT_EQ(e.bytes, 6 * sizeof(double));
  }
}

TEST(Mci, GeometricDiscoveryFindsOwners) {
  // 1 atomistic task (ranks 4,5) + 2 continuum tasks (0,1 and 2,3), each
  // continuum rank owning half of its task's x-range. Samples span [0, 4).
  xmp::run(6, [](xmp::Comm& world) {
    coupling::MciConfig cfg;
    cfg.rack_of = {0, 0, 0, 0, 0, 0};
    cfg.task_of = {0, 0, 1, 1, 2, 2};
    auto mci = coupling::build_mci(world, cfg);
    const int atomistic_task = 2;

    // 8 samples at x = 0.25, 0.75, ..., 3.75 (y = z = 0)
    std::vector<double> samples;
    if (mci.task == atomistic_task && mci.l3.rank() == 0)
      for (int k = 0; k < 8; ++k) samples.insert(samples.end(), {0.25 + 0.5 * k, 0.0, 0.0});

    // continuum task t owns x in [2t, 2t+2); within a task, rank r owns
    // [2t + r, 2t + r + 1)
    auto owns = [&](double x, double, double) {
      const double lo = 2.0 * mci.task + mci.l3.rank();
      return x >= lo && x < lo + 1.0;
    };
    auto res = coupling::discover_interface_owners(mci, atomistic_task, samples, owns);

    if (mci.task != atomistic_task) {
      // each continuum rank claims exactly 2 samples
      EXPECT_EQ(res.my_claims.size(), 2u);
      for (std::size_t idx : res.my_claims) {
        const double x = 0.25 + 0.5 * static_cast<double>(idx);
        const double lo = 2.0 * mci.task + mci.l3.rank();
        EXPECT_GE(x, lo);
        EXPECT_LT(x, lo + 1.0);
      }
    } else if (mci.l3.rank() == 0) {
      ASSERT_EQ(res.task_claims.size(), 2u);
      EXPECT_EQ(res.task_claims[0].first, 0);
      EXPECT_EQ(res.task_claims[1].first, 1);
      EXPECT_EQ(res.task_claims[0].second.size(), 4u);
      EXPECT_EQ(res.task_claims[1].second.size(), 4u);
    }
  });
}

// ---------------- replicas ----------------

TEST(Replica, SplitSizesAndIds) {
  xmp::run(7, [](xmp::Comm& world) {
    coupling::ReplicaEnsemble ens(world, 3);  // 7 ranks -> groups of 3,2,2
    EXPECT_GE(ens.replica_id(), 0);
    EXPECT_LT(ens.replica_id(), 3);
    const int sz = ens.replica_comm().size();
    EXPECT_TRUE(sz == 2 || sz == 3);
    // exactly one ensemble root
    const double roots = world.allreduce(ens.is_ensemble_root() ? 1.0 : 0.0, xmp::Op::Sum);
    EXPECT_DOUBLE_EQ(roots, 1.0);
  });
}

TEST(Replica, DistributeReachesEveryRank) {
  xmp::run(6, [](xmp::Comm& world) {
    coupling::ReplicaEnsemble ens(world, 3);
    std::vector<double> data;
    if (ens.is_ensemble_root()) data = {3.14, 1.59};
    auto got = ens.distribute(std::move(data));
    ASSERT_EQ(got.size(), 2u);
    EXPECT_DOUBLE_EQ(got[0], 3.14);
  });
}

TEST(Replica, GatherAverageAveragesReplicas) {
  xmp::run(6, [](xmp::Comm& world) {
    coupling::ReplicaEnsemble ens(world, 3);
    // replica j's root contributes the constant j
    std::vector<double> mine(4, static_cast<double>(ens.replica_id()));
    auto avg = ens.gather_average(mine);
    ASSERT_EQ(avg.size(), 4u);
    for (double v : avg) EXPECT_DOUBLE_EQ(v, 1.0);  // (0+1+2)/3
  });
}

// ---------------- multi-patch continuum coupling ----------------

TEST(MultiPatch, PoiseuilleAcrossThreePatches) {
  coupling::MultiPatchParams mp;
  mp.L = 6.0;
  mp.H = 1.0;
  mp.nx = 12;
  mp.ny = 2;
  mp.order = 5;
  mp.patches = 3;
  mp.overlap = 1;
  mp.ns.nu = 0.05;
  mp.ns.dt = 2e-3;
  const double Umax = 1.0;
  coupling::MultiPatchChannel chan(
      mp, [Umax](double y, double) { return 4.0 * Umax * y * (1.0 - y); });
  for (int s = 0; s < 500; ++s) chan.step();
  // the parabolic profile survives through all three patches
  for (double x : {1.0, 3.0, 5.0}) {
    EXPECT_NEAR(chan.evaluate_u(x, 0.5), Umax, 0.05) << "x=" << x;
    EXPECT_NEAR(chan.evaluate_v(x, 0.5), 0.0, 0.03);
  }
  // velocity is continuous across the artificial interfaces (Fig. 9)
  EXPECT_LT(chan.interface_jump(), 0.02 * Umax);
}

TEST(MultiPatch, SinglePatchDegeneratesToPlainSolver) {
  coupling::MultiPatchParams mp;
  mp.L = 2.0;
  mp.nx = 4;
  mp.ny = 2;
  mp.order = 4;
  mp.patches = 1;
  mp.ns.dt = 1e-3;
  coupling::MultiPatchChannel chan(mp, [](double y, double) { return y * (1.0 - y); });
  chan.step();
  EXPECT_EQ(chan.num_patches(), 1);
  EXPECT_DOUBLE_EQ(chan.interface_jump(), 0.0);
}

TEST(MultiPatch, RejectsOversizedOverlap) {
  coupling::MultiPatchParams mp;
  mp.nx = 8;
  mp.patches = 4;
  mp.overlap = 3;
  EXPECT_THROW(coupling::MultiPatchChannel(mp, [](double, double) { return 0.0; }),
               std::invalid_argument);
}

// ---------------- continuum-DPD coupling ----------------

TEST(Cdc, ScheduleCountsAndScaledVelocity) {
  // Continuum: steady Poiseuille channel. DPD box embedded mid-channel.
  auto m = mesh::QuadMesh::channel(4.0, 1.0, 8, 2);
  sem::Discretization d(m, 4);
  sem::NavierStokes2D::Params nsp;
  nsp.nu = 0.05;
  nsp.dt = 2e-3;
  sem::NavierStokes2D ns(d, nsp);
  ns.set_velocity_bc(mesh::kInlet,
                     [](double, double y, double) { return 4.0 * y * (1.0 - y); },
                     [](double, double, double) { return 0.0; });
  ns.set_natural_bc(mesh::kOutlet);
  for (int s = 0; s < 200; ++s) ns.step();  // develop the flow

  dpd::DpdParams dp;
  dp.box = {16.0, 6.0, 10.0};
  dp.periodic = {false, true, false};
  dp.dt = 0.01;
  dpd::DpdSystem sys(dp, std::make_shared<dpd::ChannelZ>(10.0));
  sys.fill(3.0, dpd::kSolvent, 13, 0.1);

  dpd::FlowBcParams fp;
  fp.axis = 0;
  fp.buffer_len = 2.0;
  fp.density = 3.0;
  dpd::FlowBc bc(fp);

  coupling::EmbeddedRegion region{1.5, 2.5, 0.0, 1.0};
  coupling::ScaleMap scales;
  scales.L_ns = 1.0;    // channel height in NS units
  scales.L_dpd = 10.0;  // the same height in DPD units (box height)
  scales.nu_ns = 0.05;
  scales.nu_dpd = 0.25;  // v_dpd = v_ns * (1/10) * 5 = 0.5 v_ns
  coupling::TimeProgression tp;
  tp.exchange_every_ns = 2;
  tp.dpd_per_ns = 5;

  coupling::ContinuumDpdCoupler cdc(ns, sys, bc, region, scales, tp);

  // centerline: u_ns ~ 1 -> imposed DPD speed ~ 50... scale check first:
  const auto v_mid = cdc.continuum_velocity_at({8.0, 3.0, 5.0});
  const double u_ns_mid = d.evaluate(ns.u(), 2.0, 0.5);
  EXPECT_NEAR(v_mid.x, scales.velocity_ns_to_dpd(u_ns_mid), 1e-9);

  std::size_t dpd_steps = 0;
  cdc.advance_interval([&] { ++dpd_steps; });
  EXPECT_EQ(dpd_steps, 10u);  // 2 NS steps x 5 DPD steps
  EXPECT_EQ(cdc.exchanges(), 1u);
}

TEST(Cdc, DpdFlowTracksContinuum) {
  // With a modest imposed velocity the DPD bulk flow should approach the
  // continuum field after several coupling intervals (Fig. 9 behaviour).
  auto m = mesh::QuadMesh::channel(4.0, 1.0, 8, 2);
  sem::Discretization d(m, 4);
  sem::NavierStokes2D::Params nsp;
  nsp.nu = 0.05;
  nsp.dt = 2e-3;
  sem::NavierStokes2D ns(d, nsp);
  ns.set_velocity_bc(mesh::kInlet,
                     [](double, double y, double) { return 4.0 * y * (1.0 - y); },
                     [](double, double, double) { return 0.0; });
  ns.set_natural_bc(mesh::kOutlet);
  for (int s = 0; s < 200; ++s) ns.step();

  dpd::DpdParams dp;
  dp.box = {16.0, 6.0, 10.0};
  dp.periodic = {false, true, false};
  dp.dt = 0.01;
  dpd::DpdSystem sys(dp, std::make_shared<dpd::ChannelZ>(10.0));
  sys.fill(3.0, dpd::kSolvent, 13, 0.1);

  dpd::FlowBcParams fp;
  fp.axis = 0;
  fp.buffer_len = 2.0;
  fp.density = 3.0;
  fp.relax = 0.3;
  dpd::FlowBc bc(fp);

  coupling::EmbeddedRegion region{1.5, 2.5, 0.0, 1.0};
  coupling::ScaleMap scales;
  scales.L_ns = 1.0;
  scales.L_dpd = 10.0;
  scales.nu_ns = 0.05;
  scales.nu_dpd = 2.5;  // v_dpd = v_ns * (1/10) * 50 = 5 v_ns -> max ~ 5
  coupling::TimeProgression tp;
  tp.exchange_every_ns = 2;
  tp.dpd_per_ns = 10;
  coupling::ContinuumDpdCoupler cdc(ns, sys, bc, region, scales, tp);

  dpd::SamplerParams sp;
  sp.nx = 4;
  sp.ny = 1;
  sp.nz = 5;
  dpd::FieldSampler sampler(sys, sp);
  for (int interval = 0; interval < 25; ++interval)
    cdc.advance_interval([&] {
      if (interval >= 15) sampler.accumulate(sys);
    });
  const double mism = cdc.interface_mismatch(sampler);
  // imposed centerline speed is ~5 in DPD units; mean mismatch across bins
  // should be well under that
  EXPECT_LT(mism, 1.0);
}

}  // namespace

#include "coupling/triple.hpp"

namespace {

TEST(TripleDecker, NestedScheduleAndVelocityCascade) {
  // NS channel -> DPD layer -> nested "MD" layer (finer particle system).
  // Verify the Fig.-5 nested schedule counts and that the imposed velocity
  // cascades through both Eq.-(1) maps with the right magnitude.
  auto m = mesh::QuadMesh::channel(4.0, 1.0, 8, 2);
  sem::Discretization d(m, 4);
  sem::NavierStokes2D::Params nsp;
  nsp.nu = 0.05;
  nsp.dt = 2e-3;
  sem::NavierStokes2D ns(d, nsp);
  ns.set_velocity_bc(mesh::kInlet,
                     [](double, double y, double) { return 4.0 * y * (1.0 - y); },
                     [](double, double, double) { return 0.0; });
  ns.set_natural_bc(mesh::kOutlet);
  for (int s = 0; s < 200; ++s) ns.step();

  dpd::DpdParams dp;
  dp.box = {16.0, 6.0, 10.0};
  dp.periodic = {false, true, false};
  dp.dt = 0.01;
  dpd::DpdSystem dpd_sys(dp, std::make_shared<dpd::ChannelZ>(10.0));
  dpd_sys.fill(3.0, dpd::kSolvent, 13, 0.1);
  dpd::FlowBcParams fp;
  fp.axis = 0;
  fp.relax = 0.3;
  dpd::FlowBc bc(fp);

  coupling::ScaleMap s1;
  s1.L_ns = 1.0;
  s1.L_dpd = 10.0;
  s1.nu_ns = 0.05;
  s1.nu_dpd = 2.5;  // NS -> DPD: x0.5
  coupling::TimeProgression tp;
  tp.exchange_every_ns = 2;
  tp.dpd_per_ns = 10;
  coupling::ContinuumDpdCoupler cdc(ns, dpd_sys, bc, {1.5, 2.5, 0.0, 1.0}, s1, tp);

  // MD layer: small periodic box nested mid-DPD-domain
  dpd::DpdParams mdp;
  mdp.box = {6.0, 6.0, 6.0};
  mdp.periodic = {true, true, true};
  mdp.dt = 0.002;
  dpd::DpdSystem md(mdp, std::make_shared<dpd::NoWalls>());
  md.fill(3.0, dpd::kSolvent, 21);

  dpd::BufferZones md_buf;
  dpd::BufferWindow w;
  w.name = "md-interface";
  w.lo = {0, 0, 0};
  w.hi = {6, 6, 6};  // whole box steered (strong coupling for the test)
  w.relax = 0.5;
  md_buf.add_window(w);

  coupling::ScaleMap s2;
  s2.L_ns = 10.0;  // the shared feature in DPD units
  s2.L_dpd = 40.0; // ... and in MD units: MD resolves it 4x finer
  s2.nu_ns = 2.5;
  s2.nu_dpd = 5.0;  // DPD -> MD: x(10/40)(5/2.5) = x0.5
  coupling::NestedRegion region{{6.0, 0.0, 4.0}, {12.0, 6.0, 10.0}};
  coupling::TripleDecker triple(cdc, md, md_buf, region, s2, /*md_per_dpd=*/4);

  std::size_t md_steps = 0;
  const int kIntervals = 20;  // enough for the DPD channel flow to develop
  for (int k = 0; k < kIntervals; ++k) triple.advance_interval([&] { ++md_steps; });

  // nested schedule: 2 NS x 10 DPD x 4 MD per interval
  EXPECT_EQ(md_steps, kIntervals * 2u * 10u * 4u);
  EXPECT_EQ(triple.exchanges(), static_cast<std::size_t>(kIntervals));
  EXPECT_EQ(dpd_sys.step_count(), kIntervals * 2u * 10u);
  EXPECT_EQ(md.step_count(), md_steps);

  // velocity cascade: the MD bulk flow should approach the DPD mean scaled
  // by the second map (which itself tracks the NS field). Probe an MD point
  // that maps into the developed mid-channel of the DPD layer (z_dpd = 5).
  const dpd::Vec3 probe{3.0, 3.0, 1.0};
  const dpd::Vec3 imposed = triple.dpd_velocity_at_md_point(probe);
  double um = 0.0;
  for (std::size_t i = 0; i < md.size(); ++i) um += md.velocities()[i].x;
  um /= static_cast<double>(md.size());
  EXPECT_GT(imposed.x, 0.05);  // the cascade transmits forward flow
  EXPECT_NEAR(um, imposed.x, 0.3 + 0.5 * imposed.x);
}

}  // namespace

namespace {

TEST(MultiPatch, InterfaceThroughAneurysmCavity) {
  // The paper's patch decomposition cuts patient-specific geometry wherever
  // the load balance wants; here a 2-patch split slices straight through
  // the aneurysm cavity and the coupled solution must stay continuous
  // across the interface, inside the sac included.
  coupling::MultiPatchParams mp;
  mp.L = 8.0;
  mp.H = 1.0;
  mp.nx = 16;
  mp.ny = 2;
  mp.order = 4;
  mp.patches = 2;
  mp.overlap = 1;
  mp.with_cavity = true;
  mp.cav_x0 = 3.0;
  mp.cav_x1 = 5.0;
  mp.cav_depth = 1.0;
  mp.ns.nu = 0.02;
  mp.ns.dt = 2e-3;
  coupling::MultiPatchChannel chan(
      mp, [](double y, double) { return 4.0 * y * (1.0 - y); });

  for (int s = 0; s < 400; ++s) chan.step();

  // channel interface continuity
  EXPECT_LT(chan.interface_jump(), 0.03);

  // continuity inside the cavity: compare the two patches at the interface
  // midline at cavity heights
  const double xm = 0.5 * (chan.patch_extent(1).first + chan.patch_extent(0).second);
  for (double y : {1.2, 1.5, 1.8}) {
    const double u0 = chan.disc(0).evaluate(chan.patch(0).u(), xm, y);
    const double u1 = chan.disc(1).evaluate(chan.patch(1).u(), xm, y);
    EXPECT_NEAR(u0, u1, 0.03) << "y=" << y;
  }
  // the sac flow is slow compared to the channel (clotting condition)
  EXPECT_LT(std::fabs(chan.evaluate_u(4.0, 1.6)), 0.5 * chan.evaluate_u(4.0, 0.5));
}

TEST(MultiPatch, FourPatchesAsInPaper) {
  // the paper's CoW domain is subdivided into four patches (Sec. 3)
  coupling::MultiPatchParams mp;
  mp.L = 8.0;
  mp.H = 1.0;
  mp.nx = 16;
  mp.ny = 2;
  mp.order = 4;
  mp.patches = 4;
  mp.overlap = 1;
  mp.ns.nu = 0.05;
  mp.ns.dt = 2e-3;
  coupling::MultiPatchChannel chan(
      mp, [](double y, double t) {
        return 4.0 * y * (1.0 - y) * (1.0 + 0.3 * std::sin(2.0 * M_PI * t / 0.5));
      });
  for (int s = 0; s < 400; ++s) chan.step();
  EXPECT_EQ(chan.num_patches(), 4);
  EXPECT_LT(chan.interface_jump(), 0.05);
  // flux is transported through all four patches
  EXPECT_GT(chan.evaluate_u(7.5, 0.5), 0.5);
}

}  // namespace

#include "coupling/cdc3d.hpp"

namespace {

TEST(Cdc3d, FullyThreeDimensionalCoupling) {
  // 3D continuum channel (plates at z = 0, 1) with an embedded DPD box:
  // the paper's actual configuration, no dimension folding.
  const double H = 1.0, Umax = 1.0, nu = 0.05;
  sem::Discretization3D d(4.0, 1.0, H, 4, 1, 2, 4);
  sem::NavierStokes3D::Params prm;
  prm.nu = nu;
  prm.dt = 2e-3;
  prm.pressure_dirichlet_faces = {sem::HexFace::X1};
  sem::NavierStokes3D ns(d, prm);
  auto prof = [&](double, double, double z, double) {
    return 4.0 * Umax * z * (H - z) / (H * H);
  };
  auto zero = [](double, double, double, double) { return 0.0; };
  ns.set_velocity_bc(sem::HexFace::X0, prof, zero, zero);
  ns.set_velocity_bc(sem::HexFace::Y0, prof, zero, zero);
  ns.set_velocity_bc(sem::HexFace::Y1, prof, zero, zero);
  ns.set_natural_bc(sem::HexFace::X1);
  for (int s = 0; s < 250; ++s) ns.step();

  dpd::DpdParams dp;
  dp.box = {16.0, 6.0, 10.0};
  dp.periodic = {false, true, false};
  dp.dt = 0.01;
  dpd::DpdSystem sys(dp, std::make_shared<dpd::ChannelZ>(10.0));
  sys.fill(3.0, dpd::kSolvent, 13, 0.1);
  dpd::FlowBcParams fp;
  fp.axis = 0;
  fp.relax = 0.3;
  dpd::FlowBc bc(fp);

  coupling::ScaleMap scales;
  scales.L_ns = 1.0;   // channel height in NS units
  scales.L_dpd = 10.0; // the same height in DPD units
  scales.nu_ns = nu;
  scales.nu_dpd = 2.5;  // v_dpd = 5 v_ns
  coupling::TimeProgression tp;
  tp.exchange_every_ns = 2;
  tp.dpd_per_ns = 10;
  coupling::EmbeddedBox box{1.5, 2.5, 0.25, 0.75, 0.0, 1.0};
  coupling::ContinuumDpdCoupler3D cdc(ns, sys, bc, box, scales, tp);

  // scale check against the 3D field
  const auto vmid = cdc.continuum_velocity_at({8.0, 3.0, 5.0});
  EXPECT_NEAR(vmid.x, scales.velocity_ns_to_dpd(d.evaluate(ns.u(), 2.0, 0.5, 0.5)), 1e-9);
  EXPECT_NEAR(vmid.z, 0.0, 0.5);

  dpd::SamplerParams sp;
  sp.nx = 4;
  sp.ny = 1;
  sp.nz = 5;
  dpd::FieldSampler sampler(sys, sp);
  for (int interval = 0; interval < 20; ++interval)
    cdc.advance_interval([&] {
      if (interval >= 12) sampler.accumulate(sys);
    });
  EXPECT_EQ(cdc.exchanges(), 20u);
  const double mism = cdc.interface_mismatch(sampler);
  EXPECT_LT(mism, 1.2);  // DPD bulk tracks the imposed 3D field
}

// ---------------- negative paths ----------------

TEST(MultiPatch, RejectsNonPositivePatchCount) {
  coupling::MultiPatchParams mp;
  mp.patches = 0;
  EXPECT_THROW(coupling::MultiPatchChannel(mp, [](double, double) { return 0.0; }),
               std::invalid_argument);
}

TEST(Cdc, RejectsDegenerateRegion) {
  auto m = mesh::QuadMesh::channel(2.0, 1.0, 4, 2);
  sem::Discretization d(m, 3);
  sem::NavierStokes2D::Params nsp;
  sem::NavierStokes2D ns(d, nsp);
  dpd::DpdParams dp;
  dpd::DpdSystem sys(dp, nullptr);
  dpd::FlowBcParams fp;
  dpd::FlowBc bc(fp);
  coupling::ScaleMap scales;
  coupling::TimeProgression tp;
  coupling::EmbeddedRegion flat_x{1.0, 1.0, 0.0, 1.0};   // x1 == x0
  coupling::EmbeddedRegion inverted_y{0.0, 1.0, 1.0, 0.5};  // y1 < y0
  EXPECT_THROW(coupling::ContinuumDpdCoupler(ns, sys, bc, flat_x, scales, tp),
               std::invalid_argument);
  EXPECT_THROW(coupling::ContinuumDpdCoupler(ns, sys, bc, inverted_y, scales, tp),
               std::invalid_argument);
}

TEST(Replica, DistributeVsGatherMismatchCaughtByCheckedMode) {
  if (!xmp::checked_available()) GTEST_SKIP() << "built without XMP_CHECKED";
  xmp::CheckOptions opts;
  opts.enabled = true;
  try {
    xmp::run(
        2,
        [](xmp::Comm& world) {
          coupling::ReplicaEnsemble ens(world, 2);  // one rank per replica, both roots
          std::vector<double> v(4, 1.0);
          // Protocol error: the master replica fans data out while the other
          // replica tries to collect an average — the roots communicator sees
          // a bcast on one rank and a gatherv on the other.
          if (ens.replica_id() == 0)
            (void)ens.distribute(std::move(v));
          else
            (void)ens.gather_average(v);
        },
        nullptr, opts);
    FAIL() << "expected xmp::CheckError";
  } catch (const xmp::CheckError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("collective mismatch"), std::string::npos) << msg;
    EXPECT_NE(msg.find("offender"), std::string::npos) << msg;
  }
}

}  // namespace
