// Tests for the telemetry subsystem: phase timer nesting and aggregation,
// counters/series, cross-rank report reduction over an xmp communicator, the
// bench JSON emitter, and — the centrepiece — an analytic communication
// matrix for the paper's 3-step interface exchange (gather to the L4 root,
// one root-to-root message over World, scatter to the peers) whose per-cell
// message and byte counts are known exactly.

#include <gtest/gtest.h>

#include <chrono>
#include <limits>
#include <mutex>
#include <thread>

#include "coupling/mci.hpp"
#include "telemetry/bench_report.hpp"
#include "telemetry/chrome_trace.hpp"
#include "telemetry/comm_matrix.hpp"
#include "telemetry/json.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/report.hpp"
#include "xmp/comm.hpp"

namespace {

void spin_for_us(int us) {
  const auto t0 = std::chrono::steady_clock::now();
  while (std::chrono::steady_clock::now() - t0 < std::chrono::microseconds(us)) {
  }
}

}  // namespace

TEST(TelemetryRegistry, PhasesNestIntoTree) {
  telemetry::Registry::reset_all();
  {
    telemetry::ScopedPhase step("step");
    spin_for_us(200);
    {
      telemetry::ScopedPhase solve("solve");
      spin_for_us(200);
      { telemetry::ScopedPhase inner("cg"); spin_for_us(200); }
      { telemetry::ScopedPhase inner("cg"); spin_for_us(200); }
    }
  }
  { telemetry::ScopedPhase step("step"); spin_for_us(200); }

  const auto root = telemetry::Registry::local().phases();
  ASSERT_EQ(root.children.size(), 1u);
  const auto& step = root.children[0];
  EXPECT_EQ(step.name, "step");
  EXPECT_EQ(step.count, 2u);  // same name re-entered at the same level merges
  const auto* solve = step.find("solve");
  ASSERT_NE(solve, nullptr);
  EXPECT_EQ(solve->count, 1u);
  const auto* cg = solve->find("cg");
  ASSERT_NE(cg, nullptr);
  EXPECT_EQ(cg->count, 2u);
  EXPECT_EQ(solve->find("nope"), nullptr);

  // inclusive times nest: parent >= sum of children, exclusive >= 0
  EXPECT_GE(step.seconds, solve->seconds);
  EXPECT_GE(solve->seconds, cg->seconds);
  EXPECT_GE(solve->exclusive_seconds(), 0.0);
  EXPECT_NEAR(solve->child_seconds(), cg->seconds, 1e-12);
  EXPECT_GT(cg->seconds, 0.0);
}

TEST(TelemetryRegistry, UnmatchedPhaseEndThrows) {
  telemetry::Registry::reset_all();
  EXPECT_THROW(telemetry::Registry::local().phase_end(), std::logic_error);
}

TEST(TelemetryRegistry, CountersAndSeriesAccumulate) {
  telemetry::Registry::reset_all();
  telemetry::count("iters", 3.0);
  telemetry::count("iters", 4.0);
  telemetry::count("solves");
  telemetry::sample("residual", 1.0);
  telemetry::sample("residual", 0.25);
  telemetry::sample_reset("residual");
  telemetry::sample("residual", 0.5);

  const auto counters = telemetry::Registry::local().counters();
  ASSERT_TRUE(counters.count("iters"));
  EXPECT_DOUBLE_EQ(counters.at("iters").value, 7.0);
  EXPECT_EQ(counters.at("iters").count, 2u);
  EXPECT_DOUBLE_EQ(counters.at("solves").value, 1.0);

  const auto series = telemetry::Registry::local().series();
  ASSERT_TRUE(series.count("residual"));
  ASSERT_EQ(series.at("residual").size(), 1u);
  EXPECT_DOUBLE_EQ(series.at("residual")[0], 0.5);
}

TEST(TelemetryRegistry, DisabledHelpersAreNoOps) {
  telemetry::Registry::reset_all();
  telemetry::set_enabled(false);
  {
    telemetry::ScopedPhase p("ghost");
    telemetry::count("ghost");
    telemetry::sample("ghost", 1.0);
  }
  telemetry::set_enabled(true);
  EXPECT_TRUE(telemetry::Registry::local().phases().children.empty());
  EXPECT_TRUE(telemetry::Registry::local().counters().empty());
}

TEST(TelemetryReport, SerialAggregationMergesRanks) {
  auto r0 = std::make_shared<telemetry::Registry>();
  auto r1 = std::make_shared<telemetry::Registry>();
  for (auto& r : {r0, r1}) {
    r->phase_begin("step");
    r->phase_begin("solve");
    r->phase_end();
    r->phase_end();
    r->counter_add("iters", 10.0);
  }
  r1->phase_begin("step");
  r1->phase_end();
  r1->counter_add("iters", 20.0);

  const auto rep = telemetry::aggregate({r0, r1});
  ASSERT_EQ(rep.phases.size(), 2u);  // step, step/solve (pre-order)
  EXPECT_EQ(rep.phases[0].path, "step");
  EXPECT_EQ(rep.phases[0].depth, 0);
  EXPECT_EQ(rep.phases[0].ranks, 2);
  EXPECT_EQ(rep.phases[0].count, 3u);  // 1 + 2 entries
  EXPECT_EQ(rep.phases[1].path, "step/solve");
  EXPECT_EQ(rep.phases[1].depth, 1);
  EXPECT_GE(rep.phases[0].max_s, rep.phases[0].min_s);

  ASSERT_EQ(rep.counters.size(), 1u);
  EXPECT_EQ(rep.counters[0].name, "iters");
  EXPECT_DOUBLE_EQ(rep.counters[0].total, 40.0);
  EXPECT_DOUBLE_EQ(rep.counters[0].min, 10.0);
  EXPECT_DOUBLE_EQ(rep.counters[0].max, 30.0);

  const auto text = telemetry::format(rep);
  EXPECT_NE(text.find("step"), std::string::npos);
  EXPECT_NE(text.find("solve"), std::string::npos);
  EXPECT_NE(text.find("iters"), std::string::npos);
}

TEST(TelemetryReport, CrossRankAggregationOverComm) {
  telemetry::Registry::reset_all();
  telemetry::Report rep;
  xmp::run(4, [&](xmp::Comm& world) {
    telemetry::Registry::local().bind_world_rank(world.rank());
    telemetry::Registry::local().clear();
    // Rank 3 is the deliberate straggler, enforced by barrier ordering (not
    // by sleeping, which is flaky under load): its "step" opens before the
    // first barrier and closes after the second, so it strictly contains
    // every other rank's "step".
    if (world.rank() == 3) {
      telemetry::ScopedPhase step("step");
      { telemetry::ScopedPhase solve("solve"); spin_for_us(100); }
      world.barrier();
      world.barrier();
    } else {
      world.barrier();
      {
        telemetry::ScopedPhase step("step");
        spin_for_us(100);
        if (world.rank() != 2) {
          telemetry::ScopedPhase solve("solve");
          spin_for_us(100);
        }
      }
      world.barrier();
    }
    telemetry::count("iters", static_cast<double>(world.rank()));
    auto r = telemetry::aggregate(world, 0);
    if (world.rank() == 0) rep = std::move(r);
  });

  ASSERT_EQ(rep.phases.size(), 2u);
  EXPECT_EQ(rep.phases[0].path, "step");
  EXPECT_EQ(rep.phases[0].ranks, 4);
  EXPECT_EQ(rep.phases[0].count, 4u);
  EXPECT_EQ(rep.phases[0].max_rank, 3);
  EXPECT_GT(rep.phases[0].max_s, rep.phases[0].min_s);
  EXPECT_GE(rep.phases[0].avg_s, rep.phases[0].min_s);
  EXPECT_LE(rep.phases[0].avg_s, rep.phases[0].max_s);
  EXPECT_EQ(rep.phases[1].path, "step/solve");
  EXPECT_EQ(rep.phases[1].ranks, 3);  // rank 2 never entered it

  ASSERT_EQ(rep.counters.size(), 1u);
  EXPECT_DOUBLE_EQ(rep.counters[0].total, 0.0 + 1.0 + 2.0 + 3.0);
}

TEST(TelemetryBenchReport, JsonCarriesMetaAndRows) {
  telemetry::BenchReport rep("unit");
  rep.meta("machine", std::string("BG/P"));
  rep.meta("cores", 1024.0);
  rep.row();
  rep.set("x", 1.5);
  rep.set("label", std::string("a\"b"));
  rep.row();
  rep.set("x", 2.0);
  const auto js = rep.to_json();
  EXPECT_NE(js.find("\"schema\":\"nektarg-bench-v1\""), std::string::npos);
  EXPECT_NE(js.find("\"name\":\"unit\""), std::string::npos);
  EXPECT_NE(js.find("\"machine\":\"BG/P\""), std::string::npos);
  EXPECT_NE(js.find("\"cores\":1024"), std::string::npos);
  EXPECT_NE(js.find("\"x\":1.5"), std::string::npos);
  EXPECT_NE(js.find("a\\\"b"), std::string::npos);  // escaping
  EXPECT_EQ(rep.row_count(), 2u);
}

TEST(TelemetryChromeTrace, EmitsTimelineEvents) {
  telemetry::Registry::reset_all();
  telemetry::Registry::local().set_timeline_enabled(true);
  {
    telemetry::ScopedPhase a("outer");
    telemetry::ScopedPhase b("inner");
    spin_for_us(100);
  }
  telemetry::Registry::local().set_timeline_enabled(false);
  const auto js = telemetry::chrome_trace_json();
  EXPECT_NE(js.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(js.find("\"outer\""), std::string::npos);
  EXPECT_NE(js.find("\"inner\""), std::string::npos);
  EXPECT_NE(js.find("\"ph\":\"X\""), std::string::npos);
  const auto tl = telemetry::Registry::local().timeline();
  ASSERT_EQ(tl.size(), 2u);  // closed in order: inner first
  EXPECT_EQ(tl[0].name, "inner");
  EXPECT_EQ(tl[0].depth, 1);
  EXPECT_EQ(tl[1].name, "outer");
  EXPECT_EQ(tl[1].depth, 0);
}

TEST(TelemetryCommMatrix, TagClassesClassify) {
  telemetry::TagClasses tc;
  tc.add_range(9001, 9002, "mci.discovery");
  tc.add(42, "mci.exchange");
  EXPECT_EQ(tc.classify({0, 1, 8, 42, xmp::TraceKind::P2P}), "mci.exchange");
  EXPECT_EQ(tc.classify({0, 1, 8, 9002, xmp::TraceKind::P2P}), "mci.discovery");
  EXPECT_EQ(tc.classify({0, 1, 8, 7, xmp::TraceKind::P2P}), "tag:7");
  // collectives classify by kind regardless of tag
  EXPECT_EQ(tc.classify({0, 1, 8, xmp::kCollectiveTag, xmp::TraceKind::Gather}), "gather");
  EXPECT_EQ(tc.classify({0, 1, 8, xmp::kCollectiveTag, xmp::TraceKind::Scatter}), "scatter");
}

TEST(TelemetryCommMatrix, AnalyticThreeStepExchange) {
  // 6 ranks, two interface (L4) groups of 3: world {0,1,2} with root 0 and
  // {3,4,5} with root 3. Each rank owns 2 of the 6 interface samples. One
  // full bidirectional exchange (both sides send then recv) must produce
  // exactly the paper's 3-step pattern — nothing more:
  //   step 1  gather:  (1->0) (2->0) (4->3) (5->3)   2 doubles = 16 B each
  //   step 2  p2p:     (0->3) (3->0)  tag 42          6 doubles = 48 B each
  //   step 3  scatter: (0->1) (0->2) (3->4) (3->5)    2 doubles = 16 B each
  telemetry::TagClasses tc;
  tc.add(42, "mci.exchange");
  telemetry::CommMatrix matrix(std::move(tc));

  xmp::run(
      6,
      [&](xmp::Comm& world) {
        coupling::MciConfig cfg;
        cfg.rack_of.assign(6, 0);
        cfg.task_of = {0, 0, 0, 1, 1, 1};
        auto mci = coupling::build_mci(world, cfg);
        xmp::Comm l4 = coupling::derive_l4(mci.l3, true);
        const int peer_root = mci.task == 0 ? 3 : 0;
        std::vector<std::size_t> mine = {static_cast<std::size_t>(l4.rank()),
                                         static_cast<std::size_t>(l4.rank() + 3)};
        coupling::InterfaceChannel ch(world, l4, peer_root, 6, mine, 42);
        // Drop the construction-time traffic (the sample-index gather) so the
        // matrix holds the steady-state exchange only. The double barrier
        // brackets the reset: every other rank is parked in an untraced
        // barrier while rank 0 clears the cells.
        world.barrier();
        if (world.rank() == 0) matrix.reset();
        world.barrier();
        std::vector<double> vals(2, 1.0 + world.rank());
        ch.send(vals);
        auto got = ch.recv();
        EXPECT_EQ(got.size(), 2u);
        world.barrier();
      },
      matrix.sink());

  const auto cells = matrix.cells();
  using Key = telemetry::CommKey;
  auto expect_cell = [&](int src, int dst, const std::string& cls,
                         std::uint64_t msgs, std::uint64_t bytes) {
    auto it = cells.find(Key{src, dst, cls});
    ASSERT_NE(it, cells.end()) << src << "->" << dst << " [" << cls << "] missing";
    EXPECT_EQ(it->second.messages, msgs) << src << "->" << dst << " [" << cls << "]";
    EXPECT_EQ(it->second.bytes, bytes) << src << "->" << dst << " [" << cls << "]";
  };

  // step 1: fan-in to the L4 roots
  expect_cell(1, 0, "gather", 1, 16);
  expect_cell(2, 0, "gather", 1, 16);
  expect_cell(4, 3, "gather", 1, 16);
  expect_cell(5, 3, "gather", 1, 16);
  // step 2: exactly one payload per direction over World
  expect_cell(0, 3, "mci.exchange", 1, 48);
  expect_cell(3, 0, "mci.exchange", 1, 48);
  // step 3: fan-out from the L4 roots
  expect_cell(0, 1, "scatter", 1, 16);
  expect_cell(0, 2, "scatter", 1, 16);
  expect_cell(3, 4, "scatter", 1, 16);
  expect_cell(3, 5, "scatter", 1, 16);

  ASSERT_EQ(cells.size(), 10u) << matrix.format();
  EXPECT_EQ(matrix.total_messages(), 10u);
  EXPECT_EQ(matrix.total_bytes(), 4u * 16 + 2u * 48 + 4u * 16);

  const auto js = matrix.to_json();
  EXPECT_NE(js.find("\"mci.exchange\""), std::string::npos);
  EXPECT_NE(js.find("\"total_messages\":10"), std::string::npos);
}

TEST(TelemetryRegistry, FiberRanksSharingOneWorkerDoNotCrossContaminate) {
  // Two fiber ranks multiplexed on a single worker thread: every barrier
  // parks one rank and dispatches the other on the SAME OS thread, so any
  // thread-keyed attribution would mix their counters and phase trees. The
  // registry must resolve through the scheduler's rank context instead.
  telemetry::Registry::reset_all();
  xmp::SchedOptions sched;
  sched.mode = xmp::SchedMode::Fibers;
  sched.workers = 1;
  std::map<std::string, telemetry::CounterValue> counters[2];
  telemetry::PhaseNode phases[2];
  xmp::run(
      2,
      [&](xmp::Comm& world) {
        const int r = world.rank();
        telemetry::Registry::local().bind_world_rank(r);
        for (int i = 0; i < 10; ++i) {
          telemetry::ScopedPhase step(r == 0 ? "rank0_step" : "rank1_step");
          telemetry::Registry::local().counter_add("mine", r == 0 ? 1.0 : 100.0);
          world.barrier();  // yield mid-phase: the other rank runs on this thread
        }
        counters[r] = telemetry::Registry::local().counters();
        phases[r] = telemetry::Registry::local().phases();
      },
      nullptr, xmp::CheckOptions{}, sched);

  EXPECT_DOUBLE_EQ(counters[0]["mine"].value, 10.0);
  EXPECT_EQ(counters[0]["mine"].count, 10u);
  EXPECT_DOUBLE_EQ(counters[1]["mine"].value, 1000.0);
  EXPECT_EQ(counters[1]["mine"].count, 10u);
  // each rank's phase tree holds only its own phase, entered 10 times
  for (int r = 0; r < 2; ++r) {
    ASSERT_EQ(phases[r].children.size(), 1u) << "rank " << r;
    EXPECT_EQ(phases[r].children[0].name, r == 0 ? "rank0_step" : "rank1_step");
    EXPECT_EQ(phases[r].children[0].count, 10u);
  }
}

// ---------------- JSON emitter hygiene ----------------
// Telemetry JSON ends up in external consumers (Chrome tracing, CI parsers):
// control characters must be escaped and non-finite doubles must not produce
// bare NaN/Inf tokens, which are not JSON.

TEST(TelemetryJson, EscapesControlCharacters) {
  telemetry::JsonWriter w;
  w.value(std::string("a\"b\\c\nd\te\rf\bg\fh\x01i"));
  EXPECT_EQ(w.str(), "\"a\\\"b\\\\c\\nd\\te\\rf\\bg\\fh\\u0001i\"");
}

TEST(TelemetryJson, EscapesHighControlAndKeepsUtf8Bytes) {
  telemetry::JsonWriter w;
  w.begin_object();
  w.key(std::string("k\x1f"));
  w.value(std::string("caf\xc3\xa9"));  // UTF-8 bytes pass through untouched
  w.end_object();
  EXPECT_EQ(w.str(), "{\"k\\u001f\":\"caf\xc3\xa9\"}");
}

TEST(TelemetryJson, NonFiniteDoublesAreNull) {
  telemetry::JsonWriter w;
  w.begin_array();
  w.value(std::numeric_limits<double>::quiet_NaN());
  w.value(std::numeric_limits<double>::infinity());
  w.value(-std::numeric_limits<double>::infinity());
  w.value(1.5);
  w.end_array();
  EXPECT_EQ(w.str(), "[null,null,null,1.5]");
}
