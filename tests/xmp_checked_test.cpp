// Negative tests for xmp checked mode (src/xmp/check.hpp): every class of
// misuse the verifier exists to catch must produce a CheckError naming the
// offending ranks and operation — mismatched collective sequences, root and
// element-size disagreement, cross-thread Comm use, p2p deadlock cycles,
// stalls and unreceived mailbox messages — while a correct MCI-style
// hierarchical exchange runs checked without complaint.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <initializer_list>
#include <string>
#include <thread>
#include <vector>

#include "xmp/comm.hpp"

namespace {

// The default stall budget is deliberately huge: on an oversubscribed CI
// machine a rank thread can be starved for many seconds mid-collective, and
// the positive-control tests must not mistake that for a hang. Stall
// reporting itself is exercised by StallTimeoutDumpsBlockedOperations, which
// passes its own 200 ms budget.
xmp::CheckOptions checked(int stall_ms = 120000) {
  xmp::CheckOptions o;
  o.enabled = true;
  o.poll_interval = std::chrono::milliseconds(5);
  o.stall_timeout = std::chrono::milliseconds(stall_ms);
  return o;
}

/// Runs fn checked and returns the CheckError message (fails if none is
/// thrown or a different exception type escapes).
std::string run_expect_check(int nranks, const std::function<void(xmp::Comm&)>& fn,
                             const xmp::CheckOptions& opts) {
  try {
    xmp::run(nranks, fn, nullptr, opts);
  } catch (const xmp::CheckError& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected xmp::CheckError";
  return {};
}

void expect_contains(const std::string& msg, std::initializer_list<const char*> needles) {
  for (const char* needle : needles)
    EXPECT_NE(msg.find(needle), std::string::npos) << "missing \"" << needle << "\" in:\n" << msg;
}

#define SKIP_UNLESS_CHECKED() \
  if (!xmp::checked_available()) GTEST_SKIP() << "built without XMP_CHECKED"

TEST(XmpChecked, MismatchedCollectiveKindNamesOffender) {
  SKIP_UNLESS_CHECKED();
  const auto msg = run_expect_check(
      2,
      [](xmp::Comm& world) {
        if (world.rank() == 0) {
          world.barrier();
        } else {
          world.allreduce(1.0, xmp::Op::Sum);
        }
      },
      checked());
  expect_contains(msg, {"collective mismatch", "barrier", "allreduce", "offender", "world rank"});
}

TEST(XmpChecked, RootDisagreementCaught) {
  SKIP_UNLESS_CHECKED();
  const auto msg = run_expect_check(
      3,
      [](xmp::Comm& world) {
        std::vector<double> data{1.0};
        world.bcast(data, world.rank() == 1 ? 1 : 0);  // rank 1 dissents
      },
      checked());
  expect_contains(msg, {"collective mismatch", "bcast", "root=0", "root=1", "offender"});
}

TEST(XmpChecked, ElementSizeDisagreementCaught) {
  SKIP_UNLESS_CHECKED();
  const auto msg = run_expect_check(
      2,
      [](xmp::Comm& world) {
        if (world.rank() == 0) {
          std::vector<double> d{1.0};
          world.bcast(d, 0);
        } else {
          std::vector<float> f;
          world.bcast(f, 0);
        }
      },
      checked());
  expect_contains(msg, {"collective mismatch", "elem=8", "elem=4"});
}

TEST(XmpChecked, ReduceOpDisagreementCaught) {
  SKIP_UNLESS_CHECKED();
  const auto msg = run_expect_check(
      2,
      [](xmp::Comm& world) {
        world.allreduce(1.0, world.rank() == 0 ? xmp::Op::Sum : xmp::Op::Max);
      },
      checked());
  expect_contains(msg, {"collective mismatch", "allreduce", "op=0", "op=2"});
}

TEST(XmpChecked, VectorAllreduceShapeMismatchCaught) {
  SKIP_UNLESS_CHECKED();
  const auto msg = run_expect_check(
      2,
      [](xmp::Comm& world) {
        std::vector<double> v(world.rank() == 0 ? 2 : 3, 1.0);
        world.allreduce(std::span<const double>(v), xmp::Op::Sum);
      },
      checked());
  expect_contains(msg, {"collective mismatch", "shape=2", "shape=3"});
}

TEST(XmpChecked, MismatchOnSubCommunicatorNamesIt) {
  SKIP_UNLESS_CHECKED();
  const auto msg = run_expect_check(
      4,
      [](xmp::Comm& world) {
        xmp::Comm sub = world.split(world.rank() % 2, world.rank());
        if (world.rank() % 2 == 0) {
          sub.barrier();
        } else if (world.rank() == 1) {
          sub.barrier();
        } else {
          sub.allreduce(std::int64_t{1}, xmp::Op::Sum);  // rank 3 dissents in odd comm
        }
        world.barrier();
      },
      checked());
  expect_contains(msg, {"collective mismatch", "comm#", "world rank 3", "offender"});
}

TEST(XmpChecked, CrossThreadCommUseCaught) {
  SKIP_UNLESS_CHECKED();
  std::atomic<int> violations{0};
  xmp::run(
      2,
      [&](xmp::Comm& world) {
        if (world.rank() == 0) {
          // The documented affinity contract: only the owning rank thread may
          // drive a Comm. A helper thread must be rejected.
          std::thread helper([&] {
            try {
              world.send(1, 1, std::vector<int>{7});
            } catch (const xmp::CheckError& e) {
              if (std::string(e.what()).find("thread-affinity violation") != std::string::npos)
                violations.fetch_add(1);
            }
          });
          helper.join();
          world.send(1, 1, std::vector<int>{42});  // owner thread: fine
        } else {
          auto v = world.recv<int>(0, 1);
          EXPECT_EQ(v[0], 42);
        }
      },
      nullptr, checked());
  EXPECT_EQ(violations.load(), 1);
}

TEST(XmpChecked, CrossThreadCollectiveCaught) {
  SKIP_UNLESS_CHECKED();
  std::atomic<int> violations{0};
  xmp::run(
      1,
      [&](xmp::Comm& world) {
        std::thread helper([&] {
          try {
            world.allreduce(1.0, xmp::Op::Sum);
          } catch (const xmp::CheckError&) {
            violations.fetch_add(1);
          }
        });
        helper.join();
      },
      nullptr, checked());
  EXPECT_EQ(violations.load(), 1);
}

TEST(XmpChecked, TwoRankP2pDeadlockDetected) {
  SKIP_UNLESS_CHECKED();
  const auto msg = run_expect_check(
      2,
      [](xmp::Comm& world) {
        // Classic head-to-head: both sides recv before either sends.
        const int peer = 1 - world.rank();
        auto v = world.recv<double>(peer, 7 + world.rank());
        world.send(peer, 7 + peer, v);
      },
      checked());
  expect_contains(msg,
                  {"deadlock detected", "wait-for cycle", "recv(src=1, tag=7)",
                   "recv(src=0, tag=8)", "comm world"});
}

TEST(XmpChecked, ThreeRankCycleDetected) {
  SKIP_UNLESS_CHECKED();
  const auto msg = run_expect_check(
      3,
      [](xmp::Comm& world) {
        // 0 waits on 1, 1 waits on 2, 2 waits on 0.
        const int src = (world.rank() + 1) % 3;
        (void)world.recv<int>(src, 5);
      },
      checked());
  expect_contains(msg, {"deadlock detected", "wait-for cycle"});
}

TEST(XmpChecked, CollectiveVsRecvDeadlockDetected) {
  SKIP_UNLESS_CHECKED();
  // Rank 0 enters a barrier (waits on rank 1); rank 1 waits for a message
  // from rank 0 that can never come: a mixed collective/p2p cycle.
  const auto msg = run_expect_check(
      2,
      [](xmp::Comm& world) {
        if (world.rank() == 0) {
          world.barrier();
        } else {
          (void)world.recv<int>(0, 3);
        }
      },
      checked());
  expect_contains(msg, {"deadlock detected", "barrier", "recv(src=0, tag=3)"});
}

TEST(XmpChecked, NoFalsePositiveWhenMessageAlreadyQueued) {
  SKIP_UNLESS_CHECKED();
  // Send-before-recv head-to-head is legal (mailboxes are buffered): the
  // wait-for graph momentarily looks cyclic only if sampled carelessly.
  for (int repeat = 0; repeat < 20; ++repeat) {
    xmp::run(
        2,
        [](xmp::Comm& world) {
          const int peer = 1 - world.rank();
          world.send(peer, 1, std::vector<int>{world.rank()});
          auto v = world.recv<int>(peer, 1);
          EXPECT_EQ(v[0], peer);
        },
        nullptr, checked());
  }
}

TEST(XmpChecked, StallTimeoutDumpsBlockedOperations) {
  SKIP_UNLESS_CHECKED();
  // Any-source receives contribute no wait-for edge, so this hang is only
  // catchable by the stall timeout — which must dump the blocked recv with
  // comm, peer and tag.
  const auto msg = run_expect_check(
      2,
      [](xmp::Comm& world) {
        if (world.rank() == 0) (void)world.recv<int>(xmp::kAnySource, 7);
        // rank 1 exits without sending
      },
      checked(/*stall_ms=*/200));
  expect_contains(msg, {"stall", "world rank 0", "recv(src=any, tag=7)", "comm world"});
}

TEST(XmpChecked, UnreceivedMessagesReportedAtRunEnd) {
  SKIP_UNLESS_CHECKED();
  const auto msg = run_expect_check(
      2,
      [](xmp::Comm& world) {
        if (world.rank() == 0) {
          world.send(1, 9, std::vector<double>(3, 1.0));
          world.send(1, 10, std::vector<double>(1, 2.0));
        }
        world.barrier();  // both messages are queued before the run ends
      },
      checked());
  expect_contains(msg, {"unreceived message", "tag 9", "tag 10", "24 bytes", "src 0 -> dst 1"});
}

// --------------------------------------- nonblocking-p2p handle hygiene

TEST(XmpChecked, LeakedIrecvHandleReportedAtRunEnd) {
  SKIP_UNLESS_CHECKED();
  const auto msg = run_expect_check(
      2,
      [](xmp::Comm& world) {
        if (world.rank() == 0) {
          xmp::Pending p = world.irecv_bytes(1, 9);
          (void)p;  // dropped without wait()/test(): the recv never happens
        }
        world.barrier();
      },
      checked());
  expect_contains(msg,
                  {"leaked pending handle", "irecv(src=1, tag=9)", "world rank 0", "comm world"});
}

TEST(XmpChecked, LeakedIsendHandleReportedAtRunEnd) {
  SKIP_UNLESS_CHECKED();
  // The message itself is delivered (eager transport) and received, so the
  // only diagnostic left is the dropped send handle.
  const auto msg = run_expect_check(
      2,
      [](xmp::Comm& world) {
        if (world.rank() == 0) {
          const double v = 1.0;
          xmp::Pending p = world.isend_bytes(1, 5, &v, sizeof v);
          (void)p;
        } else {
          (void)world.recv<double>(0, 5);
        }
        world.barrier();
      },
      checked());
  expect_contains(msg, {"leaked pending handle", "isend(dst=1, tag=5)", "world rank 0"});
}

TEST(XmpChecked, CompletedHandlesLeaveNoLeakReport) {
  SKIP_UNLESS_CHECKED();
  // wait() and a successful (claiming) test() both retire the handle.
  xmp::run(
      2,
      [](xmp::Comm& world) {
        const int peer = 1 - world.rank();
        const int v = world.rank();
        xmp::Pending s = world.isend_bytes(peer, 3, &v, sizeof v);
        xmp::Pending r = world.irecv_bytes(peer, 3);
        s.wait();
        while (!r.test()) std::this_thread::yield();
      },
      nullptr, checked());
}

TEST(XmpChecked, PendingWaitDeadlockCycleDetected) {
  SKIP_UNLESS_CHECKED();
  // Pending::wait parks exactly like a blocking recv, so a wait-for cycle
  // through nonblocking handles must be diagnosed the same way.
  const auto msg = run_expect_check(
      2,
      [](xmp::Comm& world) {
        xmp::Pending p = world.irecv_bytes(1 - world.rank(), 7 + world.rank());
        (void)p.wait();
      },
      checked());
  expect_contains(msg, {"deadlock detected", "wait-for cycle", "recv(src=1, tag=7)",
                        "recv(src=0, tag=8)", "comm world"});
}

TEST(XmpChecked, LeftoverPolicyWarnCoversLeakedHandles) {
  SKIP_UNLESS_CHECKED();
  auto opts = checked();
  opts.leftovers = xmp::LeftoverPolicy::Warn;
  xmp::run(
      2,
      [](xmp::Comm& world) {
        if (world.rank() == 0) {
          xmp::Pending p = world.irecv_bytes(1, 9);
          (void)p;
        }
        world.barrier();
      },
      nullptr, opts);
}

TEST(XmpChecked, LeftoverPolicyWarnDoesNotThrow) {
  SKIP_UNLESS_CHECKED();
  auto opts = checked();
  opts.leftovers = xmp::LeftoverPolicy::Warn;
  xmp::run(
      2,
      [](xmp::Comm& world) {
        if (world.rank() == 0) world.send(1, 9, std::vector<double>(3, 1.0));
        world.barrier();
      },
      nullptr, opts);
}

TEST(XmpChecked, CleanHierarchicalExchangePassesChecked) {
  SKIP_UNLESS_CHECKED();
  // Positive control: the MCI communicator pattern — split into task groups,
  // root-to-root p2p, collectives at every level — runs checked without a
  // diagnostic.
  xmp::run(
      8,
      [](xmp::Comm& world) {
        const int task = world.rank() / 4;
        xmp::Comm l3 = world.split(task, world.rank());
        std::vector<double> mine{static_cast<double>(world.rank())};
        auto all = l3.gatherv(std::span<const double>(mine), 0);
        if (l3.rank() == 0) {
          const int peer_root = task == 0 ? 4 : 0;
          world.send(peer_root, 42, all);
          auto theirs = world.recv<double>(peer_root, 42);
          EXPECT_EQ(theirs.size(), 4u);
        }
        std::vector<double> back;
        if (l3.rank() == 0) back.assign(4, 1.0);
        l3.bcast(back, 0);
        EXPECT_EQ(back.size(), 4u);
        const double s = world.allreduce(1.0, xmp::Op::Sum);
        EXPECT_DOUBLE_EQ(s, 8.0);
        world.barrier();
      },
      nullptr, checked());
}

TEST(XmpChecked, DisabledOptionsAreNoop) {
  // With enabled == false the run must behave exactly like an unchecked one
  // (this is the runtime switch the bench smoke measures against).
  xmp::CheckOptions off;
  ASSERT_FALSE(off.enabled);
  xmp::run(
      2,
      [](xmp::Comm& world) {
        if (world.rank() == 0) world.send(1, 1, std::vector<int>{1});
        if (world.rank() == 1) (void)world.recv<int>(0, 1);
      },
      nullptr, off);
}

TEST(XmpChecked, RequestingCheckedWithoutBuildThrows) {
  if (xmp::checked_available()) GTEST_SKIP() << "built with XMP_CHECKED";
  EXPECT_THROW(xmp::run(1, [](xmp::Comm&) {}, nullptr, checked()), std::logic_error);
}

TEST(XmpChecked, FromEnvDefaultsDisabled) {
  // Unless the surrounding environment opts in, from_env must not enable
  // checking (the suite also runs with XMP_CHECK=1 in CI, where it must).
  const char* v = std::getenv("XMP_CHECK");
  const bool want = v != nullptr && v[0] != '\0' && v[0] != '0';
  EXPECT_EQ(xmp::CheckOptions::from_env().enabled, want);
}

}  // namespace
