// Tests for the resilience subsystem: the blob codec and framed snapshot
// files (CRC32, atomic writes), the collective CheckpointCoordinator,
// deterministic fault injection, bitwise save->load->continue equivalence
// for every Checkpointable solver, and replica failover (paper Sec. 3.3:
// losing a slave replica must be invisible to the continuum side, losing the
// master must promote a survivor).

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <random>
#include <string>
#include <tuple>
#include <vector>

#include "coupling/cdc.hpp"
#include "coupling/replica.hpp"
#include "dpd/bonds.hpp"
#include "dpd/geometry.hpp"
#include "dpd/inflow.hpp"
#include "dpd/platelets.hpp"
#include "dpd/sampling.hpp"
#include "dpd/system.hpp"
#include "mesh/quadmesh.hpp"
#include "nektar1d/network.hpp"
#include "resilience/blob.hpp"
#include "resilience/blob_la.hpp"
#include "resilience/checkpoint.hpp"
#include "resilience/fault.hpp"
#include "resilience/snapshot.hpp"
#include "sem/ns2d.hpp"
#include "sem/ns3d.hpp"
#include "telemetry/comm_matrix.hpp"
#include "wpod/wpod.hpp"
#include "xmp/comm.hpp"

namespace {

std::string test_dir(const std::string& name) {
  const std::string dir = testing::TempDir() + "/nektarg-resilience-" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

/// Serialize any save_state-bearing object to bytes (bitwise state fingerprint).
template <class T>
std::vector<std::uint8_t> state_of(const T& obj) {
  resilience::BlobWriter w;
  obj.save_state(w);
  return w.take();
}

// ---------------- blob codec ----------------

TEST(Blob, PodVectorStringRoundTrip) {
  resilience::BlobWriter w;
  w.pod(std::uint64_t{42});
  w.pod(-1.5);
  w.vec(std::vector<double>{1.0, 2.0, 3.0});
  w.str("hello");
  w.vec(std::vector<int>{});

  resilience::BlobReader r(w.data());
  EXPECT_EQ(r.pod<std::uint64_t>(), 42u);
  EXPECT_DOUBLE_EQ(r.pod<double>(), -1.5);
  EXPECT_EQ(r.vec<double>(), (std::vector<double>{1.0, 2.0, 3.0}));
  EXPECT_EQ(r.str(), "hello");
  EXPECT_TRUE(r.vec<int>().empty());
  EXPECT_NO_THROW(r.expect_end());
}

TEST(Blob, TruncatedReadThrows) {
  resilience::BlobWriter w;
  w.pod(std::uint32_t{7});
  resilience::BlobReader r(w.data());
  EXPECT_THROW(r.pod<std::uint64_t>(), resilience::CorruptError);
}

TEST(Blob, CorruptArrayCountDoesNotAllocate) {
  // a bogus 10^18 element count must throw before the allocation, not OOM
  resilience::BlobWriter w;
  w.pod(std::uint64_t{1000000000000000000ull});
  resilience::BlobReader r(w.data());
  EXPECT_THROW(r.vec<double>(), resilience::CorruptError);
}

TEST(Blob, TrailingBytesDetected) {
  resilience::BlobWriter w;
  w.pod(std::uint32_t{1});
  resilience::BlobReader r(w.data());
  EXPECT_THROW(r.expect_end(), resilience::CorruptError);
}

TEST(Blob, Mt19937RoundTripIsExact) {
  std::mt19937 g(123);
  for (int i = 0; i < 1000; ++i) g();  // advance into the middle of the period
  resilience::BlobWriter w;
  resilience::put_rng(w, g);
  std::mt19937 h;
  resilience::BlobReader r(w.data());
  resilience::get_rng(r, h);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(g(), h());
}

// ---------------- snapshot framing ----------------

TEST(Snapshot, FrameRoundTripAndNoTmpResidue) {
  const std::string dir = test_dir("frame");
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/a.ckpt";
  const std::vector<std::uint8_t> payload{1, 2, 3, 250, 0, 7};
  resilience::write_frame_atomic(path, payload);
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));  // atomic: tmp renamed away
  EXPECT_EQ(resilience::read_frame(path), payload);
}

TEST(Snapshot, MissingFileThrows) {
  EXPECT_THROW(resilience::read_frame(test_dir("missing") + "/nope.ckpt"),
               resilience::SnapshotError);
}

TEST(Snapshot, FlippedByteFailsCrc) {
  const std::string dir = test_dir("crc");
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/a.ckpt";
  resilience::write_frame_atomic(path, std::vector<std::uint8_t>(64, 9));
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(24 + 10);  // a payload byte
    char b = 0x55;
    f.write(&b, 1);
  }
  EXPECT_THROW(resilience::read_frame(path), resilience::CorruptError);
}

TEST(Snapshot, TruncatedFileThrows) {
  const std::string dir = test_dir("trunc");
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/a.ckpt";
  resilience::write_frame_atomic(path, std::vector<std::uint8_t>(64, 9));
  std::filesystem::resize_file(path, 40);  // header + partial payload
  EXPECT_THROW(resilience::read_frame(path), resilience::CorruptError);
}

TEST(Snapshot, BadMagicThrows) {
  const std::string dir = test_dir("magic");
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/a.ckpt";
  std::ofstream(path, std::ios::binary) << "definitely not a checkpoint file";
  EXPECT_THROW(resilience::read_frame(path), resilience::CorruptError);
}

TEST(Snapshot, Crc32KnownVector) {
  // IEEE CRC-32 of "123456789" is the classic check value 0xCBF43926.
  EXPECT_EQ(resilience::crc32("123456789", 9), 0xCBF43926u);
}

// ---------------- checkpoint coordinator (serial) ----------------

struct RankData {
  std::vector<double> v;
  void save_state(resilience::BlobWriter& w) const { w.vec(v); }
  void load_state(resilience::BlobReader& r) { v = r.vec<double>(); }
};

TEST(Coordinator, SerialSaveLoadRoundTrip) {
  const std::string dir = test_dir("serial");
  RankData a{{1.0, 2.0, 3.0}}, b{{-4.0}};
  resilience::CheckpointCoordinator save_coord;
  save_coord.add("a", a);
  save_coord.add("b", b);
  EXPECT_GT(save_coord.save(dir, 11, 0.5), 0u);

  RankData a2, b2;
  resilience::CheckpointCoordinator load_coord;
  // registration order may differ: streams dispatch by name
  load_coord.add("b", b2);
  load_coord.add("a", a2);
  const auto info = load_coord.load(dir);
  EXPECT_EQ(info.step, 11u);
  EXPECT_DOUBLE_EQ(info.time, 0.5);
  EXPECT_EQ(info.world_size, 1);
  EXPECT_EQ(a2.v, a.v);
  EXPECT_EQ(b2.v, b.v);

  const auto peeked = resilience::CheckpointCoordinator::peek(dir);
  EXPECT_EQ(peeked.step, 11u);
  EXPECT_EQ(peeked.world_size, 1);
}

TEST(Coordinator, DuplicateComponentNameThrows) {
  RankData a;
  resilience::CheckpointCoordinator coord;
  coord.add("x", a);
  EXPECT_THROW(coord.add("x", a), std::invalid_argument);
}

TEST(Coordinator, ComponentSetMismatchIsLayoutError) {
  const std::string dir = test_dir("compset");
  RankData a{{1.0}};
  resilience::CheckpointCoordinator save_coord;
  save_coord.add("a", a);
  save_coord.save(dir, 0, 0.0);

  RankData b;
  resilience::CheckpointCoordinator load_coord;
  load_coord.add("renamed", b);
  EXPECT_THROW(load_coord.load(dir), resilience::LayoutError);
}

TEST(Coordinator, CorruptedStreamFailsCleanly) {
  const std::string dir = test_dir("corrupt");
  RankData a{std::vector<double>(32, 3.25)};
  resilience::FaultPlan plan;
  plan.corrupt_stream(/*world_rank=*/0, /*at_save=*/0);
  resilience::CheckpointCoordinator coord;
  coord.add("a", a);
  coord.set_fault_plan(&plan);
  coord.save(dir, 0, 0.0);

  RankData a2;
  resilience::CheckpointCoordinator load_coord;
  load_coord.add("a", a2);
  EXPECT_THROW(load_coord.load(dir), resilience::CorruptError);
}

TEST(Coordinator, DroppedStreamFailsCleanly) {
  const std::string dir = test_dir("drop");
  RankData a{{1.0}};
  resilience::FaultPlan plan;
  plan.drop_stream(/*world_rank=*/0, /*at_save=*/0);
  resilience::CheckpointCoordinator coord;
  coord.add("a", a);
  coord.set_fault_plan(&plan);
  coord.save(dir, 0, 0.0);  // manifest written, rank stream missing

  RankData a2;
  resilience::CheckpointCoordinator load_coord;
  load_coord.add("a", a2);
  EXPECT_THROW(load_coord.load(dir), resilience::SnapshotError);
}

TEST(Coordinator, SecondSaveCanBeTheFaultyOne) {
  const std::string dir0 = test_dir("nth-0");
  const std::string dir1 = test_dir("nth-1");
  RankData a{{2.0}};
  resilience::FaultPlan plan;
  plan.corrupt_stream(/*world_rank=*/0, /*at_save=*/1);
  resilience::CheckpointCoordinator coord;
  coord.add("a", a);
  coord.set_fault_plan(&plan);
  coord.save(dir0, 0, 0.0);
  coord.save(dir1, 1, 0.1);

  RankData a2;
  resilience::CheckpointCoordinator load_coord;
  load_coord.add("a", a2);
  EXPECT_NO_THROW(load_coord.load(dir0));
  EXPECT_THROW(load_coord.load(dir1), resilience::CorruptError);
}

// ---------------- checkpoint coordinator (distributed) ----------------

TEST(Coordinator, DistributedSaveLoadRoundTrip) {
  const std::string dir = test_dir("dist");
  xmp::run(3, [&](xmp::Comm& world) {
    RankData mine{std::vector<double>(4, world.rank() + 0.5)};
    resilience::CheckpointCoordinator coord(world);
    coord.add("rankdata", mine);
    coord.save(dir, 7, 0.25);

    RankData fresh;
    resilience::CheckpointCoordinator load_coord(world);
    load_coord.add("rankdata", fresh);
    const auto info = load_coord.load(dir);
    EXPECT_EQ(info.step, 7u);
    EXPECT_EQ(info.world_size, 3);
    EXPECT_EQ(fresh.v, mine.v);
  });
}

TEST(Coordinator, WorldSizeMismatchIsLayoutError) {
  const std::string dir = test_dir("layout");
  xmp::run(2, [&](xmp::Comm& world) {
    RankData mine{{static_cast<double>(world.rank())}};
    resilience::CheckpointCoordinator coord(world);
    coord.add("rankdata", mine);
    coord.save(dir, 0, 0.0);
  });
  // restoring a 2-rank checkpoint on 1 rank must be refused
  RankData d;
  resilience::CheckpointCoordinator serial;
  serial.add("rankdata", d);
  EXPECT_THROW(serial.load(dir), resilience::LayoutError);
}

// ---------------- fault injection ----------------

TEST(Fault, CheckThrowsOnlyAtScheduledRankAndStep) {
  resilience::FaultPlan plan;
  plan.kill_rank(/*world_rank=*/2, /*step=*/5);
  EXPECT_NO_THROW(plan.check(1, 5));
  EXPECT_NO_THROW(plan.check(2, 4));
  try {
    plan.check(2, 5);
    FAIL() << "expected InjectedFault";
  } catch (const resilience::InjectedFault& e) {
    EXPECT_EQ(e.rank, 2);
    EXPECT_EQ(e.step, 5u);
  }
}

TEST(Fault, UncaughtKillAbortsTheWholeRun) {
  // xmp semantics: the victim's exception wakes every blocked rank and
  // xmp::run rethrows the original InjectedFault to the caller.
  resilience::FaultPlan plan;
  plan.kill_rank(/*world_rank=*/1, /*step=*/2);
  EXPECT_THROW(xmp::run(3,
                        [&](xmp::Comm& world) {
                          for (std::uint64_t s = 0; s < 5; ++s) {
                            plan.check(world, s);
                            world.barrier();
                          }
                        }),
               resilience::InjectedFault);
}

// ---------------- solver round trips (bitwise) ----------------

sem::NavierStokes2D make_ns2d(const sem::Discretization& disc) {
  sem::NavierStokes2D::Params p;
  p.nu = 0.05;
  p.dt = 2e-3;
  p.time_order = 2;
  sem::NavierStokes2D ns(disc, p);
  ns.set_velocity_bc(mesh::kInlet,
                     [](double, double y, double) { return 4.0 * y * (1.0 - y); },
                     [](double, double, double) { return 0.0; });
  ns.set_natural_bc(mesh::kOutlet);
  return ns;
}

TEST(RoundTrip, Ns2dContinuesBitwise) {
  auto mesh = mesh::QuadMesh::channel(2.0, 1.0, 4, 1);
  sem::Discretization disc(mesh, 3);
  auto ns = make_ns2d(disc);
  for (int s = 0; s < 5; ++s) ns.step();

  const auto snap = state_of(ns);
  auto restored = make_ns2d(disc);
  resilience::BlobReader r(snap);
  restored.load_state(r);
  r.expect_end();

  // the restored solver must be indistinguishable from the original: same
  // CG iteration counts (warm-start projector state carried over), then
  // bit-identical fields after further steps
  for (int s = 0; s < 3; ++s) EXPECT_EQ(ns.step(), restored.step());
  EXPECT_EQ(state_of(ns), state_of(restored));
  EXPECT_DOUBLE_EQ(ns.time(), restored.time());
}

sem::NavierStokes3D make_ns3d(const sem::Discretization3D& d) {
  sem::NavierStokes3D::Params p;
  p.nu = 0.05;
  p.dt = 2e-3;
  p.time_order = 2;
  p.pressure_dirichlet_faces = {sem::HexFace::X1};
  sem::NavierStokes3D ns(d, p);
  auto prof = [](double, double, double z, double) { return 4.0 * z * (1.0 - z); };
  auto zero = [](double, double, double, double) { return 0.0; };
  ns.set_velocity_bc(sem::HexFace::X0, prof, zero, zero);
  ns.set_natural_bc(sem::HexFace::X1);
  return ns;
}

TEST(RoundTrip, Ns3dContinuesBitwise) {
  sem::Discretization3D d(1.0, 1.0, 1.0, 2, 1, 1, 3);
  auto ns = make_ns3d(d);
  for (int s = 0; s < 4; ++s) ns.step();

  const auto snap = state_of(ns);
  auto restored = make_ns3d(d);
  resilience::BlobReader r(snap);
  restored.load_state(r);
  r.expect_end();

  for (int s = 0; s < 2; ++s) EXPECT_EQ(ns.step(), restored.step());
  EXPECT_EQ(state_of(ns), state_of(restored));
}

TEST(RoundTrip, Ns2dFieldSizeMismatchIsLayoutError) {
  auto mesh = mesh::QuadMesh::channel(2.0, 1.0, 4, 1);
  sem::Discretization disc(mesh, 3);
  auto ns = make_ns2d(disc);
  ns.step();
  const auto snap = state_of(ns);

  auto mesh2 = mesh::QuadMesh::channel(2.0, 1.0, 6, 2);  // different resolution
  sem::Discretization disc2(mesh2, 3);
  auto other = make_ns2d(disc2);
  resilience::BlobReader r(snap);
  EXPECT_THROW(other.load_state(r), resilience::LayoutError);
}

struct DpdWorld {
  dpd::DpdSystem sys;
  std::shared_ptr<dpd::BondSet> bonds = std::make_shared<dpd::BondSet>();
  std::shared_ptr<dpd::PlateletModel> platelets;
  dpd::FlowBc bc;

  static dpd::DpdParams params() {
    dpd::DpdParams p;
    p.box = {8.0, 4.0, 6.0};
    p.periodic = {false, true, false};
    p.dt = 0.01;
    return p;
  }
  static dpd::FlowBcParams bc_params() {
    dpd::FlowBcParams p;
    p.axis = 0;
    p.relax = 0.3;
    p.target_velocity = [](const dpd::Vec3&) { return dpd::Vec3{0.5, 0.0, 0.0}; };
    return p;
  }
  static dpd::PlateletParams platelet_params() {
    dpd::PlateletParams p;
    p.adhesive_region = [](const dpd::Vec3& x) { return x.x > 3.0 && x.x < 5.0; };
    return p;
  }

  explicit DpdWorld(bool populate)
      : sys(params(), std::make_shared<dpd::ChannelZ>(6.0)),
        platelets(std::make_shared<dpd::PlateletModel>(platelet_params())),
        bc(bc_params()) {
    sys.add_module(bonds);
    sys.add_module(platelets);
    if (populate) {
      sys.fill(2.0, dpd::kSolvent, 3, 0.1);
      dpd::RbcRingParams rp;
      rp.center = {4.0, 2.0, 3.0};
      rp.radius = 1.2;
      rp.beads = 10;
      dpd::make_rbc_ring(sys, *bonds, rp);
      platelets->seed_platelets(sys, 3, 11);
    }
  }

  void advance(int steps) {
    for (int s = 0; s < steps; ++s) {
      sys.step();
      bc.apply(sys);
      platelets->update(sys);
    }
  }
  std::vector<std::uint8_t> state() const {
    resilience::BlobWriter w;
    sys.save_state(w);
    bonds->save_state(w);
    platelets->save_state(w);
    bc.save_state(w);
    return w.take();
  }
  void restore(const std::vector<std::uint8_t>& snap) {
    resilience::BlobReader r(snap);
    sys.load_state(r);
    bonds->load_state(r);
    platelets->load_state(r);
    bc.load_state(r);
    r.expect_end();
  }
};

TEST(RoundTrip, DpdWithBondsPlateletsAndFlowBcContinuesBitwise) {
  DpdWorld a(/*populate=*/true);
  a.advance(5);

  DpdWorld b(/*populate=*/false);
  b.restore(a.state());
  EXPECT_EQ(b.sys.size(), a.sys.size());
  EXPECT_EQ(b.sys.step_count(), a.sys.step_count());

  // the DPD random force is a counter-based hash of (step, i, j) and the
  // inflow RNG was restored, so both worlds must evolve identically
  a.advance(5);
  b.advance(5);
  EXPECT_EQ(a.state(), b.state());
  EXPECT_EQ(a.bc.inserted_total(), b.bc.inserted_total());
}

// Pins PlateletModel::trigger_time_ while it is live: the checkpoint is
// taken mid-activation-delay (platelets Triggered but not yet Active), so
// the restored run reaches Active at exactly the same step as the
// uninterrupted one only if the pending trigger timestamps were serialised.
// The coverage gap this closes was surfaced by the tools/analyze
// checkpoint-coverage pass: no other test crossed a restart with the
// activation state machine mid-flight.
struct PlateletWorld {
  dpd::DpdSystem sys;
  std::shared_ptr<dpd::PlateletModel> platelets;

  static dpd::DpdParams params() {
    dpd::DpdParams p;
    p.box = {8.0, 4.0, 6.0};
    p.periodic = {false, true, false};
    p.dt = 0.01;
    return p;
  }
  static dpd::PlateletParams platelet_params() {
    dpd::PlateletParams p;
    p.adhesive_region = [](const dpd::Vec3&) { return true; };
    p.trigger_distance = 1e9;   // trigger on the first update, anywhere
    p.activation_delay = 0.07;  // 7 steps at dt = 0.01
    p.bind_speed = 0.0;         // never arrest: keep the Active count stable
    return p;
  }

  explicit PlateletWorld(bool populate)
      : sys(params(), std::make_shared<dpd::ChannelZ>(6.0)),
        platelets(std::make_shared<dpd::PlateletModel>(platelet_params())) {
    sys.add_module(platelets);
    if (populate) {
      sys.fill(2.0, dpd::kSolvent, 3, 0.1);
      platelets->seed_platelets(sys, 2, 7);
    }
  }

  void advance(int steps) {
    for (int s = 0; s < steps; ++s) {
      sys.step();
      platelets->update(sys);
    }
  }
  std::vector<std::uint8_t> state() const {
    resilience::BlobWriter w;
    sys.save_state(w);
    platelets->save_state(w);
    return w.take();
  }
  void restore(const std::vector<std::uint8_t>& snap) {
    resilience::BlobReader r(snap);
    sys.load_state(r);
    platelets->load_state(r);
    r.expect_end();
  }
};

TEST(RoundTrip, PlateletTriggerTimeSurvivesMidDelayRestart) {
  PlateletWorld a(/*populate=*/true);
  a.advance(3);  // triggered at the first update; activation 7 steps later
  ASSERT_EQ(a.platelets->count(dpd::PlateletState::Triggered), 2u);
  ASSERT_EQ(a.platelets->count(dpd::PlateletState::Active), 0u);

  PlateletWorld b(/*populate=*/false);
  b.restore(a.state());
  EXPECT_EQ(b.platelets->count(dpd::PlateletState::Triggered), 2u);

  // both worlds must flip Triggered -> Active on exactly the same step
  for (int s = 0; s < 8; ++s) {
    a.advance(1);
    b.advance(1);
    EXPECT_EQ(a.platelets->count(dpd::PlateletState::Active),
              b.platelets->count(dpd::PlateletState::Active))
        << "diverged at step " << s;
  }
  EXPECT_EQ(a.platelets->count(dpd::PlateletState::Active), 2u);
  EXPECT_EQ(a.state(), b.state());
}

nektar1d::ArterialNetwork make_bifurcation() {
  nektar1d::ArterialNetwork net;
  nektar1d::VesselParams vp;
  vp.elements = 4;
  vp.order = 3;
  const int parent = net.add_vessel(vp);
  vp.A0 = 0.3;
  const int child1 = net.add_vessel(vp);
  const int child2 = net.add_vessel(vp);
  net.set_inlet_flow(parent, [](double t) { return 1.0 + 0.3 * std::sin(6.28 * t); });
  net.set_outlet_rcr(child1, 100.0, 500.0, 1e-4);
  net.set_outlet_resistance(child2, 400.0);
  net.add_junction({{parent, nektar1d::End::Right},
                    {child1, nektar1d::End::Left},
                    {child2, nektar1d::End::Left}});
  return net;
}

TEST(RoundTrip, ArterialNetworkContinuesBitwise) {
  auto net = make_bifurcation();
  const double dt = 0.5 * net.suggested_dt();
  for (int s = 0; s < 20; ++s) net.step(dt);

  const auto snap = state_of(net);
  auto restored = make_bifurcation();
  resilience::BlobReader r(snap);
  restored.load_state(r);
  r.expect_end();

  for (int s = 0; s < 10; ++s) {
    net.step(dt);
    restored.step(dt);
  }
  EXPECT_EQ(state_of(net), state_of(restored));
  EXPECT_DOUBLE_EQ(net.time(), restored.time());
}

TEST(RoundTrip, ArterialNetworkTopologyMismatchIsLayoutError) {
  auto net = make_bifurcation();
  const auto snap = state_of(net);
  nektar1d::ArterialNetwork single;
  single.add_vessel({});
  resilience::BlobReader r(snap);
  EXPECT_THROW(single.load_state(r), resilience::LayoutError);
}

TEST(RoundTrip, StreamingWpodContinuesExactly) {
  wpod::StreamingWpod a;
  const std::size_t nbins = 12;
  auto snapshot_at = [&](int t) {
    la::Vector v(nbins);
    for (std::size_t b = 0; b < nbins; ++b)
      v[b] = std::sin(0.1 * t + 0.5 * static_cast<double>(b));
    return v;
  };
  int t = 0;
  for (; t < 21; ++t) a.push(snapshot_at(t));  // mid-stride: buffered state matters

  wpod::StreamingWpod b;
  const auto snap = state_of(a);
  resilience::BlobReader r(snap);
  b.load_state(r);
  r.expect_end();
  EXPECT_EQ(b.window(), a.window());
  EXPECT_EQ(b.analyses_done(), a.analyses_done());

  for (; t < 40; ++t) {
    auto ra = a.push(snapshot_at(t));
    auto rb = b.push(snapshot_at(t));
    ASSERT_EQ(ra.has_value(), rb.has_value());
    if (ra) {
      EXPECT_EQ(ra->k_mean, rb->k_mean);
      ASSERT_EQ(ra->eigenvalues.size(), rb->eigenvalues.size());
      for (std::size_t k = 0; k < ra->eigenvalues.size(); ++k)
        EXPECT_DOUBLE_EQ(ra->eigenvalues[k], rb->eigenvalues[k]);
    }
  }
  EXPECT_EQ(state_of(a), state_of(b));
}

// ---------------- mini coupled run: 2N steps == N + restart + N ----------------

struct MiniCoupled {
  mesh::QuadMesh msh;
  sem::Discretization disc;
  sem::NavierStokes2D ns;
  dpd::DpdSystem sys;
  dpd::FlowBc bc;
  coupling::ContinuumDpdCoupler cdc;
  dpd::FieldSampler sampler;

  static sem::NavierStokes2D::Params ns_params() {
    sem::NavierStokes2D::Params p;
    p.nu = 0.05;
    p.dt = 2e-3;
    return p;
  }
  static dpd::DpdParams dpd_params() {
    dpd::DpdParams p;
    p.box = {8.0, 4.0, 6.0};
    p.periodic = {false, true, false};
    p.dt = 0.01;
    return p;
  }
  static dpd::FlowBcParams bc_params() {
    dpd::FlowBcParams p;
    p.axis = 0;
    p.relax = 0.3;
    return p;
  }
  static coupling::ScaleMap scale_map() {
    coupling::ScaleMap s;
    s.L_ns = 1.0;
    s.L_dpd = 6.0;
    s.nu_ns = 0.05;
    s.nu_dpd = 2.5;
    return s;
  }
  static coupling::TimeProgression progression() {
    coupling::TimeProgression tp;
    tp.dt_ns = 2e-3;
    tp.exchange_every_ns = 1;
    tp.dpd_per_ns = 2;
    return tp;
  }
  static dpd::SamplerParams sampler_params() {
    dpd::SamplerParams p;
    p.nx = 1;
    p.ny = 1;
    p.nz = 6;
    return p;
  }

  explicit MiniCoupled(bool populate)
      : msh(mesh::QuadMesh::channel(2.0, 1.0, 4, 1)),
        disc(msh, 3),
        ns(disc, ns_params()),
        sys(dpd_params(), std::make_shared<dpd::ChannelZ>(6.0)),
        bc(bc_params()),
        cdc(ns, sys, bc, /*region=*/{0.5, 1.5, 0.0, 1.0}, scale_map(), progression()),
        sampler(sys, sampler_params()) {
    ns.set_velocity_bc(mesh::kInlet,
                       [](double, double y, double) { return 4.0 * y * (1.0 - y); },
                       [](double, double, double) { return 0.0; });
    ns.set_natural_bc(mesh::kOutlet);
    if (populate) {
      for (int s = 0; s < 20; ++s) ns.step();
      sys.fill(2.0, dpd::kSolvent, 3, 0.1);
    }
  }

  void register_components(resilience::CheckpointCoordinator& coord) {
    coord.add("ns2d", ns);
    coord.add("dpd", sys);
    coord.add("flowbc", bc);
    coord.add("cdc", cdc);
    coord.add("sampler", sampler);
  }
  void advance(int intervals) {
    for (int i = 0; i < intervals; ++i)
      cdc.advance_interval([&] { sampler.accumulate(sys); });
  }
  std::vector<std::uint8_t> state() const {
    resilience::BlobWriter w;
    ns.save_state(w);
    sys.save_state(w);
    bc.save_state(w);
    cdc.save_state(w);
    sampler.save_state(w);
    return w.take();
  }
};

TEST(RestartEquivalence, CoupledRunMatchesUninterruptedBitwise) {
  const std::string dir = test_dir("coupled");

  MiniCoupled uninterrupted(/*populate=*/true);
  uninterrupted.advance(4);

  MiniCoupled first_half(/*populate=*/true);
  first_half.advance(2);
  {
    resilience::CheckpointCoordinator coord;
    first_half.register_components(coord);
    coord.save(dir, 2, first_half.ns.time());
  }

  MiniCoupled resumed(/*populate=*/false);
  {
    resilience::CheckpointCoordinator coord;
    resumed.register_components(coord);
    const auto info = coord.load(dir);
    EXPECT_EQ(info.step, 2u);
  }
  resumed.advance(2);

  EXPECT_EQ(resumed.state(), uninterrupted.state());
  EXPECT_EQ(resumed.cdc.exchanges(), uninterrupted.cdc.exchanges());
}

// ---------------- replica failover ----------------

TEST(Failover, NothingLostIsANoOp) {
  xmp::run(6, [](xmp::Comm& world) {
    coupling::ReplicaEnsemble ens(world, 3);
    EXPECT_TRUE(ens.exchange_health(true));
    EXPECT_EQ(ens.num_replicas(), 3);
    EXPECT_EQ(ens.replicas_lost(), 0);
  });
}

TEST(Failover, SlaveReplicaLossShrinksToSurvivors) {
  xmp::run(6, [](xmp::Comm& world) {
    coupling::ReplicaEnsemble ens(world, 3);  // replicas {0,1},{2,3},{4,5}
    const int orig_rid = ens.replica_id();
    const bool healthy = world.rank() != 3;  // rank 3 dies -> replica 1 retired
    const bool alive = ens.exchange_health(healthy);

    if (orig_rid == 1) {
      EXPECT_FALSE(alive);
      EXPECT_FALSE(ens.replica_comm().valid());
      return;  // retired ranks leave the step loop
    }
    ASSERT_TRUE(alive);
    EXPECT_EQ(ens.num_replicas(), 2);
    EXPECT_EQ(ens.replicas_lost(), 1);
    // master replica untouched; old replica 2 renumbered to 1
    EXPECT_EQ(ens.replica_id(), orig_rid == 0 ? 0 : 1);
    EXPECT_EQ(ens.is_ensemble_root(), world.rank() == 0);

    // the ensemble average now runs over the survivors only
    std::vector<double> mine(3, static_cast<double>(orig_rid));
    const auto avg = ens.gather_average(mine);
    ASSERT_EQ(avg.size(), 3u);
    for (double v : avg) EXPECT_DOUBLE_EQ(v, 1.0);  // (0 + 2) / 2
  });
}

TEST(Failover, MasterLossPromotesLowestSurvivor) {
  xmp::run(6, [](xmp::Comm& world) {
    coupling::ReplicaEnsemble ens(world, 3);
    const int orig_rid = ens.replica_id();
    const bool healthy = world.rank() != 1;  // kill a master-replica member
    const bool alive = ens.exchange_health(healthy);

    if (orig_rid == 0) {
      EXPECT_FALSE(alive);
      return;
    }
    ASSERT_TRUE(alive);
    EXPECT_EQ(ens.num_replicas(), 2);
    // old replica 1 is the new master; its root (world rank 2) owns the
    // continuum channel now
    EXPECT_EQ(ens.replica_id(), orig_rid - 1);
    EXPECT_EQ(ens.is_master_replica(), orig_rid == 1);
    EXPECT_EQ(ens.is_ensemble_root(), world.rank() == 2);

    std::vector<double> mine(2, static_cast<double>(orig_rid));
    const auto avg = ens.gather_average(mine);
    for (double v : avg) EXPECT_DOUBLE_EQ(v, 1.5);  // (1 + 2) / 2
  });
}

TEST(Failover, EveryReplicaFailingThrows) {
  EXPECT_THROW(xmp::run(3,
                        [](xmp::Comm& world) {
                          coupling::ReplicaEnsemble ens(world, 3);
                          ens.exchange_health(false);
                        }),
               std::runtime_error);
}

TEST(Failover, RepeatedLossesAccumulate) {
  xmp::run(6, [](xmp::Comm& world) {
    coupling::ReplicaEnsemble ens(world, 3);
    const int orig_rid = ens.replica_id();
    if (!ens.exchange_health(world.rank() != 5)) return;  // lose replica 2
    if (!ens.exchange_health(world.rank() != 2)) return;  // then lose old replica 1
    EXPECT_EQ(ens.num_replicas(), 1);
    EXPECT_EQ(ens.replicas_lost(), 2);
    EXPECT_EQ(orig_rid, 0);
    EXPECT_TRUE(ens.is_master_replica());
  });
}

// ---------------- acceptance: continuum-side trace equivalence ----------------
//
// The ISSUE's acceptance criterion: under an injected slave-replica failure
// the coupled run completes and the continuum-side interface traffic (who
// talks to rank 0, how many messages, how many bytes) is IDENTICAL to a run
// that started with the surviving replica count. The continuum never learns
// the ensemble shrank.

constexpr int kInterfaceTag = 777;

std::map<std::tuple<int, int, std::string>, std::pair<std::uint64_t, std::uint64_t>>
interface_cells(const telemetry::CommMatrix& m) {
  std::map<std::tuple<int, int, std::string>, std::pair<std::uint64_t, std::uint64_t>> out;
  for (const auto& [key, cell] : m.cells()) {
    const auto& [src, dst, cls] = key;
    if (cls != "interface") continue;  // collectives classify by kind, not tag
    EXPECT_TRUE(src == 0 || dst == 0) << "interface traffic must touch the continuum";
    out[key] = {cell.messages, cell.bytes};
  }
  return out;
}

void coupled_replica_run(int atomistic_ranks, int replicas, int kill_world_rank,
                         telemetry::CommMatrix& matrix) {
  constexpr int kSteps = 3;
  xmp::run(
      1 + atomistic_ranks,
      [&](xmp::Comm& world) {
        const bool continuum = world.rank() == 0;
        xmp::Comm part = world.split(continuum ? 0 : 1, world.rank());
        if (continuum) {
          // The continuum side: answer kSteps interface exchanges from
          // whichever rank owns the channel (kAnySource: failover-agnostic).
          for (int s = 0; s < kSteps; ++s) {
            int src = -1;
            auto q = world.recv<double>(xmp::kAnySource, kInterfaceTag, &src);
            std::vector<double> reply(q.size(), 2.0 * static_cast<double>(s));
            world.send(src, kInterfaceTag, reply);
          }
          return;
        }

        coupling::ReplicaEnsemble ens(part, replicas);
        // step-0 process fault on the scheduled victim, reported through the
        // health exchange; retired ranks exit before any interface traffic
        const bool healthy = world.rank() != kill_world_rank;
        if (!ens.exchange_health(healthy)) return;

        for (int s = 0; s < kSteps; ++s) {
          std::vector<double> mine(4, static_cast<double>(world.rank()));
          auto avg = ens.gather_average(mine);
          if (ens.is_ensemble_root()) {
            world.send(0, kInterfaceTag, avg);
            auto reply = world.recv<double>(0, kInterfaceTag);
            ens.distribute(std::move(reply));
          } else {
            ens.distribute({});
          }
        }
      },
      matrix.sink());
}

TEST(Failover, ContinuumInterfaceTraceIsIdenticalToSurvivorCountRun) {
  telemetry::TagClasses classes;
  classes.add(kInterfaceTag, "interface");

  // 6 atomistic ranks in 3 replicas; world rank 3 (slave replica 1) dies
  telemetry::CommMatrix with_failure{classes};
  coupled_replica_run(/*atomistic_ranks=*/6, /*replicas=*/3, /*kill_world_rank=*/3,
                      with_failure);

  // reference: born with the surviving replica count, no failure
  telemetry::CommMatrix reference{classes};
  coupled_replica_run(/*atomistic_ranks=*/4, /*replicas=*/2, /*kill_world_rank=*/-1,
                      reference);

  const auto a = interface_cells(with_failure);
  const auto b = interface_cells(reference);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b) << "failure run:\n"
                  << with_failure.format() << "\nreference run:\n" << reference.format();
}

// ---------------- ensemble bookkeeping checkpoint ----------------

TEST(Failover, EnsembleShapeCheckpointVerifiesOnLoad) {
  xmp::run(6, [](xmp::Comm& world) {
    coupling::ReplicaEnsemble ens(world, 3);
    const auto snap = state_of(ens);
    resilience::BlobReader ok(snap);
    EXPECT_NO_THROW(ens.load_state(ok));

    coupling::ReplicaEnsemble other(world, 2);  // different shape must refuse
    resilience::BlobReader bad(snap);
    EXPECT_THROW(other.load_state(bad), resilience::LayoutError);
  });
}

}  // namespace
