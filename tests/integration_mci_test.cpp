// End-to-end distributed coupling over the MCI machinery: two solver tasks,
// each running a *real* distributed computation on its own L3 communicator
// (a 1D diffusion solver with intra-task halo exchange), coupled through
// derive_l4 + InterfaceChannel exactly as NektarG couples patches. This is
// the paper's architecture in miniature, executed for real on the xmp
// runtime.
//
// Problem: steady heat conduction on [0, 2] with u(0) = 0, u(2) = 2.
// Task 0 owns [0, 1+h], task 1 owns [1-h, 2] (overlapping patches). Every
// step, each task sends the temperature at its interior sample point to the
// peer, which imposes it as a Dirichlet condition on its artificial
// boundary (overlapping Schwarz, like the multi-patch solver). The coupled
// steady state must be the single-domain solution u = x.

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <string>
#include <vector>

#include "coupling/mci.hpp"
#include "coupling/replica.hpp"
#include "xmp/comm.hpp"

namespace {

/// Distributed explicit 1D diffusion on an L3 communicator: `n_local` cells
/// per rank, halo exchange with L3 neighbours each step, Dirichlet values at
/// the two task-domain ends.
class DistributedDiffusion {
public:
  DistributedDiffusion(const xmp::Comm& l3, std::size_t n_local, double x0, double dx)
      : l3_(l3), n_(n_local), dx_(dx) {
    u_.assign(n_, 0.0);
    x0_rank_ = x0 + static_cast<double>(l3.rank()) * static_cast<double>(n_) * dx;
  }

  double x_of(std::size_t i) const { return x0_rank_ + (static_cast<double>(i) + 0.5) * dx_; }
  double& left_bc() { return left_bc_; }
  double& right_bc() { return right_bc_; }

  void step(double alpha_dt_over_dx2) {
    // halo exchange with neighbouring ranks in the task
    double left_halo = left_bc_, right_halo = right_bc_;
    const int r = l3_.rank(), sz = l3_.size();
    if (r > 0) l3_.send(r - 1, 1, std::vector<double>{u_.front()});
    if (r + 1 < sz) l3_.send(r + 1, 2, std::vector<double>{u_.back()});
    if (r + 1 < sz) right_halo = l3_.recv<double>(r + 1, 1)[0];
    if (r > 0) left_halo = l3_.recv<double>(r - 1, 2)[0];

    std::vector<double> nu(n_);
    for (std::size_t i = 0; i < n_; ++i) {
      const double ul = i == 0 ? left_halo : u_[i - 1];
      const double ur = i + 1 == n_ ? right_halo : u_[i + 1];
      nu[i] = u_[i] + alpha_dt_over_dx2 * (ul - 2.0 * u_[i] + ur);
    }
    u_ = std::move(nu);
  }

  /// Value at global coordinate x if owned by this rank, else 0 (combine
  /// with an allreduce-max or ownership logic).
  double sample(double x) const {
    const double rel = (x - x0_rank_) / dx_ - 0.5;
    const long i = std::lround(rel);
    if (i < 0 || i >= static_cast<long>(n_)) return 0.0;
    return u_[static_cast<std::size_t>(i)];
  }
  bool owns(double x) const {
    const double rel = (x - x0_rank_) / dx_ - 0.5;
    const long i = std::lround(rel);
    return i >= 0 && i < static_cast<long>(n_);
  }

  const std::vector<double>& values() const { return u_; }

private:
  xmp::Comm l3_;
  std::size_t n_;
  double dx_, x0_rank_;
  std::vector<double> u_;
  double left_bc_ = 0.0, right_bc_ = 0.0;
};

TEST(MciIntegration, TwoDistributedSolversReachCoupledSteadyState) {
  constexpr int kRanksPerTask = 3;
  constexpr std::size_t kCellsPerRank = 10;
  constexpr double kDx = (1.0 + 2.0 / 30.0) / 30.0;  // each task spans 1 + overlap

  xmp::run(2 * kRanksPerTask, [&](xmp::Comm& world) {
    coupling::MciConfig cfg;
    cfg.rack_of.assign(6, 0);
    cfg.task_of = {0, 0, 0, 1, 1, 1};
    auto mci = coupling::build_mci(world, cfg);

    // task 0: [0, 1+2h]; task 1: [1-2h, 2] (overlap of 4h)
    const double span = 3.0 * kCellsPerRank * kDx;
    const double x0 = mci.task == 0 ? 0.0 : 2.0 - span;
    DistributedDiffusion solver(mci.l3, kCellsPerRank, x0, kDx);

    // interface sample points: each task reads the peer's value at its own
    // artificial boundary
    const double my_iface = mci.task == 0 ? x0 + span : x0;         // my artificial end
    const double peer_iface = mci.task == 0 ? 2.0 - span : span;    // peer's artificial end

    // L4: the single rank owning the peer's requested sample
    const bool in_l4 = solver.owns(peer_iface) &&
                       (mci.task == 0 ? mci.l3.rank() == kRanksPerTask - 1
                                      : mci.l3.rank() == 0);
    // the rank adjacent to my artificial boundary needs the received value
    const bool is_boundary_rank =
        mci.task == 0 ? mci.l3.rank() == kRanksPerTask - 1 : mci.l3.rank() == 0;

    xmp::Comm l4 = coupling::derive_l4(mci.l3, in_l4 || is_boundary_rank);
    // both sides: L4 root is world rank 2 (task 0) / 3 (task 1)
    const int peer_root = mci.task == 0 ? 3 : 2;
    std::vector<std::size_t> my_samples = l4.valid() ? std::vector<std::size_t>{0}
                                                     : std::vector<std::size_t>{};
    std::unique_ptr<coupling::InterfaceChannel> chan;
    if (l4.valid())
      chan = std::make_unique<coupling::InterfaceChannel>(world, l4, peer_root, 1,
                                                          my_samples, 77);

    // true ends of the composite domain (ghost-cell-center values of u = x)
    if (mci.task == 0 && mci.l3.rank() == 0) solver.left_bc() = -0.5 * kDx;
    if (mci.task == 1 && mci.l3.rank() == kRanksPerTask - 1)
      solver.right_bc() = 2.0 + 0.5 * kDx;

    for (int step = 0; step < 20000; ++step) {
      // 3-step interface exchange once per step (paper Sec. 3.2)
      if (chan) {
        chan->send({solver.sample(peer_iface)});
        const auto got = chan->recv();
        if (mci.task == 0)
          solver.right_bc() = got[0];
        else
          solver.left_bc() = got[0];
      }
      solver.step(0.25);
      (void)my_iface;
    }

    // steady state: u = x everywhere (tolerance covers the half-cell offsets
    // of the sampled interface values)
    for (std::size_t i = 0; i < kCellsPerRank; ++i)
      EXPECT_NEAR(solver.values()[i], solver.x_of(i), 0.05)
          << "task " << mci.task << " rank " << mci.l3.rank() << " cell " << i;
  });
}

TEST(MciIntegration, ReplicatedAtomisticTaskFeedsContinuumRoot) {
  // The Fig. 6 arrangement end-to-end: the atomistic task's L3 is split into
  // 2 replicas; each replica produces a noisy "measurement" (here a
  // deterministic pseudo-noise per replica), the ensemble root averages and
  // ships ONE message to the continuum task root.
  xmp::run(6, [](xmp::Comm& world) {
    coupling::MciConfig cfg;
    cfg.rack_of.assign(6, 0);
    cfg.task_of = {0, 0, 1, 1, 1, 1};  // task 0 = continuum, task 1 = atomistic
    auto mci = coupling::build_mci(world, cfg);

    if (mci.task == 1) {
      coupling::ReplicaEnsemble ens(mci.l3, 2);
      // each replica's root contributes 10 + replica-dependent offset
      std::vector<double> mine = {10.0 + (ens.replica_id() == 0 ? 1.0 : -1.0)};
      auto avg = ens.gather_average(mine);
      ASSERT_EQ(avg.size(), 1u);
      EXPECT_DOUBLE_EQ(avg[0], 10.0);  // offsets cancel in the ensemble mean
      if (ens.is_ensemble_root()) world.send(0, 5, avg);
    } else if (mci.l3.rank() == 0) {
      auto got = world.recv<double>(xmp::kAnySource, 5);
      EXPECT_DOUBLE_EQ(got[0], 10.0);
    }
  });
}

TEST(MciIntegration, BothSidesRecvIsCaughtAsDeadlockInCheckedMode) {
  if (!xmp::checked_available()) GTEST_SKIP() << "built without XMP_CHECKED";
  xmp::CheckOptions opts;
  opts.enabled = true;
  opts.poll_interval = std::chrono::milliseconds(5);
  try {
    xmp::run(
        2,
        [](xmp::Comm& world) {
          coupling::MciConfig cfg;
          cfg.rack_of = {0, 0};
          cfg.task_of = {0, 1};
          auto mci = coupling::build_mci(world, cfg);
          xmp::Comm l4 = coupling::derive_l4(mci.l3, true);
          const int peer_root = mci.task == 0 ? 1 : 0;
          coupling::InterfaceChannel chan(world, l4, peer_root, 1, {0}, 9);
          // Protocol error: BOTH sides enter the receive half of the 3-step
          // exchange first, so each L4 root blocks on the other's message.
          (void)chan.recv();
        },
        nullptr, opts);
    FAIL() << "expected xmp::CheckError";
  } catch (const xmp::CheckError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("deadlock detected"), std::string::npos) << msg;
    EXPECT_NE(msg.find("recv"), std::string::npos) << msg;
  }
}

TEST(MciIntegration, ThreeStepExchangeRunsCleanUnderCheckedMode) {
  if (!xmp::checked_available()) GTEST_SKIP() << "built without XMP_CHECKED";
  // Positive control: the correct 3-step protocol (one side sends first, the
  // other receives first) must produce no checked-mode diagnostic.
  xmp::CheckOptions opts;
  opts.enabled = true;
  opts.poll_interval = std::chrono::milliseconds(5);
  xmp::run(
      6,
      [](xmp::Comm& world) {
        coupling::MciConfig cfg;
        cfg.rack_of.assign(6, 0);
        cfg.task_of = {0, 0, 0, 1, 1, 1};
        auto mci = coupling::build_mci(world, cfg);
        xmp::Comm l4 = coupling::derive_l4(mci.l3, true);
        const int peer_root = mci.task == 0 ? 3 : 0;
        std::vector<std::size_t> mine = {static_cast<std::size_t>(l4.rank())};
        coupling::InterfaceChannel ch(world, l4, peer_root, 3, mine, 11);
        for (int i = 0; i < 5; ++i) {
          if (mci.task == 0) {
            ch.send({1.0 + i});
            const auto got = ch.recv();
            ASSERT_EQ(got.size(), 1u);
            EXPECT_DOUBLE_EQ(got[0], 2.0 + i);
          } else {
            const auto got = ch.recv();
            ch.send({got[0] + 1.0});
          }
        }
      },
      nullptr, opts);
}

}  // namespace

#include "machine/cost.hpp"
#include "machine/torus.hpp"

namespace {

TEST(MciIntegration, TracedExchangeReplaysOnModeledMachine) {
  // Close the loop the scaling benches rely on: record the *actual* message
  // pattern of a 3-step interface exchange with the xmp trace hook, then
  // replay exactly those messages through the machine cost model.
  std::mutex mu;
  std::vector<xmp::TraceEvent> events;
  xmp::run(6, [&](xmp::Comm& world) {
    coupling::MciConfig cfg;
    cfg.rack_of.assign(6, 0);
    cfg.task_of = {0, 0, 0, 1, 1, 1};
    auto mci = coupling::build_mci(world, cfg);
    xmp::Comm l4 = coupling::derive_l4(mci.l3, true);
    const int peer_root = mci.task == 0 ? 3 : 0;
    std::vector<std::size_t> mine = {static_cast<std::size_t>(l4.rank()),
                                     static_cast<std::size_t>(l4.rank() + 3)};
    coupling::InterfaceChannel ch(world, l4, peer_root, 6, mine, 42);
    // Collective install (all ranks call set_trace); the tag filter keeps
    // only the interface payload, not the logical collective traffic.
    world.set_trace([&](const xmp::TraceEvent& e) {
      if (e.tag == 42) {
        std::lock_guard lk(mu);
        events.push_back(e);
      }
    });
    std::vector<double> vals(2, 1.5);
    ch.send(vals);
    ch.recv();
    world.set_trace(nullptr);
  });

  ASSERT_EQ(events.size(), 2u);  // root-to-root, one per direction
  machine::TorusSpec spec;
  spec.nx = 4;
  spec.ny = 2;
  spec.nz = 1;
  spec.cores_per_node = 1;  // map each world rank to its own node
  machine::Torus torus(spec);
  std::vector<machine::Message> phase;
  for (const auto& e : events)
    phase.push_back({e.src_world, e.dst_world, static_cast<double>(e.bytes)});
  const auto cost = machine::phase_cost(torus, phase);
  EXPECT_GT(cost.total(), 0.0);
  EXPECT_GT(cost.latency_time, 0.0);
  // payload 48 B each way over one 425 MB/s link
  EXPECT_NEAR(cost.link_time, 48.0 / torus.spec().link_bandwidth, 1e-12);
}

}  // namespace
