// Tests for the spatial domain decomposition (src/dpd/exchange/): grid
// geometry, halo/migration protocols, and the tentpole gate — N-rank
// distributed runs reproduce the single-rank trajectory digest *bitwise*
// under HaloMode::Symmetric (tolerance-pinned under ReverseOnce), including
// across a mid-run checkpoint/restart. Also pins the gid-keyed pair RNG
// (trajectories invariant to local index layout and to removal compaction)
// and the exchange telemetry counters / CommMatrix attribution.

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstdint>
#include <mutex>
#include <set>
#include <vector>

#include "dpd/bonds.hpp"
#include "dpd/exchange/decomposition.hpp"
#include "dpd/exchange/distributed.hpp"
#include "dpd/exchange/exchangers.hpp"
#include "dpd/geometry.hpp"
#include "dpd/platelets.hpp"
#include "dpd/system.hpp"
#include "resilience/blob.hpp"
#include "telemetry/comm_matrix.hpp"
#include "telemetry/registry.hpp"
#include "xmp/comm.hpp"

namespace {

using dpd::Vec3;
using dpd::exchange::Decomposition;
using dpd::exchange::DistOptions;
using dpd::exchange::DistributedDpd;
using dpd::exchange::GridDims;
using dpd::exchange::HaloMode;
using dpd::exchange::trajectory_digest;

// ---------------------------------------------------------------- geometry

TEST(Decomposition, AutoDimsCoverRanksAndSplitLongAxesFirst) {
  const Vec3 box{20.0, 10.0, 10.0};
  for (int n : {1, 2, 3, 4, 6, 8}) {
    const GridDims d = dpd::exchange::auto_dims(n, box);
    EXPECT_EQ(d.count(), n) << n << " ranks";
  }
  // splitting the long axis minimises the per-rank surface
  EXPECT_EQ(dpd::exchange::auto_dims(2, box).px, 2);
  const GridDims d4 = dpd::exchange::auto_dims(4, box);
  EXPECT_GE(d4.px, 2);
}

TEST(Decomposition, RankOfPositionRoundTripsAndWraps) {
  const Vec3 box{20.0, 10.0, 10.0};
  Decomposition d(box, {true, true, false}, {2, 2, 1}, 1.3);
  for (int r = 0; r < d.nranks(); ++r) {
    const auto sd = d.subdomain(r);
    const Vec3 c = (sd.lo + sd.hi) * 0.5;
    EXPECT_EQ(d.rank_of_position(c), r);
  }
  // periodic wrap on x: a point one box-length out lands in the same rank
  EXPECT_EQ(d.rank_of_position({1.0, 1.0, 5.0}), d.rank_of_position({21.0, 1.0, 5.0}));
  // non-periodic z: points beyond the wall clamp into the boundary slab
  EXPECT_EQ(d.rank_of_position({1.0, 1.0, -3.0}), d.rank_of_position({1.0, 1.0, 0.1}));
}

TEST(Decomposition, NeighborsAreSymmetricSortedAndExcludeSelf) {
  Decomposition d({20.0, 10.0, 10.0}, {true, true, false}, {2, 2, 1}, 1.3);
  for (int r = 0; r < d.nranks(); ++r) {
    const auto& nb = d.neighbors(r);
    EXPECT_TRUE(std::is_sorted(nb.begin(), nb.end()));
    for (int n : nb) {
      EXPECT_NE(n, r);
      const auto& back = d.neighbors(n);
      EXPECT_TRUE(std::find(back.begin(), back.end(), r) != back.end());
    }
  }
}

TEST(Decomposition, Dist2ToSubdomainUsesMinimumImage) {
  Decomposition d({20.0, 10.0, 10.0}, {true, true, false}, {2, 1, 1}, 1.3);
  // rank 0 owns x in [0, 10); a point at x = 19.9 is 0.1 away through the
  // periodic seam, not 9.9 away through the interior
  EXPECT_NEAR(d.dist2_to_subdomain({19.9, 5.0, 5.0}, 0), 0.01, 1e-12);
  EXPECT_TRUE(d.in_halo_of({19.9, 5.0, 5.0}, 0));
  EXPECT_FALSE(d.in_halo_of({15.0, 5.0, 5.0}, 0));
}

// --------------------------------------------------- movable cut planes

TEST(Decomposition, SetBoundsMovesOwnershipAndValidates) {
  Decomposition d({20.0, 10.0, 10.0}, {true, true, false}, {2, 1, 1}, 1.3);
  EXPECT_EQ(d.bounds(0), (std::vector<double>{0.0, 10.0, 20.0}));
  d.set_bounds(0, {0.0, 12.5, 20.0});
  EXPECT_EQ(d.rank_of_position({11.0, 5.0, 5.0}), 0);
  EXPECT_EQ(d.rank_of_position({13.0, 5.0, 5.0}), 1);
  EXPECT_NEAR(d.subdomain(0).hi.x, 12.5, 1e-12);
  EXPECT_THROW(d.set_bounds(3, {0.0, 10.0, 20.0}), std::invalid_argument);
  EXPECT_THROW(d.set_bounds(0, {0.0, 20.0}), std::invalid_argument);          // wrong count
  EXPECT_THROW(d.set_bounds(0, {1.0, 10.0, 20.0}), std::invalid_argument);    // span
  EXPECT_THROW(d.set_bounds(0, {0.0, 0.0, 20.0}), std::invalid_argument);     // not ascending
}

TEST(Decomposition, RebalanceMovesCutsTowardEqualCountsWithBoundedShift) {
  const double halo = 1.3;
  Decomposition d({20.0, 10.0, 10.0}, {true, true, false}, {2, 1, 1}, halo);
  std::array<std::vector<double>, 3> hist;
  hist[0].assign(8, 0.0);
  hist[0][0] = hist[0][1] = 100.0;  // all mass in x < 5: equal-count cut is 2.5
  ASSERT_TRUE(d.rebalance(hist));
  const double cut1 = d.bounds(0)[1];
  EXPECT_LT(cut1, 10.0);                           // moved toward the mass
  EXPECT_NEAR(cut1, 10.0 - 0.9 * halo, 1e-9);      // but clamped to the halo-bounded step
  ASSERT_TRUE(d.rebalance(hist));
  EXPECT_LT(d.bounds(0)[1], cut1);                 // repeated calls keep converging
  // a balanced histogram leaves an already-uniform layout untouched
  Decomposition u({20.0, 10.0, 10.0}, {true, true, false}, {2, 1, 1}, halo);
  std::array<std::vector<double>, 3> flat;
  flat[0].assign(8, 50.0);
  EXPECT_FALSE(u.rebalance(flat));
  EXPECT_EQ(u.bounds(0), (std::vector<double>{0.0, 10.0, 20.0}));
}

TEST(Decomposition, RebalanceKeepsSingleSlabAxesAndRespectsMinGap) {
  Decomposition d({20.0, 10.0, 10.0}, {true, true, false}, {2, 1, 1}, 1.3);
  std::array<std::vector<double>, 3> hist;
  hist[1].assign(8, 10.0);  // y has one slab: nothing to move
  EXPECT_FALSE(d.rebalance(hist));
  // driving the cut repeatedly toward zero must stop at the minimum slab
  // width, never produce an inverted or empty slab
  std::array<std::vector<double>, 3> skew;
  skew[0].assign(8, 0.0);
  skew[0][0] = 1.0;
  for (int it = 0; it < 64; ++it) d.rebalance(skew);
  const auto& b = d.bounds(0);
  EXPECT_GT(b[1], 0.0);
  EXPECT_GT(b[2] - b[1], 0.5 * std::min(1.3, 10.0) - 1e-12);
  EXPECT_GT(b[1] - b[0], 0.5 * std::min(1.3, 10.0) - 1e-12);
}

// -------------------------------------------------- the equivalence gate

dpd::DpdParams channel_params() {
  dpd::DpdParams p;
  p.box = {12.0, 6.0, 6.0};
  p.periodic = {true, true, false};
  return p;
}

// Replicated deterministic setup: every rank (and the single-rank
// reference) builds the identical population through the same code path.
std::shared_ptr<dpd::DpdSystem> make_channel_system() {
  const auto prm = channel_params();
  auto sys = std::make_shared<dpd::DpdSystem>(prm, std::make_shared<dpd::ChannelZ>(prm.box.z));
  sys->fill(3.0, dpd::kSolvent, 42);
  sys->set_body_force([](const Vec3&, dpd::Species) { return Vec3{0.05, 0.0, 0.0}; });
  return sys;
}

std::uint64_t single_rank_digest(int steps) {
  auto sys = make_channel_system();
  for (int s = 0; s < steps; ++s) sys->step();
  return trajectory_digest(*sys);
}

std::uint64_t distributed_digest_opt(int nranks, int steps, DistOptions opt) {
  std::uint64_t out = 0;
  xmp::run(nranks, [&](xmp::Comm& world) {
    auto sys = make_channel_system();
    DistributedDpd drv(world, *sys, opt);
    drv.distribute();
    for (int s = 0; s < steps; ++s) sys->step();
    const std::uint64_t d = drv.global_digest();
    if (world.rank() == 0) out = d;
  });
  return out;
}

std::uint64_t distributed_digest(int nranks, int steps, HaloMode mode = HaloMode::Symmetric) {
  DistOptions opt;
  opt.mode = mode;
  return distributed_digest_opt(nranks, steps, opt);
}

TEST(ExchangeEquivalence, TwoRankSymmetricRunIsBitwiseEqual) {
  EXPECT_EQ(distributed_digest(2, 40), single_rank_digest(40));
}

TEST(ExchangeEquivalence, FourRankSymmetricRunIsBitwiseEqual) {
  EXPECT_EQ(distributed_digest(4, 40), single_rank_digest(40));
}

TEST(ExchangeEquivalence, OverlappedTwoRankSymmetricRunIsBitwiseEqual) {
  // The overlapped pair pass (interior rows while the split-phase halo
  // flies, boundary rows after, staged canonical-order scatter replay) must
  // not change a single bit of the trajectory.
  DistOptions opt;
  opt.overlap = true;
  EXPECT_EQ(distributed_digest_opt(2, 40, opt), single_rank_digest(40));
}

TEST(ExchangeEquivalence, OverlappedFourRankSymmetricRunIsBitwiseEqual) {
  DistOptions opt;
  opt.overlap = true;
  EXPECT_EQ(distributed_digest_opt(4, 40, opt), single_rank_digest(40));
}

TEST(ExchangeEquivalence, DigestAgreesOnEveryRank) {
  std::mutex mu;
  std::set<std::uint64_t> digests;
  xmp::run(2, [&](xmp::Comm& world) {
    auto sys = make_channel_system();
    DistributedDpd drv(world, *sys);
    drv.distribute();
    for (int s = 0; s < 5; ++s) sys->step();
    const std::uint64_t d = drv.global_digest();
    std::lock_guard<std::mutex> lk(mu);
    digests.insert(d);
  });
  EXPECT_EQ(digests.size(), 1u);
}

TEST(ExchangeEquivalence, RestartAcrossMidRunCheckpointIsBitwiseEqual) {
  const int pre = 20, post = 20;
  const std::uint64_t ref = single_rank_digest(pre + post);
  std::uint64_t out = 0;
  xmp::run(2, [&](xmp::Comm& world) {
    std::vector<std::uint8_t> blob;  // per-rank checkpoint
    {
      auto sys = make_channel_system();
      DistributedDpd drv(world, *sys);
      drv.distribute();
      for (int s = 0; s < pre; ++s) sys->step();
      resilience::BlobWriter w;
      sys->save_state(w);
      drv.save_state(w);
      blob = w.take();
    }
    // fresh process stand-in: rebuild the same configuration, then load
    auto sys = make_channel_system();
    DistributedDpd drv(world, *sys);
    resilience::BlobReader r(blob);
    sys->load_state(r);
    drv.load_state(r);
    for (int s = 0; s < post; ++s) sys->step();
    const std::uint64_t d = drv.global_digest();
    if (world.rank() == 0) out = d;
  });
  EXPECT_EQ(out, ref);
}

TEST(ExchangeEquivalence, OverlappedRestartAcrossMidRunCheckpointIsBitwiseEqual) {
  // Same gate with the overlapped halo path on both sides of the
  // checkpoint: no in-flight overlap state may leak into (or be needed
  // from) the blob — refresh() always begins and pair_forces always
  // finishes the split-phase update within one force evaluation.
  const int pre = 20, post = 20;
  const std::uint64_t ref = single_rank_digest(pre + post);
  std::uint64_t out = 0;
  xmp::run(2, [&](xmp::Comm& world) {
    DistOptions opt;
    opt.overlap = true;
    std::vector<std::uint8_t> blob;
    {
      auto sys = make_channel_system();
      DistributedDpd drv(world, *sys, opt);
      drv.distribute();
      for (int s = 0; s < pre; ++s) sys->step();
      resilience::BlobWriter w;
      sys->save_state(w);
      drv.save_state(w);
      blob = w.take();
    }
    auto sys = make_channel_system();
    DistributedDpd drv(world, *sys, opt);
    resilience::BlobReader r(blob);
    sys->load_state(r);
    drv.load_state(r);
    for (int s = 0; s < post; ++s) sys->step();
    const std::uint64_t d = drv.global_digest();
    if (world.rank() == 0) out = d;
  });
  EXPECT_EQ(out, ref);
}

// Replicated deterministic setup with all particles crowded into x < 6 —
// the worst case for a uniform x-split (one rank owns everything).
std::shared_ptr<dpd::DpdSystem> make_skewed_system() {
  const auto prm = channel_params();
  auto sys = std::make_shared<dpd::DpdSystem>(prm, std::make_shared<dpd::ChannelZ>(prm.box.z));
  sys->fill(3.0, dpd::kSolvent, 42);
  std::vector<std::size_t> drop;
  for (std::size_t i = 0; i < sys->size(); ++i)
    if (sys->positions()[i].x > 6.0) drop.push_back(i);
  sys->remove_particles(std::move(drop));
  sys->set_body_force([](const Vec3&, dpd::Species) { return Vec3{0.05, 0.0, 0.0}; });
  return sys;
}

TEST(ExchangeRebalance, SkewedRunMovesCutsAndStaysBitwiseEqual) {
  // Particle-count load balancing is trajectory-neutral: shifting the cut
  // planes forces a rebuild under a different ownership layout, but under
  // HaloMode::Symmetric the digest must still match the single-rank run
  // bitwise — while the cuts demonstrably moved off the uniform layout.
  const int steps = 30;
  std::uint64_t ref = 0;
  {
    auto sys = make_skewed_system();
    for (int s = 0; s < steps; ++s) sys->step();
    ref = trajectory_digest(*sys);
  }
  std::uint64_t out = 0;
  std::vector<double> cuts_after;
  xmp::run(2, [&](xmp::Comm& world) {
    auto sys = make_skewed_system();
    DistOptions opt;
    opt.dims = {2, 1, 1};
    opt.overlap = true;
    opt.rebalance_every = 5;
    DistributedDpd drv(world, *sys, opt);
    drv.distribute();
    for (int s = 0; s < steps; ++s) sys->step();
    const std::uint64_t d = drv.global_digest();
    if (world.rank() == 0) {
      out = d;
      cuts_after = drv.decomposition().bounds(0);
    }
  });
  EXPECT_EQ(out, ref);
  ASSERT_EQ(cuts_after.size(), 3u);
  EXPECT_LT(cuts_after[1], 6.0 - 0.5)
      << "the empty-half skew should have pulled the x cut well below uniform";
}

TEST(ExchangeRebalance, RestartAfterRebalanceRestoresMovedCuts) {
  // A checkpoint taken *after* cuts moved must restore the moved layout:
  // restarting under uniform cuts would migrate the whole population on the
  // first refresh and can violate the neighbour-shell bound. The digest gate
  // doubles as the trajectory check.
  const int pre = 12, post = 12;
  std::uint64_t ref = 0;
  {
    auto sys = make_skewed_system();
    for (int s = 0; s < pre + post; ++s) sys->step();
    ref = trajectory_digest(*sys);
  }
  std::uint64_t out = 0;
  bool cuts_restored = false;
  xmp::run(2, [&](xmp::Comm& world) {
    DistOptions opt;
    opt.dims = {2, 1, 1};
    opt.overlap = true;
    opt.rebalance_every = 3;
    std::vector<std::uint8_t> blob;
    std::vector<double> cuts_at_save;
    {
      auto sys = make_skewed_system();
      DistributedDpd drv(world, *sys, opt);
      drv.distribute();
      for (int s = 0; s < pre; ++s) sys->step();
      cuts_at_save = drv.decomposition().bounds(0);
      resilience::BlobWriter w;
      sys->save_state(w);
      drv.save_state(w);
      blob = w.take();
    }
    auto sys = make_skewed_system();
    DistributedDpd drv(world, *sys, opt);
    resilience::BlobReader r(blob);
    sys->load_state(r);
    drv.load_state(r);
    const bool restored = drv.decomposition().bounds(0) == cuts_at_save &&
                          cuts_at_save != std::vector<double>{0.0, 6.0, 12.0};
    for (int s = 0; s < post; ++s) sys->step();
    const std::uint64_t d = drv.global_digest();
    if (world.rank() == 0) {
      out = d;
      cuts_restored = restored;
    }
  });
  EXPECT_EQ(out, ref);
  EXPECT_TRUE(cuts_restored) << "load_state must restore the post-rebalance cut planes";
}

TEST(ExchangeEquivalence, ReverseOnceModeIsTolerancePinned) {
  // ReverseOnce computes each cross-boundary pair once and reverse-ships
  // the other half; the changed per-particle accumulation order leaves
  // O(ulp) differences that chaotic amplification grows — pinned here at
  // 1e-8 over 10 steps (documented in docs/PERF.md).
  const int steps = 10;
  auto ref = make_channel_system();
  for (int s = 0; s < steps; ++s) ref->step();
  std::vector<dpd::ParticleRecord> ref_recs;
  for (std::size_t i = 0; i < ref->size(); ++i) ref_recs.push_back(ref->particle_record(i));
  std::sort(ref_recs.begin(), ref_recs.end(),
            [](const dpd::ParticleRecord& a, const dpd::ParticleRecord& b) {
              return a.gid < b.gid;
            });

  double max_err = -1.0;
  xmp::run(2, [&](xmp::Comm& world) {
    auto sys = make_channel_system();
    DistOptions opt;
    opt.mode = HaloMode::ReverseOnce;
    DistributedDpd drv(world, *sys, opt);
    drv.distribute();
    for (int s = 0; s < steps; ++s) sys->step();
    const auto all = drv.gather(0);
    if (world.rank() != 0) return;
    ASSERT_EQ(all.size(), ref_recs.size());
    double err = 0.0;
    for (std::size_t i = 0; i < all.size(); ++i) {
      ASSERT_EQ(all[i].gid, ref_recs[i].gid);
      err = std::max(err, (all[i].pos - ref_recs[i].pos).norm());
      err = std::max(err, (all[i].vel - ref_recs[i].vel).norm());
    }
    max_err = err;
  });
  ASSERT_GE(max_err, 0.0);
  EXPECT_LT(max_err, 1e-8);
}

// ----------------------------------------------- migration & diagnostics

TEST(ExchangeMigration, OwnershipMovesAndGlobalCountIsConserved) {
  telemetry::Registry::reset_all();
  telemetry::set_enabled(true);
  std::mutex mu;
  double migrated = 0.0, halo_particles = 0.0, halo_bytes = 0.0;
  std::int64_t count0 = 0, countN = 0;
  double temp = -1.0;
  xmp::run(2, [&](xmp::Comm& world) {
    auto sys = make_channel_system();
    DistributedDpd drv(world, *sys);
    drv.distribute();
    const std::int64_t c0 = drv.global_count();
    for (int s = 0; s < 60; ++s) sys->step();
    const std::int64_t cn = drv.global_count();
    const double t = drv.kinetic_temperature();
    const auto counters = telemetry::Registry::local().counters();
    std::lock_guard<std::mutex> lk(mu);
    if (world.rank() == 0) {
      count0 = c0;
      countN = cn;
      temp = t;
    }
    auto get = [&](const char* name) {
      const auto it = counters.find(name);
      return it == counters.end() ? 0.0 : it->second.value;
    };
    migrated += get("dpd.migrate.count");
    halo_particles += get("dpd.halo.particles");
    halo_bytes += get("dpd.halo.bytes");
  });
  telemetry::set_enabled(false);
  EXPECT_GT(count0, 0);
  EXPECT_EQ(count0, countN);  // migration moves ownership, never particles
  EXPECT_GT(migrated, 0.0) << "60 body-forced steps should migrate someone";
  EXPECT_GT(halo_particles, 0.0);
  EXPECT_GT(halo_bytes, 0.0);
  EXPECT_GT(temp, 0.0);
}

TEST(ExchangeTelemetry, CommMatrixAttributesExchangeTraffic) {
  telemetry::CommMatrix matrix(dpd::exchange::comm_tag_classes());
  xmp::run(
      2,
      [](xmp::Comm& world) {
        auto sys = make_channel_system();
        DistributedDpd drv(world, *sys);
        drv.distribute();
        for (int s = 0; s < 5; ++s) sys->step();
      },
      matrix.sink());
  std::uint64_t build_bytes = 0, update_bytes = 0;
  for (const auto& [key, cell] : matrix.cells()) {
    const std::string& cls = std::get<2>(key);
    if (cls == "dpd.halo.build") build_bytes += cell.bytes;
    if (cls == "dpd.halo.update") update_bytes += cell.bytes;
  }
  EXPECT_GT(build_bytes, 0u);
  EXPECT_GT(update_bytes, 0u);
}

TEST(ExchangeTelemetry, OverlapCountersAndAsyncTagClass) {
  // The overlapped path reports its comm/compute overlap window and the
  // interior/boundary row split, and its traffic rides the dedicated
  // kTagHaloAsync tag so a CommMatrix attributes it separately from the
  // blocking halo update.
  telemetry::Registry::reset_all();
  telemetry::set_enabled(true);
  telemetry::CommMatrix matrix(dpd::exchange::comm_tag_classes());
  std::mutex mu;
  double rows_interior = 0.0, rows_boundary = 0.0;
  bool overlap_counted = false;
  xmp::run(
      2,
      [&](xmp::Comm& world) {
        auto sys = make_channel_system();
        DistOptions opt;
        opt.overlap = true;
        DistributedDpd drv(world, *sys, opt);
        drv.distribute();
        for (int s = 0; s < 5; ++s) sys->step();
        const auto counters = telemetry::Registry::local().counters();
        auto get = [&](const char* name) {
          const auto it = counters.find(name);
          return it == counters.end() ? 0.0 : it->second.value;
        };
        std::lock_guard<std::mutex> lk(mu);
        rows_interior += get("dpd.rows.interior");
        rows_boundary += get("dpd.rows.boundary");
        overlap_counted = overlap_counted || counters.count("dpd.halo.overlap_us") > 0;
      },
      matrix.sink());
  telemetry::set_enabled(false);
  EXPECT_GT(rows_interior, 0.0) << "the channel split leaves owned-only rows to overlap with";
  EXPECT_GT(rows_boundary, 0.0);
  EXPECT_TRUE(overlap_counted);
  std::uint64_t async_bytes = 0;
  for (const auto& [key, cell] : matrix.cells())
    if (std::get<2>(key) == "dpd.halo.async") async_bytes += cell.bytes;
  EXPECT_GT(async_bytes, 0u);
}

// --------------------------------------- force modules under decomposition

TEST(ExchangeModules, BondsAndPlateletsMatchSingleRankBitwise) {
  // Platelet adhesion (cutoff 1.5) reaches beyond the rc + skin pair halo
  // (1.3): the driver must be told, via halo_width, to ghost the wider
  // shell. Bonds and platelet slot tables are replicated and gid-keyed;
  // owner-decided state transitions are re-synced after every step.
  const int steps = 25;
  auto build = [](dpd::DpdSystem& sys, dpd::BondSet& bonds, dpd::PlateletModel& model) {
    sys.fill(3.0, dpd::kSolvent, 7);
    dpd::RbcRingParams ring;
    ring.center = {6.0, 3.0, 3.0};  // spans the 2-rank x-split boundary
    ring.radius = 1.5;
    ring.beads = 12;
    dpd::make_rbc_ring(sys, bonds, ring);
    model.seed_platelets(sys, 12, 11);
  };
  auto platelet_params = [] {
    dpd::PlateletParams p;
    p.adhesive_region = [](const Vec3& r) { return r.x > 4.0 && r.x < 8.0; };
    return p;
  };

  // single-rank reference
  std::uint64_t ref_digest = 0;
  std::vector<int> ref_states;
  {
    const auto prm = channel_params();
    dpd::DpdSystem sys(prm, std::make_shared<dpd::ChannelZ>(prm.box.z));
    auto bonds = std::make_shared<dpd::BondSet>();
    auto model = std::make_shared<dpd::PlateletModel>(platelet_params());
    build(sys, *bonds, *model);
    sys.add_module(bonds);
    sys.add_module(model);
    for (int s = 0; s < steps; ++s) {
      sys.step();
      model->update(sys);
    }
    ref_digest = trajectory_digest(sys);
    for (std::size_t k = 0; k < model->total(); ++k)
      ref_states.push_back(static_cast<int>(model->state_of(k)));
  }

  std::uint64_t dist_digest = 0;
  std::vector<int> dist_states;
  std::mutex mu;
  bool states_agree = true;
  xmp::run(2, [&](xmp::Comm& world) {
    const auto prm = channel_params();
    dpd::DpdSystem sys(prm, std::make_shared<dpd::ChannelZ>(prm.box.z));
    auto bonds = std::make_shared<dpd::BondSet>();
    auto model = std::make_shared<dpd::PlateletModel>(platelet_params());
    build(sys, *bonds, *model);
    sys.add_module(bonds);
    sys.add_module(model);
    DistOptions opt;
    opt.halo_width = platelet_params().adhesion_cutoff + prm.skin;
    DistributedDpd drv(world, sys, opt);
    drv.distribute();
    for (int s = 0; s < steps; ++s) {
      sys.step();
      model->update(sys);
      drv.sync_platelets(*model);
    }
    const std::uint64_t d = drv.global_digest();
    std::vector<int> states;
    for (std::size_t k = 0; k < model->total(); ++k)
      states.push_back(static_cast<int>(model->state_of(k)));
    std::lock_guard<std::mutex> lk(mu);
    if (world.rank() == 0) {
      dist_digest = d;
      dist_states = states;
    } else if (!dist_states.empty() && dist_states != states) {
      states_agree = false;
    }
  });
  EXPECT_EQ(dist_digest, ref_digest);
  EXPECT_EQ(dist_states, ref_states);
  EXPECT_TRUE(states_agree);
}

TEST(ExchangeModules, NarrowHaloWithWideBondFailsLoudly) {
  // A bond longer than the halo width must throw, not silently zero the
  // spring on the rank that cannot see the far endpoint.
  xmp::run(2, [](xmp::Comm& world) {
    const auto prm = channel_params();
    dpd::DpdSystem sys(prm, std::make_shared<dpd::ChannelZ>(prm.box.z));
    // two bonded particles straddling the x-split, farther apart than
    // rc + skin; everything else far away
    sys.add_particle({4.0, 3.0, 3.0}, {}, dpd::kSolvent);
    sys.add_particle({8.0, 3.0, 3.0}, {}, dpd::kSolvent);
    auto bonds = std::make_shared<dpd::BondSet>();
    bonds->add_bond(0, 1, 4.0, 10.0);
    sys.add_module(bonds);
    DistributedDpd drv(world, sys, DistOptions{{2, 1, 1}});
    drv.distribute();
    EXPECT_THROW(sys.step(), std::runtime_error);
  });
}

// --------------------------------------------- gid-keyed pair RNG pinning

TEST(GidPairRng, RemoveThenStepMatchesNeverInsertedReference) {
  // Removing particles then stepping must be bitwise identical to a run
  // whose population never contained them at all (same survivors, same
  // gids): remove_particles may leave no hidden state behind, and the
  // pair-RNG streams of surviving pairs must be untouched.
  const auto prm = channel_params();
  dpd::DpdSystem a(prm, std::make_shared<dpd::ChannelZ>(prm.box.z));
  a.fill(3.0, dpd::kSolvent, 13);
  ASSERT_GT(a.size(), 100u);
  a.remove_particles({3, 17, 41, 80, 99});

  dpd::DpdSystem b(prm, std::make_shared<dpd::ChannelZ>(prm.box.z));
  std::vector<dpd::ParticleRecord> survivors;
  for (std::size_t i = 0; i < a.size(); ++i) survivors.push_back(a.particle_record(i));
  b.reset_particles(survivors);
  b.set_next_gid(a.next_gid());

  for (int s = 0; s < 20; ++s) {
    a.step();
    b.step();
  }
  EXPECT_EQ(trajectory_digest(a), trajectory_digest(b));
}

TEST(GidPairRng, PairNoiseIsKeyedOnGidsNotLocalIndices) {
  // The same physical pair, carrying the same gids but sitting at
  // different *local* slots, must draw the same random pair force.
  dpd::DpdParams prm;
  prm.box = {10.0, 10.0, 10.0};
  prm.periodic = {true, true, true};

  // system A: two far-away dummies claim gids 0 and 1, the interacting
  // pair gets gids 2 and 3 at local slots 2 and 3
  dpd::DpdSystem a(prm, std::make_shared<dpd::NoWalls>());
  a.add_particle({1.0, 1.0, 1.0}, {}, dpd::kSolvent);
  a.add_particle({9.0, 9.0, 9.0}, {}, dpd::kSolvent);
  a.add_particle({5.0, 5.0, 5.0}, {0.1, 0.0, 0.0}, dpd::kSolvent);
  a.add_particle({5.5, 5.0, 5.0}, {-0.1, 0.0, 0.0}, dpd::kSolvent);

  // system B: only the interacting pair, rebuilt with the same gids 2 and 3
  // but at local slots 0 and 1
  dpd::DpdSystem b(prm, std::make_shared<dpd::NoWalls>());
  std::vector<dpd::ParticleRecord> recs = {a.particle_record(2), a.particle_record(3)};
  b.reset_particles(recs);
  b.set_next_gid(a.next_gid());

  for (int s = 0; s < 5; ++s) {
    a.step();
    b.step();
  }
  const dpd::Vec3 pa2 = a.positions()[2], pa3 = a.positions()[3];
  const dpd::Vec3 pb2 = b.positions()[0], pb3 = b.positions()[1];
  EXPECT_EQ(pa2.x, pb2.x);
  EXPECT_EQ(pa2.y, pb2.y);
  EXPECT_EQ(pa2.z, pb2.z);
  EXPECT_EQ(pa3.x, pb3.x);
  EXPECT_EQ(pa3.y, pb3.y);
  EXPECT_EQ(pa3.z, pb3.z);
}

}  // namespace
