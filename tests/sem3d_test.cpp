// Tests for the 3D spectral-element core: discretization continuity,
// operator identities, manufactured Helmholtz solutions, and spectral
// convergence in the order.

#include <gtest/gtest.h>

#include <cmath>

#include "sem/hex3d.hpp"

namespace {

TEST(Disc3d, NodeCountAndSharing) {
  sem::Discretization3D d(2.0, 1.0, 1.0, 2, 1, 1, 3);
  // lattice (2*3+1)(3+1)(3+1)
  EXPECT_EQ(d.num_nodes(), 7u * 4u * 4u);
  // shared face between elements 0 and 1
  for (int b = 0; b <= 3; ++b)
    for (int c = 0; c <= 3; ++c)
      EXPECT_EQ(d.global_node(0, 3, b, c), d.global_node(1, 0, b, c));
}

TEST(Disc3d, NodeCoordinatesConsistent) {
  sem::Discretization3D d(2.0, 3.0, 4.0, 2, 3, 2, 4);
  // corner nodes
  const std::size_t g0 = d.global_node(0, 0, 0, 0);
  EXPECT_DOUBLE_EQ(d.node_x(g0), 0.0);
  EXPECT_DOUBLE_EQ(d.node_y(g0), 0.0);
  EXPECT_DOUBLE_EQ(d.node_z(g0), 0.0);
  const std::size_t e_last = d.num_elements() - 1;
  const std::size_t g1 = d.global_node(e_last, 4, 4, 4);
  EXPECT_NEAR(d.node_x(g1), 2.0, 1e-13);
  EXPECT_NEAR(d.node_y(g1), 3.0, 1e-13);
  EXPECT_NEAR(d.node_z(g1), 4.0, 1e-13);
}

TEST(Disc3d, FaceNodeCounts) {
  sem::Discretization3D d(1.0, 1.0, 1.0, 2, 2, 2, 2);
  // each face is a (2*2+1)^2 lattice
  for (int f = 0; f < 6; ++f)
    EXPECT_EQ(d.face_nodes(static_cast<sem::HexFace>(f)).size(), 25u);
}

TEST(Disc3d, EvaluateReproducesSmoothField) {
  sem::Discretization3D d(1.0, 1.0, 1.0, 2, 2, 2, 5);
  la::Vector f(d.num_nodes());
  auto fn = [](double x, double y, double z) {
    return std::sin(2 * x) * std::cos(y) * std::exp(0.5 * z);
  };
  for (std::size_t g = 0; g < d.num_nodes(); ++g)
    f[g] = fn(d.node_x(g), d.node_y(g), d.node_z(g));
  for (double x : {0.13, 0.5, 0.94})
    for (double y : {0.21, 0.77})
      for (double z : {0.05, 0.63})
        EXPECT_NEAR(d.evaluate(f, x, y, z), fn(x, y, z), 2e-5);
}

TEST(Ops3d, MassSumsToVolume) {
  sem::Discretization3D d(2.0, 1.5, 1.0, 3, 2, 2, 4);
  sem::Operators3D ops(d);
  la::Vector ones(d.num_nodes(), 1.0);
  EXPECT_NEAR(ops.integral(ones), 3.0, 1e-11);
}

TEST(Ops3d, StiffnessAnnihilatesConstantsAndIsSymmetric) {
  sem::Discretization3D d(1.0, 1.0, 1.0, 2, 2, 2, 3);
  sem::Operators3D ops(d);
  const std::size_t n = d.num_nodes();
  la::Vector ones(n, 1.0), y;
  ops.apply_stiffness(ones, y);
  for (std::size_t g = 0; g < n; ++g) EXPECT_NEAR(y[g], 0.0, 1e-10);

  la::Vector x(n), z(n), Kx, Kz;
  for (std::size_t g = 0; g < n; ++g) {
    x[g] = std::sin(1.0 + 2.0 * static_cast<double>(g));
    z[g] = std::cos(0.5 * static_cast<double>(g));
  }
  ops.apply_stiffness(x, Kx);
  ops.apply_stiffness(z, Kz);
  double xKz = 0.0, zKx = 0.0;
  for (std::size_t g = 0; g < n; ++g) {
    xKz += x[g] * Kz[g];
    zKx += z[g] * Kx[g];
  }
  EXPECT_NEAR(xKz, zKx, 1e-9 * (1.0 + std::fabs(xKz)));
}

TEST(Helmholtz3d, ManufacturedDirichletSolution) {
  sem::Discretization3D d(1.0, 1.0, 1.0, 2, 2, 2, 6);
  sem::Operators3D ops(d);
  const double lambda = 1.5, nu = 0.7;
  sem::HelmholtzSolver3D hs(ops, lambda, nu,
                            {sem::HexFace::X0, sem::HexFace::X1, sem::HexFace::Y0,
                             sem::HexFace::Y1, sem::HexFace::Z0, sem::HexFace::Z1});
  hs.options().rtol = 1e-12;
  auto exact = [](double x, double y, double z) {
    return std::sin(M_PI * x) * std::sin(M_PI * y) * std::sin(M_PI * z);
  };
  la::Vector f(d.num_nodes());
  for (std::size_t g = 0; g < d.num_nodes(); ++g)
    f[g] = (lambda + 3.0 * nu * M_PI * M_PI) *
           exact(d.node_x(g), d.node_y(g), d.node_z(g));
  la::Vector u;
  auto res = hs.solve(f, [&](double x, double y, double z) { return exact(x, y, z); }, u);
  EXPECT_TRUE(res.converged);
  double err = 0.0;
  for (std::size_t g = 0; g < d.num_nodes(); ++g)
    err = std::max(err, std::fabs(u[g] - exact(d.node_x(g), d.node_y(g), d.node_z(g))));
  EXPECT_LT(err, 5e-5);
}

TEST(Helmholtz3d, PureNeumannPoisson) {
  sem::Discretization3D d(1.0, 1.0, 1.0, 2, 2, 2, 6);
  sem::Operators3D ops(d);
  sem::HelmholtzSolver3D hs(ops, 0.0, 1.0, {});
  hs.options().rtol = 1e-12;
  la::Vector f(d.num_nodes());
  for (std::size_t g = 0; g < d.num_nodes(); ++g)
    f[g] = std::cos(M_PI * d.node_x(g));
  la::Vector u;
  auto res = hs.solve(f, [](double, double, double) { return 0.0; }, u);
  EXPECT_TRUE(res.converged);
  double err = 0.0;
  for (std::size_t g = 0; g < d.num_nodes(); ++g) {
    const double exact = std::cos(M_PI * d.node_x(g)) / (M_PI * M_PI);
    err = std::max(err, std::fabs(u[g] - exact));
  }
  EXPECT_LT(err, 5e-5);
  EXPECT_NEAR(ops.integral(u), 0.0, 1e-9);
}

class Sem3dOrderSweep : public ::testing::TestWithParam<int> {};

TEST_P(Sem3dOrderSweep, SpectralConvergence) {
  auto err_at = [](int P) {
    sem::Discretization3D d(1.0, 1.0, 1.0, 2, 2, 2, P);
    sem::Operators3D ops(d);
    sem::HelmholtzSolver3D hs(ops, 1.0, 1.0,
                              {sem::HexFace::X0, sem::HexFace::X1, sem::HexFace::Y0,
                               sem::HexFace::Y1, sem::HexFace::Z0, sem::HexFace::Z1});
    hs.options().rtol = 1e-13;
    auto exact = [](double x, double y, double z) {
      return std::sin(M_PI * x) * std::sin(M_PI * y) * std::sin(M_PI * z);
    };
    la::Vector f(d.num_nodes());
    for (std::size_t g = 0; g < d.num_nodes(); ++g)
      f[g] = (1.0 + 3.0 * M_PI * M_PI) * exact(d.node_x(g), d.node_y(g), d.node_z(g));
    la::Vector u;
    hs.solve(f, [&](double x, double y, double z) { return exact(x, y, z); }, u);
    double e = 0.0;
    for (std::size_t g = 0; g < d.num_nodes(); ++g)
      e = std::max(e, std::fabs(u[g] - exact(d.node_x(g), d.node_y(g), d.node_z(g))));
    return e;
  };
  const int P = GetParam();
  const double eP = err_at(P), eP2 = err_at(P + 2);
  if (eP > 1e-9) {
    EXPECT_LT(eP2, 0.25 * eP) << "P=" << P;
  }
}

INSTANTIATE_TEST_SUITE_P(Orders, Sem3dOrderSweep, ::testing::Values(2, 3, 4));

}  // namespace

#include "sem/ns3d.hpp"

namespace {

TEST(Ops3d, GradientOfLinearFieldExact) {
  sem::Discretization3D d(2.0, 1.0, 1.5, 2, 2, 2, 4);
  sem::Operators3D ops(d);
  la::Vector f(d.num_nodes());
  for (std::size_t g = 0; g < d.num_nodes(); ++g)
    f[g] = 3.0 * d.node_x(g) - 2.0 * d.node_y(g) + 0.5 * d.node_z(g);
  la::Vector fx, fy, fz;
  ops.gradient(f, fx, fy, fz);
  for (std::size_t g = 0; g < d.num_nodes(); ++g) {
    EXPECT_NEAR(fx[g], 3.0, 1e-10);
    EXPECT_NEAR(fy[g], -2.0, 1e-10);
    EXPECT_NEAR(fz[g], 0.5, 1e-10);
  }
}

TEST(Ops3d, DivergenceOfSolenoidalFieldZero) {
  sem::Discretization3D d(1.0, 1.0, 1.0, 2, 2, 2, 5);
  sem::Operators3D ops(d);
  la::Vector u(d.num_nodes()), v(d.num_nodes()), w(d.num_nodes()), div;
  // (y z, x z, -2 x y... pick u=y, v=z, w=x: div = 0
  for (std::size_t g = 0; g < d.num_nodes(); ++g) {
    u[g] = d.node_y(g);
    v[g] = d.node_z(g);
    w[g] = d.node_x(g);
  }
  ops.divergence(u, v, w, div);
  for (std::size_t g = 0; g < d.num_nodes(); ++g) EXPECT_NEAR(div[g], 0.0, 1e-10);
}

TEST(Ns3d, PoiseuilleBetweenPlates) {
  // flow in x, plates at z = 0, 1; exact parabola imposed at inlet and side
  // faces; steady state must carry it through the domain
  const double H = 1.0, Umax = 1.0, nu = 0.05;
  sem::Discretization3D d(2.0, 1.0, H, 3, 2, 2, 4);
  sem::NavierStokes3D::Params prm;
  prm.nu = nu;
  prm.dt = 2e-3;
  prm.pressure_dirichlet_faces = {sem::HexFace::X1};
  sem::NavierStokes3D ns(d, prm);
  auto prof = [&](double, double, double z, double) { return 4.0 * Umax * z * (H - z) / (H * H); };
  auto zero = [](double, double, double, double) { return 0.0; };
  ns.set_velocity_bc(sem::HexFace::X0, prof, zero, zero);
  ns.set_velocity_bc(sem::HexFace::Y0, prof, zero, zero);
  ns.set_velocity_bc(sem::HexFace::Y1, prof, zero, zero);
  ns.set_natural_bc(sem::HexFace::X1);
  // Z faces default to no-slip walls
  for (int s = 0; s < 500; ++s) ns.step();
  EXPECT_NEAR(d.evaluate(ns.u(), 1.0, 0.5, 0.5), Umax, 0.05);
  EXPECT_NEAR(d.evaluate(ns.v(), 1.0, 0.5, 0.5), 0.0, 0.03);
  EXPECT_NEAR(d.evaluate(ns.w(), 1.0, 0.5, 0.5), 0.0, 0.03);
  EXPECT_NEAR(d.evaluate(ns.u(), 1.5, 0.5, 0.25), prof(0, 0, 0.25, 0), 0.06);
}

TEST(Ns3d, TaylorGreenColumnDecay) {
  // 2D Taylor-Green vortex extended uniformly in z (w = 0): an exact 3D NS
  // solution; all faces Dirichlet from the exact fields.
  const double nu = 0.02;
  sem::Discretization3D d(1.0, 1.0, 0.5, 3, 3, 1, 5);
  sem::NavierStokes3D::Params prm;
  prm.nu = nu;
  prm.dt = 2e-3;
  prm.time_order = 2;
  prm.pressure_dirichlet_faces = {};
  sem::NavierStokes3D ns(d, prm);
  auto F = [nu](double t) { return std::exp(-2.0 * M_PI * M_PI * nu * t); };
  auto ue = [&](double x, double y, double, double t) {
    return std::sin(M_PI * x) * std::cos(M_PI * y) * F(t);
  };
  auto ve = [&](double x, double y, double, double t) {
    return -std::cos(M_PI * x) * std::sin(M_PI * y) * F(t);
  };
  auto we = [](double, double, double, double) { return 0.0; };
  for (int f = 0; f < 6; ++f)
    ns.set_velocity_bc(static_cast<sem::HexFace>(f), ue, ve, we);
  ns.set_initial([&](double x, double y, double z, double t) { return ue(x, y, z, t); },
                 [&](double x, double y, double z, double t) { return ve(x, y, z, t); },
                 [&](double x, double y, double z, double t) { return we(x, y, z, t); });
  for (int s = 0; s < 100; ++s) ns.step();
  const double T = ns.time();
  double err = 0.0;
  for (std::size_t g = 0; g < d.num_nodes(); ++g)
    err = std::max(err,
                   std::fabs(ns.u()[g] - ue(d.node_x(g), d.node_y(g), d.node_z(g), T)));
  EXPECT_LT(err, 0.02);
  // w stays (near) zero: the column structure is preserved
  double wmax = 0.0;
  for (std::size_t g = 0; g < d.num_nodes(); ++g)
    wmax = std::max(wmax, std::fabs(ns.w()[g]));
  EXPECT_LT(wmax, 0.02);
}

// ---- fast path vs retained reference kernels --------------------------

la::Vector wavy_field(const sem::Discretization3D& d, double kx, double ky, double kz) {
  la::Vector f(d.num_nodes());
  for (std::size_t g = 0; g < d.num_nodes(); ++g)
    f[g] = std::sin(kx * d.node_x(g) + 0.3) * std::cos(ky * d.node_y(g)) *
           std::sin(kz * d.node_z(g) + 0.7);
  return f;
}

class Ops3dEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(Ops3dEquivalence, StiffnessMatchesReference) {
  const int P = GetParam();
  for (std::size_t nx : {1u, 2u, 3u}) {
    sem::Discretization3D d(1.3, 1.0, 0.8, nx, 2, 1, P);
    sem::Operators3D ops(d);
    const auto u = wavy_field(d, 2.0, 3.0, 1.5);
    la::Vector yf, yr;
    ops.apply_stiffness(u, yf);
    ops.apply_stiffness_reference(u, yr);
    double scale = 0.0;
    for (std::size_t g = 0; g < yr.size(); ++g) scale = std::max(scale, std::fabs(yr[g]));
    for (std::size_t g = 0; g < yr.size(); ++g)
      EXPECT_NEAR(yf[g], yr[g], 1e-12 * (1.0 + scale)) << "P=" << P << " nx=" << nx;
  }
}

TEST_P(Ops3dEquivalence, HelmholtzMatchesReference) {
  const int P = GetParam();
  sem::Discretization3D d(1.0, 1.2, 0.9, 2, 2, 2, P);
  sem::Operators3D ops(d);
  const auto u = wavy_field(d, 1.0, 2.0, 3.0);
  la::Vector yf, yr;
  ops.apply_helmholtz(2.75, 0.31, u, yf);
  ops.apply_helmholtz_reference(2.75, 0.31, u, yr);
  double scale = 0.0;
  for (std::size_t g = 0; g < yr.size(); ++g) scale = std::max(scale, std::fabs(yr[g]));
  for (std::size_t g = 0; g < yr.size(); ++g)
    EXPECT_NEAR(yf[g], yr[g], 1e-12 * (1.0 + scale)) << "P=" << P;
}

TEST_P(Ops3dEquivalence, MaskedHelmholtzMatchesReference) {
  // the Dirichlet-masked operator exactly as the solver's CG lambda builds
  // it: zero masked entries, apply, zero masked rows, restore identity
  const int P = GetParam();
  sem::Discretization3D d(1.0, 1.0, 1.0, 2, 1, 2, P);
  sem::Operators3D ops(d);
  std::vector<char> mask(d.num_nodes(), 0);
  for (std::size_t g : d.face_nodes(sem::HexFace::X0)) mask[g] = 1;
  for (std::size_t g : d.face_nodes(sem::HexFace::Z1)) mask[g] = 1;
  auto u = wavy_field(d, 2.2, 1.1, 0.9);
  auto masked_apply = [&](const la::Vector& in, la::Vector& out, bool ref) {
    la::Vector t = in;
    for (std::size_t g = 0; g < t.size(); ++g)
      if (mask[g]) t[g] = 0.0;
    if (ref)
      ops.apply_helmholtz_reference(1.0, 0.5, t, out);
    else
      ops.apply_helmholtz(1.0, 0.5, t, out);
    for (std::size_t g = 0; g < t.size(); ++g)
      if (mask[g]) out[g] = in[g];
  };
  la::Vector yf, yr;
  masked_apply(u, yf, false);
  masked_apply(u, yr, true);
  double scale = 0.0;
  for (std::size_t g = 0; g < yr.size(); ++g) scale = std::max(scale, std::fabs(yr[g]));
  for (std::size_t g = 0; g < yr.size(); ++g)
    EXPECT_NEAR(yf[g], yr[g], 1e-12 * (1.0 + scale)) << "P=" << P;
}

TEST_P(Ops3dEquivalence, GradientMatchesReference) {
  const int P = GetParam();
  sem::Discretization3D d(2.0, 1.0, 1.5, 2, 2, 1, P);
  sem::Operators3D ops(d);
  const auto u = wavy_field(d, 1.7, 2.3, 1.1);
  la::Vector fx, fy, fz, rx, ry, rz;
  ops.gradient(u, fx, fy, fz);
  ops.gradient_reference(u, rx, ry, rz);
  for (std::size_t g = 0; g < rx.size(); ++g) {
    EXPECT_NEAR(fx[g], rx[g], 1e-10 * (1.0 + std::fabs(rx[g]))) << "P=" << P;
    EXPECT_NEAR(fy[g], ry[g], 1e-10 * (1.0 + std::fabs(ry[g])));
    EXPECT_NEAR(fz[g], rz[g], 1e-10 * (1.0 + std::fabs(rz[g])));
  }
}

INSTANTIATE_TEST_SUITE_P(Orders, Ops3dEquivalence, ::testing::Values(3, 4, 5, 7, 9, 11));

TEST(Ops3dEquivalence2, PureNeumannSolveAgreesWithReferenceOperator) {
  // solve the same pure-Neumann Poisson problem through the fast operator
  // and through the reference operator; the discrete solutions must agree
  // far beyond the CG tolerance
  sem::Discretization3D d(1.0, 1.0, 1.0, 2, 2, 2, 5);
  sem::Operators3D ops(d);
  const std::size_t n = d.num_nodes();
  // zero-mean forcing
  la::Vector f(n);
  for (std::size_t g = 0; g < n; ++g)
    f[g] = std::cos(M_PI * d.node_x(g)) * std::cos(2.0 * M_PI * d.node_y(g));
  auto solve_with = [&](bool ref) {
    la::Vector b(n, 0.0);
    for (std::size_t g = 0; g < n; ++g) b[g] = ops.mass_diag()[g] * f[g];
    la::LinearOperator A = [&, ref](const double* x, double* y) {
      la::Vector xi(n), yo(n);
      for (std::size_t g = 0; g < n; ++g) xi[g] = x[g];
      if (ref)
        ops.apply_helmholtz_reference(0.2, 1.0, xi, yo);
      else
        ops.apply_helmholtz(0.2, 1.0, xi, yo);
      for (std::size_t g = 0; g < n; ++g) y[g] = yo[g];
    };
    la::Vector x(n, 0.0);
    la::CgOptions opt;
    opt.rtol = 1e-12;
    auto res = la::cg_solve(A, b, x, la::jacobi_preconditioner(ops.helmholtz_diag(0.2, 1.0)),
                            opt);
    EXPECT_TRUE(res.converged);
    return x;
  };
  const auto xf = solve_with(false);
  const auto xr = solve_with(true);
  for (std::size_t g = 0; g < n; ++g) EXPECT_NEAR(xf[g], xr[g], 1e-8);
}

}  // namespace
