#!/usr/bin/env python3
"""Repo-specific lint rules (stdlib only; CI runs this as a hard gate).

Rules
-----
memcpy-divisibility
    A memcpy whose byte-count expression does not mention sizeof is copying
    into/out of a typed buffer with a count computed elsewhere; it must be
    preceded (within 12 lines) by a `% sizeof` divisibility check, or carry a
    `// lint: memcpy-ok (<reason>)` marker on the call or just above it.
    This is the bug class behind gatherv/recv silently truncating odd-sized
    payloads.

collective-trace
    In src/xmp, every call into the byte-collecting collective primitives
    (collect_bytes_all / collect_bytes) must either be preceded (within 25
    lines) by trace attribution (trace_transfer / trace_allreduce /
    emit_trace) or carry a `// lint: no-trace (<reason>)` marker: new
    collectives must report their logical transfers to the trace hook the
    machine model replays.

dpd-no-std-function
    Headers under src/dpd/ must not take or store `std::function` unless the
    line (or the 2 lines above it) carries a `// lint: std-function-ok
    (<reason>)` marker. std::function in a DPD interface is how an indirect
    call per pair crept into the hot loop before the Verlet-list fast path
    (see docs/PERF.md); pair iteration must stay templated. The marker is for
    setup-time callbacks (body force, coupling velocity fields) that are
    evaluated at most once per particle, never per pair.

sem-hot-alloc
    Inside `apply_*` / `elem_*` function bodies under src/sem/, constructing
    a `std::vector` is a per-apply heap allocation in the operator hot path
    (the SEM fast path hoists all element scratch into persistent members;
    see docs/PERF.md). Lines must carry a `// lint: sem-alloc-ok (<reason>)`
    marker (on the line or the 2 lines above) to opt out — used by the
    retained `_reference` baselines, which deliberately keep the per-call
    scratch they are benchmarked against.

exchange-hot-alloc
    Inside the halo/migration fast-path bodies under src/dpd/exchange/
    (`update` / `reverse` / `begin_update` / `finish_update` and the
    `pack_*` / `unpack_*` / `accumulate_*` packers), constructing a
    `std::vector` is a per-force-pass heap allocation; the exchangers hoist
    all pack/recv scratch into persistent members (see docs/PERF.md). Lines
    opt out with a `// lint: exchange-alloc-ok (<reason>)` marker (on the
    line or the 2 lines above). Cold paths (build, plan construction,
    migration merges) are not gated.

sched-context
    Rank-visible code (src/xmp/, src/telemetry/) must not introduce raw
    `thread_local` state or call `std::this_thread::get_id`: with the fiber
    backend (src/xmp/sched/) a rank migrates between OS threads at every
    blocking point, so thread identity is NOT rank identity. Use
    xmp::sched::current_rank() / rank_local_slot() instead. The scheduler's
    own context variables opt out with a `// lint: sched-context-ok
    (<reason>)` marker on the line or within 2 lines above.

scenario-schema-sync
    In src/scenario/schema.cpp, every parse_<x> / serialize_<x> function pair
    must consume and emit the same JSON key set: the parse side reads keys
    through the Fields accessors (`.req*("key")` / `.opt*("key")`), the
    serialize side writes them with `.set("key", ...)`. A key present on one
    side only means a scenario field round-trips silently wrong (parsed but
    never re-emitted, or emitted but rejected on re-parse), which breaks the
    bitwise re-emit guarantee the scenario tests pin.

pragma-once
    Every header under src/ starts with `#pragma once`.

no-using-namespace
    No `using namespace std` (headers or sources).

Usage:  python3 tools/lint.py [--self-test] [paths...]
Exit status is non-zero iff findings (or a self-test failure).
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

# The token-level rules (memcpy-divisibility, sched-context, sem-hot-alloc,
# dpd-no-std-function) match against comment/string-stripped lines produced
# by the analyzer's C++ tokenizer, so a rule name mentioned in a comment or a
# log string is never a finding. Markers, by contrast, live in comments and
# are matched on the raw lines.
sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent / "analyze"))
from tokenizer import code_only_lines  # noqa: E402

MEMCPY_BACKWINDOW = 12
TRACE_BACKWINDOW = 25
MARKER_BACKWINDOW = 2

MEMCPY_RE = re.compile(r"\bmemcpy\s*\(")
COLLECT_RE = re.compile(r"\b(collect_bytes_all|collect_bytes)\s*\(")
TRACE_RE = re.compile(r"\b(trace_transfer|trace_allreduce|emit_trace)\b")
DIVCHECK_RE = re.compile(r"%\s*sizeof")
MEMCPY_OK_RE = re.compile(r"//\s*lint:\s*memcpy-ok")
NO_TRACE_RE = re.compile(r"//\s*lint:\s*no-trace")
STD_FUNCTION_RE = re.compile(r"\bstd\s*::\s*function\s*<")
STD_FUNCTION_OK_RE = re.compile(r"//\s*lint:\s*std-function-ok")
SEM_HOT_FN_RE = re.compile(r"\b(?:\w+\s*::\s*)?((?:apply_|elem_)\w*)\s*\(")
EXCHANGE_HOT_FN_RE = re.compile(
    r"\b(?:\w+\s*::\s*)?"
    r"(update|reverse|begin_update|finish_update|pack_\w+|unpack_\w+|accumulate_\w+)\s*\(")
STD_VECTOR_CTOR_RE = re.compile(r"\bstd\s*::\s*vector\s*<")
SEM_ALLOC_OK_RE = re.compile(r"//\s*lint:\s*sem-alloc-ok")
EXCHANGE_ALLOC_OK_RE = re.compile(r"//\s*lint:\s*exchange-alloc-ok")
THREAD_IDENTITY_RE = re.compile(r"\bthread_local\b|\bstd\s*::\s*this_thread\s*::\s*get_id\b")
SCHED_CONTEXT_OK_RE = re.compile(r"//\s*lint:\s*sched-context-ok")
SCHEMA_FN_RE = re.compile(r"\b(parse|serialize)_(\w+)\s*\(")
SCHEMA_PARSE_KEY_RE = re.compile(r"\.(?:req|opt)\w*\(\s*\"([^\"]+)\"")
SCHEMA_SET_KEY_RE = re.compile(r"\.set\(\s*\"([^\"]+)\"")


class Finding:
    def __init__(self, path: str, line: int, rule: str, message: str):
        self.path, self.line, self.rule, self.message = path, line, rule, message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: {self.rule}: {self.message}"


def balanced_call_text(lines: list[str], line_idx: int, open_pos: int) -> str:
    """Text of a call from its opening paren to the matching close (spans lines)."""
    depth = 0
    out: list[str] = []
    i, j = line_idx, open_pos
    while i < len(lines):
        line = lines[i]
        while j < len(line):
            c = line[j]
            out.append(c)
            if c == "(":
                depth += 1
            elif c == ")":
                depth -= 1
                if depth == 0:
                    return "".join(out)
            j += 1
        out.append(" ")
        i, j = i + 1, 0
    return "".join(out)  # unbalanced: return what we saw


def marker_near(lines: list[str], idx: int, marker: re.Pattern, back: int) -> bool:
    lo = max(0, idx - back)
    return any(marker.search(lines[k]) for k in range(lo, idx + 1))


def is_declaration(line: str, name_start: int) -> bool:
    """True when `name(` at name_start is a function declaration/definition,
    i.e. directly preceded by a type (identifier, `>`, `&`, `*`) rather than
    an operator or statement keyword."""
    before = line[:name_start].rstrip()
    if not before:
        return False
    # Strip a `Comm::`/`ns::detail::` qualifier chain: `Type Comm::name(` is an
    # out-of-line definition (return type precedes the qualifier) while
    # `x = ns::name(...)` is a qualified call.
    m = re.search(r"(?:\w+\s*::\s*)+$", before)
    if m:
        before = before[:m.start()].rstrip()
        if not before:
            return False
    if re.search(r"\b(return|co_return|co_yield|throw)$", before):
        return False
    return before[-1].isalnum() or before[-1] in ">&*_,"


def vector_ctor_on_line(line: str) -> bool:
    """True if the line mentions `std::vector<...>` as a *construction* — a
    value declaration or temporary that allocates — rather than a reference
    or pointer type mention (`std::vector<T>&` parameters, `std::vector<T>*`
    lane tables), which allocates nothing. Template args that spill onto the
    next line are treated as a construction (conservative)."""
    for m in STD_VECTOR_CTOR_RE.finditer(line):
        depth = 1
        j = m.end()
        while j < len(line) and depth:
            if line[j] == "<":
                depth += 1
            elif line[j] == ">":
                depth -= 1
            j += 1
        if depth:
            return True
        while j < len(line) and line[j].isspace():
            j += 1
        if j >= len(line) or line[j] not in "&*":
            return True
    return False


def hot_fn_ranges(lines: list[str], fn_re: re.Pattern) -> list[tuple[int, int]]:
    """Line ranges (inclusive) of the BODIES of functions matching fn_re.

    A match followed by `;` before any `{` is a declaration or a call and
    opens no range; a match followed by `{` opens one that ends when the
    brace depth returns to zero. Brace counting ignores strings/comments,
    which is fine for the code this gates."""
    ranges: list[tuple[int, int]] = []
    n = len(lines)
    i = 0
    while i < n:
        m = fn_re.search(lines[i])
        if not m:
            i += 1
            continue
        j, pos = i, m.end()
        opened = False
        while j < n:
            stop = None
            for k in range(pos, len(lines[j])):
                if lines[j][k] in ";{":
                    stop = (lines[j][k], k)
                    break
            if stop:
                opened = stop[0] == "{"
                break
            j, pos = j + 1, 0
        if j >= n:
            break
        if not opened:
            i = j + 1
            continue
        depth = 0
        start = j
        k = stop[1]
        while j < n:
            for c in lines[j][k:]:
                if c == "{":
                    depth += 1
                elif c == "}":
                    depth -= 1
                    if depth == 0:
                        ranges.append((start, j))
                        break
            if depth == 0:
                break
            j, k = j + 1, 0
        i = j + 1
    return ranges


def schema_sync_findings(rel: str, lines: list[str]) -> list[Finding]:
    """Pair parse_<x>/serialize_<x> bodies and compare their key sets.

    Definitions in schema.cpp sit at column 0; indented matches are call
    sites. The parse side's keys come from Fields accessors (.req*/.opt*),
    the serialize side's from .set. Key sets are unions over all branches, so
    kind-conditional sections compare correctly as long as both sides branch
    over the same keys."""
    fns: dict[str, dict[str, tuple[int, set[str]]]] = {"parse": {}, "serialize": {}}
    n = len(lines)
    i = 0
    while i < n:
        line = lines[i]
        m = SCHEMA_FN_RE.search(line)
        if not m or not line[:1].strip() or "(" not in line:
            i += 1
            continue
        # Find `{` (definition) or `;` (declaration/call statement) first.
        j, pos = i, m.end()
        opened = None
        while j < n and opened is None:
            for c in lines[j][pos:]:
                if c in ";{":
                    opened = c == "{"
                    break
            if opened is None:
                j, pos = j + 1, 0
        if not opened:
            i = j + 1
            continue
        depth, body_start = 0, j
        while j < n:
            depth += lines[j].count("{") - lines[j].count("}")
            if depth <= 0 and j >= body_start:
                break
            j += 1
        body = "\n".join(lines[body_start : j + 1])
        key_re = SCHEMA_PARSE_KEY_RE if m.group(1) == "parse" else SCHEMA_SET_KEY_RE
        keys = set(key_re.findall(body))
        prev = fns[m.group(1)].get(m.group(2))
        if prev:  # overloads merge
            keys |= prev[1]
        fns[m.group(1)][m.group(2)] = (i, keys)
        i = j + 1

    findings: list[Finding] = []
    for suffix in sorted(set(fns["parse"]) | set(fns["serialize"])):
        p = fns["parse"].get(suffix)
        s = fns["serialize"].get(suffix)
        if p is None or s is None:
            present, kind = (p, "parse") if s is None else (s, "serialize")
            missing = "serialize" if s is None else "parse"
            if present[1]:  # helpers with no keys (parse_scenario_text) are fine
                findings.append(Finding(
                    rel, present[0] + 1, "scenario-schema-sync",
                    f"{kind}_{suffix} consumes keys {sorted(present[1])} but "
                    f"{missing}_{suffix} does not exist; every schema struct needs "
                    "a parse/serialize pair over the same keys"))
            continue
        only_parse = sorted(p[1] - s[1])
        only_ser = sorted(s[1] - p[1])
        if only_parse:
            findings.append(Finding(
                rel, s[0] + 1, "scenario-schema-sync",
                f"serialize_{suffix} never emits key(s) {only_parse} that "
                f"parse_{suffix} consumes: the field would vanish on re-emit"))
        if only_ser:
            findings.append(Finding(
                rel, p[0] + 1, "scenario-schema-sync",
                f"parse_{suffix} never consumes key(s) {only_ser} that "
                f"serialize_{suffix} emits: the emitted document would fail "
                "strict re-parse"))
    return findings


def lint_file(path: pathlib.Path, repo_root: pathlib.Path) -> list[Finding]:
    rel = str(path.relative_to(repo_root))
    text = path.read_text(encoding="utf-8", errors="replace")
    lines = text.splitlines()
    # comment/string-stripped view, padded to the same length
    clines = code_only_lines(text)
    clines = (clines + [""] * len(lines))[:len(lines)]
    findings: list[Finding] = []

    in_src = rel.startswith("src/")
    in_xmp = rel.startswith("src/xmp/")
    in_dpd_header = rel.startswith("src/dpd/") and path.suffix == ".hpp"
    in_sem = rel.startswith("src/sem/")
    in_exchange = rel.startswith("src/dpd/exchange/")
    in_rank_visible = in_xmp or rel.startswith("src/telemetry/")

    if rel == "src/scenario/schema.cpp":
        findings.extend(schema_sync_findings(rel, lines))

    if in_sem:
        for lo, hi in hot_fn_ranges(clines, SEM_HOT_FN_RE):
            for i in range(lo, hi + 1):
                if not vector_ctor_on_line(clines[i]):
                    continue
                if marker_near(lines, i, SEM_ALLOC_OK_RE, MARKER_BACKWINDOW):
                    continue
                findings.append(Finding(
                    rel, i + 1, "sem-hot-alloc",
                    "std::vector construction inside an apply_*/elem_* SEM hot "
                    "path allocates per apply; use the persistent member "
                    "scratch, or mark a deliberate baseline with `// lint: "
                    "sem-alloc-ok (<reason>)`"))

    if in_exchange:
        for lo, hi in hot_fn_ranges(clines, EXCHANGE_HOT_FN_RE):
            for i in range(lo, hi + 1):
                if not vector_ctor_on_line(clines[i]):
                    continue
                if marker_near(lines, i, EXCHANGE_ALLOC_OK_RE, MARKER_BACKWINDOW):
                    continue
                findings.append(Finding(
                    rel, i + 1, "exchange-hot-alloc",
                    "std::vector construction inside a halo fast-path body "
                    "(update/reverse/begin_update/finish_update/pack_*/"
                    "unpack_*/accumulate_*) allocates every force pass; use "
                    "the hoisted member scratch, or mark a deliberate case "
                    "with `// lint: exchange-alloc-ok (<reason>)`"))

    if in_src and path.suffix == ".hpp":
        head = [l.strip() for l in lines[:5]]
        if "#pragma once" not in head:
            findings.append(Finding(rel, 1, "pragma-once",
                                    "header does not start with #pragma once"))

    for i, line in enumerate(lines):
        if re.search(r"\busing\s+namespace\s+std\b", line):
            findings.append(Finding(rel, i + 1, "no-using-namespace",
                                    "do not import namespace std wholesale"))

        if in_src:
            for m in MEMCPY_RE.finditer(clines[i]):
                call = balanced_call_text(clines, i, m.end() - 1)
                if "sizeof" in call:
                    continue  # count is sizeof-derived: divisibility is structural
                if marker_near(lines, i, MEMCPY_OK_RE, MARKER_BACKWINDOW):
                    continue
                lo = max(0, i - MEMCPY_BACKWINDOW)
                if any(DIVCHECK_RE.search(clines[k]) for k in range(lo, i)):
                    continue
                findings.append(Finding(
                    rel, i + 1, "memcpy-divisibility",
                    "memcpy with a non-sizeof byte count needs a preceding `% sizeof` "
                    "divisibility check or a `// lint: memcpy-ok (<reason>)` marker"))

        if in_rank_visible and THREAD_IDENTITY_RE.search(clines[i]):
            if not marker_near(lines, i, SCHED_CONTEXT_OK_RE, MARKER_BACKWINDOW):
                findings.append(Finding(
                    rel, i + 1, "sched-context",
                    "thread_local / this_thread::get_id in rank-visible code: "
                    "fiber ranks migrate between OS threads, so thread identity "
                    "is not rank identity; use xmp::sched::current_rank() / "
                    "rank_local_slot(), or mark scheduler-internal state with "
                    "`// lint: sched-context-ok (<reason>)`"))

        if in_dpd_header and STD_FUNCTION_RE.search(clines[i]):
            if not marker_near(lines, i, STD_FUNCTION_OK_RE, MARKER_BACKWINDOW):
                findings.append(Finding(
                    rel, i + 1, "dpd-no-std-function",
                    "std::function in a DPD header puts an indirect call in "
                    "reach of the pair hot loop; template the callback, or "
                    "mark a setup-time one with `// lint: std-function-ok "
                    "(<reason>)`"))

        if in_xmp:
            for m in COLLECT_RE.finditer(line):
                if is_declaration(line, m.start()):
                    continue
                if marker_near(lines, i, NO_TRACE_RE, 3):
                    continue
                lo = max(0, i - TRACE_BACKWINDOW)
                if any(TRACE_RE.search(lines[k]) for k in range(lo, i + 1)):
                    continue
                findings.append(Finding(
                    rel, i + 1, "collective-trace",
                    f"{m.group(1)} call without nearby trace attribution "
                    "(trace_transfer/trace_allreduce) or a `// lint: no-trace "
                    "(<reason>)` marker: collectives must report their logical "
                    "transfers"))

    return findings


def collect_targets(paths: list[str], repo_root: pathlib.Path) -> list[pathlib.Path]:
    exts = {".hpp", ".cpp"}
    roots = [repo_root / p for p in paths] if paths else [
        repo_root / "src", repo_root / "tests", repo_root / "bench", repo_root / "examples"]
    out: list[pathlib.Path] = []
    for r in roots:
        if r.is_file():
            out.append(r)
        elif r.is_dir():
            out.extend(p for p in sorted(r.rglob("*")) if p.suffix in exts)
    return out


# ---- self test --------------------------------------------------------------

SELF_TEST_CASES = [
    # (pseudo-path, source, expected rule ids)
    ("src/xmp/bad.hpp",
     "int f();\n",
     {"pragma-once"}),
    ("src/xmp/good.hpp",
     "#pragma once\nint f();\n",
     set()),
    ("src/a/bad_memcpy.cpp",
     "void f(char* d, const char* s, unsigned n) {\n  std::memcpy(d, s, n);\n}\n",
     {"memcpy-divisibility"}),
    ("src/a/ok_memcpy_sizeof.cpp",
     "void f(double* d, const char* s, unsigned n) {\n"
     "  std::memcpy(d, s,\n              n * sizeof(double));\n}\n",
     set()),
    ("src/a/ok_memcpy_checked.cpp",
     "void f(double* d, const std::vector<char>& s) {\n"
     "  if (s.size() % sizeof(double)) throw 1;\n  std::memcpy(d, s.data(), s.size());\n}\n",
     set()),
    ("src/a/ok_memcpy_marker.cpp",
     "void f(char* d, const char* s, unsigned n) {\n"
     "  // lint: memcpy-ok (raw bytes)\n  std::memcpy(d, s, n);\n}\n",
     set()),
    ("src/xmp/bad_collective.cpp",
     "void f(xmp::Comm& c) {\n  auto b = c.collect_bytes_all(nullptr, 0);\n}\n",
     {"collective-trace"}),
    ("src/xmp/ok_collective_traced.cpp",
     "void f(xmp::Comm& c) {\n  c.trace_transfer(0, 1, 8, xmp::TraceKind::Bcast);\n"
     "  auto b = c.collect_bytes_all(nullptr, 0);\n}\n",
     set()),
    ("src/xmp/ok_collective_marker.cpp",
     "void f(xmp::Comm& c) {\n  // lint: no-trace (no payload)\n"
     "  auto b = c.collect_bytes_all(nullptr, 0);\n}\n",
     set()),
    ("src/xmp/ok_collective_decl.cpp",
     "std::shared_ptr<Blobs> collect_bytes(const void* p, std::size_t n);\n",
     set()),
    ("src/xmp/ok_collective_defn.cpp",
     "std::shared_ptr<Blobs> Comm::collect_bytes_all(const void* p, std::size_t n) {\n"
     "  return nullptr;\n}\n",
     set()),
    ("src/xmp/bad_collective_qualified_call.cpp",
     "void f() {\n  auto b = detail::collect_bytes(g, 0, nullptr, 0, d);\n}\n",
     {"collective-trace"}),
    ("tests/bad_using.cpp",
     "using namespace std;\n",
     {"no-using-namespace"}),
    ("src/dpd/bad_fn.hpp",
     "#pragma once\n#include <functional>\n"
     "void for_each_pair(const std::function<void(int, int)>& fn);\n",
     {"dpd-no-std-function"}),
    ("src/dpd/ok_fn_marker.hpp",
     "#pragma once\n#include <functional>\n"
     "// lint: std-function-ok (setup-time callback, not a pair-loop parameter)\n"
     "using BodyForceFn = std::function<Vec3(const Vec3&)>;\n",
     set()),
    ("src/dpd/ok_fn_source.cpp",
     "#include <functional>\n"
     "static std::function<void()> g;  // sources are out of scope\n",
     set()),
    ("src/other/ok_fn_elsewhere.hpp",
     "#pragma once\n#include <functional>\n"
     "using Cb = std::function<void()>;\n",
     set()),
    ("src/sem/bad_hot_alloc.cpp",
     "void Ops::apply_stiffness(const V& u, V& y) const {\n"
     "  std::vector<double> lu(npe), ly(npe);\n"
     "  for (std::size_t e = 0; e < ne; ++e) {}\n}\n",
     {"sem-hot-alloc"}),
    ("src/sem/ok_hot_alloc_marker.cpp",
     "void Ops::apply_stiffness_reference(const V& u, V& y) const {\n"
     "  // lint: sem-alloc-ok (reference baseline, not a hot path)\n"
     "  std::vector<double> lu(npe), ly(npe);\n}\n",
     set()),
    ("src/sem/ok_alloc_cold_fn.cpp",
     "void Ops::build_tables() {\n  std::vector<double> tmp(n);\n}\n",
     set()),
    ("src/sem/ok_call_is_not_definition.cpp",
     "void Solver::solve(V& u) {\n  ops_->apply_helmholtz(l, nu, u, y_);\n"
     "  std::vector<double> bc(nb);\n}\n",
     set()),
    ("src/other/ok_sem_rule_scoped.cpp",
     "void Ops::apply_stiffness(const V& u, V& y) const {\n"
     "  std::vector<double> lu(npe);\n}\n",
     set()),
    ("src/dpd/exchange/bad_hot_alloc.cpp",
     "void HaloExchanger::update(DpdSystem& sys) {\n"
     "  std::vector<double> buf(send_.size() * 6);\n"
     "  comm_.send(0, 1, buf);\n}\n",
     {"exchange-hot-alloc"}),
    ("src/dpd/exchange/bad_hot_alloc_begin.cpp",
     "void HaloExchanger::begin_update(DpdSystem& sys) {\n"
     "  std::vector<xmp::Pending> pending;\n}\n",
     {"exchange-hot-alloc"}),
    ("src/dpd/exchange/ok_param_types.cpp",
     "void pack_lanes(const SoA3& a, const std::vector<std::uint32_t>& idx,\n"
     "                std::vector<double>& out) {\n"
     "  out.resize(3 * idx.size());\n"
     "  const std::vector<double>* lanes[3] = {&a.xs(), &a.ys(), &a.zs()};\n"
     "}\n",
     set()),
    ("src/dpd/exchange/ok_hot_alloc_marker.cpp",
     "void HaloExchanger::update(DpdSystem& sys) {\n"
     "  // lint: exchange-alloc-ok (diagnostic copy outside the benchmarked path)\n"
     "  std::vector<double> snapshot(recv_buf_);\n}\n",
     set()),
    ("src/dpd/exchange/ok_cold_build.cpp",
     "std::vector<ParticleRecord> HaloExchanger::build(const std::vector<ParticleRecord>& o) {\n"
     "  std::vector<ParticleRecord> merged = o;\n  return merged;\n}\n",
     set()),
    ("src/dpd/exchange/ok_call_not_definition.cpp",
     "void DistributedDpd::refresh(DpdSystem& sys) {\n"
     "  halo_.update(sys);\n  std::vector<double> disp(n);\n}\n",
     set()),
    ("src/dpd/ok_exchange_rule_scoped.cpp",
     "void HaloExchanger::update(DpdSystem& sys) {\n"
     "  std::vector<double> buf(n);\n}\n",
     set()),
    ("src/xmp/bad_thread_local.cpp",
     "thread_local int cached_rank = -1;\n",
     {"sched-context"}),
    ("src/telemetry/bad_get_id.cpp",
     "void f() {\n  auto id = std::this_thread::get_id();\n}\n",
     {"sched-context"}),
    ("src/xmp/ok_thread_local_marker.cpp",
     "// lint: sched-context-ok (scheduler-internal worker state)\n"
     "thread_local Worker* tl_worker = nullptr;\n",
     set()),
    ("src/telemetry/ok_get_id_comment.cpp",
     "// never key on std::this_thread::get_id() here\nint f();\n",
     set()),
    ("src/other/ok_thread_local_elsewhere.cpp",
     "thread_local int scratch = 0;\n",
     set()),
    # --- tokenizer-backed rules: mentions inside comments/strings are not code ---
    ("src/a/ok_memcpy_in_comment.cpp",
     "void f(char* d, const char* s, unsigned n) {\n"
     "  // the old code did memcpy(d, s, n) without a check\n"
     "  copy_checked(d, s, n);\n}\n",
     set()),
    ("src/a/ok_memcpy_in_string.cpp",
     "void f() {\n  log(\"memcpy(dst, src, nbytes) failed\");\n}\n",
     set()),
    ("src/a/bad_memcpy_string_sizeof.cpp",
     # the only sizeof is inside the logged string: must still be flagged
     "void f(char* d, const char* s, unsigned n) {\n"
     "  std::memcpy(d, s, n /* \"n * sizeof(double)\" */);\n}\n",
     {"memcpy-divisibility"}),
    ("src/xmp/ok_thread_local_in_string.cpp",
     "void f() {\n  die(\"thread_local state is forbidden here\");\n}\n",
     set()),
    ("src/dpd/ok_fn_in_comment.hpp",
     "#pragma once\n"
     "// callbacks must NOT be std::function<void(int,int)>; keep them templated\n"
     "template <class F> void for_each_pair(F&& fn);\n",
     set()),
    ("src/sem/ok_hot_alloc_in_comment.cpp",
     "void Ops::apply_stiffness(const V& u, V& y) const {\n"
     "  // scratch was once a std::vector<double> per call; now member-owned\n"
     "  run(lu_, ly_);\n}\n",
     set()),
    ("src/sem/ok_hot_name_in_string.cpp",
     "void report() {\n"
     "  log(\"apply_stiffness(n) took too long\");\n"
     "  std::vector<double> tmp(3);\n}\n",
     set()),
    ("src/scenario/schema.cpp",
     "MeshSpec parse_mesh(const Json& v, const std::string& path) {\n"
     "  Fields f(v, path);\n  MeshSpec s;\n  s.nx = f.req_int(\"nx\");\n"
     "  s.length = f.opt_num(\"length\", s.length);\n  f.finish();\n  return s;\n}\n"
     "Json serialize_mesh(const MeshSpec& s) {\n  Json o = Json::object();\n"
     "  o.set(\"length\", Json(s.length));\n  o.set(\"nx\", Json(s.nx));\n  return o;\n}\n",
     set()),
    ("src/scenario/schema.cpp",
     "MeshSpec parse_mesh(const Json& v, const std::string& path) {\n"
     "  Fields f(v, path);\n  MeshSpec s;\n  s.nx = f.req_int(\"nx\");\n"
     "  s.length = f.opt_num(\"length\", s.length);\n  return s;\n}\n"
     "Json serialize_mesh(const MeshSpec& s) {\n  Json o = Json::object();\n"
     "  o.set(\"length\", Json(s.length));\n  return o;\n}\n",
     {"scenario-schema-sync"}),  # serialize drops "nx"
    ("src/scenario/schema.cpp",
     "SemSpec parse_sem(const Json& v, const std::string& path) {\n"
     "  Fields f(v, path);\n  SemSpec s;\n  s.nu = f.opt_num(\"nu\", s.nu);\n"
     "  return s;\n}\n",
     {"scenario-schema-sync"}),  # no serialize_sem at all
    ("src/scenario/schema.cpp",
     "Scenario parse_scenario_text(std::string_view text) {\n"
     "  return parse_scenario(Json::parse(text));\n}\n",
     set()),  # keyless helper needs no pair
    ("src/other/schema.cpp",
     "SemSpec parse_sem(const Json& v, const std::string& path) {\n"
     "  Fields f(v, path);\n  SemSpec s;\n  s.nu = f.opt_num(\"nu\", s.nu);\n"
     "  return s;\n}\n",
     set()),  # rule is scoped to src/scenario/schema.cpp
]


def self_test() -> int:
    import tempfile

    failures = 0
    with tempfile.TemporaryDirectory() as td:
        root = pathlib.Path(td)
        for rel, src, expected in SELF_TEST_CASES:
            p = root / rel
            p.parent.mkdir(parents=True, exist_ok=True)
            p.write_text(src, encoding="utf-8")
            got = {f.rule for f in lint_file(p, root)}
            if got != expected:
                print(f"self-test FAIL: {rel}: expected {sorted(expected)}, got {sorted(got)}")
                failures += 1
    if failures:
        return 1
    print(f"self-test OK ({len(SELF_TEST_CASES)} cases)")
    return 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("paths", nargs="*", help="files or directories (default: src tests bench examples)")
    ap.add_argument("--self-test", action="store_true", help="run the linter's own test cases")
    args = ap.parse_args()

    if args.self_test:
        return self_test()

    repo_root = pathlib.Path(__file__).resolve().parent.parent
    findings: list[Finding] = []
    for path in collect_targets(args.paths, repo_root):
        findings.extend(lint_file(path, repo_root))
    for f in findings:
        print(f)
    if findings:
        print(f"lint: {len(findings)} finding(s)")
        return 1
    print("lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
