"""Analysis passes over the shared C++ index (see tools/analyze/index.py).

Each pass module exports:
  RULE      — the rule id findings carry
  MARKERS   — set of `// analyze: <name> (<reason>)` marker names that
              suppress this pass's findings
  run(repo) — RepoIndex -> list[Finding]
  SELF_TEST_CASES — fixture cases: (case_name, {relpath: source}, expected)
              where expected is the set of finding keys the pass must emit
              (after marker suppression, before baseline filtering)
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class Finding:
    rule: str
    path: str
    line: int      # 1-based
    message: str
    key: str       # stable fingerprint (no line numbers) for baselining

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: {self.rule}: {self.message}"


def iter_calls(toks: list):
    """Yield (idx, name, receiver) for every `name(`-shaped call in a token
    slice. `receiver` is '.', '->' (approximated as '>'), '::' or '' for a
    plain unqualified call. Declarations are not distinguished here — pass
    bodies only contain statements, so every match is a call."""
    for i, t in enumerate(toks):
        if t.kind != "id":
            continue
        if i + 1 >= len(toks):
            continue
        nxt = toks[i + 1]
        if nxt.kind != "punct" or nxt.text != "(":
            continue
        recv = ""
        if i > 0 and toks[i - 1].kind == "punct":
            p = toks[i - 1].text
            if p in (".", "::"):
                recv = p
            elif p == ">" and i > 1 and toks[i - 2].kind == "punct" \
                    and toks[i - 2].text == "-":
                recv = "->"
        yield i, t.text, recv


def call_args_span(toks: list, name_idx: int):
    """Token slice of the argument list of the call at toks[name_idx]."""
    from index import match_group
    open_idx = name_idx + 1
    close = match_group(toks, open_idx, "(", ")")
    return toks[open_idx + 1:close]
