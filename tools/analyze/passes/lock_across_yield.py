"""lock-across-yield: holding a mutex across a fiber yield point.

Under the fiber scheduler (src/xmp/sched/), a rank that blocks in `recv`,
`barrier`, a collective, or a WaitCv wait is *suspended* and its OS worker
thread picks up another rank. If the suspended rank still holds a
`std::lock_guard`/`std::unique_lock`, every other rank that needs that mutex
wedges the worker pool — the PR-3 `abort_all` lock-order inversion class
(docs/CHECKING.md). The runtime deadlock detector sees it only when the
schedule actually wedges; this pass flags the shape statically.

Scope: src/xmp/** and src/scenario/ensemble.cpp (the code that runs on
fiber ranks and takes locks).

Exemptions:
  * a yield call that takes the held lock *as an argument* is the
    condition-variable protocol (`cv.wait(lk)`, `sched->park(lk)`): the
    primitive releases the lock while suspended — that is the correct
    pattern, not the bug;
  * an explicit `lk.unlock()` before the yield (and `lk.lock()` after)
    releases the guard for the blocking region;
  * `// analyze: lock-across-yield-ok (<reason>)` on or above the call.
"""

from __future__ import annotations

from index import match_group
from passes import Finding, call_args_span, iter_calls

RULE = "lock-across-yield"
MARKERS = {"lock-across-yield-ok"}

LOCK_TYPES = frozenset({"lock_guard", "unique_lock", "scoped_lock", "shared_lock"})
YIELD_CALLS = frozenset({
    "recv", "recv_bytes", "wait", "wait_for", "wait_until", "park",
    "barrier", "bcast", "gather", "gatherv", "scatter", "scatterv",
    "allgather", "allgatherv", "reduce", "allreduce", "split",
    "collect_bytes", "collect_bytes_all",
    # nonblocking-p2p handles: Pending::wait parks like a recv, and a
    # failed Pending::test is a cooperative yield (fiber_yield) — holding
    # an unrelated mutex across either from fiber code is the same inversion
    "test", "fiber_yield", "yield_current",
})


def in_scope(path: str) -> bool:
    return path.startswith("src/xmp/") or path == "src/scenario/ensemble.cpp"


def _lock_decl(toks, i):
    """If toks[i] starts `[std::]lock_guard[<...>] var(...)` or `{...}`,
    return (var_name, index_past_declaration); else None."""
    t = toks[i]
    if t.kind != "id" or t.text not in LOCK_TYPES:
        return None
    # reject type mentions in parameter lists / template args: require a
    # variable name then an initialiser
    j = i + 1
    if j < len(toks) and toks[j].kind == "punct" and toks[j].text == "<":
        from index import skip_template_args
        j = skip_template_args(toks, j)
    if j >= len(toks) or toks[j].kind != "id" or toks[j].text in LOCK_TYPES:
        return None
    var = toks[j]
    j += 1
    if j >= len(toks) or toks[j].kind != "punct" or toks[j].text not in "({":
        return None
    close = match_group(toks, j, toks[j].text, ")" if toks[j].text == "(" else "}")
    return var.text, close + 1


class _Scanner:
    def __init__(self, fn, fi, findings):
        self.fn = fn
        self.fi = fi
        self.findings = findings
        self.counts: dict = {}

    def scan_block(self, toks, i, end, held):
        """`held` maps lock var name -> True (locked) within enclosing
        scopes; locks declared in this block die at `end`."""
        held = dict(held)
        while i < end:
            t = toks[i]
            if t.kind == "punct" and t.text == "{":
                close = match_group(toks, i, "{", "}")
                self.scan_block(toks, i + 1, min(close, end), held)
                i = min(close, end) + 1
                continue
            d = _lock_decl(toks, i)
            if d is not None:
                var, past = d
                held[var] = True
                i = past
                continue
            if t.kind == "id" and i + 2 < end and toks[i + 1].kind == "punct" \
                    and toks[i + 1].text == "." and toks[i + 2].kind == "id" \
                    and toks[i + 2].text in ("unlock", "lock") and t.text in held:
                held[t.text] = toks[i + 2].text == "lock"
                i += 3
                continue
            if t.kind == "id" and t.text in YIELD_CALLS and i + 1 < end \
                    and toks[i + 1].kind == "punct" and toks[i + 1].text == "(":
                active = [v for v, on in held.items() if on]
                if active:
                    args = call_args_span(toks[i:], 0)
                    arg_ids = {a.text for a in args if a.kind == "id"}
                    hand_off = [v for v in active if v in arg_ids]
                    blocked = [v for v in active if v not in arg_ids]
                    if blocked:
                        self._report(t, blocked)
                close = match_group(toks, i + 1, "(", ")")
                # still scan the argument tokens for nested yields/locks
                self.scan_block(toks, i + 2, min(close, end), held)
                i = min(close, end) + 1
                continue
            i += 1

    def _report(self, tok, locks):
        marks = self.fi.markers_near(tok.line, MARKERS)
        if any(m.reason for m in marks):
            return
        qual = f"{self.fn.cls}::{self.fn.name}" if self.fn.cls else self.fn.name
        k = (qual, tok.text)
        self.counts[k] = self.counts.get(k, 0) + 1
        key = f"{qual}:{tok.text}({'+'.join(sorted(locks))})#{self.counts[k]}"
        self.findings.append(Finding(
            RULE, self.fi.path, tok.line,
            f"{qual} holds {', '.join(sorted(locks))} across fiber yield point "
            f"{tok.text}(): a suspended rank keeps the mutex and wedges the "
            "worker pool (PR-3 abort_all inversion class); unlock first, pass "
            "the lock to the primitive, or mark `// analyze: "
            "lock-across-yield-ok (<reason>)`", key=key))


def run(repo) -> list:
    findings: list[Finding] = []
    for fi in repo.files.values():
        if not in_scope(fi.path):
            continue
        for fn in fi.functions:
            sc = _Scanner(fn, fi, findings)
            sc.scan_block(fn.body, 0, len(fn.body), {})
    return findings


# ---- self-test fixtures -----------------------------------------------------

SELF_TEST_CASES = [
    ("lock_guard held across recv is flagged",
     {"src/xmp/a.cpp": """
void f(xmp::Comm& c, std::mutex& mu) {
  std::lock_guard lk(mu);
  auto msg = c.recv_bytes(0, 7);
}
"""},
     {"f:recv_bytes(lk)#1"}),

    ("lock released by scope end before the yield is clean",
     {"src/xmp/a.cpp": """
void f(xmp::Comm& c, std::mutex& mu) {
  {
    std::lock_guard lk(mu);
    state++;
  }
  c.barrier();
}
"""},
     set()),

    ("cv wait taking the lock as argument is the correct protocol",
     {"src/xmp/a.cpp": """
void f(std::mutex& mu, std::condition_variable& cv) {
  std::unique_lock lk(mu);
  while (!ready) cv.wait(lk);
}
"""},
     set()),

    ("explicit unlock before the yield is clean; relock after is fine",
     {"src/xmp/a.cpp": """
void f(xmp::Comm& c, std::mutex& mu) {
  std::unique_lock lk(mu);
  lk.unlock();
  c.barrier();
  lk.lock();
}
"""},
     set()),

    ("relocking then yielding is flagged again",
     {"src/xmp/a.cpp": """
void f(xmp::Comm& c, std::mutex& mu) {
  std::unique_lock lk(mu);
  lk.unlock();
  c.barrier();
  lk.lock();
  c.barrier();
}
"""},
     {"f:barrier(lk)#1"}),

    ("unique_lock with template args held across collect_bytes_all is flagged",
     {"src/xmp/a.cpp": """
void f(xmp::Comm& c, std::mutex& mu) {
  std::unique_lock<std::mutex> lk(mu);
  auto blobs = c.collect_bytes_all(nullptr, 0);
}
"""},
     {"f:collect_bytes_all(lk)#1"}),

    ("a unique_lock parameter is not a lock acquisition",
     {"src/xmp/a.cpp": """
void park(std::unique_lock<std::mutex>& lk);
void WaitCv::wait(std::unique_lock<std::mutex>& lk) {
  waiters.push_back(current());
  sched->park(lk);
}
"""},
     set()),

    ("yield name inside a string or comment is not a call",
     {"src/xmp/a.cpp": """
void f(std::mutex& mu) {
  std::lock_guard lk(mu);
  log("blocked in recv(...)");  // recv() happens after release
}
"""},
     set()),

    ("ensemble.cpp is in scope",
     {"src/scenario/ensemble.cpp": """
void g(xmp::Comm& c, std::mutex& mu) {
  std::lock_guard lk(mu);
  auto msg = c.recv_bytes(0, 71);
}
"""},
     {"g:recv_bytes(lk)#1"}),

    ("other directories are out of scope",
     {"src/telemetry/a.cpp": """
void f(xmp::Comm& c, std::mutex& mu) {
  std::lock_guard lk(mu);
  c.barrier();
}
"""},
     set()),

    ("marker with a reason suppresses",
     {"src/xmp/a.cpp": """
void f(xmp::Comm& c, std::mutex& mu) {
  std::lock_guard lk(mu);
  // analyze: lock-across-yield-ok (single-rank comm: recv completes immediately)
  auto msg = c.recv_bytes(0, 7);
}
"""},
     set()),

    ("Pending::test polled under a held lock is flagged",
     {"src/xmp/a.cpp": """
void f(xmp::Pending& p, std::mutex& mu) {
  std::lock_guard lk(mu);
  while (!p.test()) spin();
}
"""},
     {"f:test(lk)#1"}),

    ("marked Pending::wait under a held lock is suppressed",
     {"src/xmp/a.cpp": """
void f(xmp::Pending& p, std::mutex& mu) {
  std::lock_guard lk(mu);
  // analyze: lock-across-yield-ok (handle is born matched: wait cannot park)
  auto raw = p.wait();
}
"""},
     set()),

    ("two locks held: both named in the finding",
     {"src/xmp/a.cpp": """
void f(xmp::Comm& c, std::mutex& a, std::mutex& b) {
  std::lock_guard la(a);
  std::lock_guard lb(b);
  c.barrier();
}
"""},
     {"f:barrier(la+lb)#1"}),
]
