"""checkpoint-coverage: every data member of a class that defines
save_state/load_state must be referenced in *both* bodies, or carry an
explicit `// analyze: no-checkpoint (<reason>)` marker on (or up to two
lines above) its declaration.

Bug class: a new member added to an evolving solver that nobody adds to the
checkpoint codec. The restart then silently diverges from the uninterrupted
run — exactly the `v_pred_`-style drift the resilience tests only catch if
some test happens to exercise that member across a restart (see
docs/RESILIENCE.md). Runtime bitwise round-trip tests verify the fields that
*are* serialised; only a structural check can see the fields that are not.

A member referenced in save_state but not load_state (or vice versa) is also
flagged: one-sided references are how load-order skew starts.
"""

from __future__ import annotations

from passes import Finding

RULE = "checkpoint-coverage"
MARKERS = {"no-checkpoint", "checkpoint-coverage-ok"}

_SAVE, _LOAD = "save_state", "load_state"


def _id_set(fns) -> set:
    out = set()
    for fn in fns:
        for t in fn.body:
            if t.kind == "id":
                out.add(t.text)
    return out


def run(repo) -> list:
    findings: list[Finding] = []
    for fi in repo.files.values():
        for cls in fi.classes:
            if _SAVE not in cls.declared or _LOAD not in cls.declared:
                continue
            save_bodies = repo.method_bodies(cls.name, _SAVE)
            load_bodies = repo.method_bodies(cls.name, _LOAD)
            if not save_bodies or not load_bodies:
                # declared but no body in the indexed set (e.g. interface
                # class); nothing to verify structurally
                continue
            save_ids = _id_set(save_bodies)
            load_ids = _id_set(load_bodies)
            for m in cls.members:
                in_save = m.name in save_ids
                in_load = m.name in load_ids
                if in_save and in_load:
                    continue
                marks = fi.markers_near(m.line, MARKERS)
                if any(mk.reason for mk in marks):
                    continue
                if in_save != in_load:
                    where = _LOAD if in_save else _SAVE
                    msg = (f"{cls.name}::{m.name} is referenced in "
                           f"{_SAVE if in_save else _LOAD} but not in {where}: "
                           "one-sided checkpoint access skews the restart codec")
                else:
                    msg = (f"{cls.name}::{m.name} is not referenced in "
                           f"{_SAVE}/{_LOAD}: restart will silently lose this "
                           "state; serialise it or mark the declaration with "
                           "`// analyze: no-checkpoint (<reason>)`")
                findings.append(Finding(RULE, fi.path, m.line, msg,
                                        key=f"{cls.name}::{m.name}"))
    return findings


# ---- self-test fixtures -----------------------------------------------------

_HDR = """#pragma once
namespace resilience { class BlobWriter; class BlobReader; }
"""

SELF_TEST_CASES = [
    ("covered member is clean",
     {"src/a/x.hpp": _HDR + """
class Probe {
public:
  void save_state(resilience::BlobWriter& w) const;
  void load_state(resilience::BlobReader& r);
private:
  double value_ = 0.0;
};
""",
      "src/a/x.cpp": """
#include "a/x.hpp"
void Probe::save_state(resilience::BlobWriter& w) const { w.pod(value_); }
void Probe::load_state(resilience::BlobReader& r) { r.pod(value_); }
"""},
     set()),

    ("member missing from both bodies is flagged",
     {"src/a/x.hpp": _HDR + """
class Probe {
public:
  void save_state(resilience::BlobWriter& w) const;
  void load_state(resilience::BlobReader& r);
private:
  double value_ = 0.0;
  double scratch_;
};
""",
      "src/a/x.cpp": """
void Probe::save_state(resilience::BlobWriter& w) const { w.pod(value_); }
void Probe::load_state(resilience::BlobReader& r) { r.pod(value_); }
"""},
     {"Probe::scratch_"}),

    ("member referenced only in save_state is flagged (load-order skew)",
     {"src/a/x.cpp": _HDR.replace("#pragma once\n", "") + """
class Probe {
public:
  void save_state(resilience::BlobWriter& w) const { w.pod(a_); w.pod(b_); }
  void load_state(resilience::BlobReader& r) { r.pod(a_); }
private:
  double a_;
  double b_;
};
"""},
     {"Probe::b_"}),

    ("no-checkpoint marker with a reason suppresses",
     {"src/a/x.hpp": _HDR + """
class Probe {
public:
  void save_state(resilience::BlobWriter& w) const;
  void load_state(resilience::BlobReader& r);
private:
  double value_;
  // analyze: no-checkpoint (rebuilt on demand from value_)
  double cache_;
};
""",
      "src/a/x.cpp": """
void Probe::save_state(resilience::BlobWriter& w) const { w.pod(value_); }
void Probe::load_state(resilience::BlobReader& r) { r.pod(value_); }
"""},
     set()),

    ("marker without a reason does NOT suppress",
     {"src/a/x.cpp": _HDR.replace("#pragma once\n", "") + """
class Probe {
public:
  void save_state(resilience::BlobWriter& w) const { w.pod(v_); }
  void load_state(resilience::BlobReader& r) { r.pod(v_); }
private:
  double v_;
  // analyze: no-checkpoint
  double cache_;
};
"""},
     {"Probe::cache_"}),

    ("mention inside a comment in the body does not count as coverage",
     {"src/a/x.cpp": _HDR.replace("#pragma once\n", "") + """
class Probe {
public:
  // note: cache_ is deliberately not serialised here
  void save_state(resilience::BlobWriter& w) const { w.pod(v_); /* cache_ */ }
  void load_state(resilience::BlobReader& r) { r.pod(v_); }
private:
  double v_;
  double cache_;
};
"""},
     {"Probe::cache_"}),

    ("mention inside a string literal does not count as coverage",
     {"src/a/x.cpp": _HDR.replace("#pragma once\n", "") + """
class Probe {
public:
  void save_state(resilience::BlobWriter& w) const { w.str("cache_"); w.pod(v_); }
  void load_state(resilience::BlobReader& r) { r.pod(v_); (void)"cache_"; }
private:
  double v_;
  double cache_;
};
"""},
     {"Probe::cache_"}),

    ("classes without a save/load pair are not scanned",
     {"src/a/x.hpp": _HDR + """
class Plain {
  double anything_;
};
class SaveOnly {
public:
  void save_state(resilience::BlobWriter& w) const { w.pod(x_); }
private:
  double x_;
  double y_;
};
"""},
     set()),

    ("multi-declarator and grouped members are each checked",
     {"src/a/x.cpp": _HDR.replace("#pragma once\n", "") + """
class Probe {
public:
  void save_state(resilience::BlobWriter& w) const { w.pod(a_); w.pod(c_); }
  void load_state(resilience::BlobReader& r) { r.pod(a_); r.pod(c_); }
private:
  double a_, b_;
  int c_ = 0, d_ = 1;
};
"""},
     {"Probe::b_", "Probe::d_"}),

    ("delegation through a helper call counts as a reference",
     {"src/a/x.cpp": _HDR.replace("#pragma once\n", "") + """
class Inner {
public:
  void save_state(resilience::BlobWriter& w) const { w.pod(z_); }
  void load_state(resilience::BlobReader& r) { r.pod(z_); }
private:
  double z_;
};
class Outer {
public:
  void save_state(resilience::BlobWriter& w) const { inner_.save_state(w); }
  void load_state(resilience::BlobReader& r) { inner_.load_state(r); }
private:
  Inner inner_;
};
"""},
     set()),
]
