"""collective-divergence: an xmp collective called under a rank-dependent
condition is a deadlock/mismatch waiting to happen — collectives must be
entered by every rank of the communicator. xmp checked mode catches this at
*run time*, when the divergent schedule actually executes (docs/CHECKING.md);
this pass is the static complement that fires before any test runs.

Flagged shapes (lexically, per function body):
  * a collective call inside an `if`/`else`/`while`/`for`/`switch` whose
    condition mentions rank identity — `rank()`, `world_rank`, `is_master`,
    `is_root`, or a local variable whose initialiser was rank-dependent
    (one level of taint, iterated to a fixpoint);
  * a collective call after a rank-guarded early `return` in the same body
    (the surviving ranks' schedules no longer match the returners').

Rank-dependent *arguments* are fine (`split(rank() == 0 ? a : b, key)` is
called by every rank); only control flow is flagged. Legitimate divergence
(e.g. a collective on a sub-communicator whose membership exactly matches
the guard) is suppressed with
`// analyze: collective-divergence-ok (<reason>)` on or above the call.
"""

from __future__ import annotations

from index import match_group
from passes import Finding, iter_calls

RULE = "collective-divergence"
MARKERS = {"collective-divergence-ok"}

COLLECTIVES = frozenset({
    "barrier", "bcast", "gather", "gatherv", "scatter", "scatterv",
    "allgather", "allgatherv", "reduce", "allreduce", "split", "set_trace",
    "collect_bytes", "collect_bytes_all",
})
# the raw primitives are collective even when called unqualified (implicit
# this inside Comm methods) or namespace-qualified
_ALWAYS = frozenset({"collect_bytes", "collect_bytes_all"})

RANK_IDS = frozenset({"rank", "rank_", "world_rank", "is_master", "is_root"})


def _taint(body: list) -> set:
    """Local identifiers assigned from rank-dependent expressions."""
    tainted: set[str] = set()
    for _ in range(3):  # transitive closure, bounded
        grew = False
        i = 0
        n = len(body)
        while i < n:
            t = body[i]
            # pattern: id '=' <rhs up to ';' or ',' at depth 0>, where '=' is
            # a single '=' (not ==, <=, !=, ...)
            if t.kind == "id" and t.text not in tainted and i + 1 < n \
                    and body[i + 1].kind == "punct" and body[i + 1].text == "=" \
                    and not (i + 2 < n and body[i + 2].kind == "punct"
                             and body[i + 2].text == "=") \
                    and not (i > 0 and body[i - 1].kind == "punct"
                             and body[i - 1].text in ("=", "!", "<", ">")):
                j = i + 2
                depth = 0
                dep = False
                while j < n:
                    tj = body[j]
                    if tj.kind == "punct":
                        if tj.text in "([{":
                            depth += 1
                        elif tj.text in ")]}":
                            if depth == 0:
                                break
                            depth -= 1
                        elif tj.text in (";", ",") and depth == 0:
                            break
                    if tj.kind == "id" and (tj.text in RANK_IDS or tj.text in tainted):
                        dep = True
                    j += 1
                if dep:
                    tainted.add(t.text)
                    grew = True
            i += 1
        if not grew:
            break
    return tainted


def _rank_dep(cond: list, tainted: set) -> bool:
    return any(t.kind == "id" and (t.text in RANK_IDS or t.text in tainted)
               for t in cond)


def _contains_return(span: list) -> bool:
    return any(t.kind == "id" and t.text == "return" for t in span)


class _Scanner:
    def __init__(self, fn, fi, tainted, report):
        self.fn = fn
        self.fi = fi
        self.tainted = tainted
        self.report = report   # callable(call_tok, call_name, cond_line)
        self.seq = 0

    def scan_block(self, toks, i, end, guards):
        """Statement list; returns nothing. `guards` is a list of
        (cond_span, cond_line) for every enclosing rank-dependent condition
        (including rank-guarded early returns earlier in this block)."""
        guards = list(guards)
        while i < end:
            i = self.scan_stmt(toks, i, end, guards)

    def scan_stmt(self, toks, i, end, guards):
        """Scan one statement starting at toks[i] under `guards`; may append
        to `guards` (rank-guarded early return). Returns index past it."""
        if i >= end:
            return end
        t = toks[i]
        if t.kind == "punct" and t.text == "{":
            close = match_group(toks, i, "{", "}")
            self.scan_block(toks, i + 1, min(close, end), guards)
            return min(close, end) + 1
        if t.kind == "id" and t.text in ("if", "while", "for", "switch"):
            j = i + 1
            if t.text == "if" and j < end and toks[j].kind == "id" \
                    and toks[j].text == "constexpr":
                j += 1
            if j >= end or not (toks[j].kind == "punct" and toks[j].text == "("):
                return i + 1
            close = match_group(toks, j, "(", ")")
            cond = toks[j + 1:min(close, end)]
            dep = _rank_dep(cond, self.tainted)
            cond_line = t.line
            inner = guards + [(cond, cond_line)] if dep else guards
            # the condition itself may contain collective calls (e.g.
            # `if (c.allreduce(x, Op::Min) > 0)`) — scan it under the OUTER
            # guards only
            self.check_calls(cond, guards)
            body_start = min(close, end) + 1
            j = self.scan_stmt(toks, body_start, end, list(inner))
            if t.text == "if":
                if dep and _contains_return(toks[body_start:j]):
                    guards.append((cond, cond_line))
                while j < end and toks[j].kind == "id" and toks[j].text == "else":
                    j = self.scan_stmt(toks, j + 1, end, list(inner))
            return j
        if t.kind == "id" and t.text == "do":
            j = self.scan_stmt(toks, i + 1, end, list(guards))
            # trailing `while (...)` handled as an expression statement
            return j
        # expression / declaration statement: up to ';' at depth 0
        j = i
        depth = 0
        while j < end:
            tj = toks[j]
            if tj.kind == "punct":
                if tj.text in "([{":
                    depth += 1
                elif tj.text in ")]}":
                    if depth == 0:
                        break
                    depth -= 1
                elif tj.text == ";" and depth == 0:
                    j += 1
                    break
            j += 1
        self.check_calls(toks[i:j], guards)
        return max(j, i + 1)

    def check_calls(self, span, guards):
        if not guards:
            return
        for idx, name, recv in iter_calls(span):
            if name not in COLLECTIVES:
                continue
            if name not in _ALWAYS and recv not in (".", "->", "::"):
                continue
            self.report(span[idx], name, guards[-1][1])


def run(repo) -> list:
    findings: list[Finding] = []
    for fi in repo.files.values():
        for fn in fi.functions:
            if not any(t.kind == "id" and t.text in COLLECTIVES for t in fn.body):
                continue
            tainted = _taint(fn.body)
            seen: dict = {}

            def report(tok, name, cond_line, fn=fn, fi=fi, seen=seen):
                marks = fi.markers_near(tok.line, MARKERS)
                if any(m.reason for m in marks):
                    return
                qual = f"{fn.cls}::{fn.name}" if fn.cls else fn.name
                k = (qual, name)
                seen[k] = seen.get(k, 0) + 1
                key = f"{qual}:{name}#{seen[k]}"
                findings.append(Finding(
                    RULE, fi.path, tok.line,
                    f"collective {name}() in {qual} is guarded by a "
                    f"rank-dependent condition (line {cond_line}): divergent "
                    "collective schedules deadlock or mismatch; hoist the "
                    "call, or mark it `// analyze: collective-divergence-ok "
                    "(<reason>)`", key=key))

            sc = _Scanner(fn, fi, tainted, report)
            sc.scan_block(fn.body, 0, len(fn.body), [])
    return findings


# ---- self-test fixtures -----------------------------------------------------

SELF_TEST_CASES = [
    ("collective under a rank() guard is flagged",
     {"src/m/a.cpp": """
#include "xmp/comm.hpp"
void f(xmp::Comm& c) {
  if (c.rank() == 0) {
    c.barrier();
  }
}
"""},
     {"f:barrier#1"}),

    ("unguarded collective is clean",
     {"src/m/a.cpp": """
void f(xmp::Comm& c) {
  c.barrier();
  double s = c.allreduce(1.0, xmp::Op::Sum);
  (void)s;
}
"""},
     set()),

    ("rank-dependent argument is not a guard",
     {"src/m/a.cpp": """
void f(xmp::Comm& c) {
  xmp::Comm sub = c.split(c.rank() == 0 ? 0 : 1, c.rank());
}
"""},
     set()),

    ("else branch of a rank guard is also flagged",
     {"src/m/a.cpp": """
void f(xmp::Comm& c) {
  if (c.rank() == 0) {
    do_master_io();
  } else {
    c.barrier();
  }
}
"""},
     {"f:barrier#1"}),

    ("tainted local (is-root bool) guard is flagged",
     {"src/m/a.cpp": """
void f(xmp::Comm& c, int root) {
  const bool am_root = c.rank() == root;
  std::vector<double> pts;
  if (am_root) {
    c.bcast(pts, root);
  }
}
"""},
     {"f:bcast#1"}),

    ("guard on a non-rank condition is clean",
     {"src/m/a.cpp": """
void f(xmp::Comm& c, bool enabled) {
  std::vector<double> pts;
  if (enabled) {
    c.bcast(pts, 0);
  }
}
"""},
     set()),

    ("collective after a rank-guarded early return is flagged",
     {"src/m/a.cpp": """
void f(xmp::Comm& c) {
  if (c.rank() != 0) return;
  c.barrier();
}
"""},
     {"f:barrier#1"}),

    ("collective before the early return is clean",
     {"src/m/a.cpp": """
int f(xmp::Comm& c) {
  int n = static_cast<int>(c.allreduce(std::int64_t{1}, xmp::Op::Sum));
  if (c.rank() != 0) return 0;
  return n;
}
"""},
     set()),

    ("collective mentioned in a string/comment is not a call",
     {"src/m/a.cpp": """
void f(xmp::Comm& c) {
  if (c.rank() == 0) {
    log("entering barrier() now");  // the barrier() happens elsewhere
  }
}
"""},
     set()),

    ("marker with a reason suppresses",
     {"src/m/a.cpp": """
void f(xmp::Comm& c, xmp::Comm& masters) {
  if (c.rank() == 0) {
    // analyze: collective-divergence-ok (masters comm contains exactly the rank-0s)
    masters.barrier();
  }
}
"""},
     set()),

    ("raw collect_bytes_all under a guard is flagged even unqualified",
     {"src/m/a.cpp": """
void Comm::sync() const {
  if (rank() == 0) {
    collect_bytes_all(nullptr, 0);
  }
}
"""},
     {"Comm::sync:collect_bytes_all#1"}),

    ("plain function named split without receiver is ignored",
     {"src/m/a.cpp": """
void f(const std::string& s, int rank_like) {
  if (is_master(rank_like)) {
    auto parts = split(s, ',');
  }
}
"""},
     set()),

    ("collective inside a rank-guarded loop is flagged",
     {"src/m/a.cpp": """
void f(xmp::Comm& c) {
  for (int r = 0; r < c.rank(); ++r) {
    c.barrier();
  }
}
"""},
     {"f:barrier#1"}),
]
