"""`python3 tools/analyze` entry point."""

import sys
from pathlib import Path

# Make the package directory importable as flat modules (tokenizer, index,
# passes) regardless of how we are invoked (python3 tools/analyze, an
# absolute path from ctest, or -m with the repo root on sys.path).
_HERE = str(Path(__file__).resolve().parent)
if _HERE not in sys.path:
    sys.path.insert(0, _HERE)

from driver import main  # noqa: E402

if __name__ == "__main__":
    raise SystemExit(main())
