"""Driver for the semantic repo analyzer.

Usage (from the repo root):
    python3 tools/analyze                 # analyze default roots, gate on
                                          # unbaselined findings
    python3 tools/analyze src/dpd         # restrict to explicit paths
    python3 tools/analyze --self-test     # run the fixture suites of every pass
    python3 tools/analyze --json out.json # also write a machine-readable report
    python3 tools/analyze --write-baseline  # accept current findings

Translation units come from `--compile-commands build/compile_commands.json`
when given (plus every header under the default roots — compile commands only
list .cpp files); otherwise from a glob over the default roots.

Findings are suppressed either by an inline
`// analyze: <marker> (<reason>)` on/above the offending line, or by an entry
in the committed baseline (tools/analyze/baseline.json), keyed on
(rule, path, stable key) — never on line numbers, so unrelated edits do not
churn it. Stale baseline entries are reported as warnings so the file shrinks
over time instead of fossilising.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from index import RepoIndex
from passes import checkpoint_coverage, collective_divergence, lock_across_yield

PASSES = (checkpoint_coverage, collective_divergence, lock_across_yield)

REPO_ROOT = Path(__file__).resolve().parents[2]
DEFAULT_BASELINE = Path(__file__).resolve().parent / "baseline.json"
DEFAULT_ROOTS = ("src",)
EXTS = (".hpp", ".h", ".cpp", ".cc", ".cxx")


def _relpath(p: Path) -> str:
    try:
        return p.resolve().relative_to(REPO_ROOT).as_posix()
    except ValueError:
        return p.as_posix()


def collect_targets(paths, compile_commands) -> list:
    """Repo-relative paths of the files to index, sorted and de-duplicated."""
    out: set[str] = set()
    if paths:
        for p in paths:
            pp = Path(p)
            if not pp.is_absolute():
                pp = REPO_ROOT / pp
            if pp.is_dir():
                for ext in EXTS:
                    out.update(_relpath(f) for f in pp.rglob(f"*{ext}"))
            elif pp.is_file():
                out.add(_relpath(pp))
            else:
                print(f"analyze: warning: no such path: {p}", file=sys.stderr)
        return sorted(out)
    if compile_commands:
        cc = Path(compile_commands)
        if not cc.is_absolute():
            cc = REPO_ROOT / cc
        try:
            entries = json.loads(cc.read_text())
        except (OSError, ValueError) as e:
            print(f"analyze: warning: cannot read {compile_commands} ({e}); "
                  "falling back to glob", file=sys.stderr)
            entries = []
        for e in entries:
            f = Path(e.get("file", ""))
            if not f.is_absolute():
                f = Path(e.get("directory", ".")) / f
            rel = _relpath(f)
            if any(rel.startswith(r + "/") for r in DEFAULT_ROOTS) and f.is_file():
                out.add(rel)
        # compile commands carry only TUs; headers hold the class declarations
        for root in DEFAULT_ROOTS:
            for ext in (".hpp", ".h"):
                out.update(_relpath(f) for f in (REPO_ROOT / root).rglob(f"*{ext}"))
        if out:
            return sorted(out)
    for root in DEFAULT_ROOTS:
        base = REPO_ROOT / root
        if base.is_dir():
            for ext in EXTS:
                out.update(_relpath(f) for f in base.rglob(f"*{ext}"))
    return sorted(out)


def build_index(targets) -> RepoIndex:
    repo = RepoIndex()
    for rel in targets:
        p = REPO_ROOT / rel
        try:
            text = p.read_text(errors="replace")
        except OSError as e:
            print(f"analyze: warning: cannot read {rel} ({e})", file=sys.stderr)
            continue
        repo.add(rel, text)
    return repo


# ---- baseline ---------------------------------------------------------------

def load_baseline(path: Path) -> list:
    """[{rule, path, key}, ...]; missing file -> empty."""
    try:
        data = json.loads(path.read_text())
    except FileNotFoundError:
        return []
    except ValueError as e:
        print(f"analyze: error: malformed baseline {path}: {e}", file=sys.stderr)
        raise SystemExit(2)
    return data.get("findings", [])


def save_baseline(path: Path, findings) -> None:
    entries = sorted(
        ({"rule": f.rule, "path": f.path, "key": f.key} for f in findings),
        key=lambda e: (e["rule"], e["path"], e["key"]))
    path.write_text(json.dumps(
        {"comment": "Accepted analyzer findings. Entries are keyed on stable "
                    "fingerprints, not line numbers. Prefer fixing the code or "
                    "adding a reasoned inline marker; baseline only what is "
                    "intentionally deferred.",
         "findings": entries}, indent=2) + "\n")


def split_by_baseline(findings, baseline):
    base = {(e["rule"], e["path"], e["key"]) for e in baseline}
    new, known = [], []
    seen = set()
    for f in findings:
        k = (f.rule, f.path, f.key)
        seen.add(k)
        (known if k in base else new).append(f)
    stale = sorted(b for b in base if b not in seen)
    return new, known, stale


# ---- self-tests -------------------------------------------------------------

def run_self_tests() -> int:
    failures = 0
    total = 0
    for mod in PASSES:
        for name, files, expected in mod.SELF_TEST_CASES:
            total += 1
            repo = RepoIndex()
            for rel, src in files.items():
                repo.add(rel, src)
            got = {f.key for f in mod.run(repo)}
            if got != expected:
                failures += 1
                print(f"FAIL [{mod.RULE}] {name}\n"
                      f"  expected: {sorted(expected)}\n"
                      f"  got:      {sorted(got)}")
    print(f"analyze self-test: {total - failures}/{total} cases passed "
          f"({', '.join(m.RULE for m in PASSES)})")
    return 1 if failures else 0


# ---- main -------------------------------------------------------------------

def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        prog="tools/analyze",
        description="semantic static analysis over a shared C++ index")
    ap.add_argument("paths", nargs="*", help="files/dirs to analyze "
                    "(default: src/)")
    ap.add_argument("--compile-commands", metavar="JSON",
                    help="discover translation units from a CMake "
                    "compile_commands.json (headers are still globbed)")
    ap.add_argument("--baseline", metavar="JSON", default=str(DEFAULT_BASELINE),
                    help="baseline file (default: tools/analyze/baseline.json)")
    ap.add_argument("--no-baseline", action="store_true",
                    help="ignore the baseline: report every finding")
    ap.add_argument("--write-baseline", action="store_true",
                    help="rewrite the baseline to accept all current findings")
    ap.add_argument("--json", metavar="OUT",
                    help="write a machine-readable report to OUT")
    ap.add_argument("--self-test", action="store_true",
                    help="run the per-pass fixture suites and exit")
    args = ap.parse_args(argv)

    if args.self_test:
        return run_self_tests()

    targets = collect_targets(args.paths, args.compile_commands)
    if not targets:
        print("analyze: error: no input files", file=sys.stderr)
        return 2
    repo = build_index(targets)

    findings = []
    for mod in PASSES:
        findings.extend(mod.run(repo))
    findings.sort(key=lambda f: (f.path, f.line, f.rule, f.key))

    baseline_path = Path(args.baseline)
    if not baseline_path.is_absolute():
        baseline_path = REPO_ROOT / baseline_path
    if args.write_baseline:
        save_baseline(baseline_path, findings)
        print(f"analyze: wrote {len(findings)} entries to "
              f"{_relpath(baseline_path)}")
        return 0
    baseline = [] if args.no_baseline else load_baseline(baseline_path)
    new, known, stale = split_by_baseline(findings, baseline)

    if args.json:
        report = {
            "files": len(targets),
            "passes": [m.RULE for m in PASSES],
            "findings": [
                {"rule": f.rule, "path": f.path, "line": f.line,
                 "key": f.key, "message": f.message,
                 "baselined": f in known}
                for f in findings],
            "stale_baseline": [list(s) for s in stale],
        }
        Path(args.json).write_text(json.dumps(report, indent=2) + "\n")

    for f in new:
        print(f)
    for s in stale:
        print(f"analyze: warning: stale baseline entry {s[0]} {s[1]} "
              f"[{s[2]}] — remove it", file=sys.stderr)
    n_cls = sum(len(fi.classes) for fi in repo.files.values())
    n_fn = sum(len(fi.functions) for fi in repo.files.values())
    print(f"analyze: {len(targets)} files, {n_cls} classes, {n_fn} function "
          f"bodies; {len(new)} finding(s), {len(known)} baselined, "
          f"{len(stale)} stale baseline entr{'y' if len(stale) == 1 else 'ies'}")
    return 1 if new else 0


if __name__ == "__main__":
    raise SystemExit(main())
