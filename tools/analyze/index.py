"""Lightweight C++ declaration indexer over the tokenizer's output.

Per file it records:
  * classes/structs (including nested ones), each with its *data members*
    (name + declaration line) and the set of member functions it declares,
  * function bodies — inline methods, out-of-line `Class::method` definitions
    and free functions — as token slices, so passes can walk real code
    without ever seeing comments, strings or preprocessor text,
  * suppression markers (`// analyze: <marker> (<reason>)`) by line.

The indexer is deliberately not a parser for all of C++. It understands the
subset this repo (and most engine-style code) is written in: namespaces,
classes with access specifiers, nested types, template headers, default
member initializers, brace/paren initializers, out-of-line qualified
definitions. Exotic constructs degrade gracefully (a statement that cannot
be classified is skipped, never crashed on).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from tokenizer import Tok, code_tokens, tokenize, KEYWORDS

MARKER_RE = re.compile(r"//\s*analyze:\s*([A-Za-z0-9_-]+)\s*(?:\(([^)]*)\))?")
# Statement-introducing keywords that a declaration never starts with.
_NON_MEMBER_HEAD = frozenset(
    {"using", "typedef", "friend", "static_assert", "template", "public",
     "private", "protected", "static", "constexpr", "consteval", "constinit"})
_CONTROL = frozenset({"if", "for", "while", "switch", "return", "throw",
                      "catch", "do", "else", "new", "delete", "sizeof",
                      "co_return", "co_yield", "co_await", "case", "goto"})


@dataclass
class Marker:
    name: str
    reason: str
    line: int


@dataclass
class Member:
    name: str
    line: int


@dataclass
class Function:
    cls: str        # short class name, "" for free functions
    name: str
    path: str
    line: int       # line of the definition header
    body: list      # token slice of the body, *excluding* the outer braces


@dataclass
class ClassInfo:
    name: str       # short name
    path: str
    line: int
    members: list = field(default_factory=list)     # [Member]
    methods: dict = field(default_factory=dict)     # name -> Function (inline)
    declared: set = field(default_factory=set)      # declared method names


@dataclass
class FileIndex:
    path: str       # repo-relative, forward slashes
    text: str
    raw_lines: list
    toks: list      # full token stream (incl. comments/pp)
    code: list      # code tokens only
    classes: list = field(default_factory=list)
    functions: list = field(default_factory=list)
    markers: list = field(default_factory=list)

    def markers_near(self, line: int, names: set, back: int = 2):
        """Markers with a name in `names` on `line` or up to `back` lines above."""
        return [m for m in self.markers
                if m.name in names and line - back <= m.line <= line]


class RepoIndex:
    def __init__(self):
        self.files: dict[str, FileIndex] = {}

    def add(self, path: str, text: str) -> FileIndex:
        fi = index_file(path, text)
        self.files[path] = fi
        return fi

    def classes_by_name(self, name: str) -> list:
        return [c for fi in self.files.values() for c in fi.classes if c.name == name]

    def all_classes(self):
        for fi in self.files.values():
            yield fi, fi.classes

    def method_bodies(self, cls: str, name: str) -> list:
        """Every indexed body of Class::name (inline or out-of-line)."""
        out = []
        for fi in self.files.values():
            for fn in fi.functions:
                if fn.cls == cls and fn.name == name:
                    out.append(fn)
        return out


# ---- token-walk helpers -----------------------------------------------------

def match_group(toks: list, i: int, open_ch: str, close_ch: str) -> int:
    """Index of the token matching toks[i] (== open_ch); len(toks) if unbalanced."""
    depth = 0
    n = len(toks)
    while i < n:
        t = toks[i]
        if t.kind == "punct":
            if t.text == open_ch:
                depth += 1
            elif t.text == close_ch:
                depth -= 1
                if depth == 0:
                    return i
        i += 1
    return n


def skip_template_args(toks: list, i: int) -> int:
    """With toks[i] == '<' opening a template argument list, return the index
    just past the matching '>'. Tracks nested <>, () and {}; gives up (returns
    i+1) if no close is found before a ';' at depth 0."""
    depth = 0
    j = i
    n = len(toks)
    while j < n:
        t = toks[j]
        if t.kind == "punct":
            if t.text == "<":
                depth += 1
            elif t.text == ">":
                depth -= 1
                if depth == 0:
                    return j + 1
            elif t.text in "({[":
                j = match_group(toks, j, t.text, {"(": ")", "{": "}", "[": "]"}[t.text])
            elif t.text == ";" and depth > 0:
                return i + 1  # not a template arg list after all
        j += 1
    return i + 1


# ---- file indexing ----------------------------------------------------------

def index_file(path: str, text: str) -> FileIndex:
    toks = tokenize(text)
    code = code_tokens(toks)
    fi = FileIndex(path=path, text=text, raw_lines=text.splitlines(),
                   toks=toks, code=code)
    for t in toks:
        if t.kind == "comment":
            for m in MARKER_RE.finditer(t.text):
                # a marker inside a multi-line block comment anchors to the
                # line the marker text is on
                off = t.text[:m.start()].count("\n")
                fi.markers.append(Marker(m.group(1), (m.group(2) or "").strip(),
                                         t.line + off))
    _scan_scope(fi, code, 0, len(code))
    return fi


def _scan_scope(fi: FileIndex, toks: list, i: int, end: int) -> None:
    """Namespace/global scope: classes, functions, namespaces."""
    while i < end:
        t = toks[i]
        if t.kind == "id" and t.text == "namespace":
            j = i + 1
            while j < end and not (toks[j].kind == "punct" and toks[j].text in "{;="):
                j += 1
            if j < end and toks[j].text == "{":
                close = match_group(toks, j, "{", "}")
                _scan_scope(fi, toks, j + 1, min(close, end))
                i = close + 1
            else:
                i = j + 1
            continue
        if t.kind == "id" and t.text == "template":
            if i + 1 < end and toks[i + 1].kind == "punct" and toks[i + 1].text == "<":
                i = skip_template_args(toks, i + 1)
            else:
                i += 1
            continue
        if t.kind == "id" and t.text in ("class", "struct", "union"):
            i = _scan_class(fi, toks, i, end)
            continue
        if t.kind == "id" and t.text == "enum":
            i = _skip_to_semi(toks, i, end)
            continue
        if t.kind == "punct" and t.text == "{":
            # extern "C" { ... } or a stray block: descend
            close = match_group(toks, i, "{", "}")
            _scan_scope(fi, toks, i + 1, min(close, end))
            i = close + 1
            continue
        fn_end = _try_function(fi, toks, i, end, cls_hint=None)
        if fn_end is not None:
            i = fn_end
            continue
        i += 1


def _skip_to_semi(toks: list, i: int, end: int) -> int:
    """Past the next ';' at group depth 0 (consuming brace/paren groups)."""
    while i < end:
        t = toks[i]
        if t.kind == "punct":
            if t.text in "({[":
                i = match_group(toks, i, t.text, {"(": ")", "{": "}", "[": "]"}[t.text])
            elif t.text == ";":
                return i + 1
        i += 1
    return end


def _scan_class(fi: FileIndex, toks: list, i: int, end: int) -> int:
    """toks[i] is class/struct/union. Index it (and nested types); return the
    index just past the closing ';' (or wherever scanning can resume)."""
    j = i + 1
    # optional attributes / export macros before the name
    name = None
    while j < end:
        t = toks[j]
        if t.kind == "id" and t.text not in KEYWORDS:
            name = t.text
            j += 1
            # skip template-id in the name position (specialisations)
            if j < end and toks[j].kind == "punct" and toks[j].text == "<":
                j = skip_template_args(toks, j)
            continue
        if t.kind == "id" and t.text == "final":
            j += 1
            continue
        if t.kind == "punct" and t.text in ("{", ";", ":"):
            break
        if t.kind == "punct" and t.text == "[":
            j = match_group(toks, j, "[", "]") + 1
            continue
        j += 1
    if j >= end or toks[j].text == ";":
        return j + 1  # forward declaration
    if toks[j].text == ":":  # base clause
        while j < end and not (toks[j].kind == "punct" and toks[j].text in "{;"):
            if toks[j].kind == "punct" and toks[j].text == "<":
                j = skip_template_args(toks, j)
                continue
            j += 1
        if j >= end or toks[j].text == ";":
            return j + 1
    # toks[j] == '{'
    close = match_group(toks, j, "{", "}")
    ci = ClassInfo(name=name or "<anon>", path=fi.path, line=toks[i].line)
    fi.classes.append(ci)
    _scan_class_body(fi, ci, toks, j + 1, min(close, end))
    return _skip_to_semi(toks, close, end) if close < end else end


def _scan_class_body(fi: FileIndex, ci: ClassInfo, toks: list, i: int, end: int) -> None:
    while i < end:
        t = toks[i]
        if t.kind == "punct":
            i += 1
            continue
        if t.kind == "id" and t.text in ("public", "private", "protected"):
            i += 1  # ':' consumed by the punct branch above
            continue
        if t.kind == "id" and t.text == "template":
            if i + 1 < end and toks[i + 1].kind == "punct" and toks[i + 1].text == "<":
                i = skip_template_args(toks, i + 1)
            else:
                i += 1
            continue
        if t.kind == "id" and t.text in ("class", "struct", "union"):
            i = _scan_class(fi, toks, i, end)
            continue
        if t.kind == "id" and t.text == "enum":
            i = _skip_to_semi(toks, i, end)
            continue
        if t.kind == "id" and t.text in ("using", "typedef", "friend", "static_assert"):
            i = _skip_to_semi(toks, i, end)
            continue
        i = _scan_member_statement(fi, ci, toks, i, end)


def _scan_member_statement(fi: FileIndex, ci: ClassInfo, toks: list, i: int, end: int) -> int:
    """One class-body statement starting at toks[i]: a data-member
    declaration, a method declaration, or an inline method definition."""
    start = i
    is_static = False
    paren_open = None     # first top-level paren group (function signature?)
    paren_close = None
    eq_before_parens = False
    names: list[tuple[str, int]] = []     # candidate data-member names
    in_init = False
    in_ctor_init = False  # between a ctor's `:` and its body
    prev_id: Tok | None = None

    j = i
    while j < end:
        t = toks[j]
        if t.kind == "id" and t.text in ("static", "constexpr", "consteval", "inline") \
                and paren_open is None and not names and j == start:
            is_static = is_static or t.text == "static"
            # constexpr/static data members are compile-time or per-class
            # state, not per-instance checkpoint material
            j += 1
            start = j
            continue
        if t.kind == "punct":
            if t.text == "(":
                cl = match_group(toks, j, "(", ")")
                if paren_open is None and not in_init:
                    paren_open, paren_close = j, cl
                j = cl + 1
                continue
            if t.text == "[":
                j = match_group(toks, j, "[", "]") + 1
                continue
            if t.text == "<" and prev_id is not None and not in_init:
                j = skip_template_args(toks, j)
                continue
            if t.text == "=":
                if paren_open is None and not in_init and prev_id is not None \
                        and prev_id.kind == "id" and prev_id.text not in KEYWORDS:
                    names.append((prev_id.text, prev_id.line))
                in_init = True
                j += 1
                continue
            if t.text == ",":
                if not in_init and prev_id is not None and prev_id is toks[j - 1] \
                        and prev_id.kind == "id" and prev_id.text not in KEYWORDS:
                    names.append((prev_id.text, prev_id.line))
                in_init = False
                j += 1
                continue
            if t.text == ":" and paren_close is not None and not in_init:
                in_ctor_init = True
                j += 1
                continue
            if t.text == "{":
                # a `member{...}` entry of a ctor init list is not the body
                if in_ctor_init and j > 0 and toks[j - 1].kind == "id":
                    j = match_group(toks, j, "{", "}") + 1
                    continue
                # function body, or a brace initializer?
                if paren_open is not None and not eq_before_parens and not in_init:
                    # inline method definition
                    close = match_group(toks, j, "{", "}")
                    name = _name_before(toks, paren_open)
                    if name:
                        fn = Function(cls=ci.name, name=name, path=fi.path,
                                      line=toks[start].line,
                                      body=toks[j + 1:min(close, end)])
                        fi.functions.append(fn)
                        ci.methods[name] = fn
                        ci.declared.add(name)
                    j = close + 1
                    if j < end and toks[j].kind == "punct" and toks[j].text == ";":
                        j += 1
                    return j
                # brace initializer: record the name it initialises
                if not in_init and prev_id is not None and prev_id is toks[j - 1] \
                        and prev_id.kind == "id" and prev_id.text not in KEYWORDS:
                    names.append((prev_id.text, prev_id.line))
                    in_init = True
                j = match_group(toks, j, "{", "}") + 1
                continue
            if t.text == ";":
                # classify: method declaration vs data member
                if paren_open is not None:
                    name = _name_before(toks, paren_open)
                    if name:
                        ci.declared.add(name)
                elif not is_static:
                    if not in_init and prev_id is not None and prev_id is toks[j - 1] \
                            and prev_id.kind == "id" and prev_id.text not in KEYWORDS:
                        names.append((prev_id.text, prev_id.line))
                    for nm, ln in names:
                        ci.members.append(Member(nm, ln))
                return j + 1
            j += 1
            continue
        if t.kind == "id":
            prev_id = t
            if t.text == "operator":
                # consume operator token sequence up to '('
                j += 1
                while j < end and not (toks[j].kind == "punct" and toks[j].text in "(;"):
                    j += 1
                continue
            if paren_close is not None and t.text in ("const", "noexcept", "override",
                                                      "final", "mutable"):
                j += 1
                continue
        j += 1
    return end


def _name_before(toks: list, paren_idx: int) -> str | None:
    """The function name immediately preceding toks[paren_idx] == '('."""
    k = paren_idx - 1
    if k < 0:
        return None
    t = toks[k]
    if t.kind == "id" and t.text not in _CONTROL:
        return t.text
    return None


def _try_function(fi: FileIndex, toks: list, i: int, end: int, cls_hint) -> int | None:
    """At namespace scope, try to recognise `[type] [Qual::]name(args) [quals]
    { body }` starting at or after toks[i]. Returns the index past the body
    when a definition begins exactly at the statement starting at toks[i]
    (we advance statement-wise from _scan_scope), else None."""
    # find the statement end or the first '{' at depth 0
    j = i
    paren_open = paren_close = None
    saw_eq = False
    in_ctor_init = False
    while j < end:
        t = toks[j]
        if t.kind == "punct":
            if t.text == "(":
                cl = match_group(toks, j, "(", ")")
                if paren_open is None and not saw_eq:
                    paren_open, paren_close = j, cl
                j = cl + 1
                continue
            if t.text == "[":
                j = match_group(toks, j, "[", "]") + 1
                continue
            if t.text == "<" and j > i and toks[j - 1].kind == "id":
                j = skip_template_args(toks, j)
                continue
            if t.text == "=":
                saw_eq = True
            if t.text == ":" and paren_close is not None:
                in_ctor_init = True
            if t.text == ";":
                return j + 1  # a declaration or variable: consume it
            if t.text == "{":
                if in_ctor_init and j > 0 and toks[j - 1].kind == "id":
                    # `member{...}` entry of a ctor init list, not the body
                    j = match_group(toks, j, "{", "}") + 1
                    continue
                if paren_open is None or saw_eq:
                    # brace initializer at namespace scope (e.g. `int x{0};`)
                    j = match_group(toks, j, "{", "}") + 1
                    continue
                close = match_group(toks, j, "{", "}")
                name = _name_before(toks, paren_open)
                if name:
                    cls = _qualifier_before(toks, paren_open - 1)
                    fn = Function(cls=cls or "", name=name, path=fi.path,
                                  line=toks[i].line, body=toks[j + 1:min(close, end)])
                    fi.functions.append(fn)
                return close + 1
        j += 1
    return end


def _qualifier_before(toks: list, name_idx: int) -> str | None:
    """For `... Qual::name(`, with toks[name_idx] being the name token,
    return the last qualifier component (the class short name), skipping
    template arguments (`Foo<T>::name`)."""
    k = name_idx - 1
    if k < 0 or not (toks[k].kind == "punct" and toks[k].text == "::"):
        return None
    k -= 1
    if k >= 0 and toks[k].kind == "punct" and toks[k].text == ">":
        # skip back over the template argument list
        depth = 0
        while k >= 0:
            t = toks[k]
            if t.kind == "punct":
                if t.text == ">":
                    depth += 1
                elif t.text == "<":
                    depth -= 1
                    if depth == 0:
                        k -= 1
                        break
            k -= 1
    if k >= 0 and toks[k].kind == "id":
        return toks[k].text
    return None
