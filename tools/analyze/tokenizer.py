"""C++ tokenizer for the repo's static-analysis passes.

Not a full lexer — a faithful *scanner* of the lexical structure the passes
care about: it never mistakes the inside of a comment, a string literal, a
char literal, or a raw string for code, and it keeps comments around (with
positions) so suppression markers can be matched against the code lines they
annotate. Preprocessor directives are folded into single tokens (with
backslash-continuation handling) so `#include <vector>` never produces a
stray `<` that would desync brace/angle tracking.

Token kinds
-----------
id        identifier or keyword
num       numeric literal (incl. hex/float/digit separators)
punct     operator/punctuation; `::` is fused, everything else single-char
str       string literal ("..." incl. encoding prefixes, R"tag(...)tag")
char      character literal ('x', L'\\n', ...)
comment   // or /* */ comment, full text
pp        preprocessor logical line (continuations folded)

Every token records 1-based `line` and 0-based `col` of its first character.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

KEYWORDS = frozenset("""
alignas alignof and and_eq asm auto bitand bitor bool break case catch char
char8_t char16_t char32_t class co_await co_return co_yield compl concept
const consteval constexpr constinit const_cast continue decltype default
delete do double dynamic_cast else enum explicit export extern false float
for friend goto if inline int long mutable namespace new noexcept not not_eq
nullptr operator or or_eq private protected public register reinterpret_cast
requires return short signed sizeof static static_assert static_cast struct
switch template this thread_local throw true try typedef typeid typename
union unsigned using virtual void volatile wchar_t while xor xor_eq
final override
""".split())

_ID_START = re.compile(r"[A-Za-z_]")
_ID_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")
_NUM_RE = re.compile(
    r"(?:0[xX][0-9a-fA-F']*(?:\.[0-9a-fA-F']*)?(?:[pP][+\-]?[0-9]+)?"
    r"|0[bB][01']+"
    r"|[0-9][0-9']*(?:\.[0-9']*)?(?:[eE][+\-]?[0-9]+)?"
    r"|\.[0-9][0-9']*(?:[eE][+\-]?[0-9]+)?)"
    r"[fFlLuUzZ]*")
_RAW_PREFIX_RE = re.compile(r'(?:u8|[uUL])?R$')
_STR_PREFIX_RE = re.compile(r'(?:u8|[uUL])$')


@dataclass
class Tok:
    kind: str  # id | num | punct | str | char | comment | pp
    text: str
    line: int  # 1-based
    col: int   # 0-based

    def __repr__(self) -> str:  # compact for debugging
        return f"{self.kind}:{self.text!r}@{self.line}"


class TokenizeError(Exception):
    pass


def tokenize(text: str) -> list[Tok]:
    toks: list[Tok] = []
    i, n = 0, len(text)
    line, col = 1, 0
    at_line_start = True  # only whitespace seen since last newline

    def advance(k: int) -> None:
        nonlocal i, line, col
        for _ in range(k):
            if i < n and text[i] == "\n":
                line += 1
                col = 0
            else:
                col += 1
            i += 1

    while i < n:
        c = text[i]
        if c in " \t\r\v\f":
            advance(1)
            continue
        if c == "\n":
            advance(1)
            at_line_start = True
            continue

        start_line, start_col = line, col

        # preprocessor logical line (folds backslash continuations)
        if c == "#" and at_line_start:
            j = i
            while j < n:
                if text[j] == "\n":
                    if j > i and text[j - 1] == "\\":
                        j += 1
                        continue
                    break
                j += 1
            toks.append(Tok("pp", text[i:j], start_line, start_col))
            advance(j - i)
            at_line_start = True
            continue
        at_line_start = False

        # comments
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            toks.append(Tok("comment", text[i:j], start_line, start_col))
            advance(j - i)
            continue
        if c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j < 0 else j + 2
            toks.append(Tok("comment", text[i:j], start_line, start_col))
            advance(j - i)
            continue

        # identifiers (and string-literal encoding prefixes / raw strings)
        if _ID_START.match(c):
            m = _ID_RE.match(text, i)
            assert m
            word = m.group(0)
            nxt = text[m.end()] if m.end() < n else ""
            if nxt == '"' and _RAW_PREFIX_RE.match(word):
                # raw string literal: [prefix]R"delim( ... )delim"
                dstart = m.end() + 1
                dend = text.find("(", dstart)
                if dend < 0:
                    raise TokenizeError(f"line {line}: malformed raw string")
                delim = text[dstart:dend]
                closer = ")" + delim + '"'
                j = text.find(closer, dend + 1)
                if j < 0:
                    raise TokenizeError(f"line {line}: unterminated raw string")
                j += len(closer)
                toks.append(Tok("str", text[i:j], start_line, start_col))
                advance(j - i)
                continue
            if nxt == '"' and _STR_PREFIX_RE.match(word):
                j = _scan_quoted(text, m.end(), '"', line)
                toks.append(Tok("str", text[i:j], start_line, start_col))
                advance(j - i)
                continue
            if nxt == "'" and _STR_PREFIX_RE.match(word):
                j = _scan_quoted(text, m.end(), "'", line)
                toks.append(Tok("char", text[i:j], start_line, start_col))
                advance(j - i)
                continue
            toks.append(Tok("id", word, start_line, start_col))
            advance(len(word))
            continue

        # plain string / char literals
        if c == '"':
            j = _scan_quoted(text, i, '"', line)
            toks.append(Tok("str", text[i:j], start_line, start_col))
            advance(j - i)
            continue
        if c == "'":
            j = _scan_quoted(text, i, "'", line)
            toks.append(Tok("char", text[i:j], start_line, start_col))
            advance(j - i)
            continue

        # numbers
        if c.isdigit() or (c == "." and i + 1 < n and text[i + 1].isdigit()):
            m = _NUM_RE.match(text, i)
            assert m
            toks.append(Tok("num", m.group(0), start_line, start_col))
            advance(len(m.group(0)))
            continue

        # punctuation; fuse `::` (qualified names), everything else single-char
        if c == ":" and i + 1 < n and text[i + 1] == ":":
            toks.append(Tok("punct", "::", start_line, start_col))
            advance(2)
            continue
        toks.append(Tok("punct", c, start_line, start_col))
        advance(1)

    return toks


def _scan_quoted(text: str, start: int, quote: str, line: int) -> int:
    """End index (exclusive) of a quoted literal starting at text[start]==quote."""
    i = start + 1
    n = len(text)
    while i < n:
        c = text[i]
        if c == "\\":
            i += 2
            continue
        if c == quote:
            return i + 1
        if c == "\n":
            break  # unterminated on this line: tolerate (broken fixture input)
        i += 1
    return min(i, n)


def code_tokens(toks: list[Tok]) -> list[Tok]:
    """Tokens with comments and preprocessor lines dropped (string/char
    literals stay, as opaque single tokens)."""
    return [t for t in toks if t.kind not in ("comment", "pp")]


def code_only_lines(text: str) -> list[str]:
    """The source with comments, string and char literal *contents*, and
    preprocessor lines blanked out, preserving line/column layout.

    Regex-based line rules run against these lines so a `memcpy(` inside a
    comment or a "recv(src=" inside a diagnostic string can never match,
    while markers (which live in comments) are still matched against the raw
    lines. String/char literals are replaced by `""`/`' '` padded with
    spaces; everything keeps its original line and column.
    """
    lines = text.split("\n")
    out = [list(" " * len(l)) for l in lines]

    def put(tok: Tok, render: str) -> None:
        # render must not contain newlines and must fit the original span on
        # the first line; we only use it for short placeholders
        row = tok.line - 1
        for k, ch in enumerate(render):
            if tok.col + k < len(out[row]):
                out[row][tok.col + k] = ch

    for t in tokenize(text):
        if t.kind in ("comment", "pp"):
            continue
        if t.kind == "str":
            put(t, '""')
        elif t.kind == "char":
            put(t, "''")
        else:
            # copy token text (may span lines only for pp, excluded above)
            row, c0 = t.line - 1, t.col
            for k, ch in enumerate(t.text):
                if ch == "\n":
                    row += 1
                    c0 = -k - 1
                    continue
                if row < len(out) and c0 + k < len(out[row]):
                    out[row][c0 + k] = ch
    return ["".join(row) for row in out]
