#include "scenario/runner.hpp"

#include <cmath>
#include <cstdio>

#include "dpd/geometry.hpp"
#include "mesh/quadmesh.hpp"
#include "resilience/blob.hpp"
#include "resilience/snapshot.hpp"

namespace scenario {

namespace {

std::string mesh_signature(const MeshSpec& m) {
  char buf[160];
  std::snprintf(buf, sizeof buf, "quad|L=%.17g|H=%.17g|nx=%lld|ny=%lld|P=%lld", m.length,
                m.height, static_cast<long long>(m.nx), static_cast<long long>(m.ny),
                static_cast<long long>(m.order));
  return buf;
}

std::string mesh_signature(const Mesh3dSpec& m) {
  char buf[200];
  std::snprintf(buf, sizeof buf, "hex|Lx=%.17g|Ly=%.17g|Lz=%.17g|nx=%lld|ny=%lld|nz=%lld|P=%lld",
                m.lx, m.ly, m.lz, static_cast<long long>(m.nx), static_cast<long long>(m.ny),
                static_cast<long long>(m.nz), static_cast<long long>(m.order));
  return buf;
}

}  // namespace

std::shared_ptr<const sem::Discretization> SharedTables::quad(const MeshSpec& m) {
  const std::string key = mesh_signature(m);
  for (const auto& [k, d] : quad_)
    if (k == key) {
      ++hits_;
      return d;
    }
  ++misses_;
  auto mesh = mesh::QuadMesh::channel(m.length, m.height, static_cast<int>(m.nx),
                                      static_cast<int>(m.ny));
  auto d = std::make_shared<const sem::Discretization>(mesh, static_cast<int>(m.order));
  quad_.emplace_back(key, d);
  return d;
}

std::shared_ptr<const sem::Discretization3D> SharedTables::hex(const Mesh3dSpec& m) {
  const std::string key = mesh_signature(m);
  for (const auto& [k, d] : hex_)
    if (k == key) {
      ++hits_;
      return d;
    }
  ++misses_;
  auto d = std::make_shared<const sem::Discretization3D>(
      m.lx, m.ly, m.lz, static_cast<int>(m.nx), static_cast<int>(m.ny), static_cast<int>(m.nz),
      static_cast<int>(m.order));
  hex_.emplace_back(key, d);
  return d;
}

Runner::Runner(Scenario sc, RunnerOptions opts, SharedTables* tables)
    : sc_(std::move(sc)), opts_(std::move(opts)), tables_(tables) {
  validate_scenario(sc_);
}

Runner::~Runner() = default;

std::int64_t Runner::intervals() const {
  return opts_.intervals >= 0 ? opts_.intervals : sc_.time.intervals;
}

std::int64_t Runner::checkpoint_every() const {
  return opts_.checkpoint_every >= 0 ? opts_.checkpoint_every : sc_.checkpoint.every;
}

std::string Runner::checkpoint_dir() const {
  return opts_.checkpoint_dir.empty() ? sc_.checkpoint.dir : opts_.checkpoint_dir;
}

std::string Runner::warm_signature() const {
  if (sc_.kind == "net1d") return "net1d";
  char buf[120];
  std::snprintf(buf, sizeof buf, "|nu=%.17g|dt=%.17g|to=%lld", sc_.sem.nu, sc_.sem.dt,
                static_cast<long long>(sc_.sem.time_order));
  return (sc_.kind == "cdc" ? mesh_signature(sc_.mesh) : mesh_signature(sc_.mesh3d)) + buf;
}

void Runner::set_warm_start(WarmMode mode, std::vector<std::uint8_t> blob) {
  warm_mode_ = mode;
  warm_blob_ = std::move(blob);
}

void Runner::apply_warm_start() {
  warm_applied_ = false;
  if (warm_mode_ == WarmMode::Off || warm_blob_.empty()) return;
  if (!ns2_ && !ns3_) return;
  resilience::BlobReader r(warm_blob_);
  if (r.str() != warm_signature()) return;  // incompatible donor: ignore
  const auto full = r.vec<std::uint8_t>();
  const auto proj = r.vec<std::uint8_t>();
  r.expect_end();
  resilience::BlobReader br(warm_mode_ == WarmMode::State ? full : proj);
  if (warm_mode_ == WarmMode::State) {
    if (ns2_)
      ns2_->load_state(br);
    else
      ns3_->load_state(br);
  } else {
    if (ns2_)
      ns2_->load_warmstart(br);
    else
      ns3_->load_warmstart(br);
  }
  br.expect_end();
  warm_applied_ = true;
}

std::vector<std::uint8_t> Runner::warm_state() const {
  if (!ns2_ && !ns3_) return {};
  resilience::BlobWriter w;
  w.str(warm_signature());
  resilience::BlobWriter full, proj;
  if (ns2_) {
    ns2_->save_state(full);
    ns2_->save_warmstart(proj);
  } else {
    ns3_->save_state(full);
    ns3_->save_warmstart(proj);
  }
  w.vec(full.data());
  w.vec(proj.data());
  return w.take();
}

std::size_t Runner::develop() {
  const double tol = sc_.time.develop_tol;
  std::size_t cg = 0;
  la::Vector u_old, v_old, w_old;
  for (std::int64_t s = 0; s < sc_.time.develop_steps; ++s) {
    if (tol > 0.0) {
      if (ns2_) {
        u_old = ns2_->u();
        v_old = ns2_->v();
      } else {
        u_old = ns3_->u();
        v_old = ns3_->v();
        w_old = ns3_->w();
      }
    }
    cg += ns2_ ? ns2_->step() : ns3_->step();
    ++develop_steps_;
    if (tol > 0.0) {
      double delta = 0.0;
      const la::Vector& u = ns2_ ? ns2_->u() : ns3_->u();
      const la::Vector& v = ns2_ ? ns2_->v() : ns3_->v();
      for (std::size_t g = 0; g < u.size(); ++g) {
        delta = std::max(delta, std::fabs(u[g] - u_old[g]));
        delta = std::max(delta, std::fabs(v[g] - v_old[g]));
      }
      if (ns3_) {
        const la::Vector& w = ns3_->w();
        for (std::size_t g = 0; g < w.size(); ++g)
          delta = std::max(delta, std::fabs(w[g] - w_old[g]));
      }
      if (delta < tol) break;
    }
  }
  return cg;
}

std::uint32_t Runner::compute_digest() const {
  resilience::BlobWriter w;
  if (net_) {
    net_->save_state(w);
    return resilience::crc32(w.data());
  }
  if (ns2_)
    ns2_->save_state(w);
  else
    ns3_->save_state(w);
  dpd_->save_state(w);
  bc_->save_state(w);
  if (cdc_)
    cdc_->save_state(w);
  else
    cdc3_->save_state(w);
  sampler_->save_state(w);
  return resilience::crc32(w.data());
}

void Runner::maybe_checkpoint(std::int64_t interval, double time) {
  const std::int64_t every = checkpoint_every();
  if (every > 0 && (interval + 1) % every == 0 && interval + 1 < intervals()) {
    const std::string dir = checkpoint_dir() + "/step-" + std::to_string(interval + 1);
    const std::size_t bytes = coord_->save(dir, static_cast<std::uint64_t>(interval + 1), time);
    if (opts_.verbose) std::printf("checkpoint: %s (%zu bytes)\n", dir.c_str(), bytes);
  }
}

RunResult Runner::run() {
  develop_steps_ = 0;
  return sc_.kind == "net1d" ? run_net1d() : run_coupled();
}

RunResult Runner::run_coupled() {
  const bool is3d = sc_.kind == "cdc3d";
  const bool restarting = !opts_.restart_dir.empty();
  RunResult res;

  // --- 1. the continuum solver -- same construction order, parameters and
  // BC expression trees as the hand-written examples (digest equality).
  if (is3d) {
    disc3_ = tables_ ? tables_->hex(sc_.mesh3d)
                     : std::make_shared<const sem::Discretization3D>(
                           sc_.mesh3d.lx, sc_.mesh3d.ly, sc_.mesh3d.lz,
                           static_cast<int>(sc_.mesh3d.nx), static_cast<int>(sc_.mesh3d.ny),
                           static_cast<int>(sc_.mesh3d.nz), static_cast<int>(sc_.mesh3d.order));
    sem::NavierStokes3D::Params prm;
    prm.nu = sc_.sem.nu;
    prm.dt = sc_.sem.dt;
    prm.time_order = static_cast<int>(sc_.sem.time_order);
    prm.pressure_dirichlet_faces = {sem::HexFace::X1};
    ns3_ = std::make_unique<sem::NavierStokes3D>(*disc3_, prm);
    const double H = sc_.mesh3d.lz;
    const double Umax = sc_.sem.inlet_umax;
    auto prof = [H, Umax](double, double, double z, double) {
      return 4.0 * Umax * z * (H - z) / (H * H);
    };
    auto zero = [](double, double, double, double) { return 0.0; };
    ns3_->set_velocity_bc(sem::HexFace::X0, prof, zero, zero);
    ns3_->set_velocity_bc(sem::HexFace::Y0, prof, zero, zero);
    ns3_->set_velocity_bc(sem::HexFace::Y1, prof, zero, zero);
    ns3_->set_natural_bc(sem::HexFace::X1);
  } else {
    if (tables_) {
      disc_ = tables_->quad(sc_.mesh);
    } else {
      auto mesh = mesh::QuadMesh::channel(sc_.mesh.length, sc_.mesh.height,
                                          static_cast<int>(sc_.mesh.nx),
                                          static_cast<int>(sc_.mesh.ny));
      disc_ = std::make_shared<const sem::Discretization>(mesh, static_cast<int>(sc_.mesh.order));
    }
    sem::NavierStokes2D::Params nsp;
    nsp.nu = sc_.sem.nu;
    nsp.dt = sc_.sem.dt;
    nsp.time_order = static_cast<int>(sc_.sem.time_order);
    ns2_ = std::make_unique<sem::NavierStokes2D>(*disc_, nsp);
    const double H = sc_.mesh.height;
    const double Umax = sc_.sem.inlet_umax;
    ns2_->set_velocity_bc(
        mesh::kInlet,
        [H, Umax](double, double y, double) { return 4.0 * Umax * y * (H - y) / (H * H); },
        [](double, double, double) { return 0.0; });
    ns2_->set_natural_bc(mesh::kOutlet);
  }
  if (!restarting) {
    apply_warm_start();
    if (opts_.verbose) {
      if (is3d)
        std::printf("continuum: %zu hexahedral SEM nodes, developing...\n", sem_nodes());
      else
        std::printf("continuum: %zu SEM nodes, developing the flow...\n", sem_nodes());
    }
    res.cg_iters += develop();
    res.develop_steps = develop_steps_;
  }

  // --- 2. the atomistic solver ---
  dpd::DpdParams dp;
  dp.box = {sc_.dpd.box[0], sc_.dpd.box[1], sc_.dpd.box[2]};
  dp.periodic = sc_.dpd.periodic;
  dp.rc = sc_.dpd.rc;
  dp.kBT = sc_.dpd.kBT;
  dp.dt = sc_.dpd.dt;
  std::shared_ptr<dpd::Geometry> geom;
  if (sc_.dpd.geometry.kind == "channel_z")
    geom = std::make_shared<dpd::ChannelZ>(sc_.dpd.geometry.height);
  else
    geom = std::make_shared<dpd::NoWalls>();
  dpd_ = std::make_unique<dpd::DpdSystem>(dp, geom);
  if (!restarting) {
    dpd_->fill(sc_.dpd.density, dpd::kSolvent, static_cast<unsigned>(sc_.dpd.seed),
               sc_.dpd.fill_margin);
    if (opts_.verbose) std::printf("atomistic: %zu DPD particles\n\n", dpd_->size());
  }

  dpd::FlowBcParams fp;
  fp.axis = static_cast<int>(sc_.flow_bc.axis);
  fp.buffer_len = sc_.flow_bc.buffer_len;
  fp.density = sc_.flow_bc.density;
  fp.relax = sc_.flow_bc.relax;
  fp.seed = static_cast<unsigned>(sc_.flow_bc.seed);
  bc_ = std::make_unique<dpd::FlowBc>(fp);

  // --- 3. glue: Eq. (1) scaling + Fig. 5 time progression ---
  scales_.L_ns = sc_.coupling.scales.L_ns;
  scales_.L_dpd = sc_.coupling.scales.L_dpd;
  scales_.nu_ns = sc_.coupling.scales.nu_ns;
  scales_.nu_dpd = sc_.coupling.scales.nu_dpd;
  coupling::TimeProgression tp;
  tp.dt_ns = sc_.sem.dt;
  tp.exchange_every_ns = static_cast<int>(sc_.coupling.exchange_every_ns);
  tp.dpd_per_ns = static_cast<int>(sc_.coupling.dpd_per_ns);
  const auto& rg = sc_.coupling.region;
  if (is3d) {
    coupling::EmbeddedBox box{rg[0], rg[1], rg[2], rg[3], rg[4], rg[5]};
    cdc3_ = std::make_unique<coupling::ContinuumDpdCoupler3D>(*ns3_, *dpd_, *bc_, box, scales_,
                                                              tp);
  } else {
    cdc_ = std::make_unique<coupling::ContinuumDpdCoupler>(
        *ns2_, *dpd_, *bc_, coupling::EmbeddedRegion{rg[0], rg[1], rg[2], rg[3]}, scales_, tp);
  }

  dpd::SamplerParams sp;
  sp.nx = static_cast<int>(sc_.sampler.nx);
  sp.ny = static_cast<int>(sc_.sampler.ny);
  sp.nz = static_cast<int>(sc_.sampler.nz);
  sampler_ = std::make_unique<dpd::FieldSampler>(*dpd_, sp);

  coord_ = std::make_unique<resilience::CheckpointCoordinator>();
  if (is3d)
    coord_->add("ns3d", *ns3_);
  else
    coord_->add("ns2d", *ns2_);
  coord_->add("dpd", *dpd_);
  coord_->add("flowbc", *bc_);
  if (is3d)
    coord_->add("cdc3d", *cdc3_);
  else
    coord_->add("cdc", *cdc_);
  coord_->add("sampler", *sampler_);

  std::int64_t start_interval = 0;
  if (restarting) {
    const auto info = coord_->load(opts_.restart_dir);  // throws SnapshotError on damage
    start_interval = static_cast<std::int64_t>(info.step);
    res.restarted = true;
    res.start_interval = static_cast<int>(start_interval);
    res.t_ns = ns2_ ? ns2_->time() : ns3_->time();
    if (opts_.verbose)
      std::printf("restarted from %s: interval %d, t_ns = %.4f, %zu DPD particles\n\n",
                  opts_.restart_dir.c_str(), res.start_interval, res.t_ns, dpd_->size());
  }

  const std::int64_t n = intervals();
  for (std::int64_t interval = start_interval; interval < n; ++interval) {
    if (opts_.fault_plan)
      opts_.fault_plan->check(opts_.fault_id, static_cast<std::uint64_t>(interval));
    auto cb = [&, interval] {
      if (interval >= sc_.time.sample_from) sampler_->accumulate(*dpd_);
    };
    res.cg_iters += is3d ? cdc3_->advance_interval(cb) : cdc_->advance_interval(cb);
    ++res.intervals_run;
    maybe_checkpoint(interval, ns2_ ? ns2_->time() : ns3_->time());
  }

  res.develop_steps = develop_steps_;
  res.digest = compute_digest();
  return res;
}

RunResult Runner::run_net1d() {
  const bool restarting = !opts_.restart_dir.empty();
  RunResult res;

  net_ = std::make_unique<nektar1d::ArterialNetwork>();
  for (const auto& vs : sc_.network.vessels) {
    nektar1d::VesselParams p;
    p.length = vs.length;
    p.A0 = vs.A0;
    p.beta = vs.beta;
    p.rho = vs.rho;
    p.Kr = vs.Kr;
    p.elements = static_cast<std::size_t>(vs.elements);
    p.order = static_cast<int>(vs.order);
    net_->add_vessel(p);
  }
  for (const auto& in : sc_.network.inlets) {
    const double q_mean = in.q_mean, q_amp = in.q_amp, freq = in.freq;
    net_->set_inlet_flow(static_cast<int>(in.vessel), [q_mean, q_amp, freq](double t) {
      return q_mean + q_amp * std::sin(2.0 * M_PI * freq * t);
    });
  }
  for (const auto& out : sc_.network.outlets)
    net_->set_outlet_rcr(static_cast<int>(out.vessel), out.rp, out.rd, out.c);
  for (const auto& j : sc_.network.junctions) {
    std::vector<nektar1d::Attachment> atts;
    for (const auto& a : j)
      atts.push_back({static_cast<int>(a.vessel),
                      a.end == "left" ? nektar1d::End::Left : nektar1d::End::Right});
    net_->add_junction(std::move(atts));
  }
  if (opts_.verbose)
    std::printf("1D network: %zu vessels, %zu junctions\n\n", net_->num_vessels(),
                sc_.network.junctions.size());

  coord_ = std::make_unique<resilience::CheckpointCoordinator>();
  coord_->add("net1d", *net_);

  std::int64_t start_interval = 0;
  if (restarting) {
    const auto info = coord_->load(opts_.restart_dir);
    start_interval = static_cast<std::int64_t>(info.step);
    res.restarted = true;
    res.start_interval = static_cast<int>(start_interval);
    res.t_ns = net_->time();
    if (opts_.verbose)
      std::printf("restarted from %s: interval %d, t = %.4f\n\n", opts_.restart_dir.c_str(),
                  res.start_interval, res.t_ns);
  }

  const std::int64_t n = intervals();
  for (std::int64_t interval = start_interval; interval < n; ++interval) {
    if (opts_.fault_plan)
      opts_.fault_plan->check(opts_.fault_id, static_cast<std::uint64_t>(interval));
    const double dt =
        sc_.network.dt > 0.0 ? sc_.network.dt : net_->suggested_dt(sc_.network.cfl);
    for (std::int64_t k = 0; k < sc_.network.steps_per_interval; ++k) net_->step(dt);
    ++res.intervals_run;
    maybe_checkpoint(interval, net_->time());
  }

  res.digest = compute_digest();
  return res;
}

std::size_t Runner::sem_nodes() const {
  if (disc_) return disc_->num_nodes();
  if (disc3_) return disc3_->num_nodes();
  return 0;
}

std::size_t Runner::exchanges() const {
  if (cdc_) return cdc_->exchanges();
  if (cdc3_) return cdc3_->exchanges();
  return 0;
}

double Runner::eval_u(double x, double y) const { return disc_->evaluate(ns2_->u(), x, y); }

double Runner::eval_u(double x, double y, double z) const {
  return disc3_->evaluate(ns3_->u(), x, y, z);
}

}  // namespace scenario
