#pragma once
// A small self-contained JSON value type + strict parser + canonical
// serializer. The repo has written JSON since PR 1 (telemetry's streaming
// JsonWriter); the scenario service also needs to *read* it. This is the read
// side: a DOM with insertion-ordered object members, exact parse errors
// (line/column), and a deterministic dump whose output is a fixed point of
// parse+dump — serialize(parse(serialize(x))) == serialize(x) bitwise, the
// property the scenario round-trip tests pin.
//
// Deliberately minimal: no comments, no trailing commas, no NaN/Inf (dump
// throws; JSON has no spelling for them), doubles only (integers survive
// exactly up to 2^53, far beyond any scenario knob).

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace scenario {

/// Parse/serialize/schema failure. Parse errors carry "line L, col C";
/// schema errors carry a JSON path like "$.sem.nu".
struct JsonError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

class Json {
 public:
  enum class Kind : std::uint8_t { Null, Bool, Number, String, Array, Object };
  using Member = std::pair<std::string, Json>;

  Json() = default;  ///< null
  Json(bool b) : kind_(Kind::Bool), bool_(b) {}
  Json(double v) : kind_(Kind::Number), num_(v) {}
  Json(int v) : Json(static_cast<double>(v)) {}
  Json(std::int64_t v) : Json(static_cast<double>(v)) {}
  Json(std::size_t v) : Json(static_cast<double>(v)) {}
  Json(const char* s) : kind_(Kind::String), str_(s) {}
  Json(std::string s) : kind_(Kind::String), str_(std::move(s)) {}

  static Json array() {
    Json j;
    j.kind_ = Kind::Array;
    return j;
  }
  static Json object() {
    Json j;
    j.kind_ = Kind::Object;
    return j;
  }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::Null; }
  bool is_bool() const { return kind_ == Kind::Bool; }
  bool is_number() const { return kind_ == Kind::Number; }
  bool is_string() const { return kind_ == Kind::String; }
  bool is_array() const { return kind_ == Kind::Array; }
  bool is_object() const { return kind_ == Kind::Object; }

  /// Human-readable kind name ("number", "object", ...).
  static const char* kind_name(Kind k);

  // Typed accessors; throw JsonError naming the actual kind on mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const std::vector<Json>& elements() const;
  std::vector<Json>& elements();
  /// Object members in insertion order.
  const std::vector<Member>& members() const;
  std::vector<Member>& members();

  /// Object lookup; nullptr when absent (or not an object).
  const Json* find(std::string_view key) const;
  Json* find(std::string_view key);

  /// Insert or overwrite an object member; returns the stored value.
  Json& set(std::string key, Json v);
  /// Append an array element.
  void push(Json v);

  bool operator==(const Json& o) const;
  bool operator!=(const Json& o) const { return !(*this == o); }

  /// Strict parse of a complete JSON document (trailing garbage is an
  /// error). Duplicate object keys are an error — a scenario with two
  /// "nu" entries is a typo, not a choice.
  static Json parse(std::string_view text);

  /// Canonical pretty form: 2-space indent, objects one member per line,
  /// arrays of scalars on one line, numbers in telemetry's shortest
  /// round-trip format. Deterministic, and a fixed point of parse+dump.
  std::string dump() const;

 private:
  void dump_to(std::string& out, int depth) const;

  Kind kind_ = Kind::Null;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<Json> arr_;
  std::vector<Member> obj_;
};

/// Append one JSON number in the canonical format shared with telemetry's
/// JsonWriter: integral values below 1e15 print as integers, everything else
/// as %.17g. Throws JsonError on non-finite values.
void append_json_number(std::string& out, double v);

/// Walk a dotted object path ("coupling.scales.nu_dpd") from `root`;
/// nullptr when any segment is missing or a non-object is traversed.
const Json* find_path(const Json& root, std::string_view dotted);
/// Mutable variant that throws JsonError (naming the path) when the path
/// does not already exist — sweep overrides must hit real schema knobs,
/// never silently create new ones.
Json& require_path(Json& root, std::string_view dotted);

}  // namespace scenario
