#include "scenario/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

#include "io/json_escape.hpp"

namespace scenario {

const char* Json::kind_name(Kind k) {
  switch (k) {
    case Kind::Null: return "null";
    case Kind::Bool: return "bool";
    case Kind::Number: return "number";
    case Kind::String: return "string";
    case Kind::Array: return "array";
    case Kind::Object: return "object";
  }
  return "?";
}

namespace {
[[noreturn]] void kind_mismatch(const char* want, Json::Kind got) {
  throw JsonError(std::string("expected ") + want + ", got " + Json::kind_name(got));
}
}  // namespace

bool Json::as_bool() const {
  if (kind_ != Kind::Bool) kind_mismatch("bool", kind_);
  return bool_;
}

double Json::as_number() const {
  if (kind_ != Kind::Number) kind_mismatch("number", kind_);
  return num_;
}

const std::string& Json::as_string() const {
  if (kind_ != Kind::String) kind_mismatch("string", kind_);
  return str_;
}

const std::vector<Json>& Json::elements() const {
  if (kind_ != Kind::Array) kind_mismatch("array", kind_);
  return arr_;
}

std::vector<Json>& Json::elements() {
  if (kind_ != Kind::Array) kind_mismatch("array", kind_);
  return arr_;
}

const std::vector<Json::Member>& Json::members() const {
  if (kind_ != Kind::Object) kind_mismatch("object", kind_);
  return obj_;
}

std::vector<Json::Member>& Json::members() {
  if (kind_ != Kind::Object) kind_mismatch("object", kind_);
  return obj_;
}

const Json* Json::find(std::string_view key) const {
  if (kind_ != Kind::Object) return nullptr;
  for (const auto& [k, v] : obj_)
    if (k == key) return &v;
  return nullptr;
}

Json* Json::find(std::string_view key) {
  return const_cast<Json*>(static_cast<const Json*>(this)->find(key));
}

Json& Json::set(std::string key, Json v) {
  if (kind_ == Kind::Null) kind_ = Kind::Object;
  if (kind_ != Kind::Object) kind_mismatch("object", kind_);
  for (auto& [k, old] : obj_)
    if (k == key) {
      old = std::move(v);
      return old;
    }
  obj_.emplace_back(std::move(key), std::move(v));
  return obj_.back().second;
}

void Json::push(Json v) {
  if (kind_ == Kind::Null) kind_ = Kind::Array;
  if (kind_ != Kind::Array) kind_mismatch("array", kind_);
  arr_.push_back(std::move(v));
}

bool Json::operator==(const Json& o) const {
  if (kind_ != o.kind_) return false;
  switch (kind_) {
    case Kind::Null: return true;
    case Kind::Bool: return bool_ == o.bool_;
    case Kind::Number: return num_ == o.num_;
    case Kind::String: return str_ == o.str_;
    case Kind::Array: return arr_ == o.arr_;
    case Kind::Object: return obj_ == o.obj_;
  }
  return false;
}

// ---- parser ----------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json v = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON document");
    return v;
  }

 private:
  static constexpr int kMaxDepth = 128;

  [[noreturn]] void fail(const std::string& what) const {
    std::size_t line = 1, col = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    throw JsonError("line " + std::to_string(line) + ", col " + std::to_string(col) + ": " +
                    what);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Json parse_value(int depth) {
    if (depth > kMaxDepth) fail("nesting depth exceeds " + std::to_string(kMaxDepth));
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': return Json(parse_string());
      case 't':
        if (consume_literal("true")) return Json(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return Json(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return Json();
        fail("invalid literal");
      default: return parse_number();
    }
  }

  Json parse_object(int depth) {
    ++pos_;  // '{'
    Json obj = Json::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      skip_ws();
      if (peek() != '"') fail("expected '\"' starting an object key");
      std::string key = parse_string();
      if (obj.find(key)) fail("duplicate object key \"" + key + "\"");
      skip_ws();
      if (peek() != ':') fail("expected ':' after object key \"" + key + "\"");
      ++pos_;
      obj.set(std::move(key), parse_value(depth + 1));
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return obj;
      }
      fail("expected ',' or '}' in object");
    }
  }

  Json parse_array(int depth) {
    ++pos_;  // '['
    Json arr = Json::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      arr.push(parse_value(depth + 1));
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return arr;
      }
      fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    ++pos_;  // '"'
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20)
        fail("raw control character in string (use \\u escapes)");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': append_utf16_escape(out); break;
        default: fail(std::string("invalid escape \\") + e);
      }
    }
  }

  unsigned parse_hex4() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      v <<= 4;
      if (c >= '0' && c <= '9')
        v += static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f')
        v += static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F')
        v += static_cast<unsigned>(c - 'A' + 10);
      else
        fail("invalid hex digit in \\u escape");
    }
    return v;
  }

  void append_utf16_escape(std::string& out) {
    unsigned cp = parse_hex4();
    if (cp >= 0xD800 && cp <= 0xDBFF) {  // high surrogate: need a low one
      if (!consume_literal("\\u")) fail("unpaired UTF-16 high surrogate");
      const unsigned lo = parse_hex4();
      if (lo < 0xDC00 || lo > 0xDFFF) fail("invalid UTF-16 low surrogate");
      cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
    } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
      fail("unpaired UTF-16 low surrogate");
    }
    // UTF-8 encode
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    auto digits = [&] {
      std::size_t n = 0;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
        ++n;
      }
      return n;
    };
    if (!digits()) fail("invalid number");
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (!digits()) fail("invalid number: digits required after '.'");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      if (!digits()) fail("invalid number: digits required in exponent");
    }
    const std::string tok(text_.substr(start, pos_ - start));
    return Json(std::strtod(tok.c_str(), nullptr));
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(std::string_view text) {
  return Parser(text).parse_document();
}

// ---- serializer ------------------------------------------------------------

void append_json_number(std::string& out, double v) {
  if (!std::isfinite(v)) throw JsonError("cannot serialize non-finite number");
  char buf[40];
  if (v == static_cast<double>(static_cast<std::int64_t>(v)) && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof buf, "%.*g", std::numeric_limits<double>::max_digits10, v);
  }
  out += buf;
}

namespace {
bool all_scalars(const std::vector<Json>& elems) {
  for (const auto& e : elems)
    if (e.is_array() || e.is_object()) return false;
  return true;
}
}  // namespace

void Json::dump_to(std::string& out, int depth) const {
  const auto indent = [&](int d) { out.append(static_cast<std::size_t>(d) * 2, ' '); };
  switch (kind_) {
    case Kind::Null: out += "null"; return;
    case Kind::Bool: out += bool_ ? "true" : "false"; return;
    case Kind::Number: append_json_number(out, num_); return;
    case Kind::String: out += io::json_string_literal(str_); return;
    case Kind::Array:
      if (arr_.empty()) {
        out += "[]";
        return;
      }
      if (all_scalars(arr_)) {
        out += '[';
        for (std::size_t i = 0; i < arr_.size(); ++i) {
          if (i) out += ", ";
          arr_[i].dump_to(out, depth);
        }
        out += ']';
        return;
      }
      out += "[\n";
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        indent(depth + 1);
        arr_[i].dump_to(out, depth + 1);
        if (i + 1 < arr_.size()) out += ',';
        out += '\n';
      }
      indent(depth);
      out += ']';
      return;
    case Kind::Object:
      if (obj_.empty()) {
        out += "{}";
        return;
      }
      out += "{\n";
      for (std::size_t i = 0; i < obj_.size(); ++i) {
        indent(depth + 1);
        out += io::json_string_literal(obj_[i].first);
        out += ": ";
        obj_[i].second.dump_to(out, depth + 1);
        if (i + 1 < obj_.size()) out += ',';
        out += '\n';
      }
      indent(depth);
      out += '}';
      return;
  }
}

std::string Json::dump() const {
  std::string out;
  dump_to(out, 0);
  out += '\n';
  return out;
}

// ---- path helpers ----------------------------------------------------------

const Json* find_path(const Json& root, std::string_view dotted) {
  const Json* cur = &root;
  while (!dotted.empty()) {
    const std::size_t dot = dotted.find('.');
    const std::string_view seg = dotted.substr(0, dot);
    cur = cur->find(seg);
    if (!cur) return nullptr;
    if (dot == std::string_view::npos) break;
    dotted.remove_prefix(dot + 1);
  }
  return cur;
}

Json& require_path(Json& root, std::string_view dotted) {
  Json* cur = &root;
  std::string_view rest = dotted;
  while (true) {
    const std::size_t dot = rest.find('.');
    const std::string_view seg = rest.substr(0, dot);
    Json* next = cur->find(seg);
    if (!next)
      throw JsonError("path \"" + std::string(dotted) + "\": no member \"" + std::string(seg) +
                      "\"");
    cur = next;
    if (dot == std::string_view::npos) return *cur;
    rest.remove_prefix(dot + 1);
  }
}

}  // namespace scenario
