#include "scenario/schema.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

namespace scenario {

namespace {

[[noreturn]] void fail(const std::string& path, const std::string& what) {
  throw JsonError(path + ": " + what);
}

double as_num(const Json& v, const std::string& path) {
  if (!v.is_number()) fail(path, std::string("expected number, got ") + Json::kind_name(v.kind()));
  return v.as_number();
}

std::int64_t as_int(const Json& v, const std::string& path) {
  const double d = as_num(v, path);
  const auto i = static_cast<std::int64_t>(d);
  if (static_cast<double>(i) != d) fail(path, "expected integer, got " + std::to_string(d));
  return i;
}

std::string as_str(const Json& v, const std::string& path) {
  if (!v.is_string()) fail(path, std::string("expected string, got ") + Json::kind_name(v.kind()));
  return v.as_string();
}

bool as_boolean(const Json& v, const std::string& path) {
  if (!v.is_bool()) fail(path, std::string("expected bool, got ") + Json::kind_name(v.kind()));
  return v.as_bool();
}

/// Strict object cursor: every key must be consumed by req_* / opt_*;
/// finish() reports leftovers as unknown-key errors with the full path.
class Fields {
 public:
  Fields(const Json& obj, std::string path) : obj_(&obj), path_(std::move(path)) {
    if (!obj.is_object())
      fail(path_, std::string("expected object, got ") + Json::kind_name(obj.kind()));
  }

  std::string sub(const char* key) const { return path_ + "." + key; }

  const Json& req(const char* key) {
    mark(key);
    const Json* v = obj_->find(key);
    if (!v) fail(path_, std::string("missing required key \"") + key + "\"");
    return *v;
  }

  const Json* opt(const char* key) {
    mark(key);
    return obj_->find(key);
  }

  double req_num(const char* key) { return as_num(req(key), sub(key)); }
  std::int64_t req_int(const char* key) { return as_int(req(key), sub(key)); }
  std::string req_str(const char* key) { return as_str(req(key), sub(key)); }

  double opt_num(const char* key, double def) {
    const Json* v = opt(key);
    return v ? as_num(*v, sub(key)) : def;
  }
  std::int64_t opt_int(const char* key, std::int64_t def) {
    const Json* v = opt(key);
    return v ? as_int(*v, sub(key)) : def;
  }
  std::string opt_str(const char* key, std::string def) {
    const Json* v = opt(key);
    return v ? as_str(*v, sub(key)) : def;
  }

  std::vector<double> opt_num_list(const char* key, std::size_t n, std::vector<double> def) {
    const Json* v = opt(key);
    if (!v) return def;
    const std::string p = sub(key);
    if (!v->is_array())
      fail(p, std::string("expected array, got ") + Json::kind_name(v->kind()));
    const auto& e = v->elements();
    if (e.size() != n)
      fail(p, "expected " + std::to_string(n) + " numbers, got " + std::to_string(e.size()));
    std::vector<double> out(n);
    for (std::size_t i = 0; i < n; ++i) out[i] = as_num(e[i], p + "[" + std::to_string(i) + "]");
    return out;
  }

  std::array<bool, 3> opt_bool3(const char* key, std::array<bool, 3> def) {
    const Json* v = opt(key);
    if (!v) return def;
    const std::string p = sub(key);
    if (!v->is_array() || v->elements().size() != 3) fail(p, "expected array of 3 bools");
    std::array<bool, 3> out{};
    for (std::size_t i = 0; i < 3; ++i)
      out[i] = as_boolean(v->elements()[i], p + "[" + std::to_string(i) + "]");
    return out;
  }

  /// Unknown keys are hard errors: list them plus the known set, so a typo'd
  /// knob points straight at its correct spelling.
  void finish() const {
    for (const auto& [k, v] : obj_->members()) {
      if (std::find(seen_.begin(), seen_.end(), k) != seen_.end()) continue;
      std::string known;
      for (const auto& s : seen_) {
        if (!known.empty()) known += ", ";
        known += s;
      }
      fail(path_ + "." + k, "unknown key (known keys: " + known + ")");
    }
  }

 private:
  void mark(const char* key) {
    if (std::find(seen_.begin(), seen_.end(), key) == seen_.end()) seen_.emplace_back(key);
  }

  const Json* obj_;
  std::string path_;
  std::vector<std::string> seen_;
};

Json num3(const std::array<double, 3>& a) {
  Json j = Json::array();
  for (double v : a) j.push(v);
  return j;
}

Json bool3(const std::array<bool, 3>& a) {
  Json j = Json::array();
  for (bool v : a) j.push(v);
  return j;
}

Json num_list(const std::vector<double>& a) {
  Json j = Json::array();
  for (double v : a) j.push(v);
  return j;
}

// ---- section parse/serialize pairs ----------------------------------------
// (paired key sets are checked by the scenario-schema-sync lint rule)

MeshSpec parse_mesh(const Json& v, const std::string& path) {
  MeshSpec s;
  Fields f(v, path);
  s.length = f.opt_num("length", s.length);
  s.height = f.opt_num("height", s.height);
  s.nx = f.opt_int("nx", s.nx);
  s.ny = f.opt_int("ny", s.ny);
  s.order = f.opt_int("order", s.order);
  f.finish();
  return s;
}

Json serialize_mesh(const MeshSpec& s) {
  Json o = Json::object();
  o.set("length", s.length);
  o.set("height", s.height);
  o.set("nx", s.nx);
  o.set("ny", s.ny);
  o.set("order", s.order);
  return o;
}

Mesh3dSpec parse_mesh3d(const Json& v, const std::string& path) {
  Mesh3dSpec s;
  Fields f(v, path);
  s.lx = f.opt_num("lx", s.lx);
  s.ly = f.opt_num("ly", s.ly);
  s.lz = f.opt_num("lz", s.lz);
  s.nx = f.opt_int("nx", s.nx);
  s.ny = f.opt_int("ny", s.ny);
  s.nz = f.opt_int("nz", s.nz);
  s.order = f.opt_int("order", s.order);
  f.finish();
  return s;
}

Json serialize_mesh3d(const Mesh3dSpec& s) {
  Json o = Json::object();
  o.set("lx", s.lx);
  o.set("ly", s.ly);
  o.set("lz", s.lz);
  o.set("nx", s.nx);
  o.set("ny", s.ny);
  o.set("nz", s.nz);
  o.set("order", s.order);
  return o;
}

SemSpec parse_sem(const Json& v, const std::string& path) {
  SemSpec s;
  Fields f(v, path);
  s.nu = f.opt_num("nu", s.nu);
  s.dt = f.opt_num("dt", s.dt);
  s.time_order = f.opt_int("time_order", s.time_order);
  s.inlet_umax = f.opt_num("inlet_umax", s.inlet_umax);
  f.finish();
  return s;
}

Json serialize_sem(const SemSpec& s) {
  Json o = Json::object();
  o.set("nu", s.nu);
  o.set("dt", s.dt);
  o.set("time_order", s.time_order);
  o.set("inlet_umax", s.inlet_umax);
  return o;
}

DpdGeometrySpec parse_dpd_geometry(const Json& v, const std::string& path) {
  DpdGeometrySpec s;
  Fields f(v, path);
  s.kind = f.opt_str("kind", s.kind);
  s.height = f.opt_num("height", s.height);
  f.finish();
  return s;
}

Json serialize_dpd_geometry(const DpdGeometrySpec& s) {
  Json o = Json::object();
  o.set("kind", s.kind);
  o.set("height", s.height);
  return o;
}

DpdSpec parse_dpd(const Json& v, const std::string& path) {
  DpdSpec s;
  Fields f(v, path);
  const auto box = f.opt_num_list("box", 3, {s.box[0], s.box[1], s.box[2]});
  s.box = {box[0], box[1], box[2]};
  s.periodic = f.opt_bool3("periodic", s.periodic);
  s.rc = f.opt_num("rc", s.rc);
  s.kBT = f.opt_num("kBT", s.kBT);
  s.dt = f.opt_num("dt", s.dt);
  s.density = f.opt_num("density", s.density);
  s.seed = f.opt_int("seed", s.seed);
  s.fill_margin = f.opt_num("fill_margin", s.fill_margin);
  if (const Json* g = f.opt("geometry")) s.geometry = parse_dpd_geometry(*g, f.sub("geometry"));
  f.finish();
  return s;
}

Json serialize_dpd(const DpdSpec& s) {
  Json o = Json::object();
  o.set("box", num3(s.box));
  o.set("periodic", bool3(s.periodic));
  o.set("rc", s.rc);
  o.set("kBT", s.kBT);
  o.set("dt", s.dt);
  o.set("density", s.density);
  o.set("seed", s.seed);
  o.set("fill_margin", s.fill_margin);
  o.set("geometry", serialize_dpd_geometry(s.geometry));
  return o;
}

FlowBcSpec parse_flow_bc(const Json& v, const std::string& path) {
  FlowBcSpec s;
  Fields f(v, path);
  s.axis = f.opt_int("axis", s.axis);
  s.buffer_len = f.opt_num("buffer_len", s.buffer_len);
  s.density = f.opt_num("density", s.density);
  s.relax = f.opt_num("relax", s.relax);
  s.seed = f.opt_int("seed", s.seed);
  f.finish();
  return s;
}

Json serialize_flow_bc(const FlowBcSpec& s) {
  Json o = Json::object();
  o.set("axis", s.axis);
  o.set("buffer_len", s.buffer_len);
  o.set("density", s.density);
  o.set("relax", s.relax);
  o.set("seed", s.seed);
  return o;
}

ScalesSpec parse_scales(const Json& v, const std::string& path) {
  ScalesSpec s;
  Fields f(v, path);
  s.L_ns = f.opt_num("L_ns", s.L_ns);
  s.L_dpd = f.opt_num("L_dpd", s.L_dpd);
  s.nu_ns = f.opt_num("nu_ns", s.nu_ns);
  s.nu_dpd = f.opt_num("nu_dpd", s.nu_dpd);
  f.finish();
  return s;
}

Json serialize_scales(const ScalesSpec& s) {
  Json o = Json::object();
  o.set("L_ns", s.L_ns);
  o.set("L_dpd", s.L_dpd);
  o.set("nu_ns", s.nu_ns);
  o.set("nu_dpd", s.nu_dpd);
  return o;
}

CouplingSpec parse_coupling(const Json& v, const std::string& path, std::size_t region_len) {
  CouplingSpec s;
  if (region_len == 6) s.region = {1.5, 2.5, 0.25, 0.75, 0.0, 1.0};
  Fields f(v, path);
  if (const Json* sc = f.opt("scales")) s.scales = parse_scales(*sc, f.sub("scales"));
  s.exchange_every_ns = f.opt_int("exchange_every_ns", s.exchange_every_ns);
  s.dpd_per_ns = f.opt_int("dpd_per_ns", s.dpd_per_ns);
  s.region = f.opt_num_list("region", region_len, s.region);
  f.finish();
  return s;
}

Json serialize_coupling(const CouplingSpec& s) {
  Json o = Json::object();
  o.set("scales", serialize_scales(s.scales));
  o.set("exchange_every_ns", s.exchange_every_ns);
  o.set("dpd_per_ns", s.dpd_per_ns);
  o.set("region", num_list(s.region));
  return o;
}

SamplerSpec parse_sampler(const Json& v, const std::string& path) {
  SamplerSpec s;
  Fields f(v, path);
  s.nx = f.opt_int("nx", s.nx);
  s.ny = f.opt_int("ny", s.ny);
  s.nz = f.opt_int("nz", s.nz);
  f.finish();
  return s;
}

Json serialize_sampler(const SamplerSpec& s) {
  Json o = Json::object();
  o.set("nx", s.nx);
  o.set("ny", s.ny);
  o.set("nz", s.nz);
  return o;
}

TimeSpec parse_time(const Json& v, const std::string& path) {
  TimeSpec s;
  Fields f(v, path);
  s.intervals = f.opt_int("intervals", s.intervals);
  s.develop_steps = f.opt_int("develop_steps", s.develop_steps);
  s.develop_tol = f.opt_num("develop_tol", s.develop_tol);
  s.sample_from = f.opt_int("sample_from", s.sample_from);
  f.finish();
  return s;
}

Json serialize_time(const TimeSpec& s) {
  Json o = Json::object();
  o.set("intervals", s.intervals);
  o.set("develop_steps", s.develop_steps);
  o.set("develop_tol", s.develop_tol);
  o.set("sample_from", s.sample_from);
  return o;
}

CheckpointSpec parse_checkpoint(const Json& v, const std::string& path) {
  CheckpointSpec s;
  Fields f(v, path);
  s.every = f.opt_int("every", s.every);
  s.dir = f.opt_str("dir", s.dir);
  f.finish();
  return s;
}

Json serialize_checkpoint(const CheckpointSpec& s) {
  Json o = Json::object();
  o.set("every", s.every);
  o.set("dir", s.dir);
  return o;
}

VesselSpec parse_vessel(const Json& v, const std::string& path) {
  VesselSpec s;
  Fields f(v, path);
  s.length = f.opt_num("length", s.length);
  s.A0 = f.opt_num("A0", s.A0);
  s.beta = f.opt_num("beta", s.beta);
  s.rho = f.opt_num("rho", s.rho);
  s.Kr = f.opt_num("Kr", s.Kr);
  s.elements = f.opt_int("elements", s.elements);
  s.order = f.opt_int("order", s.order);
  f.finish();
  return s;
}

Json serialize_vessel(const VesselSpec& s) {
  Json o = Json::object();
  o.set("length", s.length);
  o.set("A0", s.A0);
  o.set("beta", s.beta);
  o.set("rho", s.rho);
  o.set("Kr", s.Kr);
  o.set("elements", s.elements);
  o.set("order", s.order);
  return o;
}

InletSpec parse_inlet(const Json& v, const std::string& path) {
  InletSpec s;
  Fields f(v, path);
  s.vessel = f.opt_int("vessel", s.vessel);
  s.q_mean = f.opt_num("q_mean", s.q_mean);
  s.q_amp = f.opt_num("q_amp", s.q_amp);
  s.freq = f.opt_num("freq", s.freq);
  f.finish();
  return s;
}

Json serialize_inlet(const InletSpec& s) {
  Json o = Json::object();
  o.set("vessel", s.vessel);
  o.set("q_mean", s.q_mean);
  o.set("q_amp", s.q_amp);
  o.set("freq", s.freq);
  return o;
}

OutletSpec parse_outlet(const Json& v, const std::string& path) {
  OutletSpec s;
  Fields f(v, path);
  s.vessel = f.opt_int("vessel", s.vessel);
  s.rp = f.opt_num("rp", s.rp);
  s.rd = f.opt_num("rd", s.rd);
  s.c = f.opt_num("c", s.c);
  f.finish();
  return s;
}

Json serialize_outlet(const OutletSpec& s) {
  Json o = Json::object();
  o.set("vessel", s.vessel);
  o.set("rp", s.rp);
  o.set("rd", s.rd);
  o.set("c", s.c);
  return o;
}

AttachmentSpec parse_attachment(const Json& v, const std::string& path) {
  AttachmentSpec s;
  Fields f(v, path);
  s.vessel = f.opt_int("vessel", s.vessel);
  s.end = f.opt_str("end", s.end);
  f.finish();
  if (s.end != "left" && s.end != "right")
    fail(path + ".end", "expected \"left\" or \"right\", got \"" + s.end + "\"");
  return s;
}

Json serialize_attachment(const AttachmentSpec& s) {
  Json o = Json::object();
  o.set("vessel", s.vessel);
  o.set("end", s.end);
  return o;
}

NetworkSpec parse_network(const Json& v, const std::string& path) {
  NetworkSpec s;
  Fields f(v, path);
  if (const Json* vs = f.opt("vessels")) {
    const std::string p = f.sub("vessels");
    if (!vs->is_array()) fail(p, "expected array of vessel objects");
    for (std::size_t i = 0; i < vs->elements().size(); ++i)
      s.vessels.push_back(parse_vessel(vs->elements()[i], p + "[" + std::to_string(i) + "]"));
  }
  if (const Json* js = f.opt("junctions")) {
    const std::string p = f.sub("junctions");
    if (!js->is_array()) fail(p, "expected array of attachment arrays");
    for (std::size_t i = 0; i < js->elements().size(); ++i) {
      const Json& jn = js->elements()[i];
      const std::string pj = p + "[" + std::to_string(i) + "]";
      if (!jn.is_array()) fail(pj, "expected array of attachments");
      std::vector<AttachmentSpec> atts;
      for (std::size_t k = 0; k < jn.elements().size(); ++k)
        atts.push_back(parse_attachment(jn.elements()[k], pj + "[" + std::to_string(k) + "]"));
      s.junctions.push_back(std::move(atts));
    }
  }
  if (const Json* in = f.opt("inlets")) {
    const std::string p = f.sub("inlets");
    if (!in->is_array()) fail(p, "expected array of inlet objects");
    for (std::size_t i = 0; i < in->elements().size(); ++i)
      s.inlets.push_back(parse_inlet(in->elements()[i], p + "[" + std::to_string(i) + "]"));
  }
  if (const Json* out = f.opt("outlets")) {
    const std::string p = f.sub("outlets");
    if (!out->is_array()) fail(p, "expected array of outlet objects");
    for (std::size_t i = 0; i < out->elements().size(); ++i)
      s.outlets.push_back(parse_outlet(out->elements()[i], p + "[" + std::to_string(i) + "]"));
  }
  s.dt = f.opt_num("dt", s.dt);
  s.cfl = f.opt_num("cfl", s.cfl);
  s.steps_per_interval = f.opt_int("steps_per_interval", s.steps_per_interval);
  f.finish();
  return s;
}

Json serialize_network(const NetworkSpec& s) {
  Json o = Json::object();
  Json vessels = Json::array();
  for (const auto& v : s.vessels) vessels.push(serialize_vessel(v));
  o.set("vessels", std::move(vessels));
  Json junctions = Json::array();
  for (const auto& j : s.junctions) {
    Json atts = Json::array();
    for (const auto& a : j) atts.push(serialize_attachment(a));
    junctions.push(std::move(atts));
  }
  o.set("junctions", std::move(junctions));
  Json inlets = Json::array();
  for (const auto& i : s.inlets) inlets.push(serialize_inlet(i));
  o.set("inlets", std::move(inlets));
  Json outlets = Json::array();
  for (const auto& x : s.outlets) outlets.push(serialize_outlet(x));
  o.set("outlets", std::move(outlets));
  o.set("dt", s.dt);
  o.set("cfl", s.cfl);
  o.set("steps_per_interval", s.steps_per_interval);
  return o;
}

}  // namespace

// ---- scenario --------------------------------------------------------------

Scenario parse_scenario(const Json& doc) {
  Scenario sc;
  Fields f(doc, "$");
  sc.version = f.req_int("version");
  if (sc.version != kSchemaVersion)
    fail("$.version", "unsupported schema version " + std::to_string(sc.version) +
                          " (this build reads version " + std::to_string(kSchemaVersion) + ")");
  sc.name = f.opt_str("name", "");
  sc.kind = f.req_str("kind");
  if (sc.kind == "cdc" || sc.kind == "cdc3d") {
    if (sc.kind == "cdc") {
      if (const Json* v = f.opt("mesh")) sc.mesh = parse_mesh(*v, f.sub("mesh"));
    } else {
      if (const Json* v = f.opt("mesh3d")) sc.mesh3d = parse_mesh3d(*v, f.sub("mesh3d"));
    }
    if (const Json* v = f.opt("sem")) sc.sem = parse_sem(*v, f.sub("sem"));
    if (const Json* v = f.opt("dpd")) sc.dpd = parse_dpd(*v, f.sub("dpd"));
    if (const Json* v = f.opt("flow_bc")) sc.flow_bc = parse_flow_bc(*v, f.sub("flow_bc"));
    const std::size_t region_len = sc.kind == "cdc" ? 4 : 6;
    sc.coupling.region.assign(region_len, 0.0);
    sc.coupling = parse_coupling(f.req("coupling"), f.sub("coupling"), region_len);
    if (const Json* v = f.opt("sampler")) sc.sampler = parse_sampler(*v, f.sub("sampler"));
    if (const Json* v = f.opt("time")) sc.time = parse_time(*v, f.sub("time"));
    if (const Json* v = f.opt("checkpoint"))
      sc.checkpoint = parse_checkpoint(*v, f.sub("checkpoint"));
  } else if (sc.kind == "net1d") {
    sc.network = parse_network(f.req("network"), f.sub("network"));
    if (const Json* v = f.opt("time")) sc.time = parse_time(*v, f.sub("time"));
    if (const Json* v = f.opt("checkpoint"))
      sc.checkpoint = parse_checkpoint(*v, f.sub("checkpoint"));
  } else if (sc.kind == "mci" || sc.kind == "net1d2d") {
    fail("$.kind", "kind \"" + sc.kind + "\" is reserved but not yet runnable");
  } else {
    fail("$.kind", "unknown kind \"" + sc.kind + "\" (known: cdc, cdc3d, net1d)");
  }
  f.finish();
  validate_scenario(sc);
  return sc;
}

Json serialize_scenario(const Scenario& sc) {
  Json o = Json::object();
  o.set("version", sc.version);
  o.set("name", sc.name);
  o.set("kind", sc.kind);
  if (sc.kind == "cdc" || sc.kind == "cdc3d") {
    if (sc.kind == "cdc")
      o.set("mesh", serialize_mesh(sc.mesh));
    else
      o.set("mesh3d", serialize_mesh3d(sc.mesh3d));
    o.set("sem", serialize_sem(sc.sem));
    o.set("dpd", serialize_dpd(sc.dpd));
    o.set("flow_bc", serialize_flow_bc(sc.flow_bc));
    o.set("coupling", serialize_coupling(sc.coupling));
    o.set("sampler", serialize_sampler(sc.sampler));
    o.set("time", serialize_time(sc.time));
    o.set("checkpoint", serialize_checkpoint(sc.checkpoint));
  } else if (sc.kind == "net1d") {
    o.set("network", serialize_network(sc.network));
    o.set("time", serialize_time(sc.time));
    o.set("checkpoint", serialize_checkpoint(sc.checkpoint));
  }
  return o;
}

std::string scenario_to_json(const Scenario& sc) {
  return serialize_scenario(sc).dump();
}

Scenario parse_scenario_text(std::string_view text) {
  return parse_scenario(Json::parse(text));
}

Scenario load_scenario_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw JsonError(path + ": cannot open scenario file");
  std::ostringstream ss;
  ss << in.rdbuf();
  try {
    return parse_scenario_text(ss.str());
  } catch (const JsonError& e) {
    throw JsonError(path + ": " + e.what());
  }
}

namespace {
void check(bool ok, const std::string& path, const std::string& what) {
  if (!ok) fail(path, what);
}
}  // namespace

void validate_scenario(const Scenario& sc) {
  check(sc.time.intervals >= 0, "$.time.intervals", "must be >= 0");
  check(sc.time.develop_steps >= 0, "$.time.develop_steps", "must be >= 0");
  check(sc.time.develop_tol >= 0.0, "$.time.develop_tol", "must be >= 0");
  if (sc.kind == "cdc" || sc.kind == "cdc3d") {
    if (sc.kind == "cdc") {
      check(sc.mesh.length > 0 && sc.mesh.height > 0, "$.mesh", "non-positive extent");
      check(sc.mesh.nx > 0 && sc.mesh.ny > 0, "$.mesh", "non-positive element count");
      check(sc.mesh.order >= 1, "$.mesh.order", "must be >= 1");
    } else {
      check(sc.mesh3d.lx > 0 && sc.mesh3d.ly > 0 && sc.mesh3d.lz > 0, "$.mesh3d",
            "non-positive extent");
      check(sc.mesh3d.nx > 0 && sc.mesh3d.ny > 0 && sc.mesh3d.nz > 0, "$.mesh3d",
            "non-positive element count");
      check(sc.mesh3d.order >= 1, "$.mesh3d.order", "must be >= 1");
    }
    check(sc.sem.nu > 0, "$.sem.nu", "must be > 0");
    check(sc.sem.dt > 0, "$.sem.dt", "must be > 0");
    check(sc.sem.time_order == 1 || sc.sem.time_order == 2, "$.sem.time_order",
          "must be 1 or 2");
    check(sc.dpd.box[0] > 0 && sc.dpd.box[1] > 0 && sc.dpd.box[2] > 0, "$.dpd.box",
          "non-positive box");
    check(sc.dpd.dt > 0, "$.dpd.dt", "must be > 0");
    check(sc.dpd.density > 0, "$.dpd.density", "must be > 0");
    check(sc.dpd.geometry.kind == "none" || sc.dpd.geometry.kind == "channel_z",
          "$.dpd.geometry.kind", "unknown geometry \"" + sc.dpd.geometry.kind +
                                     "\" (known: none, channel_z)");
    check(sc.flow_bc.axis >= 0 && sc.flow_bc.axis <= 2, "$.flow_bc.axis", "must be 0, 1 or 2");
    check(sc.coupling.exchange_every_ns > 0, "$.coupling.exchange_every_ns", "must be > 0");
    check(sc.coupling.dpd_per_ns > 0, "$.coupling.dpd_per_ns", "must be > 0");
    const auto& r = sc.coupling.region;
    check(r.size() == (sc.kind == "cdc" ? 4u : 6u), "$.coupling.region", "wrong length");
    for (std::size_t i = 0; i + 1 < r.size(); i += 2)
      check(r[i + 1] > r[i], "$.coupling.region",
            "degenerate region: need max > min on every axis");
    check(sc.sampler.nx > 0 && sc.sampler.ny > 0 && sc.sampler.nz > 0, "$.sampler",
          "non-positive bin count");
    check(sc.time.sample_from >= 0, "$.time.sample_from", "must be >= 0");
  } else if (sc.kind == "net1d") {
    check(!sc.network.vessels.empty(), "$.network.vessels", "at least one vessel required");
    const auto nv = static_cast<std::int64_t>(sc.network.vessels.size());
    for (std::size_t i = 0; i < sc.network.vessels.size(); ++i) {
      const auto& v = sc.network.vessels[i];
      const std::string p = "$.network.vessels[" + std::to_string(i) + "]";
      check(v.length > 0 && v.A0 > 0 && v.beta > 0 && v.rho > 0, p, "non-positive parameter");
      check(v.elements >= 1 && v.order >= 1, p, "need elements >= 1 and order >= 1");
    }
    const auto vessel_ok = [&](std::int64_t v) { return v >= 0 && v < nv; };
    for (std::size_t i = 0; i < sc.network.inlets.size(); ++i)
      check(vessel_ok(sc.network.inlets[i].vessel),
            "$.network.inlets[" + std::to_string(i) + "].vessel", "out of range");
    for (std::size_t i = 0; i < sc.network.outlets.size(); ++i)
      check(vessel_ok(sc.network.outlets[i].vessel),
            "$.network.outlets[" + std::to_string(i) + "].vessel", "out of range");
    for (std::size_t i = 0; i < sc.network.junctions.size(); ++i) {
      const std::string p = "$.network.junctions[" + std::to_string(i) + "]";
      check(sc.network.junctions[i].size() >= 2, p, "a junction joins at least 2 ends");
      for (const auto& a : sc.network.junctions[i]) check(vessel_ok(a.vessel), p, "out of range");
    }
    check(sc.network.dt >= 0, "$.network.dt", "must be >= 0 (0 = CFL-suggested)");
    check(sc.network.cfl > 0, "$.network.cfl", "must be > 0");
    check(sc.network.steps_per_interval > 0, "$.network.steps_per_interval", "must be > 0");
  }
}

}  // namespace scenario
