#pragma once
// scenario::Runner — one object that instantiates a complete solver stack
// from a parsed Scenario and drives it to completion. It subsumes the
// hand-rolled setup the examples used to carry: quickstart and coupled3d are
// now thin wrappers that load a scenario (file or built-in preset) and call
// run(). A Runner built from the matching preset reproduces the handwritten
// example bit-for-bit (STATE_DIGEST equality — pinned by scenario_test).
//
// Runners are also the unit of work of the EnsembleEngine (ensemble.hpp):
// they accept shared discretization tables (cross-variant redundancy), CG
// warm-start blobs from a completed nearby parameter point, and a FaultPlan
// hook for per-variant failure-isolation tests.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "coupling/cdc.hpp"
#include "coupling/cdc3d.hpp"
#include "nektar1d/network.hpp"
#include "resilience/checkpoint.hpp"
#include "resilience/fault.hpp"
#include "scenario/schema.hpp"

namespace scenario {

/// Cross-variant warm-start policy (docs/SCENARIOS.md):
///   Off       — cold start, bitwise-reference behaviour.
///   Projector — seed only the Helmholtz solvers' successive-solution
///               projector bases from the donor.
///   State     — additionally seed the full continuum field, so a
///               tolerance-terminated develop phase (time.develop_tol > 0)
///               converges in a handful of steps instead of hundreds.
enum class WarmMode : std::uint8_t { Off, Projector, State };

/// Per-rank cache of immutable discretization tables, keyed by the mesh
/// signature. Variants of a sweep almost always share the mesh; building
/// the gather/scatter and quadrature tables once per rank instead of once
/// per variant is the first redundancy an ensemble can exploit. (Only const
/// objects are shared — Operators hold mutable scratch and stay per-Runner.)
class SharedTables {
 public:
  std::shared_ptr<const sem::Discretization> quad(const MeshSpec& m);
  std::shared_ptr<const sem::Discretization3D> hex(const Mesh3dSpec& m);
  std::size_t hits() const { return hits_; }
  std::size_t misses() const { return misses_; }

 private:
  std::vector<std::pair<std::string, std::shared_ptr<const sem::Discretization>>> quad_;
  std::vector<std::pair<std::string, std::shared_ptr<const sem::Discretization3D>>> hex_;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
};

struct RunnerOptions {
  std::string restart_dir;         ///< non-empty: resume from this checkpoint
  std::int64_t intervals = -1;     ///< >= 0 overrides scenario time.intervals
  std::int64_t checkpoint_every = -1;  ///< >= 0 overrides checkpoint.every
  std::string checkpoint_dir;      ///< non-empty overrides checkpoint.dir
  bool verbose = false;            ///< reproduce the example progress lines
  /// Optional fault injection: check(fault_id, interval) runs once per
  /// coupling interval (failure-isolation tests).
  resilience::FaultPlan* fault_plan = nullptr;
  int fault_id = 0;
};

struct RunResult {
  std::uint32_t digest = 0;        ///< CRC32 over the component states
  std::size_t cg_iters = 0;        ///< continuum CG iterations (develop + coupled)
  std::size_t develop_steps = 0;   ///< develop steps actually taken
  std::size_t intervals_run = 0;
  bool restarted = false;
  int start_interval = 0;
  double t_ns = 0.0;               ///< continuum time after restart load
};

class Runner {
 public:
  /// `tables` may be nullptr (each Runner builds its own discretization).
  explicit Runner(Scenario sc, RunnerOptions opts = {}, SharedTables* tables = nullptr);
  ~Runner();

  /// Install a donor warm-start blob (from another Runner's warm_state())
  /// before run(). Blobs whose signature does not match this scenario are
  /// ignored — a mismatched donor must never corrupt a run.
  void set_warm_start(WarmMode mode, std::vector<std::uint8_t> blob);
  /// True when the installed blob's signature matched and will be applied.
  bool warm_applied() const { return warm_applied_; }

  /// Build the stack and advance all intervals. Throws JsonError on
  /// configuration problems, SnapshotError on restart failures, and
  /// propagates InjectedFault from the fault plan.
  RunResult run();

  /// Donor blob for warm-starting sibling variants (valid after run()):
  /// {signature, full continuum state, projector-only state}.
  std::vector<std::uint8_t> warm_state() const;
  /// Discretization + solver fingerprint gating warm-start transfer.
  std::string warm_signature() const;

  const Scenario& scenario() const { return sc_; }

  // --- introspection for the example epilogues (valid after run()) ---
  std::size_t sem_nodes() const;
  std::size_t exchanges() const;
  const coupling::ScaleMap& scales() const { return scales_; }
  dpd::FieldSampler& sampler() { return *sampler_; }
  dpd::DpdSystem& dpd() { return *dpd_; }
  dpd::FlowBc& flow_bc() { return *bc_; }
  /// Continuum u at a point ("cdc" kind).
  double eval_u(double x, double y) const;
  /// Continuum u at a point ("cdc3d" kind).
  double eval_u(double x, double y, double z) const;
  nektar1d::ArterialNetwork& network() { return *net_; }

 private:
  std::int64_t intervals() const;
  std::int64_t checkpoint_every() const;
  std::string checkpoint_dir() const;
  void apply_warm_start();
  std::size_t develop();
  std::uint32_t compute_digest() const;
  void maybe_checkpoint(std::int64_t interval, double time);
  RunResult run_coupled();
  RunResult run_net1d();

  Scenario sc_;
  RunnerOptions opts_;
  SharedTables* tables_;

  std::shared_ptr<const sem::Discretization> disc_;
  std::shared_ptr<const sem::Discretization3D> disc3_;
  std::unique_ptr<sem::NavierStokes2D> ns2_;
  std::unique_ptr<sem::NavierStokes3D> ns3_;
  std::unique_ptr<dpd::DpdSystem> dpd_;
  std::unique_ptr<dpd::FlowBc> bc_;
  std::unique_ptr<coupling::ContinuumDpdCoupler> cdc_;
  std::unique_ptr<coupling::ContinuumDpdCoupler3D> cdc3_;
  std::unique_ptr<dpd::FieldSampler> sampler_;
  std::unique_ptr<nektar1d::ArterialNetwork> net_;
  std::unique_ptr<resilience::CheckpointCoordinator> coord_;
  coupling::ScaleMap scales_;

  WarmMode warm_mode_ = WarmMode::Off;
  std::vector<std::uint8_t> warm_blob_;
  bool warm_applied_ = false;
  std::size_t develop_steps_ = 0;
};

}  // namespace scenario
