#pragma once
// Tiny command-line flag helper shared by the example mains. Replaces the
// hand-rolled strcmp chains: flags are declared once with a bound target and
// a help line, unknown flags are a hard error (exit code 2 convention in the
// callers), and --help prints the generated usage text.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

namespace scenario {

class Flags {
 public:
  explicit Flags(std::string prog) : prog_(std::move(prog)) {}

  void add_int(const char* name, int* target, const char* help) {
    specs_.push_back({name, help, Kind::Int, target, nullptr, nullptr});
  }
  void add_string(const char* name, std::string* target, const char* help) {
    specs_.push_back({name, help, Kind::String, nullptr, target, nullptr});
  }
  void add_flag(const char* name, bool* target, const char* help) {
    specs_.push_back({name, help, Kind::Bool, nullptr, nullptr, target});
  }

  /// Parse argv. Returns false (after printing a diagnostic + usage to
  /// stderr) on an unknown flag or a missing value; the caller should exit
  /// non-zero. "--help" prints usage to stdout and exits 0.
  bool parse(int argc, char** argv) const {
    for (int i = 1; i < argc; ++i) {
      if (!std::strcmp(argv[i], "--help") || !std::strcmp(argv[i], "-h")) {
        print_usage(stdout);
        std::exit(0);
      }
      const Spec* spec = nullptr;
      for (const auto& s : specs_)
        if (!std::strcmp(argv[i], s.name)) {
          spec = &s;
          break;
        }
      if (!spec) {
        std::fprintf(stderr, "unknown option: %s\n", argv[i]);
        print_usage(stderr);
        return false;
      }
      if (spec->kind == Kind::Bool) {
        *spec->bool_target = true;
        continue;
      }
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", spec->name);
        print_usage(stderr);
        return false;
      }
      ++i;
      if (spec->kind == Kind::Int)
        *spec->int_target = std::atoi(argv[i]);
      else
        *spec->str_target = argv[i];
    }
    return true;
  }

 private:
  enum class Kind { Int, String, Bool };
  struct Spec {
    const char* name;
    const char* help;
    Kind kind;
    int* int_target;
    std::string* str_target;
    bool* bool_target;
  };

  void print_usage(std::FILE* out) const {
    std::fprintf(out, "usage: %s [options]\n", prog_.c_str());
    for (const auto& s : specs_)
      std::fprintf(out, "  %-22s %s\n",
                   s.kind == Kind::Bool ? s.name : (std::string(s.name) + " V").c_str(), s.help);
  }

  std::string prog_;
  std::vector<Spec> specs_;
};

}  // namespace scenario
