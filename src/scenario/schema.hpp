#pragma once
// Versioned scenario schema: the declarative description of a NektarG run.
// A scenario names a solver stack ("kind") and carries the full parameter
// set the hand-written examples used to hard-code — geometry/mesh, SEM
// patch, DPD region + FlowBc, coupling layout (Eq. 1 scales + Fig. 5
// schedule), time stepping, and checkpoint policy. Parsing is strict:
// unknown keys, type mismatches and semantic violations are hard errors
// carrying the JSON path ("$.sem.nu") so a typo'd config can never silently
// run with defaults.
//
// Every spec struct has a parse_X / serialize_X pair in schema.cpp; the
// `scenario-schema-sync` lint rule (tools/lint.py) verifies the two sides
// consume/emit the same key set, so a field cannot be added to one and
// forgotten in the other.

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "scenario/json.hpp"

namespace scenario {

inline constexpr std::int64_t kSchemaVersion = 1;

/// 2D channel mesh (kind "cdc"): mesh::QuadMesh::channel + SEM order.
struct MeshSpec {
  double length = 4.0;
  double height = 1.0;
  std::int64_t nx = 8;
  std::int64_t ny = 2;
  std::int64_t order = 4;
};

/// 3D box mesh (kind "cdc3d"): sem::Discretization3D.
struct Mesh3dSpec {
  double lx = 4.0, ly = 1.0, lz = 1.0;
  std::int64_t nx = 4, ny = 1, nz = 2;
  std::int64_t order = 4;
};

/// SEM Navier-Stokes patch. The boundary layout is the channel family both
/// examples use (parabolic inflow scaled by `inlet_umax`, natural outflow,
/// no-slip walls); richer per-face BC tables are a schema v2 concern.
struct SemSpec {
  double nu = 0.05;
  double dt = 2e-3;
  std::int64_t time_order = 1;
  double inlet_umax = 1.0;
};

/// DPD wall geometry (SDF). Kinds: "none", "channel_z".
struct DpdGeometrySpec {
  std::string kind = "channel_z";
  double height = 10.0;  ///< channel_z: fluid for 0 < z < height
};

/// DPD region: box, thermodynamic state and initial fill.
struct DpdSpec {
  std::array<double, 3> box{16.0, 6.0, 10.0};
  std::array<bool, 3> periodic{false, true, false};
  double rc = 1.0;
  double kBT = 1.0;
  double dt = 0.01;
  double density = 3.0;
  std::int64_t seed = 7;
  double fill_margin = 0.1;
  DpdGeometrySpec geometry;
};

/// Inflow/outflow flux BC (Lei-Fedosov-Karniadakis).
struct FlowBcSpec {
  std::int64_t axis = 0;
  double buffer_len = 2.0;
  double density = 3.0;
  double relax = 0.3;
  std::int64_t seed = 99;
};

/// Eq. (1) unit scaling between the descriptions.
struct ScalesSpec {
  double L_ns = 1.0;
  double L_dpd = 10.0;
  double nu_ns = 0.05;
  double nu_dpd = 2.5;
};

/// Coupling layout: scales, Fig. 5 schedule and the embedded region
/// (4 numbers [x0, x1, y0, y1] for "cdc", 6 [..., z0, z1] for "cdc3d").
struct CouplingSpec {
  ScalesSpec scales;
  std::int64_t exchange_every_ns = 2;
  std::int64_t dpd_per_ns = 10;
  std::vector<double> region{1.5, 2.5, 0.0, 1.0};
};

/// DPD velocity-field sampler (bin grid over the box).
struct SamplerSpec {
  std::int64_t nx = 1, ny = 1, nz = 10;
};

/// Time stepping: coupling intervals, the continuum develop phase, and when
/// the sampler starts accumulating.
struct TimeSpec {
  std::int64_t intervals = 20;
  /// Continuum develop steps before coupling starts (cap when develop_tol
  /// is set).
  std::int64_t develop_steps = 300;
  /// > 0: stop developing early once the max per-step velocity change drops
  /// below this (steady-state detection — what makes ensemble warm starts
  /// pay; see docs/SCENARIOS.md). 0: exactly develop_steps (bitwise mode).
  double develop_tol = 0.0;
  std::int64_t sample_from = 12;
};

struct CheckpointSpec {
  std::int64_t every = 0;  ///< checkpoint every N intervals (0 = never)
  std::string dir = "scenario-ckpt";
};

// --- 1D network (kind "net1d") ---------------------------------------------

struct VesselSpec {
  double length = 1.0;
  double A0 = 0.5;
  double beta = 1.0e5;
  double rho = 1.06;
  double Kr = 1.005;
  std::int64_t elements = 8;
  std::int64_t order = 4;
};

/// Pulsatile prescribed inflow Q(t) = q_mean + q_amp sin(2 pi freq t).
struct InletSpec {
  std::int64_t vessel = 0;
  double q_mean = 5.0;
  double q_amp = 0.0;
  double freq = 1.0;
};

/// RCR windkessel outflow.
struct OutletSpec {
  std::int64_t vessel = 0;
  double rp = 100.0;
  double rd = 1000.0;
  double c = 1e-4;
};

struct AttachmentSpec {
  std::int64_t vessel = 0;
  std::string end = "right";  ///< "left" | "right"
};

struct NetworkSpec {
  std::vector<VesselSpec> vessels;
  std::vector<std::vector<AttachmentSpec>> junctions;
  std::vector<InletSpec> inlets;
  std::vector<OutletSpec> outlets;
  double dt = 0.0;  ///< 0 = CFL-suggested
  double cfl = 0.3;
  std::int64_t steps_per_interval = 10;
};

/// A complete scenario. `kind` selects the solver stack:
///   "cdc"   — 2D SEM channel + embedded DPD box (quickstart family)
///   "cdc3d" — 3D SEM box + embedded DPD box (coupled3d family)
///   "net1d" — 1D arterial network (nektar1d)
/// ("mci" and "net1d2d" are reserved kinds for later PRs.)
struct Scenario {
  std::int64_t version = kSchemaVersion;
  std::string name;
  std::string kind = "cdc";
  MeshSpec mesh;
  Mesh3dSpec mesh3d;
  SemSpec sem;
  DpdSpec dpd;
  FlowBcSpec flow_bc;
  CouplingSpec coupling;
  SamplerSpec sampler;
  TimeSpec time;
  CheckpointSpec checkpoint;
  NetworkSpec network;
};

/// Parse + validate a scenario document. Throws JsonError with a "$...."
/// path on unknown keys, type mismatches and semantic violations.
Scenario parse_scenario(const Json& doc);
Scenario parse_scenario_text(std::string_view text);
/// Read + parse a scenario file; errors are prefixed with the path.
Scenario load_scenario_file(const std::string& path);

/// Canonical document for a scenario (only the sections its kind uses).
Json serialize_scenario(const Scenario& sc);
/// serialize + canonical dump. parse(scenario_to_json(sc)) re-emits the
/// exact same bytes (the round-trip tests pin this).
std::string scenario_to_json(const Scenario& sc);

/// Semantic validation (positive sizes, known kinds, in-range indices...).
/// parse_scenario calls this; exposed for programmatically built scenarios.
void validate_scenario(const Scenario& sc);

}  // namespace scenario
