#pragma once
// Built-in scenario presets mirroring the hand-written examples. The
// checked-in files under examples/scenarios/ are exactly
// scenario_to_json(preset) — a test pins their bytes, so the JSON on disk
// can never drift from the code that defines the runs.

#include "scenario/schema.hpp"

namespace scenario {

/// The quickstart example (kind "cdc"): 2D SEM channel + embedded DPD box.
Scenario quickstart_preset();

/// The coupled3d example (kind "cdc3d"): 3D SEM box + embedded DPD box.
Scenario coupled3d_preset();

}  // namespace scenario
