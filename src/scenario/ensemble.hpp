#pragma once
// EnsembleEngine — execute N scenario variants (a base document plus a JSON
// sweep spec) batched across an xmp rank pool. The paper's paradigm treats a
// multiscale run as a composable unit of work; the ensemble layer treats
// *whole runs* the same way: variants are dispatched to a master/worker rank
// pool (pull-based, so fast workers steal the remaining work), a failing
// variant is isolated by the PR 2/3 resilience machinery (InjectedFault /
// any exception is caught per variant, siblings are unaffected), and
// cross-variant redundancy is exploited:
//   * identical meshes share discretization/gather-scatter tables per rank
//     (SharedTables),
//   * the checkpoint-format continuum state of the nearest completed
//     parameter point warm-starts each new variant (WarmMode::State collapses
//     the develop phase; WarmMode::Projector seeds only the CG predictors).

#include <cstdint>
#include <string>
#include <vector>

#include "scenario/runner.hpp"

namespace scenario {

/// One sweep dimension: a dotted path into the scenario document plus the
/// values it takes. The path must already exist in the base document
/// (require_path) — a sweep can tune knobs, never invent them.
struct SweepAxis {
  std::string path;
  std::vector<Json> values;
};

/// Sweep document, e.g.
///   {"mode": "cross", "axes": [{"path": "sem.inlet_umax",
///                               "values": [0.9, 1.0, 1.1]}]}
/// mode "cross" = cartesian product, "zip" = parallel iteration (all axes
/// must have equal length).
struct SweepSpec {
  std::string mode = "cross";
  std::vector<SweepAxis> axes;

  static SweepSpec parse(const Json& doc);
};

/// Read + parse a sweep JSON file; diagnostics carry the file path and the
/// offending JSON path ("sweeps.json: sweep: $.axes[1].values: ...").
SweepSpec load_sweep_file(const std::string& path);

/// One expanded variant: the base document with overrides applied, plus the
/// override values as normalized coordinates (nearest-donor selection).
struct Variant {
  std::size_t index = 0;
  std::string name;
  Json doc;
  std::vector<double> coords;  ///< per-axis, normalized to [0, 1]
};

struct VariantResult {
  std::size_t index = 0;
  bool ok = false;
  std::string error;
  std::uint32_t digest = 0;
  std::uint64_t cg_iters = 0;
  std::uint64_t develop_steps = 0;
  double seconds = 0.0;
  std::int64_t warm_source = -1;  ///< donor variant index, -1 = cold start
  int rank = 0;                   ///< pool rank that executed this variant
};

struct EnsembleOptions {
  /// xmp ranks for the pool (rank 0 is the dispatcher, ranks 1.. are
  /// workers). <= 1 runs every variant serially in-process.
  int pool = 0;
  WarmMode warm = WarmMode::Off;
  bool verbose = false;
  /// Optional failure injection: variant k runs with fault_id = k, so
  /// plan.kill_rank(k, step) kills exactly that variant.
  resilience::FaultPlan* fault_plan = nullptr;
};

struct EnsembleReport {
  std::vector<VariantResult> variants;  ///< by variant index
  double wall_seconds = 0.0;
  std::size_t completed = 0;
  std::size_t failed = 0;
  std::uint64_t cg_total = 0;       ///< over completed variants
  std::uint64_t develop_total = 0;  ///< develop steps over completed variants
  std::size_t shared_hits = 0;      ///< discretization-table cache hits
  std::size_t shared_misses = 0;
};

class EnsembleEngine {
 public:
  EnsembleEngine(Json base_doc, SweepSpec sweep, EnsembleOptions opts = {});

  /// Expand base + sweep into the variant list (deterministic order:
  /// last axis fastest for "cross").
  static std::vector<Variant> expand(const Json& base, const SweepSpec& sweep);

  EnsembleReport run();

 private:
  EnsembleReport run_serial(const std::vector<Variant>& variants);
  EnsembleReport run_pool(const std::vector<Variant>& variants);
  VariantResult run_variant(const Variant& v, SharedTables& tables,
                            const std::vector<std::uint8_t>& donor_blob,
                            std::int64_t donor_index, std::vector<std::uint8_t>* warm_out);

  Json base_;
  SweepSpec sweep_;
  EnsembleOptions opts_;
};

}  // namespace scenario
