#include "scenario/presets.hpp"

namespace scenario {

Scenario quickstart_preset() {
  Scenario sc;
  sc.name = "quickstart";
  sc.kind = "cdc";
  // Every spec default is already the quickstart value (schema.hpp); only
  // the checkpoint directory differs from the schema default.
  sc.checkpoint.dir = "quickstart-ckpt";
  validate_scenario(sc);
  return sc;
}

Scenario coupled3d_preset() {
  Scenario sc;
  sc.name = "coupled3d";
  sc.kind = "cdc3d";
  sc.sem.time_order = 2;
  sc.coupling.region = {1.5, 2.5, 0.25, 0.75, 0.0, 1.0};
  sc.time.intervals = 25;
  sc.time.sample_from = 15;
  sc.checkpoint.dir = "coupled3d-ckpt";
  validate_scenario(sc);
  return sc;
}

}  // namespace scenario
