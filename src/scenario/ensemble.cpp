#include "scenario/ensemble.hpp"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>

#include "resilience/blob.hpp"
#include "xmp/comm.hpp"

namespace scenario {

namespace {

// p2p tags of the dispatcher protocol
constexpr int kWorkerMsgTag = 71;  ///< worker -> master: hello / result
constexpr int kAssignTag = 72;     ///< master -> worker: variant assignment

double now_seconds() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch()).count();
}

[[noreturn]] void sweep_fail(const std::string& what) {
  throw JsonError("sweep: " + what);
}

std::string value_suffix(const Json& v) {
  if (v.is_number()) {
    std::string s;
    append_json_number(s, v.as_number());
    return s;
  }
  if (v.is_string()) return v.as_string();
  return v.dump();
}

void pack_result(resilience::BlobWriter& w, const VariantResult& r,
                 const std::vector<std::uint8_t>& warm_blob, std::uint64_t tbl_hits,
                 std::uint64_t tbl_misses) {
  w.pod(static_cast<std::uint64_t>(r.index));
  w.pod(static_cast<std::uint8_t>(r.ok));
  w.str(r.error);
  w.pod(r.digest);
  w.pod(r.cg_iters);
  w.pod(r.develop_steps);
  w.pod(r.seconds);
  w.pod(r.warm_source);
  w.vec(warm_blob);
  w.pod(tbl_hits);
  w.pod(tbl_misses);
}

VariantResult unpack_result(resilience::BlobReader& r, std::vector<std::uint8_t>& warm_blob,
                            std::uint64_t& tbl_hits, std::uint64_t& tbl_misses) {
  VariantResult res;
  res.index = static_cast<std::size_t>(r.pod<std::uint64_t>());
  res.ok = r.pod<std::uint8_t>() != 0;
  res.error = r.str();
  r.pod(res.digest);
  r.pod(res.cg_iters);
  r.pod(res.develop_steps);
  r.pod(res.seconds);
  r.pod(res.warm_source);
  warm_blob = r.vec<std::uint8_t>();
  r.pod(tbl_hits);
  r.pod(tbl_misses);
  return res;
}

/// Nearest completed parameter point (normalized Euclidean distance).
std::int64_t nearest_donor(const std::vector<Variant>& variants,
                           const std::map<std::size_t, std::vector<std::uint8_t>>& blobs,
                           const Variant& target) {
  std::int64_t best = -1;
  double best_d = 0.0;
  for (const auto& [idx, blob] : blobs) {
    if (blob.empty()) continue;
    const auto& c = variants[idx].coords;
    double d = 0.0;
    for (std::size_t a = 0; a < c.size() && a < target.coords.size(); ++a) {
      const double dd = c[a] - target.coords[a];
      d += dd * dd;
    }
    if (best < 0 || d < best_d) {
      best = static_cast<std::int64_t>(idx);
      best_d = d;
    }
  }
  return best;
}

}  // namespace

SweepSpec SweepSpec::parse(const Json& doc) {
  if (!doc.is_object()) sweep_fail("$: expected object");
  SweepSpec s;
  for (const auto& [key, val] : doc.members()) {
    if (key == "mode") {
      if (!val.is_string()) sweep_fail("$.mode: expected string");
      s.mode = val.as_string();
    } else if (key == "axes") {
      if (!val.is_array()) sweep_fail("$.axes: expected array");
      std::size_t i = 0;
      for (const Json& ax : val.elements()) {
        const std::string at = "$.axes[" + std::to_string(i++) + "]";
        if (!ax.is_object()) sweep_fail(at + ": expected object");
        SweepAxis axis;
        for (const auto& [ak, av] : ax.members()) {
          if (ak == "path") {
            if (!av.is_string()) sweep_fail(at + ".path: expected string");
            axis.path = av.as_string();
          } else if (ak == "values") {
            if (!av.is_array()) sweep_fail(at + ".values: expected array");
            axis.values = av.elements();
          } else {
            sweep_fail(at + "." + ak + ": unknown key (known keys: path, values)");
          }
        }
        if (axis.path.empty()) sweep_fail(at + ": missing \"path\"");
        if (axis.values.empty()) sweep_fail(at + " (\"" + axis.path + "\"): empty values");
        s.axes.push_back(std::move(axis));
      }
    } else {
      sweep_fail("$." + key + ": unknown key (known keys: axes, mode)");
    }
  }
  if (s.mode != "cross" && s.mode != "zip")
    sweep_fail("$.mode \"" + s.mode + "\" unknown (known: cross, zip)");
  if (s.axes.empty()) sweep_fail("$.axes: no axes");
  return s;
}

SweepSpec load_sweep_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw JsonError(path + ": cannot open sweep file");
  std::ostringstream ss;
  ss << in.rdbuf();
  try {
    return SweepSpec::parse(Json::parse(ss.str()));
  } catch (const JsonError& e) {
    throw JsonError(path + ": " + e.what());
  }
}

std::vector<Variant> EnsembleEngine::expand(const Json& base, const SweepSpec& sweep) {
  const std::size_t na = sweep.axes.size();
  // enumerate the per-variant value selections
  std::vector<std::vector<std::size_t>> picks;
  if (sweep.mode == "zip") {
    const std::size_t n = sweep.axes[0].values.size();
    for (const auto& ax : sweep.axes)
      if (ax.values.size() != n)
        sweep_fail("zip axes must have equal lengths (\"" + ax.path + "\" has " +
                   std::to_string(ax.values.size()) + ", expected " + std::to_string(n) + ")");
    for (std::size_t i = 0; i < n; ++i) picks.emplace_back(na, i);
  } else {
    std::vector<std::size_t> cur(na, 0);
    while (true) {
      picks.push_back(cur);
      std::size_t a = na;
      while (a > 0) {
        --a;
        if (++cur[a] < sweep.axes[a].values.size()) break;
        cur[a] = 0;
        if (a == 0) {
          a = static_cast<std::size_t>(-1);
          break;
        }
      }
      if (a == static_cast<std::size_t>(-1)) break;
    }
  }

  // per-axis numeric ranges for coordinate normalization
  std::vector<double> lo(na, 0.0), hi(na, 0.0);
  for (std::size_t a = 0; a < na; ++a) {
    bool first = true;
    for (const Json& v : sweep.axes[a].values) {
      if (!v.is_number()) continue;
      const double x = v.as_number();
      if (first || x < lo[a]) lo[a] = first ? x : std::min(lo[a], x);
      if (first || x > hi[a]) hi[a] = first ? x : std::max(hi[a], x);
      first = false;
    }
  }

  const std::string base_name = [&] {
    const Json* n = base.find("name");
    return n && n->is_string() ? n->as_string() : std::string("ensemble");
  }();

  std::vector<Variant> out;
  for (std::size_t i = 0; i < picks.size(); ++i) {
    Variant v;
    v.index = i;
    v.doc = base;
    v.coords.assign(na, 0.0);
    std::string suffix;
    for (std::size_t a = 0; a < na; ++a) {
      const Json& val = sweep.axes[a].values[picks[i][a]];
      require_path(v.doc, sweep.axes[a].path) = val;
      if (val.is_number() && hi[a] > lo[a])
        v.coords[a] = (val.as_number() - lo[a]) / (hi[a] - lo[a]);
      suffix += (suffix.empty() ? "" : ",") + sweep.axes[a].path + "=" + value_suffix(val);
    }
    v.name = base_name + "[" + suffix + "]";
    v.doc.set("name", v.name);
    // each variant parses + validates up front, so a bad sweep value fails
    // before any rank starts computing
    parse_scenario(v.doc);
    out.push_back(std::move(v));
  }
  return out;
}

EnsembleEngine::EnsembleEngine(Json base_doc, SweepSpec sweep, EnsembleOptions opts)
    : base_(std::move(base_doc)), sweep_(std::move(sweep)), opts_(std::move(opts)) {}

VariantResult EnsembleEngine::run_variant(const Variant& v, SharedTables& tables,
                                          const std::vector<std::uint8_t>& donor_blob,
                                          std::int64_t donor_index,
                                          std::vector<std::uint8_t>* warm_out) {
  VariantResult r;
  r.index = v.index;
  const double t0 = now_seconds();
  try {
    Scenario sc = parse_scenario(v.doc);
    RunnerOptions ro;
    ro.fault_plan = opts_.fault_plan;
    ro.fault_id = static_cast<int>(v.index);
    Runner runner(std::move(sc), ro, &tables);
    if (opts_.warm != WarmMode::Off && !donor_blob.empty())
      runner.set_warm_start(opts_.warm, donor_blob);
    const RunResult rr = runner.run();
    r.ok = true;
    r.digest = rr.digest;
    r.cg_iters = rr.cg_iters;
    r.develop_steps = rr.develop_steps;
    r.warm_source = runner.warm_applied() ? donor_index : -1;
    if (warm_out) *warm_out = runner.warm_state();
  } catch (const std::exception& e) {
    r.ok = false;
    r.error = e.what();
    if (warm_out) warm_out->clear();
  }
  r.seconds = now_seconds() - t0;
  return r;
}

EnsembleReport EnsembleEngine::run() {
  const auto variants = expand(base_, sweep_);
  const double t0 = now_seconds();
  EnsembleReport rep =
      opts_.pool > 1 ? run_pool(variants) : run_serial(variants);
  rep.wall_seconds = now_seconds() - t0;
  for (const auto& r : rep.variants) {
    if (r.ok) {
      ++rep.completed;
      rep.cg_total += r.cg_iters;
      rep.develop_total += r.develop_steps;
    } else {
      ++rep.failed;
    }
  }
  return rep;
}

EnsembleReport EnsembleEngine::run_serial(const std::vector<Variant>& variants) {
  EnsembleReport rep;
  rep.variants.resize(variants.size());
  SharedTables tables;
  std::map<std::size_t, std::vector<std::uint8_t>> warm_blobs;
  for (const auto& v : variants) {
    std::vector<std::uint8_t> donor;
    std::int64_t donor_idx = -1;
    if (opts_.warm != WarmMode::Off) {
      donor_idx = nearest_donor(variants, warm_blobs, v);
      if (donor_idx >= 0) donor = warm_blobs[static_cast<std::size_t>(donor_idx)];
    }
    std::vector<std::uint8_t> warm_out;
    VariantResult r = run_variant(v, tables, donor, donor_idx, &warm_out);
    if (opts_.verbose) {
      if (r.ok)
        std::printf("ensemble: %s -> digest %08x, cg %llu, develop %llu%s\n", v.name.c_str(),
                    r.digest, static_cast<unsigned long long>(r.cg_iters),
                    static_cast<unsigned long long>(r.develop_steps),
                    r.warm_source >= 0 ? " (warm)" : "");
      else
        std::printf("ensemble: %s -> FAILED: %s\n", v.name.c_str(), r.error.c_str());
    }
    if (r.ok && opts_.warm != WarmMode::Off) warm_blobs[v.index] = std::move(warm_out);
    rep.variants[v.index] = std::move(r);
  }
  rep.shared_hits = tables.hits();
  rep.shared_misses = tables.misses();
  return rep;
}

EnsembleReport EnsembleEngine::run_pool(const std::vector<Variant>& variants) {
  EnsembleReport rep;
  rep.variants.resize(variants.size());

  // Fibers need room for a whole solver stack on their stacks; keep the
  // env-selected backend but raise the floor.
  xmp::SchedOptions sched = xmp::SchedOptions::from_env();
  if (sched.stack_kb < 4096) sched.stack_kb = 4096;

  xmp::run(
      opts_.pool,
      [&](xmp::Comm& comm) {
        if (comm.rank() == 0) {
          // dispatcher: pull-based work distribution — whichever worker asks
          // first gets the next variant (async work stealing).
          std::map<std::size_t, std::vector<std::uint8_t>> warm_blobs;
          std::map<int, std::pair<std::uint64_t, std::uint64_t>> tbl_stats;
          std::size_t next = 0;
          int active = comm.size() - 1;
          while (active > 0) {
            int src = xmp::kAnySource;
            auto msg = comm.recv_bytes(xmp::kAnySource, kWorkerMsgTag, &src);
            resilience::BlobReader mr(msg);
            if (mr.pod<std::uint8_t>() != 0) {  // carries a result
              std::vector<std::uint8_t> warm_blob;
              std::uint64_t th = 0, tm = 0;
              VariantResult r = unpack_result(mr, warm_blob, th, tm);
              r.rank = src;
              tbl_stats[src] = {th, tm};
              if (opts_.verbose) {
                const auto& v = variants[r.index];
                if (r.ok)
                  std::printf("ensemble[rank %d]: %s -> digest %08x, cg %llu%s\n", src,
                              v.name.c_str(), r.digest,
                              static_cast<unsigned long long>(r.cg_iters),
                              r.warm_source >= 0 ? " (warm)" : "");
                else
                  std::printf("ensemble[rank %d]: %s -> FAILED: %s\n", src, v.name.c_str(),
                              r.error.c_str());
              }
              if (r.ok && opts_.warm != WarmMode::Off) warm_blobs[r.index] = std::move(warm_blob);
              rep.variants[r.index] = std::move(r);
            }
            mr.expect_end();
            resilience::BlobWriter aw;
            if (next < variants.size()) {
              const Variant& v = variants[next];
              std::int64_t donor_idx = -1;
              if (opts_.warm != WarmMode::Off) donor_idx = nearest_donor(variants, warm_blobs, v);
              aw.pod(static_cast<std::int64_t>(next));
              aw.pod(donor_idx);
              if (donor_idx >= 0)
                aw.vec(warm_blobs[static_cast<std::size_t>(donor_idx)]);
              else
                aw.vec(std::vector<std::uint8_t>{});
              ++next;
            } else {
              aw.pod(static_cast<std::int64_t>(-1));
              aw.pod(static_cast<std::int64_t>(-1));
              aw.vec(std::vector<std::uint8_t>{});
              --active;
            }
            const auto bytes = aw.take();
            comm.send_bytes(src, kAssignTag, bytes.data(), bytes.size());
          }
          for (const auto& [rank, hm] : tbl_stats) {
            rep.shared_hits += hm.first;
            rep.shared_misses += hm.second;
          }
        } else {
          // worker: hello, then run assignments until told to stop
          SharedTables tables;
          resilience::BlobWriter hello;
          hello.pod(static_cast<std::uint8_t>(0));
          const auto hb = hello.take();
          comm.send_bytes(0, kWorkerMsgTag, hb.data(), hb.size());
          while (true) {
            auto msg = comm.recv_bytes(0, kAssignTag);
            resilience::BlobReader ar(msg);
            const auto idx = ar.pod<std::int64_t>();
            const auto donor_idx = ar.pod<std::int64_t>();
            const auto donor = ar.vec<std::uint8_t>();
            ar.expect_end();
            if (idx < 0) break;
            std::vector<std::uint8_t> warm_out;
            VariantResult r = run_variant(variants[static_cast<std::size_t>(idx)], tables, donor,
                                          donor_idx, &warm_out);
            resilience::BlobWriter w;
            w.pod(static_cast<std::uint8_t>(1));
            pack_result(w, r, warm_out, tables.hits(), tables.misses());
            const auto rb = w.take();
            comm.send_bytes(0, kWorkerMsgTag, rb.data(), rb.size());
          }
        }
      },
      nullptr, xmp::CheckOptions::from_env(), sched);
  return rep;
}

}  // namespace scenario
