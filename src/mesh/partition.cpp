#include "mesh/partition.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <queue>
#include <random>
#include <stdexcept>

namespace mesh {

namespace {

/// Bisect the sub-graph formed by `verts` into two sides with target load
/// fractions fa : (1-fa). Returns side assignment (0/1) per position in
/// `verts`.
std::vector<int> bisect(const ElementGraph& g, const std::vector<std::size_t>& verts,
                        double fa, const PartitionOptions& opt, std::mt19937& rng) {
  const std::size_t n = verts.size();
  std::vector<int> side(n, 1);
  if (n == 0) return side;

  // position of each vertex inside this sub-problem (SIZE_MAX = not in it)
  std::vector<std::size_t> pos(g.size(), static_cast<std::size_t>(-1));
  for (std::size_t i = 0; i < n; ++i) pos[verts[i]] = i;

  double total = 0.0;
  for (std::size_t v : verts) total += g.vertex_weight(v);
  const double target_a = total * fa;

  // --- greedy BFS growth of side 0 from a pseudo-peripheral seed ---
  std::uniform_int_distribution<std::size_t> pick(0, n - 1);
  std::size_t seed = pick(rng);
  // two BFS sweeps push the seed towards the graph periphery
  for (int sweep = 0; sweep < 2; ++sweep) {
    std::vector<int> dist(n, -1);
    std::queue<std::size_t> q;
    dist[seed] = 0;
    q.push(seed);
    std::size_t far = seed;
    while (!q.empty()) {
      const std::size_t u = q.front();
      q.pop();
      far = u;
      for (const auto& e : g.neighbors(verts[u])) {
        const std::size_t p = pos[e.to];
        if (p == static_cast<std::size_t>(-1) || dist[p] >= 0) continue;
        dist[p] = dist[u] + 1;
        q.push(p);
      }
    }
    seed = far;
  }

  {
    std::vector<char> in_a(n, 0);
    // grow side A by best-gain frontier expansion (cheap Kernighan-style
    // greedy): repeatedly absorb the frontier vertex with the most
    // connectivity into A.
    std::priority_queue<std::pair<double, std::size_t>> frontier;
    double load_a = 0.0;
    frontier.push({0.0, seed});
    std::vector<char> queued(n, 0);
    queued[seed] = 1;
    while (!frontier.empty() && load_a < target_a) {
      const auto [gain, u] = frontier.top();
      frontier.pop();
      if (in_a[u]) continue;
      in_a[u] = 1;
      load_a += g.vertex_weight(verts[u]);
      side[u] = 0;
      for (const auto& e : g.neighbors(verts[u])) {
        const std::size_t p = pos[e.to];
        if (p == static_cast<std::size_t>(-1) || in_a[p]) continue;
        // gain = connectivity to A (approximate; recomputation on pop is
        // skipped — greedy quality is restored by the FM pass below)
        frontier.push({e.weight, p});
        queued[p] = 1;
      }
      // if the frontier dries up but A is underweight (disconnected graph),
      // seed a new component
      if (frontier.empty() && load_a < target_a) {
        for (std::size_t i = 0; i < n; ++i)
          if (!in_a[i]) {
            frontier.push({0.0, i});
            break;
          }
      }
    }
  }

  // --- FM-style boundary refinement ---
  auto side_load = [&](int s) {
    double l = 0.0;
    for (std::size_t i = 0; i < n; ++i)
      if (side[i] == s) l += g.vertex_weight(verts[i]);
    return l;
  };
  double load_a = side_load(0);
  const double max_a = target_a * opt.imbalance_tolerance;
  const double min_a = total - (total - target_a) * opt.imbalance_tolerance;

  for (int pass = 0; pass < opt.refinement_passes; ++pass) {
    bool moved = false;
    for (std::size_t i = 0; i < n; ++i) {
      // gain of flipping i = (cut weight to own side) - (cut weight to other)
      double to_own = 0.0, to_other = 0.0;
      bool boundary = false;
      for (const auto& e : g.neighbors(verts[i])) {
        const std::size_t p = pos[e.to];
        if (p == static_cast<std::size_t>(-1)) continue;
        if (side[p] == side[i])
          to_own += e.weight;
        else {
          to_other += e.weight;
          boundary = true;
        }
      }
      if (!boundary) continue;
      const double gain = to_other - to_own;
      if (gain <= 0.0) continue;
      const double w = g.vertex_weight(verts[i]);
      const double new_load_a = side[i] == 0 ? load_a - w : load_a + w;
      if (new_load_a > max_a || new_load_a < min_a) continue;
      side[i] = 1 - side[i];
      load_a = new_load_a;
      moved = true;
    }
    if (!moved) break;
  }

  // Strict rebalance: recursive bisection compounds per-level imbalance
  // multiplicatively, so pull each side back inside its window by moving
  // the cheapest boundary vertices even at negative cut gain.
  for (std::size_t guard = 0; guard < n && (load_a > max_a || load_a < min_a); ++guard) {
    const int from = load_a > max_a ? 0 : 1;
    double best_gain = -1e300;
    std::size_t best = static_cast<std::size_t>(-1);
    for (std::size_t i = 0; i < n; ++i) {
      if (side[i] != from) continue;
      double to_own = 0.0, to_other = 0.0;
      bool boundary = false;
      for (const auto& e : g.neighbors(verts[i])) {
        const std::size_t p = pos[e.to];
        if (p == static_cast<std::size_t>(-1)) continue;
        if (side[p] == side[i])
          to_own += e.weight;
        else {
          to_other += e.weight;
          boundary = true;
        }
      }
      const double gain = boundary ? to_other - to_own : -to_own;
      if (gain > best_gain) {
        best_gain = gain;
        best = i;
      }
    }
    if (best == static_cast<std::size_t>(-1)) break;
    const double w = g.vertex_weight(verts[best]);
    side[best] = 1 - from;
    load_a += from == 0 ? -w : w;
  }
  return side;
}

void recurse(const ElementGraph& g, std::vector<std::size_t> verts, int nparts, int first_part,
             const PartitionOptions& opt, std::mt19937& rng, std::vector<int>& out) {
  if (nparts == 1) {
    for (std::size_t v : verts) out[v] = first_part;
    return;
  }
  const int na = nparts / 2;
  const double fa = static_cast<double>(na) / nparts;
  auto side = bisect(g, verts, fa, opt, rng);
  std::vector<std::size_t> va, vb;
  for (std::size_t i = 0; i < verts.size(); ++i)
    (side[i] == 0 ? va : vb).push_back(verts[i]);
  recurse(g, std::move(va), na, first_part, opt, rng, out);
  recurse(g, std::move(vb), nparts - na, first_part + na, opt, rng, out);
}

}  // namespace

Partition partition_graph(const ElementGraph& g, int nparts, const PartitionOptions& opt) {
  if (nparts <= 0) throw std::invalid_argument("partition_graph: nparts must be positive");
  Partition p;
  p.nparts = nparts;
  p.part.assign(g.size(), 0);
  if (nparts == 1 || g.size() == 0) return p;
  std::mt19937 rng(opt.seed);
  std::vector<std::size_t> all(g.size());
  for (std::size_t i = 0; i < g.size(); ++i) all[i] = i;
  recurse(g, std::move(all), nparts, 0, opt, rng, p.part);
  return p;
}

PartitionQuality evaluate_partition(const ElementGraph& g, const Partition& p) {
  PartitionQuality q;
  std::vector<double> load(static_cast<std::size_t>(p.nparts), 0.0);
  std::vector<double> comm(static_cast<std::size_t>(p.nparts), 0.0);
  for (std::size_t v = 0; v < g.size(); ++v) {
    load[static_cast<std::size_t>(p.part[v])] += g.vertex_weight(v);
    for (const auto& e : g.neighbors(v)) {
      if (p.part[e.to] == p.part[v]) continue;
      q.edge_cut += e.weight;  // counted twice, halved below
      comm[static_cast<std::size_t>(p.part[v])] += e.weight;
    }
  }
  q.edge_cut /= 2.0;
  for (double l : load) q.max_part_load = std::max(q.max_part_load, l);
  const double ideal = g.total_vertex_weight() / p.nparts;
  q.imbalance = ideal > 0.0 ? q.max_part_load / ideal : 0.0;
  for (double c : comm) {
    q.total_comm_volume += c;
    q.max_part_comm = std::max(q.max_part_comm, c);
  }
  return q;
}

std::vector<PartPairVolume> comm_volumes(const ElementGraph& g, const Partition& p) {
  std::map<std::pair<int, int>, double> acc;
  for (std::size_t v = 0; v < g.size(); ++v)
    for (const auto& e : g.neighbors(v)) {
      const int a = p.part[v], b = p.part[e.to];
      if (a >= b) continue;  // each undirected pair once
      acc[{a, b}] += e.weight;
    }
  std::vector<PartPairVolume> out;
  out.reserve(acc.size());
  for (const auto& [k, w] : acc) out.push_back({k.first, k.second, w});
  return out;
}

}  // namespace mesh
