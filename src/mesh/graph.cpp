#include "mesh/graph.hpp"

#include <stdexcept>

namespace mesh {

void ElementGraph::add_edge(std::size_t u, std::size_t v, double w) {
  if (u >= size() || v >= size()) throw std::out_of_range("ElementGraph::add_edge");
  if (u == v) throw std::invalid_argument("ElementGraph::add_edge: self loop");
  for (auto& e : adj_[u])
    if (e.to == v) {
      e.weight += w;
      for (auto& r : adj_[v])
        if (r.to == u) r.weight += w;
      return;
    }
  adj_[u].push_back({v, w});
  adj_[v].push_back({u, w});
}

double ElementGraph::total_vertex_weight() const {
  double s = 0.0;
  for (double w : vwgt_) s += w;
  return s;
}

std::size_t ElementGraph::num_edges() const {
  std::size_t s = 0;
  for (const auto& l : adj_) s += l.size();
  return s / 2;
}

ElementGraph quad_grid_graph(std::size_t nx, std::size_t ny, int P, AdjacencyPolicy policy) {
  ElementGraph g(nx * ny);
  auto id = [nx](std::size_t i, std::size_t j) { return j * nx + i; };
  const double face_w = static_cast<double>(P + 1);
  for (std::size_t j = 0; j < ny; ++j) {
    for (std::size_t i = 0; i < nx; ++i) {
      if (i + 1 < nx)
        g.add_edge(id(i, j), id(i + 1, j), policy == AdjacencyPolicy::FaceOnly ? 1.0 : face_w);
      if (j + 1 < ny)
        g.add_edge(id(i, j), id(i, j + 1), policy == AdjacencyPolicy::FaceOnly ? 1.0 : face_w);
      if (policy == AdjacencyPolicy::FullDofWeighted) {
        if (i + 1 < nx && j + 1 < ny) g.add_edge(id(i, j), id(i + 1, j + 1), 1.0);
        if (i >= 1 && j + 1 < ny) g.add_edge(id(i, j), id(i - 1, j + 1), 1.0);
      }
    }
  }
  return g;
}

namespace {

/// Shared helper for hex-style grids: dx,dy,dz in {-1,0,1} neighbourhood;
/// the caller maps (i,j,k)->vertex id and decides periodicity.
/// `z_face_factor` scales the dof weight of z-direction faces (FullDofWeighted
/// only; FaceOnly always uses uniform weights, blind to heterogeneity).
template <class IdFn, class WrapFn>
ElementGraph hex_like_graph(std::size_t nx, std::size_t ny, std::size_t nz, int P,
                            AdjacencyPolicy policy, IdFn id, WrapFn wrap_x,
                            double z_face_factor = 1.0) {
  ElementGraph g(nx * ny * nz);
  const double face_w = static_cast<double>((P + 1) * (P + 1));
  const double edge_w = static_cast<double>(P + 1);
  for (std::size_t k = 0; k < nz; ++k)
    for (std::size_t j = 0; j < ny; ++j)
      for (std::size_t i = 0; i < nx; ++i)
        for (int dz = -1; dz <= 1; ++dz)
          for (int dy = -1; dy <= 1; ++dy)
            for (int dx = -1; dx <= 1; ++dx) {
              if (dx == 0 && dy == 0 && dz == 0) continue;
              const int order = std::abs(dx) + std::abs(dy) + std::abs(dz);
              if (policy == AdjacencyPolicy::FaceOnly && order != 1) continue;
              const long ii = wrap_x(static_cast<long>(i) + dx);
              const long jj = static_cast<long>(j) + dy;
              const long kk = static_cast<long>(k) + dz;
              if (ii < 0 || jj < 0 || kk < 0 || ii >= static_cast<long>(nx) ||
                  jj >= static_cast<long>(ny) || kk >= static_cast<long>(nz))
                continue;
              const std::size_t u = id(i, j, k);
              const std::size_t v = id(static_cast<std::size_t>(ii),
                                       static_cast<std::size_t>(jj),
                                       static_cast<std::size_t>(kk));
              if (u >= v) continue;  // add each undirected edge once
              double w;
              if (policy == AdjacencyPolicy::FaceOnly) {
                w = face_w;  // uniform: the partitioner sees only face counts
              } else {
                w = order == 1 ? face_w : order == 2 ? edge_w : 1.0;
                if (order == 1 && dz != 0) w *= z_face_factor;
              }
              g.add_edge(u, v, w);
            }
  return g;
}

}  // namespace

ElementGraph hex_grid_graph(std::size_t nx, std::size_t ny, std::size_t nz, int P,
                            AdjacencyPolicy policy) {
  auto id = [nx, ny](std::size_t i, std::size_t j, std::size_t k) {
    return (k * ny + j) * nx + i;
  };
  auto no_wrap = [](long i) { return i; };
  return hex_like_graph(nx, ny, nz, P, policy, id, no_wrap);
}

ElementGraph tube_graph(std::size_t n_axial, std::size_t n_circ, std::size_t n_radial, int P,
                        AdjacencyPolicy policy, double radial_face_factor) {
  // Layout: i = circumferential (periodic), j = axial, k = radial.
  const std::size_t nx = n_circ, ny = n_axial, nz = n_radial;
  auto id = [nx, ny](std::size_t i, std::size_t j, std::size_t k) {
    return (k * ny + j) * nx + i;
  };
  auto wrap = [nx](long i) {
    const long n = static_cast<long>(nx);
    return ((i % n) + n) % n;
  };
  return hex_like_graph(nx, ny, nz, P, policy, id, wrap, radial_face_factor);
}

}  // namespace mesh
