#pragma once
// Structured quadrilateral mesh with an active-element mask.
//
// The paper's continuum domains are patient-specific artery patches; our
// laptop-scale stand-ins are unions of axis-aligned rectangles carved out of
// a structured grid (channel, driven cavity, channel with an aneurysm-like
// side cavity). Masking keeps the SEM assembly simple (affine elements) while
// still giving non-trivial geometry and boundary tagging.

#include <cstddef>
#include <functional>
#include <map>
#include <vector>

namespace mesh {

/// Element-local side numbering (counter-clockwise).
enum class Side : int { South = 0, East = 1, North = 2, West = 3 };

/// Built-in boundary tags; anything >= kUserTagBase is caller-defined
/// (e.g. patch-interface ids).
inline constexpr int kWall = 0;
inline constexpr int kInlet = 1;
inline constexpr int kOutlet = 2;
inline constexpr int kUserTagBase = 100;

struct BoundaryFace {
  std::size_t cell;  ///< compact active-cell index
  Side side;
  int tag = kWall;
  double mid_x = 0.0, mid_y = 0.0;  ///< face midpoint (for retagging/BC eval)
};

class QuadMesh {
public:
  /// Uniform grid over [x0, x0+Lx] x [y0, y0+Ly], all elements active.
  QuadMesh(double x0, double y0, double Lx, double Ly, std::size_t nx, std::size_t ny);

  /// Deactivate grid cells selected by the predicate (grid i,j coordinates).
  void deactivate_if(const std::function<bool(std::size_t i, std::size_t j)>& pred);

  std::size_t grid_nx() const { return nx_; }
  std::size_t grid_ny() const { return ny_; }
  double dx() const { return dx_; }
  double dy() const { return dy_; }
  double x0() const { return x0_; }
  double y0() const { return y0_; }

  bool is_active(std::size_t i, std::size_t j) const { return active_[j * nx_ + i] != 0; }
  std::size_t num_cells() const { return cells_.size(); }

  /// Compact index of active cell (i, j); throws if inactive.
  std::size_t cell_index(std::size_t i, std::size_t j) const;
  /// Grid coordinates of compact cell c.
  std::pair<std::size_t, std::size_t> cell_coords(std::size_t c) const { return cells_[c]; }

  /// Lower-left corner of compact cell c.
  std::pair<double, double> cell_origin(std::size_t c) const;

  /// Compact index of the face-neighbour of c across `s`, or -1 if the
  /// neighbour is missing/inactive.
  long neighbor(std::size_t c, Side s) const;

  /// All exposed faces (domain boundary or bordering an inactive cell),
  /// with current tags. Default tag is kWall.
  std::vector<BoundaryFace> boundary_faces() const;

  /// Re-tag boundary faces: fn receives each face (tag = current value) and
  /// returns the new tag.
  void retag_boundary(const std::function<int(const BoundaryFace&)>& fn);

  // --- common scenario builders ---

  /// Straight channel [0,L] x [0,H]; inlet x=0, outlet x=L, walls elsewhere.
  static QuadMesh channel(double L, double H, std::size_t nx, std::size_t ny);

  /// Channel with a rectangular aneurysm-like cavity bulging from the top
  /// wall over x in [cav_x0, cav_x1], extending ~cav_depth above the channel
  /// (rounded to whole element rows of size H/ny). Inlet x=0, outlet x=L,
  /// walls elsewhere (including the cavity).
  static QuadMesh channel_with_cavity(double L, double H, double cav_x0, double cav_x1,
                                      double cav_depth, std::size_t nx, std::size_t ny);

  /// Lid-driven cavity [0,1]^2 with the moving lid tagged kInlet (velocity
  /// BC carries the lid speed).
  static QuadMesh lid_cavity(std::size_t n);

private:
  void rebuild_index();
  int face_tag(std::size_t c, Side s) const;

  double x0_, y0_, dx_, dy_;
  std::size_t nx_, ny_;
  std::vector<char> active_;
  std::vector<std::pair<std::size_t, std::size_t>> cells_;  // compact -> (i,j)
  std::vector<std::size_t> compact_;                        // grid -> compact or npos
  std::map<std::pair<std::size_t, int>, int> tags_;         // (compact cell, side) -> tag
};

}  // namespace mesh
