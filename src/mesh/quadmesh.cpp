#include "mesh/quadmesh.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace mesh {

namespace {
constexpr std::size_t kNpos = std::numeric_limits<std::size_t>::max();
}

QuadMesh::QuadMesh(double x0, double y0, double Lx, double Ly, std::size_t nx, std::size_t ny)
    : x0_(x0), y0_(y0), dx_(Lx / static_cast<double>(nx)), dy_(Ly / static_cast<double>(ny)),
      nx_(nx), ny_(ny), active_(nx * ny, 1) {
  if (nx == 0 || ny == 0 || Lx <= 0.0 || Ly <= 0.0)
    throw std::invalid_argument("QuadMesh: bad extents");
  rebuild_index();
}

void QuadMesh::deactivate_if(const std::function<bool(std::size_t, std::size_t)>& pred) {
  for (std::size_t j = 0; j < ny_; ++j)
    for (std::size_t i = 0; i < nx_; ++i)
      if (pred(i, j)) active_[j * nx_ + i] = 0;
  tags_.clear();  // compact indices change; boundary must be retagged
  rebuild_index();
}

void QuadMesh::rebuild_index() {
  cells_.clear();
  compact_.assign(nx_ * ny_, kNpos);
  for (std::size_t j = 0; j < ny_; ++j)
    for (std::size_t i = 0; i < nx_; ++i)
      if (active_[j * nx_ + i]) {
        compact_[j * nx_ + i] = cells_.size();
        cells_.emplace_back(i, j);
      }
}

std::size_t QuadMesh::cell_index(std::size_t i, std::size_t j) const {
  const std::size_t c = compact_[j * nx_ + i];
  if (c == kNpos) throw std::out_of_range("QuadMesh::cell_index: inactive cell");
  return c;
}

std::pair<double, double> QuadMesh::cell_origin(std::size_t c) const {
  const auto [i, j] = cells_[c];
  return {x0_ + static_cast<double>(i) * dx_, y0_ + static_cast<double>(j) * dy_};
}

long QuadMesh::neighbor(std::size_t c, Side s) const {
  const auto [i, j] = cells_[c];
  long ii = static_cast<long>(i), jj = static_cast<long>(j);
  switch (s) {
    case Side::South: jj -= 1; break;
    case Side::East: ii += 1; break;
    case Side::North: jj += 1; break;
    case Side::West: ii -= 1; break;
  }
  if (ii < 0 || jj < 0 || ii >= static_cast<long>(nx_) || jj >= static_cast<long>(ny_)) return -1;
  const std::size_t n = compact_[static_cast<std::size_t>(jj) * nx_ + static_cast<std::size_t>(ii)];
  return n == kNpos ? -1 : static_cast<long>(n);
}

int QuadMesh::face_tag(std::size_t c, Side s) const {
  auto it = tags_.find({c, static_cast<int>(s)});
  return it == tags_.end() ? kWall : it->second;
}

std::vector<BoundaryFace> QuadMesh::boundary_faces() const {
  std::vector<BoundaryFace> out;
  for (std::size_t c = 0; c < cells_.size(); ++c) {
    const auto [ox, oy] = cell_origin(c);
    for (int si = 0; si < 4; ++si) {
      const Side s = static_cast<Side>(si);
      if (neighbor(c, s) >= 0) continue;
      BoundaryFace f;
      f.cell = c;
      f.side = s;
      f.tag = face_tag(c, s);
      switch (s) {
        case Side::South: f.mid_x = ox + 0.5 * dx_; f.mid_y = oy; break;
        case Side::North: f.mid_x = ox + 0.5 * dx_; f.mid_y = oy + dy_; break;
        case Side::West: f.mid_x = ox; f.mid_y = oy + 0.5 * dy_; break;
        case Side::East: f.mid_x = ox + dx_; f.mid_y = oy + 0.5 * dy_; break;
      }
      out.push_back(f);
    }
  }
  return out;
}

void QuadMesh::retag_boundary(const std::function<int(const BoundaryFace&)>& fn) {
  for (const auto& f : boundary_faces()) {
    const int t = fn(f);
    if (t != f.tag) tags_[{f.cell, static_cast<int>(f.side)}] = t;
  }
}

QuadMesh QuadMesh::channel(double L, double H, std::size_t nx, std::size_t ny) {
  QuadMesh m(0.0, 0.0, L, H, nx, ny);
  m.retag_boundary([&](const BoundaryFace& f) {
    if (f.side == Side::West) return kInlet;
    if (f.side == Side::East) return kOutlet;
    return kWall;
  });
  return m;
}

QuadMesh QuadMesh::channel_with_cavity(double L, double H, double cav_x0, double cav_x1,
                                       double cav_depth, std::size_t nx, std::size_t ny) {
  const double dy = H / static_cast<double>(ny);
  const std::size_t ny_cavity =
      std::max<std::size_t>(1, static_cast<std::size_t>(std::lround(cav_depth / dy)));
  const double Hy = H + static_cast<double>(ny_cavity) * dy;
  const std::size_t ny_total = ny + ny_cavity;
  QuadMesh m(0.0, 0.0, L, Hy, nx, ny_total);
  // Deactivate everything above the channel except the cavity window.
  m.deactivate_if([&](std::size_t i, std::size_t j) {
    if (j < ny) return false;  // channel rows stay
    const double xc = (static_cast<double>(i) + 0.5) * m.dx_;
    return !(xc > cav_x0 && xc < cav_x1);
  });
  m.retag_boundary([&](const BoundaryFace& f) {
    const double eps = 1e-12;
    if (f.side == Side::West && std::fabs(f.mid_x - 0.0) < eps && f.mid_y < H) return kInlet;
    if (f.side == Side::East && std::fabs(f.mid_x - L) < eps && f.mid_y < H) return kOutlet;
    return kWall;
  });
  return m;
}

QuadMesh QuadMesh::lid_cavity(std::size_t n) {
  QuadMesh m(0.0, 0.0, 1.0, 1.0, n, n);
  m.retag_boundary([&](const BoundaryFace& f) {
    return f.side == Side::North ? kInlet : kWall;
  });
  return m;
}

}  // namespace mesh
