#pragma once
// Graph partitioner standing in for METIS_PartGraphRecursive: recursive
// bisection (greedy BFS region growing + boundary Fiduccia–Mattheyses-style
// refinement) honouring vertex and edge weights. Quality metrics and the
// partition-to-communication-schedule conversion used by the Table 2 bench
// live here too.

#include <cstddef>
#include <vector>

#include "mesh/graph.hpp"

namespace mesh {

struct PartitionOptions {
  double imbalance_tolerance = 1.01;  ///< max part load / ideal load
  int refinement_passes = 8;
  unsigned seed = 42;                 ///< BFS seed-vertex selection
};

struct Partition {
  std::vector<int> part;  ///< vertex -> part id
  int nparts = 0;
};

Partition partition_graph(const ElementGraph& g, int nparts, const PartitionOptions& opt = {});

struct PartitionQuality {
  double edge_cut = 0.0;           ///< total weight of cut edges
  double max_part_load = 0.0;      ///< heaviest part (vertex weight)
  double imbalance = 0.0;          ///< max load / ideal load
  double total_comm_volume = 0.0;  ///< sum over parts of boundary weight
  double max_part_comm = 0.0;      ///< largest per-part boundary weight
};

PartitionQuality evaluate_partition(const ElementGraph& g, const Partition& p);

/// Per-pair communication volume implied by a partition: entry {a,b,w} means
/// parts a and b exchange halo data of weight w each step (w = sum of cut
/// edge weights between them). Feed to the machine cost model with
/// bytes-per-dof scaling.
struct PartPairVolume {
  int a = 0, b = 0;
  double weight = 0.0;
};
std::vector<PartPairVolume> comm_volumes(const ElementGraph& g, const Partition& p);

}  // namespace mesh
