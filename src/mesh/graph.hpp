#pragma once
// Weighted element-adjacency graphs — the partitioner's input.
//
// Paper Sec. 3.5: "In unstructured meshes a relatively high number
// (O(10)-O(100)) of adjacent elements sharing vertex, edge and face may
// exist ... To minimize the communication between partitions we provide to
// METIS the full adjacency list including elements sharing only one vertex.
// The weights associated with the links are scaled with respect to the
// number of shared degrees of freedom per link."
//
// Table 2 compares two policies: (a) only face-sharing neighbours, and
// (b) the full vertex/edge/face adjacency with dof-scaled weights. The
// builders here produce both for the same mesh so the bench can replay the
// resulting partitions' communication on the modeled machine.

#include <cstddef>
#include <vector>

namespace mesh {

/// Which element pairs become graph edges, and how they are weighted.
enum class AdjacencyPolicy {
  FaceOnly,        ///< edges only between face-sharing elements, unit weight
  FullDofWeighted, ///< also edge-/vertex-sharing neighbours; weight = shared dofs
};

struct GraphEdge {
  std::size_t to = 0;
  double weight = 1.0;  ///< proportional to shared degrees of freedom
};

/// Undirected weighted graph in adjacency-list form; every edge appears in
/// both endpoints' lists.
class ElementGraph {
public:
  explicit ElementGraph(std::size_t n = 0) : adj_(n), vwgt_(n, 1.0) {}

  std::size_t size() const { return adj_.size(); }
  const std::vector<GraphEdge>& neighbors(std::size_t v) const { return adj_[v]; }
  double vertex_weight(std::size_t v) const { return vwgt_[v]; }
  void set_vertex_weight(std::size_t v, double w) { vwgt_[v] = w; }

  /// Add the edge u-v (both directions). Duplicate edges accumulate weight.
  void add_edge(std::size_t u, std::size_t v, double w = 1.0);

  double total_vertex_weight() const;
  std::size_t num_edges() const;  ///< undirected count

private:
  std::vector<std::vector<GraphEdge>> adj_;
  std::vector<double> vwgt_;
};

/// Element graph of an nx x ny structured quad mesh with polynomial order P.
/// FaceOnly: 4-neighbourhood, unit weights. FullDofWeighted: 8-neighbourhood;
/// face links weighted (P+1) shared dofs, corner links weighted 1.
ElementGraph quad_grid_graph(std::size_t nx, std::size_t ny, int P, AdjacencyPolicy policy);

/// Element graph of an nx x ny x nz structured hex mesh with order P.
/// FaceOnly: 6-neighbourhood weighted (P+1)^2. FullDofWeighted: full
/// 26-neighbourhood; faces (P+1)^2, edges (P+1), vertices 1.
ElementGraph hex_grid_graph(std::size_t nx, std::size_t ny, std::size_t nz, int P,
                            AdjacencyPolicy policy);

/// Hex mesh wrapped into a tube (periodic in the circumferential direction):
/// a structured stand-in for the carotid-artery mesh of Table 2, with
/// `n_axial` x `n_circ` x `n_radial` elements.
///
/// `radial_face_factor` emulates the shared-dof heterogeneity of the paper's
/// unstructured boundary-layer meshes: faces between radially adjacent
/// elements carry `radial_face_factor` times more degrees of freedom. The
/// FaceOnly policy cannot see this (unit weights, as a face-count-only
/// partitioner would), while FullDofWeighted weights links by the true
/// shared-dof counts — exactly the distinction Table 2 measures.
ElementGraph tube_graph(std::size_t n_axial, std::size_t n_circ, std::size_t n_radial, int P,
                        AdjacencyPolicy policy, double radial_face_factor = 1.0);

}  // namespace mesh
