#pragma once
// Gauss–Lobatto–Legendre (GLL) machinery for spectral/hp elements:
// Legendre polynomials, GLL quadrature nodes/weights, the 1D collocation
// differentiation matrix, and Lagrange interpolation from GLL nodes to
// arbitrary points. This is the numerical core NEKTAR-style SEM builds on.

#include <cstddef>

#include "la/dense.hpp"
#include "la/vector.hpp"

namespace sem {

/// Legendre polynomial P_n(x) and its derivative, by recurrence.
double legendre(int n, double x);
double legendre_deriv(int n, double x);

/// GLL rule with P+1 points on [-1, 1] (P = polynomial order, P >= 1):
/// nodes are the roots of (1-x^2) P'_P(x), weights 2 / (P(P+1) [P_P(x_i)]^2).
struct GllRule {
  la::Vector nodes;    ///< size P+1, ascending, nodes[0] = -1, nodes[P] = 1
  la::Vector weights;  ///< size P+1
};
GllRule gll_rule(int P);

/// Collocation derivative matrix D: (du/dx)(x_i) = sum_j D(i,j) u(x_j) for a
/// degree-P polynomial sampled at the GLL nodes.
la::DenseMatrix gll_diff_matrix(const GllRule& rule);

/// Values of the P+1 Lagrange cardinal polynomials (through the GLL nodes)
/// at point x in [-1, 1]; row k of the result interpolates node k.
la::Vector lagrange_basis_at(const GllRule& rule, double x);

/// Interpolation matrix from GLL nodes to an arbitrary set of target points.
la::DenseMatrix interpolation_matrix(const GllRule& rule, const la::Vector& targets);

}  // namespace sem
