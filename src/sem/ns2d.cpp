#include "sem/ns2d.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <stdexcept>

#include "resilience/blob_la.hpp"
#include "telemetry/registry.hpp"

namespace sem {

NavierStokes2D::NavierStokes2D(const Discretization& disc, Params params)
    : d_(&disc), params_(std::move(params)), ops_(disc) {
  const std::size_t n = disc.num_nodes();
  u_.resize(n, 0.0);
  v_.resize(n, 0.0);
  p_.resize(n, 0.0);
}

void NavierStokes2D::set_velocity_bc(int tag, BcFn u_fn, BcFn v_fn) {
  if (pressure_solver_) throw std::logic_error("NS2D: BCs fixed after first step");
  auto& b = bc_[tag];
  b.natural = false;
  b.u_fn = std::move(u_fn);
  b.v_fn = std::move(v_fn);
  b.u_vals.reset();
  b.v_vals.reset();
}

void NavierStokes2D::set_velocity_bc_values(int tag, std::vector<double> u_vals,
                                            std::vector<double> v_vals) {
  const std::size_t expect = d_->boundary_nodes(tag).size();
  if (u_vals.size() != expect || v_vals.size() != expect)
    throw std::invalid_argument("NS2D: bc value count != boundary node count");
  auto& b = bc_[tag];
  if (pressure_solver_ && b.natural)
    throw std::logic_error("NS2D: cannot convert natural BC to Dirichlet after first step");
  b.natural = false;
  b.u_vals = std::move(u_vals);
  b.v_vals = std::move(v_vals);
}

void NavierStokes2D::set_natural_bc(int tag) {
  if (pressure_solver_) throw std::logic_error("NS2D: BCs fixed after first step");
  bc_[tag].natural = true;
}

void NavierStokes2D::set_body_force(ForceFn fx, ForceFn fy) {
  fx_ = std::move(fx);
  fy_ = std::move(fy);
}

void NavierStokes2D::set_initial(const BcFn& u0, const BcFn& v0) {
  for (std::size_t g = 0; g < d_->num_nodes(); ++g) {
    u_[g] = u0(d_->node_x(g), d_->node_y(g), 0.0);
    v_[g] = v0(d_->node_x(g), d_->node_y(g), 0.0);
  }
}

void NavierStokes2D::build_solvers() {
  // Every boundary tag not explicitly marked natural carries velocity
  // Dirichlet conditions (unregistered tags default to no-slip walls).
  velocity_dirichlet_tags_.clear();
  for (int tag : d_->boundary_tags()) {
    auto it = bc_.find(tag);
    const bool natural = it != bc_.end() && it->second.natural;
    if (!natural) velocity_dirichlet_tags_.push_back(tag);
  }
  velocity_solver_ = std::make_unique<HelmholtzSolver>(ops_, 1.0 / params_.dt, params_.nu,
                                                       velocity_dirichlet_tags_);
  if (params_.time_order >= 2)
    velocity_solver2_ = std::make_unique<HelmholtzSolver>(ops_, 1.5 / params_.dt, params_.nu,
                                                          velocity_dirichlet_tags_);
  // Pressure: Dirichlet 0 on the configured tags (outlets / natural
  // boundaries), Neumann elsewhere.
  std::vector<int> ptags;
  for (int tag : params_.pressure_dirichlet_tags)
    if (!d_->boundary_nodes(tag).empty()) ptags.push_back(tag);
  pressure_solver_ = std::make_unique<HelmholtzSolver>(ops_, 0.0, 1.0, ptags);
}

void NavierStokes2D::fill_bc_values(double t, la::Vector& ubc, la::Vector& vbc) const {
  const auto& dn = velocity_solver_->dirichlet_nodes();
  ubc.resize(dn.size(), 0.0);
  vbc.resize(dn.size(), 0.0);
  ubc.fill(0.0);
  vbc.fill(0.0);
  // node -> position in dn (dn is sorted)
  auto pos_of = [&dn](std::size_t g) {
    const auto it = std::lower_bound(dn.begin(), dn.end(), g);
    return it != dn.end() && *it == g ? static_cast<long>(it - dn.begin()) : -1L;
  };
  for (int tag : velocity_dirichlet_tags_) {
    const auto& nodes = d_->boundary_nodes(tag);
    const auto it = bc_.find(tag);
    for (std::size_t k = 0; k < nodes.size(); ++k) {
      const long p = pos_of(nodes[k]);
      if (p < 0) continue;
      double uv = 0.0, vv = 0.0;
      if (it != bc_.end()) {
        const auto& b = it->second;
        if (b.u_vals) {
          uv = (*b.u_vals)[k];
          vv = (*b.v_vals)[k];
        } else if (b.u_fn) {
          uv = b.u_fn(d_->node_x(nodes[k]), d_->node_y(nodes[k]), t);
          vv = b.v_fn(d_->node_x(nodes[k]), d_->node_y(nodes[k]), t);
        }
      }
      ubc[static_cast<std::size_t>(p)] = uv;
      vbc[static_cast<std::size_t>(p)] = vv;
    }
  }
}

std::size_t NavierStokes2D::step() {
  if (!pressure_solver_) build_solvers();
  telemetry::ScopedPhase phase("ns2d.step");
  // sub-phases cover the three split-scheme stages; emplace() ends the
  // previous one before starting the next
  std::optional<telemetry::ScopedPhase> sub;
  sub.emplace("ns2d.advect");
  const std::size_t n = d_->num_nodes();
  const double dt = params_.dt;
  const double tn1 = t_ + dt;
  std::size_t iters = 0;

  // 1) explicit advection + body force.
  // Order 2 (stiffly stable BDF2/EX2): the predictor accumulates
  //   us = (alpha0 u^n + alpha1 u^{n-1}) / gamma0
  //        + dt/gamma0 * (f - beta0 N^n - beta1 N^{n-1})
  // with gamma0 = 3/2, alpha0 = 2, alpha1 = -1/2, beta0 = 2, beta1 = -1;
  // the viscous solve then uses lambda = gamma0/dt. The first step (no
  // history) and time_order = 1 use IMEX Euler.
  const bool second = params_.time_order >= 2 && have_history_;
  const double gamma0 = second ? 1.5 : 1.0;

  la::Vector conv_u, conv_v;
  ops_.convection(u_, v_, conv_u, conv_v);
  la::Vector us(n), vs(n);
  for (std::size_t g = 0; g < n; ++g) {
    double fxv = 0.0, fyv = 0.0;
    if (fx_) fxv = fx_(d_->node_x(g), d_->node_y(g), tn1);
    if (fy_) fyv = fy_(d_->node_x(g), d_->node_y(g), tn1);
    if (second) {
      us[g] = (2.0 * u_[g] - 0.5 * u_prev_[g] +
               dt * (fxv - 2.0 * conv_u[g] + conv_u_prev_[g])) /
              gamma0;
      vs[g] = (2.0 * v_[g] - 0.5 * v_prev_[g] +
               dt * (fyv - 2.0 * conv_v[g] + conv_v_prev_[g])) /
              gamma0;
    } else {
      us[g] = u_[g] + dt * (fxv - conv_u[g]);
      vs[g] = v_[g] + dt * (fyv - conv_v[g]);
    }
  }
  if (params_.time_order >= 2) {
    u_prev_ = u_;
    v_prev_ = v_;
    conv_u_prev_ = std::move(conv_u);
    conv_v_prev_ = std::move(conv_v);
    have_history_ = true;
  }

  // Order 2 (pressure-increment, Van Kan): the predictor carries
  // -dt/gamma0 grad p^n; the Poisson solve below then yields the increment
  // phi = p^{n+1} - p^n, lifting the splitting error to O(dt^2).
  if (second) {
    la::Vector dpdx_n, dpdy_n;
    ops_.gradient(p_, dpdx_n, dpdy_n);
    for (std::size_t g = 0; g < n; ++g) {
      us[g] -= dt / gamma0 * dpdx_n[g];
      vs[g] -= dt / gamma0 * dpdy_n[g];
    }
  }

  // enforce the new-time Dirichlet velocity on the predictor before taking
  // its divergence (improves the projection's boundary mass balance)
  la::Vector ubc, vbc;
  fill_bc_values(tn1, ubc, vbc);
  {
    const auto& dn = velocity_solver_->dirichlet_nodes();
    for (std::size_t k = 0; k < dn.size(); ++k) {
      us[dn[k]] = ubc[k];
      vs[dn[k]] = vbc[k];
    }
  }

  sub.emplace("ns2d.pressure");
  la::Vector div(n);
  ops_.divergence(us, vs, div);
  la::Vector f(n);
  for (std::size_t g = 0; g < n; ++g) f[g] = -gamma0 * div[g] / dt;
  la::Vector phi(n, 0.0);
  auto rp = pressure_solver_->solve(f, [](double, double) { return 0.0; },
                                    second ? phi : p_);
  iters += rp.iterations;
  if (second)
    for (std::size_t g = 0; g < n; ++g) p_[g] += phi[g];

  // 3) projection: u_hat_hat/gamma0 = us - (dt/gamma0) grad (p or phi)
  la::Vector dpdx, dpdy;
  ops_.gradient(second ? phi : p_, dpdx, dpdy);
  for (std::size_t g = 0; g < n; ++g) {
    us[g] -= dt / gamma0 * dpdx[g];
    vs[g] -= dt / gamma0 * dpdy[g];
  }

  // 4) implicit viscosity: (gamma0 M/dt + nu K) u = gamma0 M us / dt
  sub.emplace("ns2d.viscous");
  la::Vector fu(n), fv(n);
  for (std::size_t g = 0; g < n; ++g) {
    fu[g] = gamma0 * us[g] / dt;
    fv[g] = gamma0 * vs[g] / dt;
  }
  HelmholtzSolver& vsolve = second ? *velocity_solver2_ : *velocity_solver_;
  auto ru = vsolve.solve_with_values(fu, ubc, u_);
  auto rv = vsolve.solve_with_values(fv, vbc, v_);
  iters += ru.iterations + rv.iterations;

  t_ = tn1;
  return iters;
}

void NavierStokes2D::save_state(resilience::BlobWriter& w) const {
  w.pod(t_);
  w.pod(static_cast<std::uint8_t>(have_history_));
  resilience::put_vector(w, u_);
  resilience::put_vector(w, v_);
  resilience::put_vector(w, p_);
  resilience::put_vector(w, u_prev_);
  resilience::put_vector(w, v_prev_);
  resilience::put_vector(w, conv_u_prev_);
  resilience::put_vector(w, conv_v_prev_);
  // solver warm-start projectors (solvers exist after the first step; a
  // pre-first-step checkpoint records them as absent)
  w.pod(static_cast<std::uint8_t>(pressure_solver_ != nullptr));
  if (pressure_solver_) {
    pressure_solver_->save_state(w);
    velocity_solver_->save_state(w);
    w.pod(static_cast<std::uint8_t>(velocity_solver2_ != nullptr));
    if (velocity_solver2_) velocity_solver2_->save_state(w);
  }
}

void NavierStokes2D::load_state(resilience::BlobReader& r) {
  r.pod(t_);
  have_history_ = r.pod<std::uint8_t>() != 0;
  resilience::get_vector(r, u_);
  resilience::get_vector(r, v_);
  resilience::get_vector(r, p_);
  if (u_.size() != d_->num_nodes())
    throw resilience::LayoutError("NS2D: checkpoint field size " + std::to_string(u_.size()) +
                                  " != discretization size " + std::to_string(d_->num_nodes()));
  resilience::get_vector(r, u_prev_);
  resilience::get_vector(r, v_prev_);
  resilience::get_vector(r, conv_u_prev_);
  resilience::get_vector(r, conv_v_prev_);
  if (r.pod<std::uint8_t>() != 0) {
    if (!pressure_solver_) build_solvers();
    pressure_solver_->load_state(r);
    velocity_solver_->load_state(r);
    const bool had2 = r.pod<std::uint8_t>() != 0;
    if (had2 != (velocity_solver2_ != nullptr))
      throw resilience::LayoutError("NS2D: checkpoint time_order != configured time_order");
    if (velocity_solver2_) velocity_solver2_->load_state(r);
  }
}

void NavierStokes2D::save_warmstart(resilience::BlobWriter& w) const {
  w.pod(static_cast<std::uint8_t>(pressure_solver_ != nullptr));
  if (pressure_solver_) {
    pressure_solver_->save_state(w);
    velocity_solver_->save_state(w);
    w.pod(static_cast<std::uint8_t>(velocity_solver2_ != nullptr));
    if (velocity_solver2_) velocity_solver2_->save_state(w);
  }
}

void NavierStokes2D::load_warmstart(resilience::BlobReader& r) {
  if (r.pod<std::uint8_t>() == 0) return;  // donor had never stepped
  if (!pressure_solver_) build_solvers();
  pressure_solver_->load_state(r);
  velocity_solver_->load_state(r);
  const bool had2 = r.pod<std::uint8_t>() != 0;
  if (had2 != (velocity_solver2_ != nullptr))
    throw resilience::LayoutError("NS2D: warm-start time_order != configured time_order");
  if (velocity_solver2_) velocity_solver2_->load_state(r);
}

double NavierStokes2D::max_speed() const {
  double m = 0.0;
  for (std::size_t g = 0; g < d_->num_nodes(); ++g)
    m = std::max(m, std::sqrt(u_[g] * u_[g] + v_[g] * v_[g]));
  return m;
}

}  // namespace sem
