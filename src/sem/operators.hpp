#pragma once
// Matrix-free SEM operators on a Discretization:
//   * diagonal (lumped-by-quadrature) mass matrix,
//   * stiffness apply  y = K u  with  K_ij = (grad phi_i, grad phi_j),
//   * Helmholtz apply  y = (lambda M + nu K) u,
//   * nodal gradient (mass-averaged across element boundaries),
//   * divergence and convective term for the Navier-Stokes solver.
// All element work is tensor-product: cost O(P^3) per element per apply.

#include <vector>

#include "la/vector.hpp"
#include "sem/discretization.hpp"

namespace sem {

/// Matrix-free 2D operators.
///
/// The apply paths run on the batched `la::simd` line kernels with
/// per-instance scratch (no allocation and no per-call index arithmetic);
/// the pre-fast-path implementations are retained as `_reference` for the
/// equivalence suites (tests/sem_test). Scratch makes applies non-reentrant:
/// one Operators instance must not be applied from two threads at once
/// (each solver owns its Operators, so this never happens in-tree).
class Operators {
public:
  explicit Operators(const Discretization& d);

  const Discretization& disc() const { return *d_; }

  /// Assembled diagonal mass matrix (GLL quadrature is diagonal in the SEM
  /// basis, so this is exact for the discrete inner product).
  const la::Vector& mass_diag() const { return mass_; }

  /// y = K u (zeroed first).
  void apply_stiffness(const la::Vector& u, la::Vector& y) const;

  /// y = lambda * M u + nu * K u.
  void apply_helmholtz(double lambda, double nu, const la::Vector& u, la::Vector& y) const;

  /// Diagonal of lambda M + nu K (for Jacobi preconditioning).
  la::Vector helmholtz_diag(double lambda, double nu) const;

  /// Nodal derivative fields du/dx, du/dy: per-element collocation
  /// derivatives, mass-averaged at shared nodes.
  void gradient(const la::Vector& u, la::Vector& dudx, la::Vector& dudy) const;

  /// div = du/dx + dv/dy (nodal, mass-averaged).
  void divergence(const la::Vector& u, la::Vector& v, la::Vector& div) const;

  /// Convective term (u . grad) applied to each velocity component:
  /// conv_u = u du/dx + v du/dy, conv_v = u dv/dx + v dv/dy.
  void convection(const la::Vector& u, const la::Vector& v, la::Vector& conv_u,
                  la::Vector& conv_v) const;

  /// Wall shear stress tau = nu * d(u_t)/dn on the boundary faces of `tag`
  /// (u_t = velocity component tangential to the face, n = inward normal).
  /// Returns one sample per boundary node of the tag, ordered like
  /// disc().boundary_nodes(tag). The paper singles out mean WSS as "a very
  /// important quantity in biological flows" (Sec. 3.4).
  std::vector<double> wall_shear_stress(const la::Vector& u, const la::Vector& v, double nu,
                                        int tag) const;

  /// Discrete L2 norm: sqrt(u^T M u).
  double l2_norm(const la::Vector& u) const;

  /// Discrete integral of the field: 1^T M u.
  double integral(const la::Vector& u) const;

  /// Pre-fast-path baselines (scalar strided y-lines, per-call scratch):
  /// kept for the equivalence suites.
  void apply_stiffness_reference(const la::Vector& u, la::Vector& y) const;
  void apply_helmholtz_reference(double lambda, double nu, const la::Vector& u,
                                 la::Vector& y) const;
  void gradient_reference(const la::Vector& u, la::Vector& dudx, la::Vector& dudy) const;

private:
  // element-local kernels; local arrays are (P+1)^2, (b*(P+1)+a) layout
  void elem_stiffness(const double* u, double* y) const;
  void elem_helmholtz(double lambda, double nu, const double* u, double* y) const;
  void elem_deriv_x(const double* u, double* dudx) const;
  void elem_deriv_y(const double* u, double* dudy) const;
  void elem_stiffness_reference(const double* u, double* y) const;
  void elem_deriv_x_reference(const double* u, double* dudx) const;
  void elem_deriv_y_reference(const double* u, double* dudy) const;

  const Discretization* d_;
  la::Vector mass_;
  la::Vector stiff_diag_;    // assembled diag(K)
  la::DenseMatrix G_;        // D^T diag(w) D, the 1D weak-derivative kernel
  la::DenseMatrix GT_, DT_;  // transposes for the along-line (x) kernels
  std::vector<double> lmass_;  // per-element lumped mass jac*wa*wb
  // element scratch, hoisted out of the apply loops (see class comment)
  mutable std::vector<double> lu_, ly_, ldx_, ldy_;
  // global-field scratch for divergence/convection/wall_shear_stress
  mutable la::Vector gx_, gy_, hx_, hy_;
  double jac_;             // element Jacobian (dx/2)(dy/2), uniform grid
  double rx_, ry_;         // d(xi)/dx = 2/dx, d(eta)/dy = 2/dy
};

}  // namespace sem
