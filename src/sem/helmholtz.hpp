#pragma once
// Helmholtz / Poisson boundary-value solver on a Discretization:
//   (lambda M + nu K) u = M f   with Dirichlet values on selected tags and
// natural (zero-Neumann) conditions elsewhere. Solved by Jacobi-
// preconditioned CG on the free dofs, warm-started by the successive-
// solution projector (paper: NEKTAR's Helmholtz/Poisson solvers are CG with
// preconditioning and initial-state prediction).

#include <functional>
#include <vector>

#include "la/cg.hpp"
#include "la/vector.hpp"
#include "sem/operators.hpp"

namespace resilience {
class BlobWriter;
class BlobReader;
}  // namespace resilience

namespace sem {

enum class PreconditionerKind {
  Jacobi,          ///< diagonal scaling
  BlockSchwarz,    ///< overlapping element-block additive Schwarz (stand-in
                   ///< for NEKTAR's low-energy preconditioner: both damp the
                   ///< high-energy intra-element modes the diagonal misses)
};

class HelmholtzSolver {
public:
  /// `dirichlet_tags`: boundary tags whose nodes carry essential BCs.
  /// For a pure-Neumann problem pass an empty list; the operator is then
  /// singular (constant nullspace) and the solver pins the mean to zero.
  HelmholtzSolver(const Operators& ops, double lambda, double nu,
                  std::vector<int> dirichlet_tags,
                  PreconditionerKind precond = PreconditionerKind::Jacobi);

  /// Solve with rhs f (as a nodal field; the solver forms M f) and the
  /// Dirichlet value function g(x, y) evaluated on constrained nodes.
  /// Returns iteration count. `u` is input (initial state hint is managed
  /// internally) and output.
  la::CgResult solve(const la::Vector& f, const std::function<double(double, double)>& g,
                     la::Vector& u);

  /// Variant with explicit per-node Dirichlet values (same order/content as
  /// dirichlet_nodes()).
  la::CgResult solve_with_values(const la::Vector& f, const la::Vector& bc_values,
                                 la::Vector& u);

  const std::vector<std::size_t>& dirichlet_nodes() const { return dnodes_; }
  bool pure_neumann() const { return dnodes_.empty(); }

  la::CgOptions& options() { return opt_; }

  /// Successive-solution projection depth (0 disables the warm start —
  /// the ablation knob for the paper's "initial state prediction").
  void set_projection_depth(std::size_t depth) {
    projector_ = la::SolutionProjector(depth);
    projection_enabled_ = depth > 0;
  }

  /// Checkpoint the warm-start projector (the solver's only mutable state).
  void save_state(resilience::BlobWriter& w) const;
  void load_state(resilience::BlobReader& r);

private:
  void apply_block_schwarz(const double* r, double* z, std::size_t n) const;

  // analyze: no-checkpoint (constructor configuration, re-supplied by the driver)
  const Operators* ops_;
  // analyze: no-checkpoint (constructor configuration: operator coefficients)
  double lambda_, nu_;
  // analyze: no-checkpoint (derived from the BC tags in the constructor)
  std::vector<std::size_t> dnodes_;
  // analyze: no-checkpoint (derived from dnodes_ in the constructor)
  std::vector<char> is_dirichlet_;
  // analyze: no-checkpoint (preconditioner table, precomputed from ops_)
  la::Vector precond_diag_;
  la::SolutionProjector projector_;
  // analyze: no-checkpoint (set by set_projection_depth, driver configuration)
  bool projection_enabled_ = true;
  // analyze: no-checkpoint (solver tolerances are configuration)
  la::CgOptions opt_;

  // analyze: no-checkpoint (driver configuration)
  PreconditionerKind precond_kind_ = PreconditionerKind::Jacobi;
  // BlockSchwarz data: per-element Cholesky factors of the local Helmholtz
  // blocks, the partition-of-unity weights (inverse node multiplicity), and
  // their square roots plus element scratch, precomputed so the per-CG-
  // iteration apply allocates nothing.
  // analyze: no-checkpoint (precomputed preconditioner factors)
  std::vector<la::DenseMatrix> block_chol_;
  // analyze: no-checkpoint (precomputed partition-of-unity weights)
  la::Vector pou_;
  // analyze: no-checkpoint (precomputed partition-of-unity weights)
  la::Vector sqrt_pou_;
  // analyze: no-checkpoint (per-apply element scratch)
  mutable la::Vector rl_, zl_;
};

}  // namespace sem
