#pragma once
// Continuous-Galerkin spectral-element discretization over a (possibly
// masked) structured QuadMesh: global GLL node numbering, element gather /
// scatter maps, node coordinates, boundary-node sets per tag, and point
// evaluation of fields (used to interpolate velocity onto coupling
// interfaces, paper Sec. 3.3).

#include <cstddef>
#include <map>
#include <vector>

#include "la/dense.hpp"
#include "la/vector.hpp"
#include "mesh/quadmesh.hpp"
#include "sem/gll.hpp"

namespace sem {

/// A scalar field is a la::Vector of length Discretization::num_nodes().

class Discretization {
public:
  Discretization(const mesh::QuadMesh& mesh, int order);

  const mesh::QuadMesh& mesh() const { return mesh_; }
  int order() const { return P_; }
  const GllRule& rule() const { return rule_; }
  const la::DenseMatrix& diff_matrix() const { return D_; }

  std::size_t num_nodes() const { return coords_x_.size(); }
  std::size_t num_elements() const { return mesh_.num_cells(); }
  std::size_t nodes_per_element() const {
    return static_cast<std::size_t>((P_ + 1) * (P_ + 1));
  }

  /// Global node id of element e's local node (a, b), a,b in [0, P]
  /// (a = x-direction index, b = y-direction).
  std::size_t global_node(std::size_t e, int a, int b) const {
    return elem_map_[e * nodes_per_element() + static_cast<std::size_t>(b) * (P_ + 1) +
                     static_cast<std::size_t>(a)];
  }

  /// Element e's slice of the gather/scatter table: nodes_per_element()
  /// global ids in (b, a) order, `a` fastest. The operator fast paths
  /// stream through this instead of calling global_node per node.
  const std::size_t* elem_map(std::size_t e) const {
    return elem_map_.data() + e * nodes_per_element();
  }

  double node_x(std::size_t g) const { return coords_x_[g]; }
  double node_y(std::size_t g) const { return coords_y_[g]; }

  /// Number of elements sharing each global node (1, 2, or 4).
  double node_multiplicity(std::size_t g) const { return mult_[g]; }

  /// Global nodes lying on boundary faces with the given tag (deduplicated,
  /// ascending). Nodes shared between two tags appear in both sets.
  const std::vector<std::size_t>& boundary_nodes(int tag) const;
  /// All tags present on the boundary.
  std::vector<int> boundary_tags() const;

  /// Element containing (x, y), or -1 if outside the mesh/mask.
  long locate(double x, double y) const;

  /// Evaluate a field at (x, y) by tensor-product Lagrange interpolation in
  /// the containing element. Throws if (x, y) is outside the domain.
  double evaluate(const la::Vector& field, double x, double y) const;

  /// Interpolate a field onto each element's GLL grid (gather): out has
  /// nodes_per_element() entries, (b*(P+1)+a) layout.
  void gather(const la::Vector& field, std::size_t e, double* local) const;
  /// Scatter-add element-local values into a global field.
  void scatter_add(const double* local, std::size_t e, la::Vector& field) const;

private:
  mesh::QuadMesh mesh_;
  int P_;
  GllRule rule_;
  la::DenseMatrix D_;

  std::vector<std::size_t> elem_map_;  // e * npe + local -> global
  std::vector<double> coords_x_, coords_y_;
  std::vector<double> mult_;
  std::map<int, std::vector<std::size_t>> boundary_;
  std::vector<std::size_t> empty_;
};

}  // namespace sem
