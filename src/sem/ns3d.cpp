#include "sem/ns3d.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <stdexcept>

#include "resilience/blob_la.hpp"
#include "telemetry/registry.hpp"

namespace sem {

NavierStokes3D::NavierStokes3D(const Discretization3D& disc, Params params)
    : d_(&disc), params_(std::move(params)), ops_(disc) {
  const std::size_t n = disc.num_nodes();
  u_.resize(n, 0.0);
  v_.resize(n, 0.0);
  w_.resize(n, 0.0);
  p_.resize(n, 0.0);
}

void NavierStokes3D::set_velocity_bc(HexFace f, BcFn u, BcFn v, BcFn w) {
  if (pressure_solver_) throw std::logic_error("NS3D: BCs fixed after first step");
  auto& b = bc_[static_cast<std::size_t>(f)];
  b.natural = false;
  b.u = std::move(u);
  b.v = std::move(v);
  b.w = std::move(w);
}

void NavierStokes3D::set_natural_bc(HexFace f) {
  if (pressure_solver_) throw std::logic_error("NS3D: BCs fixed after first step");
  bc_[static_cast<std::size_t>(f)].natural = true;
}

void NavierStokes3D::set_body_force(BcFn fx, BcFn fy, BcFn fz) {
  fx_ = std::move(fx);
  fy_ = std::move(fy);
  fz_ = std::move(fz);
}

void NavierStokes3D::set_initial(const BcFn& u0, const BcFn& v0, const BcFn& w0) {
  for (std::size_t g = 0; g < d_->num_nodes(); ++g) {
    const double x = d_->node_x(g), y = d_->node_y(g), z = d_->node_z(g);
    u_[g] = u0(x, y, z, 0.0);
    v_[g] = v0(x, y, z, 0.0);
    w_[g] = w0(x, y, z, 0.0);
  }
}

void NavierStokes3D::build_solvers() {
  std::vector<HexFace> vel_faces;
  node_face_.assign(d_->num_nodes(), static_cast<char>(-1));
  for (int f = 0; f < 6; ++f) {
    if (bc_[static_cast<std::size_t>(f)].natural) continue;
    vel_faces.push_back(static_cast<HexFace>(f));
    for (std::size_t g : d_->face_nodes(static_cast<HexFace>(f)))
      if (node_face_[g] == static_cast<char>(-1)) node_face_[g] = static_cast<char>(f);
  }
  velocity_solver_ =
      std::make_unique<HelmholtzSolver3D>(ops_, 1.0 / params_.dt, params_.nu, vel_faces);
  if (params_.time_order >= 2)
    velocity_solver2_ =
        std::make_unique<HelmholtzSolver3D>(ops_, 1.5 / params_.dt, params_.nu, vel_faces);
  pressure_solver_ =
      std::make_unique<HelmholtzSolver3D>(ops_, 0.0, 1.0, params_.pressure_dirichlet_faces);
  dnodes_ = velocity_solver_->dirichlet_nodes();
}

void NavierStokes3D::fill_bc_values(double t, la::Vector& ubc, la::Vector& vbc,
                                    la::Vector& wbc) const {
  ubc.resize(dnodes_.size(), 0.0);
  vbc.resize(dnodes_.size(), 0.0);
  wbc.resize(dnodes_.size(), 0.0);
  for (std::size_t k = 0; k < dnodes_.size(); ++k) {
    const std::size_t g = dnodes_[k];
    const int f = node_face_[g];
    double uu = 0.0, vv = 0.0, ww = 0.0;
    if (f >= 0) {
      const auto& b = bc_[static_cast<std::size_t>(f)];
      if (b.u) {
        const double x = d_->node_x(g), y = d_->node_y(g), z = d_->node_z(g);
        uu = b.u(x, y, z, t);
        vv = b.v(x, y, z, t);
        ww = b.w(x, y, z, t);
      }
    }
    ubc[k] = uu;
    vbc[k] = vv;
    wbc[k] = ww;
  }
}

std::size_t NavierStokes3D::step() {
  if (!pressure_solver_) build_solvers();
  telemetry::ScopedPhase phase("ns3d.step");
  std::optional<telemetry::ScopedPhase> sub;
  sub.emplace("ns3d.advect");
  const std::size_t n = d_->num_nodes();
  const double dt = params_.dt;
  const double tn1 = t_ + dt;
  std::size_t iters = 0;

  const bool second = params_.time_order >= 2 && have_history_;
  const double gamma0 = second ? 1.5 : 1.0;

  la::Vector cu, cv, cw;
  ops_.convection(u_, v_, w_, cu, cv, cw);
  la::Vector us(n), vs(n), ws(n);
  for (std::size_t g = 0; g < n; ++g) {
    double fxv = 0.0, fyv = 0.0, fzv = 0.0;
    if (fx_) {
      const double x = d_->node_x(g), y = d_->node_y(g), z = d_->node_z(g);
      fxv = fx_(x, y, z, tn1);
      fyv = fy_(x, y, z, tn1);
      fzv = fz_(x, y, z, tn1);
    }
    if (second) {
      us[g] = (2.0 * u_[g] - 0.5 * u_prev_[g] + dt * (fxv - 2.0 * cu[g] + cu_prev_[g])) / gamma0;
      vs[g] = (2.0 * v_[g] - 0.5 * v_prev_[g] + dt * (fyv - 2.0 * cv[g] + cv_prev_[g])) / gamma0;
      ws[g] = (2.0 * w_[g] - 0.5 * w_prev_[g] + dt * (fzv - 2.0 * cw[g] + cw_prev_[g])) / gamma0;
    } else {
      us[g] = u_[g] + dt * (fxv - cu[g]);
      vs[g] = v_[g] + dt * (fyv - cv[g]);
      ws[g] = w_[g] + dt * (fzv - cw[g]);
    }
  }
  if (params_.time_order >= 2) {
    u_prev_ = u_;
    v_prev_ = v_;
    w_prev_ = w_;
    cu_prev_ = std::move(cu);
    cv_prev_ = std::move(cv);
    cw_prev_ = std::move(cw);
    have_history_ = true;
  }

  if (second) {
    la::Vector px, py, pz;
    ops_.gradient(p_, px, py, pz);
    for (std::size_t g = 0; g < n; ++g) {
      us[g] -= dt / gamma0 * px[g];
      vs[g] -= dt / gamma0 * py[g];
      ws[g] -= dt / gamma0 * pz[g];
    }
  }

  la::Vector ubc, vbc, wbc;
  fill_bc_values(tn1, ubc, vbc, wbc);
  for (std::size_t k = 0; k < dnodes_.size(); ++k) {
    us[dnodes_[k]] = ubc[k];
    vs[dnodes_[k]] = vbc[k];
    ws[dnodes_[k]] = wbc[k];
  }

  sub.emplace("ns3d.pressure");
  la::Vector div(n);
  ops_.divergence(us, vs, ws, div);
  la::Vector f(n);
  for (std::size_t g = 0; g < n; ++g) f[g] = -gamma0 * div[g] / dt;
  la::Vector phi(n, 0.0);
  auto rp = pressure_solver_->solve(f, [](double, double, double) { return 0.0; },
                                    second ? phi : p_);
  iters += rp.iterations;
  if (second)
    for (std::size_t g = 0; g < n; ++g) p_[g] += phi[g];

  la::Vector px, py, pz;
  ops_.gradient(second ? phi : p_, px, py, pz);
  for (std::size_t g = 0; g < n; ++g) {
    us[g] -= dt / gamma0 * px[g];
    vs[g] -= dt / gamma0 * py[g];
    ws[g] -= dt / gamma0 * pz[g];
  }

  sub.emplace("ns3d.viscous");
  la::Vector fu(n), fv(n), fw(n);
  for (std::size_t g = 0; g < n; ++g) {
    fu[g] = gamma0 * us[g] / dt;
    fv[g] = gamma0 * vs[g] / dt;
    fw[g] = gamma0 * ws[g] / dt;
  }
  HelmholtzSolver3D& vsolve = second ? *velocity_solver2_ : *velocity_solver_;
  iters += vsolve.solve_with_values(fu, ubc, u_).iterations;
  iters += vsolve.solve_with_values(fv, vbc, v_).iterations;
  iters += vsolve.solve_with_values(fw, wbc, w_).iterations;

  t_ = tn1;
  return iters;
}

void NavierStokes3D::save_state(resilience::BlobWriter& w) const {
  w.pod(t_);
  w.pod(static_cast<std::uint8_t>(have_history_));
  resilience::put_vector(w, u_);
  resilience::put_vector(w, v_);
  resilience::put_vector(w, w_);
  resilience::put_vector(w, p_);
  resilience::put_vector(w, u_prev_);
  resilience::put_vector(w, v_prev_);
  resilience::put_vector(w, w_prev_);
  resilience::put_vector(w, cu_prev_);
  resilience::put_vector(w, cv_prev_);
  resilience::put_vector(w, cw_prev_);
  w.pod(static_cast<std::uint8_t>(pressure_solver_ != nullptr));
  if (pressure_solver_) {
    pressure_solver_->save_state(w);
    velocity_solver_->save_state(w);
    w.pod(static_cast<std::uint8_t>(velocity_solver2_ != nullptr));
    if (velocity_solver2_) velocity_solver2_->save_state(w);
  }
}

void NavierStokes3D::load_state(resilience::BlobReader& r) {
  r.pod(t_);
  have_history_ = r.pod<std::uint8_t>() != 0;
  resilience::get_vector(r, u_);
  resilience::get_vector(r, v_);
  resilience::get_vector(r, w_);
  resilience::get_vector(r, p_);
  if (u_.size() != d_->num_nodes())
    throw resilience::LayoutError("NS3D: checkpoint field size " + std::to_string(u_.size()) +
                                  " != discretization size " + std::to_string(d_->num_nodes()));
  resilience::get_vector(r, u_prev_);
  resilience::get_vector(r, v_prev_);
  resilience::get_vector(r, w_prev_);
  resilience::get_vector(r, cu_prev_);
  resilience::get_vector(r, cv_prev_);
  resilience::get_vector(r, cw_prev_);
  if (r.pod<std::uint8_t>() != 0) {
    if (!pressure_solver_) build_solvers();
    pressure_solver_->load_state(r);
    velocity_solver_->load_state(r);
    const bool had2 = r.pod<std::uint8_t>() != 0;
    if (had2 != (velocity_solver2_ != nullptr))
      throw resilience::LayoutError("NS3D: checkpoint time_order != configured time_order");
    if (velocity_solver2_) velocity_solver2_->load_state(r);
  }
}

void NavierStokes3D::save_warmstart(resilience::BlobWriter& w) const {
  w.pod(static_cast<std::uint8_t>(pressure_solver_ != nullptr));
  if (pressure_solver_) {
    pressure_solver_->save_state(w);
    velocity_solver_->save_state(w);
    w.pod(static_cast<std::uint8_t>(velocity_solver2_ != nullptr));
    if (velocity_solver2_) velocity_solver2_->save_state(w);
  }
}

void NavierStokes3D::load_warmstart(resilience::BlobReader& r) {
  if (r.pod<std::uint8_t>() == 0) return;  // donor had never stepped
  if (!pressure_solver_) build_solvers();
  pressure_solver_->load_state(r);
  velocity_solver_->load_state(r);
  const bool had2 = r.pod<std::uint8_t>() != 0;
  if (had2 != (velocity_solver2_ != nullptr))
    throw resilience::LayoutError("NS3D: warm-start time_order != configured time_order");
  if (velocity_solver2_) velocity_solver2_->load_state(r);
}

}  // namespace sem
