#include "sem/helmholtz.hpp"

#include "resilience/blob_la.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "telemetry/registry.hpp"

namespace sem {

HelmholtzSolver::HelmholtzSolver(const Operators& ops, double lambda, double nu,
                                 std::vector<int> dirichlet_tags, PreconditionerKind precond)
    : ops_(&ops), lambda_(lambda), nu_(nu), precond_kind_(precond) {
  const auto& d = ops.disc();
  is_dirichlet_.assign(d.num_nodes(), 0);
  for (int tag : dirichlet_tags)
    for (std::size_t g : d.boundary_nodes(tag)) is_dirichlet_[g] = 1;
  for (std::size_t g = 0; g < is_dirichlet_.size(); ++g)
    if (is_dirichlet_[g]) dnodes_.push_back(g);

  precond_diag_ = ops.helmholtz_diag(lambda, nu);
  for (std::size_t g : dnodes_) precond_diag_[g] = 1.0;
  // Pure-Neumann Poisson: diag(K) alone can be near-singular in scale; the
  // Jacobi preconditioner still works because diag entries are positive.

  if (precond_kind_ == PreconditionerKind::BlockSchwarz) {
    const int P = d.order();
    const auto n1 = static_cast<std::size_t>(P) + 1;
    const std::size_t npe = n1 * n1;
    const double jac = 0.25 * d.mesh().dx() * d.mesh().dy();
    const double rx2 = 4.0 / (d.mesh().dx() * d.mesh().dx());
    const double ry2 = 4.0 / (d.mesh().dy() * d.mesh().dy());
    const auto& w = d.rule().weights;
    // 1D weak-derivative kernel G = D^T diag(w) D
    la::DenseMatrix G(n1, n1);
    const auto& D = d.diff_matrix();
    for (std::size_t a = 0; a < n1; ++a)
      for (std::size_t b = 0; b < n1; ++b) {
        double s = 0.0;
        for (std::size_t m = 0; m < n1; ++m) s += D(m, a) * w[m] * D(m, b);
        G(a, b) = s;
      }

    block_chol_.reserve(d.num_elements());
    for (std::size_t e = 0; e < d.num_elements(); ++e) {
      la::DenseMatrix A(npe, npe);
      for (std::size_t b = 0; b < n1; ++b)
        for (std::size_t a = 0; a < n1; ++a) {
          const std::size_t row = b * n1 + a;
          for (std::size_t bp = 0; bp < n1; ++bp)
            for (std::size_t ap = 0; ap < n1; ++ap) {
              const std::size_t col = bp * n1 + ap;
              double v = 0.0;
              if (b == bp) v += nu * jac * rx2 * w[b] * G(a, ap);
              if (a == ap) v += nu * jac * ry2 * w[a] * G(b, bp);
              if (row == col) v += lambda * jac * w[a] * w[b];
              A(row, col) += v;
            }
        }
      // constrained local nodes -> identity rows/cols
      for (std::size_t b = 0; b < n1; ++b)
        for (std::size_t a = 0; a < n1; ++a) {
          const std::size_t g = d.global_node(e, static_cast<int>(a), static_cast<int>(b));
          if (!is_dirichlet_[g]) continue;
          const std::size_t k = b * n1 + a;
          for (std::size_t q = 0; q < npe; ++q) {
            A(k, q) = 0.0;
            A(q, k) = 0.0;
          }
          A(k, k) = 1.0;
        }
      // ridge for the (near-)singular lambda = 0 local problems
      double tr = 0.0;
      for (std::size_t q = 0; q < npe; ++q) tr += A(q, q);
      for (std::size_t q = 0; q < npe; ++q) A(q, q) += 1e-8 * tr / static_cast<double>(npe);
      if (!la::cholesky(A))
        throw std::runtime_error("HelmholtzSolver: local block not SPD");
      block_chol_.push_back(std::move(A));
    }
    pou_.resize(d.num_nodes());
    sqrt_pou_.resize(d.num_nodes());
    for (std::size_t g = 0; g < d.num_nodes(); ++g) {
      pou_[g] = 1.0 / d.node_multiplicity(g);
      sqrt_pou_[g] = std::sqrt(pou_[g]);
    }
    rl_.resize(d.nodes_per_element());
    zl_.resize(d.nodes_per_element());
  }
}

void HelmholtzSolver::apply_block_schwarz(const double* r, double* z, std::size_t n) const {
  const auto& d = ops_->disc();
  for (std::size_t g = 0; g < n; ++g) z[g] = 0.0;
  // symmetric weighted additive Schwarz: z = sum_e R^T W^1/2 A_e^-1 W^1/2 R r
  la::Vector &rl = rl_, &zl = zl_;
  const la::Vector& sq = sqrt_pou_;
  for (std::size_t e = 0; e < block_chol_.size(); ++e) {
    // gather weighted residual
    const int P = d.order();
    const auto n1 = static_cast<std::size_t>(P) + 1;
    for (std::size_t b = 0; b < n1; ++b)
      for (std::size_t a = 0; a < n1; ++a) {
        const std::size_t g = d.global_node(e, static_cast<int>(a), static_cast<int>(b));
        rl[b * n1 + a] = sq[g] * r[g];
      }
    la::cholesky_solve(block_chol_[e], rl, zl);
    for (std::size_t b = 0; b < n1; ++b)
      for (std::size_t a = 0; a < n1; ++a) {
        const std::size_t g = d.global_node(e, static_cast<int>(a), static_cast<int>(b));
        z[g] += sq[g] * zl[b * n1 + a];
      }
  }
}

la::CgResult HelmholtzSolver::solve(const la::Vector& f,
                                    const std::function<double(double, double)>& g,
                                    la::Vector& u) {
  const auto& d = ops_->disc();
  la::Vector bc(dnodes_.size());
  for (std::size_t k = 0; k < dnodes_.size(); ++k)
    bc[k] = g(d.node_x(dnodes_[k]), d.node_y(dnodes_[k]));
  return solve_with_values(f, bc, u);
}

la::CgResult HelmholtzSolver::solve_with_values(const la::Vector& f, const la::Vector& bc_values,
                                                la::Vector& u) {
  telemetry::ScopedPhase phase("helmholtz.solve");
  telemetry::count("helmholtz.solves");
  const auto& d = ops_->disc();
  const std::size_t n = d.num_nodes();
  const auto& M = ops_->mass_diag();

  // masked operator: rows and columns of constrained nodes removed
  la::Vector tmp_in(n), tmp_out(n);
  la::LinearOperator op = [&](const double* x, double* y) {
    for (std::size_t gi = 0; gi < n; ++gi) tmp_in[gi] = is_dirichlet_[gi] ? 0.0 : x[gi];
    ops_->apply_helmholtz(lambda_, nu_, tmp_in, tmp_out);
    for (std::size_t gi = 0; gi < n; ++gi) y[gi] = is_dirichlet_[gi] ? x[gi] : tmp_out[gi];
  };

  // rhs: M f, lifted by the Dirichlet extension
  la::Vector b(n);
  for (std::size_t gi = 0; gi < n; ++gi) b[gi] = M[gi] * f[gi];

  la::Vector lift(n, 0.0);
  if (!dnodes_.empty()) {
    for (std::size_t k = 0; k < dnodes_.size(); ++k) lift[dnodes_[k]] = bc_values[k];
    la::Vector Alift(n);
    ops_->apply_helmholtz(lambda_, nu_, lift, Alift);
    for (std::size_t gi = 0; gi < n; ++gi) b[gi] -= Alift[gi];
  }
  for (std::size_t gi = 0; gi < n; ++gi)
    if (is_dirichlet_[gi]) b[gi] = 0.0;

  if (pure_neumann() && lambda_ == 0.0) {
    // Singular operator with constant nullspace: make the rhs consistent.
    double sum_b = 0.0, sum_m = 0.0;
    for (std::size_t gi = 0; gi < n; ++gi) {
      sum_b += b[gi];
      sum_m += M[gi];
    }
    const double shift = sum_b / sum_m;
    for (std::size_t gi = 0; gi < n; ++gi) b[gi] -= M[gi] * shift;
  }

  // warm start from the successive-solution projector
  la::Vector u0(n, 0.0);
  if (projection_enabled_) projector_.predict(op, b, u0);

  la::Preconditioner precond =
      precond_kind_ == PreconditionerKind::BlockSchwarz
          ? la::Preconditioner([this](const double* r, double* z, std::size_t nn) {
              apply_block_schwarz(r, z, nn);
            })
          : la::jacobi_preconditioner(precond_diag_);
  auto res = la::cg_solve(op, b, u0, precond, opt_);
  if (projection_enabled_) projector_.record(op, u0);

  if (u.size() != n) u.resize(n);
  for (std::size_t gi = 0; gi < n; ++gi) u[gi] = u0[gi] + lift[gi];

  if (pure_neumann() && lambda_ == 0.0) {
    // remove the arbitrary constant: zero mean
    double mean_num = 0.0, mean_den = 0.0;
    for (std::size_t gi = 0; gi < n; ++gi) {
      mean_num += M[gi] * u[gi];
      mean_den += M[gi];
    }
    const double mean = mean_num / mean_den;
    for (std::size_t gi = 0; gi < n; ++gi) u[gi] -= mean;
  }
  return res;
}

void HelmholtzSolver::save_state(resilience::BlobWriter& w) const {
  resilience::put_projector(w, projector_);
}

void HelmholtzSolver::load_state(resilience::BlobReader& r) {
  resilience::get_projector(r, projector_);
}

}  // namespace sem
