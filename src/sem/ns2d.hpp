#pragma once
// Unsteady incompressible Navier-Stokes solver in 2D, NEKTAR-style:
// spectral-element spatial discretization plus a semi-implicit splitting
// scheme (explicit advection, pressure projection, implicit viscosity) —
// the same solver family the paper uses for the macrovascular network
// (high temporal resolution from the splitting, spatial accuracy from SEM,
// CG solves accelerated by preconditioning and initial-state prediction).
//
// Boundary conditions per mesh tag:
//   * velocity Dirichlet (function of (x, y, t) or explicit per-node values
//     refreshed every step — the hook the patch/DPD coupling drives),
//   * natural outflow (no velocity constraint; pressure Dirichlet 0),
// plus a time-dependent body force (used for Womersley flow).

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "la/vector.hpp"
#include "sem/discretization.hpp"
#include "sem/helmholtz.hpp"
#include "sem/operators.hpp"

namespace resilience {
class BlobWriter;
class BlobReader;
}  // namespace resilience

namespace sem {

class NavierStokes2D {
public:
  struct Params {
    double nu = 0.01;  ///< kinematic viscosity
    double dt = 1e-3;
    /// Temporal order of the stiffly-stable splitting scheme (Karniadakis-
    /// Israeli-Orszag): 1 = IMEX Euler, 2 = BDF2/EX2 (the paper's
    /// "semi-implicit high-order time stepping"). The first step of an
    /// order-2 run falls back to order 1.
    int time_order = 1;
    /// Tags whose boundary carries pressure Dirichlet p = 0 (typically the
    /// outlets). Empty => pure-Neumann pressure (mean pinned to zero).
    std::vector<int> pressure_dirichlet_tags = {mesh::kOutlet};
  };

  using BcFn = std::function<double(double x, double y, double t)>;
  using ForceFn = std::function<double(double x, double y, double t)>;

  NavierStokes2D(const Discretization& disc, Params params);

  /// Velocity Dirichlet BC on `tag` from analytic functions.
  void set_velocity_bc(int tag, BcFn u_fn, BcFn v_fn);
  /// Velocity Dirichlet BC on `tag` from explicit values matching
  /// disc().boundary_nodes(tag) order. Overwrites any function BC for the
  /// tag; call again each step to refresh (coupling hook).
  void set_velocity_bc_values(int tag, std::vector<double> u_vals, std::vector<double> v_vals);
  /// Mark `tag` as natural outflow (no velocity constraint there).
  void set_natural_bc(int tag);

  void set_body_force(ForceFn fx, ForceFn fy);

  void set_initial(const BcFn& u0, const BcFn& v0);

  /// Advance one time step; returns the total CG iterations spent (pressure
  /// + both velocity solves) for performance accounting.
  std::size_t step();

  double time() const { return t_; }
  double dt() const { return params_.dt; }
  const la::Vector& u() const { return u_; }
  const la::Vector& v() const { return v_; }
  const la::Vector& p() const { return p_; }
  const Discretization& disc() const { return *d_; }
  const Operators& ops() const { return ops_; }

  /// Max pointwise velocity magnitude (CFL monitoring).
  double max_speed() const;

  /// Checkpoint the full time-stepping state: fields, order-2 history, time,
  /// and every Helmholtz solver's warm-start projector — enough for a restart
  /// to continue bitwise identically. BCs/forcing are configuration and must
  /// be re-established by the driver before load_state.
  void save_state(resilience::BlobWriter& w) const;
  void load_state(resilience::BlobReader& r);

  /// Serialize only the Helmholtz solvers' successive-solution projector
  /// bases (no fields, no time). Loading seeds the CG predictors of a fresh
  /// run from a completed nearby one — the ensemble engine's "projector"
  /// warm-start mode. Requires identical discretization and time_order.
  void save_warmstart(resilience::BlobWriter& w) const;
  void load_warmstart(resilience::BlobReader& r);

private:
  struct TagBc {
    bool natural = false;
    BcFn u_fn, v_fn;
    std::optional<std::vector<double>> u_vals, v_vals;
  };

  void build_solvers();
  void fill_bc_values(double t, la::Vector& ubc, la::Vector& vbc) const;

  // load_state dereferences d_ only to validate field sizes; the
  // discretization itself is configuration.
  // analyze: no-checkpoint (constructor configuration, re-supplied by the driver)
  const Discretization* d_;
  // analyze: no-checkpoint (constructor configuration)
  Params params_;
  // analyze: no-checkpoint (derived operator tables, rebuilt from d_)
  Operators ops_;

  // analyze: no-checkpoint (BC callbacks are configuration, re-established by the driver)
  std::map<int, TagBc> bc_;
  // analyze: no-checkpoint (forcing callbacks are configuration)
  ForceFn fx_, fy_;

  la::Vector u_, v_, p_;
  // order-2 history: previous velocity and convective term
  la::Vector u_prev_, v_prev_, conv_u_prev_, conv_v_prev_;
  bool have_history_ = false;
  double t_ = 0.0;

  std::unique_ptr<HelmholtzSolver> pressure_solver_;
  std::unique_ptr<HelmholtzSolver> velocity_solver_;   // order-1 lambda = 1/dt
  std::unique_ptr<HelmholtzSolver> velocity_solver2_;  // order-2 lambda = 3/(2 dt)
  // analyze: no-checkpoint (derived from BC registration, rebuilt by build_solvers)
  std::vector<int> velocity_dirichlet_tags_;
};

}  // namespace sem
