#include "sem/operators.hpp"

#include <cmath>
#include <map>
#include <vector>

#include "la/simd.hpp"
#include "telemetry/registry.hpp"

namespace sem {

Operators::Operators(const Discretization& d) : d_(&d) {
  const auto& mesh = d.mesh();
  jac_ = 0.25 * mesh.dx() * mesh.dy();
  rx_ = 2.0 / mesh.dx();
  ry_ = 2.0 / mesh.dy();

  const int P = d.order();
  const auto& w = d.rule().weights;
  const std::size_t n1 = static_cast<std::size_t>(P) + 1;

  // G = D^T diag(w) D, the 1D weak derivative kernel
  G_ = la::DenseMatrix(n1, n1);
  const auto& D = d.diff_matrix();
  for (std::size_t a = 0; a < n1; ++a)
    for (std::size_t b = 0; b < n1; ++b) {
      double s = 0.0;
      for (std::size_t m = 0; m < n1; ++m) s += D(m, a) * w[m] * D(m, b);
      G_(a, b) = s;
    }

  // assembled diagonal mass and stiffness
  mass_.resize(d.num_nodes(), 0.0);
  stiff_diag_.resize(d.num_nodes(), 0.0);
  for (std::size_t e = 0; e < d.num_elements(); ++e) {
    for (int b = 0; b <= P; ++b)
      for (int a = 0; a <= P; ++a) {
        const std::size_t g = d.global_node(e, a, b);
        const double wa = w[static_cast<std::size_t>(a)];
        const double wb = w[static_cast<std::size_t>(b)];
        mass_[g] += jac_ * wa * wb;
        stiff_diag_[g] += jac_ * (rx_ * rx_ * wb * G_(static_cast<std::size_t>(a),
                                                      static_cast<std::size_t>(a)) +
                                  ry_ * ry_ * wa * G_(static_cast<std::size_t>(b),
                                                      static_cast<std::size_t>(b)));
      }
  }

  // fast-path tables and scratch
  GT_ = G_.transposed();
  DT_ = D.transposed();
  const std::size_t npe = d.nodes_per_element();
  lmass_.resize(npe);
  for (std::size_t b = 0; b < n1; ++b)
    for (std::size_t a = 0; a < n1; ++a) lmass_[b * n1 + a] = jac_ * w[a] * w[b];
  lu_.resize(npe);
  ly_.resize(npe);
  ldx_.resize(npe);
  ldy_.resize(npe);
}

void Operators::elem_stiffness(const double* u, double* y) const {
  const std::size_t n1 = static_cast<std::size_t>(d_->order()) + 1;
  const auto& w = d_->rule().weights;
  const double cx = jac_ * rx_ * rx_;
  const double cy = jac_ * ry_ * ry_;
  for (std::size_t k = 0; k < n1 * n1; ++k) y[k] = 0.0;
  // x: all rows in one batched call, row scale w_j; y: G down the columns,
  // column scale w_i
  la::simd::lines_apply_t(GT_.data(), n1, n1, u, y, w.data(), cx);
  la::simd::lines_apply(G_.data(), n1, n1, u, y, w.data(), cy);
}

void Operators::elem_helmholtz(double lambda, double nu, const double* u, double* y) const {
  const std::size_t n1 = static_cast<std::size_t>(d_->order()) + 1;
  const auto& w = d_->rule().weights;
  const double cx = nu * jac_ * rx_ * rx_;
  const double cy = nu * jac_ * ry_ * ry_;
  const std::size_t npe = n1 * n1;
  for (std::size_t k = 0; k < npe; ++k) y[k] = 0.0;
  la::simd::lines_apply_t(GT_.data(), n1, n1, u, y, w.data(), cx);
  la::simd::lines_apply(G_.data(), n1, n1, u, y, w.data(), cy);
  // lumped mass term folded into the element pass (sums to lambda*M*u)
  for (std::size_t k = 0; k < npe; ++k) y[k] += lambda * lmass_[k] * u[k];
}

void Operators::elem_stiffness_reference(const double* u, double* y) const {
  const int P = d_->order();
  const std::size_t n1 = static_cast<std::size_t>(P) + 1;
  const auto& w = d_->rule().weights;
  const double cx = jac_ * rx_ * rx_;
  const double cy = jac_ * ry_ * ry_;
  for (std::size_t k = 0; k < n1 * n1; ++k) y[k] = 0.0;
  // x-direction: for each row j, y(:,j) += cx*w_j * G u(:,j)
  for (std::size_t j = 0; j < n1; ++j) {
    const double* uj = u + j * n1;
    double* yj = y + j * n1;
    const double c = cx * w[j];
    for (std::size_t a = 0; a < n1; ++a)
      yj[a] += c * la::simd::dot(G_.row(a), uj, n1);
  }
  // y-direction: for each column i, y(i,:) += cy*w_i * G u(i,:)
  for (std::size_t i = 0; i < n1; ++i) {
    const double c = cy * w[i];
    for (std::size_t b = 0; b < n1; ++b) {
      double s = 0.0;
      const double* Gb = G_.row(b);
      for (std::size_t nidx = 0; nidx < n1; ++nidx) s += Gb[nidx] * u[nidx * n1 + i];
      y[b * n1 + i] += c * s;
    }
  }
}

void Operators::elem_deriv_x(const double* u, double* dudx) const {
  const std::size_t n1 = static_cast<std::size_t>(d_->order()) + 1;
  for (std::size_t k = 0; k < n1 * n1; ++k) dudx[k] = 0.0;
  la::simd::lines_apply_t(DT_.data(), n1, n1, u, dudx, nullptr, rx_);
}

void Operators::elem_deriv_y(const double* u, double* dudy) const {
  const std::size_t n1 = static_cast<std::size_t>(d_->order()) + 1;
  for (std::size_t k = 0; k < n1 * n1; ++k) dudy[k] = 0.0;
  la::simd::lines_apply(d_->diff_matrix().data(), n1, n1, u, dudy, nullptr, ry_);
}

void Operators::elem_deriv_x_reference(const double* u, double* dudx) const {
  const std::size_t n1 = static_cast<std::size_t>(d_->order()) + 1;
  const auto& D = d_->diff_matrix();
  for (std::size_t j = 0; j < n1; ++j) {
    const double* uj = u + j * n1;
    double* oj = dudx + j * n1;
    for (std::size_t a = 0; a < n1; ++a) oj[a] = rx_ * la::simd::dot(D.row(a), uj, n1);
  }
}

void Operators::elem_deriv_y_reference(const double* u, double* dudy) const {
  const std::size_t n1 = static_cast<std::size_t>(d_->order()) + 1;
  const auto& D = d_->diff_matrix();
  for (std::size_t i = 0; i < n1; ++i)
    for (std::size_t b = 0; b < n1; ++b) {
      double s = 0.0;
      const double* Db = D.row(b);
      for (std::size_t nidx = 0; nidx < n1; ++nidx) s += Db[nidx] * u[nidx * n1 + i];
      dudy[b * n1 + i] = ry_ * s;
    }
}

void Operators::apply_stiffness(const la::Vector& u, la::Vector& y) const {
  if (y.size() != u.size()) y.resize(u.size());
  y.fill(0.0);
  telemetry::count("sem.apply.stiffness2d");
  for (std::size_t e = 0; e < d_->num_elements(); ++e) {
    d_->gather(u, e, lu_.data());
    elem_stiffness(lu_.data(), ly_.data());
    d_->scatter_add(ly_.data(), e, y);
  }
}

void Operators::apply_stiffness_reference(const la::Vector& u, la::Vector& y) const {
  const std::size_t npe = d_->nodes_per_element();
  if (y.size() != u.size()) y.resize(u.size());
  y.fill(0.0);
  // lint: sem-alloc-ok (reference baseline keeps the pre-fast-path per-call scratch)
  std::vector<double> lu(npe), ly(npe);
  for (std::size_t e = 0; e < d_->num_elements(); ++e) {
    d_->gather(u, e, lu.data());
    elem_stiffness_reference(lu.data(), ly.data());
    d_->scatter_add(ly.data(), e, y);
  }
}

void Operators::apply_helmholtz(double lambda, double nu, const la::Vector& u,
                                la::Vector& y) const {
  if (y.size() != u.size()) y.resize(u.size());
  y.fill(0.0);
  telemetry::count("sem.apply.helmholtz2d");
  for (std::size_t e = 0; e < d_->num_elements(); ++e) {
    d_->gather(u, e, lu_.data());
    elem_helmholtz(lambda, nu, lu_.data(), ly_.data());
    d_->scatter_add(ly_.data(), e, y);
  }
}

void Operators::apply_helmholtz_reference(double lambda, double nu, const la::Vector& u,
                                          la::Vector& y) const {
  apply_stiffness_reference(u, y);
  la::simd::scale(nu, y.data(), y.size());
  for (std::size_t g = 0; g < u.size(); ++g) y[g] += lambda * mass_[g] * u[g];
}

la::Vector Operators::helmholtz_diag(double lambda, double nu) const {
  la::Vector dgl(d_->num_nodes());
  for (std::size_t g = 0; g < dgl.size(); ++g)
    dgl[g] = lambda * mass_[g] + nu * stiff_diag_[g];
  return dgl;
}

void Operators::gradient(const la::Vector& u, la::Vector& dudx, la::Vector& dudy) const {
  const std::size_t n = d_->num_nodes();
  const std::size_t npe = d_->nodes_per_element();
  if (dudx.size() != n) dudx.resize(n);
  if (dudy.size() != n) dudy.resize(n);
  dudx.fill(0.0);
  dudy.fill(0.0);
  for (std::size_t e = 0; e < d_->num_elements(); ++e) {
    d_->gather(u, e, lu_.data());
    elem_deriv_x(lu_.data(), ldx_.data());
    elem_deriv_y(lu_.data(), ldy_.data());
    // weight by the local mass before scatter; divide by assembled mass after
    for (std::size_t k = 0; k < npe; ++k) {
      const double m = lmass_[k];
      ldx_[k] *= m;
      ldy_[k] *= m;
    }
    d_->scatter_add(ldx_.data(), e, dudx);
    d_->scatter_add(ldy_.data(), e, dudy);
  }
  for (std::size_t g = 0; g < n; ++g) {
    dudx[g] /= mass_[g];
    dudy[g] /= mass_[g];
  }
}

void Operators::gradient_reference(const la::Vector& u, la::Vector& dudx,
                                   la::Vector& dudy) const {
  const std::size_t n = d_->num_nodes();
  const std::size_t npe = d_->nodes_per_element();
  const int P = d_->order();
  const auto& w = d_->rule().weights;
  if (dudx.size() != n) dudx.resize(n);
  if (dudy.size() != n) dudy.resize(n);
  dudx.fill(0.0);
  dudy.fill(0.0);
  // lint: sem-alloc-ok (reference baseline keeps the pre-fast-path per-call scratch)
  std::vector<double> lu(npe), dx(npe), dy(npe);
  for (std::size_t e = 0; e < d_->num_elements(); ++e) {
    d_->gather(u, e, lu.data());
    elem_deriv_x_reference(lu.data(), dx.data());
    elem_deriv_y_reference(lu.data(), dy.data());
    for (int b = 0; b <= P; ++b)
      for (int a = 0; a <= P; ++a) {
        const std::size_t k = static_cast<std::size_t>(b) * (P + 1) + static_cast<std::size_t>(a);
        const double m = jac_ * w[static_cast<std::size_t>(a)] * w[static_cast<std::size_t>(b)];
        dx[k] *= m;
        dy[k] *= m;
      }
    d_->scatter_add(dx.data(), e, dudx);
    d_->scatter_add(dy.data(), e, dudy);
  }
  for (std::size_t g = 0; g < n; ++g) {
    dudx[g] /= mass_[g];
    dudy[g] /= mass_[g];
  }
}

void Operators::divergence(const la::Vector& u, la::Vector& v, la::Vector& div) const {
  if (div.size() != u.size()) div.resize(u.size());
  gradient(u, gx_, gy_);
  for (std::size_t g = 0; g < u.size(); ++g) div[g] = gx_[g];
  gradient(v, gx_, gy_);
  for (std::size_t g = 0; g < u.size(); ++g) div[g] += gy_[g];
}

void Operators::convection(const la::Vector& u, const la::Vector& v, la::Vector& conv_u,
                           la::Vector& conv_v) const {
  gradient(u, gx_, gy_);
  gradient(v, hx_, hy_);
  if (conv_u.size() != u.size()) conv_u.resize(u.size());
  if (conv_v.size() != u.size()) conv_v.resize(u.size());
  for (std::size_t g = 0; g < u.size(); ++g) {
    conv_u[g] = u[g] * gx_[g] + v[g] * gy_[g];
    conv_v[g] = u[g] * hx_[g] + v[g] * hy_[g];
  }
}

std::vector<double> Operators::wall_shear_stress(const la::Vector& u, const la::Vector& v,
                                                 double nu, int tag) const {
  const auto& d = *d_;
  const int P = d.order();

  // nodal gradients of both components (mass-averaged, as in gradient())
  gradient(u, gx_, gy_);
  gradient(v, hx_, hy_);
  const la::Vector &dudx = gx_, &dudy = gy_, &dvdx = hx_, &dvdy = hy_;

  // face orientation per boundary node of the tag: inward normal (nx, ny)
  // and which velocity component is tangential (0 = u, 1 = v)
  struct FaceInfo {
    double nx, ny;
    int tangential;
  };
  std::map<std::size_t, FaceInfo> info;
  for (const auto& face : d.mesh().boundary_faces()) {
    if (face.tag != tag) continue;
    FaceInfo fi{};
    switch (face.side) {
      case mesh::Side::South: fi = {0.0, 1.0, 0}; break;
      case mesh::Side::North: fi = {0.0, -1.0, 0}; break;
      case mesh::Side::West: fi = {1.0, 0.0, 1}; break;
      case mesh::Side::East: fi = {-1.0, 0.0, 1}; break;
    }
    for (int k = 0; k <= P; ++k) {
      int a = 0, b = 0;
      switch (face.side) {
        case mesh::Side::South: a = k; b = 0; break;
        case mesh::Side::North: a = k; b = P; break;
        case mesh::Side::West: a = 0; b = k; break;
        case mesh::Side::East: a = P; b = k; break;
      }
      info[d.global_node(face.cell, a, b)] = fi;
    }
  }

  const auto& nodes = d.boundary_nodes(tag);
  std::vector<double> tau(nodes.size(), 0.0);
  for (std::size_t k = 0; k < nodes.size(); ++k) {
    const auto it = info.find(nodes[k]);
    if (it == info.end()) continue;
    const FaceInfo& fi = it->second;
    const std::size_t g = nodes[k];
    const double dt_dx = fi.tangential == 0 ? dudx[g] : dvdx[g];
    const double dt_dy = fi.tangential == 0 ? dudy[g] : dvdy[g];
    tau[k] = nu * (fi.nx * dt_dx + fi.ny * dt_dy);
  }
  return tau;
}

double Operators::l2_norm(const la::Vector& u) const {
  double s = 0.0;
  for (std::size_t g = 0; g < u.size(); ++g) s += u[g] * mass_[g] * u[g];
  return std::sqrt(s);
}

double Operators::integral(const la::Vector& u) const {
  double s = 0.0;
  for (std::size_t g = 0; g < u.size(); ++g) s += mass_[g] * u[g];
  return s;
}

}  // namespace sem
