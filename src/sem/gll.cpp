#include "sem/gll.hpp"

#include <cmath>
#include <stdexcept>

namespace sem {

double legendre(int n, double x) {
  if (n == 0) return 1.0;
  if (n == 1) return x;
  double pm1 = 1.0, p = x;
  for (int k = 2; k <= n; ++k) {
    const double pk = ((2.0 * k - 1.0) * x * p - (k - 1.0) * pm1) / k;
    pm1 = p;
    p = pk;
  }
  return p;
}

double legendre_deriv(int n, double x) {
  if (n == 0) return 0.0;
  // (1-x^2) P'_n = n (P_{n-1} - x P_n); handle the endpoints by the known
  // closed form P'_n(+-1) = (+-1)^{n-1} n(n+1)/2.
  if (std::fabs(1.0 - x * x) < 1e-14) {
    const double sign = x > 0.0 ? 1.0 : (n % 2 == 0 ? -1.0 : 1.0);
    return sign * 0.5 * n * (n + 1.0);
  }
  return n * (legendre(n - 1, x) - x * legendre(n, x)) / (1.0 - x * x);
}

GllRule gll_rule(int P) {
  if (P < 1) throw std::invalid_argument("gll_rule: order must be >= 1");
  const int n = P + 1;
  GllRule r;
  r.nodes.resize(n);
  r.weights.resize(n);
  r.nodes[0] = -1.0;
  r.nodes[P] = 1.0;

  // Interior nodes: roots of P'_P. Chebyshev-Gauss-Lobatto points are good
  // starting guesses for Newton's iteration.
  for (int i = 1; i < P; ++i) {
    double x = -std::cos(M_PI * i / P);
    for (int it = 0; it < 100; ++it) {
      // f = P'_P(x); f' from the Legendre ODE:
      // (1-x^2) P''_P = 2x P'_P - P(P+1) P_P
      const double f = legendre_deriv(P, x);
      const double fp = (2.0 * x * f - P * (P + 1.0) * legendre(P, x)) / (1.0 - x * x);
      const double dx = f / fp;
      x -= dx;
      if (std::fabs(dx) < 1e-15) break;
    }
    r.nodes[i] = x;
  }

  for (int i = 0; i < n; ++i) {
    const double L = legendre(P, r.nodes[i]);
    r.weights[i] = 2.0 / (P * (P + 1.0) * L * L);
  }
  return r;
}

la::DenseMatrix gll_diff_matrix(const GllRule& rule) {
  const std::size_t n = rule.nodes.size();
  const int P = static_cast<int>(n) - 1;
  la::DenseMatrix D(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      const double Li = legendre(P, rule.nodes[i]);
      const double Lj = legendre(P, rule.nodes[j]);
      D(i, j) = (Li / Lj) / (rule.nodes[i] - rule.nodes[j]);
    }
  }
  D(0, 0) = -0.25 * P * (P + 1.0);
  D(n - 1, n - 1) = 0.25 * P * (P + 1.0);
  // interior diagonal entries are zero for GLL collocation
  return D;
}

la::Vector lagrange_basis_at(const GllRule& rule, double x) {
  const std::size_t n = rule.nodes.size();
  la::Vector v(n);
  // If x coincides with a node, the basis is a Kronecker delta.
  for (std::size_t k = 0; k < n; ++k) {
    if (std::fabs(x - rule.nodes[k]) < 1e-14) {
      v[k] = 1.0;
      return v;
    }
  }
  // Barycentric form with GLL weights w_k ~ (-1)^k delta_k.
  la::Vector bw(n);
  for (std::size_t k = 0; k < n; ++k) {
    double prod = 1.0;
    for (std::size_t m = 0; m < n; ++m)
      if (m != k) prod *= (rule.nodes[k] - rule.nodes[m]);
    bw[k] = 1.0 / prod;
  }
  double denom = 0.0;
  for (std::size_t k = 0; k < n; ++k) denom += bw[k] / (x - rule.nodes[k]);
  for (std::size_t k = 0; k < n; ++k) v[k] = (bw[k] / (x - rule.nodes[k])) / denom;
  return v;
}

la::DenseMatrix interpolation_matrix(const GllRule& rule, const la::Vector& targets) {
  la::DenseMatrix I(targets.size(), rule.nodes.size());
  for (std::size_t t = 0; t < targets.size(); ++t) {
    const auto row = lagrange_basis_at(rule, targets[t]);
    for (std::size_t k = 0; k < row.size(); ++k) I(t, k) = row[k];
  }
  return I;
}

}  // namespace sem
