#pragma once
// Three-dimensional spectral-element core on structured hexahedral meshes:
// the dimensionality NEKTAR-3D actually runs at. Provides the continuous-
// Galerkin discretization, matrix-free tensor-product operators, and the
// Helmholtz/Poisson solver; per-element operator cost is O(P^4) via sum
// factorisation, the same kernel structure whose SIMDization Table 1
// measures. (The unsteady Navier-Stokes splitting is validated in 2D in
// ns2d.hpp; all its building blocks are provided here in 3D.)

#include <array>
#include <cstddef>
#include <functional>
#include <map>
#include <vector>

#include "la/cg.hpp"
#include "la/dense.hpp"
#include "la/vector.hpp"
#include "sem/gll.hpp"

namespace resilience {
class BlobWriter;
class BlobReader;
}  // namespace resilience

namespace sem {

/// Boundary tags of the box domain's six faces.
enum class HexFace : int { X0 = 0, X1 = 1, Y0 = 2, Y1 = 3, Z0 = 4, Z1 = 5 };

/// Uniform box mesh [0,Lx] x [0,Ly] x [0,Lz] with nx x ny x nz hexahedra
/// and a continuous-Galerkin GLL discretization of order P.
class Discretization3D {
public:
  Discretization3D(double Lx, double Ly, double Lz, std::size_t nx, std::size_t ny,
                   std::size_t nz, int order);

  int order() const { return P_; }
  const GllRule& rule() const { return rule_; }
  const la::DenseMatrix& diff_matrix() const { return D_; }

  std::size_t num_nodes() const { return ncoords_; }
  std::size_t num_elements() const { return nx_ * ny_ * nz_; }
  std::size_t nodes_per_element() const {
    const auto n1 = static_cast<std::size_t>(P_ + 1);
    return n1 * n1 * n1;
  }

  double Lx() const { return Lx_; }
  double Ly() const { return Ly_; }
  double Lz() const { return Lz_; }
  double dx() const { return Lx_ / static_cast<double>(nx_); }
  double dy() const { return Ly_ / static_cast<double>(ny_); }
  double dz() const { return Lz_ / static_cast<double>(nz_); }

  /// Global node id of element e's local node (a, b, c). O(1) lookup in the
  /// precomputed element->global table (built once at construction; the
  /// arithmetic lattice addressing only runs at build time).
  std::size_t global_node(std::size_t e, int a, int b, int c) const {
    return elem_map_[e * nodes_per_element() +
                     (static_cast<std::size_t>(c) * (static_cast<std::size_t>(P_) + 1) +
                      static_cast<std::size_t>(b)) *
                         (static_cast<std::size_t>(P_) + 1) +
                     static_cast<std::size_t>(a)];
  }

  /// Element e's slice of the gather/scatter table: nodes_per_element()
  /// global ids in (c, b, a) order, `a` fastest. The operator fast paths
  /// stream through this instead of re-deriving lattice indices.
  const std::size_t* elem_map(std::size_t e) const {
    return elem_map_.data() + e * nodes_per_element();
  }

  double node_x(std::size_t g) const;
  double node_y(std::size_t g) const;
  double node_z(std::size_t g) const;

  /// Nodes on one of the six box faces (sorted, deduplicated).
  const std::vector<std::size_t>& face_nodes(HexFace f) const {
    return faces_[static_cast<std::size_t>(f)];
  }

  /// Tensor-product Lagrange evaluation of a nodal field at (x, y, z).
  double evaluate(const la::Vector& field, double x, double y, double z) const;

  void gather(const la::Vector& field, std::size_t e, double* local) const;
  void scatter_add(const double* local, std::size_t e, la::Vector& field) const;

private:
  std::size_t lattice_id(std::size_t li, std::size_t lj, std::size_t lk) const;
  std::size_t lattice_node(std::size_t e, int a, int b, int c) const;

  double Lx_, Ly_, Lz_;
  std::size_t nx_, ny_, nz_;
  int P_;
  GllRule rule_;
  la::DenseMatrix D_;
  std::size_t ncoords_ = 0;
  std::size_t lat_nx_ = 0, lat_ny_ = 0, lat_nz_ = 0;
  std::array<std::vector<std::size_t>, 6> faces_;
  std::vector<std::size_t> elem_map_;  // e * npe + local -> global (a fastest)
};

/// Matrix-free 3D operators (sum-factorised tensor kernels).
///
/// The apply paths run on the batched `la::simd` line kernels with
/// per-instance scratch buffers (no allocation and no index arithmetic per
/// apply); the pre-fast-path implementations are retained as `_reference`
/// for benchmarking and equivalence tests (bench/extra_sem3d_kernel,
/// tests/sem3d_test). Scratch makes applies non-reentrant: one Operators3D
/// instance must not be applied from two threads at once (each xmp rank
/// owns its solvers, so this never happens in-tree).
class Operators3D {
public:
  explicit Operators3D(const Discretization3D& d);

  const Discretization3D& disc() const { return *d_; }
  const la::Vector& mass_diag() const { return mass_; }

  void apply_stiffness(const la::Vector& u, la::Vector& y) const;
  /// y = lambda M u + nu K u in a single gather/kernel/scatter sweep: the
  /// diagonal mass term is folded into the element pass (the per-element
  /// lumped masses sum to the assembled diagonal).
  void apply_helmholtz(double lambda, double nu, const la::Vector& u, la::Vector& y) const;
  la::Vector helmholtz_diag(double lambda, double nu) const;

  /// Nodal derivatives, mass-averaged at shared nodes (as in 2D).
  void gradient(const la::Vector& u, la::Vector& ddx, la::Vector& ddy, la::Vector& ddz) const;
  void divergence(const la::Vector& u, const la::Vector& v, const la::Vector& w,
                  la::Vector& div) const;
  /// conv_q = (u.grad) q for each velocity component q in {u, v, w}.
  void convection(const la::Vector& u, const la::Vector& v, const la::Vector& w,
                  la::Vector& cu, la::Vector& cv, la::Vector& cw) const;

  double integral(const la::Vector& u) const;

  /// Pre-fast-path baselines (scalar strided y/z lines, per-call scratch):
  /// kept for bench/extra_sem3d_kernel and the equivalence suites.
  void apply_stiffness_reference(const la::Vector& u, la::Vector& y) const;
  void apply_helmholtz_reference(double lambda, double nu, const la::Vector& u,
                                 la::Vector& y) const;
  void gradient_reference(const la::Vector& u, la::Vector& ddx, la::Vector& ddy,
                          la::Vector& ddz) const;

private:
  void elem_stiffness(const double* u, double* y) const;
  void elem_helmholtz(double lambda, double nu, const double* u, double* y) const;
  void elem_derivs(const double* u, double* dx, double* dy, double* dz) const;
  void elem_stiffness_reference(const double* u, double* y) const;
  void elem_derivs_reference(const double* u, double* dx, double* dy, double* dz) const;

  const Discretization3D* d_;
  la::Vector mass_;
  la::Vector stiff_diag_;
  la::DenseMatrix G_;        // D^T diag(w) D
  la::DenseMatrix GT_, DT_;  // transposes for the along-line (x) kernels
  std::vector<double> ww_;     // w[j]*w[i] outer product, i fastest
  std::vector<double> lmass_;  // per-element lumped mass jac*wa*wb*wc
  // element scratch, hoisted out of the apply loops (see class comment)
  mutable std::vector<double> lu_, ly_, ldx_, ldy_, ldz_;
  // global-field scratch for divergence/convection
  mutable la::Vector gx_, gy_, gz_;
  double jac_;
  double rx_, ry_, rz_;
};

/// Helmholtz/Poisson boundary-value solver in 3D (Dirichlet on selected box
/// faces, natural elsewhere; pure-Neumann mean pinning as in 2D).
class HelmholtzSolver3D {
public:
  HelmholtzSolver3D(const Operators3D& ops, double lambda, double nu,
                    std::vector<HexFace> dirichlet_faces);

  la::CgResult solve(const la::Vector& f,
                     const std::function<double(double, double, double)>& g, la::Vector& u);

  /// Variant with explicit per-node Dirichlet values aligned with
  /// dirichlet_nodes() (the NS solver's per-step BC path).
  la::CgResult solve_with_values(const la::Vector& f, const la::Vector& bc_values,
                                 la::Vector& u);

  const std::vector<std::size_t>& dirichlet_nodes() const { return dnodes_; }
  bool pure_neumann() const { return dnodes_.empty(); }
  la::CgOptions& options() { return opt_; }

  /// Checkpoint the warm-start projector (the solver's only mutable state).
  void save_state(resilience::BlobWriter& w) const;
  void load_state(resilience::BlobReader& r);

private:
  // analyze: no-checkpoint (constructor configuration, re-supplied by the driver)
  const Operators3D* ops_;
  // analyze: no-checkpoint (constructor configuration: operator coefficients)
  double lambda_, nu_;
  // analyze: no-checkpoint (derived from the BC tags in the constructor)
  std::vector<std::size_t> dnodes_;
  // analyze: no-checkpoint (derived from dnodes_ in the constructor)
  std::vector<char> is_dirichlet_;
  // analyze: no-checkpoint (preconditioner table, precomputed from ops_)
  la::Vector precond_diag_;
  la::SolutionProjector projector_;
  // analyze: no-checkpoint (solver tolerances are configuration)
  la::CgOptions opt_;
};

}  // namespace sem
