#include "sem/discretization.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_map>

namespace sem {

Discretization::Discretization(const mesh::QuadMesh& mesh, int order)
    : mesh_(mesh), P_(order), rule_(gll_rule(order)), D_(gll_diff_matrix(rule_)) {
  if (order < 1) throw std::invalid_argument("Discretization: order must be >= 1");
  const std::size_t npe = nodes_per_element();
  elem_map_.assign(mesh_.num_cells() * npe, 0);

  // Global nodes live on the lattice (i*P + a, j*P + b) restricted to active
  // cells; lattice key -> compact id.
  const std::size_t lat_nx = mesh_.grid_nx() * static_cast<std::size_t>(P_) + 1;
  std::unordered_map<std::size_t, std::size_t> lat2g;
  lat2g.reserve(mesh_.num_cells() * npe);

  for (std::size_t e = 0; e < mesh_.num_cells(); ++e) {
    const auto [ci, cj] = mesh_.cell_coords(e);
    const auto [ox, oy] = mesh_.cell_origin(e);
    for (int b = 0; b <= P_; ++b) {
      for (int a = 0; a <= P_; ++a) {
        const std::size_t li = ci * static_cast<std::size_t>(P_) + static_cast<std::size_t>(a);
        const std::size_t lj = cj * static_cast<std::size_t>(P_) + static_cast<std::size_t>(b);
        const std::size_t key = lj * lat_nx + li;
        auto [it, inserted] = lat2g.try_emplace(key, coords_x_.size());
        if (inserted) {
          coords_x_.push_back(ox + 0.5 * (rule_.nodes[static_cast<std::size_t>(a)] + 1.0) *
                                       mesh_.dx());
          coords_y_.push_back(oy + 0.5 * (rule_.nodes[static_cast<std::size_t>(b)] + 1.0) *
                                       mesh_.dy());
          mult_.push_back(0.0);
        }
        const std::size_t g = it->second;
        elem_map_[e * npe + static_cast<std::size_t>(b) * (P_ + 1) +
                  static_cast<std::size_t>(a)] = g;
      }
    }
  }

  // multiplicity = number of elements sharing each node (each local position
  // is unique within an element, so counting map entries is the share count)
  std::fill(mult_.begin(), mult_.end(), 0.0);
  for (std::size_t k = 0; k < elem_map_.size(); ++k) mult_[elem_map_[k]] += 1.0;

  // boundary node sets
  for (const auto& f : mesh_.boundary_faces()) {
    auto& set = boundary_[f.tag];
    for (int k = 0; k <= P_; ++k) {
      int a = 0, b = 0;
      switch (f.side) {
        case mesh::Side::South: a = k; b = 0; break;
        case mesh::Side::North: a = k; b = P_; break;
        case mesh::Side::West: a = 0; b = k; break;
        case mesh::Side::East: a = P_; b = k; break;
      }
      set.push_back(global_node(f.cell, a, b));
    }
  }
  for (auto& [tag, set] : boundary_) {
    std::sort(set.begin(), set.end());
    set.erase(std::unique(set.begin(), set.end()), set.end());
  }
}

const std::vector<std::size_t>& Discretization::boundary_nodes(int tag) const {
  auto it = boundary_.find(tag);
  return it == boundary_.end() ? empty_ : it->second;
}

std::vector<int> Discretization::boundary_tags() const {
  std::vector<int> tags;
  tags.reserve(boundary_.size());
  for (const auto& [t, s] : boundary_) tags.push_back(t);
  return tags;
}

long Discretization::locate(double x, double y) const {
  const double fx = (x - mesh_.x0()) / mesh_.dx();
  const double fy = (y - mesh_.y0()) / mesh_.dy();
  long i = static_cast<long>(std::floor(fx));
  long j = static_cast<long>(std::floor(fy));
  // points exactly on the far boundary belong to the last cell
  if (i == static_cast<long>(mesh_.grid_nx()) && std::fabs(fx - i) < 1e-12) --i;
  if (j == static_cast<long>(mesh_.grid_ny()) && std::fabs(fy - j) < 1e-12) --j;
  if (i < 0 || j < 0 || i >= static_cast<long>(mesh_.grid_nx()) ||
      j >= static_cast<long>(mesh_.grid_ny()))
    return -1;
  if (!mesh_.is_active(static_cast<std::size_t>(i), static_cast<std::size_t>(j))) return -1;
  return static_cast<long>(mesh_.cell_index(static_cast<std::size_t>(i),
                                            static_cast<std::size_t>(j)));
}

double Discretization::evaluate(const la::Vector& field, double x, double y) const {
  const long e = locate(x, y);
  if (e < 0) throw std::out_of_range("Discretization::evaluate: point outside domain");
  const auto [ox, oy] = mesh_.cell_origin(static_cast<std::size_t>(e));
  const double xi = 2.0 * (x - ox) / mesh_.dx() - 1.0;
  const double eta = 2.0 * (y - oy) / mesh_.dy() - 1.0;
  const la::Vector lx = lagrange_basis_at(rule_, std::clamp(xi, -1.0, 1.0));
  const la::Vector ly = lagrange_basis_at(rule_, std::clamp(eta, -1.0, 1.0));
  double s = 0.0;
  for (int b = 0; b <= P_; ++b) {
    double row = 0.0;
    for (int a = 0; a <= P_; ++a)
      row += lx[static_cast<std::size_t>(a)] *
             field[global_node(static_cast<std::size_t>(e), a, b)];
    s += ly[static_cast<std::size_t>(b)] * row;
  }
  return s;
}

void Discretization::gather(const la::Vector& field, std::size_t e, double* local) const {
  const std::size_t npe = nodes_per_element();
  const std::size_t* map = elem_map_.data() + e * npe;
  for (std::size_t k = 0; k < npe; ++k) local[k] = field[map[k]];
}

void Discretization::scatter_add(const double* local, std::size_t e, la::Vector& field) const {
  const std::size_t npe = nodes_per_element();
  const std::size_t* map = elem_map_.data() + e * npe;
  for (std::size_t k = 0; k < npe; ++k) field[map[k]] += local[k];
}

}  // namespace sem
