#include "sem/hex3d.hpp"

#include "resilience/blob_la.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "la/simd.hpp"
#include "telemetry/registry.hpp"

namespace sem {

Discretization3D::Discretization3D(double Lx, double Ly, double Lz, std::size_t nx,
                                   std::size_t ny, std::size_t nz, int order)
    : Lx_(Lx), Ly_(Ly), Lz_(Lz), nx_(nx), ny_(ny), nz_(nz), P_(order),
      rule_(gll_rule(order)), D_(gll_diff_matrix(rule_)) {
  if (nx == 0 || ny == 0 || nz == 0 || Lx <= 0 || Ly <= 0 || Lz <= 0 || order < 1)
    throw std::invalid_argument("Discretization3D: bad arguments");
  const auto P = static_cast<std::size_t>(order);
  lat_nx_ = nx * P + 1;
  lat_ny_ = ny * P + 1;
  lat_nz_ = nz * P + 1;
  ncoords_ = lat_nx_ * lat_ny_ * lat_nz_;

  // box face node sets
  for (std::size_t lk = 0; lk < lat_nz_; ++lk)
    for (std::size_t lj = 0; lj < lat_ny_; ++lj)
      for (std::size_t li = 0; li < lat_nx_; ++li) {
        const std::size_t g = lattice_id(li, lj, lk);
        if (li == 0) faces_[0].push_back(g);
        if (li == lat_nx_ - 1) faces_[1].push_back(g);
        if (lj == 0) faces_[2].push_back(g);
        if (lj == lat_ny_ - 1) faces_[3].push_back(g);
        if (lk == 0) faces_[4].push_back(g);
        if (lk == lat_nz_ - 1) faces_[5].push_back(g);
      }

  // element -> global gather/scatter table (a fastest), built once so the
  // operator apply loops never re-derive lattice indices
  const std::size_t npe = nodes_per_element();
  elem_map_.resize(num_elements() * npe);
  for (std::size_t e = 0; e < num_elements(); ++e) {
    std::size_t idx = e * npe;
    for (int c = 0; c <= P_; ++c)
      for (int b = 0; b <= P_; ++b)
        for (int a = 0; a <= P_; ++a) elem_map_[idx++] = lattice_node(e, a, b, c);
  }
}

std::size_t Discretization3D::lattice_id(std::size_t li, std::size_t lj, std::size_t lk) const {
  return (lk * lat_ny_ + lj) * lat_nx_ + li;
}

std::size_t Discretization3D::lattice_node(std::size_t e, int a, int b, int c) const {
  const auto P = static_cast<std::size_t>(P_);
  const std::size_t i = e % nx_;
  const std::size_t j = (e / nx_) % ny_;
  const std::size_t k = e / (nx_ * ny_);
  return lattice_id(i * P + static_cast<std::size_t>(a), j * P + static_cast<std::size_t>(b),
                    k * P + static_cast<std::size_t>(c));
}

namespace {
double lattice_coord(std::size_t l, int P, double h, const GllRule& rule, std::size_t n_elems) {
  // element index and local node along one axis; the last lattice plane
  // belongs to the last element's P-th node
  std::size_t e = l / static_cast<std::size_t>(P);
  std::size_t a = l % static_cast<std::size_t>(P);
  if (e == n_elems) {
    e = n_elems - 1;
    a = static_cast<std::size_t>(P);
  }
  return static_cast<double>(e) * h + 0.5 * (rule.nodes[a] + 1.0) * h;
}
}  // namespace

double Discretization3D::node_x(std::size_t g) const {
  return lattice_coord(g % lat_nx_, P_, dx(), rule_, nx_);
}
double Discretization3D::node_y(std::size_t g) const {
  return lattice_coord((g / lat_nx_) % lat_ny_, P_, dy(), rule_, ny_);
}
double Discretization3D::node_z(std::size_t g) const {
  return lattice_coord(g / (lat_nx_ * lat_ny_), P_, dz(), rule_, nz_);
}

double Discretization3D::evaluate(const la::Vector& field, double x, double y, double z) const {
  auto clamp_elem = [](double v, double h, std::size_t n) {
    auto e = static_cast<long>(std::floor(v / h));
    return static_cast<std::size_t>(std::clamp<long>(e, 0, static_cast<long>(n) - 1));
  };
  if (x < -1e-12 || y < -1e-12 || z < -1e-12 || x > Lx_ + 1e-12 || y > Ly_ + 1e-12 ||
      z > Lz_ + 1e-12)
    throw std::out_of_range("Discretization3D::evaluate: point outside box");
  const std::size_t i = clamp_elem(x, dx(), nx_);
  const std::size_t j = clamp_elem(y, dy(), ny_);
  const std::size_t k = clamp_elem(z, dz(), nz_);
  const std::size_t e = (k * ny_ + j) * nx_ + i;
  auto ref = [](double v, double h, std::size_t idx) {
    return std::clamp(2.0 * (v - static_cast<double>(idx) * h) / h - 1.0, -1.0, 1.0);
  };
  const la::Vector lx = lagrange_basis_at(rule_, ref(x, dx(), i));
  const la::Vector ly = lagrange_basis_at(rule_, ref(y, dy(), j));
  const la::Vector lz = lagrange_basis_at(rule_, ref(z, dz(), k));
  double s = 0.0;
  for (int c = 0; c <= P_; ++c) {
    double sc = 0.0;
    for (int b = 0; b <= P_; ++b) {
      double sb = 0.0;
      for (int a = 0; a <= P_; ++a)
        sb += lx[static_cast<std::size_t>(a)] * field[global_node(e, a, b, c)];
      sc += ly[static_cast<std::size_t>(b)] * sb;
    }
    s += lz[static_cast<std::size_t>(c)] * sc;
  }
  return s;
}

void Discretization3D::gather(const la::Vector& field, std::size_t e, double* local) const {
  const std::size_t npe = nodes_per_element();
  const std::size_t* map = elem_map_.data() + e * npe;
  for (std::size_t k = 0; k < npe; ++k) local[k] = field[map[k]];
}

void Discretization3D::scatter_add(const double* local, std::size_t e, la::Vector& field) const {
  const std::size_t npe = nodes_per_element();
  const std::size_t* map = elem_map_.data() + e * npe;
  for (std::size_t k = 0; k < npe; ++k) field[map[k]] += local[k];
}

// ---------------------------------------------------------------------------

Operators3D::Operators3D(const Discretization3D& d) : d_(&d) {
  jac_ = 0.125 * d.dx() * d.dy() * d.dz();
  rx_ = 2.0 / d.dx();
  ry_ = 2.0 / d.dy();
  rz_ = 2.0 / d.dz();

  const int P = d.order();
  const auto& w = d.rule().weights;
  const auto n1 = static_cast<std::size_t>(P) + 1;
  G_ = la::DenseMatrix(n1, n1);
  const auto& D = d.diff_matrix();
  for (std::size_t a = 0; a < n1; ++a)
    for (std::size_t b = 0; b < n1; ++b) {
      double s = 0.0;
      for (std::size_t m = 0; m < n1; ++m) s += D(m, a) * w[m] * D(m, b);
      G_(a, b) = s;
    }

  mass_.resize(d.num_nodes(), 0.0);
  stiff_diag_.resize(d.num_nodes(), 0.0);
  for (std::size_t e = 0; e < d.num_elements(); ++e)
    for (int c = 0; c <= P; ++c)
      for (int b = 0; b <= P; ++b)
        for (int a = 0; a <= P; ++a) {
          const std::size_t g = d.global_node(e, a, b, c);
          const double wa = w[static_cast<std::size_t>(a)];
          const double wb = w[static_cast<std::size_t>(b)];
          const double wc = w[static_cast<std::size_t>(c)];
          mass_[g] += jac_ * wa * wb * wc;
          stiff_diag_[g] +=
              jac_ * (rx_ * rx_ * wb * wc * G_(static_cast<std::size_t>(a), static_cast<std::size_t>(a)) +
                      ry_ * ry_ * wa * wc * G_(static_cast<std::size_t>(b), static_cast<std::size_t>(b)) +
                      rz_ * rz_ * wa * wb * G_(static_cast<std::size_t>(c), static_cast<std::size_t>(c)));
        }

  // fast-path tables and scratch
  GT_ = G_.transposed();
  DT_ = D.transposed();
  ww_.resize(n1 * n1);
  for (std::size_t j = 0; j < n1; ++j)
    for (std::size_t i = 0; i < n1; ++i) ww_[j * n1 + i] = w[i] * w[j];
  const std::size_t npe = d.nodes_per_element();
  lmass_.resize(npe);
  for (std::size_t c = 0; c < n1; ++c)
    for (std::size_t b = 0; b < n1; ++b)
      for (std::size_t a = 0; a < n1; ++a)
        lmass_[(c * n1 + b) * n1 + a] = jac_ * w[a] * w[b] * w[c];
  lu_.resize(npe);
  ly_.resize(npe);
  ldx_.resize(npe);
  ldy_.resize(npe);
  ldz_.resize(npe);
}

void Operators3D::elem_stiffness(const double* u, double* y) const {
  const auto n1 = static_cast<std::size_t>(d_->order()) + 1;
  const auto& w = d_->rule().weights;
  const double cx = jac_ * rx_ * rx_;
  const double cy = jac_ * ry_ * ry_;
  const double cz = jac_ * rz_ * rz_;
  const std::size_t npe = n1 * n1 * n1;
  for (std::size_t q = 0; q < npe; ++q) y[q] = 0.0;
  // x: every (b,c) line of the element in one batched call, row scale wb*wc
  la::simd::lines_apply_t(GT_.data(), n1, n1 * n1, u, y, ww_.data(), cx);
  // y: per c-plane, G across the b rows, column scale wa
  for (std::size_t c = 0; c < n1; ++c)
    la::simd::lines_apply(G_.data(), n1, n1, u + c * n1 * n1, y + c * n1 * n1, w.data(),
                          cy * w[c]);
  // z: whole element as one plane of n1^2 columns, column scale wa*wb
  la::simd::lines_apply(G_.data(), n1, n1 * n1, u, y, ww_.data(), cz);
}

void Operators3D::elem_helmholtz(double lambda, double nu, const double* u, double* y) const {
  const auto n1 = static_cast<std::size_t>(d_->order()) + 1;
  const auto& w = d_->rule().weights;
  const double cx = nu * jac_ * rx_ * rx_;
  const double cy = nu * jac_ * ry_ * ry_;
  const double cz = nu * jac_ * rz_ * rz_;
  const std::size_t npe = n1 * n1 * n1;
  for (std::size_t q = 0; q < npe; ++q) y[q] = 0.0;
  la::simd::lines_apply_t(GT_.data(), n1, n1 * n1, u, y, ww_.data(), cx);
  for (std::size_t c = 0; c < n1; ++c)
    la::simd::lines_apply(G_.data(), n1, n1, u + c * n1 * n1, y + c * n1 * n1, w.data(),
                          cy * w[c]);
  la::simd::lines_apply(G_.data(), n1, n1 * n1, u, y, ww_.data(), cz);
  // lumped mass term folded into the element pass (sums to lambda*M*u)
  for (std::size_t q = 0; q < npe; ++q) y[q] += lambda * lmass_[q] * u[q];
}

void Operators3D::elem_stiffness_reference(const double* u, double* y) const {
  const int P = d_->order();
  const auto n1 = static_cast<std::size_t>(P) + 1;
  const auto& w = d_->rule().weights;
  const double cx = jac_ * rx_ * rx_;
  const double cy = jac_ * ry_ * ry_;
  const double cz = jac_ * rz_ * rz_;
  const std::size_t npe = n1 * n1 * n1;
  for (std::size_t q = 0; q < npe; ++q) y[q] = 0.0;

  auto at = [n1](std::size_t a, std::size_t b, std::size_t c) {
    return (c * n1 + b) * n1 + a;
  };
  // x-lines
  for (std::size_t c = 0; c < n1; ++c)
    for (std::size_t b = 0; b < n1; ++b) {
      const double coef = cx * w[b] * w[c];
      const double* line = u + at(0, b, c);  // contiguous in a
      double* yl = y + at(0, b, c);
      for (std::size_t a = 0; a < n1; ++a)
        yl[a] += coef * la::simd::dot(G_.row(a), line, n1);
    }
  // y-lines
  for (std::size_t c = 0; c < n1; ++c)
    for (std::size_t a = 0; a < n1; ++a) {
      const double coef = cy * w[a] * w[c];
      for (std::size_t b = 0; b < n1; ++b) {
        double s = 0.0;
        const double* Gb = G_.row(b);
        for (std::size_t m = 0; m < n1; ++m) s += Gb[m] * u[at(a, m, c)];
        y[at(a, b, c)] += coef * s;
      }
    }
  // z-lines
  for (std::size_t b = 0; b < n1; ++b)
    for (std::size_t a = 0; a < n1; ++a) {
      const double coef = cz * w[a] * w[b];
      for (std::size_t c = 0; c < n1; ++c) {
        double s = 0.0;
        const double* Gc = G_.row(c);
        for (std::size_t m = 0; m < n1; ++m) s += Gc[m] * u[at(a, b, m)];
        y[at(a, b, c)] += coef * s;
      }
    }
}

void Operators3D::apply_stiffness(const la::Vector& u, la::Vector& y) const {
  if (y.size() != u.size()) y.resize(u.size());
  y.fill(0.0);
  telemetry::count("sem.apply.stiffness");
  for (std::size_t e = 0; e < d_->num_elements(); ++e) {
    d_->gather(u, e, lu_.data());
    elem_stiffness(lu_.data(), ly_.data());
    d_->scatter_add(ly_.data(), e, y);
  }
}

void Operators3D::apply_stiffness_reference(const la::Vector& u, la::Vector& y) const {
  const std::size_t npe = d_->nodes_per_element();
  if (y.size() != u.size()) y.resize(u.size());
  y.fill(0.0);
  // lint: sem-alloc-ok (reference baseline keeps the pre-fast-path per-call scratch)
  std::vector<double> lu(npe), ly(npe);
  for (std::size_t e = 0; e < d_->num_elements(); ++e) {
    d_->gather(u, e, lu.data());
    elem_stiffness_reference(lu.data(), ly.data());
    d_->scatter_add(ly.data(), e, y);
  }
}

void Operators3D::apply_helmholtz(double lambda, double nu, const la::Vector& u,
                                  la::Vector& y) const {
  if (y.size() != u.size()) y.resize(u.size());
  y.fill(0.0);
  telemetry::count("sem.apply.helmholtz");
  for (std::size_t e = 0; e < d_->num_elements(); ++e) {
    d_->gather(u, e, lu_.data());
    elem_helmholtz(lambda, nu, lu_.data(), ly_.data());
    d_->scatter_add(ly_.data(), e, y);
  }
}

void Operators3D::apply_helmholtz_reference(double lambda, double nu, const la::Vector& u,
                                            la::Vector& y) const {
  apply_stiffness_reference(u, y);
  la::simd::scale(nu, y.data(), y.size());
  for (std::size_t g = 0; g < u.size(); ++g) y[g] += lambda * mass_[g] * u[g];
}

la::Vector Operators3D::helmholtz_diag(double lambda, double nu) const {
  la::Vector dg(d_->num_nodes());
  for (std::size_t g = 0; g < dg.size(); ++g) dg[g] = lambda * mass_[g] + nu * stiff_diag_[g];
  return dg;
}

void Operators3D::elem_derivs(const double* u, double* dx, double* dy, double* dz) const {
  const auto n1 = static_cast<std::size_t>(d_->order()) + 1;
  const auto& D = d_->diff_matrix();
  const std::size_t npe = n1 * n1 * n1;
  for (std::size_t q = 0; q < npe; ++q) dx[q] = dy[q] = dz[q] = 0.0;
  la::simd::lines_apply_t(DT_.data(), n1, n1 * n1, u, dx, nullptr, rx_);
  for (std::size_t c = 0; c < n1; ++c)
    la::simd::lines_apply(D.data(), n1, n1, u + c * n1 * n1, dy + c * n1 * n1, nullptr, ry_);
  la::simd::lines_apply(D.data(), n1, n1 * n1, u, dz, nullptr, rz_);
}

void Operators3D::elem_derivs_reference(const double* u, double* dx, double* dy,
                                        double* dz) const {
  const int P = d_->order();
  const auto n1 = static_cast<std::size_t>(P) + 1;
  const auto& D = d_->diff_matrix();
  auto at = [n1](std::size_t a, std::size_t b, std::size_t c) { return (c * n1 + b) * n1 + a; };
  for (std::size_t c = 0; c < n1; ++c)
    for (std::size_t b = 0; b < n1; ++b)
      for (std::size_t a = 0; a < n1; ++a) {
        double sx = 0.0, sy = 0.0, sz = 0.0;
        for (std::size_t m = 0; m < n1; ++m) {
          sx += D(a, m) * u[at(m, b, c)];
          sy += D(b, m) * u[at(a, m, c)];
          sz += D(c, m) * u[at(a, b, m)];
        }
        dx[at(a, b, c)] = rx_ * sx;
        dy[at(a, b, c)] = ry_ * sy;
        dz[at(a, b, c)] = rz_ * sz;
      }
}

void Operators3D::gradient(const la::Vector& u, la::Vector& ddx, la::Vector& ddy,
                           la::Vector& ddz) const {
  const std::size_t n = d_->num_nodes();
  const std::size_t npe = d_->nodes_per_element();
  for (la::Vector* v : {&ddx, &ddy, &ddz}) {
    if (v->size() != n) v->resize(n);
    v->fill(0.0);
  }
  for (std::size_t e = 0; e < d_->num_elements(); ++e) {
    d_->gather(u, e, lu_.data());
    elem_derivs(lu_.data(), ldx_.data(), ldy_.data(), ldz_.data());
    for (std::size_t k = 0; k < npe; ++k) {
      const double m = lmass_[k];
      ldx_[k] *= m;
      ldy_[k] *= m;
      ldz_[k] *= m;
    }
    d_->scatter_add(ldx_.data(), e, ddx);
    d_->scatter_add(ldy_.data(), e, ddy);
    d_->scatter_add(ldz_.data(), e, ddz);
  }
  for (std::size_t g = 0; g < n; ++g) {
    ddx[g] /= mass_[g];
    ddy[g] /= mass_[g];
    ddz[g] /= mass_[g];
  }
}

void Operators3D::gradient_reference(const la::Vector& u, la::Vector& ddx, la::Vector& ddy,
                                     la::Vector& ddz) const {
  const std::size_t n = d_->num_nodes();
  const std::size_t npe = d_->nodes_per_element();
  const auto& w = d_->rule().weights;
  for (la::Vector* v : {&ddx, &ddy, &ddz}) {
    if (v->size() != n) v->resize(n);
    v->fill(0.0);
  }
  // lint: sem-alloc-ok (reference baseline keeps the pre-fast-path per-call scratch)
  std::vector<double> lu(npe), dx(npe), dy(npe), dz(npe);
  const auto n1 = static_cast<std::size_t>(d_->order()) + 1;
  for (std::size_t e = 0; e < d_->num_elements(); ++e) {
    d_->gather(u, e, lu.data());
    elem_derivs_reference(lu.data(), dx.data(), dy.data(), dz.data());
    std::size_t k = 0;
    for (std::size_t c = 0; c < n1; ++c)
      for (std::size_t b = 0; b < n1; ++b)
        for (std::size_t a = 0; a < n1; ++a, ++k) {
          const double m = jac_ * w[a] * w[b] * w[c];
          dx[k] *= m;
          dy[k] *= m;
          dz[k] *= m;
        }
    d_->scatter_add(dx.data(), e, ddx);
    d_->scatter_add(dy.data(), e, ddy);
    d_->scatter_add(dz.data(), e, ddz);
  }
  for (std::size_t g = 0; g < n; ++g) {
    ddx[g] /= mass_[g];
    ddy[g] /= mass_[g];
    ddz[g] /= mass_[g];
  }
}

void Operators3D::divergence(const la::Vector& u, const la::Vector& v, const la::Vector& w,
                             la::Vector& div) const {
  if (div.size() != u.size()) div.resize(u.size());
  gradient(u, gx_, gy_, gz_);
  for (std::size_t g = 0; g < u.size(); ++g) div[g] = gx_[g];
  gradient(v, gx_, gy_, gz_);
  for (std::size_t g = 0; g < u.size(); ++g) div[g] += gy_[g];
  gradient(w, gx_, gy_, gz_);
  for (std::size_t g = 0; g < u.size(); ++g) div[g] += gz_[g];
}

void Operators3D::convection(const la::Vector& u, const la::Vector& v, const la::Vector& w,
                             la::Vector& cu, la::Vector& cv, la::Vector& cw) const {
  if (cu.size() != u.size()) cu.resize(u.size());
  if (cv.size() != u.size()) cv.resize(u.size());
  if (cw.size() != u.size()) cw.resize(u.size());
  gradient(u, gx_, gy_, gz_);
  for (std::size_t g = 0; g < u.size(); ++g)
    cu[g] = u[g] * gx_[g] + v[g] * gy_[g] + w[g] * gz_[g];
  gradient(v, gx_, gy_, gz_);
  for (std::size_t g = 0; g < u.size(); ++g)
    cv[g] = u[g] * gx_[g] + v[g] * gy_[g] + w[g] * gz_[g];
  gradient(w, gx_, gy_, gz_);
  for (std::size_t g = 0; g < u.size(); ++g)
    cw[g] = u[g] * gx_[g] + v[g] * gy_[g] + w[g] * gz_[g];
}

double Operators3D::integral(const la::Vector& u) const {
  double s = 0.0;
  for (std::size_t g = 0; g < u.size(); ++g) s += mass_[g] * u[g];
  return s;
}

// ---------------------------------------------------------------------------

HelmholtzSolver3D::HelmholtzSolver3D(const Operators3D& ops, double lambda, double nu,
                                     std::vector<HexFace> dirichlet_faces)
    : ops_(&ops), lambda_(lambda), nu_(nu) {
  const auto& d = ops.disc();
  is_dirichlet_.assign(d.num_nodes(), 0);
  for (HexFace f : dirichlet_faces)
    for (std::size_t g : d.face_nodes(f)) is_dirichlet_[g] = 1;
  for (std::size_t g = 0; g < is_dirichlet_.size(); ++g)
    if (is_dirichlet_[g]) dnodes_.push_back(g);
  precond_diag_ = ops.helmholtz_diag(lambda, nu);
  for (std::size_t g : dnodes_) precond_diag_[g] = 1.0;
}

la::CgResult HelmholtzSolver3D::solve(const la::Vector& f,
                                      const std::function<double(double, double, double)>& g,
                                      la::Vector& u) {
  const auto& d = ops_->disc();
  la::Vector bc(dnodes_.size());
  for (std::size_t k = 0; k < dnodes_.size(); ++k)
    bc[k] = g(d.node_x(dnodes_[k]), d.node_y(dnodes_[k]), d.node_z(dnodes_[k]));
  return solve_with_values(f, bc, u);
}

la::CgResult HelmholtzSolver3D::solve_with_values(const la::Vector& f,
                                                  const la::Vector& bc_values, la::Vector& u) {
  const auto& d = ops_->disc();
  const std::size_t n = d.num_nodes();
  const auto& M = ops_->mass_diag();

  la::Vector tmp_in(n), tmp_out(n);
  la::LinearOperator op = [&](const double* x, double* y) {
    for (std::size_t gi = 0; gi < n; ++gi) tmp_in[gi] = is_dirichlet_[gi] ? 0.0 : x[gi];
    ops_->apply_helmholtz(lambda_, nu_, tmp_in, tmp_out);
    for (std::size_t gi = 0; gi < n; ++gi) y[gi] = is_dirichlet_[gi] ? x[gi] : tmp_out[gi];
  };

  la::Vector b(n);
  for (std::size_t gi = 0; gi < n; ++gi) b[gi] = M[gi] * f[gi];

  la::Vector lift(n, 0.0);
  if (!dnodes_.empty()) {
    for (std::size_t k = 0; k < dnodes_.size(); ++k) lift[dnodes_[k]] = bc_values[k];
    la::Vector Alift(n);
    ops_->apply_helmholtz(lambda_, nu_, lift, Alift);
    for (std::size_t gi = 0; gi < n; ++gi) b[gi] -= Alift[gi];
  }
  for (std::size_t gi = 0; gi < n; ++gi)
    if (is_dirichlet_[gi]) b[gi] = 0.0;

  if (pure_neumann() && lambda_ == 0.0) {
    double sum_b = 0.0, sum_m = 0.0;
    for (std::size_t gi = 0; gi < n; ++gi) {
      sum_b += b[gi];
      sum_m += M[gi];
    }
    const double shift = sum_b / sum_m;
    for (std::size_t gi = 0; gi < n; ++gi) b[gi] -= M[gi] * shift;
  }

  la::Vector u0(n, 0.0);
  projector_.predict(op, b, u0);
  auto res = la::cg_solve(op, b, u0, la::jacobi_preconditioner(precond_diag_), opt_);
  projector_.record(op, u0);

  if (u.size() != n) u.resize(n);
  for (std::size_t gi = 0; gi < n; ++gi) u[gi] = u0[gi] + lift[gi];

  if (pure_neumann() && lambda_ == 0.0) {
    double num = 0.0, den = 0.0;
    for (std::size_t gi = 0; gi < n; ++gi) {
      num += M[gi] * u[gi];
      den += M[gi];
    }
    for (std::size_t gi = 0; gi < n; ++gi) u[gi] -= num / den;
  }
  return res;
}

void HelmholtzSolver3D::save_state(resilience::BlobWriter& w) const {
  resilience::put_projector(w, projector_);
}

void HelmholtzSolver3D::load_state(resilience::BlobReader& r) {
  resilience::get_projector(r, projector_);
}

}  // namespace sem
