#pragma once
// Unsteady incompressible Navier-Stokes in 3D on hexahedral spectral
// elements — the dimensionality of the paper's production solver. Same
// semi-implicit stiffly-stable splitting as the (exhaustively validated)
// 2D solver in ns2d.hpp: explicit advection (EX1/EX2), pressure projection
// (non-incremental at order 1, pressure-increment at order 2), implicit
// viscosity. Boundary conditions per box face: velocity Dirichlet from
// functions of (x, y, z, t), or natural outflow.

#include <array>
#include <functional>
#include <memory>
#include <vector>

#include "sem/hex3d.hpp"

namespace resilience {
class BlobWriter;
class BlobReader;
}  // namespace resilience

namespace sem {

class NavierStokes3D {
public:
  struct Params {
    double nu = 0.01;
    double dt = 1e-3;
    int time_order = 1;  ///< 1 = IMEX Euler, 2 = BDF2/EX2 + pressure increment
    /// Faces carrying pressure Dirichlet p = 0; empty = pure Neumann.
    std::vector<HexFace> pressure_dirichlet_faces = {HexFace::X1};
  };

  using BcFn = std::function<double(double x, double y, double z, double t)>;

  NavierStokes3D(const Discretization3D& disc, Params params);

  /// Velocity Dirichlet on a face (defaults: all faces no-slip walls).
  void set_velocity_bc(HexFace f, BcFn u, BcFn v, BcFn w);
  /// Natural outflow on a face (no velocity constraint there).
  void set_natural_bc(HexFace f);

  void set_body_force(BcFn fx, BcFn fy, BcFn fz);
  void set_initial(const BcFn& u0, const BcFn& v0, const BcFn& w0);

  /// Advance one step; returns total CG iterations.
  std::size_t step();

  /// Checkpoint the full time-stepping state (fields, order-2 history, time,
  /// solver warm-start projectors). BCs/forcing are configuration and must be
  /// re-established by the driver before load_state.
  void save_state(resilience::BlobWriter& w) const;
  void load_state(resilience::BlobReader& r);

  /// Serialize only the Helmholtz solvers' successive-solution projector
  /// bases (no fields, no time) — the ensemble engine's "projector"
  /// warm-start mode. Requires identical discretization and time_order.
  void save_warmstart(resilience::BlobWriter& w) const;
  void load_warmstart(resilience::BlobReader& r);

  double time() const { return t_; }
  const la::Vector& u() const { return u_; }
  const la::Vector& v() const { return v_; }
  const la::Vector& w() const { return w_; }
  const la::Vector& p() const { return p_; }
  const Discretization3D& disc() const { return *d_; }
  const Operators3D& ops() const { return ops_; }

private:
  struct FaceBc {
    bool natural = false;
    BcFn u, v, w;
  };

  void build_solvers();
  void fill_bc_values(double t, la::Vector& ubc, la::Vector& vbc, la::Vector& wbc) const;

  // load_state dereferences d_ only to validate field sizes; the
  // discretization itself is configuration.
  // analyze: no-checkpoint (constructor configuration, re-supplied by the driver)
  const Discretization3D* d_;
  // analyze: no-checkpoint (constructor configuration)
  Params params_;
  // analyze: no-checkpoint (derived operator tables, rebuilt from d_)
  Operators3D ops_;

  // analyze: no-checkpoint (BC callbacks are configuration, re-established by the driver)
  std::array<FaceBc, 6> bc_{};
  // analyze: no-checkpoint (forcing callbacks are configuration)
  BcFn fx_, fy_, fz_;

  la::Vector u_, v_, w_, p_;
  la::Vector u_prev_, v_prev_, w_prev_, cu_prev_, cv_prev_, cw_prev_;
  bool have_history_ = false;
  double t_ = 0.0;

  std::unique_ptr<HelmholtzSolver3D> pressure_solver_;
  std::unique_ptr<HelmholtzSolver3D> velocity_solver_;
  std::unique_ptr<HelmholtzSolver3D> velocity_solver2_;
  // analyze: no-checkpoint (derived from BC registration, rebuilt by build_solvers)
  std::vector<std::size_t> dnodes_;  ///< union of Dirichlet-face nodes
  // analyze: no-checkpoint (derived from BC registration, rebuilt by build_solvers)
  std::vector<char> node_face_;      ///< node -> owning face index (255 = none)
};

}  // namespace sem
