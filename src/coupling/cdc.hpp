#pragma once
// Continuum-atomistic coupling (paper Sec. 3.3): an atomistic subdomain
// Omega_A (a DPD box) is embedded in a continuum patch Omega_C (a 2D SEM
// Navier-Stokes solver). Every exchange period tau the continuum velocity
// is interpolated onto the atomistic interface samples, scaled by Eq. (1),
// and imposed on the DPD inflow buffer; the DPD solver then takes
// dpd_per_ns * exchange_every_ns steps per interval (Fig. 5 schedule).
//
// Geometry mapping: DPD x <-> NS x, DPD z <-> NS y, DPD y is the
// out-of-plane (homogeneous, periodic) direction.

#include <memory>

#include "coupling/scales.hpp"
#include "dpd/buffers.hpp"
#include "dpd/inflow.hpp"
#include "dpd/sampling.hpp"
#include "dpd/system.hpp"
#include "sem/ns2d.hpp"

namespace coupling {

struct EmbeddedRegion {
  /// NS-space rectangle covered by the DPD box.
  double x0 = 0.0, x1 = 1.0;  ///< NS x-range of the DPD box
  double y0 = 0.0, y1 = 1.0;  ///< NS y-range of the DPD box (maps to DPD z)
};

class ContinuumDpdCoupler {
public:
  /// `flow_bc` is the DPD inflow/outflow machinery whose target velocity the
  /// coupler refreshes each exchange. All objects must outlive the coupler.
  ContinuumDpdCoupler(sem::NavierStokes2D& ns, dpd::DpdSystem& dpd_sys, dpd::FlowBc& flow_bc,
                      const EmbeddedRegion& region, const ScaleMap& scales,
                      const TimeProgression& tp);

  /// Register additional interface windows (the paper's Gamma_I1..5 planar
  /// surfaces): their shared target is refreshed at every exchange and they
  /// are applied each DPD step. Must outlive the coupler.
  void set_buffer_zones(dpd::BufferZones* zones) { buffers_ = zones; }

  /// One coupling interval (Fig. 5): refresh atomistic BCs from the
  /// continuum, then advance NS by exchange_every_ns steps and DPD by
  /// dpd_per_ns steps per NS step. Optional per-DPD-step callback (platelet
  /// updates, sampling...). Returns the total continuum CG iterations spent
  /// (warm-start accounting for the ensemble engine).
  std::size_t advance_interval(const std::function<void()>& per_dpd_step = {});

  std::size_t exchanges() const { return exchanges_; }

  /// Checkpoint the coupling bookkeeping (interface exchange counter).
  void save_state(resilience::BlobWriter& w) const;
  void load_state(resilience::BlobReader& r);

  /// Map a DPD-space point to NS space.
  void dpd_to_ns(const dpd::Vec3& p, double& x_ns, double& y_ns) const;

  /// Continuum velocity at a DPD point, in DPD units (the imposed-BC field).
  dpd::Vec3 continuum_velocity_at(const dpd::Vec3& p) const;

  /// Fig. 9 diagnostic: mean |u_DPD - u_NS| over the sampler's bins (both in
  /// DPD units), using a window of already-accumulated samples.
  double interface_mismatch(dpd::FieldSampler& sampler) const;

  const ScaleMap& scales() const { return scales_; }
  const TimeProgression& progression() const { return tp_; }
  dpd::DpdSystem& dpd_system() { return *dpd_; }
  sem::NavierStokes2D& ns_solver() { return *ns_; }

private:
  // analyze: no-checkpoint (coupled solvers checkpoint separately via the coordinator)
  sem::NavierStokes2D* ns_;
  // analyze: no-checkpoint (coupled solvers checkpoint separately via the coordinator)
  dpd::DpdSystem* dpd_;
  // analyze: no-checkpoint (coupled solvers checkpoint separately via the coordinator)
  dpd::FlowBc* flow_bc_;
  // analyze: no-checkpoint (owned by the driver; checkpointed separately if registered)
  dpd::BufferZones* buffers_ = nullptr;
  // analyze: no-checkpoint (constructor configuration)
  EmbeddedRegion region_;
  // analyze: no-checkpoint (constructor configuration)
  ScaleMap scales_;
  // analyze: no-checkpoint (constructor configuration)
  TimeProgression tp_;
  std::size_t exchanges_ = 0;
};

}  // namespace coupling
