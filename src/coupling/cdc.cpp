#include "coupling/cdc.hpp"

#include "resilience/blob.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

namespace coupling {

ContinuumDpdCoupler::ContinuumDpdCoupler(sem::NavierStokes2D& ns, dpd::DpdSystem& dpd_sys,
                                         dpd::FlowBc& flow_bc, const EmbeddedRegion& region,
                                         const ScaleMap& scales, const TimeProgression& tp)
    : ns_(&ns), dpd_(&dpd_sys), flow_bc_(&flow_bc), region_(region), scales_(scales), tp_(tp) {
  scales_.validate();
  // A degenerate region makes dpd_to_ns collapse every particle onto a line
  // (divide-free but silently wrong); reject it up front.
  if (!(region_.x1 > region_.x0) || !(region_.y1 > region_.y0))
    throw std::invalid_argument("ContinuumDpdCoupler: degenerate EmbeddedRegion [" +
                                std::to_string(region_.x0) + ", " + std::to_string(region_.x1) +
                                "] x [" + std::to_string(region_.y0) + ", " +
                                std::to_string(region_.y1) + "]: need x1 > x0 and y1 > y0");
}

void ContinuumDpdCoupler::dpd_to_ns(const dpd::Vec3& p, double& x_ns, double& y_ns) const {
  const auto& box = dpd_->params().box;
  x_ns = region_.x0 + (p.x / box.x) * (region_.x1 - region_.x0);
  y_ns = region_.y0 + (p.z / box.z) * (region_.y1 - region_.y0);
}

dpd::Vec3 ContinuumDpdCoupler::continuum_velocity_at(const dpd::Vec3& p) const {
  double x, y;
  dpd_to_ns(p, x, y);
  // clamp into the NS domain to be robust at the region edges
  const auto& mesh = ns_->disc().mesh();
  const double eps = 1e-9;
  x = std::clamp(x, mesh.x0() + eps, mesh.x0() + mesh.dx() * mesh.grid_nx() - eps);
  y = std::clamp(y, mesh.y0() + eps, mesh.y0() + mesh.dy() * mesh.grid_ny() - eps);
  const double u_ns = ns_->disc().evaluate(ns_->u(), x, y);
  const double v_ns = ns_->disc().evaluate(ns_->v(), x, y);
  return {scales_.velocity_ns_to_dpd(u_ns), 0.0, scales_.velocity_ns_to_dpd(v_ns)};
}

std::size_t ContinuumDpdCoupler::advance_interval(const std::function<void()>& per_dpd_step) {
  // exchange: interpolate the continuum field onto the atomistic interface
  // (the FlowBc buffer and every registered Gamma_I window evaluate the
  // imposed velocity pointwise)
  auto field = [this](const dpd::Vec3& p) { return continuum_velocity_at(p); };
  flow_bc_->set_target_velocity(field);
  if (buffers_) buffers_->set_shared_target(field);
  ++exchanges_;

  // Fig. 5 time progression
  std::size_t cg_iters = 0;
  for (int s = 0; s < tp_.exchange_every_ns; ++s) {
    cg_iters += ns_->step();
    for (int q = 0; q < tp_.dpd_per_ns; ++q) {
      dpd_->step();
      flow_bc_->apply(*dpd_);
      if (buffers_) buffers_->apply(*dpd_);
      if (per_dpd_step) per_dpd_step();
    }
  }
  return cg_iters;
}

double ContinuumDpdCoupler::interface_mismatch(dpd::FieldSampler& sampler) const {
  const auto snap = sampler.snapshot();
  double acc = 0.0;
  std::size_t cnt = 0;
  for (std::size_t b = 0; b < snap.size(); ++b) {
    const dpd::Vec3 c = sampler.bin_center(b);
    if (dpd_->geometry().sdf(c) < 1.0) continue;  // skip wall-contaminated bins
    const dpd::Vec3 v_ns = continuum_velocity_at(c);
    acc += std::fabs(snap[b] - v_ns.x);
    ++cnt;
  }
  return cnt ? acc / static_cast<double>(cnt) : 0.0;
}

void ContinuumDpdCoupler::save_state(resilience::BlobWriter& w) const {
  w.pod(static_cast<std::uint64_t>(exchanges_));
}

void ContinuumDpdCoupler::load_state(resilience::BlobReader& r) {
  exchanges_ = static_cast<std::size_t>(r.pod<std::uint64_t>());
}

}  // namespace coupling
