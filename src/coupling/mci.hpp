#pragma once
// Multilevel Communicating Interface (paper Sec. 3.1/3.2) over the xmp
// runtime:
//   L1 = World
//   L2 = topology groups (racks / machine partitions)
//   L3 = task groups (one per solver instance / patch), derived per task
//   L4 = interface groups: the subset of an L3 whose partitions touch a
//        given interface
// plus the three-step inter-patch exchange (gather on the L4 root ->
// root-to-root p2p over World -> scatter from the peer L4 root) and the
// geometric discovery of which continuum task owns which interface points
// (Sec. 3.3 preprocessing).

#include <functional>
#include <vector>

#include "xmp/comm.hpp"

namespace coupling {

struct MciConfig {
  /// rack id per world rank (topology-oriented split -> L2).
  std::vector<int> rack_of;
  /// task id per world rank (task-oriented split -> L3). Tasks usually nest
  /// inside racks but are not required to.
  std::vector<int> task_of;
};

struct Mci {
  xmp::Comm world;
  xmp::Comm l2;  ///< all ranks in my rack
  xmp::Comm l3;  ///< all ranks in my task
  int rack = -1;
  int task = -1;
};

/// Collective over `world`.
Mci build_mci(const xmp::Comm& world, const MciConfig& cfg);

/// Derive an L4 subgroup of `l3` (collective over l3): ranks passing
/// member=true join. Returns an invalid comm on non-members.
xmp::Comm derive_l4(const xmp::Comm& l3, bool member);

/// One side of an interface: moves values for interface samples between two
/// L4 groups with the 3-step pattern. Both sides agree on the total sample
/// count and a tag; each L4 member owns a subset of sample indices.
class InterfaceChannel {
public:
  /// Collective over the L4 group. `my_samples`: global sample indices owned
  /// by this rank (the root learns everyone's via gather). `peer_root_world`:
  /// world rank of the peer group's root.
  InterfaceChannel(xmp::Comm world, xmp::Comm l4, int peer_root_world,
                   std::size_t total_samples, std::vector<std::size_t> my_samples, int tag);

  /// Step 1+2: gather local contributions to the root, which assembles the
  /// full sample vector and sends it to the peer root.
  void send(const std::vector<double>& my_values) const;

  /// Step 2+3: root receives the peer's full vector and scatters each rank
  /// its owned samples. Returns values aligned with my_samples.
  std::vector<double> recv() const;

  const std::vector<std::size_t>& my_samples() const { return my_samples_; }
  bool is_root() const { return l4_.valid() && l4_.rank() == 0; }

private:
  xmp::Comm world_, l4_;
  int peer_root_world_;
  std::size_t total_;
  std::vector<std::size_t> my_samples_;
  std::vector<std::vector<std::size_t>> all_samples_;  // root only: per-rank indices
  int tag_;
};

/// Geometric L4 discovery (paper Sec. 3.3): the atomistic task's root sends
/// interface sample coordinates to every continuum task's root; each
/// continuum rank claims the samples inside its partition; claims are
/// reported back. Collective over `world`.
///
/// Inputs:
///  * mci            — this rank's communicators,
///  * atomistic_task — the task id of the atomistic solver,
///  * samples        — 3 doubles (x, y, z) per interface sample, valid on the
///                     atomistic task's L3 root (others may pass empty),
///  * owns           — predicate: does THIS rank's partition own a point?
///                     (evaluated on continuum ranks only)
///
/// Output per rank: the sample indices claimed by this rank (continuum
/// ranks), or, on atomistic ranks, the indices grouped per continuum task
/// (by task id) on the L3 root.
struct DiscoveryResult {
  /// continuum ranks: samples this rank owns
  std::vector<std::size_t> my_claims;
  /// atomistic L3 root: per-task claimed indices (task id -> samples)
  std::vector<std::pair<int, std::vector<std::size_t>>> task_claims;
};

DiscoveryResult discover_interface_owners(
    const Mci& mci, int atomistic_task, const std::vector<double>& samples,
    const std::function<bool(double, double, double)>& owns);

}  // namespace coupling
