#pragma once
// Continuum-continuum multi-patch coupling (paper Sec. 3.2): a monolithic
// domain is subdivided into overlapping patches, each solved by its own
// NavierStokes2D instance; once per time step, interface (artificial
// boundary) velocity conditions are refreshed from the neighbouring patch's
// interior solution. This keeps each CG solve inside a small subdomain —
// the mechanism behind the paper's multi-patch scalability (Tables 3-4) —
// while the overlap restores continuity of the global solution.

#include <memory>
#include <vector>

#include "sem/ns2d.hpp"

namespace coupling {

struct MultiPatchParams {
  double L = 8.0, H = 1.0;     ///< channel extents
  std::size_t nx = 16, ny = 2; ///< global element grid
  int order = 5;
  int patches = 2;
  std::size_t overlap = 1;     ///< overlap width in element columns

  /// Optional aneurysm-like cavity on the upper wall (the Fig. 1 geometry):
  /// active for x in (cav_x0, cav_x1), depth rounded to element rows.
  /// Patch interfaces may cut straight through the cavity — the interface
  /// tagging follows the masked geometry.
  bool with_cavity = false;
  double cav_x0 = 0.0, cav_x1 = 0.0, cav_depth = 0.0;

  sem::NavierStokes2D::Params ns;  ///< nu, dt (pressure tags managed here)
};

/// Boundary tags used for the artificial interfaces.
inline constexpr int kIfaceWest = mesh::kUserTagBase + 1;
inline constexpr int kIfaceEast = mesh::kUserTagBase + 2;

class MultiPatchChannel {
public:
  /// Inlet profile u(y) imposed at the true inlet (v = 0 there).
  MultiPatchChannel(const MultiPatchParams& p,
                    std::function<double(double y, double t)> inlet_u);

  int num_patches() const { return static_cast<int>(solvers_.size()); }
  sem::NavierStokes2D& patch(int k) { return *solvers_[static_cast<std::size_t>(k)]; }
  const sem::Discretization& disc(int k) const {
    return *discs_[static_cast<std::size_t>(k)];
  }

  /// One global time step: exchange interface conditions (once, as in the
  /// paper), then advance every patch.
  void step();

  double time() const { return solvers_.front()->time(); }

  /// Max velocity mismatch across all patch interfaces, evaluated at
  /// `samples` points per interface (Fig. 9 diagnostic).
  double interface_jump(int samples = 7) const;

  /// Max pressure mismatch across interfaces after aligning each patch
  /// pair's mean over the overlap (interior patches run mean-pinned
  /// pressure, so only the gauge-free part is comparable — Fig. 9 contours).
  double pressure_jump(int samples = 7) const;

  /// Evaluate the composite solution at (x, y): uses the patch whose
  /// interior (away from artificial boundaries) contains the point.
  double evaluate_u(double x, double y) const;
  double evaluate_v(double x, double y) const;

  /// x-extents [lo, hi] of patch k.
  std::pair<double, double> patch_extent(int k) const;

private:
  double eval_patch_u(int k, double x, double y) const;
  double eval_patch_v(int k, double x, double y) const;
  int owner_patch(double x) const;

  MultiPatchParams prm_;
  double dx_;
  std::vector<std::pair<std::size_t, std::size_t>> ranges_;  // element columns [b, e)
  std::vector<std::unique_ptr<mesh::QuadMesh>> meshes_;
  std::vector<std::unique_ptr<sem::Discretization>> discs_;
  std::vector<std::unique_ptr<sem::NavierStokes2D>> solvers_;
};

}  // namespace coupling
