#pragma once
// Replica ensembles (paper Sec. 3.3, Fig. 6): DPD-LAMMPS can replicate the
// atomistic domain and solve an array of identical problems with different
// random forcing; averaging the replicas improves the statistics by
// sqrt(N_A). To keep the continuum side unaware of the replication, the
// atomistic L3 is split into N_A replica groups L3_j; the L4 group of L3_1
// is the *master* that owns the single p2p channel to the continuum, and
// broadcasts/gathers interface data to/from the slave replicas.

#include <vector>

#include "xmp/comm.hpp"

namespace coupling {

class ReplicaEnsemble {
public:
  /// Collective over the atomistic L3. Ranks are divided into n_replicas
  /// contiguous groups (sizes as equal as possible).
  ReplicaEnsemble(const xmp::Comm& l3, int n_replicas);

  int num_replicas() const { return n_; }
  int replica_id() const { return rid_; }
  bool is_master_replica() const { return rid_ == 0; }
  /// This rank's replica communicator (every rank belongs to exactly one).
  const xmp::Comm& replica_comm() const { return rep_; }
  /// True on the root rank of this replica.
  bool is_replica_root() const { return rep_.rank() == 0; }
  /// True on the rank that talks to the continuum side (master replica root).
  bool is_ensemble_root() const { return rid_ == 0 && rep_.rank() == 0; }

  /// Fan interface data out to every replica: `data` significant on the
  /// ensemble root; every rank returns a copy (root-to-root bcast over the
  /// roots group, then intra-replica bcast).
  std::vector<double> distribute(std::vector<double> data) const;

  /// Average equal-length per-replica vectors: each replica root contributes
  /// `mine`; every rank returns the ensemble average (gathered on the
  /// ensemble root, averaged, redistributed).
  std::vector<double> gather_average(const std::vector<double>& mine) const;

private:
  xmp::Comm l3_;
  xmp::Comm rep_;    ///< my replica group
  xmp::Comm roots_;  ///< all replica roots (invalid on non-root ranks)
  int n_ = 1;
  int rid_ = 0;
};

}  // namespace coupling
