#pragma once
// Replica ensembles (paper Sec. 3.3, Fig. 6): DPD-LAMMPS can replicate the
// atomistic domain and solve an array of identical problems with different
// random forcing; averaging the replicas improves the statistics by
// sqrt(N_A). To keep the continuum side unaware of the replication, the
// atomistic L3 is split into N_A replica groups L3_j; the L4 group of L3_1
// is the *master* that owns the single p2p channel to the continuum, and
// broadcasts/gathers interface data to/from the slave replicas.

#include <vector>

#include "xmp/comm.hpp"

namespace resilience {
class BlobWriter;
class BlobReader;
}  // namespace resilience

namespace coupling {

class ReplicaEnsemble {
public:
  /// Collective over the atomistic L3. Ranks are divided into n_replicas
  /// contiguous groups (sizes as equal as possible).
  ReplicaEnsemble(const xmp::Comm& l3, int n_replicas);

  int num_replicas() const { return n_; }
  int replica_id() const { return rid_; }
  bool is_master_replica() const { return rid_ == 0; }
  /// This rank's replica communicator (every rank belongs to exactly one).
  const xmp::Comm& replica_comm() const { return rep_; }
  /// True on the root rank of this replica.
  bool is_replica_root() const { return rep_.rank() == 0; }
  /// True on the rank that talks to the continuum side (master replica root).
  bool is_ensemble_root() const { return rid_ == 0 && rep_.rank() == 0; }

  /// Fan interface data out to every replica: `data` significant on the
  /// ensemble root; every rank returns a copy (root-to-root bcast over the
  /// roots group, then intra-replica bcast).
  std::vector<double> distribute(std::vector<double> data) const;

  /// Average equal-length per-replica vectors: each replica root contributes
  /// `mine`; every rank returns the ensemble average (gathered on the
  /// ensemble root, averaged, redistributed).
  std::vector<double> gather_average(const std::vector<double>& mine) const;

  /// Post-step failover protocol: a collective health exchange over the
  /// *current* L3 in which every rank reports whether it is healthy (a rank
  /// that caught an injected/real fault reports false, then exits after this
  /// call). Any replica containing a dead rank is retired whole; the
  /// survivors are renumbered in old-id order, so losing the master promotes
  /// the lowest surviving replica — the continuum side never notices because
  /// the new master root re-owns the p2p channel. Returns true if this rank
  /// survives (its communicators were rebuilt over the shrunken ensemble),
  /// false if its replica was retired (all its comms are invalidated; the
  /// caller must leave the step loop). Throws if every replica failed.
  bool exchange_health(bool healthy);

  /// Replicas retired by exchange_health over the ensemble's lifetime.
  int replicas_lost() const { return lost_; }

  /// Checkpoint the ensemble bookkeeping; load verifies the restart
  /// ensemble shape (replica count, this rank's replica id) matches.
  void save_state(resilience::BlobWriter& w) const;
  void load_state(resilience::BlobReader& r);

private:
  // analyze: no-checkpoint (communicators are process topology, never serialised)
  xmp::Comm l3_;
  // analyze: no-checkpoint (communicators are process topology, never serialised)
  xmp::Comm rep_;    ///< my replica group
  // analyze: no-checkpoint (communicators are process topology, never serialised)
  xmp::Comm roots_;  ///< all replica roots (invalid on non-root ranks)
  int n_ = 1;
  int rid_ = 0;
  int lost_ = 0;
};

}  // namespace coupling
