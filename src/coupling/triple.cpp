#include "coupling/triple.hpp"

#include <algorithm>

namespace coupling {

namespace {
dpd::SamplerParams sampler_params(int bins, int component) {
  dpd::SamplerParams sp;
  sp.nx = bins;
  sp.ny = bins;
  sp.nz = bins;
  sp.component = component;
  return sp;
}
}  // namespace

TripleDecker::TripleDecker(ContinuumDpdCoupler& cdc, dpd::DpdSystem& md,
                           dpd::BufferZones& md_buffers, const NestedRegion& region,
                           const ScaleMap& scales_dpd_md, int md_per_dpd, int sampler_bins)
    : cdc_(&cdc), md_(&md), md_buffers_(&md_buffers), region_(region),
      scales_(scales_dpd_md), md_per_dpd_(md_per_dpd),
      sx_(cdc.dpd_system(), sampler_params(sampler_bins, 0)),
      sy_(cdc.dpd_system(), sampler_params(sampler_bins, 1)),
      sz_(cdc.dpd_system(), sampler_params(sampler_bins, 2)) {
  scales_.validate();
}

dpd::Vec3 TripleDecker::md_to_dpd(const dpd::Vec3& p_md) const {
  const auto& box = md_->params().box;
  return {region_.lo.x + (p_md.x / box.x) * (region_.hi.x - region_.lo.x),
          region_.lo.y + (p_md.y / box.y) * (region_.hi.y - region_.lo.y),
          region_.lo.z + (p_md.z / box.z) * (region_.hi.z - region_.lo.z)};
}

dpd::Vec3 TripleDecker::dpd_velocity_at_md_point(const dpd::Vec3& p_md) const {
  if (!have_field_) return {};
  const dpd::Vec3 p = md_to_dpd(p_md);
  // nearest sampler bin (bin counts are tiny, a scan is fine)
  std::size_t best = 0;
  double best_d = 1e300;
  for (std::size_t b = 0; b < mean_x_.size(); ++b) {
    const double d2 = (sx_.bin_center(b) - p).norm2();
    if (d2 < best_d) {
      best_d = d2;
      best = b;
    }
  }
  return {scales_.velocity_ns_to_dpd(mean_x_[best]),
          scales_.velocity_ns_to_dpd(mean_y_[best]),
          scales_.velocity_ns_to_dpd(mean_z_[best])};
}

void TripleDecker::advance_interval(const std::function<void()>& per_md_step) {
  // exchange: the DPD layer's windowed mean (previous interval) drives the
  // MD interface windows through the second Eq.-(1) map
  if (have_field_)
    md_buffers_->set_shared_target(
        [this](const dpd::Vec3& p_md) { return dpd_velocity_at_md_point(p_md); });
  ++exchanges_;

  cdc_->advance_interval([&] {
    // per DPD step: sample the DPD field, then run the MD substeps
    sx_.accumulate(cdc_->dpd_system());
    sy_.accumulate(cdc_->dpd_system());
    sz_.accumulate(cdc_->dpd_system());
    for (int q = 0; q < md_per_dpd_; ++q) {
      md_->step();
      md_buffers_->apply(*md_);
      if (per_md_step) per_md_step();
    }
  });

  mean_x_ = sx_.snapshot();
  mean_y_ = sy_.snapshot();
  mean_z_ = sz_.snapshot();
  have_field_ = true;
}

}  // namespace coupling
