#include "coupling/mci.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "telemetry/registry.hpp"

namespace coupling {

namespace {
constexpr int kTagDiscoverySamples = 9001;
constexpr int kTagDiscoveryClaims = 9002;
}  // namespace

Mci build_mci(const xmp::Comm& world, const MciConfig& cfg) {
  if (cfg.rack_of.size() != static_cast<std::size_t>(world.size()) ||
      cfg.task_of.size() != static_cast<std::size_t>(world.size()))
    throw std::invalid_argument("build_mci: config arrays must cover all world ranks");
  Mci m;
  m.world = world;
  m.rack = cfg.rack_of[static_cast<std::size_t>(world.rank())];
  m.task = cfg.task_of[static_cast<std::size_t>(world.rank())];
  m.l2 = world.split(m.rack, world.rank());
  m.l3 = world.split(m.task, world.rank());
  return m;
}

xmp::Comm derive_l4(const xmp::Comm& l3, bool member) {
  return l3.split(member ? 0 : xmp::kUndefined, l3.rank());
}

InterfaceChannel::InterfaceChannel(xmp::Comm world, xmp::Comm l4, int peer_root_world,
                                   std::size_t total_samples,
                                   std::vector<std::size_t> my_samples, int tag)
    : world_(std::move(world)), l4_(std::move(l4)), peer_root_world_(peer_root_world),
      total_(total_samples), my_samples_(std::move(my_samples)), tag_(tag) {
  if (!l4_.valid()) throw std::invalid_argument("InterfaceChannel: invalid L4 comm");
  std::vector<std::size_t> counts;
  auto all = l4_.gatherv(std::span<const std::size_t>(my_samples_), 0, &counts);
  if (l4_.rank() == 0) {
    all_samples_.resize(counts.size());
    std::size_t off = 0;
    for (std::size_t r = 0; r < counts.size(); ++r) {
      all_samples_[r].assign(all.begin() + static_cast<long>(off),
                             all.begin() + static_cast<long>(off + counts[r]));
      off += counts[r];
      for (std::size_t idx : all_samples_[r])
        if (idx >= total_) throw std::out_of_range("InterfaceChannel: sample index");
    }
  }
}

void InterfaceChannel::send(const std::vector<double>& my_values) const {
  telemetry::ScopedPhase phase("mci.exchange.send");
  if (my_values.size() != my_samples_.size())
    throw std::invalid_argument("InterfaceChannel::send: value count mismatch");
  // step 1: gather contributions on the L4 root
  auto all = l4_.gatherv(std::span<const double>(my_values), 0);
  if (l4_.rank() == 0) {
    // assemble the canonical sample vector
    std::vector<double> full(total_, 0.0);
    std::size_t off = 0;
    for (const auto& idxs : all_samples_) {
      for (std::size_t k = 0; k < idxs.size(); ++k) full[idxs[k]] = all[off + k];
      off += idxs.size();
    }
    // step 2: root-to-root over World
    telemetry::count("mci.exchange.bytes_sent", static_cast<double>(full.size() * sizeof(double)));
    world_.send(peer_root_world_, tag_, full);
  }
}

std::vector<double> InterfaceChannel::recv() const {
  telemetry::ScopedPhase phase("mci.exchange.recv");
  std::vector<std::vector<double>> parts;
  if (l4_.rank() == 0) {
    // step 2: root-to-root over World
    auto full = world_.recv<double>(peer_root_world_, tag_);
    if (full.size() != total_)
      throw std::runtime_error("InterfaceChannel::recv: payload size mismatch");
    telemetry::count("mci.exchange.bytes_recv", static_cast<double>(full.size() * sizeof(double)));
    parts.resize(all_samples_.size());
    for (std::size_t r = 0; r < all_samples_.size(); ++r) {
      parts[r].reserve(all_samples_[r].size());
      for (std::size_t idx : all_samples_[r]) parts[r].push_back(full[idx]);
    }
  }
  // step 3: scatter from the root
  return l4_.scatterv(parts, 0);
}

DiscoveryResult discover_interface_owners(
    const Mci& mci, int atomistic_task, const std::vector<double>& samples,
    const std::function<bool(double, double, double)>& owns) {
  telemetry::ScopedPhase phase("mci.discovery");
  DiscoveryResult out;
  const bool am_l3_root = mci.l3.valid() && mci.l3.rank() == 0;
  const bool am_atomistic = mci.task == atomistic_task;

  // Everyone learns (task, l3 root world rank) pairs.
  struct Info {
    int task;
    int world_rank;
    int is_root;
  };
  std::vector<Info> mine = {{mci.task, mci.world.rank(), am_l3_root ? 1 : 0}};
  auto infos = mci.world.allgatherv(std::span<const Info>(mine));

  std::map<int, int> root_of_task;
  for (const auto& inf : infos)
    if (inf.is_root) root_of_task[inf.task] = inf.world_rank;

  std::vector<int> continuum_tasks;
  for (const auto& [task, root] : root_of_task)
    if (task != atomistic_task) continuum_tasks.push_back(task);

  // 1) atomistic L3 root -> each continuum L3 root: the sample coordinates
  if (am_atomistic && am_l3_root) {
    for (int task : continuum_tasks)
      mci.world.send(root_of_task[task], kTagDiscoverySamples, samples);
  }

  if (!am_atomistic) {
    // 2) continuum L3 root receives and broadcasts within its task
    std::vector<double> pts;
    if (am_l3_root)
      pts = mci.world.recv<double>(root_of_task[atomistic_task], kTagDiscoverySamples);
    mci.l3.bcast(pts, 0);

    // 3) each rank claims the samples its partition owns
    const std::size_t n = pts.size() / 3;
    for (std::size_t k = 0; k < n; ++k)
      if (owns(pts[3 * k], pts[3 * k + 1], pts[3 * k + 2])) out.my_claims.push_back(k);

    // 4) gather claims on the task root; report to the atomistic root
    auto merged = mci.l3.gatherv(std::span<const std::size_t>(out.my_claims), 0);
    if (am_l3_root) {
      std::sort(merged.begin(), merged.end());
      merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
      mci.world.send(root_of_task[atomistic_task], kTagDiscoveryClaims, merged);
    }
  } else if (am_l3_root) {
    // atomistic root collects every continuum task's claims
    for (int task : continuum_tasks) {
      auto claims = mci.world.recv<std::size_t>(root_of_task[task], kTagDiscoveryClaims);
      if (!claims.empty()) out.task_claims.emplace_back(task, std::move(claims));
    }
    std::sort(out.task_claims.begin(), out.task_claims.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
  }
  return out;
}

}  // namespace coupling
