#include "coupling/cdc3d.hpp"

#include "resilience/blob.hpp"

#include <algorithm>
#include <cmath>

namespace coupling {

ContinuumDpdCoupler3D::ContinuumDpdCoupler3D(sem::NavierStokes3D& ns, dpd::DpdSystem& dpd_sys,
                                             dpd::FlowBc& flow_bc, const EmbeddedBox& box,
                                             const ScaleMap& scales, const TimeProgression& tp)
    : ns_(&ns), dpd_(&dpd_sys), flow_bc_(&flow_bc), box_(box), scales_(scales), tp_(tp) {
  scales_.validate();
}

void ContinuumDpdCoupler3D::dpd_to_ns(const dpd::Vec3& p, double& x, double& y,
                                      double& z) const {
  const auto& b = dpd_->params().box;
  x = box_.x0 + (p.x / b.x) * (box_.x1 - box_.x0);
  y = box_.y0 + (p.y / b.y) * (box_.y1 - box_.y0);
  z = box_.z0 + (p.z / b.z) * (box_.z1 - box_.z0);
}

dpd::Vec3 ContinuumDpdCoupler3D::continuum_velocity_at(const dpd::Vec3& p) const {
  double x, y, z;
  dpd_to_ns(p, x, y, z);
  const auto& d = ns_->disc();
  const double eps = 1e-9;
  x = std::clamp(x, eps, d.Lx() - eps);
  y = std::clamp(y, eps, d.Ly() - eps);
  z = std::clamp(z, eps, d.Lz() - eps);
  return {scales_.velocity_ns_to_dpd(d.evaluate(ns_->u(), x, y, z)),
          scales_.velocity_ns_to_dpd(d.evaluate(ns_->v(), x, y, z)),
          scales_.velocity_ns_to_dpd(d.evaluate(ns_->w(), x, y, z))};
}

std::size_t ContinuumDpdCoupler3D::advance_interval(const std::function<void()>& per_dpd_step) {
  auto field = [this](const dpd::Vec3& p) { return continuum_velocity_at(p); };
  flow_bc_->set_target_velocity(field);
  if (buffers_) buffers_->set_shared_target(field);
  ++exchanges_;

  std::size_t cg_iters = 0;
  for (int s = 0; s < tp_.exchange_every_ns; ++s) {
    cg_iters += ns_->step();
    for (int q = 0; q < tp_.dpd_per_ns; ++q) {
      dpd_->step();
      flow_bc_->apply(*dpd_);
      if (buffers_) buffers_->apply(*dpd_);
      if (per_dpd_step) per_dpd_step();
    }
  }
  return cg_iters;
}

double ContinuumDpdCoupler3D::interface_mismatch(dpd::FieldSampler& sampler) const {
  const auto snap = sampler.snapshot();
  double acc = 0.0;
  std::size_t cnt = 0;
  for (std::size_t b = 0; b < snap.size(); ++b) {
    const dpd::Vec3 c = sampler.bin_center(b);
    if (dpd_->geometry().sdf(c) < 1.0) continue;
    acc += std::fabs(snap[b] - continuum_velocity_at(c).x);
    ++cnt;
  }
  return cnt ? acc / static_cast<double>(cnt) : 0.0;
}

void ContinuumDpdCoupler3D::save_state(resilience::BlobWriter& w) const {
  w.pod(static_cast<std::uint64_t>(exchanges_));
}

void ContinuumDpdCoupler3D::load_state(resilience::BlobReader& r) {
  exchanges_ = static_cast<std::size_t>(r.pod<std::uint64_t>());
}

}  // namespace coupling
