#pragma once
// 1D-network <-> 2D-patch coupling (paper Sec. 3: "Coupled to the 3D model,
// the 1D model can be used to account for flow dynamics in peripheral
// arterial networks invisible to the MRI or CT scanners", and NektarG
// couples "3D domains to a number of 1D domains").
//
// Two directions, matching how NEKTAR uses the 1D model:
//
//  * Upstream (1D feeds the patch): the network vessel's end flow rate Q(t)
//    becomes the patch's inlet velocity profile (parabolic with matching
//    flux) — the 1D model supplies physiological waveforms to the resolved
//    patch.
//  * Downstream (patch feeds the 1D bed): the patch's outlet flux is
//    imposed as the inflow of a peripheral 1D network (e.g. the fractal
//    tree), whose inlet pressure is reported back as the patch's outlet
//    impedance diagnostic.
//
// Both couplers exchange once per continuum step, like the patch-to-patch
// interfaces (Sec. 3.2).

#include <functional>

#include "nektar1d/network.hpp"
#include "sem/ns2d.hpp"

namespace coupling {

/// Flux-preserving mapping between a vessel cross-section and a 2D channel
/// inlet: Q [area/time in 2D] -> parabolic profile u(y) with
/// integral_0^H u(y) dy = Q2d.
struct FluxProfile {
  double H = 1.0;  ///< channel height
  double u_at(double q2d, double y) const {
    // parabola 6 Q/H^3 * y (H - y): integrates to Q over [0, H]
    return 6.0 * q2d / (H * H * H) * y * (H - y);
  }
};

/// Drives a 2D patch inlet from a 1D network vessel end.
class Network1DToPatch {
public:
  /// `q_scale` converts the vessel's volumetric flow (3D units) into the 2D
  /// patch's area flux (the 2D model is a unit-depth slice).
  Network1DToPatch(nektar1d::ArterialNetwork& net, int vessel, nektar1d::End end,
                   sem::NavierStokes2D& ns, double q_scale = 1.0);

  /// Advance both solvers by one continuum step dt_ns; the 1D network
  /// substeps at its own CFL limit (different time scales, Sec. 3.3).
  void step(double dt_ns);

  double last_q2d() const { return last_q2d_; }

private:
  nektar1d::ArterialNetwork* net_;
  int vessel_;
  nektar1d::End end_;
  sem::NavierStokes2D* ns_;
  double q_scale_;
  FluxProfile profile_;
  double last_q2d_ = 0.0;
};

/// Feeds a 2D patch's outlet flux into a peripheral 1D network.
class PatchToNetwork1D {
public:
  /// The patch outlet flux (per unit depth) is scaled by `q_scale` into the
  /// network root's volumetric inflow.
  PatchToNetwork1D(sem::NavierStokes2D& ns, nektar1d::ArterialNetwork& net, int root_vessel,
                   double q_scale = 1.0);
  // the network holds a callback into this object: pin the address
  PatchToNetwork1D(const PatchToNetwork1D&) = delete;
  PatchToNetwork1D& operator=(const PatchToNetwork1D&) = delete;

  void step(double dt_ns);

  /// Peripheral pressure at the network root (the "impedance" the invisible
  /// bed presents to the patch).
  double peripheral_pressure() const;
  double last_outlet_flux() const { return last_flux_; }

private:
  double outlet_flux() const;

  sem::NavierStokes2D* ns_;
  nektar1d::ArterialNetwork* net_;
  int root_;
  double q_scale_;
  double last_flux_ = 0.0;
  double q_target_ = 0.0;
};

}  // namespace coupling
