#include "coupling/multipatch.hpp"

#include <cmath>
#include <optional>
#include <stdexcept>

#include "telemetry/registry.hpp"

namespace coupling {

MultiPatchChannel::MultiPatchChannel(const MultiPatchParams& p,
                                     std::function<double(double, double)> inlet_u)
    : prm_(p) {
  if (p.patches < 1) throw std::invalid_argument("MultiPatchChannel: patches >= 1");
  dx_ = p.L / static_cast<double>(p.nx);

  // split element columns into `patches` contiguous ranges, then extend each
  // by `overlap` columns into both neighbours
  const std::size_t base = p.nx / static_cast<std::size_t>(p.patches);
  if (base < 2 + p.overlap)
    throw std::invalid_argument("MultiPatchChannel: patches too small for overlap");
  for (int k = 0; k < p.patches; ++k) {
    std::size_t b = static_cast<std::size_t>(k) * base;
    std::size_t e = k + 1 == p.patches ? p.nx : b + base;
    if (k > 0) b -= p.overlap;
    if (k + 1 < p.patches) e += p.overlap;
    ranges_.emplace_back(b, e);
  }

  const double dy = p.H / static_cast<double>(p.ny);
  const std::size_t ny_cav =
      p.with_cavity
          ? std::max<std::size_t>(1, static_cast<std::size_t>(std::lround(p.cav_depth / dy)))
          : 0;

  for (int k = 0; k < p.patches; ++k) {
    const auto [b, e] = ranges_[static_cast<std::size_t>(k)];
    const double x0 = static_cast<double>(b) * dx_;
    const double Lk = static_cast<double>(e - b) * dx_;
    const double Hk = p.H + static_cast<double>(ny_cav) * dy;
    auto mesh = std::make_unique<mesh::QuadMesh>(x0, 0.0, Lk, Hk, e - b, p.ny + ny_cav);
    if (p.with_cavity) {
      // deactivate cells above the channel outside the cavity window
      mesh->deactivate_if([&](std::size_t i, std::size_t j) {
        if (j < p.ny) return false;
        const double xc = x0 + (static_cast<double>(i) + 0.5) * dx_;
        return !(xc > p.cav_x0 && xc < p.cav_x1);
      });
    }
    const bool first = k == 0, last = k + 1 == p.patches;
    const double x_lo = x0, x_hi = x0 + Lk;
    mesh->retag_boundary([&](const mesh::BoundaryFace& f) {
      // only the patch's extreme columns become inlet/outlet/interface;
      // internal exposed faces from the cavity mask stay walls
      if (f.side == mesh::Side::West && std::fabs(f.mid_x - x_lo) < 1e-12)
        return first ? mesh::kInlet : kIfaceWest;
      if (f.side == mesh::Side::East && std::fabs(f.mid_x - x_hi) < 1e-12)
        return last ? mesh::kOutlet : kIfaceEast;
      return mesh::kWall;
    });
    auto disc = std::make_unique<sem::Discretization>(*mesh, p.order);

    sem::NavierStokes2D::Params nsp = p.ns;
    // only the last patch has a pressure Dirichlet (true outlet); interior
    // patches run pure-Neumann pressure (mean-pinned)
    nsp.pressure_dirichlet_tags = last ? std::vector<int>{mesh::kOutlet} : std::vector<int>{};
    auto ns = std::make_unique<sem::NavierStokes2D>(*disc, nsp);
    if (first)
      ns->set_velocity_bc(mesh::kInlet,
                          [inlet_u](double, double y, double t) { return inlet_u(y, t); },
                          [](double, double, double) { return 0.0; });
    if (last) ns->set_natural_bc(mesh::kOutlet);
    // artificial interfaces start as zero-velocity Dirichlet; refreshed in
    // step() from the neighbour's interior solution

    meshes_.push_back(std::move(mesh));
    discs_.push_back(std::move(disc));
    solvers_.push_back(std::move(ns));
  }
}

std::pair<double, double> MultiPatchChannel::patch_extent(int k) const {
  const auto [b, e] = ranges_[static_cast<std::size_t>(k)];
  return {static_cast<double>(b) * dx_, static_cast<double>(e) * dx_};
}

double MultiPatchChannel::eval_patch_u(int k, double x, double y) const {
  return discs_[static_cast<std::size_t>(k)]->evaluate(
      solvers_[static_cast<std::size_t>(k)]->u(), x, y);
}
double MultiPatchChannel::eval_patch_v(int k, double x, double y) const {
  return discs_[static_cast<std::size_t>(k)]->evaluate(
      solvers_[static_cast<std::size_t>(k)]->v(), x, y);
}

void MultiPatchChannel::step() {
  telemetry::ScopedPhase phase("multipatch.step");
  telemetry::count("multipatch.steps");
  // exchange interface conditions once per step (paper Sec. 3.2)
  std::optional<telemetry::ScopedPhase> sub;
  sub.emplace("multipatch.bc_exchange");
  for (int k = 0; k < num_patches(); ++k) {
    auto& disc = *discs_[static_cast<std::size_t>(k)];
    auto& ns = *solvers_[static_cast<std::size_t>(k)];
    if (k > 0) {
      // west artificial boundary: values from the left neighbour's interior
      const auto& nodes = disc.boundary_nodes(kIfaceWest);
      std::vector<double> uu(nodes.size()), vv(nodes.size());
      for (std::size_t i = 0; i < nodes.size(); ++i) {
        const double x = disc.node_x(nodes[i]), y = disc.node_y(nodes[i]);
        uu[i] = eval_patch_u(k - 1, x, y);
        vv[i] = eval_patch_v(k - 1, x, y);
      }
      ns.set_velocity_bc_values(kIfaceWest, std::move(uu), std::move(vv));
    }
    if (k + 1 < num_patches()) {
      const auto& nodes = disc.boundary_nodes(kIfaceEast);
      std::vector<double> uu(nodes.size()), vv(nodes.size());
      for (std::size_t i = 0; i < nodes.size(); ++i) {
        const double x = disc.node_x(nodes[i]), y = disc.node_y(nodes[i]);
        uu[i] = eval_patch_u(k + 1, x, y);
        vv[i] = eval_patch_v(k + 1, x, y);
      }
      ns.set_velocity_bc_values(kIfaceEast, std::move(uu), std::move(vv));
    }
  }
  sub.emplace("multipatch.solve");
  for (auto& s : solvers_) s->step();
}

double MultiPatchChannel::interface_jump(int samples) const {
  double jump = 0.0;
  for (int k = 0; k + 1 < num_patches(); ++k) {
    // compare the two patches in the middle of their overlap region
    const double x_l = patch_extent(k + 1).first;   // left edge of right patch
    const double x_r = patch_extent(k).second;      // right edge of left patch
    const double xm = 0.5 * (x_l + x_r);
    for (int s = 0; s < samples; ++s) {
      const double y = prm_.H * (static_cast<double>(s) + 0.5) / samples;
      jump = std::max(jump, std::fabs(eval_patch_u(k, xm, y) - eval_patch_u(k + 1, xm, y)));
      jump = std::max(jump, std::fabs(eval_patch_v(k, xm, y) - eval_patch_v(k + 1, xm, y)));
    }
  }
  return jump;
}

double MultiPatchChannel::pressure_jump(int samples) const {
  double jump = 0.0;
  for (int k = 0; k + 1 < num_patches(); ++k) {
    const double xm = 0.5 * (patch_extent(k + 1).first + patch_extent(k).second);
    const auto& dl = *discs_[static_cast<std::size_t>(k)];
    const auto& dr = *discs_[static_cast<std::size_t>(k + 1)];
    const auto& pl = solvers_[static_cast<std::size_t>(k)]->p();
    const auto& pr = solvers_[static_cast<std::size_t>(k + 1)]->p();
    // gauge alignment: remove the mean difference over the overlap line
    double shift = 0.0;
    std::vector<double> dp(static_cast<std::size_t>(samples));
    for (int s = 0; s < samples; ++s) {
      const double y = prm_.H * (static_cast<double>(s) + 0.5) / samples;
      dp[static_cast<std::size_t>(s)] = dl.evaluate(pl, xm, y) - dr.evaluate(pr, xm, y);
      shift += dp[static_cast<std::size_t>(s)];
    }
    shift /= samples;
    for (double d : dp) jump = std::max(jump, std::fabs(d - shift));
  }
  return jump;
}

int MultiPatchChannel::owner_patch(double x) const {
  // prefer the patch whose non-overlapped core contains x
  for (int k = 0; k < num_patches(); ++k) {
    auto [lo, hi] = patch_extent(k);
    if (k > 0) lo += static_cast<double>(prm_.overlap) * dx_;
    if (k + 1 < num_patches()) hi -= static_cast<double>(prm_.overlap) * dx_;
    if (x >= lo && x <= hi) return k;
  }
  // fall back to any covering patch
  for (int k = 0; k < num_patches(); ++k) {
    auto [lo, hi] = patch_extent(k);
    if (x >= lo && x <= hi) return k;
  }
  throw std::out_of_range("MultiPatchChannel: x outside domain");
}

double MultiPatchChannel::evaluate_u(double x, double y) const {
  return eval_patch_u(owner_patch(x), x, y);
}
double MultiPatchChannel::evaluate_v(double x, double y) const {
  return eval_patch_v(owner_patch(x), x, y);
}

}  // namespace coupling
