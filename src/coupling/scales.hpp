#pragma once
// Unit scaling between the continuum (NS) and atomistic (DPD) descriptions
// (paper Sec. 3.3): each solver runs in its own units; gluing them requires
// matching the non-dimensional groups (Reynolds, Womersley). Velocity obeys
// Eq. (1):
//     v_DPD = v_NS * (L_NS / L_DPD) * (nu_DPD / nu_NS)
// and times scale as t ~ L^2 / nu.

#include <cmath>
#include <stdexcept>

namespace coupling {

struct ScaleMap {
  /// Numeric size of the shared characteristic feature (e.g. the vessel
  /// diameter) expressed in each solver's own units. In the paper, one NS
  /// unit is 1 mm and one DPD unit is 5 um, so a 0.5 mm vessel has
  /// L_ns = 0.5 and L_dpd = 100.
  double L_ns = 1.0;
  double L_dpd = 1.0;
  double nu_ns = 1.0;   ///< kinematic viscosity in NS units
  double nu_dpd = 1.0;  ///< kinematic viscosity in DPD units

  /// Eq. (1): velocity from NS units to DPD units. With these definitions
  /// the Reynolds number v L / nu of the shared feature is identical in
  /// both descriptions.
  double velocity_ns_to_dpd(double v_ns) const {
    return v_ns * (L_ns / L_dpd) * (nu_dpd / nu_ns);
  }
  double velocity_dpd_to_ns(double v_dpd) const {
    return v_dpd * (L_dpd / L_ns) * (nu_ns / nu_dpd);
  }

  /// Unit-time ratio implied by t ~ L^2 / nu: how many DPD time units one
  /// NS time unit represents for the shared feature.
  double time_ratio() const {
    return (L_dpd * L_dpd / nu_dpd) / (L_ns * L_ns / nu_ns);
  }

  /// Reynolds number of the shared feature, computed in each description;
  /// equal by construction of Eq. (1).
  double reynolds_ns(double v_ns) const { return v_ns * L_ns / nu_ns; }
  double reynolds_dpd(double v_ns) const {
    return velocity_ns_to_dpd(v_ns) * L_dpd / nu_dpd;
  }

  void validate() const {
    if (L_ns <= 0 || L_dpd <= 0 || nu_ns <= 0 || nu_dpd <= 0)
      throw std::invalid_argument("ScaleMap: non-positive scale");
  }
};

/// Time-progression bookkeeping (paper Fig. 5): dt_NS = ns_substeps_per_dpd *
/// dt_DPD in physical time; solvers exchange BCs every tau = exchange_every
/// NS steps.
struct TimeProgression {
  double dt_ns = 1e-3;        ///< NS step (NS time units)
  int dpd_per_ns = 20;        ///< DPD steps per one NS step
  int exchange_every_ns = 10; ///< NS steps between BC exchanges

  int dpd_steps_per_exchange() const { return dpd_per_ns * exchange_every_ns; }
  double tau_ns() const { return dt_ns * exchange_every_ns; }
};

}  // namespace coupling
