#pragma once
// Triple-decker coupling (Fedosov & Karniadakis 2009, the framework the
// paper adopts in Sec. 3.3; Fig. 5 shows its three columns NS | DPD | MD
// with dt_NS > dt_DPD > dt_MD). The continuum solver drives the DPD layer
// (as in ContinuumDpdCoupler); a finer atomistic region — "MD", here a
// particle system with a smaller time step and its own units — is nested
// inside the DPD domain and driven by the DPD layer's windowed mean field
// through interface buffer windows, with a second Eq.-(1) scale map.
//
//   exchange every tau:  NS field -> DPD buffers (scales_ns_dpd)
//                        DPD mean field -> MD buffers (scales_dpd_md)
//   per NS step:         dpd_per_ns DPD steps
//   per DPD step:        md_per_dpd MD steps

#include <memory>

#include "coupling/cdc.hpp"
#include "dpd/buffers.hpp"
#include "dpd/sampling.hpp"

namespace coupling {

/// Axis-aligned sub-box of the DPD domain covered by the MD region.
struct NestedRegion {
  dpd::Vec3 lo{}, hi{};  ///< bounds in DPD coordinates
};

class TripleDecker {
public:
  /// `cdc` couples NS<->DPD (configure it first, including its FlowBc);
  /// `md` is the fine layer; `md_buffers` are its interface windows (in MD
  /// coordinates); `region` maps the MD box into the DPD domain;
  /// `scales_dpd_md` converts DPD velocities into MD units (Eq. 1 applied
  /// to the DPD->MD pair); `sampler_bins` controls the DPD mean-field
  /// sampling resolution.
  TripleDecker(ContinuumDpdCoupler& cdc, dpd::DpdSystem& md, dpd::BufferZones& md_buffers,
               const NestedRegion& region, const ScaleMap& scales_dpd_md, int md_per_dpd,
               int sampler_bins = 6);

  /// One full coupling interval (Fig. 5): both exchanges fire, then the
  /// nested time progression runs. Optional per-MD-step callback.
  void advance_interval(const std::function<void()>& per_md_step = {});

  /// DPD-layer mean velocity (from the last interval's samples) at an MD
  /// point, expressed in MD units.
  dpd::Vec3 dpd_velocity_at_md_point(const dpd::Vec3& p_md) const;

  std::size_t exchanges() const { return exchanges_; }
  int md_per_dpd() const { return md_per_dpd_; }

private:
  /// Map an MD-space point into DPD space.
  dpd::Vec3 md_to_dpd(const dpd::Vec3& p_md) const;

  ContinuumDpdCoupler* cdc_;
  dpd::DpdSystem* md_;
  dpd::BufferZones* md_buffers_;
  NestedRegion region_;
  ScaleMap scales_;
  int md_per_dpd_;
  dpd::FieldSampler sx_, sy_, sz_;   ///< DPD-layer mean-field samplers
  la::Vector mean_x_, mean_y_, mean_z_;
  bool have_field_ = false;
  std::size_t exchanges_ = 0;
};

}  // namespace coupling
