#pragma once
// 3D-continuum <-> DPD coupling: the paper's actual configuration (a 3D
// NEKTAR patch with an embedded DPD subdomain). Unlike the 2D coupler in
// cdc.hpp (which folds the out-of-plane direction), all three axes map
// directly: the DPD box covers an axis-aligned sub-box of the continuum
// domain, and the full velocity vector is imposed on the atomistic
// interface, scaled by Eq. (1).

#include <functional>

#include "coupling/scales.hpp"
#include "dpd/buffers.hpp"
#include "dpd/inflow.hpp"
#include "dpd/sampling.hpp"
#include "dpd/system.hpp"
#include "sem/ns3d.hpp"

namespace coupling {

/// Continuum-space box covered by the DPD domain.
struct EmbeddedBox {
  double x0 = 0, x1 = 1, y0 = 0, y1 = 1, z0 = 0, z1 = 1;
};

class ContinuumDpdCoupler3D {
public:
  ContinuumDpdCoupler3D(sem::NavierStokes3D& ns, dpd::DpdSystem& dpd_sys,
                        dpd::FlowBc& flow_bc, const EmbeddedBox& box, const ScaleMap& scales,
                        const TimeProgression& tp);

  void set_buffer_zones(dpd::BufferZones* zones) { buffers_ = zones; }

  /// One Fig.-5 coupling interval. Returns the total continuum CG
  /// iterations spent (warm-start accounting for the ensemble engine).
  std::size_t advance_interval(const std::function<void()>& per_dpd_step = {});

  /// Continuum velocity at a DPD point, in DPD units.
  dpd::Vec3 continuum_velocity_at(const dpd::Vec3& p) const;

  /// Mean |u_DPD - u_NS| over the sampler's bins (DPD units).
  double interface_mismatch(dpd::FieldSampler& sampler) const;

  std::size_t exchanges() const { return exchanges_; }

  /// Checkpoint the coupling bookkeeping (interface exchange counter).
  void save_state(resilience::BlobWriter& w) const;
  void load_state(resilience::BlobReader& r);

private:
  void dpd_to_ns(const dpd::Vec3& p, double& x, double& y, double& z) const;

  // analyze: no-checkpoint (coupled solvers checkpoint separately via the coordinator)
  sem::NavierStokes3D* ns_;
  // analyze: no-checkpoint (coupled solvers checkpoint separately via the coordinator)
  dpd::DpdSystem* dpd_;
  // analyze: no-checkpoint (coupled solvers checkpoint separately via the coordinator)
  dpd::FlowBc* flow_bc_;
  // analyze: no-checkpoint (owned by the driver; checkpointed separately if registered)
  dpd::BufferZones* buffers_ = nullptr;
  // analyze: no-checkpoint (constructor configuration)
  EmbeddedBox box_;
  // analyze: no-checkpoint (constructor configuration)
  ScaleMap scales_;
  // analyze: no-checkpoint (constructor configuration)
  TimeProgression tp_;
  std::size_t exchanges_ = 0;
};

}  // namespace coupling
