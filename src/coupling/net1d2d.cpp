#include "coupling/net1d2d.hpp"

#include <algorithm>
#include <cmath>

namespace coupling {

Network1DToPatch::Network1DToPatch(nektar1d::ArterialNetwork& net, int vessel,
                                   nektar1d::End end, sem::NavierStokes2D& ns, double q_scale)
    : net_(&net), vessel_(vessel), end_(end), ns_(&ns), q_scale_(q_scale) {
  const auto& mesh = ns.disc().mesh();
  profile_.H = mesh.dy() * static_cast<double>(mesh.grid_ny());
}

void Network1DToPatch::step(double dt_ns) {
  // 1) advance the 1D network up to the continuum's new time (own CFL)
  const double t_target = ns_->time() + dt_ns;
  while (net_->time() < t_target) {
    const double dt1d = std::min(net_->suggested_dt(0.3), t_target - net_->time());
    net_->step(dt1d);
  }
  // 2) impose the vessel's flow as the patch inlet profile
  last_q2d_ = q_scale_ * net_->flow_at(vessel_, end_);
  const auto& disc = ns_->disc();
  const auto& nodes = disc.boundary_nodes(mesh::kInlet);
  std::vector<double> uu(nodes.size()), vv(nodes.size(), 0.0);
  for (std::size_t k = 0; k < nodes.size(); ++k)
    uu[k] = profile_.u_at(last_q2d_, disc.node_y(nodes[k]));
  ns_->set_velocity_bc_values(mesh::kInlet, std::move(uu), std::move(vv));
  // 3) advance the patch
  ns_->step();
}

PatchToNetwork1D::PatchToNetwork1D(sem::NavierStokes2D& ns, nektar1d::ArterialNetwork& net,
                                   int root_vessel, double q_scale)
    : ns_(&ns), net_(&net), root_(root_vessel), q_scale_(q_scale) {
  // register the (mutable) inflow target once; step() refreshes q_target_
  net_->set_inlet_flow(root_, [this](double) { return q_target_; });
}

double PatchToNetwork1D::outlet_flux() const {
  const auto& disc = ns_->disc();
  const auto& mesh = disc.mesh();
  const double H = mesh.dy() * static_cast<double>(mesh.grid_ny());
  const double x_out = mesh.x0() + mesh.dx() * static_cast<double>(mesh.grid_nx()) - 1e-9;
  // midpoint quadrature over the outlet line
  const int n = 24;
  double q = 0.0;
  for (int k = 0; k < n; ++k) {
    const double y = H * (static_cast<double>(k) + 0.5) / n;
    q += disc.evaluate(ns_->u(), x_out, y) * (H / n);
  }
  return q;
}

void PatchToNetwork1D::step(double dt_ns) {
  last_flux_ = outlet_flux();
  q_target_ = q_scale_ * last_flux_;
  const double t_target = ns_->time() + dt_ns;
  while (net_->time() < t_target) {
    const double dt1d = std::min(net_->suggested_dt(0.3), t_target - net_->time());
    net_->step(dt1d);
  }
  ns_->step();
}

double PatchToNetwork1D::peripheral_pressure() const {
  return net_->pressure_at(root_, nektar1d::End::Left);
}

}  // namespace coupling
