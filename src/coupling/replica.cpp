#include "coupling/replica.hpp"

#include <algorithm>
#include <stdexcept>

#include "resilience/blob.hpp"

namespace coupling {

ReplicaEnsemble::ReplicaEnsemble(const xmp::Comm& l3, int n_replicas) : l3_(l3), n_(n_replicas) {
  if (n_replicas < 1 || n_replicas > l3.size())
    throw std::invalid_argument("ReplicaEnsemble: bad replica count");
  // contiguous blocks, distributing the remainder over the first groups
  const int base = l3.size() / n_replicas;
  const int rem = l3.size() % n_replicas;
  const int r = l3.rank();
  // ranks [0, (base+1)*rem) belong to the first `rem` groups of size base+1
  const int cut = (base + 1) * rem;
  rid_ = r < cut ? r / (base + 1) : rem + (r - cut) / base;
  rep_ = l3.split(rid_, r);
  roots_ = l3.split(rep_.rank() == 0 ? 0 : xmp::kUndefined, rid_);
}

std::vector<double> ReplicaEnsemble::distribute(std::vector<double> data) const {
  if (roots_.valid()) roots_.bcast(data, 0);  // master root -> all replica roots
  rep_.bcast(data, 0);                        // replica root -> replica members
  return data;
}

std::vector<double> ReplicaEnsemble::gather_average(const std::vector<double>& mine) const {
  std::vector<double> avg;
  if (roots_.valid()) {
    std::vector<std::size_t> counts;
    auto all = roots_.gatherv(std::span<const double>(mine), 0, &counts);
    if (roots_.rank() == 0) {
      for (std::size_t c : counts)
        if (c != mine.size())
          throw std::runtime_error("ReplicaEnsemble: replica vector length mismatch");
      avg.assign(mine.size(), 0.0);
      for (std::size_t r = 0; r < counts.size(); ++r)
        for (std::size_t i = 0; i < mine.size(); ++i) avg[i] += all[r * mine.size() + i];
      for (double& v : avg) v /= static_cast<double>(n_);
    }
    roots_.bcast(avg, 0);
  }
  rep_.bcast(avg, 0);
  return avg;
}

bool ReplicaEnsemble::exchange_health(bool healthy) {
  // Every current L3 rank (including ones that just caught a fault) reports
  // (replica id, ok); the vote is symmetric, so all ranks compute the same
  // retirement decision without a coordinator.
  const std::int32_t report[2] = {static_cast<std::int32_t>(rid_),
                                  static_cast<std::int32_t>(healthy ? 1 : 0)};
  auto all = l3_.allgatherv(std::span<const std::int32_t>(report, 2));

  std::vector<char> replica_ok(static_cast<std::size_t>(n_), 1);
  for (std::size_t k = 0; k + 1 < all.size(); k += 2)
    if (all[k + 1] == 0) replica_ok[static_cast<std::size_t>(all[k])] = 0;

  std::vector<int> survivors;
  for (int j = 0; j < n_; ++j)
    if (replica_ok[static_cast<std::size_t>(j)]) survivors.push_back(j);
  if (survivors.empty())
    throw std::runtime_error("ReplicaEnsemble: every replica failed");
  if (static_cast<int>(survivors.size()) == n_) return true;  // nothing lost

  lost_ += n_ - static_cast<int>(survivors.size());
  const auto pos = std::find(survivors.begin(), survivors.end(), rid_);
  const bool stay = pos != survivors.end();

  // Collective over the old L3: dead ranks participate with kUndefined so
  // the split completes, then drop out with invalid communicators.
  xmp::Comm shrunk = l3_.split(stay ? 0 : xmp::kUndefined, l3_.rank());
  if (!stay) {
    l3_ = xmp::Comm();
    rep_ = xmp::Comm();
    roots_ = xmp::Comm();
    return false;
  }

  // Renumbering in old-id order: the lowest surviving replica becomes the
  // new master (rid 0), whose root re-owns the continuum p2p channel.
  l3_ = std::move(shrunk);
  n_ = static_cast<int>(survivors.size());
  rid_ = static_cast<int>(pos - survivors.begin());
  rep_ = l3_.split(rid_, l3_.rank());
  roots_ = l3_.split(rep_.rank() == 0 ? 0 : xmp::kUndefined, rid_);
  return true;
}

void ReplicaEnsemble::save_state(resilience::BlobWriter& w) const {
  w.pod(static_cast<std::int32_t>(n_));
  w.pod(static_cast<std::int32_t>(rid_));
  w.pod(static_cast<std::int32_t>(lost_));
}

void ReplicaEnsemble::load_state(resilience::BlobReader& r) {
  const auto n = r.pod<std::int32_t>();
  const auto rid = r.pod<std::int32_t>();
  if (n != n_ || rid != rid_)
    throw resilience::LayoutError(
        "ReplicaEnsemble: checkpoint ensemble shape (n=" + std::to_string(n) +
        ", rid=" + std::to_string(rid) + ") != restart shape (n=" + std::to_string(n_) +
        ", rid=" + std::to_string(rid_) + ")");
  lost_ = r.pod<std::int32_t>();
}

}  // namespace coupling
