#include "coupling/replica.hpp"

#include <stdexcept>

namespace coupling {

ReplicaEnsemble::ReplicaEnsemble(const xmp::Comm& l3, int n_replicas) : l3_(l3), n_(n_replicas) {
  if (n_replicas < 1 || n_replicas > l3.size())
    throw std::invalid_argument("ReplicaEnsemble: bad replica count");
  // contiguous blocks, distributing the remainder over the first groups
  const int base = l3.size() / n_replicas;
  const int rem = l3.size() % n_replicas;
  const int r = l3.rank();
  // ranks [0, (base+1)*rem) belong to the first `rem` groups of size base+1
  const int cut = (base + 1) * rem;
  rid_ = r < cut ? r / (base + 1) : rem + (r - cut) / base;
  rep_ = l3.split(rid_, r);
  roots_ = l3.split(rep_.rank() == 0 ? 0 : xmp::kUndefined, rid_);
}

std::vector<double> ReplicaEnsemble::distribute(std::vector<double> data) const {
  if (roots_.valid()) roots_.bcast(data, 0);  // master root -> all replica roots
  rep_.bcast(data, 0);                        // replica root -> replica members
  return data;
}

std::vector<double> ReplicaEnsemble::gather_average(const std::vector<double>& mine) const {
  std::vector<double> avg;
  if (roots_.valid()) {
    std::vector<std::size_t> counts;
    auto all = roots_.gatherv(std::span<const double>(mine), 0, &counts);
    if (roots_.rank() == 0) {
      for (std::size_t c : counts)
        if (c != mine.size())
          throw std::runtime_error("ReplicaEnsemble: replica vector length mismatch");
      avg.assign(mine.size(), 0.0);
      for (std::size_t r = 0; r < counts.size(); ++r)
        for (std::size_t i = 0; i < mine.size(); ++i) avg[i] += all[r * mine.size() + i];
      for (double& v : avg) v /= static_cast<double>(n_);
    }
    roots_.bcast(avg, 0);
  }
  rep_.bcast(avg, 0);
  return avg;
}

}  // namespace coupling
