#pragma once
// Cooperative fiber executor behind xmp::run's Fibers backend. Internal
// header: user code selects it through xmp::SchedOptions (sched.hpp).
//
// Each rank is a ucontext fiber on its own guard-paged mmap stack; a small
// pool of worker threads drains a FIFO run queue of runnable fibers. A fiber
// leaves the queue in exactly two ways: it finishes, or it parks inside
// WaitCv::wait (detail.hpp) — the runtime's only blocking points (mailbox
// recv, the collective slot) go through WaitCv, so every blocking point is a
// yield point. Wakers (other ranks, the checked-mode watchdog) re-enqueue
// parked fibers via make_runnable(), which is safe against the
// unlock-then-suspend race: a fiber that is woken between releasing the site
// mutex and completing its context switch is flagged wake_pending and
// re-enqueued by its worker right after the switch completes.

#include <ucontext.h>

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "xmp/sched/sched.hpp"

namespace xmp::detail {

class FiberScheduler;

/// One cooperatively scheduled rank. Scheduling state (state, wake_pending)
/// is guarded by FiberScheduler::mu_.
struct Fiber {
  enum class State : std::uint8_t {
    Runnable,  ///< in the run queue
    Running,   ///< executing on some worker
    Parking,   ///< left a WaitCv wait, context switch not yet complete
    Parked,    ///< fully suspended, waiting for make_runnable
    Done,      ///< rank body returned
  };

  FiberScheduler* sched = nullptr;
  int world_rank = -1;

  ucontext_t ctx{};
  char* map_base = nullptr;      ///< own mmap (guarded mode); null in slab mode
  std::size_t map_bytes = 0;
  char* stack_base = nullptr;    ///< usable stack (above the guard page, if any)
  std::size_t stack_bytes = 0;

  State state = State::Runnable;
  bool wake_pending = false;

  /// Rank-local storage (sched::rank_local_slot): follows the fiber across
  /// workers; telemetry keys its per-rank registry on it.
  std::shared_ptr<void> local_slot;

  // Sanitizer bookkeeping (ASan fake-stack handoff, TSan fiber identity).
  void* asan_fake_stack = nullptr;
  void* tsan_fiber = nullptr;
};

class FiberScheduler {
public:
  explicit FiberScheduler(const SchedOptions& opts);
  ~FiberScheduler();
  FiberScheduler(const FiberScheduler&) = delete;
  FiberScheduler& operator=(const FiberScheduler&) = delete;

  /// Creates one fiber per rank, runs body(rank) for each over the worker
  /// pool, and returns when every fiber finished. Exceptions must not escape
  /// `body` (xmp::run's rank wrapper catches them and aborts the run).
  void run(int nranks, const std::function<void(int)>& body);

  /// Re-enqueues a parked (or about-to-park) fiber. Thread-safe: callable
  /// from rank fibers, worker threads and foreign threads (the checked-mode
  /// watchdog aborting a run).
  void make_runnable(Fiber* f);

  /// Parks the current fiber. `lk` (the WaitCv site mutex) must be held; it
  /// is released while the fiber is suspended and re-acquired before this
  /// returns. Spurious returns are possible — callers re-check predicates.
  void park(std::unique_lock<std::mutex>& lk);

  /// Cooperative yield: requeues the current fiber at the back of the run
  /// queue and switches to the worker, so every other runnable fiber gets a
  /// turn first. The progress guarantee behind poll loops (Pending::test).
  void yield_current();

private:
  void worker_main();
  void dispatch(Fiber* f);
  void switch_to_worker(Fiber* f, bool dying);
  static void trampoline(unsigned hi, unsigned lo);

  Fiber* make_fiber(int rank);
  void destroy_fiber(Fiber* f);

  SchedOptions opts_;
  char* slab_base_ = nullptr;  ///< one contiguous stack slab (guard_pages off)
  std::size_t slab_bytes_ = 0;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::deque<Fiber*> runq_;
  std::vector<std::unique_ptr<Fiber>> fibers_;
  int live_ = 0;
  const std::function<void(int)>* body_ = nullptr;
};

/// Fiber the calling OS thread is currently executing, or nullptr on plain
/// threads (threads backend, helper threads, the watchdog, main).
Fiber* current_fiber() noexcept;

/// Yields the calling fiber to its scheduler; no-op on plain threads.
/// Non-blocking runtime calls that poll — `while (!p.test()) ...` — route
/// through this so the polled-on rank can run even on a single worker
/// (threads are preemptive, fibers are not).
void fiber_yield() noexcept;

}  // namespace xmp::detail
