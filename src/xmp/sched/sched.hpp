#pragma once
// Scheduling options and rank-context API for xmp::run.
//
// The runtime has two interchangeable rank executors:
//   * Threads (reference): every rank is a std::thread, exactly the model
//     described in comm.hpp. Simple, preemptive, but caps practical world
//     sizes at a few hundred ranks.
//   * Fibers: every rank is a cooperatively scheduled ucontext fiber
//     multiplexed over a small worker-thread pool. Blocking points inside
//     the runtime (mailbox recv, the collective slot, barrier) yield into
//     the scheduler instead of sleeping on a condition variable, so 4k-64k
//     ranks execute on a laptop — the paper's Table 3-5 rank counts become
//     directly runnable instead of extrapolated (see docs/SCHED.md).
//
// Because a fiber may resume on a different worker thread than it parked on,
// rank identity MUST NOT be derived from the OS thread
// (std::this_thread::get_id()). This header is the one sanctioned source of
// rank identity: sched::current_rank() works under both backends, and
// sched::rank_local_slot() gives rank-local storage that migrates with the
// fiber (telemetry keys its per-rank registries on it).

#include <memory>

namespace xmp {

enum class SchedMode {
  Threads,  ///< one OS thread per rank (reference backend)
  Fibers,   ///< cooperative fibers over a worker pool
};

/// Per-run scheduling knobs, passed to xmp::run. The default-constructed
/// value is the reference thread backend; from_env() reads
///   XMP_SCHED=threads|fibers
///   XMP_SCHED_WORKERS=<n>    (fibers: worker threads; 0 = auto)
///   XMP_SCHED_STACK_KB=<n>   (fibers: per-rank stack size)
/// so any existing test or bench can be re-run under fibers without a code
/// change.
struct SchedOptions {
  SchedMode mode = SchedMode::Threads;
  /// Fibers: worker threads the fibers multiplex over. 0 picks
  /// min(hardware_concurrency, 8). With workers == 1 the FIFO run queue
  /// makes scheduling bitwise deterministic across identical runs.
  int workers = 0;
  /// Fibers: usable stack per rank, excluding the guard page. Rank bodies
  /// run user code on this stack; see docs/SCHED.md for sizing guidance.
  int stack_kb = 256;
  /// Fibers: map an inaccessible guard page below every stack so overflow
  /// faults instead of corrupting a neighbour. Each guarded stack costs two
  /// kernel VMAs, so runs beyond ~32k ranks exhaust the default
  /// vm.max_map_count; setting this false allocates all stacks from one
  /// contiguous slab (two VMAs total), trading overflow detection for scale.
  bool guard_pages = true;

  static SchedOptions from_env();
};

const char* to_string(SchedMode m);

namespace sched {

/// World rank of the calling execution context: the rank whose fiber is
/// running on this worker, or the rank bound to this thread under the
/// threads backend. -1 outside any rank (main thread, watchdog, helper
/// threads spawned by user code).
int current_rank() noexcept;

/// Rank-local storage slot for the current execution context, or nullptr
/// when the backend has no such slot (threads backend and non-rank threads
/// fall back to genuinely thread-local storage). The slot lives in the
/// rank's fiber and follows it across worker threads.
std::shared_ptr<void>* rank_local_slot() noexcept;

namespace detail {
// Set by the backends on rank entry/exit and fiber switch. Not user API.
void set_current_rank(int r) noexcept;
void set_rank_local_slot(std::shared_ptr<void>* slot) noexcept;
}  // namespace detail

}  // namespace sched
}  // namespace xmp
