#include "xmp/sched/fiber.hpp"

#include <pthread.h>
#include <sys/mman.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <system_error>

#include "xmp/detail.hpp"

// Sanitizers instrument the stack, so raw swapcontext without annotations
// corrupts their shadow state (CI runs the full suite under ASan and TSan).
#if defined(__has_feature)
#if __has_feature(address_sanitizer)
#define XMP_FIBER_ASAN 1
#endif
#if __has_feature(thread_sanitizer)
#define XMP_FIBER_TSAN 1
#endif
#endif
#if !defined(XMP_FIBER_ASAN) && defined(__SANITIZE_ADDRESS__)
#define XMP_FIBER_ASAN 1
#endif
#if !defined(XMP_FIBER_TSAN) && defined(__SANITIZE_THREAD__)
#define XMP_FIBER_TSAN 1
#endif
#ifdef XMP_FIBER_ASAN
#include <sanitizer/common_interface_defs.h>
#endif
#ifdef XMP_FIBER_TSAN
#include <sanitizer/tsan_interface.h>
#endif

namespace xmp::detail {

namespace {

/// Per-worker context: the ucontext fibers swap back into, this worker's
/// stack bounds (for the sanitizer handoff) and the fiber currently running
/// on it.
struct WorkerContext {
  ucontext_t ctx{};
  Fiber* current = nullptr;
  void* asan_fake_stack = nullptr;
  const void* stack_bottom = nullptr;
  std::size_t stack_size = 0;
  void* tsan_fiber = nullptr;
};

// lint: sched-context-ok (per-worker scheduler state, never rank identity)
thread_local WorkerContext* tl_worker = nullptr;

void worker_stack_bounds(WorkerContext& wc) {
#ifdef XMP_FIBER_ASAN
  pthread_attr_t attr;
  if (pthread_getattr_np(pthread_self(), &attr) == 0) {
    void* addr = nullptr;
    std::size_t size = 0;
    if (pthread_attr_getstack(&attr, &addr, &size) == 0) {
      wc.stack_bottom = addr;
      wc.stack_size = size;
    }
    pthread_attr_destroy(&attr);
  }
#else
  (void)wc;
#endif
}

/// Annotated context switch out of `from_fiber` (or out of the worker when
/// from_fiber is null) into the target context. The ASan protocol: the
/// leaving context saves its fake stack and announces the destination stack;
/// whoever later resumes the leaving context completes the handoff by
/// calling finish on the saved pointer — which is exactly the code right
/// after each swapcontext below and at trampoline entry.
void annotated_swap(void** save_fake_stack, const void* target_bottom, std::size_t target_size,
                    void* target_tsan, ucontext_t* from, const ucontext_t* to,
                    void* resume_fake_stack) {
#ifdef XMP_FIBER_ASAN
  __sanitizer_start_switch_fiber(save_fake_stack, target_bottom, target_size);
#else
  (void)save_fake_stack;
  (void)target_bottom;
  (void)target_size;
#endif
#ifdef XMP_FIBER_TSAN
  if (target_tsan) __tsan_switch_to_fiber(target_tsan, 0);
#else
  (void)target_tsan;
#endif
  swapcontext(from, to);
#ifdef XMP_FIBER_ASAN
  __sanitizer_finish_switch_fiber(resume_fake_stack, nullptr, nullptr);
#else
  (void)resume_fake_stack;
#endif
}

}  // namespace

Fiber* current_fiber() noexcept { return tl_worker ? tl_worker->current : nullptr; }

void fiber_yield() noexcept {
  if (Fiber* f = current_fiber()) f->sched->yield_current();
}

FiberScheduler::FiberScheduler(const SchedOptions& opts) : opts_(opts) {
  if (opts_.stack_kb < 16)
    throw std::invalid_argument("xmp: SchedOptions.stack_kb must be >= 16");
}

FiberScheduler::~FiberScheduler() {
  for (auto& f : fibers_) destroy_fiber(f.get());
  if (slab_base_) munmap(slab_base_, slab_bytes_);
}

namespace {

std::size_t usable_stack_bytes(const SchedOptions& opts) {
  const std::size_t page = static_cast<std::size_t>(sysconf(_SC_PAGESIZE));
  const std::size_t raw = static_cast<std::size_t>(opts.stack_kb) * 1024;
  return (raw + page - 1) / page * page;
}

[[noreturn]] void stack_alloc_failed(const char* what) {
  throw std::system_error(
      errno, std::generic_category(),
      std::string("xmp: fiber stack allocation failed (") + what +
          "); guard-paged stacks cost two kernel VMAs each, so tens of thousands of ranks "
          "exhaust vm.max_map_count — set SchedOptions.guard_pages=false (XMP_SCHED_GUARD=0) "
          "or raise vm.max_map_count");
}

}  // namespace

Fiber* FiberScheduler::make_fiber(int rank) {
  auto f = std::make_unique<Fiber>();
  f->sched = this;
  f->world_rank = rank;

  const std::size_t usable = usable_stack_bytes(opts_);
  if (opts_.guard_pages) {
    const std::size_t page = static_cast<std::size_t>(sysconf(_SC_PAGESIZE));
    f->map_bytes = usable + page;  // one guard page below the stack
    void* base = mmap(nullptr, f->map_bytes, PROT_READ | PROT_WRITE,
                      MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (base == MAP_FAILED) stack_alloc_failed("mmap");
    f->map_base = static_cast<char*>(base);
    if (mprotect(f->map_base, page, PROT_NONE) != 0) {
      const int saved = errno;
      munmap(f->map_base, f->map_bytes);
      errno = saved;
      stack_alloc_failed("guard mprotect");
    }
    f->stack_base = f->map_base + page;
  } else {
    // Slab mode: all stacks in one mapping, no guards (see SchedOptions).
    f->stack_base = slab_base_ + static_cast<std::size_t>(rank) * usable;
  }
  f->stack_bytes = usable;

  if (getcontext(&f->ctx) != 0)
    throw std::system_error(errno, std::generic_category(), "xmp: getcontext failed");
  f->ctx.uc_stack.ss_sp = f->stack_base;
  f->ctx.uc_stack.ss_size = f->stack_bytes;
  f->ctx.uc_link = nullptr;  // fibers exit via an explicit final switch
  const auto p = reinterpret_cast<std::uintptr_t>(f.get());
  makecontext(&f->ctx, reinterpret_cast<void (*)()>(&FiberScheduler::trampoline), 2,
              static_cast<unsigned>(p >> 32), static_cast<unsigned>(p & 0xffffffffu));
#ifdef XMP_FIBER_TSAN
  f->tsan_fiber = __tsan_create_fiber(0);
#endif
  fibers_.push_back(std::move(f));
  return fibers_.back().get();
}

void FiberScheduler::destroy_fiber(Fiber* f) {
  if (!f || !f->map_base) return;
#ifdef XMP_FIBER_TSAN
  if (f->tsan_fiber) __tsan_destroy_fiber(f->tsan_fiber);
#endif
  munmap(f->map_base, f->map_bytes);
  f->map_base = nullptr;
}

void FiberScheduler::trampoline(unsigned hi, unsigned lo) {
  auto* f = reinterpret_cast<Fiber*>((static_cast<std::uintptr_t>(hi) << 32) |
                                     static_cast<std::uintptr_t>(lo));
#ifdef XMP_FIBER_ASAN
  // First entry: this fiber never left, so there is no saved fake stack.
  __sanitizer_finish_switch_fiber(nullptr, nullptr, nullptr);
#endif
  (*f->sched->body_)(f->world_rank);
  {
    std::lock_guard lk(f->sched->mu_);
    f->state = Fiber::State::Done;
  }
  f->sched->switch_to_worker(f, /*dying=*/true);
  // unreachable: a Done fiber is never resumed
}

void FiberScheduler::switch_to_worker(Fiber* f, bool dying) {
  WorkerContext& wc = *tl_worker;
  // Passing a null save slot releases the ASan fake stack of a dying fiber.
  annotated_swap(dying ? nullptr : &f->asan_fake_stack, wc.stack_bottom, wc.stack_size,
                 wc.tsan_fiber, &f->ctx, &wc.ctx, f->asan_fake_stack);
  // Resumed — possibly on a different worker thread than the one parked on.
}

void FiberScheduler::dispatch(Fiber* f) {
  WorkerContext& wc = *tl_worker;
  wc.current = f;
  sched::detail::set_current_rank(f->world_rank);
  sched::detail::set_rank_local_slot(&f->local_slot);
  annotated_swap(&wc.asan_fake_stack, f->stack_base, f->stack_bytes, f->tsan_fiber, &wc.ctx,
                 &f->ctx, wc.asan_fake_stack);
  sched::detail::set_current_rank(-1);
  sched::detail::set_rank_local_slot(nullptr);
  wc.current = nullptr;
}

void FiberScheduler::park(std::unique_lock<std::mutex>& lk) {
  Fiber* f = tl_worker->current;
  {
    // Mark Parking while still holding the site mutex: a waker that pops this
    // fiber from the WaitCv list afterwards is guaranteed to observe Parking
    // or Parked, never Running. Lock order site-mutex -> mu_ matches
    // WaitCv::notify_all -> make_runnable.
    std::lock_guard g(mu_);
    f->state = Fiber::State::Parking;
  }
  lk.unlock();
  switch_to_worker(f, /*dying=*/false);
  lk.lock();
}

void FiberScheduler::yield_current() {
  Fiber* f = tl_worker->current;
  {
    // Parking with wake_pending pre-set: the worker's post-switch finalise
    // re-enqueues immediately — the same path a racing waker takes.
    std::lock_guard g(mu_);
    f->state = Fiber::State::Parking;
    f->wake_pending = true;
  }
  switch_to_worker(f, /*dying=*/false);
}

void FiberScheduler::make_runnable(Fiber* f) {
  bool notify = false;
  {
    std::lock_guard lk(mu_);
    switch (f->state) {
      case Fiber::State::Parked:
        f->state = Fiber::State::Runnable;
        runq_.push_back(f);
        notify = true;
        break;
      case Fiber::State::Parking:
        // Raced with the unlock-then-suspend window: the fiber's worker
        // finalises the park right after its swapcontext and re-enqueues.
        f->wake_pending = true;
        break;
      case Fiber::State::Runnable:
      case Fiber::State::Running:
        // Already awake; the woken fiber re-checks its predicate anyway.
        f->wake_pending = true;
        break;
      case Fiber::State::Done: break;
    }
  }
  if (notify) work_cv_.notify_one();
}

void FiberScheduler::worker_main() {
  WorkerContext wc;
  worker_stack_bounds(wc);
#ifdef XMP_FIBER_TSAN
  wc.tsan_fiber = __tsan_get_current_fiber();
#endif
  tl_worker = &wc;
  std::unique_lock lk(mu_);
  while (live_ > 0) {
    if (runq_.empty()) {
      work_cv_.wait(lk);
      continue;
    }
    Fiber* f = runq_.front();
    runq_.pop_front();
    f->state = Fiber::State::Running;
    f->wake_pending = false;
    lk.unlock();
    dispatch(f);
    lk.lock();
    if (f->state == Fiber::State::Parking) {
      if (f->wake_pending) {
        f->wake_pending = false;
        f->state = Fiber::State::Runnable;
        runq_.push_back(f);
      } else {
        f->state = Fiber::State::Parked;
      }
    } else if (f->state == Fiber::State::Done) {
      if (--live_ == 0) work_cv_.notify_all();
    }
  }
  tl_worker = nullptr;
}

void FiberScheduler::run(int nranks, const std::function<void(int)>& body) {
  body_ = &body;
  if (!opts_.guard_pages) {
    slab_bytes_ = static_cast<std::size_t>(nranks) * usable_stack_bytes(opts_);
    void* base =
        mmap(nullptr, slab_bytes_, PROT_READ | PROT_WRITE, MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (base == MAP_FAILED) stack_alloc_failed("slab mmap");
    slab_base_ = static_cast<char*>(base);
  }
  fibers_.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) runq_.push_back(make_fiber(r));
  live_ = nranks;

  int nworkers = opts_.workers;
  if (nworkers <= 0)
    nworkers = static_cast<int>(std::min(std::max(std::thread::hardware_concurrency(), 1u), 8u));
  nworkers = std::min(nworkers, nranks);

  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(nworkers));
  for (int i = 0; i < nworkers; ++i) workers.emplace_back([this] { worker_main(); });
  for (auto& w : workers) w.join();
  body_ = nullptr;
}

// ---- WaitCv (declared in detail.hpp) ----------------------------------------

void WaitCv::wait(std::unique_lock<std::mutex>& lk) {
  if (Fiber* f = current_fiber()) {
    waiters.push_back(f);
    f->sched->park(lk);
  } else {
    cv.wait(lk);
  }
}

void WaitCv::notify_all() {
  cv.notify_all();
  if (waiters.empty()) return;
  // Detach the list first: entries are consumed exactly once, and a woken
  // fiber may re-register into this WaitCv as soon as the caller releases
  // the site mutex.
  std::vector<Fiber*> ws;
  ws.swap(waiters);
  for (Fiber* f : ws) f->sched->make_runnable(f);
}

}  // namespace xmp::detail
