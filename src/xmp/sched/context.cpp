#include "xmp/sched/sched.hpp"

#include <cstdlib>
#include <stdexcept>
#include <string>

namespace xmp {

SchedOptions SchedOptions::from_env() {
  SchedOptions o;
  if (const char* v = std::getenv("XMP_SCHED")) {
    const std::string s = v;
    if (s == "fibers" || s == "fiber") o.mode = SchedMode::Fibers;
    else if (s == "threads" || s == "thread" || s.empty()) o.mode = SchedMode::Threads;
    else throw std::invalid_argument("xmp: XMP_SCHED must be 'threads' or 'fibers', got '" + s + "'");
  }
  if (const char* v = std::getenv("XMP_SCHED_WORKERS")) o.workers = std::atoi(v);
  if (const char* v = std::getenv("XMP_SCHED_STACK_KB")) o.stack_kb = std::atoi(v);
  if (const char* v = std::getenv("XMP_SCHED_GUARD")) o.guard_pages = v[0] != '\0' && v[0] != '0';
  return o;
}

const char* to_string(SchedMode m) {
  switch (m) {
    case SchedMode::Threads: return "threads";
    case SchedMode::Fibers: return "fibers";
  }
  return "?";
}

namespace sched {

namespace {
// The one place rank identity is allowed to live in a thread-local: the
// fiber scheduler rewrites both on every fiber switch, so they track the
// rank, not the OS thread.
// lint: sched-context-ok (this is the scheduler context itself)
thread_local int tl_current_rank = -1;
// lint: sched-context-ok (this is the scheduler context itself)
thread_local std::shared_ptr<void>* tl_rank_slot = nullptr;
}  // namespace

int current_rank() noexcept { return tl_current_rank; }
std::shared_ptr<void>* rank_local_slot() noexcept { return tl_rank_slot; }

namespace detail {
void set_current_rank(int r) noexcept { tl_current_rank = r; }
void set_rank_local_slot(std::shared_ptr<void>* slot) noexcept { tl_rank_slot = slot; }
}  // namespace detail

}  // namespace sched
}  // namespace xmp
