#pragma once
// Checked-mode verifier (see check.hpp for the user-facing contract). One
// Checker exists per checked run, owned by the RunState. Rank threads call
// the hooks from comm.cpp; a watchdog thread polls the wait registry for
// deadlock cycles and stalls. Internal header.

#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "xmp/check.hpp"
#include "xmp/detail.hpp"

namespace xmp::detail {

/// What a blocked rank is waiting on. One slot per world rank, each behind
/// its own mutex so rank threads never contend with each other — only with
/// the (rare) watchdog poll.
struct BlockedOp {
  enum class Kind : std::uint8_t { None, Recv, Collective };
  Kind kind = Kind::None;
  std::shared_ptr<Group> grp;  // keeps the comm alive for dumps / mailbox scans
  int local_rank = -1;         // this rank within grp
  int src_world = kAnySource;  // Recv: awaited world rank (kAnySource = any)
  int tag = kAnyTag;           // Recv
  CollDesc desc{};             // Collective
  std::uint64_t slot_gen = 0;  // Collective: slot generation when parked
  std::size_t bytes = 0;       // payload bytes contributed (collectives)
  std::uint64_t wait_gen = 0;  // bumped on every (re)registration
  std::chrono::steady_clock::time_point since{};
};

class Checker {
public:
  Checker(RunState* rs, CheckOptions opts);
  ~Checker();

  const CheckOptions& options() const { return opts_; }

  // -- rank affinity ---------------------------------------------------------
  /// Throws CheckError when the calling execution context (fiber or rank
  /// thread, per sched::current_rank) is not `local_rank`'s owner.
  void check_affinity(const Group& g, int local_rank, const char* op) const;

  // -- collective matching ---------------------------------------------------
  /// Called by the last arriver of a collective slot with every rank's
  /// descriptor. On mismatch records the diagnosis, aborts the run and
  /// throws CheckError.
  void verify_collective(Group& g, const std::vector<CollDesc>& descs, std::uint64_t seq);

  // -- wait registry ---------------------------------------------------------
  void block_recv(Group& g, int me_local, int src_local, int tag);
  void block_collective(Group& g, int me_local, const CollDesc& desc, std::uint64_t slot_gen,
                        std::size_t bytes);
  void unblock(const Group& g, int me_local);

  // -- nonblocking-p2p handle hygiene ----------------------------------------
  /// Registers a live Pending handle; returns the registry ticket that
  /// complete_pending retires. peer_local may be kAnySource for receives.
  std::uint64_t register_pending(const Group& g, int me_local, int peer_local, int tag,
                                 bool is_send);
  void complete_pending(std::uint64_t id);
  /// Reports Pending handles never completed by wait()/test(); same
  /// LeftoverPolicy handling as report_leftovers. Call after all rank
  /// threads joined, on the clean-run path.
  void report_leaked_pending();

  // -- watchdog / run end ----------------------------------------------------
  void start_watchdog();
  void stop_watchdog();
  /// Scans every communicator's mailboxes after a clean run; throws
  /// CheckError (or warns) per LeftoverPolicy. Must be called after all rank
  /// threads joined.
  void report_leftovers();
  /// Retains the group so end-of-run leftover reporting can reach it even
  /// after every Comm handle died.
  void retain_group(std::shared_ptr<Group> g);
  /// Drops the retained groups. Groups own the RunState, which owns this
  /// Checker, so the retention is a deliberate cycle that xmp::run must
  /// break on every exit path or the whole run state leaks.
  void release_groups();

private:
  struct Slot {
    mutable std::mutex mu;
    BlockedOp op;
  };

  int world_of(const Group& g, int local) const {
    return g.world_ranks[static_cast<std::size_t>(local)];
  }
  BlockedOp snapshot_slot(int world) const;
  void watchdog_main();
  void poll_once();
  /// Declares a checked-mode failure: records `msg`, aborts the run.
  void declare(const std::string& msg);
  std::string describe_blocked(int world, const BlockedOp& op,
                               std::chrono::steady_clock::time_point now) const;
  std::string dump_all_blocked(std::chrono::steady_clock::time_point now) const;

  RunState* rs_;
  CheckOptions opts_;
  std::vector<Slot> slots_;  // indexed by world rank

  std::mutex groups_mu_;
  std::vector<std::shared_ptr<Group>> retained_;

  // live Pending handles, by registry ticket -> diagnostic description
  std::mutex pend_mu_;
  std::uint64_t next_pending_ = 1;
  std::map<std::uint64_t, std::string> pending_;

  // candidate deadlock cycle awaiting confirmation on the next poll
  std::vector<std::pair<int, std::uint64_t>> candidate_;  // (world rank, wait_gen)

  std::thread watchdog_;
  std::mutex wd_mu_;
  std::condition_variable wd_cv_;
  bool wd_stop_ = false;
  bool declared_ = false;
};

}  // namespace xmp::detail
