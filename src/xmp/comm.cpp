#include "xmp/comm.hpp"

#include <algorithm>
#include <cassert>
#include <thread>

#include "xmp/checker.hpp"
#include "xmp/detail.hpp"
#include "xmp/sched/fiber.hpp"

namespace xmp {
namespace detail {

void RunState::record_check_error(std::exception_ptr e) {
  std::lock_guard lk(check_err_mu);
  if (!check_error) check_error = std::move(e);
}

void RunState::abort_all() {
  aborted.store(true);
  // Snapshot under reg_mu, wake outside it: split() registers the new group
  // (taking reg_mu) from inside the parent's collective combiner, i.e. while
  // holding that group's cmu — waking under reg_mu would invert that order.
  std::vector<std::shared_ptr<Group>> live;
  {
    std::lock_guard lk(reg_mu);
    live.reserve(groups.size());
    for (auto& w : groups)
      if (auto g = w.lock()) live.push_back(std::move(g));
  }
  for (auto& g : live) g->wake_all();
}

Group::Group(std::shared_ptr<RunState> rs_, int id_, std::vector<int> wr)
    : rs(std::move(rs_)), id(id_), world_ranks(std::move(wr)), inputs(world_ranks.size()),
      descs(world_ranks.size()) {
  boxes.reserve(world_ranks.size());
  for (std::size_t i = 0; i < world_ranks.size(); ++i)
    boxes.push_back(std::make_unique<Mailbox>());
}

std::string Group::name() const {
  if (id == 0) return "world";
  std::string s = "comm#" + std::to_string(id) + "{";
  const std::size_t shown = std::min<std::size_t>(world_ranks.size(), 8);
  for (std::size_t i = 0; i < shown; ++i) {
    if (i) s += ",";
    s += std::to_string(world_ranks[i]);
  }
  if (shown < world_ranks.size()) s += ",...";
  return s + "}";
}

int Group::local_rank_of_world(int world) const {
  for (std::size_t i = 0; i < world_ranks.size(); ++i)
    if (world_ranks[i] == world) return static_cast<int>(i);
  return -1;
}

void Group::wake_all() {
  {
    std::lock_guard lk(cmu);
    ccv.notify_all();
  }
  for (auto& b : boxes) {
    std::lock_guard lk(b->mu);
    b->cv.notify_all();
  }
}

std::shared_ptr<void> Group::collective(int rank, const void* ptr, std::size_t bytes,
                                        const CollDesc& desc, const CombineFn& combine) {
#ifdef XMP_CHECKED
  if (rs->checker) rs->checker->check_affinity(*this, rank, to_string(desc.kind));
#endif
  std::unique_lock lk(cmu);
  check_abort();
  const std::uint64_t mygen = gen;
  inputs[static_cast<std::size_t>(rank)] = {ptr, bytes};
#ifdef XMP_CHECKED
  if (rs->checker) descs[static_cast<std::size_t>(rank)] = desc;
#endif
  std::shared_ptr<void> out;
  if (++arrived == size()) {
#ifdef XMP_CHECKED
    // Throws CheckError on mismatch (after marking the run aborted, so the
    // co-arrived ranks wake with AbortedError instead of hanging).
    if (rs->checker) rs->checker->verify_collective(*this, descs, mygen);
#endif
    result = combine(inputs);
    out = result;
    arrived = 0;
    ++gen;
    ccv.notify_all();
  } else {
#ifdef XMP_CHECKED
    bool registered = false;
#endif
    while (gen == mygen && !rs->aborted.load(std::memory_order_relaxed)) {
#ifdef XMP_CHECKED
      // Register in the wait-for graph only when actually parking.
      if (rs->checker && !registered) {
        rs->checker->block_collective(*this, rank, desc, mygen, bytes);
        registered = true;
      }
#endif
      ccv.wait(lk);
    }
#ifdef XMP_CHECKED
    if (registered) rs->checker->unblock(*this, rank);
#endif
    check_abort();
    out = result;
  }
  return out;
}

void Group::emit_trace(int src, int dst, std::size_t bytes, int tag, TraceKind kind) {
  if (!rs->has_trace.load(std::memory_order_acquire)) return;
  std::lock_guard tl(rs->trace_mu);
  if (rs->trace)
    rs->trace(TraceEvent{world_ranks[static_cast<std::size_t>(src)],
                         world_ranks[static_cast<std::size_t>(dst)], bytes, tag, kind});
}

void Group::send(int src, int dst, int tag, const void* data, std::size_t bytes) {
#ifdef XMP_CHECKED
  if (rs->checker) rs->checker->check_affinity(*this, src, "send");
#endif
  check_abort();
  if (dst < 0 || dst >= size())
    throw std::out_of_range("xmp: send dst " + std::to_string(dst) +
                            " out of range for comm of size " + std::to_string(size()));
  emit_trace(src, dst, bytes, tag, TraceKind::P2P);
  Mailbox& box = *boxes[static_cast<std::size_t>(dst)];
  Message m{src, tag, {}};
  m.data.resize(bytes);
  // lint: memcpy-ok (destination is the untyped mailbox byte buffer)
  if (bytes) std::memcpy(m.data.data(), data, bytes);
  {
    // Notify under the mutex: WaitCv::notify_all touches the fiber waiter
    // list, which the mutex guards.
    std::lock_guard lk(box.mu);
    box.q.push_back(std::move(m));
    box.cv.notify_all();
  }
}

std::vector<std::uint8_t> Group::recv(int me, int src, int tag, int* out_src, int* out_tag) {
#ifdef XMP_CHECKED
  if (rs->checker) rs->checker->check_affinity(*this, me, "recv");
#endif
  if (src != kAnySource && (src < 0 || src >= size()))
    throw std::out_of_range("xmp: recv src " + std::to_string(src) +
                            " out of range for comm of size " + std::to_string(size()) +
                            " (tag " + std::to_string(tag) + ")");
  Mailbox& box = *boxes[static_cast<std::size_t>(me)];
  std::unique_lock lk(box.mu);
  auto match = [&]() -> std::deque<Message>::iterator {
    for (auto it = box.q.begin(); it != box.q.end(); ++it)
      if ((src == kAnySource || it->src == src) && (tag == kAnyTag || it->tag == tag))
        return it;
    return box.q.end();
  };
  std::deque<Message>::iterator it;
#ifdef XMP_CHECKED
  bool registered = false;
#endif
  while (true) {
    it = match();
    if (it != box.q.end() || rs->aborted.load(std::memory_order_relaxed)) break;
#ifdef XMP_CHECKED
    // Register in the wait-for graph only when actually parking (the fast
    // path where the message is already queued never touches the registry).
    if (rs->checker && !registered) {
      rs->checker->block_recv(*this, me, src, tag);
      registered = true;
    }
#endif
    box.cv.wait(lk);
  }
#ifdef XMP_CHECKED
  if (registered) rs->checker->unblock(*this, me);
#endif
  check_abort();
  Message m = std::move(*it);
  box.q.erase(it);
  lk.unlock();
  if (out_src) *out_src = m.src;
  if (out_tag) *out_tag = m.tag;
  return std::move(m.data);
}

namespace {
std::shared_ptr<Group> make_group(const std::shared_ptr<RunState>& rs, std::vector<int> wr) {
  auto g = std::make_shared<Group>(rs, rs->next_group_id.fetch_add(1), std::move(wr));
  {
    std::lock_guard lk(rs->reg_mu);
    rs->groups.push_back(g);
  }
#ifdef XMP_CHECKED
  if (rs->checker) rs->checker->retain_group(g);
#endif
  return g;
}
}  // namespace

}  // namespace detail

int Comm::size() const { return group_ ? group_->size() : 0; }

int Comm::world_rank() const {
  if (!group_) throw std::logic_error("xmp: invalid comm");
  return group_->world_ranks[static_cast<std::size_t>(rank_)];
}

void Comm::send_bytes(int dst, int tag, const void* data, std::size_t bytes) const {
  if (!group_) throw std::logic_error("xmp: invalid comm");
  group_->send(rank_, dst, tag, data, bytes);
}

std::vector<std::uint8_t> Comm::recv_bytes(int src, int tag, int* out_src, int* out_tag) const {
  if (!group_) throw std::logic_error("xmp: invalid comm");
  return group_->recv(rank_, src, tag, out_src, out_tag);
}

// ---- nonblocking p2p --------------------------------------------------------

namespace {

/// Retire a handle in the checked-mode leak registry (idempotent).
void retire_pending(detail::PendingState& st) {
#ifdef XMP_CHECKED
  if (st.check_id != 0) {
    if (auto* ck = st.grp->rs->checker.get()) ck->complete_pending(st.check_id);
    st.check_id = 0;
  }
#else
  (void)st;
#endif
}

}  // namespace

Pending Comm::isend_bytes(int dst, int tag, const void* data, std::size_t bytes) const {
  if (!group_) throw std::logic_error("xmp: invalid comm");
  // The eager transport delivers inside send(); the handle is born complete
  // and only exists so completion stays symmetric with irecv_bytes (and so
  // checked mode can flag callers who drop it without wait()/test()).
  group_->send(rank_, dst, tag, data, bytes);
  auto st = std::make_shared<detail::PendingState>();
  st->grp = group_;
  st->me = rank_;
  st->peer = dst;
  st->tag = tag;
  st->is_send = true;
  st->matched = true;
#ifdef XMP_CHECKED
  if (group_->rs->checker)
    st->check_id = group_->rs->checker->register_pending(*group_, rank_, dst, tag, true);
#endif
  return Pending(std::move(st));
}

Pending Comm::irecv_bytes(int src, int tag) const {
  if (!group_) throw std::logic_error("xmp: invalid comm");
#ifdef XMP_CHECKED
  if (group_->rs->checker) group_->rs->checker->check_affinity(*group_, rank_, "irecv");
#endif
  if (src != kAnySource && (src < 0 || src >= size()))
    throw std::out_of_range("xmp: irecv src " + std::to_string(src) +
                            " out of range for comm of size " + std::to_string(size()) +
                            " (tag " + std::to_string(tag) + ")");
  group_->check_abort();
  auto st = std::make_shared<detail::PendingState>();
  st->grp = group_;
  st->me = rank_;
  st->peer = src;
  st->tag = tag;
#ifdef XMP_CHECKED
  if (group_->rs->checker)
    st->check_id = group_->rs->checker->register_pending(*group_, rank_, src, tag, false);
#endif
  return Pending(std::move(st));
}

std::vector<std::uint8_t> Pending::wait(int* out_src, int* out_tag) {
  if (!st_) throw std::logic_error("xmp: wait() on an invalid Pending handle");
  detail::PendingState& st = *st_;
  if (st.consumed)
    throw std::logic_error("xmp: wait() called twice on the same Pending handle");
  detail::Group& g = *st.grp;
#ifdef XMP_CHECKED
  if (g.rs->checker) g.rs->checker->check_affinity(g, st.me, "wait");
#endif
  if (st.is_send) {
    g.check_abort();
    st.consumed = true;
    retire_pending(st);
    return {};
  }
  if (!st.matched) {
    // Same match/park loop as Group::recv: parking goes through WaitCv, so
    // under the fiber scheduler this wait() is a yield point, and the
    // checked-mode watchdog sees it as a blocked recv (wait-for cycles
    // through Pending::wait are diagnosed like recv deadlocks).
    detail::Mailbox& box = *g.boxes[static_cast<std::size_t>(st.me)];
    std::unique_lock lk(box.mu);
    auto match = [&]() -> std::deque<detail::Message>::iterator {
      for (auto it = box.q.begin(); it != box.q.end(); ++it)
        if ((st.peer == kAnySource || it->src == st.peer) &&
            (st.tag == kAnyTag || it->tag == st.tag))
          return it;
      return box.q.end();
    };
    std::deque<detail::Message>::iterator it;
#ifdef XMP_CHECKED
    bool registered = false;
#endif
    while (true) {
      it = match();
      if (it != box.q.end() || g.rs->aborted.load(std::memory_order_relaxed)) break;
#ifdef XMP_CHECKED
      if (g.rs->checker && !registered) {
        g.rs->checker->block_recv(g, st.me, st.peer, st.tag);
        registered = true;
      }
#endif
      box.cv.wait(lk);
    }
#ifdef XMP_CHECKED
    if (registered) g.rs->checker->unblock(g, st.me);
#endif
    g.check_abort();
    st.claimed = std::move(*it);
    box.q.erase(it);
    st.matched = true;
  } else {
    g.check_abort();
  }
  st.consumed = true;
  retire_pending(st);
  if (out_src) *out_src = st.claimed.src;
  if (out_tag) *out_tag = st.claimed.tag;
  return std::move(st.claimed.data);
}

bool Pending::test() {
  if (!st_) throw std::logic_error("xmp: test() on an invalid Pending handle");
  detail::PendingState& st = *st_;
  if (st.consumed)
    throw std::logic_error("xmp: test() after wait() on the same Pending handle");
  detail::Group& g = *st.grp;
#ifdef XMP_CHECKED
  if (g.rs->checker) g.rs->checker->check_affinity(g, st.me, "test");
#endif
  g.check_abort();
  if (st.matched) {
    retire_pending(st);
    return true;
  }
  detail::Mailbox& box = *g.boxes[static_cast<std::size_t>(st.me)];
  {
    std::lock_guard lk(box.mu);
    for (auto it = box.q.begin(); it != box.q.end(); ++it) {
      if ((st.peer == kAnySource || it->src == st.peer) &&
          (st.tag == kAnyTag || it->tag == st.tag)) {
        // Claim immediately: a true result stays true, and the payload is
        // reserved for the eventual wait().
        st.claimed = std::move(*it);
        box.q.erase(it);
        st.matched = true;
        retire_pending(st);
        return true;
      }
    }
  }
  // A failed poll is a cooperative yield point: the caller's
  // `while (!test())` loop must let the polled-on rank run even on a
  // single fiber worker (threads are preemptive, fibers are not).
  detail::fiber_yield();
  return false;
}

void Comm::barrier() const {
  if (!group_) throw std::logic_error("xmp: invalid comm");
  // lint: no-trace (barriers carry no payload attribution)
  group_->collective(rank_, nullptr, 0, CollDesc{CollKind::Barrier, 0, -1, -1, 0},
                     [](const auto&) { return std::make_shared<int>(0); });
}

const char* to_string(TraceKind k) {
  switch (k) {
    case TraceKind::P2P: return "p2p";
    case TraceKind::Gather: return "gather";
    case TraceKind::Scatter: return "scatter";
    case TraceKind::Bcast: return "bcast";
    case TraceKind::Allgather: return "allgather";
    case TraceKind::Reduce: return "reduce";
  }
  return "?";
}

const char* to_string(CollKind k) {
  switch (k) {
    case CollKind::Raw: return "collect_bytes";
    case CollKind::Barrier: return "barrier";
    case CollKind::Bcast: return "bcast";
    case CollKind::Gatherv: return "gatherv";
    case CollKind::Allgatherv: return "allgatherv";
    case CollKind::Scatterv: return "scatterv";
    case CollKind::Allreduce: return "allreduce";
    case CollKind::Split: return "split";
    case CollKind::SetTrace: return "set_trace";
  }
  return "?";
}

bool checked_available() {
#ifdef XMP_CHECKED
  return true;
#else
  return false;
#endif
}

void Comm::trace_transfer(int src, int dst, std::size_t bytes, TraceKind kind) const {
  if (!group_) throw std::logic_error("xmp: invalid comm");
  group_->emit_trace(src, dst, bytes, kCollectiveTag, kind);
}

void Comm::set_trace(TraceSink sink) const {
  if (!group_) throw std::logic_error("xmp: invalid comm");
  auto* rs = group_->rs.get();
  // Enforce the quiescence requirement: installation must happen while every
  // rank of the run is blocked here, which only a world-spanning collective
  // can guarantee. A subgroup collective would leave outside ranks free to
  // send concurrently.
  if (group_->size() != rs->world_size)
    throw std::logic_error(
        "xmp: set_trace is collective over the WORLD communicator (or pass the "
        "sink to xmp::run to install it before ranks start)");
  // lint: no-trace (installs the sink itself; nothing to attribute)
  group_->collective(rank_, &sink, sizeof sink,
                     CollDesc{CollKind::SetTrace, sizeof sink, -1, -1, kShapeUnknown},
                     [rs](const auto& ins) {
    TraceSink* chosen = nullptr;
    for (const auto& [ptr, bytes] : ins) {
      (void)bytes;
      auto* s = static_cast<TraceSink*>(const_cast<void*>(ptr));
      if (*s) {
        chosen = s;
        break;
      }
    }
    // Every rank is parked inside this collective, so swapping the sink here
    // cannot race any emit_trace.
    std::lock_guard lk(rs->trace_mu);
    rs->trace = chosen ? std::move(*chosen) : nullptr;
    rs->has_trace.store(chosen != nullptr, std::memory_order_release);
    return std::make_shared<int>(0);
  });
}

Comm Comm::split(int color, int key) const {
  if (!group_) throw std::logic_error("xmp: invalid comm");
  struct In {
    int color, key, rank;
  };
  struct Out {
    // per old-rank: the new group (may be null) and new rank
    std::vector<std::shared_ptr<detail::Group>> groups;
    std::vector<int> new_rank;
  };
  In mine{color, key, rank_};
  // lint: no-trace (communicator management, not data movement)
  auto res = group_->collective(
      rank_, &mine, sizeof mine, CollDesc{CollKind::Split, sizeof mine, -1, -1, kShapeUnknown},
      [this](const auto& ins) {
    const int n = static_cast<int>(ins.size());
    std::vector<In> all(static_cast<std::size_t>(n));
    for (int r = 0; r < n; ++r)
      std::memcpy(&all[static_cast<std::size_t>(r)], ins[static_cast<std::size_t>(r)].first,
                  sizeof(In));
    auto out = std::make_shared<Out>();
    out->groups.resize(static_cast<std::size_t>(n));
    out->new_rank.assign(static_cast<std::size_t>(n), -1);

    std::map<int, std::vector<In>> by_color;
    for (const auto& in : all)
      if (in.color != kUndefined) by_color[in.color].push_back(in);
    for (auto& [c, members] : by_color) {
      std::sort(members.begin(), members.end(), [](const In& a, const In& b) {
        return a.key != b.key ? a.key < b.key : a.rank < b.rank;
      });
      std::vector<int> wr;
      wr.reserve(members.size());
      for (const auto& m : members)
        wr.push_back(group_->world_ranks[static_cast<std::size_t>(m.rank)]);
      auto g = detail::make_group(group_->rs, std::move(wr));
      for (std::size_t i = 0; i < members.size(); ++i) {
        out->groups[static_cast<std::size_t>(members[i].rank)] = g;
        out->new_rank[static_cast<std::size_t>(members[i].rank)] = static_cast<int>(i);
      }
    }
    return std::shared_ptr<void>(out);
  });
  auto* out = static_cast<Out*>(res.get());
  auto g = out->groups[static_cast<std::size_t>(rank_)];
  if (!g) return Comm{};
  return Comm(g, out->new_rank[static_cast<std::size_t>(rank_)]);
}

namespace {

/// Shared result of a byte-collecting collective: every rank's contribution.
using Blobs = std::vector<std::vector<std::uint8_t>>;

std::shared_ptr<Blobs> collect_bytes(const std::shared_ptr<detail::Group>& g, int rank,
                                     const void* ptr, std::size_t bytes, const CollDesc& desc) {
  auto res = g->collective(rank, ptr, bytes, desc, [](const auto& ins) {
    auto blobs = std::make_shared<Blobs>(ins.size());
    for (std::size_t r = 0; r < ins.size(); ++r) {
      (*blobs)[r].resize(ins[r].second);
      // lint: memcpy-ok (destination is an untyped contribution blob)
      if (ins[r].second) std::memcpy((*blobs)[r].data(), ins[r].first, ins[r].second);
    }
    return std::shared_ptr<void>(blobs);
  });
  return std::static_pointer_cast<Blobs>(res);
}

}  // namespace

// ---- collectives built on collect_bytes ------------------------------------

std::shared_ptr<const std::vector<std::vector<std::uint8_t>>> Comm::collect_bytes_all(
    const void* ptr, std::size_t bytes, const CollDesc& desc) const {
  if (!group_) throw std::logic_error("xmp: invalid comm");
  // lint: no-trace (raw primitive; the typed collectives attribute traffic)
  return collect_bytes(group_, rank_, ptr, bytes, desc);
}

namespace {
/// Logical trace pattern of an allreduce: fan-in to rank 0, result fan-out.
void trace_allreduce(const Comm& c, std::size_t bytes) {
  if (c.rank() != 0) {
    c.trace_transfer(c.rank(), 0, bytes, TraceKind::Reduce);
  } else {
    for (int r = 1; r < c.size(); ++r) c.trace_transfer(0, r, bytes, TraceKind::Bcast);
  }
}
}  // namespace

double Comm::allreduce(double v, Op op) const {
  trace_allreduce(*this, sizeof v);
  auto blobs = collect_bytes(group_, rank_, &v, sizeof v,
                             CollDesc{CollKind::Allreduce, sizeof v, -1, static_cast<int>(op), 1});
  double acc = 0.0;
  bool first = true;
  for (const auto& b : *blobs) {
    double x;
    std::memcpy(&x, b.data(), sizeof x);
    if (first) {
      acc = x;
      first = false;
    } else {
      switch (op) {
        case Op::Sum: acc += x; break;
        case Op::Min: acc = std::min(acc, x); break;
        case Op::Max: acc = std::max(acc, x); break;
      }
    }
  }
  return acc;
}

std::int64_t Comm::allreduce(std::int64_t v, Op op) const {
  trace_allreduce(*this, sizeof v);
  auto blobs = collect_bytes(group_, rank_, &v, sizeof v,
                             CollDesc{CollKind::Allreduce, sizeof v, -1, static_cast<int>(op), 1});
  std::int64_t acc = 0;
  bool first = true;
  for (const auto& b : *blobs) {
    std::int64_t x;
    std::memcpy(&x, b.data(), sizeof x);
    if (first) {
      acc = x;
      first = false;
    } else {
      switch (op) {
        case Op::Sum: acc += x; break;
        case Op::Min: acc = std::min(acc, x); break;
        case Op::Max: acc = std::max(acc, x); break;
      }
    }
  }
  return acc;
}

std::vector<double> Comm::allreduce(std::span<const double> v, Op op) const {
  trace_allreduce(*this, v.size() * sizeof(double));
  auto blobs = collect_bytes(
      group_, rank_, v.data(), v.size() * sizeof(double),
      CollDesc{CollKind::Allreduce, sizeof(double), -1, static_cast<int>(op), v.size()});
  std::vector<double> acc(v.size());
  bool first = true;
  for (const auto& b : *blobs) {
    if (b.size() != v.size() * sizeof(double))
      throw std::runtime_error("xmp: allreduce length mismatch: a rank contributed " +
                               std::to_string(b.size() / sizeof(double)) +
                               " elements, this rank " + std::to_string(v.size()));
    const double* x = reinterpret_cast<const double*>(b.data());
    if (first) {
      std::copy(x, x + v.size(), acc.begin());
      first = false;
    } else {
      for (std::size_t i = 0; i < v.size(); ++i) {
        switch (op) {
          case Op::Sum: acc[i] += x[i]; break;
          case Op::Min: acc[i] = std::min(acc[i], x[i]); break;
          case Op::Max: acc[i] = std::max(acc[i], x[i]); break;
        }
      }
    }
  }
  return acc;
}

void run(int nranks, const std::function<void(Comm&)>& fn, TraceSink trace,
         const CheckOptions& check, const SchedOptions& sched) {
  if (nranks <= 0) throw std::invalid_argument("xmp: nranks must be positive");
  auto rs = std::make_shared<detail::RunState>();
  rs->world_size = nranks;
  if (trace) {
    // Installed before any rank thread exists: trivially race-free.
    rs->trace = std::move(trace);
    rs->has_trace.store(true, std::memory_order_release);
  }
  if (check.enabled) {
#ifdef XMP_CHECKED
    rs->checker = std::make_unique<detail::Checker>(rs.get(), check);
#else
    throw std::logic_error(
        "xmp: checked mode requested but not compiled in (configure with -DXMP_CHECKED=ON)");
#endif
  }
  std::vector<int> wr(static_cast<std::size_t>(nranks));
  for (int i = 0; i < nranks; ++i) wr[static_cast<std::size_t>(i)] = i;
  auto world = detail::make_group(rs, std::move(wr));

#ifdef XMP_CHECKED
  // The checker retains every group (so the leftover sweep can reach
  // mailboxes of dropped sub-comms), and groups own the RunState that owns
  // the checker: break that deliberate cycle on every exit path, including
  // the error rethrows below.
  struct ReleaseGuard {
    detail::RunState* rs;
    ~ReleaseGuard() {
      if (rs->checker) rs->checker->release_groups();
    }
  } release_guard{rs.get()};
  if (rs->checker) rs->checker->start_watchdog();
#endif

  std::exception_ptr first_error;
  std::mutex err_mu;

  // Backend-independent rank body: both executors call it with the rank
  // context (sched::current_rank) already established.
  auto rank_main = [&](int r) {
    Comm c(world, r);
    try {
      fn(c);
    } catch (...) {
      {
        std::lock_guard lk(err_mu);
        if (!first_error) first_error = std::current_exception();
      }
      rs->abort_all();
    }
  };

  if (sched.mode == SchedMode::Fibers) {
    detail::FiberScheduler fs(sched);
    fs.run(nranks, rank_main);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(nranks));
    for (int r = 0; r < nranks; ++r) {
      threads.emplace_back([&, r] {
        sched::detail::set_current_rank(r);
        rank_main(r);
      });
    }
    for (auto& t : threads) t.join();
  }
#ifdef XMP_CHECKED
  if (rs->checker) rs->checker->stop_watchdog();
#endif
  if (first_error) {
    // Surface the root-cause failure, not the secondary AbortedErrors: when
    // the checker triggered the abort, its diagnosis is the root cause.
    bool secondary = false;
    try {
      std::rethrow_exception(first_error);
    } catch (const AbortedError&) {
      secondary = true;
    } catch (...) {
      throw;
    }
    if (secondary) {
      std::lock_guard lk(rs->check_err_mu);
      if (rs->check_error) std::rethrow_exception(rs->check_error);
    }
    std::rethrow_exception(first_error);
  }
  {
    std::lock_guard lk(rs->check_err_mu);
    if (rs->check_error) std::rethrow_exception(rs->check_error);
  }
#ifdef XMP_CHECKED
  // Clean run: report Pending handles never completed by wait()/test(), then
  // messages nobody ever received (both per LeftoverPolicy).
  if (rs->checker) {
    rs->checker->report_leaked_pending();
    rs->checker->report_leftovers();
  }
#endif
}

void run(int nranks, const std::function<void(Comm&)>& fn, TraceSink trace,
         const CheckOptions& check) {
  run(nranks, fn, std::move(trace), check, SchedOptions::from_env());
}

void run(int nranks, const std::function<void(Comm&)>& fn, TraceSink trace) {
  run(nranks, fn, std::move(trace), CheckOptions::from_env(), SchedOptions::from_env());
}

}  // namespace xmp
