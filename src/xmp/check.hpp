#pragma once
// xmp checked mode — runtime verification of MPI-style usage (in the spirit
// of the MUST correctness checker), compiled in with the XMP_CHECKED macro
// (CMake option XMP_CHECKED, default ON) and switched on per run either by
// passing CheckOptions to xmp::run or via the XMP_CHECK=1 environment
// variable. When the macro is off every hook compiles out of the runtime.
//
// What it verifies (see docs/CHECKING.md):
//   * collective matching: every rank of a communicator must issue the same
//     collective sequence — operation kind, element size, root, reduce op,
//     and (where declared) shape;
//   * thread affinity: a Comm handle is only used by the rank thread it was
//     created for;
//   * p2p/collective deadlock: a wait-for graph over blocked operations with
//     cycle detection, plus a stall timeout that dumps every rank's blocked
//     operation (comm, peer, tag, bytes) before aborting the run;
//   * message hygiene: unreceived messages left in any mailbox at the end of
//     a clean run are reported (error by default).

#include <chrono>
#include <stdexcept>
#include <string>

namespace xmp {

/// Thrown (and attributed as the run's root cause) when checked mode detects
/// a correctness violation. The message names the offending ranks and
/// operations.
struct CheckError : std::runtime_error {
  explicit CheckError(const std::string& msg) : std::runtime_error(msg) {}
};

/// What to do with messages still sitting in mailboxes at the end of an
/// otherwise clean run.
enum class LeftoverPolicy : std::uint8_t { Error, Warn, Off };

struct CheckOptions {
  /// Master switch. With enabled == false a checked build behaves (and
  /// costs) like an unchecked one apart from a few dead branches.
  bool enabled = false;

  /// Verify that all ranks of a communicator issue the same collective
  /// sequence (kind / element size / root / reduce op / shape).
  bool verify_collectives = true;

  /// Enforce that every Comm is used only by the rank thread it was created
  /// for (the documented affinity contract).
  bool enforce_affinity = true;

  /// Maintain the wait-for graph and abort on a verified cycle.
  bool detect_deadlock = true;

  /// Abort when any rank has been blocked longer than this, dumping every
  /// rank's blocked operation. Generous by default: a long block behind a
  /// slow peer is legal; a cycle is caught much earlier by detect_deadlock.
  std::chrono::milliseconds stall_timeout{30000};

  /// Watchdog sampling period (deadlock cycles are confirmed over two
  /// consecutive polls, so detection latency is ~2x this).
  std::chrono::milliseconds poll_interval{25};

  LeftoverPolicy leftovers = LeftoverPolicy::Error;

  /// Reads XMP_CHECK (0/1), XMP_CHECK_STALL_MS, XMP_CHECK_POLL_MS and
  /// XMP_CHECK_LEFTOVER (error|warn|off). Unset variables keep defaults;
  /// XMP_CHECK unset or 0 leaves `enabled` false.
  static CheckOptions from_env();
};

/// True when the library was compiled with XMP_CHECKED. Requesting an
/// enabled CheckOptions from xmp::run in a build without it throws.
bool checked_available();

}  // namespace xmp
