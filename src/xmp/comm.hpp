#pragma once
// xmp — an in-process message-passing runtime with MPI-like semantics.
//
// The paper's Multilevel Communicating Interface (MCI, Sec. 3.1) is an
// algorithm over MPI communicators: the World communicator is split into
// topology groups (L2), task groups (L3) and interface groups (L4), and all
// coupling traffic flows point-to-point between group roots. We reproduce
// that algorithm faithfully on an in-process runtime where each rank is an
// OS thread (reference backend) or a cooperatively scheduled fiber
// (sched/sched.hpp, scaling to 4k-64k ranks in one process):
//   * communicators with rank/size, collective split (color/key),
//   * blocking tagged p2p send/recv (any-source supported),
//   * collectives: barrier, bcast, gather(v), scatter(v), allgather(v),
//     reduce/allreduce,
//   * a traffic trace hook so tests and the machine model can observe the
//     exact message pattern an algorithm generates,
//   * an optional checked mode (check.hpp) verifying collective matching,
//     thread affinity, deadlock freedom and mailbox hygiene at run time.
//
// A failed rank (uncaught exception) aborts the whole run: every blocked
// rank wakes and throws AbortedError, and xmp::run rethrows the original
// exception to the caller, so tests fail loudly instead of deadlocking.

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "xmp/check.hpp"
#include "xmp/sched/sched.hpp"

namespace xmp {

inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;
/// Color passed to split() by ranks that do not join any new communicator.
inline constexpr int kUndefined = -1;

/// Thrown in ranks blocked on communication when another rank fails.
struct AbortedError : std::runtime_error {
  AbortedError() : std::runtime_error("xmp: run aborted by failure in another rank") {}
};

/// What kind of transfer a TraceEvent describes. P2P events are real
/// mailbox messages; the collective kinds are *logical* transfers: the
/// in-process runtime executes collectives through a shared-memory slot, and
/// the trace hook reports the message pattern an MPI implementation of the
/// same collective would generate (gather fan-in, scatter/bcast fan-out,
/// reduce fan-in + result fan-out). barrier() and the raw collect_bytes_all
/// primitive carry no payload attribution and are not traced.
enum class TraceKind : std::uint8_t { P2P, Gather, Scatter, Bcast, Allgather, Reduce };

const char* to_string(TraceKind k);

/// Tag reported on logical collective transfers (collectives are untagged).
inline constexpr int kCollectiveTag = -2;

/// One observed transfer (world-rank endpoints).
struct TraceEvent {
  int src_world;
  int dst_world;
  std::size_t bytes;
  int tag;
  TraceKind kind = TraceKind::P2P;
};
using TraceSink = std::function<void(const TraceEvent&)>;

enum class Op { Sum, Min, Max };

/// Which collective operation a rank entered (checked-mode matching; also
/// part of the collective primitive's signature so the verifier can name
/// operations in diagnostics).
enum class CollKind : std::uint8_t {
  Raw,       ///< untyped collect_bytes_all
  Barrier,
  Bcast,
  Gatherv,
  Allgatherv,
  Scatterv,
  Allreduce,
  Split,
  SetTrace,
};

const char* to_string(CollKind k);

/// Sentinel for "this rank does not declare a shape for this collective"
/// (e.g. bcast non-roots learn the shape from the root).
inline constexpr std::size_t kShapeUnknown = static_cast<std::size_t>(-1);

/// Per-rank description of one collective call. Checked mode requires every
/// rank of a communicator to enter with pairwise-compatible descriptors:
/// kind, elem_size, root and extra must be equal, and all declared (non
/// kShapeUnknown) shapes must agree.
struct CollDesc {
  CollKind kind = CollKind::Raw;
  std::size_t elem_size = 0;
  int root = -1;                     ///< -1 for rootless collectives
  int extra = -1;                    ///< e.g. the reduce Op; -1 when unused
  std::size_t shape = kShapeUnknown; ///< element count, where declared
};

namespace detail {
struct Group;
struct RunState;
struct PendingState;
}  // namespace detail

/// Handle to a nonblocking point-to-point operation (Comm::isend_bytes /
/// Comm::irecv_bytes). wait() completes the operation — for receives it
/// blocks until a matching message arrives, and like every runtime blocking
/// point it is a fiber *yield* point under the fiber scheduler (the parked
/// rank's worker runs other ranks); test() is a nonblocking completion
/// probe. Every handle must be completed by wait() (or a test() that
/// returned true) before the run ends: checked mode audits handle hygiene
/// and reports leaked handles the way it reports leftover mailbox messages.
/// Handles are rank-affine like the Comm that created them; movable, not
/// copyable.
class Pending {
public:
  Pending() = default;
  Pending(Pending&&) noexcept = default;
  Pending& operator=(Pending&&) noexcept = default;
  Pending(const Pending&) = delete;
  Pending& operator=(const Pending&) = delete;

  bool valid() const { return st_ != nullptr; }

  /// Complete the operation. Receives block until the matching message
  /// arrives (a checked-mode blocked op, so wait-for cycles through wait()
  /// are diagnosed like recv deadlocks) and return its payload, filling
  /// out_src/out_tag when non-null; sends return empty immediately (the
  /// in-process transport delivered at isend time). Throws std::logic_error
  /// on an invalid handle or a second wait().
  std::vector<std::uint8_t> wait(int* out_src = nullptr, int* out_tag = nullptr);

  /// Nonblocking completion probe: true when wait() would return without
  /// blocking. A matching message is claimed off the mailbox immediately,
  /// so a true result is stable and the payload stays reserved for wait().
  /// A false result is a cooperative yield point under the fiber scheduler
  /// (the polled-on rank gets a turn), so `while (!p.test())` loops make
  /// progress on any worker count.
  bool test();

private:
  friend class Comm;
  explicit Pending(std::shared_ptr<detail::PendingState> st) : st_(std::move(st)) {}
  std::shared_ptr<detail::PendingState> st_;
};

/// Rank-local handle to a communicator. Cheap to copy; all copies refer to
/// the same group. Rank-affine: a Comm must only be used by the rank
/// (thread or fiber) it was created for — checked builds enforce this via
/// the scheduler's rank context (sched::current_rank).
class Comm {
public:
  Comm() = default;

  int rank() const { return rank_; }
  int size() const;
  int world_rank() const;
  bool valid() const { return group_ != nullptr; }

  /// Collective. Ranks passing the same color land in the same new
  /// communicator, ordered by (key, old rank). color==kUndefined yields an
  /// invalid Comm for that rank.
  Comm split(int color, int key) const;

  // --- point-to-point -----------------------------------------------------
  void send_bytes(int dst, int tag, const void* data, std::size_t bytes) const;
  /// Blocking receive; src may be kAnySource, tag may be kAnyTag.
  /// Fills out_src/out_tag when non-null.
  std::vector<std::uint8_t> recv_bytes(int src, int tag, int* out_src = nullptr,
                                       int* out_tag = nullptr) const;

  /// Nonblocking send. The in-process transport is eager/buffered, so the
  /// payload is delivered before this returns and the handle is born
  /// complete — but it must still be retired by wait()/test() so checked
  /// mode can audit handle hygiene symmetrically with irecv_bytes.
  Pending isend_bytes(int dst, int tag, const void* data, std::size_t bytes) const;
  /// Nonblocking receive: returns immediately with a handle; the matching
  /// message is claimed by test() or wait(). src may be kAnySource, tag may
  /// be kAnyTag. Posting order does not reserve matching order — two
  /// outstanding irecvs with overlapping patterns claim messages in the
  /// order their test()/wait() calls run, not the order they were posted.
  Pending irecv_bytes(int src, int tag) const;

  template <class T>
  void send(int dst, int tag, std::span<const T> v) const {
    static_assert(std::is_trivially_copyable_v<T>);
    send_bytes(dst, tag, v.data(), v.size() * sizeof(T));
  }
  template <class T>
  void send(int dst, int tag, const std::vector<T>& v) const {
    send(dst, tag, std::span<const T>(v));
  }
  void send_value_double(int dst, int tag, double v) const { send_bytes(dst, tag, &v, sizeof v); }

  template <class T>
  std::vector<T> recv(int src, int tag, int* out_src = nullptr) const {
    static_assert(std::is_trivially_copyable_v<T>);
    int got_src = kAnySource, got_tag = kAnyTag;
    auto raw = recv_bytes(src, tag, &got_src, &got_tag);
    if (raw.size() % sizeof(T) != 0)
      throw std::runtime_error(
          "xmp: recv size mismatch: message from src " + std::to_string(got_src) + " tag " +
          std::to_string(got_tag) + " is " + std::to_string(raw.size()) +
          " bytes, not a multiple of element size " + std::to_string(sizeof(T)));
    if (out_src) *out_src = got_src;
    std::vector<T> v(raw.size() / sizeof(T));
    std::memcpy(v.data(), raw.data(), raw.size());
    return v;
  }

  // --- collectives ---------------------------------------------------------
  void barrier() const;

  template <class T>
  void bcast(std::vector<T>& data, int root) const;

  /// Variable-length gather: root receives the concatenation (with per-rank
  /// offsets); non-roots receive empty.
  template <class T>
  std::vector<T> gatherv(std::span<const T> mine, int root,
                         std::vector<std::size_t>* counts = nullptr) const;

  template <class T>
  std::vector<T> allgatherv(std::span<const T> mine,
                            std::vector<std::size_t>* counts = nullptr) const;

  /// Root provides `parts[r]` for each rank r; every rank returns its part.
  template <class T>
  std::vector<T> scatterv(const std::vector<std::vector<T>>& parts, int root) const;

  double allreduce(double v, Op op) const;
  std::int64_t allreduce(std::int64_t v, Op op) const;
  /// Element-wise allreduce of equal-length vectors.
  std::vector<double> allreduce(std::span<const double> v, Op op) const;

  /// Install a sink observing every traced transfer in the whole run (world
  /// scope). COLLECTIVE over the world communicator: every rank must call it,
  /// and the first non-empty sink (by rank order) is installed — all ranks
  /// passing nullptr clears the sink. Installation happens while every rank
  /// is blocked inside this call, so it can neither race nor miss concurrent
  /// traffic; calling it on a communicator that does not span the whole run
  /// throws std::logic_error. To observe a run from the very first message,
  /// pass the sink to xmp::run() instead, which installs it before any rank
  /// thread starts. The sink itself is invoked under a mutex and may be
  /// called from any rank thread.
  void set_trace(TraceSink sink) const;

  /// Internal: report one logical transfer (local ranks of this comm) to the
  /// run's trace sink. Used by the collectives; near-zero cost when no sink
  /// is installed. Not intended as user API.
  void trace_transfer(int src, int dst, std::size_t bytes, TraceKind kind) const;

  /// Implementation primitive for the templated collectives: every rank
  /// contributes a byte blob and receives the full per-rank set. `desc`
  /// names the high-level operation for checked-mode matching. Public so
  /// the header templates below can use it; not intended as user API.
  std::shared_ptr<const std::vector<std::vector<std::uint8_t>>> collect_bytes_all(
      const void* ptr, std::size_t bytes, const CollDesc& desc) const;
  std::shared_ptr<const std::vector<std::vector<std::uint8_t>>> collect_bytes_all(
      const void* ptr, std::size_t bytes) const {
    return collect_bytes_all(ptr, bytes, CollDesc{});
  }

private:
  friend void run(int, const std::function<void(Comm&)>&, TraceSink, const CheckOptions&,
                  const SchedOptions&);
  friend struct detail::Group;
  Comm(std::shared_ptr<detail::Group> g, int rank) : group_(std::move(g)), rank_(rank) {}

  void require_root_in_range(int root, const char* what) const {
    if (root < 0 || root >= size())
      throw std::invalid_argument(std::string("xmp: ") + what + " root " + std::to_string(root) +
                                  " out of range for comm of size " + std::to_string(size()));
  }

  std::shared_ptr<detail::Group> group_;
  int rank_ = -1;
};

// ---- templated collectives --------------------------------------------------

template <class T>
void Comm::bcast(std::vector<T>& data, int root) const {
  static_assert(std::is_trivially_copyable_v<T>);
  require_root_in_range(root, "bcast");
  const bool am_root = rank() == root;
  if (am_root)
    for (int r = 0; r < size(); ++r)
      if (r != root) trace_transfer(root, r, data.size() * sizeof(T), TraceKind::Bcast);
  auto blobs = collect_bytes_all(
      am_root ? data.data() : nullptr, am_root ? data.size() * sizeof(T) : 0,
      CollDesc{CollKind::Bcast, sizeof(T), root, -1, am_root ? data.size() : kShapeUnknown});
  const auto& src = (*blobs)[static_cast<std::size_t>(root)];
  if (src.size() % sizeof(T) != 0)
    throw std::runtime_error("xmp: bcast size mismatch: root " + std::to_string(root) +
                             " provided " + std::to_string(src.size()) +
                             " bytes, not a multiple of element size " +
                             std::to_string(sizeof(T)));
  if (!am_root) {
    data.resize(src.size() / sizeof(T));
    if (!src.empty()) std::memcpy(data.data(), src.data(), src.size());
  }
}

template <class T>
std::vector<T> Comm::gatherv(std::span<const T> mine, int root,
                             std::vector<std::size_t>* counts) const {
  static_assert(std::is_trivially_copyable_v<T>);
  require_root_in_range(root, "gatherv");
  if (rank() != root) trace_transfer(rank(), root, mine.size() * sizeof(T), TraceKind::Gather);
  auto blobs = collect_bytes_all(mine.data(), mine.size() * sizeof(T),
                                 CollDesc{CollKind::Gatherv, sizeof(T), root, -1, kShapeUnknown});
  std::vector<T> out;
  if (rank() != root) {
    if (counts) counts->clear();
    return out;
  }
  if (counts) counts->clear();
  for (std::size_t r = 0; r < blobs->size(); ++r) {
    const auto& b = (*blobs)[r];
    if (b.size() % sizeof(T) != 0)
      throw std::runtime_error("xmp: gatherv size mismatch: rank " + std::to_string(r) +
                               " contributed " + std::to_string(b.size()) +
                               " bytes, not a multiple of element size " +
                               std::to_string(sizeof(T)));
    const std::size_t k = b.size() / sizeof(T);
    if (counts) counts->push_back(k);
    const std::size_t off = out.size();
    out.resize(off + k);
    if (k) std::memcpy(out.data() + off, b.data(), b.size());
  }
  return out;
}

template <class T>
std::vector<T> Comm::allgatherv(std::span<const T> mine,
                                std::vector<std::size_t>* counts) const {
  static_assert(std::is_trivially_copyable_v<T>);
  for (int r = 0; r < size(); ++r)
    if (r != rank()) trace_transfer(rank(), r, mine.size() * sizeof(T), TraceKind::Allgather);
  auto blobs = collect_bytes_all(mine.data(), mine.size() * sizeof(T),
                                 CollDesc{CollKind::Allgatherv, sizeof(T), -1, -1, kShapeUnknown});
  std::vector<T> out;
  if (counts) counts->clear();
  for (std::size_t r = 0; r < blobs->size(); ++r) {
    const auto& b = (*blobs)[r];
    if (b.size() % sizeof(T) != 0)
      throw std::runtime_error("xmp: allgatherv size mismatch: rank " + std::to_string(r) +
                               " contributed " + std::to_string(b.size()) +
                               " bytes, not a multiple of element size " +
                               std::to_string(sizeof(T)));
    const std::size_t k = b.size() / sizeof(T);
    if (counts) counts->push_back(k);
    const std::size_t off = out.size();
    out.resize(off + k);
    if (k) std::memcpy(out.data() + off, b.data(), b.size());
  }
  return out;
}

template <class T>
std::vector<T> Comm::scatterv(const std::vector<std::vector<T>>& parts, int root) const {
  static_assert(std::is_trivially_copyable_v<T>);
  require_root_in_range(root, "scatterv");
  // Root serialises [n, count_0..count_{n-1}, payload...] once; every rank
  // slices out its own part.
  std::vector<std::uint8_t> packed;
  std::size_t total = 0;
  if (rank() == root) {
    if (parts.size() != static_cast<std::size_t>(size()))
      throw std::invalid_argument("xmp: scatterv parts size " + std::to_string(parts.size()) +
                                  " != comm size " + std::to_string(size()));
    for (int r = 0; r < size(); ++r)
      if (r != root)
        trace_transfer(root, r, parts[static_cast<std::size_t>(r)].size() * sizeof(T),
                       TraceKind::Scatter);
    for (const auto& p : parts) total += p.size();
    packed.resize(sizeof(std::size_t) * (1 + parts.size()) + total * sizeof(T));
    std::uint8_t* w = packed.data();
    const std::size_t n = parts.size();
    std::memcpy(w, &n, sizeof n);
    w += sizeof n;
    for (const auto& p : parts) {
      const std::size_t k = p.size();
      std::memcpy(w, &k, sizeof k);
      w += sizeof k;
    }
    for (const auto& p : parts) {
      if (!p.empty()) std::memcpy(w, p.data(), p.size() * sizeof(T));
      w += p.size() * sizeof(T);
    }
  }
  auto blobs = collect_bytes_all(
      packed.data(), packed.size(),
      CollDesc{CollKind::Scatterv, sizeof(T), root, -1,
               rank() == root ? total : kShapeUnknown});
  const auto& b = (*blobs)[static_cast<std::size_t>(root)];
  // The packed header came from another rank: bounds-check every read before
  // trusting it (a mismatched collective otherwise turns into wild reads).
  const auto fail = [&](const std::string& what) {
    throw std::runtime_error("xmp: scatterv " + what + " (comm size " + std::to_string(size()) +
                             ", rank " + std::to_string(rank()) + ", root " +
                             std::to_string(root) + ")");
  };
  if (b.size() < sizeof(std::size_t)) fail("packed header truncated before rank count");
  const std::uint8_t* r = b.data();
  std::size_t n;
  std::memcpy(&n, r, sizeof n);
  r += sizeof n;
  if (n != static_cast<std::size_t>(size()))
    fail("rank count mismatch: header declares " + std::to_string(n) + " parts");
  if (b.size() < sizeof(std::size_t) * (1 + n)) fail("packed header truncated in counts array");
  std::vector<std::size_t> cnt(n);
  std::memcpy(cnt.data(), r, n * sizeof(std::size_t));
  r += n * sizeof(std::size_t);
  std::size_t sum = 0;
  for (std::size_t c : cnt) sum += c;
  if (b.size() != sizeof(std::size_t) * (1 + n) + sum * sizeof(T))
    fail("payload size mismatch: counts declare " + std::to_string(sum) + " elements of " +
         std::to_string(sizeof(T)) + " bytes but payload is " +
         std::to_string(b.size() - sizeof(std::size_t) * (1 + n)) + " bytes");
  std::size_t off = 0;
  for (int i = 0; i < rank(); ++i) off += cnt[static_cast<std::size_t>(i)];
  std::vector<T> out(cnt[static_cast<std::size_t>(rank())]);
  if (!out.empty()) std::memcpy(out.data(), r + off * sizeof(T), out.size() * sizeof(T));
  return out;
}

/// Launch `nranks` ranks, each running fn with its world communicator, and
/// rethrow the first rank failure after every rank has stopped. `sched`
/// selects the executor (sched/sched.hpp): SchedMode::Threads runs one OS
/// thread per rank (the reference backend); SchedMode::Fibers multiplexes
/// cooperatively scheduled fibers over a worker pool, executing 4k-64k ranks
/// on a laptop. Semantics are identical under both backends.
/// A non-null `trace` sink is installed before any rank starts (the
/// race-free way to observe a run's traffic from its first message) and
/// stays installed for the whole run unless replaced via Comm::set_trace.
/// The shorter overloads read CheckOptions::from_env() and/or
/// SchedOptions::from_env(), so exporting XMP_CHECK=1 or XMP_SCHED=fibers
/// switches every run in the process (see check.hpp, docs/CHECKING.md and
/// docs/SCHED.md).
void run(int nranks, const std::function<void(Comm&)>& fn, TraceSink trace,
         const CheckOptions& check, const SchedOptions& sched);
void run(int nranks, const std::function<void(Comm&)>& fn, TraceSink trace,
         const CheckOptions& check);
void run(int nranks, const std::function<void(Comm&)>& fn, TraceSink trace = nullptr);

}  // namespace xmp
