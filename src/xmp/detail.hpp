#pragma once
// Internal machinery behind xmp::Comm — mailboxes, the per-run shared state
// and the communicator groups. Split out of comm.cpp so the checked-mode
// verifier (checker.cpp) can inspect the same structures. Not installed as
// user API: include "xmp/comm.hpp" instead.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "xmp/comm.hpp"

namespace xmp::detail {

class Checker;
struct Fiber;

/// Backend-agnostic wait channel: the runtime's blocking points park here.
/// Thread-ranks sleep on the condition variable; fiber-ranks register in the
/// waiter list and yield into their scheduler (sched/fiber.hpp), making
/// every blocking point a yield point. Both wait() and notify_all() require
/// the mutex guarding the surrounding predicate to be held — unlike a bare
/// condition_variable, notify_all() mutates the waiter list.
struct WaitCv {
  std::condition_variable cv;
  std::vector<Fiber*> waiters;

  /// One park; returns after any wake. Callers loop on their predicate.
  void wait(std::unique_lock<std::mutex>& lk);
  void notify_all();
};

struct Message {
  int src;  // group-local source rank
  int tag;
  std::vector<std::uint8_t> data;
};

struct Mailbox {
  std::mutex mu;
  WaitCv cv;
  std::deque<Message> q;
};

/// State shared by every communicator of one run(): abort flag, trace sink,
/// the optional checker, and a registry used to wake all blocked ranks on
/// abort.
struct RunState {
  std::atomic<bool> aborted{false};
  /// Fast-path flag mirroring `trace != nullptr`: senders skip the trace
  /// mutex entirely when no sink is installed.
  std::atomic<bool> has_trace{false};
  int world_size = 0;
  std::mutex trace_mu;
  TraceSink trace;

  std::mutex reg_mu;
  std::vector<std::weak_ptr<Group>> groups;
  std::atomic<int> next_group_id{0};

  /// Non-null when this run executes in checked mode (XMP_CHECKED build and
  /// CheckOptions.enabled). Owned here so every Group hook can reach it.
  std::unique_ptr<Checker> checker;
  /// Root-cause diagnosis recorded by the checker (watchdog or collective
  /// verifier); surfaced by run() in preference to secondary AbortedErrors.
  std::mutex check_err_mu;
  std::exception_ptr check_error;

  void record_check_error(std::exception_ptr e);
  void abort_all();
};

struct Group : std::enable_shared_from_this<Group> {
  std::shared_ptr<RunState> rs;
  int id = 0;                    // 0 is the world communicator
  std::vector<int> world_ranks;  // local rank -> world rank
  std::vector<std::unique_ptr<Mailbox>> boxes;

  // one-shot-combine collective slot
  std::mutex cmu;
  WaitCv ccv;
  int arrived = 0;
  std::uint64_t gen = 0;
  std::vector<std::pair<const void*, std::size_t>> inputs;
  std::vector<CollDesc> descs;  // checked mode: per-rank op descriptors
  std::shared_ptr<void> result;

  Group(std::shared_ptr<RunState> rs_, int id_, std::vector<int> wr);

  int size() const { return static_cast<int>(world_ranks.size()); }
  /// Diagnostic name, e.g. "world" or "comm#3{1,3,5}".
  std::string name() const;
  /// Group-local rank of a world rank, or -1.
  int local_rank_of_world(int world) const;

  void check_abort() const {
    if (rs->aborted.load(std::memory_order_relaxed)) throw AbortedError{};
  }

  void wake_all();

  using CombineFn =
      std::function<std::shared_ptr<void>(const std::vector<std::pair<const void*, std::size_t>>&)>;

  /// All ranks enter; the last to arrive runs `combine` exactly once over
  /// every rank's (ptr, bytes) input; every rank leaves with the shared
  /// result. Inputs point into callers' stacks, which stay alive because
  /// those callers are blocked here until the generation advances. In
  /// checked mode the last arriver first verifies that every rank's CollDesc
  /// describes the same operation.
  std::shared_ptr<void> collective(int rank, const void* ptr, std::size_t bytes,
                                   const CollDesc& desc, const CombineFn& combine);

  void emit_trace(int src, int dst, std::size_t bytes, int tag, TraceKind kind);
  void send(int src, int dst, int tag, const void* data, std::size_t bytes);
  std::vector<std::uint8_t> recv(int me, int src, int tag, int* out_src, int* out_tag);
};

/// State behind one Pending handle (comm.hpp). Rank-affine: only the rank
/// that created the handle mutates it, so no lock guards these fields — a
/// matching probe/claim takes the mailbox mutex like Group::recv does.
struct PendingState {
  std::shared_ptr<Group> grp;
  int me = -1;    // group-local owner rank
  int peer = -1;  // dst (send) or requested src (recv); may be kAnySource
  int tag = kAnyTag;
  bool is_send = false;
  bool matched = false;   // message claimed (or send completed eagerly)
  bool consumed = false;  // wait() already returned
  Message claimed;        // valid when matched && !is_send
  /// Checked-mode handle-leak registry ticket (0 when unchecked).
  std::uint64_t check_id = 0;
};

}  // namespace xmp::detail
