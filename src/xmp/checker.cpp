#include "xmp/checker.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <sstream>

namespace xmp {

CheckOptions CheckOptions::from_env() {
  CheckOptions o;
  auto get = [](const char* name) -> const char* { return std::getenv(name); };
  if (const char* v = get("XMP_CHECK")) o.enabled = v[0] != '\0' && v[0] != '0';
  if (const char* v = get("XMP_CHECK_STALL_MS"))
    o.stall_timeout = std::chrono::milliseconds(std::atol(v));
  if (const char* v = get("XMP_CHECK_POLL_MS"))
    o.poll_interval = std::chrono::milliseconds(std::max(1L, std::atol(v)));
  if (const char* v = get("XMP_CHECK_LEFTOVER")) {
    const std::string s = v;
    if (s == "warn") o.leftovers = LeftoverPolicy::Warn;
    else if (s == "off") o.leftovers = LeftoverPolicy::Off;
    else o.leftovers = LeftoverPolicy::Error;
  }
  return o;
}

namespace detail {

namespace {

const char* kind_name(CollKind k) { return to_string(k); }

bool desc_equal(const CollDesc& a, const CollDesc& b) {
  if (a.kind != b.kind || a.elem_size != b.elem_size || a.root != b.root || a.extra != b.extra)
    return false;
  if (a.shape != kShapeUnknown && b.shape != kShapeUnknown && a.shape != b.shape) return false;
  return true;
}

void print_desc(std::ostringstream& os, const CollDesc& d) {
  os << kind_name(d.kind) << "(elem=" << d.elem_size;
  if (d.root >= 0) os << ", root=" << d.root;
  if (d.extra >= 0) os << ", op=" << d.extra;
  if (d.shape != kShapeUnknown) os << ", shape=" << d.shape;
  os << ")";
}

}  // namespace

Checker::Checker(RunState* rs, CheckOptions opts)
    : rs_(rs), opts_(opts), slots_(static_cast<std::size_t>(rs->world_size)) {}

Checker::~Checker() { stop_watchdog(); }

// ---- rank affinity ----------------------------------------------------------

void Checker::check_affinity(const Group& g, int local_rank, const char* op) const {
  if (!opts_.enforce_affinity) return;
  // Identity comes from the scheduler's rank context, never from the OS
  // thread: under the fiber backend a rank legally migrates between worker
  // threads, and a thread-id comparison would fire falsely. A helper thread
  // spawned by user code has no rank context (current_rank() == -1) and is
  // caught exactly as before.
  const int w = world_of(g, local_rank);
  const int cur = sched::current_rank();
  if (cur == w) return;
  std::ostringstream os;
  os << "xmp checked: thread-affinity violation: " << op << " on comm " << g.name()
     << " used a Comm handle owned by world rank " << w << " from ";
  if (cur < 0) os << "a thread outside any rank";
  else os << "world rank " << cur;
  os << " (Comm handles are rank-affine: only the rank they were created for may use them)";
  throw CheckError(os.str());
}

// ---- collective matching ----------------------------------------------------

void Checker::verify_collective(Group& g, const std::vector<CollDesc>& descs, std::uint64_t seq) {
  if (!opts_.verify_collectives) return;
  // Modal descriptor: the shape most ranks agree on; deviants are offenders.
  std::size_t best = 0, best_votes = 0;
  for (std::size_t i = 0; i < descs.size(); ++i) {
    std::size_t votes = 0;
    for (const auto& d : descs)
      if (desc_equal(descs[i], d)) ++votes;
    if (votes > best_votes) {
      best_votes = votes;
      best = i;
    }
  }
  if (best_votes == descs.size()) return;

  std::ostringstream os;
  os << "xmp checked: collective mismatch on comm " << g.name() << " (collective #" << seq
     << "): ranks disagree on the operation\n";
  for (std::size_t r = 0; r < descs.size(); ++r) {
    os << "  world rank " << g.world_ranks[r] << ": ";
    print_desc(os, descs[r]);
    os << (desc_equal(descs[r], descs[best]) ? "\n" : "   <-- offender\n");
  }
  os << "  (majority operation: ";
  print_desc(os, descs[best]);
  os << ")";
  // Called with g.cmu held: do NOT abort_all() here (wake_all would relock
  // cmu). Mark the run aborted, wake this slot's waiters, and let the
  // CheckError unwind into run()'s handler, which performs the global wake.
  rs_->record_check_error(std::make_exception_ptr(CheckError(os.str())));
  rs_->aborted.store(true);
  g.ccv.notify_all();
  throw CheckError(os.str());
}

// ---- wait registry ----------------------------------------------------------

void Checker::block_recv(Group& g, int me_local, int src_local, int tag) {
  Slot& s = slots_[static_cast<std::size_t>(world_of(g, me_local))];
  std::lock_guard lk(s.mu);
  s.op.kind = BlockedOp::Kind::Recv;
  s.op.grp = g.shared_from_this();
  s.op.local_rank = me_local;
  s.op.src_world = src_local == kAnySource ? kAnySource : world_of(g, src_local);
  s.op.tag = tag;
  s.op.bytes = 0;
  ++s.op.wait_gen;
  s.op.since = std::chrono::steady_clock::now();
}

void Checker::block_collective(Group& g, int me_local, const CollDesc& desc,
                               std::uint64_t slot_gen, std::size_t bytes) {
  Slot& s = slots_[static_cast<std::size_t>(world_of(g, me_local))];
  std::lock_guard lk(s.mu);
  s.op.kind = BlockedOp::Kind::Collective;
  s.op.grp = g.shared_from_this();
  s.op.local_rank = me_local;
  s.op.desc = desc;
  s.op.slot_gen = slot_gen;
  s.op.bytes = bytes;
  ++s.op.wait_gen;
  s.op.since = std::chrono::steady_clock::now();
}

void Checker::unblock(const Group& g, int me_local) {
  Slot& s = slots_[static_cast<std::size_t>(world_of(g, me_local))];
  std::lock_guard lk(s.mu);
  s.op.kind = BlockedOp::Kind::None;
  s.op.grp.reset();
}

// ---- nonblocking-p2p handle hygiene ----------------------------------------

std::uint64_t Checker::register_pending(const Group& g, int me_local, int peer_local, int tag,
                                        bool is_send) {
  std::ostringstream os;
  os << "comm " << g.name() << ": " << (is_send ? "isend(dst=" : "irecv(src=");
  if (!is_send && peer_local == kAnySource) os << "any";
  else os << world_of(g, peer_local);
  os << ", tag=";
  if (tag == kAnyTag) os << "any";
  else os << tag;
  os << ") held by world rank " << world_of(g, me_local);
  std::lock_guard lk(pend_mu_);
  const std::uint64_t id = next_pending_++;
  pending_.emplace(id, os.str());
  return id;
}

void Checker::complete_pending(std::uint64_t id) {
  std::lock_guard lk(pend_mu_);
  pending_.erase(id);
}

void Checker::report_leaked_pending() {
  if (opts_.leftovers == LeftoverPolicy::Off) return;
  std::size_t count = 0;
  std::ostringstream os;
  {
    std::lock_guard lk(pend_mu_);
    count = pending_.size();
    for (const auto& [id, desc] : pending_) {
      (void)id;
      os << "\n  " << desc;
    }
  }
  if (count == 0) return;
  const std::string msg =
      "xmp checked: " + std::to_string(count) +
      " leaked pending handle(s) never completed by wait()/test():" + os.str();
  if (opts_.leftovers == LeftoverPolicy::Warn) {
    std::fprintf(stderr, "%s\n", msg.c_str());
    return;
  }
  throw CheckError(msg);
}

BlockedOp Checker::snapshot_slot(int world) const {
  const Slot& s = slots_[static_cast<std::size_t>(world)];
  std::lock_guard lk(s.mu);
  return s.op;
}

// ---- diagnostics ------------------------------------------------------------

std::string Checker::describe_blocked(int world, const BlockedOp& op,
                                      std::chrono::steady_clock::time_point now) const {
  std::ostringstream os;
  const auto ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(now - op.since).count();
  os << "  world rank " << world << ": ";
  if (op.kind == BlockedOp::Kind::Recv) {
    os << "recv(src=";
    if (op.src_world == kAnySource) os << "any";
    else os << op.src_world;
    os << ", tag=";
    if (op.tag == kAnyTag) os << "any";
    else os << op.tag;
    os << ")";
  } else if (op.kind == BlockedOp::Kind::Collective) {
    os << "collective #" << op.slot_gen << " ";
    print_desc(os, op.desc);
    os << ", " << op.bytes << " payload bytes";
  } else {
    os << "(not blocked)";
  }
  if (op.grp) os << " on comm " << op.grp->name();
  os << ", blocked for " << ms << " ms";
  return os.str();
}

std::string Checker::dump_all_blocked(std::chrono::steady_clock::time_point now) const {
  std::ostringstream os;
  for (int w = 0; w < rs_->world_size; ++w) {
    const BlockedOp op = snapshot_slot(w);
    if (op.kind == BlockedOp::Kind::None) continue;
    os << "\n" << describe_blocked(w, op, now);
  }
  return os.str();
}

// ---- watchdog ---------------------------------------------------------------

void Checker::start_watchdog() {
  if (!opts_.detect_deadlock && opts_.stall_timeout.count() <= 0) return;
  watchdog_ = std::thread([this] { watchdog_main(); });
}

void Checker::stop_watchdog() {
  if (!watchdog_.joinable()) return;
  {
    std::lock_guard lk(wd_mu_);
    wd_stop_ = true;
  }
  wd_cv_.notify_all();
  watchdog_.join();
}

void Checker::watchdog_main() {
  std::unique_lock lk(wd_mu_);
  while (!wd_stop_) {
    wd_cv_.wait_for(lk, opts_.poll_interval);
    if (wd_stop_ || declared_) continue;
    lk.unlock();
    poll_once();
    lk.lock();
  }
}

void Checker::declare(const std::string& msg) {
  {
    std::lock_guard lk(wd_mu_);
    if (declared_) return;
    declared_ = true;
  }
  rs_->record_check_error(std::make_exception_ptr(CheckError(msg)));
  rs_->abort_all();
}

void Checker::poll_once() {
  const auto now = std::chrono::steady_clock::now();
  const int n = rs_->world_size;
  std::vector<BlockedOp> ops(static_cast<std::size_t>(n));
  for (int w = 0; w < n; ++w) ops[static_cast<std::size_t>(w)] = snapshot_slot(w);

  // Stall timeout: any rank blocked beyond the budget dumps the whole run.
  if (opts_.stall_timeout.count() > 0) {
    for (int w = 0; w < n; ++w) {
      const auto& op = ops[static_cast<std::size_t>(w)];
      if (op.kind == BlockedOp::Kind::None) continue;
      if (now - op.since > opts_.stall_timeout) {
        std::ostringstream os;
        os << "xmp checked: stall: world rank " << w << " has been blocked for more than "
           << opts_.stall_timeout.count() << " ms; every blocked operation:";
        for (int v = 0; v < n; ++v)
          if (ops[static_cast<std::size_t>(v)].kind != BlockedOp::Kind::None)
            os << "\n" << describe_blocked(v, ops[static_cast<std::size_t>(v)], now);
        declare(os.str());
        return;
      }
    }
  }

  if (!opts_.detect_deadlock) return;

  // Wait-for edges. A specific-source recv waits on exactly one rank; a rank
  // parked in a collective waits on every group member that has not arrived
  // at the same slot generation (all are required, so each is an edge).
  // Any-source receives can be satisfied by any peer and contribute no edge.
  std::vector<std::vector<int>> edges(static_cast<std::size_t>(n));
  for (int w = 0; w < n; ++w) {
    const auto& op = ops[static_cast<std::size_t>(w)];
    if (op.kind == BlockedOp::Kind::Recv && op.src_world != kAnySource) {
      edges[static_cast<std::size_t>(w)].push_back(op.src_world);
    } else if (op.kind == BlockedOp::Kind::Collective && op.grp) {
      for (int member : op.grp->world_ranks) {
        if (member == w) continue;
        const auto& mop = ops[static_cast<std::size_t>(member)];
        const bool co_waiting = mop.kind == BlockedOp::Kind::Collective &&
                                mop.grp.get() == op.grp.get() && mop.slot_gen == op.slot_gen;
        if (!co_waiting) edges[static_cast<std::size_t>(w)].push_back(member);
      }
    }
  }

  // DFS cycle search (world sizes are small; O(V+E) per poll).
  std::vector<int> color(static_cast<std::size_t>(n), 0);  // 0 white 1 grey 2 black
  std::vector<int> parent(static_cast<std::size_t>(n), -1);
  std::vector<int> cycle;
  std::function<bool(int)> dfs = [&](int u) {
    color[static_cast<std::size_t>(u)] = 1;
    for (int v : edges[static_cast<std::size_t>(u)]) {
      if (color[static_cast<std::size_t>(v)] == 1) {
        cycle.push_back(v);
        for (int x = u; x != v; x = parent[static_cast<std::size_t>(x)]) cycle.push_back(x);
        std::reverse(cycle.begin(), cycle.end());
        return true;
      }
      if (color[static_cast<std::size_t>(v)] == 0) {
        parent[static_cast<std::size_t>(v)] = u;
        if (dfs(v)) return true;
      }
    }
    color[static_cast<std::size_t>(u)] = 2;
    return false;
  };
  for (int w = 0; w < n && cycle.empty(); ++w)
    if (color[static_cast<std::size_t>(w)] == 0) (void)dfs(w);

  if (cycle.empty()) {
    candidate_.clear();
    return;
  }

  // Canonicalise (rotate so the smallest rank leads) and require the same
  // cycle, with unchanged wait generations, on two consecutive polls. That
  // rules out transients where a rank has matched a message but not yet
  // deregistered.
  const auto min_it = std::min_element(cycle.begin(), cycle.end());
  std::rotate(cycle.begin(), min_it, cycle.end());
  std::vector<std::pair<int, std::uint64_t>> pairs;
  pairs.reserve(cycle.size());
  for (int w : cycle) pairs.emplace_back(w, ops[static_cast<std::size_t>(w)].wait_gen);

  if (pairs != candidate_) {
    candidate_ = std::move(pairs);
    return;
  }

  // Confirmed twice; final guard: a message already sitting in a member's
  // mailbox that matches its wait means the cycle is about to break.
  for (int w : cycle) {
    const auto& op = ops[static_cast<std::size_t>(w)];
    if (op.kind != BlockedOp::Kind::Recv || !op.grp) continue;
    Mailbox& box = *op.grp->boxes[static_cast<std::size_t>(op.local_rank)];
    const int src_local = op.grp->local_rank_of_world(op.src_world);
    std::lock_guard lk(box.mu);
    for (const auto& m : box.q)
      if (m.src == src_local && (op.tag == kAnyTag || m.tag == op.tag)) return;
  }

  std::ostringstream os;
  os << "xmp checked: deadlock detected (wait-for cycle:";
  for (std::size_t i = 0; i < cycle.size(); ++i) os << " " << cycle[i] << " ->";
  os << " " << cycle[0] << "); blocked operations:";
  for (int w : cycle) os << "\n" << describe_blocked(w, ops[static_cast<std::size_t>(w)], now);
  const std::string rest = dump_all_blocked(now);
  if (!rest.empty()) os << "\nall blocked ranks:" << rest;
  declare(os.str());
}

// ---- run end ----------------------------------------------------------------

void Checker::retain_group(std::shared_ptr<Group> g) {
  std::lock_guard lk(groups_mu_);
  retained_.push_back(std::move(g));
}

void Checker::release_groups() {
  std::lock_guard lk(groups_mu_);
  retained_.clear();
}

void Checker::report_leftovers() {
  if (opts_.leftovers == LeftoverPolicy::Off) return;
  std::vector<std::shared_ptr<Group>> groups;
  {
    std::lock_guard lk(groups_mu_);
    groups = retained_;
  }
  std::size_t count = 0;
  std::ostringstream os;
  for (const auto& g : groups) {
    for (std::size_t dst = 0; dst < g->boxes.size(); ++dst) {
      std::lock_guard lk(g->boxes[dst]->mu);
      for (const auto& m : g->boxes[dst]->q) {
        ++count;
        os << "\n  comm " << g->name() << ": src " << g->world_ranks[static_cast<std::size_t>(m.src)]
           << " -> dst " << g->world_ranks[dst] << ", tag " << m.tag << ", " << m.data.size()
           << " bytes";
      }
    }
  }
  if (count == 0) return;
  const std::string msg = "xmp checked: " + std::to_string(count) +
                          " unreceived message(s) left in mailboxes at end of run:" + os.str();
  if (opts_.leftovers == LeftoverPolicy::Warn) {
    std::fprintf(stderr, "%s\n", msg.c_str());
    return;
  }
  throw CheckError(msg);
}

}  // namespace detail
}  // namespace xmp
