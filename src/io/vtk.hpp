#pragma once
// Multiscale visualization output (the paper lists "multiscale
// visualization" among its key contributions): legacy-VTK writers for the
// three descriptions so one ParaView session can show the continuum fields,
// the atomistic particles, and the 1D network side by side.
//
//  * SEM fields      -> unstructured grid of GLL sub-quads with point data,
//  * DPD particles   -> polydata vertices with velocity / species / state,
//  * 1D network      -> polylines with area / velocity / pressure per node.
//
// Plain ASCII legacy format: trivially diffable in tests, loadable
// everywhere.

#include <map>
#include <string>
#include <vector>

#include "dpd/platelets.hpp"
#include "dpd/system.hpp"
#include "la/vector.hpp"
#include "nektar1d/network.hpp"
#include "sem/discretization.hpp"

namespace io {

/// Write scalar nodal fields on a SEM discretization. Each spectral element
/// is tessellated into P x P bilinear cells through its GLL nodes, so the
/// high-order solution is faithfully sampled. Throws on I/O failure or
/// field-size mismatch.
void write_sem_vtk(const std::string& path, const sem::Discretization& disc,
                   const std::map<std::string, const la::Vector*>& fields);

/// Write DPD particles as VTK polydata vertices with velocity vectors and
/// species ids; if `platelets` is non-null, a platelet_state array is added
/// (-1 for non-platelet particles).
void write_dpd_vtk(const std::string& path, const dpd::DpdSystem& sys,
                   const dpd::PlateletModel* platelets = nullptr);

/// Write a 1D arterial network as polylines (one per vessel) laid out
/// along x with vessel index as y offset (topology-true coordinates are not
/// stored by the solver), with A, U, p point data.
void write_network_vtk(const std::string& path, const nektar1d::ArterialNetwork& net);

}  // namespace io
