#pragma once
// JSON string-literal escaping, shared by every JSON producer in the repo
// (telemetry's streaming JsonWriter and the scenario serializer). Header-only
// and dependency-free so telemetry can use it without a link edge onto the io
// library (io links the solver stacks).
//
// Escaping follows RFC 8259: the two mandatory escapes (`"` and `\`), the
// short forms for the common control characters, and `\u00XX` for the rest of
// C0. Bytes >= 0x20 pass through untouched, so UTF-8 multibyte sequences
// survive the round trip byte-for-byte.

#include <cstdio>
#include <string>
#include <string_view>

namespace io {

/// Append the escaped form of `s` (no surrounding quotes) to `out`.
inline void append_json_escaped(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned char>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

/// The escaped form of `s` wrapped in double quotes — a complete JSON string
/// literal.
inline std::string json_string_literal(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  append_json_escaped(out, s);
  out += '"';
  return out;
}

}  // namespace io
