#include "io/vtk.hpp"

#include <fstream>
#include <stdexcept>

namespace io {

namespace {
std::ofstream open_or_throw(const std::string& path) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("io: cannot open " + path);
  return f;
}
}  // namespace

void write_sem_vtk(const std::string& path, const sem::Discretization& disc,
                   const std::map<std::string, const la::Vector*>& fields) {
  for (const auto& [name, v] : fields)
    if (!v || v->size() != disc.num_nodes())
      throw std::invalid_argument("write_sem_vtk: field size mismatch for " + name);

  auto f = open_or_throw(path);
  f << "# vtk DataFile Version 3.0\n"
    << "NektarG SEM fields\nASCII\nDATASET UNSTRUCTURED_GRID\n";

  f << "POINTS " << disc.num_nodes() << " double\n";
  for (std::size_t g = 0; g < disc.num_nodes(); ++g)
    f << disc.node_x(g) << " " << disc.node_y(g) << " 0\n";

  const int P = disc.order();
  const std::size_t cells_per_elem = static_cast<std::size_t>(P) * P;
  const std::size_t ncells = disc.num_elements() * cells_per_elem;
  f << "CELLS " << ncells << " " << 5 * ncells << "\n";
  for (std::size_t e = 0; e < disc.num_elements(); ++e)
    for (int b = 0; b < P; ++b)
      for (int a = 0; a < P; ++a)
        f << "4 " << disc.global_node(e, a, b) << " " << disc.global_node(e, a + 1, b) << " "
          << disc.global_node(e, a + 1, b + 1) << " " << disc.global_node(e, a, b + 1)
          << "\n";
  f << "CELL_TYPES " << ncells << "\n";
  for (std::size_t c = 0; c < ncells; ++c) f << "9\n";  // VTK_QUAD

  f << "POINT_DATA " << disc.num_nodes() << "\n";
  for (const auto& [name, v] : fields) {
    f << "SCALARS " << name << " double 1\nLOOKUP_TABLE default\n";
    for (std::size_t g = 0; g < disc.num_nodes(); ++g) f << (*v)[g] << "\n";
  }
  if (!f) throw std::runtime_error("io: write failed for " + path);
}

void write_dpd_vtk(const std::string& path, const dpd::DpdSystem& sys,
                   const dpd::PlateletModel* platelets) {
  auto f = open_or_throw(path);
  const std::size_t n = sys.size();
  f << "# vtk DataFile Version 3.0\n"
    << "NektarG DPD particles\nASCII\nDATASET POLYDATA\n";
  f << "POINTS " << n << " double\n";
  for (std::size_t i = 0; i < n; ++i) {
    const auto& p = sys.positions()[i];
    f << p.x << " " << p.y << " " << p.z << "\n";
  }
  f << "VERTICES " << n << " " << 2 * n << "\n";
  for (std::size_t i = 0; i < n; ++i) f << "1 " << i << "\n";

  f << "POINT_DATA " << n << "\n";
  f << "VECTORS velocity double\n";
  for (std::size_t i = 0; i < n; ++i) {
    const auto& v = sys.velocities()[i];
    f << v.x << " " << v.y << " " << v.z << "\n";
  }
  f << "SCALARS species int 1\nLOOKUP_TABLE default\n";
  for (std::size_t i = 0; i < n; ++i) f << static_cast<int>(sys.species()[i]) << "\n";

  if (platelets) {
    std::vector<int> state(n, -1);
    for (std::size_t k = 0; k < platelets->total(); ++k) {
      const long li = sys.local_of(platelets->particles()[k]);
      if (li >= 0) state[static_cast<std::size_t>(li)] = static_cast<int>(platelets->state_of(k));
    }
    f << "SCALARS platelet_state int 1\nLOOKUP_TABLE default\n";
    for (std::size_t i = 0; i < n; ++i) f << state[i] << "\n";
  }
  if (!f) throw std::runtime_error("io: write failed for " + path);
}

void write_network_vtk(const std::string& path, const nektar1d::ArterialNetwork& net) {
  auto f = open_or_throw(path);
  std::size_t total_nodes = 0;
  for (std::size_t v = 0; v < net.num_vessels(); ++v)
    total_nodes += net.vessel(static_cast<int>(v)).num_nodes();

  f << "# vtk DataFile Version 3.0\n"
    << "NektarG 1D arterial network\nASCII\nDATASET POLYDATA\n";
  f << "POINTS " << total_nodes << " double\n";
  for (std::size_t v = 0; v < net.num_vessels(); ++v) {
    const auto& a = net.vessel(static_cast<int>(v));
    for (std::size_t k = 0; k < a.num_nodes(); ++k)
      f << a.x_of(k) << " " << 2.0 * static_cast<double>(v) << " 0\n";
  }
  f << "LINES " << net.num_vessels() << " " << total_nodes + net.num_vessels() << "\n";
  std::size_t off = 0;
  for (std::size_t v = 0; v < net.num_vessels(); ++v) {
    const auto& a = net.vessel(static_cast<int>(v));
    f << a.num_nodes();
    for (std::size_t k = 0; k < a.num_nodes(); ++k) f << " " << off + k;
    f << "\n";
    off += a.num_nodes();
  }

  f << "POINT_DATA " << total_nodes << "\n";
  f << "SCALARS area double 1\nLOOKUP_TABLE default\n";
  for (std::size_t v = 0; v < net.num_vessels(); ++v)
    for (double A : net.vessel(static_cast<int>(v)).A()) f << A << "\n";
  f << "SCALARS velocity double 1\nLOOKUP_TABLE default\n";
  for (std::size_t v = 0; v < net.num_vessels(); ++v)
    for (double U : net.vessel(static_cast<int>(v)).U()) f << U << "\n";
  f << "SCALARS pressure double 1\nLOOKUP_TABLE default\n";
  for (std::size_t v = 0; v < net.num_vessels(); ++v) {
    const auto& a = net.vessel(static_cast<int>(v));
    for (double A : a.A()) f << a.pressure(A) << "\n";
  }
  if (!f) throw std::runtime_error("io: write failed for " + path);
}

}  // namespace io
