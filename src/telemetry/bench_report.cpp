#include "telemetry/bench_report.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "telemetry/json.hpp"

namespace telemetry {

namespace {

void emit_fields(JsonWriter& w, const std::vector<std::pair<std::string, BenchReport::Value>>& fs) {
  w.begin_object();
  for (const auto& [key, v] : fs) {
    w.key(key);
    if (std::holds_alternative<double>(v))
      w.value(std::get<double>(v));
    else
      w.value(std::get<std::string>(v));
  }
  w.end_object();
}

}  // namespace

std::string BenchReport::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.key("schema");
  w.value("nektarg-bench-v1");
  w.key("name");
  w.value(name_);
  w.key("meta");
  emit_fields(w, meta_);
  w.key("rows");
  w.begin_array();
  for (const auto& row : rows_) emit_fields(w, row);
  w.end_array();
  w.end_object();
  return w.str();
}

std::string BenchReport::write() const {
  std::string dir = ".";
  if (const char* env = std::getenv("NEKTARG_BENCH_DIR"); env && *env) dir = env;
  const std::string path = dir + "/BENCH_" + name_ + ".json";
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "bench-report: cannot open %s for writing\n", path.c_str());
    return path;
  }
  out << to_json() << "\n";
  std::fprintf(stderr, "bench-report: wrote %s\n", path.c_str());
  return path;
}

}  // namespace telemetry
