#include "telemetry/report.hpp"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <sstream>

namespace telemetry {

namespace {

void flatten(const PhaseNode& n, const std::string& prefix, int depth, std::ostream& os) {
  for (const auto& c : n.children) {
    const std::string path = prefix.empty() ? c.name : prefix + "/" + c.name;
    os << "P\t" << depth << "\t" << path << "\t" << c.count << "\t" << c.seconds << "\n";
    flatten(c, path, depth + 1, os);
  }
}

std::string serialize(const Registry& reg) {
  std::ostringstream os;
  os.precision(std::numeric_limits<double>::max_digits10);
  flatten(reg.phases(), "", 0, os);
  for (const auto& [name, cv] : reg.counters())
    os << "C\t" << name << "\t" << cv.value << "\t" << cv.count << "\n";
  return os.str();
}

struct PhaseAcc {
  int depth = 0;
  int ranks = 0;
  std::uint64_t count = 0;
  double min_s = std::numeric_limits<double>::infinity();
  double sum_s = 0.0;
  double max_s = -1.0;
  int max_rank = -1;
};

struct CounterAcc {
  int ranks = 0;
  double total = 0.0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
};

Report merge(const std::vector<std::string>& blobs) {
  std::map<std::string, PhaseAcc> phases;
  std::vector<std::string> order;  // first-seen pre-order across ranks
  std::map<std::string, CounterAcc> counters;

  for (std::size_t r = 0; r < blobs.size(); ++r) {
    std::istringstream is(blobs[r]);
    std::string line;
    while (std::getline(is, line)) {
      std::istringstream ls(line);
      std::string kind, a, b, c, d;
      std::getline(ls, kind, '\t');
      if (kind == "P") {
        std::getline(ls, a, '\t');  // depth
        std::getline(ls, b, '\t');  // path
        std::getline(ls, c, '\t');  // count
        std::getline(ls, d, '\t');  // seconds
        auto it = phases.find(b);
        if (it == phases.end()) {
          it = phases.emplace(b, PhaseAcc{}).first;
          it->second.depth = std::stoi(a);
          order.push_back(b);
        }
        auto& acc = it->second;
        const double s = std::stod(d);
        acc.ranks += 1;
        acc.count += std::stoull(c);
        acc.min_s = std::min(acc.min_s, s);
        acc.sum_s += s;
        if (s > acc.max_s) {
          acc.max_s = s;
          acc.max_rank = static_cast<int>(r);
        }
      } else if (kind == "C") {
        std::getline(ls, a, '\t');  // name
        std::getline(ls, b, '\t');  // value
        std::getline(ls, c, '\t');  // count (unused in the merge)
        auto& acc = counters[a];
        const double v = std::stod(b);
        acc.ranks += 1;
        acc.total += v;
        acc.min = std::min(acc.min, v);
        acc.max = std::max(acc.max, v);
      }
    }
  }

  Report out;
  out.phases.reserve(order.size());
  for (const auto& path : order) {
    const auto& acc = phases.at(path);
    PhaseStats s;
    s.path = path;
    s.depth = acc.depth;
    s.ranks = acc.ranks;
    s.count = acc.count;
    s.min_s = acc.min_s;
    s.avg_s = acc.sum_s / acc.ranks;
    s.max_s = acc.max_s;
    s.max_rank = acc.max_rank;
    out.phases.push_back(std::move(s));
  }
  for (const auto& [name, acc] : counters) {
    CounterStats s;
    s.name = name;
    s.ranks = acc.ranks;
    s.total = acc.total;
    s.min = acc.min;
    s.avg = acc.total / acc.ranks;
    s.max = acc.max;
    out.counters.push_back(std::move(s));
  }
  return out;
}

}  // namespace

Report aggregate(const xmp::Comm& comm, int root) {
  const std::string mine = serialize(Registry::local());
  std::vector<std::size_t> counts;
  auto all = comm.gatherv(std::span<const char>(mine.data(), mine.size()), root, &counts);
  if (comm.rank() != root) return {};
  std::vector<std::string> blobs;
  blobs.reserve(counts.size());
  std::size_t off = 0;
  for (std::size_t k : counts) {
    blobs.emplace_back(all.data() + off, k);
    off += k;
  }
  return merge(blobs);
}

Report aggregate(const std::vector<std::shared_ptr<Registry>>& regs) {
  std::vector<std::string> blobs;
  blobs.reserve(regs.size());
  for (const auto& r : regs) blobs.push_back(serialize(*r));
  return merge(blobs);
}

std::string format(const Report& r) {
  std::ostringstream os;
  os << "phase                                      count  ranks     min s     avg s     max s  max@\n";
  char line[200];
  for (const auto& p : r.phases) {
    std::string name(static_cast<std::size_t>(2 * p.depth), ' ');
    auto slash = p.path.rfind('/');
    name += slash == std::string::npos ? p.path : p.path.substr(slash + 1);
    std::snprintf(line, sizeof line, "%-40s %7llu %6d %9.4f %9.4f %9.4f  %4d\n", name.c_str(),
                  static_cast<unsigned long long>(p.count), p.ranks, p.min_s, p.avg_s, p.max_s,
                  p.max_rank);
    os << line;
  }
  if (!r.counters.empty()) {
    os << "counter                                    ranks       total         min         avg         max\n";
    for (const auto& c : r.counters) {
      std::snprintf(line, sizeof line, "%-40s %7d %11.4g %11.4g %11.4g %11.4g\n", c.name.c_str(),
                    c.ranks, c.total, c.min, c.avg, c.max);
      os << line;
    }
  }
  return os.str();
}

}  // namespace telemetry
