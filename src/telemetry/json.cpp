#include "telemetry/json.hpp"

#include <cmath>
#include <cstdio>
#include <limits>

namespace telemetry {

void JsonWriter::value(double v) {
  prefix();
  if (!std::isfinite(v)) {
    // JSON has no Inf/NaN; report as null like most tooling expects.
    out_ << "null";
    return;
  }
  if (v == static_cast<double>(static_cast<std::int64_t>(v)) && std::fabs(v) < 1e15) {
    out_ << static_cast<std::int64_t>(v);
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.*g", std::numeric_limits<double>::max_digits10, v);
  out_ << buf;
}

void JsonWriter::string_literal(const std::string& s) {
  out_ << '"';
  for (char c : s) {
    switch (c) {
      case '"': out_ << "\\\""; break;
      case '\\': out_ << "\\\\"; break;
      case '\n': out_ << "\\n"; break;
      case '\t': out_ << "\\t"; break;
      case '\r': out_ << "\\r"; break;
      case '\b': out_ << "\\b"; break;
      case '\f': out_ << "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned char>(c));
          out_ << buf;
        } else {
          out_ << c;
        }
    }
  }
  out_ << '"';
}

}  // namespace telemetry
