#include "telemetry/json.hpp"

#include <cmath>
#include <cstdio>
#include <limits>

#include "io/json_escape.hpp"

namespace telemetry {

void JsonWriter::value(double v) {
  prefix();
  if (!std::isfinite(v)) {
    // JSON has no Inf/NaN; report as null like most tooling expects.
    out_ << "null";
    return;
  }
  if (v == static_cast<double>(static_cast<std::int64_t>(v)) && std::fabs(v) < 1e15) {
    out_ << static_cast<std::int64_t>(v);
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.*g", std::numeric_limits<double>::max_digits10, v);
  out_ << buf;
}

void JsonWriter::string_literal(const std::string& s) {
  out_ << io::json_string_literal(s);
}

}  // namespace telemetry
