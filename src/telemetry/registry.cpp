#include "telemetry/registry.hpp"

#include <atomic>
#include <chrono>
#include <mutex>
#include <stdexcept>

#include "xmp/sched/sched.hpp"

namespace telemetry {

namespace {

using Clock = std::chrono::steady_clock;

std::atomic<bool> g_enabled{true};

/// Common time origin for every registry, so Chrome traces from different
/// rank threads align on one timeline.
Clock::time_point epoch() {
  static const Clock::time_point e = Clock::now();
  return e;
}

double to_us(Clock::duration d) {
  return std::chrono::duration<double, std::micro>(d).count();
}

struct Global {
  std::mutex mu;
  std::vector<std::shared_ptr<Registry>> registries;
};

Global& global() {
  static Global* g = new Global;  // leaked: usable during static destruction
  return *g;
}

constexpr std::size_t kSeriesCap = 1 << 16;

}  // namespace

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }
void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

double PhaseNode::child_seconds() const {
  double s = 0.0;
  for (const auto& c : children) s += c.seconds;
  return s;
}

const PhaseNode* PhaseNode::find(const std::string& child_name) const {
  for (const auto& c : children)
    if (c.name == child_name) return &c;
  return nullptr;
}

// --- Registry ---------------------------------------------------------------

struct Registry::Impl {
  struct Node {
    std::string name;
    std::uint64_t count = 0;
    Clock::duration total{};
    std::vector<std::unique_ptr<Node>> children;  // unique_ptr: stable addresses
    Node* parent = nullptr;
  };

  mutable std::mutex mu;
  int world_rank = -1;
  Node root;
  Node* current = &root;
  std::vector<Clock::time_point> starts;
  bool timeline_on = false;
  std::vector<TimelineEvent> events;
  std::map<std::string, CounterValue> counters;
  std::map<std::string, std::vector<double>> series;

  Node* child_of(Node* n, const char* name) {
    for (auto& c : n->children)
      if (c->name == name) return c.get();
    auto c = std::make_unique<Node>();
    c->name = name;
    c->parent = n;
    n->children.push_back(std::move(c));
    return n->children.back().get();
  }

  static void snapshot(const Node& n, PhaseNode& out) {
    out.name = n.name;
    out.count = n.count;
    out.seconds = std::chrono::duration<double>(n.total).count();
    out.children.reserve(n.children.size());
    for (const auto& c : n.children) {
      out.children.emplace_back();
      snapshot(*c, out.children.back());
    }
  }
};

Registry::Registry() : impl_(std::make_unique<Impl>()) {}
Registry::~Registry() = default;

namespace {

std::shared_ptr<Registry> make_registered() {
  auto r = std::make_shared<Registry>();
  auto& g = global();
  std::lock_guard lk(g.mu);
  g.registries.push_back(r);
  return r;
}

}  // namespace

Registry& Registry::local() {
  // Rank-first resolution: under xmp's fiber backend the scheduler exposes a
  // rank-local slot that migrates with the fiber across worker threads, so
  // two ranks sharing one worker get distinct registries and one rank
  // resuming on another worker keeps its own. Plain threads (the reference
  // backend, benches, main) have no slot and fall back to thread-local
  // storage exactly as before.
  if (std::shared_ptr<void>* slot = xmp::sched::rank_local_slot()) {
    if (!*slot) *slot = make_registered();
    return *static_cast<Registry*>(slot->get());
  }
  // lint: sched-context-ok (fallback for contexts without a rank slot)
  thread_local std::shared_ptr<Registry> reg = make_registered();
  return *reg;
}

std::vector<std::shared_ptr<Registry>> Registry::all() {
  auto& g = global();
  std::lock_guard lk(g.mu);
  return g.registries;
}

void Registry::reset_all() {
  for (const auto& r : all()) r->clear();
}

void Registry::bind_world_rank(int r) {
  std::lock_guard lk(impl_->mu);
  impl_->world_rank = r;
}

int Registry::world_rank() const {
  std::lock_guard lk(impl_->mu);
  return impl_->world_rank;
}

void Registry::phase_begin(const char* name) {
  const auto now = Clock::now();
  std::lock_guard lk(impl_->mu);
  impl_->current = impl_->child_of(impl_->current, name);
  impl_->current->count += 1;
  impl_->starts.push_back(now);
}

void Registry::phase_end() {
  const auto now = Clock::now();
  std::lock_guard lk(impl_->mu);
  auto* cur = impl_->current;
  if (cur == &impl_->root || impl_->starts.empty())
    throw std::logic_error("telemetry: phase_end without matching phase_begin");
  const auto start = impl_->starts.back();
  impl_->starts.pop_back();
  cur->total += now - start;
  if (impl_->timeline_on)
    impl_->events.push_back(TimelineEvent{cur->name, to_us(start - epoch()),
                                          to_us(now - start),
                                          static_cast<int>(impl_->starts.size())});
  impl_->current = cur->parent;
}

void Registry::counter_add(const std::string& name, double v) {
  std::lock_guard lk(impl_->mu);
  auto& c = impl_->counters[name];
  c.value += v;
  c.count += 1;
}

void Registry::series_append(const std::string& name, double v) {
  std::lock_guard lk(impl_->mu);
  auto& s = impl_->series[name];
  if (s.size() < kSeriesCap) s.push_back(v);
}

void Registry::series_clear(const std::string& name) {
  std::lock_guard lk(impl_->mu);
  impl_->series[name].clear();
}

void Registry::set_timeline_enabled(bool on) {
  std::lock_guard lk(impl_->mu);
  impl_->timeline_on = on;
}

PhaseNode Registry::phases() const {
  std::lock_guard lk(impl_->mu);
  PhaseNode out;
  Impl::snapshot(impl_->root, out);
  double s = 0.0;
  for (const auto& c : out.children) s += c.seconds;
  out.seconds = s;
  return out;
}

std::map<std::string, CounterValue> Registry::counters() const {
  std::lock_guard lk(impl_->mu);
  return impl_->counters;
}

std::map<std::string, std::vector<double>> Registry::series() const {
  std::lock_guard lk(impl_->mu);
  return impl_->series;
}

std::vector<TimelineEvent> Registry::timeline() const {
  std::lock_guard lk(impl_->mu);
  return impl_->events;
}

void Registry::clear() {
  std::lock_guard lk(impl_->mu);
  // An open ScopedPhase on another thread would dangle if we dropped the
  // tree mid-phase; clearing is only legal between measurement regions.
  if (!impl_->starts.empty())
    throw std::logic_error("telemetry: clear() inside an open phase");
  impl_->root.children.clear();
  impl_->root.count = 0;
  impl_->root.total = {};
  impl_->current = &impl_->root;
  impl_->events.clear();
  impl_->counters.clear();
  impl_->series.clear();
}

}  // namespace telemetry
