#pragma once
// Telemetry core: per-rank scoped phase timers, counters and sample series.
//
// The per-rank store follows the xmp scheduler's rank context:
// Registry::local() first asks xmp::sched::rank_local_slot() for the current
// rank's storage (fiber backend: the slot migrates with the fiber across
// worker threads, so attribution is per rank, never per OS thread) and only
// falls back to thread-local storage for plain threads — the reference
// thread-per-rank backend, benches, tests and main(). Either way the
// registry is created on first use and registered in a process-wide list so
// exporters can enumerate every rank after a run finishes — the backing
// storage outlives the rank. A rank announces its identity once via
// bind_world_rank(); serial code simply uses the default rank -1, reported
// as "main".
//
// Phases nest: ScopedPhase("ns2d.step") { ScopedPhase("helmholtz.solve")
// { ScopedPhase("cg.solve") ... } } builds the hierarchical tree the paper's
// timing tables (Sec. 3.5, Tables 2-5) are about — solver / timestep /
// CG solve / interface exchange. Aggregation across ranks lives in
// report.hpp; exporters (human table, Chrome trace, bench JSON) in
// chrome_trace.hpp / bench_report.hpp.
//
// Cost model: instrumentation sites call the free helpers below, which are
// no-ops when telemetry is disabled; when enabled, a phase begin/end is two
// steady_clock reads plus an uncontended lock. Timeline recording (for
// Chrome traces) is off by default and opt-in per registry.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace telemetry {

/// Global on/off switch (default on). Disabling turns every instrumentation
/// helper into a cheap early-out; already-recorded data is kept.
bool enabled();
void set_enabled(bool on);

/// Aggregated snapshot of one phase in the nesting tree.
struct PhaseNode {
  std::string name;
  std::uint64_t count = 0;  ///< times entered
  double seconds = 0.0;     ///< inclusive wall time
  std::vector<PhaseNode> children;

  double child_seconds() const;
  double exclusive_seconds() const { return seconds - child_seconds(); }
  const PhaseNode* find(const std::string& child_name) const;
};

/// One closed phase instance on the rank's timeline (Chrome trace "X" event).
struct TimelineEvent {
  std::string name;
  double t0_us = 0.0;   ///< since the process-wide telemetry epoch
  double dur_us = 0.0;
  int depth = 0;
};

struct CounterValue {
  double value = 0.0;
  std::uint64_t count = 0;  ///< number of contributions
};

class Registry {
public:
  /// This thread's registry (created and globally registered on first use).
  static Registry& local();
  /// Every registry created so far, in registration order. The shared_ptrs
  /// keep rank data alive after the rank threads have joined.
  static std::vector<std::shared_ptr<Registry>> all();
  /// Clear recorded data in every registered registry (test isolation /
  /// between bench cases). Bindings and timeline enablement are kept.
  static void reset_all();

  void bind_world_rank(int r);
  int world_rank() const;

  void phase_begin(const char* name);
  void phase_end();
  void counter_add(const std::string& name, double v);
  /// Append one sample to a bounded series (silently stops at the cap).
  void series_append(const std::string& name, double v);
  void series_clear(const std::string& name);

  /// Record per-instance timeline events for Chrome trace export (off by
  /// default: unbounded in the number of phase entries).
  void set_timeline_enabled(bool on);

  // --- snapshots (safe from any thread) ---
  /// Root of the phase tree; root.name is empty, root.seconds is the sum of
  /// its children.
  PhaseNode phases() const;
  std::map<std::string, CounterValue> counters() const;
  std::map<std::string, std::vector<double>> series() const;
  std::vector<TimelineEvent> timeline() const;

  void clear();

  Registry();
  ~Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// RAII phase timer on the calling rank's registry.
class ScopedPhase {
public:
  explicit ScopedPhase(const char* name) : on_(enabled()) {
    if (on_) Registry::local().phase_begin(name);
  }
  ~ScopedPhase() {
    if (on_) Registry::local().phase_end();
  }
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

private:
  bool on_;
};

// --- free-function instrumentation helpers (no-ops when disabled) ---------

inline void count(const std::string& name, double v = 1.0) {
  if (enabled()) Registry::local().counter_add(name, v);
}
inline void sample(const std::string& name, double v) {
  if (enabled()) Registry::local().series_append(name, v);
}
inline void sample_reset(const std::string& name) {
  if (enabled()) Registry::local().series_clear(name);
}

}  // namespace telemetry
