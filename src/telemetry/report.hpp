#pragma once
// Cross-rank aggregation of the per-rank phase trees and counters.
//
// Every rank serialises its thread-local Registry snapshot to a flat text
// form and the report is reduced at the root with the existing gatherv
// collective — no new communication primitives. The result is the
// hierarchical phase table of the paper's timing breakdowns: solver /
// timestep / CG solve / interface exchange, with min/avg/max over ranks and
// the rank holding the max (the load-imbalance witness).

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "telemetry/registry.hpp"
#include "xmp/comm.hpp"

namespace telemetry {

/// One phase path ("ns2d.step/helmholtz.solve/cg.solve") aggregated over the
/// ranks that entered it.
struct PhaseStats {
  std::string path;
  int depth = 0;             ///< nesting depth (path component count - 1)
  int ranks = 0;             ///< how many ranks reported this phase
  std::uint64_t count = 0;   ///< total entries summed over ranks
  double min_s = 0.0;
  double avg_s = 0.0;
  double max_s = 0.0;
  int max_rank = -1;         ///< comm rank holding max_s
};

struct CounterStats {
  std::string name;
  int ranks = 0;
  double total = 0.0;
  double min = 0.0;
  double avg = 0.0;
  double max = 0.0;
};

struct Report {
  std::vector<PhaseStats> phases;     ///< pre-order over the merged tree
  std::vector<CounterStats> counters; ///< sorted by name
};

/// Collective over `comm`: each rank contributes its calling thread's
/// Registry::local() snapshot; `root` returns the merged report, other ranks
/// return an empty one.
Report aggregate(const xmp::Comm& comm, int root = 0);

/// Aggregate explicit snapshots (serial benches, tests): entry i is treated
/// as rank i.
Report aggregate(const std::vector<std::shared_ptr<Registry>>& regs);

/// Human-readable indented table.
std::string format(const Report& r);

}  // namespace telemetry
