#pragma once
// Chrome trace_event exporter: dumps every registry's recorded timeline as
// complete ("X") events, one trace thread per rank, loadable in
// chrome://tracing or https://ui.perfetto.dev.
//
// Timelines are opt-in (Registry::set_timeline_enabled) because they grow
// with the number of phase entries; the phase tree alone cannot reconstruct
// per-instance timing.

#include <string>

namespace telemetry {

/// JSON string in Chrome trace_event format covering every registered
/// registry's timeline. tid is the registry's bound world rank (unbound
/// registries are numbered from 1000 in registration order).
std::string chrome_trace_json();

/// Write chrome_trace_json() to `path`; returns false on I/O failure.
bool write_chrome_trace(const std::string& path);

}  // namespace telemetry
