#include "telemetry/chrome_trace.hpp"

#include <fstream>

#include "telemetry/json.hpp"
#include "telemetry/registry.hpp"

namespace telemetry {

std::string chrome_trace_json() {
  JsonWriter w;
  w.begin_object();
  w.key("traceEvents");
  w.begin_array();
  int anon_tid = 1000;
  for (const auto& reg : Registry::all()) {
    const int bound = reg->world_rank();
    const int tid = bound >= 0 ? bound : anon_tid++;
    for (const auto& ev : reg->timeline()) {
      w.begin_object();
      w.key("name");
      w.value(ev.name);
      w.key("ph");
      w.value("X");
      w.key("ts");
      w.value(ev.t0_us);
      w.key("dur");
      w.value(ev.dur_us);
      w.key("pid");
      w.value(0);
      w.key("tid");
      w.value(tid);
      w.end_object();
    }
  }
  w.end_array();
  w.key("displayTimeUnit");
  w.value("ms");
  w.end_object();
  return w.str();
}

bool write_chrome_trace(const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << chrome_trace_json() << "\n";
  return bool(out);
}

}  // namespace telemetry
