#pragma once
// Minimal JSON emitter for the telemetry exporters. Write-only, streaming,
// no DOM: exporters push objects/arrays and scalars in document order.
// Numbers use max_digits10 round-trip formatting so consumers can compare
// bench JSON values against the text tables exactly.

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

namespace telemetry {

class JsonWriter {
public:
  void begin_object() {
    prefix();
    out_ << '{';
    push();
  }
  void end_object() {
    out_ << '}';
    pop();
  }
  void begin_array() {
    prefix();
    out_ << '[';
    push();
  }
  void end_array() {
    out_ << ']';
    pop();
  }

  void key(const std::string& k) {
    prefix();
    string_literal(k);
    out_ << ':';
    pending_key_ = true;
  }

  void value(const std::string& s) { prefix(); string_literal(s); }
  void value(const char* s) { value(std::string(s)); }
  void value(double v);
  void value(std::int64_t v) { prefix(); out_ << v; }
  void value(std::uint64_t v) { prefix(); out_ << v; }
  void value(int v) { value(static_cast<std::int64_t>(v)); }
  void value(bool v) { prefix(); out_ << (v ? "true" : "false"); }

  std::string str() const { return out_.str(); }

private:
  void prefix() {
    if (pending_key_) {
      pending_key_ = false;
      return;
    }
    if (first_.empty()) return;
    if (first_.back())
      first_.back() = 0;
    else
      out_ << ',';
  }
  void push() { first_.push_back(1); }
  void pop() { first_.pop_back(); }
  void string_literal(const std::string& s);

  std::ostringstream out_;
  std::vector<char> first_;  // one flag per open container; char avoids vector<bool>
  bool pending_key_ = false;
};

}  // namespace telemetry
