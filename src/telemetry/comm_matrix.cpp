#include "telemetry/comm_matrix.hpp"

#include <cstdio>
#include <sstream>

#include "telemetry/json.hpp"

namespace telemetry {

void TagClasses::add_range(int lo, int hi, std::string name) {
  rules_.push_back(Rule{lo, hi, std::move(name)});
}

std::string TagClasses::classify(const xmp::TraceEvent& e) const {
  if (e.kind != xmp::TraceKind::P2P) return xmp::to_string(e.kind);
  for (auto it = rules_.rbegin(); it != rules_.rend(); ++it)
    if (e.tag >= it->lo && e.tag <= it->hi) return it->name;
  return "tag:" + std::to_string(e.tag);
}

void CommMatrix::record(const xmp::TraceEvent& e) {
  auto cls = classes_.classify(e);
  std::lock_guard lk(mu_);
  auto& cell = cells_[CommKey{e.src_world, e.dst_world, std::move(cls)}];
  cell.messages += 1;
  cell.bytes += e.bytes;
}

xmp::TraceSink CommMatrix::sink() {
  return [this](const xmp::TraceEvent& e) { record(e); };
}

void CommMatrix::reset() {
  std::lock_guard lk(mu_);
  cells_.clear();
}

std::map<CommKey, CommCell> CommMatrix::cells() const {
  std::lock_guard lk(mu_);
  return cells_;
}

std::uint64_t CommMatrix::total_messages() const {
  std::lock_guard lk(mu_);
  std::uint64_t n = 0;
  for (const auto& [k, c] : cells_) n += c.messages;
  return n;
}

std::uint64_t CommMatrix::total_bytes() const {
  std::lock_guard lk(mu_);
  std::uint64_t n = 0;
  for (const auto& [k, c] : cells_) n += c.bytes;
  return n;
}

std::string CommMatrix::format() const {
  auto snap = cells();
  std::ostringstream os;
  os << "src -> dst  class               msgs       bytes\n";
  char line[160];
  for (const auto& [key, cell] : snap) {
    const auto& [src, dst, cls] = key;
    std::snprintf(line, sizeof line, "%3d -> %-3d  %-16s %7llu %11llu\n", src, dst, cls.c_str(),
                  static_cast<unsigned long long>(cell.messages),
                  static_cast<unsigned long long>(cell.bytes));
    os << line;
  }
  return os.str();
}

std::string CommMatrix::to_json() const {
  auto snap = cells();
  JsonWriter w;
  w.begin_object();
  w.key("cells");
  w.begin_array();
  std::uint64_t msgs = 0, bytes = 0;
  for (const auto& [key, cell] : snap) {
    const auto& [src, dst, cls] = key;
    msgs += cell.messages;
    bytes += cell.bytes;
    w.begin_object();
    w.key("src");
    w.value(src);
    w.key("dst");
    w.value(dst);
    w.key("class");
    w.value(cls);
    w.key("messages");
    w.value(cell.messages);
    w.key("bytes");
    w.value(cell.bytes);
    w.end_object();
  }
  w.end_array();
  w.key("total_messages");
  w.value(msgs);
  w.key("total_bytes");
  w.value(bytes);
  w.end_object();
  return w.str();
}

}  // namespace telemetry
