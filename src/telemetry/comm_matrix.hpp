#pragma once
// Communication-matrix aggregator over xmp trace events.
//
// The paper characterises the MCI coupling traffic by who talks to whom and
// how much (Sec. 3.1: gather to interface roots, one root-to-root message
// across the world communicator, scatter to peers). CommMatrix consumes
// xmp::TraceEvent records and reduces them to per-(src, dst, tag-class)
// cells of {messages, bytes}, which is exactly the data behind such a
// characterisation — and what the analytic 3-step-exchange test asserts on.
//
// Tag classes group raw tags into named ranges (e.g. "mci.exchange" for the
// channel tag, "mci.discovery" for 9001/9002) so the matrix stays readable
// when many channels use distinct tags. Logical collective events (kind !=
// P2P) are classified by their kind name instead of their tag.

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <tuple>
#include <vector>

#include "xmp/comm.hpp"

namespace telemetry {

/// Maps raw tags / kinds to class names for matrix rows.
class TagClasses {
public:
  /// Tags in [lo, hi] report as `name`. Later rules win on overlap.
  void add_range(int lo, int hi, std::string name);
  void add(int tag, std::string name) { add_range(tag, tag, std::move(name)); }

  /// Class for an event: collectives use to_string(kind); p2p uses the
  /// matching range, else "tag:<n>".
  std::string classify(const xmp::TraceEvent& e) const;

private:
  struct Rule {
    int lo, hi;
    std::string name;
  };
  std::vector<Rule> rules_;
};

struct CommCell {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
};

/// Key: (src world rank, dst world rank, tag class).
using CommKey = std::tuple<int, int, std::string>;

class CommMatrix {
public:
  explicit CommMatrix(TagClasses classes = {}) : classes_(std::move(classes)) {}

  /// Thread-safe: callable from any rank thread.
  void record(const xmp::TraceEvent& e);

  /// Adapter usable as xmp::TraceSink (keeps *this alive by the caller's
  /// contract; the returned lambda holds a raw pointer).
  xmp::TraceSink sink();

  void reset();

  std::map<CommKey, CommCell> cells() const;
  std::uint64_t total_messages() const;
  std::uint64_t total_bytes() const;

  /// Human-readable table: one line per cell, sorted by key.
  std::string format() const;
  /// JSON: {"cells":[{"src","dst","class","messages","bytes"}...],
  ///        "total_messages","total_bytes"}
  std::string to_json() const;

private:
  TagClasses classes_;
  mutable std::mutex mu_;
  std::map<CommKey, CommCell> cells_;
};

}  // namespace telemetry
