#pragma once
// Machine-readable bench output with a stable schema.
//
// Every bench binary builds a BenchReport next to its printf table, pushing
// the *same* computed values into both, and writes BENCH_<name>.json on
// exit. Consumers (CI, plotting scripts, regression tooling) parse:
//
//   {
//     "schema": "nektarg-bench-v1",
//     "name": "table4_strong_scaling",
//     "meta": {"<key>": <string|number>, ...},
//     "rows": [ {"<col>": <string|number>, ...}, ... ]
//   }
//
// Rows keep column insertion order. The file goes to $NEKTARG_BENCH_DIR when
// set (CI points this at an artifact dir), else the working directory.

#include <string>
#include <utility>
#include <variant>
#include <vector>

namespace telemetry {

class BenchReport {
public:
  using Value = std::variant<double, std::string>;

  explicit BenchReport(std::string name) : name_(std::move(name)) {}

  void meta(const std::string& key, Value v) { meta_.emplace_back(key, std::move(v)); }

  /// Start a new row; subsequent set() calls fill it.
  void row() { rows_.emplace_back(); }
  void set(const std::string& key, Value v) { rows_.back().emplace_back(key, std::move(v)); }

  const std::string& name() const { return name_; }
  std::size_t row_count() const { return rows_.size(); }

  std::string to_json() const;

  /// Write BENCH_<name>.json into $NEKTARG_BENCH_DIR (or cwd) and return the
  /// path. Prints a one-line notice to stderr; I/O failure is reported there
  /// too but never aborts the bench.
  std::string write() const;

private:
  using Fields = std::vector<std::pair<std::string, Value>>;
  std::string name_;
  Fields meta_;
  std::vector<Fields> rows_;
};

}  // namespace telemetry
