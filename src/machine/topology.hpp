#pragma once
// Abstract network topology behind the machine:: cost model.
//
// The paper's results come from a BG/P 3D torus, but MCI's topology-aware
// placement (Table 2) is an algorithm over an abstract network: what matters
// to the cost model is (a) how many hops a message crosses, (b) which shared
// links its routes load and how many minimal alternatives spread that load,
// and (c) which injection resource serialises a node's outgoing traffic.
// Topology captures exactly that contract, so phase_cost / collective_cost /
// replay_step (cost.hpp) are generic over the torus (torus.hpp) and the
// modern fat-tree / dragonfly fabrics (fattree.hpp, dragonfly.hpp) the MCI
// follow-up work targets.

#include <cstdint>
#include <vector>

namespace machine {

enum class Routing {
  DeterministicXYZ,  ///< single fixed minimal route (XYZ order on the torus,
                     ///< hash-picked uplink / global link elsewhere)
  Adaptive,          ///< load spread over the minimal route alternatives
};

class Topology {
public:
  virtual ~Topology() = default;

  virtual const char* kind() const = 0;
  virtual int total_nodes() const = 0;
  virtual int cores_per_node() const = 0;
  int total_cores() const { return total_nodes() * cores_per_node(); }
  /// Block rank->node mapping: consecutive ranks share a node.
  int node_of_rank(int rank) const { return rank / cores_per_node(); }

  virtual double link_bandwidth() const = 0;  ///< bytes/s per directed link
  virtual double hop_latency() const = 0;     ///< seconds per hop
  virtual double sw_overhead() const = 0;     ///< per-message software overhead

  /// Hop count of the deterministic minimal route between two nodes.
  virtual int hops(int a, int b) const = 0;

  /// Number of minimal route alternatives a->b traffic spreads over under
  /// `routing` (1 for deterministic routing).
  virtual int route_ways(int a, int b, Routing routing) const = 0;

  /// Appends the directed-link keys crossed by route alternative
  /// `way` (0 <= way < route_ways) of an a->b message. Keys are stable
  /// per-topology identifiers used to accumulate link load.
  virtual void append_route(int a, int b, Routing routing, int way,
                            std::vector<std::int64_t>& keys) const = 0;

  /// Key of the injection resource the first hop of an a->b message uses.
  /// Messages sharing a key serialise at the source even under the
  /// multi-direction injection schedule (the torus' six DMA directions are
  /// distinct resources; a fat-tree or dragonfly host has one NIC).
  virtual std::int64_t injection_key(int a, int b) const = 0;
};

}  // namespace machine
