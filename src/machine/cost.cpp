#include "machine/cost.hpp"

#include <algorithm>
#include <unordered_map>

namespace machine {

double PhaseCostBreakdown::total() const { return link_time + injection_time + latency_time; }

PhaseCostBreakdown phase_cost(const Topology& topo, const std::vector<Message>& phase,
                              Routing routing, InjectionSchedule sched) {
  PhaseCostBreakdown out;
  if (phase.empty()) return out;

  // --- link contention ---
  std::unordered_map<std::int64_t, double> link_load;
  std::vector<std::int64_t> keys;
  int max_hops = 0;
  for (const auto& m : phase) {
    const int a = topo.node_of_rank(m.src_rank);
    const int b = topo.node_of_rank(m.dst_rank);
    if (a == b) continue;  // intra-node: memory copy, modeled as free
    max_hops = std::max(max_hops, topo.hops(a, b));
    // The topology reports how many parallel minimal routes the message is
    // spread over (1 when deterministic); each carries an equal share.
    const int ways = topo.route_ways(a, b, routing);
    for (int w = 0; w < ways; ++w) {
      keys.clear();
      topo.append_route(a, b, routing, w, keys);
      for (const std::int64_t k : keys) link_load[k] += m.bytes / ways;
    }
  }
  double max_link = 0.0;
  for (const auto& [k, v] : link_load) max_link = std::max(max_link, v);
  out.link_time = max_link / topo.link_bandwidth();

  // --- injection serialisation at the source nodes ---
  // MultiDirection: loads sharing an injection channel (topology-defined:
  // first-hop direction on the torus, the single host uplink on fat-tree and
  // dragonfly) drain serially, distinct channels in parallel.
  // Naive: the node's entire outgoing volume drains serially.
  std::unordered_map<std::int64_t, double> inject;
  std::unordered_map<int, std::size_t> msgs_per_node;
  for (const auto& m : phase) {
    const int a = topo.node_of_rank(m.src_rank);
    const int b = topo.node_of_rank(m.dst_rank);
    if (a == b) continue;
    msgs_per_node[a]++;
    if (sched == InjectionSchedule::MultiDirection) {
      inject[topo.injection_key(a, b)] += m.bytes;
    } else {
      inject[a] += m.bytes;  // keyed by node only: fully serial
    }
  }
  double max_inject = 0.0;
  for (const auto& [k, v] : inject) max_inject = std::max(max_inject, v);
  out.injection_time = max_inject / topo.link_bandwidth();

  // --- latency: deepest route + per-message software overhead on the
  //     busiest node (messages issued back-to-back cost sw_overhead each) ---
  std::size_t max_msgs = 0;
  for (const auto& [n, c] : msgs_per_node) max_msgs = std::max(max_msgs, c);
  out.latency_time =
      topo.hop_latency() * max_hops + topo.sw_overhead() * static_cast<double>(max_msgs);
  return out;
}

double compute_time(const ComputeSpec& spec, double flops, double working_set_bytes) {
  if (flops <= 0.0) return 0.0;
  double rate = spec.flops_per_sec;
  if (working_set_bytes > spec.cache_bytes && spec.cache_bytes > 0.0) {
    // Fraction of traffic served from memory scales the rate down smoothly
    // between the in-cache and fully-uncached regimes.
    const double uncached = 1.0 - spec.cache_bytes / working_set_bytes;
    rate /= 1.0 + (spec.out_of_cache_slowdown - 1.0) * uncached;
  }
  return flops / rate;
}

double collective_cost(const Topology& topo, const std::vector<int>& participants, double bytes,
                       CollectiveKind kind, Routing routing) {
  if (participants.size() < 2) return 0.0;
  // binomial tree: level k pairs rank i with rank i + 2^k (indices into the
  // participant list); each level is one phase, the tree has ceil(log2 n)
  // levels, and allreduce walks it twice
  double total = 0.0;
  const std::size_t n = participants.size();
  for (std::size_t stride = 1; stride < n; stride *= 2) {
    std::vector<Message> phase;
    for (std::size_t i = 0; i + stride < n; i += 2 * stride)
      phase.push_back({participants[i + stride], participants[i], bytes});
    total += phase_cost(topo, phase, routing).total();
  }
  return kind == CollectiveKind::Allreduce ? 2.0 * total : total;
}

ReplayResult replay_step(const Topology& topo, const ComputeSpec& cspec, const StepSchedule& s,
                         Routing routing, InjectionSchedule sched) {
  ReplayResult r;
  for (std::size_t i = 0; i < s.flops.size(); ++i) {
    const double ws = i < s.working_set.size() ? s.working_set[i] : 0.0;
    r.compute_time = std::max(r.compute_time, compute_time(cspec, s.flops[i], ws));
  }
  for (const auto& phase : s.phases) r.comm_time += phase_cost(topo, phase, routing, sched).total();
  return r;
}

}  // namespace machine
