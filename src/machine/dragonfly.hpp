#pragma once
// Dragonfly topology for the machine:: cost model.
//
// `groups` groups of `routers_per_group` routers; routers within a group are
// all-to-all connected by local links, each router serves
// `hosts_per_router` nodes, and every ordered group pair is joined by
// `global_links` parallel global links. Global link g of pair (ga, gb)
// attaches at local router (gb + g) % routers_per_group inside ga (and
// symmetrically at (ga + g) % routers_per_group inside gb), spreading
// attachment points round-robin the way real dragonflies cable their global
// channels.
//
// Minimal routing is host -> [local] -> global -> [local] -> host:
//   same router   : 2 hops (host up, host down)
//   same group    : 3 hops (one local link)
//   cross group   : 3..5 hops depending on whether source/destination
//                   routers are the attachment routers.
// Deterministic routing always takes global link 0 (so group-pair traffic
// contends on it); adaptive spreads over the `global_links` parallel links.
// Hosts have a single NIC: all outgoing traffic serialises on the host
// uplink, like the fat-tree and unlike the torus DMA.

#include "machine/topology.hpp"

namespace machine {

struct DragonflySpec {
  int groups = 8;
  int routers_per_group = 4;
  int hosts_per_router = 4;
  int global_links = 2;  ///< parallel global links per ordered group pair
  int cores_per_node = 4;

  double link_bandwidth = 2.0e9;
  double hop_latency = 300e-9;
  double sw_overhead = 1.2e-6;

  int total_nodes() const { return groups * routers_per_group * hosts_per_router; }
  int total_cores() const { return total_nodes() * cores_per_node; }
};

class Dragonfly : public Topology {
public:
  explicit Dragonfly(const DragonflySpec& spec);

  const DragonflySpec& spec() const { return spec_; }
  int router_of_node(int node) const { return node / spec_.hosts_per_router; }
  int group_of_node(int node) const { return router_of_node(node) / spec_.routers_per_group; }
  /// Local (in-group) index of a node's router.
  int local_router_of_node(int node) const {
    return router_of_node(node) % spec_.routers_per_group;
  }
  /// Local router where global link `idx` from `from_group` to `to_group`
  /// attaches inside `from_group`.
  int attach_router(int from_group, int to_group, int idx) const {
    (void)from_group;
    return (to_group + idx) % spec_.routers_per_group;
  }

  /// Directed link keys (stable, disjoint ranges): host access links, then
  /// in-group local links, then global links.
  std::int64_t host_link_key(int node, bool up) const;
  std::int64_t local_link_key(int group, int from_router, int to_router) const;
  std::int64_t global_link_key(int from_group, int to_group, int idx) const;

  // --- Topology -------------------------------------------------------------
  const char* kind() const override { return "dragonfly"; }
  int total_nodes() const override { return spec_.total_nodes(); }
  int cores_per_node() const override { return spec_.cores_per_node; }
  double link_bandwidth() const override { return spec_.link_bandwidth; }
  double hop_latency() const override { return spec_.hop_latency; }
  double sw_overhead() const override { return spec_.sw_overhead; }
  int hops(int a, int b) const override;
  int route_ways(int a, int b, Routing routing) const override;
  void append_route(int a, int b, Routing routing, int way,
                    std::vector<std::int64_t>& keys) const override;
  std::int64_t injection_key(int a, int b) const override;

private:
  DragonflySpec spec_;
};

}  // namespace machine
