#include "machine/fattree.hpp"

#include <stdexcept>

namespace machine {

FatTree::FatTree(const FatTreeSpec& spec) : spec_(spec) {
  if (spec.leaves <= 0 || spec.hosts_per_leaf <= 0 || spec.uplinks <= 0 ||
      spec.cores_per_node <= 0)
    throw std::invalid_argument("FatTree: non-positive dimension");
}

std::int64_t FatTree::host_link_key(int node, bool up) const {
  return static_cast<std::int64_t>(node) * 2 + (up ? 0 : 1);
}

std::int64_t FatTree::trunk_link_key(int leaf, int spine, bool up) const {
  const std::int64_t base = static_cast<std::int64_t>(spec_.total_nodes()) * 2;
  return base + (static_cast<std::int64_t>(leaf) * spec_.uplinks + spine) * 2 + (up ? 0 : 1);
}

int FatTree::hops(int a, int b) const {
  if (a == b) return 0;
  return leaf_of_node(a) == leaf_of_node(b) ? 2 : 4;
}

int FatTree::route_ways(int a, int b, Routing routing) const {
  if (routing != Routing::Adaptive) return 1;
  return leaf_of_node(a) == leaf_of_node(b) ? 1 : spec_.uplinks;
}

void FatTree::append_route(int a, int b, Routing routing, int way,
                           std::vector<std::int64_t>& keys) const {
  if (a == b) return;
  const int la = leaf_of_node(a), lb = leaf_of_node(b);
  keys.push_back(host_link_key(a, /*up=*/true));
  if (la != lb) {
    // Deterministic: static ECMP hash of the leaf pair picks one spine, so
    // distinct flows can collide on a trunk; adaptive enumerates every spine.
    const int spine = routing == Routing::Adaptive ? way : (la + lb) % spec_.uplinks;
    keys.push_back(trunk_link_key(la, spine, /*up=*/true));
    keys.push_back(trunk_link_key(lb, spine, /*up=*/false));
  }
  keys.push_back(host_link_key(b, /*up=*/false));
}

std::int64_t FatTree::injection_key(int a, int /*b*/) const {
  // One NIC per host: every outgoing message shares the host uplink.
  return host_link_key(a, /*up=*/true);
}

}  // namespace machine
