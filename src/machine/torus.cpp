#include "machine/torus.hpp"

#include <cmath>
#include <cstdlib>
#include <stdexcept>

namespace machine {

Torus::Torus(const TorusSpec& spec) : spec_(spec) {
  if (spec.nx <= 0 || spec.ny <= 0 || spec.nz <= 0 || spec.cores_per_node <= 0)
    throw std::invalid_argument("Torus: non-positive dimension");
}

NodeCoord Torus::coords(int node) const {
  NodeCoord c;
  c.x = node % spec_.nx;
  c.y = (node / spec_.nx) % spec_.ny;
  c.z = node / (spec_.nx * spec_.ny);
  return c;
}

int Torus::node_at(const NodeCoord& c) const {
  return c.x + spec_.nx * (c.y + spec_.ny * c.z);
}

std::array<int, 3> Torus::delta(int a, int b) const {
  const NodeCoord ca = coords(a), cb = coords(b);
  const int dims[3] = {spec_.nx, spec_.ny, spec_.nz};
  const int raw[3] = {cb.x - ca.x, cb.y - ca.y, cb.z - ca.z};
  std::array<int, 3> d{};
  for (int k = 0; k < 3; ++k) {
    int v = raw[k] % dims[k];
    if (v > dims[k] / 2) v -= dims[k];
    if (v < -dims[k] / 2) v += dims[k];
    // for even dims, |v| == dims/2 is ambiguous; pick positive direction
    d[k] = v;
  }
  return d;
}

int Torus::hops(int a, int b) const {
  auto d = delta(a, b);
  return std::abs(d[0]) + std::abs(d[1]) + std::abs(d[2]);
}

std::vector<Link> Torus::route(int a, int b, const std::array<int, 3>& dim_order) const {
  std::vector<Link> links;
  auto d = delta(a, b);
  NodeCoord cur = coords(a);
  const int dims[3] = {spec_.nx, spec_.ny, spec_.nz};
  for (int dim : dim_order) {
    const int step = d[dim] > 0 ? 1 : -1;
    for (int s = 0; s < std::abs(d[dim]); ++s) {
      int node = node_at(cur);
      links.push_back(Link{node, dim, step});
      int* comp = dim == 0 ? &cur.x : dim == 1 ? &cur.y : &cur.z;
      *comp = (*comp + step + dims[dim]) % dims[dim];
    }
  }
  return links;
}

std::int64_t Torus::link_key(const Link& l) const {
  // 6 directed links per node: dim*2 + (sign>0)
  return static_cast<std::int64_t>(l.node) * 6 + l.dim * 2 + (l.sign > 0 ? 1 : 0);
}

namespace {
// The three cyclic dimension orders adaptive routing spreads load over.
constexpr std::array<std::array<int, 3>, 3> kAdaptiveOrders = {{{0, 1, 2}, {1, 2, 0}, {2, 0, 1}}};
}  // namespace

int Torus::route_ways(int /*a*/, int /*b*/, Routing routing) const {
  return routing == Routing::Adaptive ? static_cast<int>(kAdaptiveOrders.size()) : 1;
}

void Torus::append_route(int a, int b, Routing routing, int way,
                         std::vector<std::int64_t>& keys) const {
  const auto& order =
      kAdaptiveOrders[routing == Routing::Adaptive ? static_cast<std::size_t>(way) : 0];
  for (const Link& l : route(a, b, order)) keys.push_back(link_key(l));
}

std::int64_t Torus::injection_key(int a, int b) const {
  // First-hop direction under XYZ order: the first dimension with movement.
  const auto d = delta(a, b);
  int dim = 0;
  for (int k = 0; k < 3; ++k)
    if (d[k] != 0) {
      dim = k;
      break;
    }
  const int sign = d[dim] >= 0 ? 1 : -1;
  return link_key(Link{a, dim, sign});
}

int rack_of_node(const Torus& t, int node, int racks_x, int racks_y, int racks_z) {
  const auto& s = t.spec();
  if (racks_x <= 0 || s.nx % racks_x || racks_y <= 0 || s.ny % racks_y || racks_z <= 0 ||
      s.nz % racks_z)
    throw std::invalid_argument("rack_of_node: rack grid must divide torus dims");
  const NodeCoord c = t.coords(node);
  const int rx = c.x / (s.nx / racks_x);
  const int ry = c.y / (s.ny / racks_y);
  const int rz = c.z / (s.nz / racks_z);
  return rx + racks_x * (ry + racks_y * rz);
}

}  // namespace machine
